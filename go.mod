module sparsehypercube

go 1.24
