package sparsehypercube

import (
	"fmt"
	"iter"

	"sparsehypercube/internal/gossip"
	"sparsehypercube/internal/linecomm"
)

// MultiSourceScheme is gather-scatter dissemination rooted at Root: the
// broadcast tree of Root run in reverse to funnel every token to the
// root in n rounds, then the paper's Broadcast_k to disseminate the
// gathered set in n more. 2n rounds total, calls of length at most k.
// When Sources is empty every vertex holds a token and the scheme is
// all-to-all gossip (GossipScheme) — a factor 2 from the gossip lower
// bound ceil(log2 N); closing that factor at low degree is the open
// problem the paper's §5 poses. A non-empty Sources restricts the token
// holders: the call rounds are identical (the gather phase funnels
// whatever is out there), but verification tracks only the listed
// tokens, so the knowledge simulation stays exact far beyond the
// all-source regime.
//
// Its Plan streams: rounds are rebuilt from the precomputed broadcast
// frontier (the doubled schedule is never materialised) and Verify runs
// the telephone-model gossip validator with a token-sharded knowledge
// simulation — exact up to order x tokens = 2^40 cells (full gossip at
// n = 20; far larger cubes with sampled sources). Past the cap Verify
// still performs every structural check and reports a
// simulation-cap-exceeded violation for the knowledge half.
type MultiSourceScheme struct {
	Root uint64
	// Sources lists the token-holding vertices; nil or empty means every
	// vertex (all-to-all gossip). Sources must be distinct and in range.
	Sources []uint64
}

// Name implements Scheme. Multi-source plans serialise as gossip plans —
// the round stream is the same gather-scatter schedule, and schedio
// plan files already serialise arbitrary rounds, so gossip plans are
// served with no format change. The source set is a verification-side
// concept and is not stored: a replayed plan verifies under the
// all-source model, which above the all-source caps reports the
// knowledge half as simulation-cap-exceeded. To re-verify a replayed
// plan under the original source set, re-bind it explicitly:
//
//	replay, _ := sparsehypercube.ReadPlan(f)
//	rep := MultiSourceScheme{Root: root, Sources: srcs}.
//		VerifyPlan(replay.Cube(), replay.Rounds())
func (s MultiSourceScheme) Name() string { return "gossip" }

// Origin implements Scheme.
func (s MultiSourceScheme) Origin() uint64 { return s.Root }

// Rounds implements Scheme: the gather and scatter phases are emitted
// round at a time off the frontier array at O(N) words peak. An
// out-of-range Root yields no rounds (and Plan.Verify reports it as a
// violation) rather than panicking.
func (s MultiSourceScheme) Rounds(cube *Cube) iter.Seq[[]Call] {
	return fromInnerRounds(s.innerRounds(cube))
}

func (s MultiSourceScheme) innerRounds(cube *Cube) iter.Seq[linecomm.Round] {
	if s.Root >= cube.Order() {
		return func(yield func(linecomm.Round) bool) {}
	}
	return cube.inner.ScheduleGossipRounds(s.Root)
}

// VerifyPlan implements PlanVerifier: correctness is checked by the
// streamed telephone-model validator (per-round edge-disjointness, one
// call per vertex per round, length bounds) with sharded token
// simulation, not the broadcast validator. MinimumTime reports
// completion in ceil(log2 N) rounds — false for the 2n-round
// gather-scatter scheme, honestly.
func (s MultiSourceScheme) VerifyPlan(cube *Cube, rounds iter.Seq[[]Call]) Report {
	if s.Root >= cube.Order() {
		// The gossip validator ignores the originator (gossip has none),
		// so a bad root must be rejected here — without consuming the
		// stream — or an empty plan would pass the model checks with
		// Complete == false only.
		v := linecomm.Violation{Round: -1, Call: -1, Kind: linecomm.VertexOutOfRange,
			Msg: fmt.Sprintf("root %d outside [0,%d)", s.Root, cube.Order())}
		return Report{Violations: []string{v.String()}}
	}
	res := linecomm.ValidateMultiSourceStream(cube.inner, cube.K(), s.Sources, toInnerRounds(rounds))
	rep := Report{
		Valid:         res.Valid(),
		Complete:      res.Complete,
		MinimumTime:   res.MinimumTime,
		Rounds:        res.Rounds,
		MaxCallLength: res.MaxCallLength,
	}
	for _, v := range res.Violations {
		rep.Violations = append(rep.Violations, v.String())
	}
	return rep
}

// GossipScheme is the all-to-all special case of MultiSourceScheme:
// every vertex holds a token. See MultiSourceScheme for the scheme and
// its verification model.
type GossipScheme struct {
	Root uint64
}

// multi returns the scheme's MultiSourceScheme form (all sources).
func (s GossipScheme) multi() MultiSourceScheme { return MultiSourceScheme{Root: s.Root} }

// Name implements Scheme.
func (s GossipScheme) Name() string { return "gossip" }

// Origin implements Scheme.
func (s GossipScheme) Origin() uint64 { return s.Root }

// Rounds implements Scheme; see MultiSourceScheme.Rounds.
func (s GossipScheme) Rounds(cube *Cube) iter.Seq[[]Call] { return s.multi().Rounds(cube) }

func (s GossipScheme) innerRounds(cube *Cube) iter.Seq[linecomm.Round] {
	return s.multi().innerRounds(cube)
}

// VerifyPlan implements PlanVerifier; see MultiSourceScheme.VerifyPlan.
func (s GossipScheme) VerifyPlan(cube *Cube, rounds iter.Seq[[]Call]) Report {
	return s.multi().VerifyPlan(cube, rounds)
}

// Gossip generates the gather-scatter all-to-all schedule rooted at
// root.
//
// Deprecated: use the Plan engine —
// c.Plan(GossipScheme{Root: root}).Materialize().
func (c *Cube) Gossip(root uint64) *Schedule {
	return c.Plan(GossipScheme{Root: root}).Materialize()
}

// GossipReport summarises gossip verification.
type GossipReport struct {
	Valid      bool
	Complete   bool // every vertex knows every token
	Rounds     int
	MinKnown   int // fewest tokens known by any vertex at the end
	Violations []string
}

// VerifyGossip checks a materialised schedule under the k-line gossip
// model with the serial validator, which simulates tokens only up to
// 2^14 vertices; see MultiSourceScheme for the model. For larger cubes
// (and the unified Report form) use the streamed plan engine,
// c.Plan(GossipScheme{...}).Verify(), which shards the simulation up to
// 2^20 vertices all-source and further with restricted source sets.
func (c *Cube) VerifyGossip(s *Schedule) (GossipReport, error) {
	if c.Order() > gossip.MaxSimulateOrder {
		return GossipReport{}, fmt.Errorf(
			"sparsehypercube: gossip simulation limited to 2^14 vertices, cube has 2^%d", c.N())
	}
	res := gossip.Validate(c.inner, c.K(), toInner(s))
	rep := GossipReport{
		Valid:    res.Valid(),
		Complete: res.Complete,
		Rounds:   res.Rounds,
		MinKnown: res.MinKnown,
	}
	for _, v := range res.Violations {
		rep.Violations = append(rep.Violations, v.String())
	}
	return rep, nil
}

// GossipMinimumRounds returns the gossip round lower bound ceil(log2 N).
func GossipMinimumRounds(order uint64) int { return gossip.MinimumRounds(order) }
