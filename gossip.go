package sparsehypercube

import (
	"fmt"
	"iter"

	"sparsehypercube/internal/gossip"
	"sparsehypercube/internal/linecomm"
)

// GossipScheme is the all-to-all gather-scatter scheme rooted at Root:
// the broadcast tree of Root run in reverse to concentrate every token
// at the root in n rounds, then the paper's Broadcast_k to disseminate
// them in n more. 2n rounds total, calls of length at most k — a factor
// 2 from the gossip lower bound ceil(log2 N); closing that factor at low
// degree is the open problem the paper's §5 poses.
//
// Its Plan verifies under the k-line gossip model (telephone exchanges
// over paths of at most k edges, per-round edge-disjointness, one call
// per vertex per round) with full token-propagation simulation, which is
// limited to cubes of at most 2^14 vertices; beyond the cap Verify
// reports a violation rather than guessing.
type GossipScheme struct {
	Root uint64
}

// Name implements Scheme.
func (s GossipScheme) Name() string { return "gossip" }

// Origin implements Scheme.
func (s GossipScheme) Origin() uint64 { return s.Root }

// Rounds implements Scheme. The gather phase replays the broadcast tree
// backwards, so one broadcast schedule is materialised internally
// before streaming — but never the doubled gossip schedule, so a gossip
// plan peaks at half the memory of Materialize. An out-of-range Root
// yields no rounds (and Plan.Verify reports it as a violation) rather
// than panicking.
func (s GossipScheme) Rounds(cube *Cube) iter.Seq[[]Call] {
	return fromInnerRounds(s.innerRounds(cube))
}

func (s GossipScheme) innerRounds(cube *Cube) iter.Seq[linecomm.Round] {
	if s.Root >= cube.Order() {
		return func(yield func(linecomm.Round) bool) {}
	}
	return gossip.StreamGatherScatter(cube.inner, s.Root)
}

// VerifyPlan implements PlanVerifier: gossip correctness is checked by
// the telephone-model validator and token simulation, not the broadcast
// validator. MinimumTime reports completion in ceil(log2 N) rounds —
// false for the 2n-round gather-scatter scheme, honestly.
func (s GossipScheme) VerifyPlan(cube *Cube, rounds iter.Seq[[]Call]) Report {
	if s.Root >= cube.Order() {
		// gossip.Validate ignores the originator (gossip has none), so
		// a bad root must be rejected here or an empty plan would pass
		// the model checks with Complete == false only.
		v := linecomm.Violation{Round: -1, Call: -1, Kind: linecomm.VertexOutOfRange,
			Msg: fmt.Sprintf("root %d outside [0,%d)", s.Root, cube.Order())}
		return Report{Violations: []string{v.String()}}
	}
	inner := &linecomm.Schedule{Source: s.Root}
	if cube.Order() <= gossip.MaxSimulateOrder {
		for round := range rounds {
			inner.Rounds = append(inner.Rounds, linecomm.CloneRound(toInnerRound(round)))
		}
	}
	// Beyond the simulation cap the stream is never consumed:
	// gossip.Validate reports the cap violation up front, and
	// materialising millions of calls first would only waste the memory
	// the Plan engine exists to save.
	res := gossip.Validate(cube.inner, cube.K(), inner)
	rep := Report{
		Valid:         res.Valid(),
		Complete:      res.Complete,
		MinimumTime:   res.MinimumTime,
		Rounds:        res.Rounds,
		MaxCallLength: inner.MaxCallLength(),
	}
	for _, v := range res.Violations {
		rep.Violations = append(rep.Violations, v.String())
	}
	return rep
}

// Gossip generates the gather-scatter all-to-all schedule rooted at
// root.
//
// Deprecated: use the Plan engine —
// c.Plan(GossipScheme{Root: root}).Materialize().
func (c *Cube) Gossip(root uint64) *Schedule {
	return c.Plan(GossipScheme{Root: root}).Materialize()
}

// GossipReport summarises gossip verification.
type GossipReport struct {
	Valid      bool
	Complete   bool // every vertex knows every token
	Rounds     int
	MinKnown   int // fewest tokens known by any vertex at the end
	Violations []string
}

// VerifyGossip checks a schedule under the k-line gossip model and
// simulates token propagation; see GossipScheme for the model. Only
// cubes with at most 2^14 vertices can be fully simulated. For the
// unified Report form, use c.Plan(GossipScheme{...}).Verify().
func (c *Cube) VerifyGossip(s *Schedule) (GossipReport, error) {
	if c.Order() > gossip.MaxSimulateOrder {
		return GossipReport{}, fmt.Errorf(
			"sparsehypercube: gossip simulation limited to 2^14 vertices, cube has 2^%d", c.N())
	}
	res := gossip.Validate(c.inner, c.K(), toInner(s))
	rep := GossipReport{
		Valid:    res.Valid(),
		Complete: res.Complete,
		Rounds:   res.Rounds,
		MinKnown: res.MinKnown,
	}
	for _, v := range res.Violations {
		rep.Violations = append(rep.Violations, v.String())
	}
	return rep, nil
}

// GossipMinimumRounds returns the gossip round lower bound ceil(log2 N).
func GossipMinimumRounds(order uint64) int { return gossip.MinimumRounds(order) }
