package sparsehypercube

import (
	"fmt"

	"sparsehypercube/internal/gossip"
	"sparsehypercube/internal/linecomm"
)

// Gossip generates an all-to-all schedule on the cube (every vertex
// starts with a token; at the end every vertex knows every token) using
// the gather-scatter scheme: the broadcast tree of root run in reverse to
// concentrate all tokens at root in n rounds, then the paper's
// Broadcast_k to disseminate them in n more. 2n rounds total, calls of
// length at most k — a factor 2 from the gossip lower bound
// ceil(log2 N); closing that factor at low degree is the open problem the
// paper's §5 poses.
func (c *Cube) Gossip(root uint64) *Schedule {
	inner := gossip.GatherScatter(c.inner, root)
	out := &Schedule{Source: inner.Source, Rounds: make([][]Call, len(inner.Rounds))}
	for i, round := range inner.Rounds {
		calls := make([]Call, len(round))
		for j, call := range round {
			calls[j] = Call{Path: call.Path}
		}
		out.Rounds[i] = calls
	}
	return out
}

// GossipReport summarises gossip verification.
type GossipReport struct {
	Valid      bool
	Complete   bool // every vertex knows every token
	Rounds     int
	MinKnown   int // fewest tokens known by any vertex at the end
	Violations []string
}

// VerifyGossip checks a schedule under the k-line gossip model (telephone
// exchanges over paths of at most k edges, per-round edge-disjointness,
// one call per vertex per round) and simulates token propagation. Only
// cubes with at most 2^14 vertices can be fully simulated.
func (c *Cube) VerifyGossip(s *Schedule) (GossipReport, error) {
	if c.Order() > gossip.MaxSimulateOrder {
		return GossipReport{}, fmt.Errorf(
			"sparsehypercube: gossip simulation limited to 2^14 vertices, cube has 2^%d", c.N())
	}
	inner := &linecomm.Schedule{Source: s.Source, Rounds: make([]linecomm.Round, len(s.Rounds))}
	for i, round := range s.Rounds {
		calls := make(linecomm.Round, len(round))
		for j, call := range round {
			calls[j] = linecomm.Call{Path: call.Path}
		}
		inner.Rounds[i] = calls
	}
	res := gossip.Validate(c.inner, c.K(), inner)
	rep := GossipReport{
		Valid:    res.Valid(),
		Complete: res.Complete,
		Rounds:   res.Rounds,
		MinKnown: res.MinKnown,
	}
	for _, v := range res.Violations {
		rep.Violations = append(rep.Violations, v.String())
	}
	return rep, nil
}

// GossipMinimumRounds returns the gossip round lower bound ceil(log2 N).
func GossipMinimumRounds(order uint64) int { return gossip.MinimumRounds(order) }
