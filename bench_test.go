// Benchmarks, one per experiment family of DESIGN.md's index. They
// measure the generators behind each reproduced figure/table (construction,
// scheme generation, validation, search) and report the headline
// combinatorial quantity of the experiment via b.ReportMetric so the bench
// log doubles as a summary of the reproduction.
package sparsehypercube_test

import (
	"testing"

	"sparsehypercube"
	"sparsehypercube/internal/broadcast"
	"sparsehypercube/internal/core"
	"sparsehypercube/internal/gossip"
	"sparsehypercube/internal/graph"
	"sparsehypercube/internal/hamming"
	"sparsehypercube/internal/labeling"
	"sparsehypercube/internal/linecomm"
	"sparsehypercube/internal/topo"
	"sparsehypercube/internal/treecast"
)

// EXP-FIG1 / EXP-THM1: tri-tree scheme generation + validation, h = 7
// (N = 382, k = 14).
func BenchmarkFig1TriTree(b *testing.B) {
	h := 7
	g := topo.TriTree(h)
	net := linecomm.GraphNetwork{G: g}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched, err := broadcast.TriTreeSchedule(h, i%g.NumVertices())
		if err != nil {
			b.Fatal(err)
		}
		res := linecomm.Validate(net, 2*h, sched)
		if !res.MinimumTime {
			b.Fatal("not minimum time")
		}
	}
	b.ReportMetric(float64(g.MaxDegree()), "maxdegree")
	b.ReportMetric(float64(broadcast.TriTreeMinimumRounds(h)), "rounds")
}

// EXP-FIG3: constructing and materialising G_{4,2}.
func BenchmarkFig3ConstructBase(b *testing.B) {
	var delta int
	for i := 0; i < b.N; i++ {
		s, err := core.NewBase(4, 2)
		if err != nil {
			b.Fatal(err)
		}
		g, err := s.Graph()
		if err != nil {
			b.Fatal(err)
		}
		delta = g.MaxDegree()
	}
	b.ReportMetric(float64(delta), "maxdegree")
}

// EXP-FIG4: the Example-4 broadcast in G_{4,2}, generated and validated.
func BenchmarkFig4Broadcast(b *testing.B) {
	s, err := core.NewBase(4, 2, core.LevelSpec{
		Labeling:  labeling.PaperExample1Q2(),
		Partition: [][]int{{3}, {4}},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched := s.BroadcastSchedule(0)
		if !linecomm.Validate(s, 2, sched).MinimumTime {
			b.Fatal("invalid")
		}
	}
}

// EXP-EX3: the paper's G_{15,3} — construction, full scheme from one
// source (32767 calls), validation.
func BenchmarkEx3G15_3(b *testing.B) {
	s, err := core.NewBase(15, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched := s.BroadcastSchedule(0)
		res := linecomm.Validate(s, 2, sched)
		if !res.MinimumTime {
			b.Fatal("invalid")
		}
	}
	b.ReportMetric(float64(s.MaxDegree()), "maxdegree")
}

// EXP-THM4: Broadcast_2 schedule generation alone (n = 15, m = 3).
func BenchmarkThm4ScheduleGen(b *testing.B) {
	s, err := core.NewBase(15, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched := s.BroadcastSchedule(uint64(i) & (s.Order() - 1))
		if len(sched.Rounds) != 15 {
			b.Fatal("wrong round count")
		}
	}
}

// EXP-THM4 (validator half): validating a fixed 32k-call schedule.
func BenchmarkThm4Validate(b *testing.B) {
	s, err := core.NewBase(15, 3)
	if err != nil {
		b.Fatal(err)
	}
	sched := s.BroadcastSchedule(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !linecomm.Validate(s, 2, sched).MinimumTime {
			b.Fatal("invalid")
		}
	}
}

// EXP-THM4 at production scale: materialised schedule generation for
// 2^20 vertices, the baseline the streaming engine is measured against.
func BenchmarkThm4ScheduleGenN20(b *testing.B) {
	s, err := core.NewAuto(2, 20)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched := s.BroadcastSchedule(0)
		if len(sched.Rounds) != 20 {
			b.Fatal("wrong round count")
		}
	}
}

// EXP-THM4 streaming half: the same 2^20-vertex scheme through
// ScheduleRounds — round-at-a-time, arena-backed, parallel call paths.
func BenchmarkThm4StreamGenN20(b *testing.B) {
	s, err := core.NewAuto(2, 20)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		calls := 0
		for round := range s.ScheduleRounds(0) {
			calls += len(round)
		}
		if calls != 1<<20-1 {
			b.Fatal("wrong call count")
		}
	}
}

// EXP-THM4 validator at production scale: map-based Validate on a fixed
// 2^20-vertex materialised schedule.
func BenchmarkThm4ValidateN20(b *testing.B) {
	s, err := core.NewAuto(2, 20)
	if err != nil {
		b.Fatal(err)
	}
	sched := s.BroadcastSchedule(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !linecomm.Validate(s, 2, sched).MinimumTime {
			b.Fatal("invalid")
		}
	}
}

// EXP-THM4 streaming validator: the same fixed schedule through
// ValidateStream's bit-set engine.
func BenchmarkThm4StreamValidateN20(b *testing.B) {
	s, err := core.NewAuto(2, 20)
	if err != nil {
		b.Fatal(err)
	}
	sched := s.BroadcastSchedule(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !linecomm.ValidateStream(s, 2, sched.Source, sched.Stream()).MinimumTime {
			b.Fatal("invalid")
		}
	}
}

// EXP-STREAM: the fully streamed generate-and-validate pipeline at sizes
// where the schedule is never materialised (peak heap stays at the
// frontier, not the call total). Run with -benchtime=1x for a quick
// certification of the 4M- and 16M-vertex regimes.
func benchmarkStreamPipeline(b *testing.B, k, n int) {
	s, err := core.NewAuto(k, n)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := linecomm.ValidateStream(s, k, 0, s.ScheduleRounds(0))
		if !res.MinimumTime {
			b.Fatal("invalid")
		}
	}
	b.ReportMetric(float64(uint64(1)<<n-1), "calls")
}

func BenchmarkStreamPipelineN20(b *testing.B) { benchmarkStreamPipeline(b, 2, 20) }
func BenchmarkStreamPipelineN22(b *testing.B) { benchmarkStreamPipeline(b, 3, 22) }
func BenchmarkStreamPipelineN24(b *testing.B) { benchmarkStreamPipeline(b, 3, 24) }

// EXP-THM5: the k = 2 degree series over n <= 64 (parameter selection +
// exact degree formula; the numbers behind the Theorem-5 table).
func BenchmarkThm5Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for n := 2; n <= core.MaxN; n++ {
			if _, err := core.DegreeForParams(core.BaseParams(n, core.Theorem5M(n))); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// EXP-THM6: Broadcast_k generation + validation for a 4-level
// construction on 2^14 vertices.
func BenchmarkThm6Schedule(b *testing.B) {
	s, err := core.New(core.Params{K: 4, Dims: []int{2, 4, 7, 14}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched := s.BroadcastSchedule(0)
		res := linecomm.Validate(s, 4, sched)
		if !res.MinimumTime || res.MaxCallLength > 4 {
			b.Fatal("invalid")
		}
	}
	b.ReportMetric(float64(s.MaxDegree()), "maxdegree")
}

// EXP-THM7: parameter search for k = 3..6 at n = 40.
func BenchmarkThm7ParamSearch(b *testing.B) {
	var last int
	for i := 0; i < b.N; i++ {
		for k := 3; k <= 6; k++ {
			p, err := core.AutoParams(k, 40)
			if err != nil {
				b.Fatal(err)
			}
			d, err := core.DegreeForParams(p)
			if err != nil {
				b.Fatal(err)
			}
			last = d
		}
	}
	b.ReportMetric(float64(last), "delta_k6_n40")
}

// EXP-COR1: the Corollary-1 regime k = ceil(log2 n) across n <= 64.
func BenchmarkCor1Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for n := 4; n <= core.MaxN; n++ {
			p, err := core.AutoParams(core.Corollary1K(n), n)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.DegreeForParams(p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// EXP-LEM2: building the Hamming-coset labeling of Q_15 (32768 labels +
// dominator table), the largest window the constructions use in practice.
func BenchmarkLem2Labeling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := labeling.Hamming(15); err != nil {
			b.Fatal(err)
		}
	}
}

// EXP-LEM2 (exact half): exhaustive lambda_4 search.
func BenchmarkLem2Exhaustive(b *testing.B) {
	var lam int
	for i := 0; i < b.N; i++ {
		lam, _ = labeling.MaxLabelsExhaustive(4)
	}
	b.ReportMetric(float64(lam), "lambda4")
}

// EXP-ABL: the exhaustive 2-mlbg certification of G_{4,2} (the inner loop
// of the ablation study).
func BenchmarkAblationChecker(b *testing.B) {
	s, err := core.NewBase(4, 2)
	if err != nil {
		b.Fatal(err)
	}
	g, err := s.Graph()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, _, err := broadcast.IsKMLBG(g, 2)
		if err != nil || !ok {
			b.Fatal("checker failed")
		}
	}
}

// EXP-CONG: congestion analytics over a 2^12-vertex schedule.
func BenchmarkCongestionAnalysis(b *testing.B) {
	s, err := core.NewBase(12, 4)
	if err != nil {
		b.Fatal(err)
	}
	sched := s.BroadcastSchedule(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := linecomm.Congestion(sched)
		if st.MaxEdgeLoad < 1 {
			b.Fatal("no congestion data")
		}
	}
}

// EXP-ZOO: baseline store-and-forward broadcast on Q_10 (matching-driven).
func BenchmarkZooStoreForward(b *testing.B) {
	g := topo.Hypercube(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched, err := broadcast.StoreForwardSchedule(g, 0)
		if err != nil || len(sched.Rounds) != 10 {
			b.Fatal("store-and-forward broken")
		}
	}
}

// Microbenchmark: the recursive call-path primitive at k = 4, n = 20
// (allocating form; the path allocation dominates the labeling lookups).
func BenchmarkCallPath(b *testing.B) {
	s, err := core.New(core.Params{K: 4, Dims: []int{2, 5, 10, 20}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := s.CallPath(uint64(i)&(s.Order()-1), 20)
		if len(p) < 2 {
			b.Fatal("bad path")
		}
	}
}

// Microbenchmark: allocation-free call-path construction for the
// highest-level dimension (d = 20, level 4) — the streaming generator's
// hot loop, and the cost the per-dimension flat route tables cut: one
// shifted load per level instead of the level/class indirection plus
// label and dominator-bit lookups (22-24 ns/op before the tables,
// 14-15 ns/op with them, 1-core Xeon 2.1 GHz).
func BenchmarkAppendCallPathLevel4(b *testing.B) {
	s, err := core.New(core.Params{K: 4, Dims: []int{2, 5, 10, 20}})
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]uint64, 0, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = s.AppendCallPath(buf[:0], uint64(i)&(s.Order()-1), 20)
	}
	if len(buf) < 2 {
		b.Fatal("bad path")
	}
}

// Microbenchmark: materialising a 2^16-vertex construction.
func BenchmarkMaterializeGraph(b *testing.B) {
	s, err := core.NewBase(16, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := s.Graph()
		if err != nil {
			b.Fatal(err)
		}
		if g.NumVertices() != 1<<16 {
			b.Fatal("wrong order")
		}
	}
}

// Microbenchmark: Hamming syndrome throughput (the labeling hot path).
func BenchmarkHammingSyndrome(b *testing.B) {
	c, err := hamming.New(5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Syndrome(uint64(i) & (1<<31 - 1))
	}
}

// End-to-end through the public API: construct, broadcast, verify at
// k = 2, n = 12.
func BenchmarkPublicAPIEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cube, err := sparsehypercube.New(2, 12)
		if err != nil {
			b.Fatal(err)
		}
		rep := cube.Verify(cube.Broadcast(0))
		if !rep.MinimumTime {
			b.Fatal("invalid")
		}
	}
}

// EXP-GOSSIP: gather-scatter gossip generation + full token simulation on
// 2^10 vertices.
func BenchmarkGossipGatherScatter(b *testing.B) {
	s, err := core.NewBase(10, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched := gossip.GatherScatter(s, 0)
		res := gossip.Validate(s, 2, sched)
		if !res.Complete {
			b.Fatal("gossip incomplete")
		}
	}
	b.ReportMetric(float64(2*s.N()), "rounds")
}

// EXP-GOSSIP-STREAM: streamed gather-scatter generation at n = 20, k = 2
// — the regime PR 1 established for broadcast. Rounds are rebuilt from
// the precomputed frontier; the doubled schedule is never materialised.
func BenchmarkGossipStreamGenN20(b *testing.B) {
	s, err := core.NewAuto(2, 20)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		calls := 0
		for r := range s.ScheduleGossipRounds(0) {
			calls += len(r)
		}
		if calls != 2*(int(s.Order())-1) {
			b.Fatalf("generated %d calls", calls)
		}
	}
	b.ReportMetric(float64(2*s.N()), "rounds")
}

// benchmarkGossipStreamPipeline generates and validates the streamed
// gossip scheme in one pass, tracking 1024 sampled source tokens exactly
// (the all-source n = 20 simulation is the one-shot acceptance run of
// benchtab -exp gossip — too slow per benchmark iteration).
func benchmarkGossipStreamPipeline(b *testing.B, k, n int) {
	s, err := core.NewAuto(k, n)
	if err != nil {
		b.Fatal(err)
	}
	sources := make([]uint64, 1024)
	for i := range sources {
		sources[i] = uint64(i) * (s.Order() / 1024)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := linecomm.ValidateMultiSourceStream(s, k, sources, s.ScheduleGossipRounds(0))
		if !res.Valid() || !res.Complete {
			b.Fatalf("streamed gossip pipeline failed: %+v", res)
		}
	}
	b.ReportMetric(float64(2*n), "rounds")
}

func BenchmarkGossipStreamPipelineN20(b *testing.B) { benchmarkGossipStreamPipeline(b, 2, 20) }
func BenchmarkGossipStreamPipelineN22(b *testing.B) { benchmarkGossipStreamPipeline(b, 2, 22) }

// EXP-DIAM: diameter of a materialised 2^12-vertex construction
// (footnote 1's quantity).
func BenchmarkDiameter(b *testing.B) {
	s, err := core.NewBase(12, 4)
	if err != nil {
		b.Fatal(err)
	}
	g, err := s.Graph()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var d int
	for i := 0; i < b.N; i++ {
		d = graph.Diameter(g)
	}
	b.ReportMetric(float64(d), "diameter")
}

// EXP-PERMZOO: star-graph generation at order 720.
func BenchmarkPermZooStarGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := topo.StarGraph(6)
		if g.NumVertices() != 720 {
			b.Fatal("wrong order")
		}
	}
}

// EXP-TREE (§2, class G_{N-1}): generic tree line-broadcast planning on a
// 255-vertex complete binary tree.
func BenchmarkTreecastCBT7(b *testing.B) {
	g := topo.CompleteBinaryTree(7)
	p, err := treecast.New(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched, err := p.Schedule(i % g.NumVertices())
		if err != nil {
			b.Fatal(err)
		}
		if len(sched.Rounds) > p.MinimumRounds()+1 {
			b.Fatal("schedule too long")
		}
	}
}

// EXP-MBG (§2 class G_1): certifying the catalogued 16-vertex minimum
// broadcast graph (Q_4) with the exhaustive checker at k = 1.
func BenchmarkMbgCatalogueQ4(b *testing.B) {
	g, err := broadcast.MinimumBroadcastGraph(16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, _, err := broadcast.IsKMLBG(g, 1)
		if err != nil || !ok {
			b.Fatal("catalogue check failed")
		}
	}
}
