package sparsehypercube

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestPlanConcurrentVerify pins the concurrency contract under -race:
// 8 goroutines verifying one Plan handle must produce identical Reports
// with no data race, for a generative plan and for a ReadPlanAt replay
// (indexed and plain).
func TestPlanConcurrentVerify(t *testing.T) {
	cube, err := New(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	gen := cube.Plan(BroadcastScheme{Source: 3})
	want := gen.Verify()
	if !want.Valid || !want.MinimumTime {
		t.Fatalf("baseline report invalid: %+v", want)
	}

	var plain, indexed bytes.Buffer
	if _, err := gen.WriteTo(&plain); err != nil {
		t.Fatal(err)
	}
	if _, err := gen.WriteIndexedTo(&indexed); err != nil {
		t.Fatal(err)
	}
	planAt, err := ReadPlanAt(bytes.NewReader(plain.Bytes()), int64(plain.Len()))
	if err != nil {
		t.Fatal(err)
	}
	planAtIdx, err := ReadPlanAt(bytes.NewReader(indexed.Bytes()), int64(indexed.Len()))
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		plan *Plan
	}{
		{"generative", gen},
		{"readplanat", planAt},
		{"readplanat-indexed", planAtIdx},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const goroutines = 8
			reports := make([]Report, goroutines)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					reports[g] = tc.plan.Verify()
				}(g)
			}
			wg.Wait()
			for g, rep := range reports {
				if !reflect.DeepEqual(rep, want) {
					t.Fatalf("goroutine %d diverged:\ngot  %+v\nwant %+v", g, rep, want)
				}
			}
			if err := tc.plan.Err(); err != nil {
				t.Fatalf("Err after concurrent verifies: %v", err)
			}
		})
	}
}

// TestPlanSingleUseErrSurfaces: consuming a ReadPlan plan twice through
// the consumers that do not report per-consumption status (Rounds,
// Materialize) must leave the misuse visible on Err — an empty second
// snapshot with a nil Err would read as an empty plan.
func TestPlanSingleUseErrSurfaces(t *testing.T) {
	cube, err := New(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := cube.Plan(BroadcastScheme{Source: 0}).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	replay, err := ReadPlan(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for range replay.Rounds() {
	}
	if err := replay.Err(); err != nil {
		t.Fatalf("Err after clean drain: %v", err)
	}
	if s := replay.Materialize(); len(s.Rounds) != 0 {
		t.Fatalf("second consumption yielded %d rounds", len(s.Rounds))
	}
	if err := replay.Err(); err == nil || !strings.Contains(err.Error(), "single-use") {
		t.Fatalf("Err after second consumption = %v, want the single-use error", err)
	}
}

// TestPlanSingleUseConcurrentClaim: on a stream-replayed (ReadPlan)
// plan, exactly one of 8 concurrent verifiers wins the single round
// stream; the others fail with the clean single-use violation, and the
// winner's report matches the direct one.
func TestPlanSingleUseConcurrentClaim(t *testing.T) {
	cube, err := New(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	direct := cube.Plan(BroadcastScheme{Source: 0}).Verify()
	var buf bytes.Buffer
	if _, err := cube.Plan(BroadcastScheme{Source: 0}).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	replay, err := ReadPlan(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	reports := make([]Report, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			reports[g] = replay.Verify()
		}(g)
	}
	wg.Wait()

	winners, losers := 0, 0
	for _, rep := range reports {
		if reflect.DeepEqual(rep, direct) {
			winners++
			continue
		}
		losers++
		if rep.Valid {
			t.Fatalf("losing verifier reported valid: %+v", rep)
		}
		found := false
		for _, v := range rep.Violations {
			if strings.Contains(v, "single-use") {
				found = true
			}
		}
		if !found {
			t.Fatalf("losing verifier lacks the single-use violation: %+v", rep)
		}
	}
	if winners != 1 || losers != goroutines-1 {
		t.Fatalf("winners = %d, losers = %d", winners, losers)
	}
}
