package sparsehypercube

import (
	"reflect"
	"testing"
)

// TestBroadcastRoundsMatchBroadcast checks that the streaming facade
// reproduces the materialised schedule exactly (rounds deep-copied out
// of the reused buffers before comparing).
func TestBroadcastRoundsMatchBroadcast(t *testing.T) {
	for _, kn := range [][2]int{{1, 6}, {2, 10}, {3, 12}} {
		cube, err := New(kn[0], kn[1])
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range []uint64{0, 1, cube.Order() - 1} {
			want := cube.Broadcast(src)
			got := &Schedule{Source: src}
			for round := range cube.BroadcastRounds(src) {
				copied := make([]Call, len(round))
				for i, c := range round {
					copied[i] = Call{Path: append([]uint64(nil), c.Path...)}
				}
				got.Rounds = append(got.Rounds, copied)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("k=%d n=%d src=%d: streamed rounds diverge from Broadcast", kn[0], kn[1], src)
			}
		}
	}
}

// TestVerifyBroadcastMinimumTime runs the fully streamed pipeline at
// sizes where the materialised path is already uncomfortable.
func TestVerifyBroadcastMinimumTime(t *testing.T) {
	for _, kn := range [][2]int{{2, 14}, {3, 15}} {
		cube, err := New(kn[0], kn[1])
		if err != nil {
			t.Fatal(err)
		}
		rep := cube.VerifyBroadcast(7)
		if !rep.Valid || !rep.MinimumTime || rep.Rounds != kn[1] || rep.MaxCallLength > kn[0] {
			t.Fatalf("k=%d n=%d: streamed verification failed: %+v", kn[0], kn[1], rep)
		}
	}
}

// TestVerifyRoundsCatchesTampering streams a tampered schedule and
// expects the streaming validator to reject it like Verify does.
func TestVerifyRoundsCatchesTampering(t *testing.T) {
	cube, err := New(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	sched := cube.Broadcast(0)
	sched.Rounds[2][0].Path[len(sched.Rounds[2][0].Path)-1] = sched.Rounds[2][1].To()
	stream := func(yield func([]Call) bool) {
		for _, r := range sched.Rounds {
			if !yield(r) {
				return
			}
		}
	}
	repStream := cube.VerifyRounds(sched.Source, stream)
	repSerial := cube.Verify(sched)
	if repStream.Valid || repSerial.Valid {
		t.Fatal("tampered schedule accepted")
	}
	if !reflect.DeepEqual(repStream, repSerial) {
		t.Fatalf("stream/serial reports diverge:\n%+v\n%+v", repStream, repSerial)
	}
}

// TestCallEndpointsFacade pins the empty-path guards on the public Call.
func TestCallEndpointsFacade(t *testing.T) {
	var zero Call
	if zero.From() != 0 || zero.To() != 0 {
		t.Fatal("zero-value Call endpoint accessors must not panic and return 0")
	}
	if _, _, ok := zero.Endpoints(); ok {
		t.Fatal("Endpoints on zero-value Call reported ok")
	}
}
