package sparsehypercube

import "testing"

func TestScheduleStats(t *testing.T) {
	cube, err := NewWithDims(2, []int{3, 10})
	if err != nil {
		t.Fatal(err)
	}
	sched := cube.Broadcast(0)
	st := cube.Stats(sched)
	if st.Rounds != 10 {
		t.Errorf("rounds = %d", st.Rounds)
	}
	if st.TotalCalls != int(cube.Order())-1 {
		t.Errorf("calls = %d, want %d", st.TotalCalls, cube.Order()-1)
	}
	if st.CallLengthCount[1]+st.CallLengthCount[2] != st.TotalCalls {
		t.Errorf("length histogram inconsistent: %v", st.CallLengthCount)
	}
	if st.MinEdgeCapacity != 1 {
		t.Errorf("valid schedule needs capacity %d, want 1", st.MinEdgeCapacity)
	}
	if st.EdgesUsed < int(cube.Order())-1 {
		t.Errorf("edges used = %d, too few", st.EdgesUsed)
	}
	if st.MaxEdgeLoad < 1 || st.MeanEdgeLoad < 1 {
		t.Errorf("loads implausible: %+v", st)
	}
	// A gossip schedule doubles the usage but still fits capacity 1.
	gst := cube.Stats(cube.Gossip(0))
	if gst.Rounds != 20 || gst.TotalCalls != 2*st.TotalCalls {
		t.Errorf("gossip stats wrong: %+v", gst)
	}
	if gst.MinEdgeCapacity != 1 {
		t.Errorf("gossip schedule needs capacity %d", gst.MinEdgeCapacity)
	}
}
