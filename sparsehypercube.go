// Package sparsehypercube is the public API of a full reproduction of
//
//	S. Fujita, A. M. Farley, "Sparse Hypercube — a minimal k-line
//	broadcast graph", IPPS/SPDP'99; Discrete Applied Mathematics 127
//	(2003) 431–446.
//
// A sparse hypercube is a spanning subgraph of the binary n-cube that is
// still a minimal k-line broadcast graph: from any originator, a broadcast
// completes in the information-theoretic minimum ceil(log2 N) = n rounds
// under the k-line communication model (per round, each informed vertex
// may call one vertex over a path of at most k edges; simultaneous calls
// must be edge-disjoint and receiver-disjoint), while the maximum degree
// drops from n to at most (2k-1)*ceil(n^(1/k)) - k.
//
// Quick start:
//
//	cube, err := sparsehypercube.New(2, 15) // k = 2, N = 2^15
//	sched := cube.Broadcast(0)
//	report := cube.Verify(sched)            // report.MinimumTime == true
//
// # Streaming at scale
//
// Broadcast materialises the whole schedule — fine up to a few hundred
// thousand vertices, wasteful beyond. For the millions-of-vertices
// regime the package exposes a streaming engine: BroadcastRounds yields
// the schedule one round at a time straight off the informed-set
// frontier (call paths built in parallel across a worker pool), and
// VerifyBroadcast pipes that stream through a round-at-a-time validator
// whose per-round disjointness checks run on flat bit sets instead of
// hash maps. Peak memory is O(frontier) — the widest single round —
// instead of the full schedule's O(N·n·k) words, and nothing is retained
// between rounds:
//
//	cube, err := sparsehypercube.New(3, 24)   // 16.7M vertices
//	report := cube.VerifyBroadcast(0)         // report.MinimumTime == true
//	for round := range cube.BroadcastRounds(0) {
//		emit(round) // valid until the next iteration step
//	}
//
// The heavy lifting lives in internal packages (construction, labelings,
// communication model, baselines, experiment harness); this package keeps
// the downstream surface small and stable.
package sparsehypercube

import (
	"fmt"
	"iter"

	"sparsehypercube/internal/core"
	"sparsehypercube/internal/linecomm"
)

// Cube is a sparse hypercube: an implicit graph on 2^n vertices.
type Cube struct {
	inner *core.SparseHypercube
}

// New constructs a k-mlbg on 2^n vertices with automatically chosen
// parameters (the paper's Theorem 5/7 choices refined by local search).
// k = 1 yields the full hypercube Q_n.
func New(k, n int) (*Cube, error) {
	inner, err := core.NewAuto(k, n)
	if err != nil {
		return nil, err
	}
	return &Cube{inner: inner}, nil
}

// NewWithDims constructs Construct(k, (n, n_{k-1}, ..., n_1)) with an
// explicit parameter vector dims = [n_1 < ... < n_{k-1} < n] of length k.
func NewWithDims(k int, dims []int) (*Cube, error) {
	inner, err := core.New(core.Params{K: k, Dims: append([]int(nil), dims...)})
	if err != nil {
		return nil, err
	}
	return &Cube{inner: inner}, nil
}

// K returns the call-length bound the cube was built for.
func (c *Cube) K() int { return c.inner.K() }

// N returns the cube dimension n (order 2^n).
func (c *Cube) N() int { return c.inner.N() }

// Order returns the number of vertices, 2^n.
func (c *Cube) Order() uint64 { return c.inner.Order() }

// Dims returns a copy of the parameter vector [n_1, ..., n_{k-1}, n].
func (c *Cube) Dims() []int {
	return append([]int(nil), c.inner.Params().Dims...)
}

// MaxDegree returns the exact maximum vertex degree.
func (c *Cube) MaxDegree() int { return c.inner.MaxDegree() }

// MinDegree returns the exact minimum vertex degree.
func (c *Cube) MinDegree() int { return c.inner.MinDegree() }

// NumEdges returns the exact number of edges.
func (c *Cube) NumEdges() uint64 { return c.inner.NumEdges() }

// Degree returns the degree of vertex u.
func (c *Cube) Degree(u uint64) int { return c.inner.DegreeOf(u) }

// HasEdge reports whether {u, v} is an edge.
func (c *Cube) HasEdge(u, v uint64) bool { return c.inner.HasEdge(u, v) }

// Neighbors returns the sorted adjacency of u.
func (c *Cube) Neighbors(u uint64) []uint64 { return c.inner.Neighbors(u) }

// Describe renders the level structure (windows, labelings, partitions).
func (c *Cube) Describe() string { return c.inner.Describe() }

// Call is one circuit-switched call: Path[0] is the caller, the last
// element the receiver, and the path occupies len(Path)-1 <= k edges.
type Call struct {
	Path []uint64
}

// From returns the calling vertex, or 0 for a call with an empty path
// (never produced by Broadcast; Verify reports such calls as invalid).
func (c Call) From() uint64 {
	if len(c.Path) == 0 {
		return 0
	}
	return c.Path[0]
}

// To returns the receiving vertex, or 0 for a call with an empty path.
func (c Call) To() uint64 {
	if len(c.Path) == 0 {
		return 0
	}
	return c.Path[len(c.Path)-1]
}

// Endpoints returns the caller and receiver; ok is false when the path
// is empty and both endpoints are meaningless.
func (c Call) Endpoints() (from, to uint64, ok bool) {
	if len(c.Path) == 0 {
		return 0, 0, false
	}
	return c.Path[0], c.Path[len(c.Path)-1], true
}

// Schedule is a round-by-round broadcast plan.
type Schedule struct {
	Source uint64
	Rounds [][]Call
}

// Broadcast generates the paper's minimum-time k-line broadcast scheme
// from source: exactly n rounds, calls of length at most k.
func (c *Cube) Broadcast(source uint64) *Schedule {
	inner := c.inner.BroadcastSchedule(source)
	out := &Schedule{Source: inner.Source, Rounds: make([][]Call, len(inner.Rounds))}
	for i, round := range inner.Rounds {
		calls := make([]Call, len(round))
		for j, call := range round {
			calls[j] = Call{Path: call.Path}
		}
		out.Rounds[i] = calls
	}
	return out
}

// BroadcastRounds is the streaming variant of Broadcast: it yields the
// scheme one round at a time, built from the informed-set frontier with
// call paths constructed in parallel. Peak memory is O(frontier) rather
// than the full schedule's O(N·n·k) words, which is what makes
// million-vertex (n >= 20) broadcasts practical.
//
// The yielded slice and the paths inside it are reused between
// iterations; copy anything that must outlive the step.
func (c *Cube) BroadcastRounds(source uint64) iter.Seq[[]Call] {
	return convertRounds(c.inner.ScheduleRounds(source),
		func(call linecomm.Call) Call { return Call{Path: call.Path} })
}

// convertRounds adapts a round stream between call representations,
// reusing one output buffer across iterations (paths are aliased).
func convertRounds[R ~[]T, T, U any](rounds iter.Seq[R], conv func(T) U) iter.Seq[[]U] {
	return func(yield func([]U) bool) {
		var buf []U
		for round := range rounds {
			if cap(buf) < len(round) {
				buf = make([]U, len(round))
			}
			buf = buf[:len(round)]
			for i, call := range round {
				buf[i] = conv(call)
			}
			if !yield(buf) {
				return
			}
		}
	}
}

// Report summarises schedule verification against the k-line model.
type Report struct {
	Valid         bool
	Complete      bool
	MinimumTime   bool
	Rounds        int
	MaxCallLength int
	Violations    []string
}

// toInner converts a public schedule to the internal representation.
// Paths are aliased, not copied.
func toInner(s *Schedule) *linecomm.Schedule {
	inner := &linecomm.Schedule{Source: s.Source, Rounds: make([]linecomm.Round, len(s.Rounds))}
	for i, round := range s.Rounds {
		calls := make(linecomm.Round, len(round))
		for j, call := range round {
			calls[j] = linecomm.Call{Path: call.Path}
		}
		inner.Rounds[i] = calls
	}
	return inner
}

// reportFrom converts a validation result to the public report.
func reportFrom(res *linecomm.Result, rounds int) Report {
	rep := Report{
		Valid:         res.Valid(),
		Complete:      res.Complete,
		MinimumTime:   res.MinimumTime,
		Rounds:        rounds,
		MaxCallLength: res.MaxCallLength,
	}
	for _, v := range res.Violations {
		rep.Violations = append(rep.Violations, v.String())
	}
	return rep
}

// Verify checks a schedule against this cube under the k-line model
// (edge existence, call lengths, per-round edge- and receiver-
// disjointness, caller knowledge, completion, minimality).
func (c *Cube) Verify(s *Schedule) Report {
	res := linecomm.Validate(c.inner, c.K(), toInner(s))
	return reportFrom(res, len(s.Rounds))
}

// VerifyRounds is the streaming variant of Verify: it consumes a round
// stream (for example BroadcastRounds, or rounds decoded off the wire)
// and validates each round as it arrives, using flat bit-set
// disjointness tracking instead of per-round hash maps. Yielded rounds
// may reuse storage — nothing is retained across iteration steps.
// Report.Rounds counts the rounds actually validated: 0 when source is
// rejected up front, in which case the stream is never consumed.
func (c *Cube) VerifyRounds(source uint64, rounds iter.Seq[[]Call]) Report {
	seq := convertRounds(rounds,
		func(call Call) linecomm.Call { return linecomm.Call{Path: call.Path} })
	res := linecomm.ValidateStream(c.inner, c.K(), source,
		func(yield func(linecomm.Round) bool) {
			for r := range seq {
				if !yield(linecomm.Round(r)) {
					return
				}
			}
		})
	return reportFrom(res, len(res.InformedPerRound))
}

// VerifyBroadcast generates and validates the broadcast from source in
// one streamed pass — the machine-checked form of Theorems 4 and 6 at
// O(frontier) memory. It is the way to certify million-vertex cubes
// where materialising the schedule is not an option.
func (c *Cube) VerifyBroadcast(source uint64) Report {
	res := linecomm.ValidateStream(c.inner, c.K(), source, c.inner.ScheduleRounds(source))
	return reportFrom(res, len(res.InformedPerRound))
}

// FormatSchedule renders a schedule with n-bit vertex labels.
func (c *Cube) FormatSchedule(s *Schedule) string {
	return toInner(s).Format(c.N())
}

// MinimumRounds returns ceil(log2 N), the broadcast time lower bound for
// any N-vertex network.
func MinimumRounds(order uint64) int { return linecomm.MinimumRounds(order) }

// LowerBoundDegree returns the paper's degree lower bound for k-mlbgs on
// 2^n vertices (Theorems 2 and 3).
func LowerBoundDegree(k, n int) int { return core.LowerBoundDegree(k, n) }

// UpperBoundDegree returns the paper's constructive degree guarantee for
// a k-mlbg on 2^n vertices: Theorem 5 for k = 2, Theorem 7 for k >= 3,
// and n for k = 1 (the hypercube itself).
func UpperBoundDegree(k, n int) (int, error) {
	switch {
	case k < 1 || n < 1:
		return 0, fmt.Errorf("sparsehypercube: k, n must be >= 1")
	case k == 1:
		return n, nil
	case k == 2:
		return core.UpperBoundTheorem5(n), nil
	case n <= k:
		return 0, fmt.Errorf("sparsehypercube: Theorem 7 requires n > k (got k=%d, n=%d)", k, n)
	default:
		return core.UpperBoundTheorem7(k, n), nil
	}
}
