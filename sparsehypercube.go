// Package sparsehypercube is the public API of a full reproduction of
//
//	S. Fujita, A. M. Farley, "Sparse Hypercube — a minimal k-line
//	broadcast graph", IPPS/SPDP'99; Discrete Applied Mathematics 127
//	(2003) 431–446.
//
// A sparse hypercube is a spanning subgraph of the binary n-cube that is
// still a minimal k-line broadcast graph: from any originator, a broadcast
// completes in the information-theoretic minimum ceil(log2 N) = n rounds
// under the k-line communication model (per round, each informed vertex
// may call one vertex over a path of at most k edges; simultaneous calls
// must be edge-disjoint and receiver-disjoint), while the maximum degree
// drops from n to at most (2k-1)*ceil(n^(1/k)) - k.
//
// # Schemes and plans
//
// The paper's object is a scheme — a round-by-round k-line call plan —
// and the API is built around it. A Scheme (BroadcastScheme,
// GossipScheme, MultiSourceScheme, or your own) bound to a cube yields a
// Plan, the one handle for every way of consuming the scheme:
//
//	cube, err := sparsehypercube.New(2, 15)     // k = 2, N = 2^15
//	plan := cube.Plan(sparsehypercube.BroadcastScheme{Source: 0})
//
//	report := plan.Verify()       // streamed validation; MinimumTime == true
//	sched := plan.Materialize()   // snapshot, for small cubes
//	for round := range plan.Rounds() {
//		emit(round)               // streamed, O(frontier) memory
//	}
//
// Rounds and Verify stream: rounds are generated straight off the
// informed-set frontier (call paths built in parallel across a worker
// pool) and validated round-at-a-time on flat bit sets, so peak memory
// is O(frontier) — the widest single round — instead of the full
// schedule's O(N·n·k) words. That is what makes million-vertex (n >= 20)
// cubes practical.
//
// # Write once, verify many
//
// Plans serialise to a compact binary round format, written straight off
// the generator and replayed without materialising:
//
//	n, err := plan.WriteTo(f)                  // stream to disk
//	replay, err := sparsehypercube.ReadPlan(f2) // lazy, single-use
//	report := replay.Verify()                  // byte-faithful replay
//
// Produce a million-vertex schedule once, serve and re-verify it many
// times; a truncated or corrupted file can never verify (checksummed,
// canonical encoding).
//
// The heavy lifting lives in internal packages (construction, labelings,
// communication model, codec, baselines, experiment harness); this
// package keeps the downstream surface small and stable. The pre-Plan
// methods (Broadcast, BroadcastRounds, Verify, VerifyRounds,
// VerifyBroadcast, Gossip) remain as thin deprecated wrappers over the
// same engine.
package sparsehypercube

import (
	"fmt"
	"iter"

	"sparsehypercube/internal/core"
	"sparsehypercube/internal/linecomm"
)

// Cube is a sparse hypercube: an implicit graph on 2^n vertices.
type Cube struct {
	inner *core.SparseHypercube
}

// New constructs a k-mlbg on 2^n vertices with automatically chosen
// parameters (the paper's Theorem 5/7 choices refined by local search).
// k = 1 yields the full hypercube Q_n.
func New(k, n int) (*Cube, error) {
	inner, err := core.NewAuto(k, n)
	if err != nil {
		return nil, err
	}
	return &Cube{inner: inner}, nil
}

// NewWithDims constructs Construct(k, (n, n_{k-1}, ..., n_1)) with an
// explicit parameter vector dims = [n_1 < ... < n_{k-1} < n] of length k.
func NewWithDims(k int, dims []int) (*Cube, error) {
	inner, err := core.New(core.Params{K: k, Dims: append([]int(nil), dims...)})
	if err != nil {
		return nil, err
	}
	return &Cube{inner: inner}, nil
}

// K returns the call-length bound the cube was built for.
func (c *Cube) K() int { return c.inner.K() }

// N returns the cube dimension n (order 2^n).
func (c *Cube) N() int { return c.inner.N() }

// Order returns the number of vertices, 2^n.
func (c *Cube) Order() uint64 { return c.inner.Order() }

// Dims returns a copy of the parameter vector [n_1, ..., n_{k-1}, n].
func (c *Cube) Dims() []int {
	return append([]int(nil), c.inner.Params().Dims...)
}

// MaxDegree returns the exact maximum vertex degree.
func (c *Cube) MaxDegree() int { return c.inner.MaxDegree() }

// MinDegree returns the exact minimum vertex degree.
func (c *Cube) MinDegree() int { return c.inner.MinDegree() }

// NumEdges returns the exact number of edges.
func (c *Cube) NumEdges() uint64 { return c.inner.NumEdges() }

// Degree returns the degree of vertex u.
func (c *Cube) Degree(u uint64) int { return c.inner.DegreeOf(u) }

// HasEdge reports whether {u, v} is an edge.
func (c *Cube) HasEdge(u, v uint64) bool { return c.inner.HasEdge(u, v) }

// Neighbors returns the sorted adjacency of u.
func (c *Cube) Neighbors(u uint64) []uint64 { return c.inner.Neighbors(u) }

// Describe renders the level structure (windows, labelings, partitions).
func (c *Cube) Describe() string { return c.inner.Describe() }

// Call is one circuit-switched call: Path[0] is the caller, the last
// element the receiver, and the path occupies len(Path)-1 <= k edges.
type Call struct {
	Path []uint64
}

// From returns the calling vertex, or 0 for a call with an empty path
// (never produced by a plan; Verify reports such calls as invalid).
func (c Call) From() uint64 {
	if len(c.Path) == 0 {
		return 0
	}
	return c.Path[0]
}

// To returns the receiving vertex, or 0 for a call with an empty path.
func (c Call) To() uint64 {
	if len(c.Path) == 0 {
		return 0
	}
	return c.Path[len(c.Path)-1]
}

// Endpoints returns the caller and receiver; ok is false when the path
// is empty and both endpoints are meaningless.
func (c Call) Endpoints() (from, to uint64, ok bool) {
	if len(c.Path) == 0 {
		return 0, 0, false
	}
	return c.Path[0], c.Path[len(c.Path)-1], true
}

// Schedule is a materialised round-by-round call plan.
type Schedule struct {
	Source uint64
	Rounds [][]Call
}

// Stream returns the schedule's rounds as an iterator — the form
// consumed by RoundScheme and the streaming validator. Yielded rounds
// alias the schedule's storage. Unlike a plan's live round stream, it is
// reusable.
func (s *Schedule) Stream() iter.Seq[[]Call] {
	return func(yield func([]Call) bool) {
		for _, r := range s.Rounds {
			if !yield(r) {
				return
			}
		}
	}
}

// convertRounds adapts a round stream between call representations,
// reusing one output buffer across iterations (paths are aliased). It is
// the single conversion point between the public []Call rounds and the
// internal linecomm.Round ones.
func convertRounds[R ~[]T, S ~[]U, T, U any](rounds iter.Seq[R], conv func(T) U) iter.Seq[S] {
	return func(yield func(S) bool) {
		var buf S
		for round := range rounds {
			if cap(buf) < len(round) {
				buf = make(S, len(round))
			}
			buf = buf[:len(round)]
			for i, call := range round {
				buf[i] = conv(call)
			}
			if !yield(buf) {
				return
			}
		}
	}
}

// toInnerRounds adapts a public round stream for the internal engine.
func toInnerRounds(rounds iter.Seq[[]Call]) iter.Seq[linecomm.Round] {
	return convertRounds[[]Call, linecomm.Round](rounds,
		func(c Call) linecomm.Call { return linecomm.Call{Path: c.Path} })
}

// fromInnerRounds adapts an internal round stream for public consumers.
func fromInnerRounds(rounds iter.Seq[linecomm.Round]) iter.Seq[[]Call] {
	return convertRounds[linecomm.Round, []Call](rounds,
		func(c linecomm.Call) Call { return Call{Path: c.Path} })
}

// toInnerRound converts one materialised round (paths aliased).
func toInnerRound(round []Call) linecomm.Round {
	out := make(linecomm.Round, len(round))
	for i, c := range round {
		out[i] = linecomm.Call{Path: c.Path}
	}
	return out
}

// toInner converts a public schedule to the internal representation.
// Paths are aliased, not copied.
func toInner(s *Schedule) *linecomm.Schedule {
	inner := &linecomm.Schedule{Source: s.Source, Rounds: make([]linecomm.Round, len(s.Rounds))}
	for i, round := range s.Rounds {
		inner.Rounds[i] = toInnerRound(round)
	}
	return inner
}

// Report summarises schedule verification against the k-line model.
// The JSON field names are the wire contract of the plan verification
// service (internal/planserver, `sparsecube serve`).
type Report struct {
	Valid         bool     `json:"valid"`
	Complete      bool     `json:"complete"`
	MinimumTime   bool     `json:"minimum_time"`
	Rounds        int      `json:"rounds"`
	MaxCallLength int      `json:"max_call_length"`
	Violations    []string `json:"violations,omitempty"`
}

// reportFrom converts a validation result to the public report.
func reportFrom(res *linecomm.Result, rounds int) Report {
	rep := Report{
		Valid:         res.Valid(),
		Complete:      res.Complete,
		MinimumTime:   res.MinimumTime,
		Rounds:        rounds,
		MaxCallLength: res.MaxCallLength,
	}
	for _, v := range res.Violations {
		rep.Violations = append(rep.Violations, v.String())
	}
	return rep
}

// Broadcast generates the paper's minimum-time k-line broadcast scheme
// from source: exactly n rounds, calls of length at most k.
//
// Deprecated: use the Plan engine —
// c.Plan(BroadcastScheme{Source: source}).Materialize().
func (c *Cube) Broadcast(source uint64) *Schedule {
	return c.Plan(BroadcastScheme{Source: source}).Materialize()
}

// BroadcastRounds streams the broadcast scheme one round at a time at
// O(frontier) memory. The yielded slice and the paths inside it are
// reused between iterations; copy anything that must outlive the step.
//
// Deprecated: use the Plan engine —
// c.Plan(BroadcastScheme{Source: source}).Rounds().
func (c *Cube) BroadcastRounds(source uint64) iter.Seq[[]Call] {
	return c.Plan(BroadcastScheme{Source: source}).Rounds()
}

// Verify checks a materialised schedule against this cube under the
// k-line model (edge existence, call lengths, per-round edge- and
// receiver-disjointness, caller knowledge, completion, minimality).
//
// Deprecated: use the Plan engine —
// c.Plan(RoundScheme("broadcast", s.Source, s.Stream())).Verify().
func (c *Cube) Verify(s *Schedule) Report {
	rep := c.Plan(RoundScheme("broadcast", s.Source, s.Stream())).Verify()
	// The materialised validator historically counted the declared
	// rounds even when the source was rejected up front.
	rep.Rounds = len(s.Rounds)
	return rep
}

// VerifyRounds validates a round stream (for example a plan's Rounds, or
// rounds decoded off the wire) as it arrives. Report.Rounds counts the
// rounds actually validated: 0 when source is rejected up front, in
// which case the stream is never consumed.
//
// Deprecated: use the Plan engine —
// c.Plan(RoundScheme("rounds", source, rounds)).Verify().
func (c *Cube) VerifyRounds(source uint64, rounds iter.Seq[[]Call]) Report {
	return c.Plan(RoundScheme("rounds", source, rounds)).Verify()
}

// VerifyBroadcast generates and validates the broadcast from source in
// one streamed pass — the machine-checked form of Theorems 4 and 6 at
// O(frontier) memory.
//
// Deprecated: use the Plan engine —
// c.Plan(BroadcastScheme{Source: source}).Verify().
func (c *Cube) VerifyBroadcast(source uint64) Report {
	return c.Plan(BroadcastScheme{Source: source}).Verify()
}

// FormatSchedule renders a schedule with n-bit vertex labels.
func (c *Cube) FormatSchedule(s *Schedule) string {
	return toInner(s).Format(c.N())
}

// MinimumRounds returns ceil(log2 N), the broadcast time lower bound for
// any N-vertex network.
func MinimumRounds(order uint64) int { return linecomm.MinimumRounds(order) }

// LowerBoundDegree returns the paper's degree lower bound for k-mlbgs on
// 2^n vertices (Theorems 2 and 3).
func LowerBoundDegree(k, n int) int { return core.LowerBoundDegree(k, n) }

// UpperBoundDegree returns the paper's constructive degree guarantee for
// a k-mlbg on 2^n vertices: Theorem 5 for k = 2, Theorem 7 for k >= 3,
// and n for k = 1 (the hypercube itself).
func UpperBoundDegree(k, n int) (int, error) {
	switch {
	case k < 1 || n < 1:
		return 0, fmt.Errorf("sparsehypercube: k, n must be >= 1")
	case k == 1:
		return n, nil
	case k == 2:
		return core.UpperBoundTheorem5(n), nil
	case n <= k:
		return 0, fmt.Errorf("sparsehypercube: Theorem 7 requires n > k (got k=%d, n=%d)", k, n)
	default:
		return core.UpperBoundTheorem7(k, n), nil
	}
}
