package sparsehypercube

import (
	"testing"
)

func TestGossipFacade(t *testing.T) {
	cube, err := New(2, 9)
	if err != nil {
		t.Fatal(err)
	}
	sched := cube.Gossip(0)
	rep, err := cube.VerifyGossip(sched)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Valid || !rep.Complete {
		t.Fatalf("gossip failed: %+v", rep)
	}
	if rep.Rounds != 2*cube.N() {
		t.Fatalf("gossip rounds = %d, want %d", rep.Rounds, 2*cube.N())
	}
	if rep.MinKnown != int(cube.Order()) {
		t.Fatalf("min known = %d", rep.MinKnown)
	}
	if GossipMinimumRounds(cube.Order()) != cube.N() {
		t.Fatal("gossip lower bound wrong")
	}
}

func TestGossipFacadeCatchesTampering(t *testing.T) {
	cube, err := New(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	sched := cube.Gossip(3)
	sched.Rounds = sched.Rounds[:len(sched.Rounds)-2]
	rep, err := cube.VerifyGossip(sched)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Complete {
		t.Fatal("truncated gossip should be incomplete")
	}
}

func TestGossipSimulationCap(t *testing.T) {
	cube, err := New(2, 15)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cube.VerifyGossip(&Schedule{}); err == nil {
		t.Fatal("expected simulation-cap error for 2^15 vertices")
	}
}
