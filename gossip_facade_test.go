package sparsehypercube

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestGossipFacade(t *testing.T) {
	cube, err := New(2, 9)
	if err != nil {
		t.Fatal(err)
	}
	sched := cube.Gossip(0)
	rep, err := cube.VerifyGossip(sched)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Valid || !rep.Complete {
		t.Fatalf("gossip failed: %+v", rep)
	}
	if rep.Rounds != 2*cube.N() {
		t.Fatalf("gossip rounds = %d, want %d", rep.Rounds, 2*cube.N())
	}
	if rep.MinKnown != int(cube.Order()) {
		t.Fatalf("min known = %d", rep.MinKnown)
	}
	if GossipMinimumRounds(cube.Order()) != cube.N() {
		t.Fatal("gossip lower bound wrong")
	}
}

func TestGossipFacadeCatchesTampering(t *testing.T) {
	cube, err := New(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	sched := cube.Gossip(3)
	sched.Rounds = sched.Rounds[:len(sched.Rounds)-2]
	rep, err := cube.VerifyGossip(sched)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Complete {
		t.Fatal("truncated gossip should be incomplete")
	}
}

func TestGossipSimulationCap(t *testing.T) {
	cube, err := New(2, 15)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cube.VerifyGossip(&Schedule{}); err == nil {
		t.Fatal("expected simulation-cap error for 2^15 vertices")
	}
}

// TestMultiSourceSchemeFacade: the generalised scheme shares the gossip
// round stream, verifies only its listed tokens, and serialises as a
// gossip plan (no format change — replay re-binds to the all-source
// model).
func TestMultiSourceSchemeFacade(t *testing.T) {
	cube, err := New(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	scheme := MultiSourceScheme{Root: 7, Sources: []uint64{1, 64, 1023}}
	plan := cube.Plan(scheme)
	rep := plan.Verify()
	if !rep.Valid || !rep.Complete || rep.Rounds != 2*cube.N() {
		t.Fatalf("multi-source plan failed: %+v", rep)
	}
	if rep.MinimumTime {
		t.Fatal("2n-round gather-scatter cannot be minimum time")
	}

	// The round stream is the gossip schedule, source set or not.
	if !reflect.DeepEqual(cube.Plan(GossipScheme{Root: 7}).Materialize(), plan.Materialize()) {
		t.Fatal("multi-source rounds diverge from the gossip scheme")
	}

	// Serialise and replay: the file is a plain gossip plan and verifies
	// under the all-source model on the reconstructed cube.
	var buf bytes.Buffer
	if _, err := plan.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	replay, err := ReadPlan(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := replay.Scheme().(GossipScheme); !ok {
		t.Fatalf("replayed scheme %T, want GossipScheme", replay.Scheme())
	}
	if rrep := replay.Verify(); !rrep.Valid || !rrep.Complete {
		t.Fatalf("replayed multi-source plan failed all-source verification: %+v", rrep)
	}

	// Bad source sets surface as violations, never panics.
	rep = cube.Plan(MultiSourceScheme{Root: 0, Sources: []uint64{5, 5}}).Verify()
	if rep.Valid || len(rep.Violations) == 0 {
		t.Fatalf("duplicate source accepted: %+v", rep)
	}
	rep = cube.Plan(MultiSourceScheme{Root: 0, Sources: []uint64{cube.Order()}}).Verify()
	if rep.Valid || !strings.Contains(rep.Violations[0], "vertex-out-of-range") {
		t.Fatalf("out-of-range source accepted: %+v", rep)
	}

	// An out-of-range root reports without consuming anything.
	rep = cube.Plan(MultiSourceScheme{Root: cube.Order(), Sources: []uint64{1}}).Verify()
	if rep.Valid || !strings.Contains(rep.Violations[0], "vertex-out-of-range") {
		t.Fatalf("bad multi-source root report: %+v", rep)
	}
}
