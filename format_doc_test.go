package sparsehypercube_test

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"testing"

	"sparsehypercube"
	"sparsehypercube/internal/distverify"
	"sparsehypercube/internal/linecomm"
	"sparsehypercube/internal/planserver"
	"sparsehypercube/internal/schedio"
)

// This file executes docs/FORMAT.md: the worked-example bytes embedded
// in the spec are extracted from their fenced code blocks and
// round-tripped through the real encoder and decoder. If the format
// (or the spec) changes without the other, this test fails — the spec
// cannot drift from the code unnoticed.

// docBlock extracts the contents of the first fenced code block tagged
// with lang from the spec.
func docBlock(t *testing.T, doc, lang string) string {
	t.Helper()
	marker := "```" + lang + "\n"
	i := strings.Index(doc, marker)
	if i < 0 {
		t.Fatalf("docs/FORMAT.md has no ```%s block", lang)
	}
	rest := doc[i+len(marker):]
	j := strings.Index(rest, "```")
	if j < 0 {
		t.Fatalf("unterminated ```%s block", lang)
	}
	return rest[:j]
}

// docHex decodes a whitespace-separated hex block.
func docHex(t *testing.T, doc, lang string) []byte {
	t.Helper()
	raw := strings.Join(strings.Fields(docBlock(t, doc, lang)), "")
	data, err := hex.DecodeString(raw)
	if err != nil {
		t.Fatalf("```%s block is not hex: %v", lang, err)
	}
	return data
}

// specPlan regenerates the spec's worked-example plan: minimum-time
// broadcast from 0 on the k = 1, dims = [2] cube.
func specPlan(t *testing.T) *sparsehypercube.Plan {
	t.Helper()
	cube, err := sparsehypercube.NewWithDims(1, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	return cube.Plan(sparsehypercube.BroadcastScheme{Source: 0})
}

func TestFormatDocWorkedExamples(t *testing.T) {
	raw, err := os.ReadFile("docs/FORMAT.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)
	plain := docHex(t, doc, "hex-plan")
	indexed := docHex(t, doc, "hex-plan-indexed")

	// The encoder must produce the documented bytes exactly.
	plan := specPlan(t)
	var enc bytes.Buffer
	if _, err := plan.WriteTo(&enc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc.Bytes(), plain) {
		t.Fatalf("WriteTo diverges from the spec's hex-plan block:\nencoder: %x\nspec:    %x", enc.Bytes(), plain)
	}
	enc.Reset()
	if _, err := plan.WriteIndexedTo(&enc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc.Bytes(), indexed) {
		t.Fatalf("WriteIndexedTo diverges from the spec's hex-plan-indexed block:\nencoder: %x\nspec:    %x", enc.Bytes(), indexed)
	}
	// The indexed example must literally extend the plain one, as the
	// spec claims.
	if !bytes.HasPrefix(indexed, plain) {
		t.Fatal("indexed example does not extend the plain example")
	}

	// The documented bytes must decode to the documented plan — header
	// fields, rounds, calls — and verify clean.
	replay, err := sparsehypercube.ReadPlan(bytes.NewReader(plain))
	if err != nil {
		t.Fatal(err)
	}
	if s := replay.Scheme(); s.Name() != "broadcast" || s.Origin() != 0 {
		t.Fatalf("decoded scheme %q origin %d", s.Name(), s.Origin())
	}
	if c := replay.Cube(); c.K() != 1 || !reflect.DeepEqual(c.Dims(), []int{2}) {
		t.Fatalf("decoded cube k=%d dims=%v", c.K(), c.Dims())
	}
	sched := replay.Materialize()
	if err := replay.Err(); err != nil {
		t.Fatal(err)
	}
	wantRounds := fmt.Sprint([][][]uint64{{{0, 2}}, {{0, 1}, {2, 3}}})
	var got [][][]uint64
	for _, r := range sched.Rounds {
		var round [][]uint64
		for _, c := range r {
			round = append(round, c.Path)
		}
		got = append(got, round)
	}
	if fmt.Sprint(got) != wantRounds {
		t.Fatalf("decoded rounds %v, spec documents %v", got, wantRounds)
	}

	// The indexed form replays through the random-access reader with
	// the index intact, and verifies identically at any worker count.
	at, err := sparsehypercube.ReadPlanAt(bytes.NewReader(indexed), int64(len(indexed)))
	if err != nil {
		t.Fatal(err)
	}
	if !at.Indexed() {
		t.Fatal("hex-plan-indexed lost its index")
	}
	rep := at.Verify()
	if !rep.Valid || !rep.MinimumTime || rep.Rounds != 2 || rep.MaxCallLength != 1 {
		t.Fatalf("documented plan does not verify as documented: %+v", rep)
	}
}

// TestFormatDocRangeVerify executes the spec's range-verify envelope:
// the documented request's span must be the literal bytes the real
// encoder produces for rounds [1,2) with the documented CRC, and a
// real planserver worker handed the documented request must answer
// exactly the documented response.
func TestFormatDocRangeVerify(t *testing.T) {
	raw, err := os.ReadFile("docs/FORMAT.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)

	var req distverify.RangeRequest
	if err := json.Unmarshal([]byte(docBlock(t, doc, "json-range-request")), &req); err != nil {
		t.Fatalf("json-range-request block: %v", err)
	}

	// The documented span is the real encoding's bytes for that range.
	var enc bytes.Buffer
	if _, err := specPlan(t).WriteIndexedTo(&enc); err != nil {
		t.Fatal(err)
	}
	at, err := schedio.OpenPlanAt(bytes.NewReader(enc.Bytes()), int64(enc.Len()))
	if err != nil {
		t.Fatal(err)
	}
	span, err := at.RangeBytes(req.StartRound, req.EndRound)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(req.Plan.Span, span) {
		t.Fatalf("documented span %x, encoder produces %x", req.Plan.Span, span)
	}
	if crc := crc32.ChecksumIEEE(span); crc != req.SpanCRC {
		t.Fatalf("documented span_crc %d, real CRC %d", req.SpanCRC, crc)
	}

	// A real worker answers the documented request with the documented
	// response — compared as parsed envelopes and as compacted JSON, so
	// neither field values nor wire names can drift.
	ts := httptest.NewServer(planserver.New().Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/ranges/verify", "application/json",
		strings.NewReader(docBlock(t, doc, "json-range-request")))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("worker refused the documented request: %d: %s", resp.StatusCode, body)
	}
	var got, want distverify.RangeResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(docBlock(t, doc, "json-range-response")), &want); err != nil {
		t.Fatalf("json-range-response block: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("worker answered %+v, spec documents %+v", got, want)
	}
	var gotC, wantC bytes.Buffer
	if err := json.Compact(&gotC, body); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&wantC, []byte(docBlock(t, doc, "json-range-response"))); err != nil {
		t.Fatal(err)
	}
	if gotC.String() != wantC.String() {
		t.Fatalf("wire bytes diverged:\nworker: %s\nspec:   %s", gotC.String(), wantC.String())
	}
}

func TestFormatDocRoundBatch(t *testing.T) {
	raw, err := os.ReadFile("docs/FORMAT.md")
	if err != nil {
		t.Fatal(err)
	}
	rounds, err := linecomm.ReadRoundBatch(strings.NewReader(docBlock(t, string(raw), "json-round-batch")))
	if err != nil {
		t.Fatal(err)
	}
	want := []linecomm.Round{
		{{Path: []uint64{0, 2}}},
		{{Path: []uint64{0, 1}}, {Path: []uint64{2, 3}}},
	}
	if !reflect.DeepEqual(rounds, want) {
		t.Fatalf("round batch decodes to %v, spec documents %v", rounds, want)
	}
}
