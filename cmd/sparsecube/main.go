// Command sparsecube constructs, inspects, schedules, verifies, and
// exports sparse hypercubes from the command line.
//
// Usage:
//
//	sparsecube describe  -k 3 -n 12 [-dims 2,5,12]
//	sparsecube stats     -k 2 -n 15
//	sparsecube schedule  -k 2 -n 8 -source 0 [-quiet]
//	sparsecube verify    -k 2 -n 10 [-sources 16]
//	sparsecube neighbors -k 2 -n 8 -vertex 5
//	sparsecube export    -k 2 -n 6 [-format dot|edges]
//	sparsecube bounds    -n 20
//
// Vertices print as n-bit strings (dimension n first), as in the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sparsehypercube/internal/core"
	"sparsehypercube/internal/graph"
	"sparsehypercube/internal/linecomm"
	"sparsehypercube/internal/topo"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	k := fs.Int("k", 2, "call-length bound k")
	n := fs.Int("n", 10, "cube dimension n (order 2^n)")
	dims := fs.String("dims", "", "explicit parameter vector n_1,...,n_{k-1},n (overrides auto)")
	source := fs.Uint64("source", 0, "broadcast source vertex")
	vertex := fs.Uint64("vertex", 0, "vertex to inspect")
	sources := fs.Int("sources", 8, "number of sources to verify")
	format := fs.String("format", "dot", "export format: dot or edges")
	quiet := fs.Bool("quiet", false, "suppress per-call output")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	s, err := build(*k, *n, *dims)
	if cmd != "bounds" && err != nil {
		fatal(err)
	}

	switch cmd {
	case "describe":
		fmt.Print(s.Describe())
	case "stats":
		fmt.Printf("params:      %s\n", s.Params())
		fmt.Printf("order:       2^%d = %d\n", s.N(), s.Order())
		fmt.Printf("max degree:  %d (Q_%d has %d)\n", s.MaxDegree(), s.N(), s.N())
		fmt.Printf("min degree:  %d\n", s.MinDegree())
		fmt.Printf("edges:       %d (Q_%d has %d)\n", s.NumEdges(), s.N(), uint64(s.N())<<uint(s.N()-1))
		fmt.Printf("lower bound: %d (Theorems 2-3)\n", core.LowerBoundDegree(s.K(), s.N()))
	case "schedule":
		sched := s.BroadcastSchedule(*source)
		res := linecomm.Validate(s, s.K(), sched)
		if !*quiet {
			fmt.Print(sched.Format(s.N()))
		}
		fmt.Printf("rounds: %d, calls: %d, max length: %d, valid: %v, minimum time: %v\n",
			len(sched.Rounds), sched.TotalCalls(), res.MaxCallLength, res.Valid(), res.MinimumTime)
		if err := res.Err(); err != nil {
			fatal(err)
		}
	case "verify":
		step := s.Order() / uint64(*sources)
		if step == 0 {
			step = 1
		}
		checked := 0
		for src := uint64(0); src < s.Order(); src += step {
			res := linecomm.Validate(s, s.K(), s.BroadcastSchedule(src))
			if err := res.Err(); err != nil {
				fatal(fmt.Errorf("source %d: %w", src, err))
			}
			if !res.MinimumTime {
				fatal(fmt.Errorf("source %d: not minimum time", src))
			}
			checked++
		}
		fmt.Printf("OK: %d sources broadcast in %d rounds with calls <= %d\n", checked, s.N(), s.K())
	case "neighbors":
		for _, v := range s.Neighbors(*vertex) {
			fmt.Println(topo.BitString(v, s.N()))
		}
	case "export":
		g, err := s.Graph()
		if err != nil {
			fatal(err)
		}
		label := func(v int) string { return topo.BitString(uint64(v), s.N()) }
		switch *format {
		case "dot":
			err = graph.WriteDOT(os.Stdout, g, "sparsehypercube", label)
		case "edges":
			err = graph.WriteEdgeList(os.Stdout, g, label)
		default:
			err = fmt.Errorf("unknown format %q", *format)
		}
		if err != nil {
			fatal(err)
		}
	case "bounds":
		fmt.Printf("%-4s %-12s %-12s %-12s\n", "k", "lower", "upper", "Q_n degree")
		for kk := 1; kk <= 6 && kk < *n; kk++ {
			upper := "-"
			switch {
			case kk == 1:
				upper = strconv.Itoa(*n)
			case kk == 2:
				upper = strconv.Itoa(core.UpperBoundTheorem5(*n))
			case *n > kk:
				upper = strconv.Itoa(core.UpperBoundTheorem7(kk, *n))
			}
			fmt.Printf("%-4d %-12d %-12s %-12d\n", kk, core.LowerBoundDegree(kk, *n), upper, *n)
		}
	default:
		usage()
	}
}

func build(k, n int, dims string) (*core.SparseHypercube, error) {
	if dims == "" {
		return core.NewAuto(k, n)
	}
	parts := strings.Split(dims, ",")
	vec := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad -dims entry %q", p)
		}
		vec = append(vec, v)
	}
	return core.New(core.Params{K: len(vec), Dims: vec})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sparsecube:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sparsecube <describe|stats|schedule|verify|neighbors|export|bounds> [flags]")
	os.Exit(2)
}
