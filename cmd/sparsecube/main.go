// Command sparsecube constructs, inspects, schedules, verifies, and
// exports sparse hypercubes from the command line.
//
// Usage:
//
//	sparsecube describe  -k 3 -n 12 [-dims 2,5,12]
//	sparsecube stats     -k 2 -n 15
//	sparsecube schedule  -k 2 -n 8 -source 0 [-quiet]
//	sparsecube verify    -k 2 -n 10 [-sources 16]
//	sparsecube verify    -in plan.shcp -workers http://host1:8388,http://host2:8388
//	sparsecube neighbors -k 2 -n 8 -vertex 5
//	sparsecube export    -k 2 -n 6 [-format dot|edges]
//	sparsecube bounds    -n 20
//	sparsecube plan      -k 3 -n 20 -source 0 [-scheme broadcast|gossip] [-index] -o plan.shcp
//	sparsecube replay    -in plan.shcp [-quiet] [-par W]
//	sparsecube serve     [-addr :8388] [-max-upload N] [-spill-dir DIR]
//	                     [-max-plans N] [-max-plan-bytes N] [-session-ttl D]
//	                     [-drain-timeout D]
//
// plan streams a scheme to disk in the compact binary round format
// without materialising it (-index appends the per-round byte index a
// serving process uses for random access); replay decodes the file and
// re-verifies it against the cube reconstructed from the stored
// parameters — the write-once/verify-many pair. With -par W, replay
// memory-maps the file and splits verification across W round-range
// workers (0 picks GOMAXPROCS; requires -index at plan time for actual
// parallelism), the Report identical to the serial pass. serve exposes
// the same verification engine over HTTP to many concurrent sessions
// (see internal/planserver for the endpoint contract); -spill-dir makes
// uploads spill to disk and serve off memory-mapped files instead of
// heap copies, and a restart over the same directory re-verifies and
// re-serves everything it spilled. The cached set is LRU-bounded by
// -max-plans and -max-plan-bytes (eviction keeps the spill file; only
// DELETE unlinks), sessions idle past -session-ttl are reaped, GET
// /healthz and /metrics expose the operational surface, and SIGTERM
// drains gracefully for up to -drain-timeout before the process
// exits. verify -workers is the other side of serve: it runs the
// cheap structural pass over an indexed plan file locally, fans the
// round ranges out to the listed planserver instances for seeded
// validation, and stitches a Report identical to the single-process
// verify (see internal/distverify); ranges from unreachable or slow
// workers fall back to local validation, so the Report is the same with
// a degraded fleet — just slower.
//
// Results go to stdout; diagnostics (violation listings, warnings,
// errors) go to stderr, so scripts can parse the one without the other.
//
// Vertices print as n-bit strings (dimension n first), as in the paper.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sparsehypercube"
	"sparsehypercube/internal/core"
	"sparsehypercube/internal/distverify"
	"sparsehypercube/internal/graph"
	"sparsehypercube/internal/linecomm"
	"sparsehypercube/internal/planserver"
	"sparsehypercube/internal/topo"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	k := fs.Int("k", 2, "call-length bound k")
	n := fs.Int("n", 10, "cube dimension n (order 2^n)")
	dims := fs.String("dims", "", "explicit parameter vector n_1,...,n_{k-1},n (overrides auto)")
	source := fs.Uint64("source", 0, "broadcast source vertex")
	vertex := fs.Uint64("vertex", 0, "vertex to inspect")
	sources := fs.Int("sources", 8, "number of sources to verify")
	format := fs.String("format", "dot", "export format: dot or edges")
	quiet := fs.Bool("quiet", false, "suppress per-call output")
	scheme := fs.String("scheme", "broadcast", "plan scheme: broadcast or gossip")
	out := fs.String("o", "plan.shcp", "plan output file")
	in := fs.String("in", "", "plan file to replay")
	index := fs.Bool("index", false, "append the per-round byte index for random-access serving")
	par := fs.Int("par", -1, "replay: verify across this many round-range workers over a memory-mapped plan (0 = GOMAXPROCS, -1 = serial streamed replay)")
	workers := fs.String("workers", "", "verify: comma-separated planserver base URLs to distribute an indexed plan's round ranges across (needs -in)")
	addr := fs.String("addr", ":8388", "serve: listen address")
	maxUpload := fs.Int64("max-upload", planserver.DefaultMaxUpload, "serve: largest accepted upload in bytes")
	maxN := fs.Int("max-n", planserver.DefaultMaxN, "serve: largest cube dimension verified")
	spillDir := fs.String("spill-dir", "", "serve: spill uploaded plans to this directory and serve them memory-mapped (rescanned on restart)")
	maxPlans := fs.Int("max-plans", 1024, "serve: cached-plan count budget; least-recently-used plans evict past it (0 = unbounded)")
	maxPlanBytes := fs.Int64("max-plan-bytes", 0, "serve: cached-plan byte budget, same eviction (0 = unbounded)")
	sessionTTL := fs.Duration("session-ttl", 30*time.Minute, "serve: reap incremental sessions idle this long (0 = never)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "serve: how long a SIGTERM drain waits for in-flight work")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	switch cmd {
	case "replay":
		if err := runReplay(os.Stdout, os.Stderr, *in, *quiet, *par); err != nil {
			fatal(err)
		}
		return
	case "verify":
		if *workers != "" {
			if err := runDistVerify(os.Stdout, os.Stderr, *in, *workers, *quiet); err != nil {
				fatal(err)
			}
			return
		}
	case "plan":
		cube, err := buildCube(*k, *n, *dims)
		if err != nil {
			fatal(err)
		}
		if err := runPlan(os.Stdout, os.Stderr, cube, *scheme, *source, *out, *index); err != nil {
			fatal(err)
		}
		return
	case "serve":
		fmt.Fprintf(os.Stderr, "sparsecube: serving plan verification on %s\n", *addr)
		opts := []planserver.Option{
			planserver.WithMaxUpload(*maxUpload), planserver.WithMaxN(*maxN),
			planserver.WithMaxPlans(*maxPlans), planserver.WithMaxPlanBytes(*maxPlanBytes),
			planserver.WithSessionTTL(*sessionTTL),
			planserver.WithLogf(func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "sparsecube: "+format+"\n", args...)
			}),
		}
		if *spillDir != "" {
			fmt.Fprintf(os.Stderr, "sparsecube: spilling uploaded plans to %s (served memory-mapped, reloaded on restart)\n", *spillDir)
			opts = append(opts, planserver.WithSpillDir(*spillDir))
		}
		ps := planserver.New(opts...)
		defer ps.Close()
		srv := &http.Server{
			Addr:    *addr,
			Handler: ps.Handler(),
			// The peers are untrusted: never let a dribbling client hold a
			// connection open unboundedly. ReadTimeout stays generous —
			// plan uploads are legitimately large streams.
			ReadHeaderTimeout: 10 * time.Second,
			ReadTimeout:       15 * time.Minute,
			IdleTimeout:       2 * time.Minute,
		}
		if err := runServe(srv, ps, *drainTimeout); err != nil {
			fatal(err)
		}
		return
	}

	s, err := build(*k, *n, *dims)
	if cmd != "bounds" && err != nil {
		fatal(err)
	}

	switch cmd {
	case "describe":
		fmt.Print(s.Describe())
	case "stats":
		fmt.Printf("params:      %s\n", s.Params())
		fmt.Printf("order:       2^%d = %d\n", s.N(), s.Order())
		fmt.Printf("max degree:  %d (Q_%d has %d)\n", s.MaxDegree(), s.N(), s.N())
		fmt.Printf("min degree:  %d\n", s.MinDegree())
		fmt.Printf("edges:       %d (Q_%d has %d)\n", s.NumEdges(), s.N(), uint64(s.N())<<uint(s.N()-1))
		fmt.Printf("lower bound: %d (Theorems 2-3)\n", core.LowerBoundDegree(s.K(), s.N()))
	case "schedule":
		sched := s.BroadcastSchedule(*source)
		res := linecomm.Validate(s, s.K(), sched)
		if !*quiet {
			fmt.Print(sched.Format(s.N()))
		}
		fmt.Printf("rounds: %d, calls: %d, max length: %d, valid: %v, minimum time: %v\n",
			len(sched.Rounds), sched.TotalCalls(), res.MaxCallLength, res.Valid(), res.MinimumTime)
		if err := res.Err(); err != nil {
			fatal(err)
		}
	case "verify":
		step := s.Order() / uint64(*sources)
		if step == 0 {
			step = 1
		}
		checked := 0
		for src := uint64(0); src < s.Order(); src += step {
			res := linecomm.Validate(s, s.K(), s.BroadcastSchedule(src))
			if err := res.Err(); err != nil {
				fatal(fmt.Errorf("source %d: %w", src, err))
			}
			if !res.MinimumTime {
				fatal(fmt.Errorf("source %d: not minimum time", src))
			}
			checked++
		}
		fmt.Printf("OK: %d sources broadcast in %d rounds with calls <= %d\n", checked, s.N(), s.K())
	case "neighbors":
		for _, v := range s.Neighbors(*vertex) {
			fmt.Println(topo.BitString(v, s.N()))
		}
	case "export":
		g, err := s.Graph()
		if err != nil {
			fatal(err)
		}
		label := func(v int) string { return topo.BitString(uint64(v), s.N()) }
		switch *format {
		case "dot":
			err = graph.WriteDOT(os.Stdout, g, "sparsehypercube", label)
		case "edges":
			err = graph.WriteEdgeList(os.Stdout, g, label)
		default:
			err = fmt.Errorf("unknown format %q", *format)
		}
		if err != nil {
			fatal(err)
		}
	case "bounds":
		fmt.Printf("%-4s %-12s %-12s %-12s\n", "k", "lower", "upper", "Q_n degree")
		for kk := 1; kk <= 6 && kk < *n; kk++ {
			upper := "-"
			switch {
			case kk == 1:
				upper = strconv.Itoa(*n)
			case kk == 2:
				upper = strconv.Itoa(core.UpperBoundTheorem5(*n))
			case *n > kk:
				upper = strconv.Itoa(core.UpperBoundTheorem7(kk, *n))
			}
			fmt.Printf("%-4d %-12d %-12s %-12d\n", kk, core.LowerBoundDegree(kk, *n), upper, *n)
		}
	default:
		usage()
	}
}

func build(k, n int, dims string) (*core.SparseHypercube, error) {
	if dims == "" {
		return core.NewAuto(k, n)
	}
	vec, err := parseDims(dims)
	if err != nil {
		return nil, err
	}
	return core.New(core.Params{K: len(vec), Dims: vec})
}

// buildCube is build for the public facade (the plan subcommand speaks
// Scheme/Plan, not internal/core).
func buildCube(k, n int, dims string) (*sparsehypercube.Cube, error) {
	if dims == "" {
		return sparsehypercube.New(k, n)
	}
	vec, err := parseDims(dims)
	if err != nil {
		return nil, err
	}
	return sparsehypercube.NewWithDims(len(vec), vec)
}

// maxFlagDim bounds -dims entries; it matches the codec's header bound
// (internal/schedio maxDim), itself above core.MaxN.
const maxFlagDim = 64

// parseDims parses and validates a -dims vector: every entry must be an
// integer in [1, maxFlagDim], strictly increasing — duplicates and
// out-of-range entries are rejected up front with the offender named,
// instead of surfacing later as an opaque construction failure.
func parseDims(dims string) ([]int, error) {
	parts := strings.Split(dims, ",")
	vec := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad -dims entry %q", p)
		}
		if v < 1 || v > maxFlagDim {
			return nil, fmt.Errorf("-dims entry %d outside [1,%d]", v, maxFlagDim)
		}
		if len(vec) > 0 {
			if prev := vec[len(vec)-1]; v == prev {
				return nil, fmt.Errorf("duplicate -dims entry %d", v)
			} else if v < prev {
				return nil, fmt.Errorf("-dims entry %d out of order after %d (entries must be strictly increasing)", v, prev)
			}
		}
		vec = append(vec, v)
	}
	return vec, nil
}

// runPlan streams the chosen scheme to out in the binary round format,
// never materialising the schedule. Diagnostics go to errw, results to
// w.
func runPlan(w, errw io.Writer, cube *sparsehypercube.Cube, schemeName string, source uint64, out string, indexed bool) error {
	if source >= cube.Order() {
		return fmt.Errorf("source %d outside [0,%d)", source, cube.Order())
	}
	var scheme sparsehypercube.Scheme
	switch schemeName {
	case "broadcast":
		scheme = sparsehypercube.BroadcastScheme{Source: source}
	case "gossip":
		scheme = sparsehypercube.GossipScheme{Root: source}
		if cube.Order() > 1<<20 {
			fmt.Fprintf(errw, "sparsecube: warning: gossip verification tracks order x order token cells and is capped at 2^20 vertices all-source; this 2^%d-vertex plan will write (and stream) fine but `replay` verification will report the knowledge half as simulation-cap-exceeded\n", cube.N())
		}
	default:
		return fmt.Errorf("unknown scheme %q (want broadcast or gossip)", schemeName)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	plan := cube.Plan(scheme)
	var n int64
	if indexed {
		n, err = plan.WriteIndexedTo(f)
	} else {
		n, err = plan.WriteTo(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		// Don't leave a truncated, CRC-less file where a good plan may
		// have been.
		os.Remove(out)
		return err
	}
	fmt.Fprintf(w, "wrote %s: %s scheme from %d, k = %d, dims = %v, %d bytes\n",
		out, scheme.Name(), scheme.Origin(), cube.K(), cube.Dims(), n)
	return nil
}

// runReplay decodes a plan file and re-verifies it against the cube
// reconstructed from the stored parameters. The verification summary
// goes to w (stdout); violation listings are diagnostics and go to
// errw (stderr), so a script parsing the summary never sees them.
//
// par < 0 is the classic serial streamed replay (one forward pass, no
// random access needed). par >= 0 memory-maps the file and verifies it
// through the round-range engine with that many workers (0 picks
// GOMAXPROCS); the Report is identical either way.
func runReplay(w, errw io.Writer, in string, quiet bool, par int) error {
	if in == "" {
		return fmt.Errorf("replay needs -in <plan file>")
	}
	var plan *sparsehypercube.Plan
	if par >= 0 {
		p, err := sparsehypercube.OpenPlanFile(in, sparsehypercube.WithVerifyWorkers(par))
		if err != nil {
			return err
		}
		defer p.Close()
		if !p.Indexed() {
			fmt.Fprintf(errw, "sparsecube: warning: %s has no round index (write it with `plan -index`); -par verifies serially\n", in)
		} else if _, custom := p.Scheme().(sparsehypercube.PlanVerifier); custom {
			fmt.Fprintf(errw, "sparsecube: warning: %s scheme verifies under a custom model; -par verifies serially\n", p.Scheme().Name())
		}
		plan = p
	} else {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		p, err := sparsehypercube.ReadPlan(f)
		if err != nil {
			return err
		}
		plan = p
	}
	cube := plan.Cube()
	fmt.Fprintf(w, "plan: %s scheme from %d, k = %d, dims = %v, order = %d\n",
		plan.Scheme().Name(), plan.Scheme().Origin(), cube.K(), cube.Dims(), cube.Order())
	rep := plan.Verify()
	fmt.Fprintf(w, "rounds: %d, max length: %d, valid: %v, complete: %v, minimum time: %v\n",
		rep.Rounds, rep.MaxCallLength, rep.Valid, rep.Complete, rep.MinimumTime)
	if !rep.Valid {
		if !quiet {
			for _, v := range rep.Violations {
				fmt.Fprintln(errw, " ", v)
			}
		}
		return fmt.Errorf("plan failed verification (%d violations)", len(rep.Violations))
	}
	return nil
}

// runDistVerify verifies the plan file at in by distributing its round
// ranges across the comma-separated planserver base URLs. The printed
// summary matches replay's; the Report itself is identical to what a
// single-process verify of the same file produces.
func runDistVerify(w, errw io.Writer, in, workerList string, quiet bool) error {
	if in == "" {
		return fmt.Errorf("verify -workers needs -in <plan file>")
	}
	var endpoints []string
	for _, e := range strings.Split(workerList, ",") {
		e = strings.TrimSpace(e)
		if e == "" {
			continue
		}
		if !strings.Contains(e, "://") {
			e = "http://" + e
		}
		endpoints = append(endpoints, e)
	}
	c, err := distverify.New(endpoints,
		distverify.WithPlanUpload(),
		// Coordinator messages already carry their own "distverify:" prefix.
		distverify.WithLogf(func(format string, args ...any) {
			fmt.Fprintf(errw, "sparsecube: "+format+"\n", args...)
		}))
	if err != nil {
		return err
	}
	fmt.Fprintf(errw, "sparsecube: distributing round ranges across %d workers\n", len(endpoints))
	rep, err := c.VerifyFile(context.Background(), in)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "rounds: %d, max length: %d, valid: %v, complete: %v, minimum time: %v\n",
		rep.Rounds, rep.MaxCallLength, rep.Valid, rep.Complete, rep.MinimumTime)
	if !rep.Valid {
		if !quiet {
			for _, v := range rep.Violations {
				fmt.Fprintln(errw, " ", v)
			}
		}
		return fmt.Errorf("plan failed verification (%d violations)", len(rep.Violations))
	}
	return nil
}

// runServe listens until the process is told to stop (SIGTERM or
// ctrl-C), then drains gracefully: the listener stops accepting, the
// http.Server waits out in-flight requests, and planserver.Drain
// force-closes open sessions and waits for running verifications —
// all bounded by drainTimeout.
func runServe(srv *http.Server, ps *planserver.Server, drainTimeout time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of re-draining
	fmt.Fprintf(os.Stderr, "sparsecube: draining (up to %s)\n", drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	serr := srv.Shutdown(dctx)
	if derr := ps.Drain(dctx); serr == nil {
		serr = derr
	}
	if serr != nil {
		return fmt.Errorf("drain incomplete: %w", serr)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "sparsecube: drained cleanly")
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sparsecube:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sparsecube <describe|stats|schedule|verify|neighbors|export|bounds|plan|replay|serve> [flags]")
	os.Exit(2)
}
