package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sparsehypercube/internal/planserver"
)

func TestBuildAuto(t *testing.T) {
	s, err := build(2, 15, "")
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 15 {
		t.Errorf("n = %d", s.N())
	}
	if s.MaxDegree() > 8 {
		t.Errorf("auto params degraded: Delta = %d", s.MaxDegree())
	}
}

func TestBuildExplicitDims(t *testing.T) {
	s, err := build(0, 0, "2,4,7")
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 3 || s.N() != 7 {
		t.Errorf("k=%d n=%d", s.K(), s.N())
	}
	if _, err := build(0, 0, "2,x"); err == nil {
		t.Error("expected parse error")
	}
	if _, err := build(0, 0, "7,2"); err == nil {
		t.Error("expected validation error")
	}
	// Whitespace tolerated.
	if _, err := build(0, 0, " 3 , 9 "); err != nil {
		t.Errorf("whitespace dims rejected: %v", err)
	}
}

// TestPlanReplayRoundTrip drives the write-once/verify-many subcommand
// pair end to end through a temp file.
func TestPlanReplayRoundTrip(t *testing.T) {
	cube, err := buildCube(2, 10, "")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "plan.shcp")
	var out, errOut strings.Builder
	if err := runPlan(&out, &errOut, cube, "broadcast", 3, path, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "broadcast scheme from 3") {
		t.Errorf("plan output: %q", out.String())
	}
	out.Reset()
	if err := runReplay(&out, &errOut, path, false, -1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "minimum time: true") {
		t.Errorf("replay output: %q", out.String())
	}

	// A truncated file must fail replay, not pass quietly — and its
	// violation listing must land on stderr, not in the parseable stdout.
	enc, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(t.TempDir(), "trunc.shcp")
	if err := os.WriteFile(trunc, enc[:len(enc)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	if err := runReplay(&out, &errOut, trunc, false, -1); err == nil {
		t.Fatal("truncated plan replayed successfully")
	}
	if strings.Contains(out.String(), "replay:") {
		t.Errorf("violations leaked onto stdout: %q", out.String())
	}
	if !strings.Contains(errOut.String(), "replay:") {
		t.Errorf("violations missing from stderr: %q", errOut.String())
	}
	if !strings.Contains(out.String(), "valid: false") {
		t.Errorf("summary missing from stdout: %q", out.String())
	}

	if err := runPlan(&out, &errOut, cube, "nonesuch", 0, path, false); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if err := runReplay(&out, &errOut, "", true, -1); err == nil {
		t.Fatal("missing -in accepted")
	}
}

// TestIndexedPlanReplayRoundTrip: -index appends the serving index and
// the file still replays exactly like a plain one.
func TestIndexedPlanReplayRoundTrip(t *testing.T) {
	cube, err := buildCube(2, 10, "")
	if err != nil {
		t.Fatal(err)
	}
	plain := filepath.Join(t.TempDir(), "plain.shcp")
	indexed := filepath.Join(t.TempDir(), "indexed.shcp")
	var out, errOut strings.Builder
	if err := runPlan(&out, &errOut, cube, "broadcast", 3, plain, false); err != nil {
		t.Fatal(err)
	}
	if err := runPlan(&out, &errOut, cube, "broadcast", 3, indexed, true); err != nil {
		t.Fatal(err)
	}
	pb, _ := os.ReadFile(plain)
	ib, _ := os.ReadFile(indexed)
	if len(ib) <= len(pb) {
		t.Fatalf("indexed plan (%d B) not larger than plain (%d B)", len(ib), len(pb))
	}
	out.Reset()
	if err := runReplay(&out, &errOut, indexed, false, -1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "minimum time: true") {
		t.Errorf("indexed replay output: %q", out.String())
	}
}

// TestParallelReplay drives `replay -par`: the memory-mapped parallel
// path must print exactly the summary the serial path prints, and
// -par on an unindexed plan must warn on stderr yet still verify.
func TestParallelReplay(t *testing.T) {
	cube, err := buildCube(2, 10, "")
	if err != nil {
		t.Fatal(err)
	}
	indexed := filepath.Join(t.TempDir(), "indexed.shcp")
	plain := filepath.Join(t.TempDir(), "plain.shcp")
	var out, errOut strings.Builder
	if err := runPlan(&out, &errOut, cube, "broadcast", 3, indexed, true); err != nil {
		t.Fatal(err)
	}
	if err := runPlan(&out, &errOut, cube, "broadcast", 3, plain, false); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	if err := runReplay(&out, &errOut, indexed, false, -1); err != nil {
		t.Fatal(err)
	}
	serial := out.String()
	for _, par := range []int{0, 1, 4} {
		out.Reset()
		errOut.Reset()
		if err := runReplay(&out, &errOut, indexed, false, par); err != nil {
			t.Fatal(err)
		}
		if out.String() != serial {
			t.Errorf("-par %d summary diverged:\n%q\n%q", par, out.String(), serial)
		}
		if strings.Contains(errOut.String(), "warning") {
			t.Errorf("-par %d warned on an indexed plan: %q", par, errOut.String())
		}
	}

	// Unindexed plan: warn (stderr only), verify serially, same summary.
	out.Reset()
	errOut.Reset()
	if err := runReplay(&out, &errOut, plain, false, 4); err != nil {
		t.Fatal(err)
	}
	if out.String() != serial {
		t.Errorf("unindexed -par summary diverged:\n%q\n%q", out.String(), serial)
	}
	if !strings.Contains(errOut.String(), "no round index") {
		t.Errorf("missing unindexed warning: %q", errOut.String())
	}

	// An indexed gossip plan verifies under its custom model — -par must
	// say so instead of silently running serial.
	gossip := filepath.Join(t.TempDir(), "gossip.shcp")
	cube8, err := buildCube(2, 8, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := runPlan(&out, &errOut, cube8, "gossip", 0, gossip, true); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	if err := runReplay(&out, &errOut, gossip, false, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut.String(), "custom model") {
		t.Errorf("missing custom-model warning: %q", errOut.String())
	}
}

// TestParseDims pins the flag validation: duplicates and out-of-range
// entries are rejected with the offender named.
func TestParseDims(t *testing.T) {
	for _, tc := range []struct {
		in      string
		wantErr string
	}{
		{"2,5,12", ""},
		{" 3 , 9 ", ""},
		{"2,x", `bad -dims entry "x"`},
		{"2,5,5,12", "duplicate -dims entry 5"},
		{"7,2", "-dims entry 2 out of order after 7"},
		{"0,3", "-dims entry 0 outside [1,64]"},
		{"-4", "-dims entry -4 outside [1,64]"},
		{"2,65", "-dims entry 65 outside [1,64]"},
	} {
		vec, err := parseDims(tc.in)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("parseDims(%q): unexpected error %v", tc.in, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("parseDims(%q) accepted: %v", tc.in, vec)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("parseDims(%q) error = %q, want it to name the offender as %q", tc.in, err, tc.wantErr)
		}
	}
}

// TestGossipPlanReplayRoundTrip drives the gossip half of the
// write-once/verify-many pair: a streamed 2^15-vertex gather-scatter plan
// — past the old serial simulation cap — written to disk and replayed
// through the sharded validator to full completion.
func TestGossipPlanReplayRoundTrip(t *testing.T) {
	cube, err := buildCube(2, 15, "")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "gossip.shcp")
	var out, errOut strings.Builder
	if err := runPlan(&out, &errOut, cube, "gossip", 5, path, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "gossip scheme from 5") {
		t.Errorf("plan output: %q", out.String())
	}
	out.Reset()
	if err := runReplay(&out, &errOut, path, false, -1); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "rounds: 30") || !strings.Contains(got, "complete: true") {
		t.Errorf("gossip replay output: %q", got)
	}
}

// TestDistVerify drives `verify -in plan.shcp -workers ...` against an
// httptest planserver fleet: the printed summary must match what a
// local replay prints, URLs without a scheme get http:// prefixed, and
// the error paths (missing -in, no usable endpoints) refuse up front.
func TestDistVerify(t *testing.T) {
	cube, err := buildCube(2, 10, "")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "plan.shcp")
	var out, errOut strings.Builder
	if err := runPlan(&out, &errOut, cube, "broadcast", 3, path, true); err != nil {
		t.Fatal(err)
	}
	var urls []string
	for range 2 {
		ts := httptest.NewServer(planserver.New().Handler())
		defer ts.Close()
		urls = append(urls, strings.TrimPrefix(ts.URL, "http://"))
	}
	out.Reset()
	errOut.Reset()
	if err := runDistVerify(&out, &errOut, path, strings.Join(urls, ","), false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "minimum time: true") {
		t.Errorf("distverify output: %q", out.String())
	}

	var serial strings.Builder
	if err := runReplay(&serial, &errOut, path, false, -1); err != nil {
		t.Fatal(err)
	}
	if want := out.String(); !strings.HasSuffix(serial.String(), want) {
		t.Errorf("summary diverged from serial replay:\ndist:   %q\nserial: %q", want, serial.String())
	}

	if err := runDistVerify(&out, &errOut, "", urls[0], true); err == nil {
		t.Error("missing -in accepted")
	}
	if err := runDistVerify(&out, &errOut, path, " , ", true); err == nil {
		t.Error("empty worker list accepted")
	}
	missing := filepath.Join(t.TempDir(), "missing.shcp")
	if err := runDistVerify(&out, &errOut, missing, urls[0], true); err == nil {
		t.Error("missing plan file accepted")
	}
}
