package main

import (
	"testing"
)

func TestBuildAuto(t *testing.T) {
	s, err := build(2, 15, "")
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 15 {
		t.Errorf("n = %d", s.N())
	}
	if s.MaxDegree() > 8 {
		t.Errorf("auto params degraded: Delta = %d", s.MaxDegree())
	}
}

func TestBuildExplicitDims(t *testing.T) {
	s, err := build(0, 0, "2,4,7")
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 3 || s.N() != 7 {
		t.Errorf("k=%d n=%d", s.K(), s.N())
	}
	if _, err := build(0, 0, "2,x"); err == nil {
		t.Error("expected parse error")
	}
	if _, err := build(0, 0, "7,2"); err == nil {
		t.Error("expected validation error")
	}
	// Whitespace tolerated.
	if _, err := build(0, 0, " 3 , 9 "); err != nil {
		t.Errorf("whitespace dims rejected: %v", err)
	}
}
