package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuildAuto(t *testing.T) {
	s, err := build(2, 15, "")
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 15 {
		t.Errorf("n = %d", s.N())
	}
	if s.MaxDegree() > 8 {
		t.Errorf("auto params degraded: Delta = %d", s.MaxDegree())
	}
}

func TestBuildExplicitDims(t *testing.T) {
	s, err := build(0, 0, "2,4,7")
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 3 || s.N() != 7 {
		t.Errorf("k=%d n=%d", s.K(), s.N())
	}
	if _, err := build(0, 0, "2,x"); err == nil {
		t.Error("expected parse error")
	}
	if _, err := build(0, 0, "7,2"); err == nil {
		t.Error("expected validation error")
	}
	// Whitespace tolerated.
	if _, err := build(0, 0, " 3 , 9 "); err != nil {
		t.Errorf("whitespace dims rejected: %v", err)
	}
}

// TestPlanReplayRoundTrip drives the write-once/verify-many subcommand
// pair end to end through a temp file.
func TestPlanReplayRoundTrip(t *testing.T) {
	cube, err := buildCube(2, 10, "")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "plan.shcp")
	var out strings.Builder
	if err := runPlan(&out, cube, "broadcast", 3, path); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "broadcast scheme from 3") {
		t.Errorf("plan output: %q", out.String())
	}
	out.Reset()
	if err := runReplay(&out, path, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "minimum time: true") {
		t.Errorf("replay output: %q", out.String())
	}

	// A truncated file must fail replay, not pass quietly.
	enc, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(t.TempDir(), "trunc.shcp")
	if err := os.WriteFile(trunc, enc[:len(enc)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runReplay(&out, trunc, true); err == nil {
		t.Fatal("truncated plan replayed successfully")
	}

	if err := runPlan(&out, cube, "nonesuch", 0, path); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if err := runReplay(&out, "", true); err == nil {
		t.Fatal("missing -in accepted")
	}
}

// TestGossipPlanReplayRoundTrip drives the gossip half of the
// write-once/verify-many pair: a streamed 2^15-vertex gather-scatter plan
// — past the old serial simulation cap — written to disk and replayed
// through the sharded validator to full completion.
func TestGossipPlanReplayRoundTrip(t *testing.T) {
	cube, err := buildCube(2, 15, "")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "gossip.shcp")
	var out strings.Builder
	if err := runPlan(&out, cube, "gossip", 5, path); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "gossip scheme from 5") {
		t.Errorf("plan output: %q", out.String())
	}
	out.Reset()
	if err := runReplay(&out, path, false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "rounds: 30") || !strings.Contains(got, "complete: true") {
		t.Errorf("gossip replay output: %q", got)
	}
}
