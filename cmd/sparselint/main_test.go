package main

import "testing"

// TestListExits exercises the -list path.
func TestListExits(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
}

// TestFullTreeClean pins the repo invariant CI enforces: every analyzer
// over every package, zero findings. A violation anywhere in the tree —
// a Materialize in planserver, an uncapped make in a decoder — fails
// this test before it fails CI.
func TestFullTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	if code := run([]string{"sparsehypercube/..."}); code != 0 {
		t.Fatalf("sparselint over the full tree exited %d (want 0); run `go run ./cmd/sparselint ./...` from the module root for the findings", code)
	}
}

// TestFullTreeStaleAllowsClean pins the companion invariant: every
// //lint:allow in the tree still suppresses a live diagnostic. A
// refactor that fixes the underlying code but leaves the annotation
// behind fails here before the stale comment can mislead a reader.
func TestFullTreeStaleAllowsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	if code := run([]string{"-stale-allows", "sparsehypercube/..."}); code != 0 {
		t.Fatalf("sparselint -stale-allows over the full tree exited %d (want 0); run `go run ./cmd/sparselint -stale-allows ./...` from the module root for the findings", code)
	}
}
