// Command sparselint is the repo's invariant checker: a multichecker
// carrying the nine custom analyzers in internal/lint, which mechanize
// the hand-enforced rules the serving pipeline depends on (streaming
// discipline, bounded decoder allocation, mapping lifetimes, lock
// hygiene, the 4xx error envelope, refcount balance, outbound-request
// deadlines, goroutine exit conditions, metrics exposition
// consistency). CI runs it over the full tree and fails on any finding.
//
// Usage:
//
//	sparselint [-list] [-json] [-stale-allows] [packages]
//
// Packages default to ./... relative to the working directory. Exit
// status is 1 when diagnostics were reported, 2 on operational errors.
// Deliberate violations are suppressed in-source with a mandatory
// reason:
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line above it. -stale-allows additionally
// fails on suppression comments that no longer suppress anything — a
// fixed violation must take its annotation with it. See docs/LINTING.md
// for each analyzer's invariant and provenance.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sparsehypercube/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("sparselint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	asJSON := fs.Bool("json", false, "emit diagnostics as JSON")
	staleAllows := fs.Bool("stale-allows", false, "also fail on //lint:allow comments that suppress nothing")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-17s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := lint.NewLoader(".")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sparselint:", err)
		return 2
	}
	diags, stale := lint.RunChecked(pkgs, analyzers)
	if !*staleAllows {
		stale = nil
	}
	if *asJSON {
		type jsonDiag struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, 0, len(diags)+len(stale))
		for _, d := range diags {
			out = append(out, jsonDiag{Analyzer: d.Analyzer, File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column, Message: d.Message})
		}
		for _, s := range stale {
			msg := fmt.Sprintf("//lint:allow %s suppresses no diagnostic: remove it", s.Analyzer)
			if s.Unknown {
				msg = fmt.Sprintf("//lint:allow %s names an unknown analyzer", s.Analyzer)
			}
			out = append(out, jsonDiag{Analyzer: "stale-allow", File: s.Pos.Filename, Line: s.Pos.Line, Col: s.Pos.Column, Message: msg})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		for _, s := range stale {
			fmt.Println(s)
		}
	}
	if n := len(diags) + len(stale); n > 0 {
		fmt.Fprintf(os.Stderr, "sparselint: %d finding(s)\n", n)
		return 1
	}
	return 0
}
