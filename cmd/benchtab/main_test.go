package main

import (
	"reflect"
	"strings"
	"testing"
)

// TestParseProcs pins the -procs validation: zero, negative, duplicate,
// and non-integer entries are rejected instead of silently benchmarking
// nonsense.
func TestParseProcs(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    []int
		wantErr string
	}{
		{in: "1,4,8", want: []int{1, 4, 8}},
		{in: " 2 , 16 ", want: []int{2, 16}},
		{in: "1", want: []int{1}},
		{in: "8,4,1", want: []int{8, 4, 1}}, // order is the operator's choice
		{in: "1,x", wantErr: `bad -procs entry "x"`},
		{in: "", wantErr: `bad -procs entry ""`},
		{in: "0,4", wantErr: "-procs entry 0 is not a positive GOMAXPROCS"},
		{in: "-2", wantErr: "-procs entry -2 is not a positive GOMAXPROCS"},
		{in: "1,4,4", wantErr: "duplicate -procs entry 4"},
		{in: "8, 8", wantErr: "duplicate -procs entry 8"},
	} {
		got, err := parseProcs(tc.in)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("parseProcs(%q): unexpected error %v", tc.in, err)
				continue
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("parseProcs(%q) = %v, want %v", tc.in, got, tc.want)
			}
			continue
		}
		if err == nil {
			t.Errorf("parseProcs(%q) accepted: %v", tc.in, got)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("parseProcs(%q) error = %q, want %q", tc.in, err, tc.wantErr)
		}
	}
}
