// Command benchtab regenerates every evaluation artifact of the paper —
// the figures, worked examples, and bound tables — as markdown tables.
//
// Usage:
//
//	benchtab           # run every experiment
//	benchtab -exp thm5 # run one experiment (fig1..fig5, ex1, ex3, ex6,
//	                   # thm1, lower, thm4, thm5, thm6, thm7, cor1, cor2,
//	                   # lem2, zoo, ablation, congestion, stream, ...)
//	benchtab -tsv      # tab-separated output instead of markdown
//
// Experiment ids match DESIGN.md's per-experiment index.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sparsehypercube/internal/analysis"
)

type experiment struct {
	id  string
	run func(tsv bool)
}

func main() {
	exp := flag.String("exp", "all", "experiment id (or 'all')")
	tsv := flag.Bool("tsv", false, "emit TSV instead of markdown")
	flag.Parse()

	experiments := []experiment{
		{"fig1", func(t bool) { emit(analysis.RunFig1(8), t) }},
		{"fig2", func(t bool) { emit(analysis.RunFig2(), t) }},
		{"fig3", func(t bool) { emit(analysis.RunFig3(), t) }},
		{"fig4", func(t bool) {
			tb, formatted := analysis.RunFig4()
			emit(tb, t)
			fmt.Println(formatted)
		}},
		{"fig5", func(t bool) { fmt.Println("### EXP-FIG5 — window partition (Fig. 5)\n\n" + analysis.RunFig5()) }},
		{"ex1", func(t bool) { emit(analysis.RunEx1(), t) }},
		{"ex3", func(t bool) { emit(analysis.RunEx3(), t) }},
		{"ex6", func(t bool) { emit(analysis.RunEx6(), t) }},
		{"thm1", func(t bool) { emit(analysis.RunFig1(9), t) }},
		{"lower", func(t bool) { emit(analysis.RunLowerBounds(40), t) }},
		{"thm4", func(t bool) { emit(analysis.RunThm4(9), t) }},
		{"thm5", func(t bool) { emit(analysis.RunThm5(40), t) }},
		{"thm6", func(t bool) { emit(analysis.RunThm6(), t) }},
		{"thm7", func(t bool) { emit(analysis.RunThm7(40), t) }},
		{"cor1", func(t bool) { emit(analysis.RunCor1(40), t) }},
		{"cor2", func(t bool) { emit(analysis.RunCor2(32), t) }},
		{"lem2", func(t bool) { emit(analysis.RunLem2(16), t) }},
		{"zoo", func(t bool) { emit(analysis.RunZoo(), t) }},
		{"permzoo", func(t bool) { emit(analysis.RunPermZoo(), t) }},
		{"ablation", func(t bool) { emit(analysis.RunAblation(12), t) }},
		{"congestion", func(t bool) { emit(analysis.RunCongestion(), t) }},
		{"diameter", func(t bool) { emit(analysis.RunDiameter(), t) }},
		{"gossip", func(t bool) { emit(analysis.RunGossip(), t) }},
		{"tree", func(t bool) { emit(analysis.RunTreecast(), t) }},
		{"stream", func(t bool) { emit(analysis.RunStream(16), t) }},
		{"mbg", func(t bool) { emit(analysis.RunMbg(), t) }},
	}

	want := strings.ToLower(*exp)
	found := false
	for _, e := range experiments {
		if want == "all" || want == e.id || "exp-"+e.id == want {
			e.run(*tsv)
			found = true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; known ids:", *exp)
		for _, e := range experiments {
			fmt.Fprintf(os.Stderr, " %s", e.id)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
}

func emit(t *analysis.Table, tsv bool) {
	if tsv {
		fmt.Print(t.TSV())
	} else {
		fmt.Println(t.Markdown())
	}
}
