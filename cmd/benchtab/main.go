// Command benchtab regenerates every evaluation artifact of the paper —
// the figures, worked examples, and bound tables — as markdown tables.
//
// Usage:
//
//	benchtab           # run every experiment
//	benchtab -exp thm5 # run one experiment (fig1..fig5, ex1, ex3, ex6,
//	                   # thm1, lower, thm4, thm5, thm6, thm7, cor1, cor2,
//	                   # lem2, zoo, ablation, congestion, stream, replay,
//	                   # multicore, ...)
//	benchtab -tsv      # tab-separated output instead of markdown
//
//	benchtab -exp multicore -procs 1,4,8 -json BENCH_multicore.json
//	                   # worker-pool scaling curves; -json also writes
//	                   # the machine-readable trajectory file
//
//	benchtab -exp gossip [-gossip-n 22]
//	                   # the §5 gossip tables plus the streamed n = 18..22
//	                   # gather-scatter trajectory (timing experiment, so
//	                   # it is skipped under -exp all, like multicore)
//
//	benchtab -exp serve [-serve-n 14] [-serve-reqs 96] [-serve-workers 8]
//	         [-serve-ops 60] [-json BENCH_serve.json]
//	                   # plan verification service throughput: concurrent
//	                   # sessions verifying one cached plan over HTTP,
//	                   # then a lifecycle-churn phase (mixed upload/
//	                   # verify/delete against an eviction-sized cache)
//	                   # (timing experiment, skipped under -exp all; the
//	                   # trajectory defaults to BENCH_serve.json)
//
//	benchtab -exp mmap [-mmap-n 20] [-json BENCH_mmap.json]
//	                   # mmap-backed parallel round-range verification:
//	                   # one indexed plan on disk, opened memory-mapped,
//	                   # verified at W = 1..8 workers with every Report
//	                   # checked identical to serial (timing experiment,
//	                   # skipped under -exp all; the curve defaults to
//	                   # BENCH_mmap.json)
//
//	benchtab -exp distverify [-distverify-n 16] [-json BENCH_distverify.json]
//	                   # distributed round-range verification: one
//	                   # indexed plan fanned out across an httptest
//	                   # planserver fleet of 1..4 workers by a distverify
//	                   # coordinator, every stitched Report checked
//	                   # identical to the local single-process baseline
//	                   # (timing experiment, skipped under -exp all; the
//	                   # curve defaults to BENCH_distverify.json)
//
//	benchtab -exp csr [-csr-n 16] [-json BENCH_csr.json]
//	                   # general-graph validation: the same BFS-tree
//	                   # broadcast on random regular and random k-tree
//	                   # graphs validated through the hash-map engine and
//	                   # the CSR edge-slot engine, with every Report pair
//	                   # checked identical (timing experiment, skipped
//	                   # under -exp all; the curve defaults to
//	                   # BENCH_csr.json)
//
// Experiment ids match DESIGN.md's per-experiment index.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"sparsehypercube/internal/analysis"
)

type experiment struct {
	id  string
	run func(tsv bool)
}

func main() {
	exp := flag.String("exp", "all", "experiment id (or 'all')")
	tsv := flag.Bool("tsv", false, "emit TSV instead of markdown")
	procs := flag.String("procs", "1,4,8", "GOMAXPROCS settings for -exp multicore")
	mcN := flag.Int("multicore-n", 20, "cube dimension for -exp multicore")
	gossipN := flag.Int("gossip-n", 22, "largest cube dimension for the -exp gossip streamed trajectory")
	serveN := flag.Int("serve-n", 14, "cube dimension for -exp serve")
	serveReqs := flag.Int("serve-reqs", 96, "requests per concurrency level for -exp serve")
	serveWorkers := flag.Int("serve-workers", 8, "workers for the -exp serve churn phase")
	serveOps := flag.Int("serve-ops", 60, "per-worker operations for the -exp serve churn phase")
	mmapN := flag.Int("mmap-n", 20, "cube dimension for -exp mmap")
	distN := flag.Int("distverify-n", 16, "cube dimension for -exp distverify")
	csrN := flag.Int("csr-n", 16, "largest log2 vertex count for -exp csr")
	jsonOut := flag.String("json", "", "also write the multicore/serve/mmap/distverify/csr trajectory as JSON to this file")
	flag.Parse()

	procList, err := parseProcs(*procs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(2)
	}
	want := strings.ToLower(*exp)
	if *jsonOut == "" {
		// The serve and mmap trajectories are acceptance artifacts; record
		// them by default so running the experiment always leaves the curve
		// behind.
		switch want {
		case "serve", "exp-serve":
			*jsonOut = "BENCH_serve.json"
		case "mmap", "exp-mmap":
			*jsonOut = "BENCH_mmap.json"
		case "distverify", "exp-distverify":
			*jsonOut = "BENCH_distverify.json"
		case "csr", "exp-csr":
			*jsonOut = "BENCH_csr.json"
		}
	}

	experiments := []experiment{
		{"fig1", func(t bool) { emit(analysis.RunFig1(8), t) }},
		{"fig2", func(t bool) { emit(analysis.RunFig2(), t) }},
		{"fig3", func(t bool) { emit(analysis.RunFig3(), t) }},
		{"fig4", func(t bool) {
			tb, formatted := analysis.RunFig4()
			emit(tb, t)
			fmt.Println(formatted)
		}},
		{"fig5", func(t bool) { fmt.Println("### EXP-FIG5 — window partition (Fig. 5)\n\n" + analysis.RunFig5()) }},
		{"ex1", func(t bool) { emit(analysis.RunEx1(), t) }},
		{"ex3", func(t bool) { emit(analysis.RunEx3(), t) }},
		{"ex6", func(t bool) { emit(analysis.RunEx6(), t) }},
		{"thm1", func(t bool) { emit(analysis.RunFig1(9), t) }},
		{"lower", func(t bool) { emit(analysis.RunLowerBounds(40), t) }},
		{"thm4", func(t bool) { emit(analysis.RunThm4(9), t) }},
		{"thm5", func(t bool) { emit(analysis.RunThm5(40), t) }},
		{"thm6", func(t bool) { emit(analysis.RunThm6(), t) }},
		{"thm7", func(t bool) { emit(analysis.RunThm7(40), t) }},
		{"cor1", func(t bool) { emit(analysis.RunCor1(40), t) }},
		{"cor2", func(t bool) { emit(analysis.RunCor2(32), t) }},
		{"lem2", func(t bool) { emit(analysis.RunLem2(16), t) }},
		{"zoo", func(t bool) { emit(analysis.RunZoo(), t) }},
		{"permzoo", func(t bool) { emit(analysis.RunPermZoo(), t) }},
		{"ablation", func(t bool) { emit(analysis.RunAblation(12), t) }},
		{"congestion", func(t bool) { emit(analysis.RunCongestion(), t) }},
		{"diameter", func(t bool) { emit(analysis.RunDiameter(), t) }},
		{"gossip", func(t bool) {
			emit(analysis.RunGossip(), t)
			// The streamed n >= 18 trajectory is a timing experiment
			// (multi-second all-source simulations): like multicore it
			// runs only when asked for by name, not under -exp all.
			if want != "all" {
				emit(analysis.RunGossipStream(min(18, *gossipN), *gossipN), t)
			}
		}},
		{"tree", func(t bool) { emit(analysis.RunTreecast(), t) }},
		{"stream", func(t bool) { emit(analysis.RunStream(16), t) }},
		{"replay", func(t bool) { emit(analysis.RunReplay(16), t) }},
		{"multicore", func(t bool) {
			tb, res := analysis.RunMulticore(*mcN, procList, 3)
			emit(tb, t)
			if *jsonOut != "" {
				if err := writeMulticoreJSON(*jsonOut, res); err != nil {
					fmt.Fprintln(os.Stderr, "benchtab:", err)
					os.Exit(1)
				}
			}
		}},
		{"mbg", func(t bool) { emit(analysis.RunMbg(), t) }},
		{"serve", func(t bool) {
			tb, res := analysis.RunServe(*serveN, []int{1, 2, 4, 8, 16, 32, 64}, *serveReqs)
			emit(tb, t)
			ctb, churn := analysis.RunServeChurn(*serveN, *serveWorkers, *serveOps)
			emit(ctb, t)
			res.Churn = churn
			if *jsonOut != "" {
				if err := writeServeJSON(*jsonOut, res); err != nil {
					fmt.Fprintln(os.Stderr, "benchtab:", err)
					os.Exit(1)
				}
			}
		}},
		{"mmap", func(t bool) {
			tb, res := analysis.RunMmap(*mmapN, []int{1, 2, 3, 4, 5, 6, 7, 8}, 3)
			emit(tb, t)
			if *jsonOut != "" {
				if err := writeMmapJSON(*jsonOut, res); err != nil {
					fmt.Fprintln(os.Stderr, "benchtab:", err)
					os.Exit(1)
				}
			}
		}},
		{"distverify", func(t bool) {
			tb, res := analysis.RunDistVerify(*distN, []int{1, 2, 3, 4}, 3)
			emit(tb, t)
			if *jsonOut != "" {
				if err := writeDistVerifyJSON(*jsonOut, res); err != nil {
					fmt.Fprintln(os.Stderr, "benchtab:", err)
					os.Exit(1)
				}
			}
		}},
		{"csr", func(t bool) {
			tb, res := analysis.RunCSR(*csrN, 3)
			emit(tb, t)
			if *jsonOut != "" {
				if err := writeCSRJSON(*jsonOut, res); err != nil {
					fmt.Fprintln(os.Stderr, "benchtab:", err)
					os.Exit(1)
				}
			}
		}},
	}

	found := false
	for _, e := range experiments {
		// multicore, serve, mmap and distverify are timing experiments
		// (GOMAXPROCS churn, repeated million-vertex runs, wall-clock
		// measurement): meaningful only in isolation, so they never ride
		// along with -exp all.
		if want == "all" && (e.id == "multicore" || e.id == "serve" || e.id == "mmap" || e.id == "distverify" || e.id == "csr") {
			continue
		}
		if want == "all" || want == e.id || "exp-"+e.id == want {
			e.run(*tsv)
			found = true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; known ids:", *exp)
		for _, e := range experiments {
			fmt.Fprintf(os.Stderr, " %s", e.id)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
}

func emit(t *analysis.Table, tsv bool) {
	if tsv {
		fmt.Print(t.TSV())
	} else {
		fmt.Println(t.Markdown())
	}
}

// parseProcs parses the -procs list, rejecting anything that would make
// the scaling curve nonsense: non-integers, zero or negative settings,
// and duplicate entries (which would silently re-run a level and skew
// "best of" comparisons).
func parseProcs(s string) ([]int, error) {
	var out []int
	seen := make(map[int]bool)
	for _, part := range strings.Split(s, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -procs entry %q", part)
		}
		if p < 1 {
			return nil, fmt.Errorf("-procs entry %d is not a positive GOMAXPROCS", p)
		}
		if seen[p] {
			return nil, fmt.Errorf("duplicate -procs entry %d", p)
		}
		seen[p] = true
		out = append(out, p)
	}
	return out, nil
}

func writeMulticoreJSON(path string, res *analysis.MulticoreResult) error {
	return writeJSONFile(path, res.WriteJSON)
}

func writeServeJSON(path string, res *analysis.ServeResult) error {
	return writeJSONFile(path, res.WriteJSON)
}

func writeMmapJSON(path string, res *analysis.MmapResult) error {
	return writeJSONFile(path, res.WriteJSON)
}

func writeDistVerifyJSON(path string, res *analysis.DistVerifyResult) error {
	return writeJSONFile(path, res.WriteJSON)
}

func writeCSRJSON(path string, res *analysis.CSRResult) error {
	return writeJSONFile(path, res.WriteJSON)
}

func writeJSONFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
