package sparsehypercube

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestPlanReplayMatchesDirect is the acceptance gate for the round
// codec: ReadPlan(WriteTo(plan)) replayed into VerifyRounds produces a
// Report identical to direct VerifyBroadcast, for k in {1, 2, 3}, and
// the replay re-encodes byte-for-byte.
func TestPlanReplayMatchesDirect(t *testing.T) {
	for _, kn := range [][2]int{{1, 6}, {2, 10}, {3, 12}} {
		k, n := kn[0], kn[1]
		cube, err := New(k, n)
		if err != nil {
			t.Fatal(err)
		}
		src := cube.Order() / 3
		direct := cube.VerifyBroadcast(src)
		if !direct.Valid || !direct.MinimumTime {
			t.Fatalf("k=%d n=%d: direct verification failed: %+v", k, n, direct)
		}

		plan := cube.Plan(BroadcastScheme{Source: src})
		var buf bytes.Buffer
		wn, err := plan.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if wn != int64(buf.Len()) {
			t.Fatalf("WriteTo reported %d bytes, wrote %d", wn, buf.Len())
		}

		// Replay through the deprecated streaming entry point.
		replay, err := ReadPlan(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		viaRounds := cube.VerifyRounds(src, replay.Rounds())
		if err := replay.Err(); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(direct, viaRounds) {
			t.Fatalf("k=%d n=%d: replayed VerifyRounds diverged:\n%+v\n%+v", k, n, direct, viaRounds)
		}

		// Replay through the plan's own Verify.
		replay2, err := ReadPlan(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if got := replay2.Scheme(); got.Name() != "broadcast" || got.Origin() != src {
			t.Fatalf("k=%d n=%d: replayed scheme %q origin %d", k, n, got.Name(), got.Origin())
		}
		if got := replay2.Cube(); got.K() != cube.K() || got.N() != n ||
			!reflect.DeepEqual(got.Dims(), cube.Dims()) {
			t.Fatalf("k=%d n=%d: replayed cube params diverged: %v", k, n, got.Dims())
		}
		viaVerify := replay2.Verify()
		if !reflect.DeepEqual(direct, viaVerify) {
			t.Fatalf("k=%d n=%d: replayed Verify diverged:\n%+v\n%+v", k, n, direct, viaVerify)
		}

		// Replay re-encodes byte-for-byte.
		replay3, err := ReadPlan(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var re bytes.Buffer
		if _, err := replay3.WriteTo(&re); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), re.Bytes()) {
			t.Fatalf("k=%d n=%d: replay re-encode not byte-identical (%d vs %d bytes)",
				k, n, buf.Len(), re.Len())
		}
	}
}

// TestPlanReplayStreamedN22 certifies the write-once/verify-many flow in
// the regime the codec exists for: a 4.2M-vertex schedule streamed to
// disk and replayed into the validator without ever being materialised.
func TestPlanReplayStreamedN22(t *testing.T) {
	if testing.Short() {
		t.Skip("n=22 pipeline in -short mode")
	}
	cube, err := New(3, 22)
	if err != nil {
		t.Fatal(err)
	}
	plan := cube.Plan(BroadcastScheme{Source: 0})

	path := filepath.Join(t.TempDir(), "n22.shcp")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	direct := cube.VerifyBroadcast(0)
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	replay, err := ReadPlan(rf)
	if err != nil {
		t.Fatal(err)
	}
	rep := replay.Verify()
	if !rep.Valid || !rep.MinimumTime || rep.Rounds != 22 {
		t.Fatalf("n=22 replay failed: %+v", rep)
	}
	if !reflect.DeepEqual(direct, rep) {
		t.Fatalf("n=22 replay diverged from direct verification:\n%+v\n%+v", direct, rep)
	}
}

// TestGossipPlanRoundTrip: gossip plans serialise, re-bind to the gossip
// validator on replay, and agree with the generative plan.
func TestGossipPlanRoundTrip(t *testing.T) {
	cube, err := New(2, 9)
	if err != nil {
		t.Fatal(err)
	}
	plan := cube.Plan(GossipScheme{Root: 5})
	direct := plan.Verify()
	if !direct.Valid || !direct.Complete || direct.Rounds != 2*cube.N() {
		t.Fatalf("gossip plan verification failed: %+v", direct)
	}
	if direct.MinimumTime {
		t.Fatal("2n-round gather-scatter cannot be minimum time")
	}

	var buf bytes.Buffer
	if _, err := plan.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	replay, err := ReadPlan(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := replay.Scheme().(GossipScheme); !ok {
		t.Fatalf("replayed scheme %T, want GossipScheme", replay.Scheme())
	}
	rep := replay.Verify()
	if !reflect.DeepEqual(direct, rep) {
		t.Fatalf("gossip replay diverged:\n%+v\n%+v", direct, rep)
	}

	// The deprecated wrapper and the plan snapshot agree.
	if !reflect.DeepEqual(cube.Gossip(5), plan.Materialize()) {
		t.Fatal("Gossip wrapper diverged from plan.Materialize")
	}
}

// TestGossipPlanMidScale: the streamed gossip validator reaches past the
// serial simulation cap (2^14): an n = 15 gossip plan now verifies fully
// — structurally and with exact sharded token simulation — without the
// doubled schedule ever being materialised.
func TestGossipPlanMidScale(t *testing.T) {
	cube, err := New(2, 15)
	if err != nil {
		t.Fatal(err)
	}
	rep := cube.Plan(GossipScheme{Root: 3}).Verify()
	if !rep.Valid || !rep.Complete || rep.Rounds != 2*cube.N() {
		t.Fatalf("n=15 gossip plan failed verification: %+v", rep)
	}
	if rep.MinimumTime {
		t.Fatal("2n-round gather-scatter cannot be minimum time")
	}
}

// TestGossipPlanBeyondSimulationCap: past the streamed caps (all-source
// gossip above 2^40 vertex-token cells) the validator still runs every
// structural check — the stream is consumed — but must report the
// simulation-cap violation for the knowledge half instead of guessing.
func TestGossipPlanBeyondSimulationCap(t *testing.T) {
	cube, err := New(2, 21) // 2^42 cells all-source, over the 2^40 cap
	if err != nil {
		t.Fatal(err)
	}
	consumed := false
	scheme := RoundScheme("gossip-probe", 0, func(yield func([]Call) bool) { consumed = true })
	rep := GossipScheme{Root: 0}.VerifyPlan(cube, cube.Plan(scheme).Rounds())
	if rep.Valid || len(rep.Violations) == 0 {
		t.Fatalf("over-cap gossip verified: %+v", rep)
	}
	if !strings.Contains(rep.Violations[0], "simulation-cap-exceeded") {
		t.Fatalf("want simulation-cap violation, got %q", rep.Violations[0])
	}
	if !consumed {
		t.Fatal("over-cap gossip skipped the structural checks (stream not consumed)")
	}
	if rep.Complete || rep.MinimumTime {
		t.Fatalf("over-cap gossip claimed completion: %+v", rep)
	}

	// A sampled source set brings the same cube back under the cell cap:
	// multi-source dissemination verifies exactly where all-source gossip
	// cannot. An empty round stream leaves the sources' tokens stranded.
	rep = MultiSourceScheme{Root: 0, Sources: []uint64{0, 1, 2}}.VerifyPlan(
		cube, cube.Plan(RoundScheme("probe", 0, func(yield func([]Call) bool) {})).Rounds())
	if !rep.Valid {
		t.Fatalf("in-cap multi-source probe reported violations: %+v", rep)
	}
	if rep.Complete {
		t.Fatal("empty multi-source plan cannot be complete")
	}
}

// TestDeprecatedWrappersAgreeWithPlan pins the sextet as exact wrappers.
func TestDeprecatedWrappersAgreeWithPlan(t *testing.T) {
	cube, err := New(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	plan := cube.Plan(BroadcastScheme{Source: 9})
	if !reflect.DeepEqual(cube.Broadcast(9), plan.Materialize()) {
		t.Fatal("Broadcast diverged from plan.Materialize")
	}
	if !reflect.DeepEqual(cube.VerifyBroadcast(9), plan.Verify()) {
		t.Fatal("VerifyBroadcast diverged from plan.Verify")
	}
	sched := plan.Materialize()
	if !reflect.DeepEqual(cube.Verify(sched),
		func() Report {
			rep := cube.Plan(RoundScheme("broadcast", sched.Source, sched.Stream())).Verify()
			rep.Rounds = len(sched.Rounds)
			return rep
		}()) {
		t.Fatal("Verify diverged from RoundScheme plan")
	}
	want := plan.Materialize()
	got := &Schedule{Source: 9}
	for round := range plan.Rounds() {
		got.Rounds = append(got.Rounds, cloneCalls(round))
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("plan.Rounds diverged from plan.Materialize")
	}
}

// TestVerifySourceOutOfRange pins the legacy report shapes: Verify
// counts declared rounds, VerifyRounds counts validated rounds (0 — the
// stream is never consumed).
func TestVerifySourceOutOfRange(t *testing.T) {
	cube, err := New(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	sched := cube.Broadcast(0)
	sched.Source = cube.Order() + 7
	rep := cube.Verify(sched)
	if rep.Valid || rep.Rounds != len(sched.Rounds) {
		t.Fatalf("Verify with bad source: %+v", rep)
	}
	consumed := false
	rep = cube.VerifyRounds(cube.Order(), func(yield func([]Call) bool) { consumed = true })
	if rep.Valid || rep.Rounds != 0 || consumed {
		t.Fatalf("VerifyRounds with bad source: %+v (consumed=%v)", rep, consumed)
	}
}

// TestSchemeOriginOutOfRange: a bad Source/Root on a generative scheme
// surfaces as a violation report, never a panic, on every plan method.
func TestSchemeOriginOutOfRange(t *testing.T) {
	cube, err := New(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	bad := cube.Order() + 5
	bplan := cube.Plan(BroadcastScheme{Source: bad})
	rep := bplan.Verify()
	if rep.Valid || len(rep.Violations) == 0 || !strings.Contains(rep.Violations[0], "vertex-out-of-range") {
		t.Fatalf("broadcast bad-source report: %+v", rep)
	}
	for range bplan.Rounds() {
		t.Fatal("bad-source plan yielded a round")
	}
	if sched := bplan.Materialize(); len(sched.Rounds) != 0 {
		t.Fatal("bad-source plan materialised rounds")
	}

	grep := cube.Plan(GossipScheme{Root: bad}).Verify()
	if grep.Valid || len(grep.Violations) == 0 || !strings.Contains(grep.Violations[0], "vertex-out-of-range") {
		t.Fatalf("gossip bad-root report: %+v", grep)
	}
}

// TestWithCopiedRounds: rounds yielded under the option survive the
// iteration and reproduce the materialised schedule.
func TestWithCopiedRounds(t *testing.T) {
	cube, err := New(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	plan := cube.Plan(BroadcastScheme{Source: 1}, WithCopiedRounds())
	var retained [][]Call
	for round := range plan.Rounds() {
		retained = append(retained, round) // no copy: the option owns it
	}
	want := cube.Plan(BroadcastScheme{Source: 1}).Materialize()
	if !reflect.DeepEqual(want.Rounds, retained) {
		t.Fatal("retained copied rounds diverged from materialised schedule")
	}
}

// TestReadPlanRejectsBadInput: garbage and corrupted headers error out
// of ReadPlan; a truncated round stream surfaces as a Verify violation,
// never a panic or a false pass.
func TestReadPlanRejectsBadInput(t *testing.T) {
	if _, err := ReadPlan(bytes.NewReader([]byte("not a plan file"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadPlan(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}

	cube, err := New(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := cube.Plan(BroadcastScheme{Source: 0}).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	truncated := enc[:len(enc)*2/3]
	replay, err := ReadPlan(bytes.NewReader(truncated))
	if err != nil {
		t.Fatal(err) // header is intact; failure must surface at replay time
	}
	rep := replay.Verify()
	if rep.Valid {
		t.Fatalf("truncated plan verified: %+v", rep)
	}
	if replay.Err() == nil {
		t.Fatal("truncated plan left Err nil")
	}

	// A truncated Materialize is flagged through Err, not silence.
	replay2, err := ReadPlan(bytes.NewReader(truncated))
	if err != nil {
		t.Fatal(err)
	}
	replay2.Materialize()
	if replay2.Err() == nil {
		t.Fatal("truncated Materialize left Err nil")
	}
}

// TestRoundSchemeExternal: an external materialised schedule flows
// through the Plan engine and agrees with the deprecated Verify.
func TestRoundSchemeExternal(t *testing.T) {
	cube, err := New(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	sched := cube.Broadcast(4)
	scheme := RoundScheme("external", sched.Source, sched.Stream())
	rep := cube.Plan(scheme).Verify()
	want := cube.Verify(sched)
	want.Rounds = rep.Rounds // Verify counts declared rounds; the raw engine counts validated ones
	if !reflect.DeepEqual(want, rep) {
		t.Fatalf("RoundScheme verification diverged:\n%+v\n%+v", want, rep)
	}

	// A plan over an external stream serialises too.
	var buf bytes.Buffer
	if _, err := cube.Plan(RoundScheme("external", sched.Source, sched.Stream())).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	replay, err := ReadPlan(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if replay.Scheme().Name() != "external" {
		t.Fatalf("stored scheme name %q", replay.Scheme().Name())
	}
	got := replay.Verify()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("stored external plan diverged:\n%+v\n%+v", want, got)
	}
}
