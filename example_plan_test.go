package sparsehypercube_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"sparsehypercube"
)

// Write once with the serving index, then let any number of concurrent
// verifiers replay the single copy through ReadPlanAt. On indexed
// plans Verify is automatically parallel (round ranges split across
// workers) with a Report identical to the serial pass.
func ExamplePlan_WriteIndexedTo() {
	cube, err := sparsehypercube.New(2, 10)
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if _, err := cube.Plan(sparsehypercube.BroadcastScheme{Source: 0}).WriteIndexedTo(&buf); err != nil {
		panic(err)
	}
	plan, err := sparsehypercube.ReadPlanAt(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		panic(err)
	}
	fmt.Println("indexed:", plan.Indexed())
	fmt.Println("valid:", plan.Verify().Valid)
	// Output:
	// indexed: true
	// valid: true
}

// ReadPlanAt returns a reusable Plan: unlike ReadPlan (single-use
// stream), every Verify replays the bytes through its own decoder, so
// one copy serves many concurrent verifiers.
func ExampleReadPlanAt() {
	cube, err := sparsehypercube.New(2, 9)
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if _, err := cube.Plan(sparsehypercube.BroadcastScheme{Source: 7}).WriteIndexedTo(&buf); err != nil {
		panic(err)
	}
	plan, err := sparsehypercube.ReadPlanAt(bytes.NewReader(buf.Bytes()), int64(buf.Len()),
		sparsehypercube.WithVerifyWorkers(4))
	if err != nil {
		panic(err)
	}
	first, second := plan.Verify(), plan.Verify() // reusable: both replay
	fmt.Println("rounds:", first.Rounds)
	fmt.Println("reports agree:", first.MinimumTime == second.MinimumTime)
	// Output:
	// rounds: 9
	// reports agree: true
}

// OpenPlanFile serves a plan straight off a read-only memory mapping
// (positional reads where the platform lacks mmap): verifiers share
// the one page-cache copy of the file.
func ExampleOpenPlanFile() {
	cube, err := sparsehypercube.New(2, 9)
	if err != nil {
		panic(err)
	}
	dir, err := os.MkdirTemp("", "planfile")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "plan.shcp")
	f, err := os.Create(path)
	if err != nil {
		panic(err)
	}
	if _, err := cube.Plan(sparsehypercube.BroadcastScheme{Source: 0}).WriteIndexedTo(f); err != nil {
		panic(err)
	}
	if err := f.Close(); err != nil {
		panic(err)
	}

	plan, err := sparsehypercube.OpenPlanFile(path)
	if err != nil {
		panic(err)
	}
	defer plan.Close()
	rep := plan.Verify()
	fmt.Println("valid:", rep.Valid)
	fmt.Println("minimum time:", rep.MinimumTime)
	// Output:
	// valid: true
	// minimum time: true
}

// Gather-scatter dissemination from a restricted source set: only the
// listed vertices hold tokens, which shrinks the verification token
// axis far below the all-to-all regime.
func ExampleMultiSourceScheme() {
	cube, err := sparsehypercube.New(2, 8)
	if err != nil {
		panic(err)
	}
	scheme := sparsehypercube.MultiSourceScheme{Root: 0, Sources: []uint64{0, 5, 9}}
	rep := cube.Plan(scheme).Verify()
	fmt.Println("rounds:", rep.Rounds)
	fmt.Println("valid:", rep.Valid)
	fmt.Println("complete:", rep.Complete)
	// Output:
	// rounds: 16
	// valid: true
	// complete: true
}
