package sparsehypercube_test

import (
	"fmt"

	"sparsehypercube"
)

// The headline result: a 2-line broadcast graph on 2^15 vertices with
// maximum degree 6 instead of 15, still broadcasting in 15 rounds.
func ExampleNew() {
	cube, err := sparsehypercube.New(2, 15)
	if err != nil {
		panic(err)
	}
	fmt.Println("max degree:", cube.MaxDegree())
	fmt.Println("order:", cube.Order())
	// Output:
	// max degree: 6
	// order: 32768
}

// Broadcasting and verifying against the k-line model.
func ExampleCube_Broadcast() {
	cube, err := sparsehypercube.New(2, 10)
	if err != nil {
		panic(err)
	}
	sched := cube.Broadcast(0)
	report := cube.Verify(sched)
	fmt.Println("rounds:", report.Rounds)
	fmt.Println("minimum time:", report.MinimumTime)
	fmt.Println("max call length:", report.MaxCallLength)
	// Output:
	// rounds: 10
	// minimum time: true
	// max call length: 2
}

// Explicit paper parameters: Construct_BASE(15, 3) is the paper's
// Example 3, a 6-regular graph.
func ExampleNewWithDims() {
	cube, err := sparsehypercube.NewWithDims(2, []int{3, 15})
	if err != nil {
		panic(err)
	}
	fmt.Println("degree:", cube.MaxDegree())
	fmt.Println("edges:", cube.NumEdges())
	// Output:
	// degree: 6
	// edges: 98304
}

// The degree bounds of Theorems 2, 5 and 7.
func ExampleLowerBoundDegree() {
	lb := sparsehypercube.LowerBoundDegree(2, 16)
	ub, _ := sparsehypercube.UpperBoundDegree(2, 16)
	fmt.Printf("%d <= Delta <= %d\n", lb, ub)
	// Output:
	// 4 <= Delta <= 8
}

// All-to-all gossip (the paper's §5 direction) in 2n rounds.
func ExampleCube_Gossip() {
	cube, err := sparsehypercube.New(2, 8)
	if err != nil {
		panic(err)
	}
	rep, err := cube.VerifyGossip(cube.Gossip(0))
	if err != nil {
		panic(err)
	}
	fmt.Println("rounds:", rep.Rounds)
	fmt.Println("complete:", rep.Complete)
	// Output:
	// rounds: 16
	// complete: true
}
