package sparsehypercube_test

import (
	"bytes"
	"fmt"

	"sparsehypercube"
)

// The headline result: a 2-line broadcast graph on 2^15 vertices with
// maximum degree 6 instead of 15, still broadcasting in 15 rounds.
func ExampleNew() {
	cube, err := sparsehypercube.New(2, 15)
	if err != nil {
		panic(err)
	}
	fmt.Println("max degree:", cube.MaxDegree())
	fmt.Println("order:", cube.Order())
	// Output:
	// max degree: 6
	// order: 32768
}

// Broadcasting and verifying against the k-line model through the
// Scheme/Plan engine.
func ExampleCube_Plan() {
	cube, err := sparsehypercube.New(2, 10)
	if err != nil {
		panic(err)
	}
	plan := cube.Plan(sparsehypercube.BroadcastScheme{Source: 0})
	report := plan.Verify()
	fmt.Println("rounds:", report.Rounds)
	fmt.Println("minimum time:", report.MinimumTime)
	fmt.Println("max call length:", report.MaxCallLength)
	// Output:
	// rounds: 10
	// minimum time: true
	// max call length: 2
}

// Write a plan once, replay and re-verify it from the serialised form.
func ExampleReadPlan() {
	cube, err := sparsehypercube.New(2, 10)
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if _, err := cube.Plan(sparsehypercube.BroadcastScheme{Source: 7}).WriteTo(&buf); err != nil {
		panic(err)
	}
	replay, err := sparsehypercube.ReadPlan(&buf)
	if err != nil {
		panic(err)
	}
	report := replay.Verify()
	fmt.Println("scheme:", replay.Scheme().Name())
	fmt.Println("valid:", report.Valid)
	fmt.Println("minimum time:", report.MinimumTime)
	// Output:
	// scheme: broadcast
	// valid: true
	// minimum time: true
}

// The deprecated pre-Plan entry points remain as wrappers.
func ExampleCube_Broadcast() {
	cube, err := sparsehypercube.New(2, 10)
	if err != nil {
		panic(err)
	}
	sched := cube.Broadcast(0)
	report := cube.Verify(sched)
	fmt.Println("rounds:", report.Rounds)
	fmt.Println("minimum time:", report.MinimumTime)
	// Output:
	// rounds: 10
	// minimum time: true
}

// Explicit paper parameters: Construct_BASE(15, 3) is the paper's
// Example 3, a 6-regular graph.
func ExampleNewWithDims() {
	cube, err := sparsehypercube.NewWithDims(2, []int{3, 15})
	if err != nil {
		panic(err)
	}
	fmt.Println("degree:", cube.MaxDegree())
	fmt.Println("edges:", cube.NumEdges())
	// Output:
	// degree: 6
	// edges: 98304
}

// The degree bounds of Theorems 2, 5 and 7.
func ExampleLowerBoundDegree() {
	lb := sparsehypercube.LowerBoundDegree(2, 16)
	ub, _ := sparsehypercube.UpperBoundDegree(2, 16)
	fmt.Printf("%d <= Delta <= %d\n", lb, ub)
	// Output:
	// 4 <= Delta <= 8
}

// All-to-all gossip (the paper's §5 direction) in 2n rounds.
func ExampleCube_Gossip() {
	cube, err := sparsehypercube.New(2, 8)
	if err != nil {
		panic(err)
	}
	rep, err := cube.VerifyGossip(cube.Gossip(0))
	if err != nil {
		panic(err)
	}
	fmt.Println("rounds:", rep.Rounds)
	fmt.Println("complete:", rep.Complete)
	// Output:
	// rounds: 16
	// complete: true
}
