package sparsehypercube

import (
	"errors"
	"fmt"
	"io"
	"iter"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"sparsehypercube/internal/core"
	"sparsehypercube/internal/linecomm"
	"sparsehypercube/internal/schedio"
)

// Scheme is a round-by-round k-line call plan on a cube — the paper's
// central object. A scheme describes what to send; a Plan binds it to a
// concrete cube and offers every way of consuming it (streaming,
// materialising, verifying, serialising) through one engine.
//
// BroadcastScheme, GossipScheme and MultiSourceScheme cover the paper's
// workloads; external streams adapt in via RoundScheme. Future schemes
// (treecast, say) implement the same three methods, plus PlanVerifier
// when their correctness model differs from single-source broadcast —
// MultiSourceScheme uses it to run the streamed telephone-model gossip
// validator.
type Scheme interface {
	// Name is a short identifier, stored in the plan file header and
	// used to re-bind a replayed plan to its verification model.
	Name() string
	// Origin is the scheme's distinguished vertex: the broadcast source,
	// the gossip root.
	Origin() uint64
	// Rounds generates the scheme's call rounds on cube. Yielded rounds
	// and the paths inside them may reuse storage between iterations.
	Rounds(cube *Cube) iter.Seq[[]Call]
}

// PlanVerifier is implemented by schemes whose correctness model is not
// single-source broadcast: Plan.Verify dispatches here instead of the
// streaming k-line broadcast validator. GossipScheme uses it to run the
// telephone-model gossip validator.
type PlanVerifier interface {
	VerifyPlan(cube *Cube, rounds iter.Seq[[]Call]) Report
}

// innerRoundsScheme is the allocation-free fast path: built-in schemes
// expose their internal round stream so Verify and WriteTo skip the
// public []Call conversion layer entirely.
type innerRoundsScheme interface {
	innerRounds(cube *Cube) iter.Seq[linecomm.Round]
}

// BroadcastScheme is the paper's minimum-time k-line broadcast from
// Source: exactly n rounds, calls of length at most k (Broadcast_2 for
// k = 2, Broadcast_k generally, binomial broadcast for k = 1).
type BroadcastScheme struct {
	Source uint64
}

// Name implements Scheme.
func (s BroadcastScheme) Name() string { return "broadcast" }

// Origin implements Scheme.
func (s BroadcastScheme) Origin() uint64 { return s.Source }

// Rounds implements Scheme: rounds are built from the informed-set
// frontier with call paths constructed in parallel; peak memory is
// O(frontier), not the full schedule. An out-of-range Source yields no
// rounds (and Plan.Verify reports it as a violation) rather than
// panicking.
func (s BroadcastScheme) Rounds(cube *Cube) iter.Seq[[]Call] {
	return fromInnerRounds(s.innerRounds(cube))
}

func (s BroadcastScheme) innerRounds(cube *Cube) iter.Seq[linecomm.Round] {
	if s.Source >= cube.Order() {
		return func(yield func(linecomm.Round) bool) {}
	}
	return cube.inner.ScheduleRounds(s.Source)
}

// RoundScheme adapts an arbitrary round stream — a network feed, a
// simulator, a materialised schedule's Stream() — into a Scheme, so
// external schedules flow through the same Plan engine as generated
// ones. The resulting scheme is as reusable as the underlying iterator
// (a Schedule's Stream is reusable; a live feed is not).
func RoundScheme(name string, origin uint64, rounds iter.Seq[[]Call]) Scheme {
	return roundScheme{name: name, origin: origin, seq: rounds}
}

type roundScheme struct {
	name   string
	origin uint64
	seq    iter.Seq[[]Call]
}

func (s roundScheme) Name() string                  { return s.name }
func (s roundScheme) Origin() uint64                { return s.origin }
func (s roundScheme) Rounds(*Cube) iter.Seq[[]Call] { return s.seq }

// storedScheme describes a replayed plan whose scheme name has no
// registered in-process generator; its rounds come from the decoder.
type storedScheme struct {
	name   string
	origin uint64
}

func (s storedScheme) Name() string   { return s.name }
func (s storedScheme) Origin() uint64 { return s.origin }
func (s storedScheme) Rounds(*Cube) iter.Seq[[]Call] {
	return func(yield func([]Call) bool) {}
}

// Plan is a lazy handle on a scheme bound to a cube: nothing is computed
// until one of its methods consumes the round stream.
//
//	plan := cube.Plan(sparsehypercube.BroadcastScheme{Source: 0})
//	plan.Rounds()       // stream, O(frontier) memory
//	plan.Materialize()  // snapshot into a Schedule
//	plan.Verify()       // pipe straight into the streaming validator
//	plan.WriteTo(f)     // serialise without materialising
//
// Plans over generative schemes (BroadcastScheme, GossipScheme) are
// reusable: every method regenerates the rounds. Plans returned by
// ReadPlan decode a stream and are single-use; check Err after
// consuming one outside Verify. Plans returned by ReadPlanAt replay
// through an io.ReaderAt and are reusable.
//
// A Plan is safe for concurrent use: generative and ReadPlanAt plans
// hold no mutable state between consumptions (every Verify, Rounds,
// Materialize, or WriteTo works on its own generator or decoder), and
// on a single-use ReadPlan plan exactly one consumer wins the stream —
// the others fail with a clean single-use violation instead of racing
// on the reader.
type Plan struct {
	cube    *Cube
	scheme  Scheme
	dec     *schedio.Decoder // round source for stream-replayed plans (single use)
	at      *schedio.PlanAt  // round source for random-access replays (reusable)
	copied  bool
	workers int       // Verify round-range workers: 0 auto, 1 serial
	closer  io.Closer // mapping owned by OpenPlanFile plans, else nil

	decClaimed atomic.Bool           // dec's single consumption slot
	replayErr  atomic.Pointer[error] // latest at-replay decode failure
}

// errSingleUse is folded into the Report of every consumer that loses
// the race for a stream-replayed plan's one round stream.
var errSingleUse = errors.New("sparsehypercube: replayed plan already consumed (ReadPlan plans are single-use; use ReadPlanAt for reusable, concurrent replays)")

// PlanOption configures a Plan.
type PlanOption func(*Plan)

// WithCopiedRounds makes Rounds yield freshly allocated rounds that are
// safe to retain across iteration steps, trading the allocation-free
// default for convenience.
func WithCopiedRounds() PlanOption {
	return func(p *Plan) { p.copied = true }
}

// WithVerifyWorkers sets how many round-range workers Verify may use on
// an indexed random-access plan: 1 (or any negative value) forces the
// serial streamed pass, 0 (the default) picks GOMAXPROCS, anything
// larger pins the worker count. Only plans that replay through
// ReadPlanAt (or OpenPlanFile) from a file carrying the per-round index
// (WriteIndexedTo) can be split; every other plan verifies serially
// regardless of this option.
func WithVerifyWorkers(w int) PlanOption {
	return func(p *Plan) {
		if w < 0 {
			w = 1 // negative means serial, as in the CLI's -par convention
		}
		p.workers = w
	}
}

// Plan binds a scheme to this cube.
func (c *Cube) Plan(scheme Scheme, opts ...PlanOption) *Plan {
	p := &Plan{cube: c, scheme: scheme}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Cube returns the cube the plan is bound to.
func (p *Plan) Cube() *Cube { return p.cube }

// Scheme returns the scheme the plan executes.
func (p *Plan) Scheme() Scheme { return p.scheme }

// roundSource returns the plan's round stream in the internal
// representation (skipping the public conversion layer when the scheme
// allows it) together with the decode-status check for this particular
// consumption. Each call hands out an independent source, which is what
// makes concurrent consumption safe.
func (p *Plan) roundSource() (iter.Seq[linecomm.Round], func() error) {
	noErr := func() error { return nil }
	switch {
	case p.dec != nil:
		if !p.decClaimed.CompareAndSwap(false, true) {
			// Record the misuse so Err surfaces it to consumers that do
			// not check per-consumption status (Rounds, Materialize) —
			// a second consumption must never look like an empty plan.
			p.storeReplayErr(errSingleUse)
			return func(yield func(linecomm.Round) bool) {}, func() error { return errSingleUse }
		}
		return p.dec.Rounds(), p.dec.Err
	case p.at != nil:
		d, err := p.at.NewDecoder()
		if err != nil {
			p.storeReplayErr(err)
			return func(yield func(linecomm.Round) bool) {}, func() error { return err }
		}
		seq := func(yield func(linecomm.Round) bool) {
			for round := range d.Rounds() {
				if !yield(round) {
					return
				}
			}
			p.storeReplayErr(d.Err())
		}
		return seq, d.Err
	}
	if s, ok := p.scheme.(innerRoundsScheme); ok {
		return s.innerRounds(p.cube), noErr
	}
	return toInnerRounds(p.scheme.Rounds(p.cube)), noErr
}

func (p *Plan) storeReplayErr(err error) {
	if err != nil {
		p.replayErr.Store(&err)
	}
}

// Rounds streams the plan one round at a time. By default the yielded
// slice and the paths inside it are reused between iterations — copy
// anything that must outlive the step, or build the plan with
// WithCopiedRounds.
func (p *Plan) Rounds() iter.Seq[[]Call] {
	inner, _ := p.roundSource()
	seq := fromInnerRounds(inner)
	if !p.copied {
		return seq
	}
	return copiedSeq(seq)
}

// copiedSeq wraps a round stream so every yielded round is freshly
// allocated (the WithCopiedRounds contract).
func copiedSeq(seq iter.Seq[[]Call]) iter.Seq[[]Call] {
	return func(yield func([]Call) bool) {
		for round := range seq {
			if !yield(cloneCalls(round)) {
				return
			}
		}
	}
}

// Materialize snapshots the plan into a Schedule with freshly allocated
// storage. For replayed plans, check Err afterwards: a decode failure
// truncates the snapshot.
func (p *Plan) Materialize() *Schedule {
	inner, _ := p.roundSource()
	out := &Schedule{Source: p.scheme.Origin()}
	for round := range fromInnerRounds(inner) {
		out.Rounds = append(out.Rounds, cloneCalls(round))
	}
	return out
}

// Verify checks the plan against its scheme's correctness model: the
// k-line broadcast validator (edge existence, call lengths, per-round
// edge- and receiver-disjointness, caller knowledge, completion,
// minimality) unless the scheme is a PlanVerifier. For replayed plans a
// decode failure is folded into the report as a violation, so a
// truncated or corrupted file can never verify.
//
// On an indexed random-access plan (ReadPlanAt or OpenPlanFile over a
// WriteIndexedTo file) Verify is automatically parallel: the round
// stream is split by index into contiguous ranges checked by
// WithVerifyWorkers workers (GOMAXPROCS by default), and the merged
// Report is identical — violation for violation, byte for byte — to
// the serial pass. Any decode or checksum anomaly on the fast path
// falls back to the authoritative serial pass, so corrupted files
// report exactly as they always did. Every other plan verifies in one
// streamed serial pass.
func (p *Plan) Verify() Report {
	if rep, ok := p.verifyParallel(); ok {
		return rep
	}
	var rep Report
	inner, errf := p.roundSource()
	if pv, ok := p.scheme.(PlanVerifier); ok {
		seq := fromInnerRounds(inner)
		if p.copied {
			seq = copiedSeq(seq) // custom verifiers may retain rounds
		}
		rep = pv.VerifyPlan(p.cube, seq)
	} else {
		res := linecomm.ValidateStream(p.cube.inner, p.cube.K(), p.scheme.Origin(), inner)
		rep = reportFrom(res, len(res.InformedPerRound))
	}
	if err := errf(); err != nil {
		rep.Valid = false
		rep.Violations = append(rep.Violations, fmt.Sprintf("replay: %v", err))
	}
	return rep
}

// verifyParallel is the indexed fast path of Verify: split the round
// stream into contiguous index ranges, scan them in parallel for the
// receivers they inform (the only state crossing a range boundary) and
// their span CRCs, then run one seeded stream validator per range and
// merge. ok is false when the plan is not eligible — not random-access,
// not indexed, a custom-verifier scheme, fewer than two rounds or
// workers — or when any worker sees a decode/integrity anomaly; the
// caller then runs the serial pass, whose Report is authoritative (and,
// for clean plans, identical to the merged one by construction).
func (p *Plan) verifyParallel() (Report, bool) {
	if p.at == nil || !p.at.Indexed() {
		return Report{}, false
	}
	if _, ok := p.scheme.(PlanVerifier); ok {
		return Report{}, false
	}
	workers := p.workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rounds := p.at.NumRounds()
	if workers < 2 || rounds < 2 {
		return Report{}, false
	}
	workers = min(workers, rounds)
	order := p.cube.Order()
	source := p.scheme.Origin()
	if source >= order {
		return Report{}, false // trivial, and the serial path words the violation
	}
	bounds := make([]int, workers+1)
	for w := range workers + 1 {
		bounds[w] = w * rounds / workers
	}
	errs := make([]error, workers)
	run := func(f func(w int) error) bool {
		var wg sync.WaitGroup
		for w := range workers {
			wg.Add(1)
			go func() {
				defer wg.Done()
				errs[w] = f(w)
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return false
			}
		}
		return true
	}

	// Pass 1: per range, the receivers its calls inform and the CRC of
	// its byte span. Informing is purely structural, so ranges are
	// independent here. Range 0 needs no structural pre-scan at all:
	// its seed is always empty, so its full seeded validation runs now,
	// teeing out the informed delta that seeds range 1 — one decode of
	// range 0 instead of two, overlapped with the structural pass over
	// the rest. The final range's delta seeds nothing — only the span
	// CRC matters there, so it just drains.
	//
	// The range split is the parallelism; each validator gets its share
	// of the cores for fill-phase sharding rather than GOMAXPROCS each.
	fillShards := max(1, runtime.GOMAXPROCS(0)/workers)
	deltas := make([][]uint64, workers)
	crcs := make([]schedio.RangeCRC, workers)
	parts := make([]*linecomm.Result, workers)
	if !run(func(w int) error {
		rr, err := p.at.Range(bounds[w], bounds[w+1])
		if err != nil {
			return err
		}
		switch {
		case w == 0:
			rounds := linecomm.TeeInformed(p.cube.inner, rr.Rounds(), &deltas[0])
			parts[0] = linecomm.ValidateStreamSeeded(p.cube.inner, p.cube.K(), source,
				nil, bounds[0], rounds, linecomm.DefaultOptions(), fillShards)
		case w < workers-1:
			deltas[w] = linecomm.CollectInformedStream(p.cube.inner, rr.Rounds())
		default:
			for range rr.Rounds() {
			}
		}
		crc, err := rr.CRC()
		if err != nil {
			return err
		}
		crcs[w] = schedio.RangeCRC{CRC: crc, Bytes: rr.Bytes()}
		return nil
	}) {
		return Report{}, false
	}
	if err := p.at.CheckRangeCRCs(crcs); err != nil {
		return Report{}, false
	}
	// Prefix-union the deltas: range w's seed is everything informed by
	// ranges [0, w). One backing array, sized exactly, so the seed
	// slices stay aliases of stable storage.
	total := 0
	for _, d := range deltas {
		total += len(d)
	}
	all := make([]uint64, 0, total)
	seeds := make([][]uint64, workers)
	for w := range workers {
		seeds[w] = all
		all = append(all, deltas[w]...)
	}

	// Pass 2: full validation per remaining range, seeded with its
	// boundary set. Range 0 was already validated during pass 1.
	if !run(func(w int) error {
		if w == 0 {
			return nil
		}
		rr, err := p.at.Range(bounds[w], bounds[w+1])
		if err != nil {
			return err
		}
		rr.DisableCRC() // pass 1 already pinned this span's checksum
		parts[w] = linecomm.ValidateStreamSeeded(p.cube.inner, p.cube.K(), source,
			seeds[w], bounds[w], rr.Rounds(), linecomm.DefaultOptions(), fillShards)
		return rr.Err()
	}) {
		return Report{}, false
	}
	res := linecomm.MergeRangeResults(order, parts)
	return reportFrom(res, len(res.InformedPerRound)), true
}

// Err reports the decode status of a replayed plan: nil for generative
// plans, and nil for replayed plans whose stream (as far as consumed)
// decoded cleanly with a matching checksum. A second consumption of a
// single-use ReadPlan plan surfaces here as well — yielding nothing is
// misuse, not an empty plan. For ReadPlanAt plans — where every
// consumption replays independently — it reports the most recently
// completed consumption's failure, if any.
func (p *Plan) Err() error {
	if p.dec != nil {
		if err := p.dec.Err(); err != nil {
			return err
		}
	}
	if e := p.replayErr.Load(); e != nil {
		return *e
	}
	return nil
}

// WriteTo serialises the plan in the compact binary round format of
// internal/schedio, streaming straight off the round generator — the
// schedule is never materialised, so million-vertex plans encode at
// O(frontier) memory. It implements io.WriterTo. The file replays with
// ReadPlan.
func (p *Plan) WriteTo(w io.Writer) (int64, error) {
	return p.writeTo(w, schedio.Write)
}

// WriteIndexedTo is WriteTo plus a per-round byte index appended after
// the checksum, enabling random access per round through ReadPlanAt —
// the form to store when a plan will be served to many concurrent
// verifiers. Indexed files replay with ReadPlan and ReadPlanAt alike.
func (p *Plan) WriteIndexedTo(w io.Writer) (int64, error) {
	return p.writeTo(w, schedio.WriteIndexed)
}

func (p *Plan) writeTo(w io.Writer, write func(io.Writer, schedio.Header, iter.Seq[linecomm.Round]) (int64, error)) (int64, error) {
	h := schedio.Header{
		K:      p.cube.K(),
		Dims:   p.cube.Dims(),
		Scheme: p.scheme.Name(),
		Source: p.scheme.Origin(),
	}
	inner, errf := p.roundSource()
	n, err := write(w, h, inner)
	if err == nil {
		err = errf() // re-encoding a broken replay must not silently truncate
	}
	return n, err
}

// ReadPlan opens a plan written by Plan.WriteTo: it decodes the header,
// reconstructs the cube from the stored parameter vector (default level
// choices, as New/NewWithDims produce), and returns a single-use Plan
// whose rounds replay from r one round at a time — nothing is
// materialised. Known scheme names re-bind to their verification model
// (a stored gossip plan verifies under the gossip validator); unknown
// names verify under the broadcast model.
//
//	f, _ := os.Open("plan.shcp")
//	plan, err := sparsehypercube.ReadPlan(f)
//	report := plan.Verify() // decode failures surface as violations
func ReadPlan(r io.Reader) (*Plan, error) {
	dec, err := schedio.NewDecoder(r)
	if err != nil {
		return nil, err
	}
	cube, scheme, err := bindHeader(dec.Header())
	if err != nil {
		return nil, err
	}
	return &Plan{cube: cube, scheme: scheme, dec: dec}, nil
}

// ReadPlanAt opens a plan through an io.ReaderAt — a memory-mapped or
// in-memory plan file, an os.File — and returns a reusable Plan safe
// for concurrent use: every Verify (or Rounds, Materialize, WriteTo)
// replays the file through its own decoder, so N verifiers share one
// copy of the bytes and nothing else. When the file carries a round
// index (WriteIndexedTo), its integrity is checked here.
//
// Unlike ReadPlan, decode failures of one consumption do not poison the
// handle; each Verify folds its own replay status into its Report.
//
// When the file carries the round index, Verify on the returned plan
// splits it across round-range workers (see WithVerifyWorkers).
func ReadPlanAt(r io.ReaderAt, size int64, opts ...PlanOption) (*Plan, error) {
	at, err := schedio.OpenPlanAt(r, size)
	if err != nil {
		return nil, err
	}
	cube, scheme, err := bindHeader(at.Header())
	if err != nil {
		return nil, err
	}
	p := &Plan{cube: cube, scheme: scheme, at: at}
	for _, o := range opts {
		o(p)
	}
	return p, nil
}

// OpenPlanFile opens the plan file at path for random-access replay
// through a read-only memory mapping — every verifier (in this process
// and any other mapping the same file) shares the one page-cache copy
// of the bytes — falling back transparently to positional file reads on
// platforms without mmap. The returned Plan behaves exactly like a
// ReadPlanAt plan: reusable, safe for concurrent use, automatically
// parallel on indexed files. Call Close to release the mapping.
func OpenPlanFile(path string, opts ...PlanOption) (*Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	m, err := schedio.OpenMapping(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	p, err := ReadPlanAt(m, m.Size(), opts...)
	if err != nil {
		m.Close()
		return nil, err
	}
	p.closer = m
	return p, nil
}

// Close releases the file mapping held by a plan opened with
// OpenPlanFile. It is a no-op (and returns nil) for every other plan.
// A closed plan must not be consumed again.
func (p *Plan) Close() error {
	if p.closer == nil {
		return nil
	}
	c := p.closer
	p.closer = nil
	return c.Close()
}

// Indexed reports whether the plan replays from a file carrying the
// per-round byte index (WriteIndexedTo) through ReadPlanAt or
// OpenPlanFile — the precondition for parallel Verify and per-round
// random access. Generative and stream-replayed plans report false.
func (p *Plan) Indexed() bool {
	return p.at != nil && p.at.Indexed()
}

// bindHeader reconstructs the cube a stored plan was generated on
// (default level choices, as New/NewWithDims produce) and re-binds the
// stored scheme name to its verification model. Known scheme names
// re-bind to their validators (a stored gossip plan verifies under the
// gossip model); unknown names verify under the broadcast model.
func bindHeader(h schedio.Header) (*Cube, Scheme, error) {
	inner, err := core.New(core.Params{K: h.K, Dims: h.Dims})
	if err != nil {
		return nil, nil, fmt.Errorf("sparsehypercube: plan header: %w", err)
	}
	var scheme Scheme
	switch h.Scheme {
	case "broadcast":
		scheme = BroadcastScheme{Source: h.Source}
	case "gossip":
		scheme = GossipScheme{Root: h.Source}
	default:
		scheme = storedScheme{name: h.Scheme, origin: h.Source}
	}
	return &Cube{inner: inner}, scheme, nil
}

// cloneCalls deep-copies one round into fresh storage (one backing array
// for all paths), the public-facing sibling of linecomm.CloneRound.
func cloneCalls(round []Call) []Call {
	total := 0
	for _, c := range round {
		total += len(c.Path)
	}
	buf := make([]uint64, 0, total)
	out := make([]Call, len(round))
	for i, c := range round {
		buf = append(buf, c.Path...)
		out[i] = Call{Path: buf[len(buf)-len(c.Path) : len(buf) : len(buf)]}
	}
	return out
}
