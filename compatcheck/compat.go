// Package compatcheck is a compile-time pin on the deprecated pre-Plan
// facade: a separate tiny module that uses ONLY the old sextet
// (Broadcast, BroadcastRounds, Verify, VerifyRounds, VerifyBroadcast,
// Gossip) plus their report types. CI runs `go vet ./...` here, so the
// compatibility surface cannot silently lose a method or change a
// signature without breaking the build. It is intentionally not part of
// the main module (it sits behind its own go.mod), so `go build ./...`
// at the repository root does not touch it.
package compatcheck

import (
	"iter"

	"sparsehypercube"
)

// OldSextet exercises every deprecated facade method with its historic
// signature. It exists to be compiled, not called.
func OldSextet(cube *sparsehypercube.Cube) ([]sparsehypercube.Report, error) {
	var sched *sparsehypercube.Schedule = cube.Broadcast(0)
	var rounds iter.Seq[[]sparsehypercube.Call] = cube.BroadcastRounds(0)
	reports := []sparsehypercube.Report{
		cube.Verify(sched),
		cube.VerifyRounds(sched.Source, rounds),
		cube.VerifyBroadcast(0),
	}
	var gsched *sparsehypercube.Schedule = cube.Gossip(0)
	var grep sparsehypercube.GossipReport
	grep, err := cube.VerifyGossip(gsched)
	if err != nil {
		return nil, err
	}
	_ = grep.MinKnown
	return reports, nil
}

// OldHelpers pins the package-level functions the sextet era exposed.
func OldHelpers(order uint64, k, n int) (int, int, int, error) {
	ub, err := sparsehypercube.UpperBoundDegree(k, n)
	if err != nil {
		return 0, 0, 0, err
	}
	return sparsehypercube.MinimumRounds(order), sparsehypercube.GossipMinimumRounds(order), ub, nil
}
