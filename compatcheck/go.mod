module sparsehypercube-compatcheck

go 1.24

require sparsehypercube v0.0.0

replace sparsehypercube => ../
