package sparsehypercube

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"sparsehypercube/internal/schedio"
)

// indexedPlanBytes encodes the cube's broadcast plan from src with the
// per-round index — the parallel-verification substrate.
func indexedPlanBytes(t *testing.T, cube *Cube, src uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := cube.Plan(BroadcastScheme{Source: src}).WriteIndexedTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// verifyAt replays data through ReadPlanAt with the given worker count.
func verifyAt(t *testing.T, data []byte, workers int) Report {
	t.Helper()
	plan, err := ReadPlanAt(bytes.NewReader(data), int64(len(data)), WithVerifyWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	return plan.Verify()
}

// TestParallelVerifyMatchesSerial is the acceptance gate for parallel
// round-range verification: on intact k ∈ {1,2,3} plans the Report of
// every worker count must be reflect.DeepEqual to the serial pass (and
// to direct generate+verify).
func TestParallelVerifyMatchesSerial(t *testing.T) {
	for _, kn := range [][2]int{{1, 6}, {2, 10}, {3, 12}} {
		k, n := kn[0], kn[1]
		cube, err := New(k, n)
		if err != nil {
			t.Fatal(err)
		}
		src := cube.Order() / 3
		data := indexedPlanBytes(t, cube, src)
		direct := cube.Plan(BroadcastScheme{Source: src}).Verify()
		serial := verifyAt(t, data, 1)
		if !reflect.DeepEqual(direct, serial) {
			t.Fatalf("k=%d: serial replay diverged from direct:\n%+v\n%+v", k, direct, serial)
		}
		if !serial.Valid || !serial.MinimumTime {
			t.Fatalf("k=%d: intact plan did not verify: %+v", k, serial)
		}
		for _, w := range []int{0, 2, 3, 5, 8} {
			if got := verifyAt(t, data, w); !reflect.DeepEqual(serial, got) {
				t.Fatalf("k=%d workers=%d: parallel Report diverged:\nserial:   %+v\nparallel: %+v",
					k, w, serial, got)
			}
		}
	}
}

// mutateSchedule applies one named structural corruption to a
// materialised public schedule; cross-range effects (early uninformed
// callers, late re-informs) included on purpose.
func mutateSchedule(name string, s *Schedule, order uint64) {
	last := len(s.Rounds) - 1
	switch name {
	case "drop-middle-call":
		mid := s.Rounds[last/2]
		s.Rounds[last/2] = mid[:len(mid)-1]
	case "duplicate-call":
		r := s.Rounds[last/2]
		s.Rounds[last/2] = append(r, r[0])
	case "retarget-receiver":
		r := s.Rounds[last]
		if len(r) >= 2 {
			r[1].Path[len(r[1].Path)-1] = r[0].Path[len(r[0].Path)-1]
		}
	case "overlong-call":
		c := &s.Rounds[last][0]
		tail := c.Path[len(c.Path)-1]
		c.Path = append(c.Path, tail^1, tail^1^2)
	case "out-of-range-vertex":
		c := &s.Rounds[last/2][0]
		c.Path[len(c.Path)-1] = order + 7
	case "uninformed-early-caller":
		// Hoist the last round's first call to round 0: its caller
		// cannot know yet, and every receiver it fed stays dark longer —
		// divergence that crosses every range boundary.
		c := s.Rounds[last][0]
		s.Rounds[last] = s.Rounds[last][1:]
		s.Rounds[0] = append(s.Rounds[0], c)
	}
}

// TestParallelVerifyMutatedPlans: structurally valid but semantically
// broken plans (violations, incompleteness) must produce byte-identical
// Reports from the parallel and serial paths — the violations
// themselves, their order, and their messages included.
func TestParallelVerifyMutatedPlans(t *testing.T) {
	names := []string{"drop-middle-call", "duplicate-call", "retarget-receiver",
		"overlong-call", "out-of-range-vertex", "uninformed-early-caller"}
	for _, kn := range [][2]int{{1, 6}, {2, 9}, {3, 12}} {
		k, n := kn[0], kn[1]
		cube, err := New(k, n)
		if err != nil {
			t.Fatal(err)
		}
		src := uint64(1)
		for _, name := range names {
			s := cube.Plan(BroadcastScheme{Source: src}).Materialize()
			mutateSchedule(name, s, cube.Order())
			var buf bytes.Buffer
			h := schedio.Header{K: cube.K(), Dims: cube.Dims(), Scheme: "broadcast", Source: src}
			if _, err := schedio.EncodeIndexed(&buf, h, toInner(s)); err != nil {
				t.Fatal(err)
			}
			serial := verifyAt(t, buf.Bytes(), 1)
			if serial.Valid && serial.Complete && serial.MinimumTime {
				t.Fatalf("k=%d %s: mutation went undetected", k, name)
			}
			for _, w := range []int{2, 4, 8} {
				if got := verifyAt(t, buf.Bytes(), w); !reflect.DeepEqual(serial, got) {
					t.Fatalf("k=%d %s workers=%d: Report diverged:\nserial:   %+v\nparallel: %+v",
						k, name, w, serial, got)
				}
			}
		}
	}
}

// TestParallelVerifyCorruptedPlans: random byte corruption anywhere in
// the file must leave the parallel path's Report identical to serial —
// by detecting the anomaly (range decode failure, index disagreement,
// checksum mismatch) and deferring to the authoritative serial pass.
func TestParallelVerifyCorruptedPlans(t *testing.T) {
	cube, err := New(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	data := indexedPlanBytes(t, cube, 3)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		mut := append([]byte(nil), data...)
		off := rng.Intn(len(mut))
		mut[off] ^= byte(1 + rng.Intn(255))
		serialPlan, serr := ReadPlanAt(bytes.NewReader(mut), int64(len(mut)), WithVerifyWorkers(1))
		parPlan, perr := ReadPlanAt(bytes.NewReader(mut), int64(len(mut)), WithVerifyWorkers(8))
		if (serr == nil) != (perr == nil) {
			t.Fatalf("trial %d (offset %d): open split: serial err %v, parallel err %v", trial, off, serr, perr)
		}
		if serr != nil {
			continue // corruption caught at open time, identically
		}
		serial := serialPlan.Verify()
		par := parPlan.Verify()
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("trial %d (offset %d): corrupted-plan Report diverged:\nserial:   %+v\nparallel: %+v",
				trial, off, serial, par)
		}
	}
}

// TestParallelVerifyConcurrent hammers one parallel plan handle from
// many goroutines — the serving pattern — under the race detector.
func TestParallelVerifyConcurrent(t *testing.T) {
	cube, err := New(2, 9)
	if err != nil {
		t.Fatal(err)
	}
	data := indexedPlanBytes(t, cube, 0)
	plan, err := ReadPlanAt(bytes.NewReader(data), int64(len(data)), WithVerifyWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	want := plan.Verify()
	var wg sync.WaitGroup
	reports := make([]Report, 8)
	for i := range reports {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reports[i] = plan.Verify()
		}()
	}
	wg.Wait()
	for i, got := range reports {
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("goroutine %d: %+v != %+v", i, got, want)
		}
	}
}

// TestOpenPlanFile: the mmap-backed open produces the same Reports as
// in-memory replay, parallel verification included, and Close is safe.
func TestOpenPlanFile(t *testing.T) {
	cube, err := New(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	data := indexedPlanBytes(t, cube, 5)
	path := filepath.Join(t.TempDir(), "plan.shcp")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	want := verifyAt(t, data, 1)
	for _, w := range []int{1, 4} {
		plan, err := OpenPlanFile(path, WithVerifyWorkers(w))
		if err != nil {
			t.Fatal(err)
		}
		if !plan.Indexed() {
			t.Fatal("mapped plan lost its index")
		}
		if got := plan.Verify(); !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: mapped Report diverged: %+v != %+v", w, got, want)
		}
		if err := plan.Close(); err != nil {
			t.Fatal(err)
		}
		if err := plan.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
	}
	if _, err := OpenPlanFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
	// Close on a generative plan is a no-op.
	if err := cube.Plan(BroadcastScheme{Source: 0}).Close(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelVerifyEdgeCases: plans the splitter must refuse to split
// (and verify serially instead, identically).
func TestParallelVerifyEdgeCases(t *testing.T) {
	// A gossip plan verifies through its PlanVerifier — always serial,
	// same Report at any worker setting.
	cube, err := New(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := cube.Plan(GossipScheme{Root: 2}).WriteIndexedTo(&buf); err != nil {
		t.Fatal(err)
	}
	gs := verifyAt(t, buf.Bytes(), 1)
	if !gs.Valid || !gs.Complete {
		t.Fatalf("gossip plan did not verify: %+v", gs)
	}
	if got := verifyAt(t, buf.Bytes(), 8); !reflect.DeepEqual(gs, got) {
		t.Fatalf("gossip Report diverged under workers: %+v != %+v", got, gs)
	}

	// An empty plan (out-of-range origin generates no rounds) cannot be
	// split; the violation must come out the same either way.
	var empty bytes.Buffer
	if _, err := cube.Plan(BroadcastScheme{Source: cube.Order() + 5}).WriteIndexedTo(&empty); err != nil {
		t.Fatal(err)
	}
	es := verifyAt(t, empty.Bytes(), 1)
	if es.Valid {
		t.Fatalf("empty plan verified: %+v", es)
	}
	if got := verifyAt(t, empty.Bytes(), 8); !reflect.DeepEqual(es, got) {
		t.Fatalf("empty-plan Report diverged: %+v != %+v", got, es)
	}

	// An unindexed file replayed through ReadPlanAt stays serial.
	var plain bytes.Buffer
	if _, err := cube.Plan(BroadcastScheme{Source: 1}).WriteTo(&plain); err != nil {
		t.Fatal(err)
	}
	ps := verifyAt(t, plain.Bytes(), 1)
	if got := verifyAt(t, plain.Bytes(), 8); !reflect.DeepEqual(ps, got) {
		t.Fatalf("unindexed Report diverged: %+v != %+v", got, ps)
	}
	plan, err := ReadPlanAt(bytes.NewReader(plain.Bytes()), int64(plain.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Indexed() {
		t.Error("unindexed plan reports Indexed")
	}
}
