package sparsehypercube

import (
	"sparsehypercube/internal/linecomm"
)

// ScheduleStats summarises a schedule's resource usage: the congestion
// quantities the paper's §5 discusses.
type ScheduleStats struct {
	Rounds          int
	TotalCalls      int
	CallLengthCount map[int]int // call length -> number of calls
	EdgesUsed       int         // distinct edges occupied at least once
	MaxEdgeLoad     int         // busiest edge's occupancy across rounds
	MeanEdgeLoad    float64
	// MinEdgeCapacity is the smallest per-round edge capacity under which
	// the schedule has no edge conflicts (1 for schedules valid in the
	// classic model; see the paper's §5 dilated-links discussion).
	MinEdgeCapacity int
}

// Stats computes ScheduleStats for s.
func (c *Cube) Stats(s *Schedule) ScheduleStats {
	inner := &linecomm.Schedule{Source: s.Source, Rounds: make([]linecomm.Round, len(s.Rounds))}
	for i, round := range s.Rounds {
		calls := make(linecomm.Round, len(round))
		for j, call := range round {
			calls[j] = linecomm.Call{Path: call.Path}
		}
		inner.Rounds[i] = calls
	}
	cong := linecomm.Congestion(inner)
	return ScheduleStats{
		Rounds:          len(s.Rounds),
		TotalCalls:      inner.TotalCalls(),
		CallLengthCount: linecomm.PathLengthHistogram(inner),
		EdgesUsed:       cong.EdgesUsed,
		MaxEdgeLoad:     cong.MaxEdgeLoad,
		MeanEdgeLoad:    cong.MeanEdgeLoad,
		MinEdgeCapacity: linecomm.MinEdgeCapacity(inner),
	}
}
