package sparsehypercube

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestQuickstartFlow(t *testing.T) {
	cube, err := New(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if cube.K() != 2 || cube.N() != 10 || cube.Order() != 1024 {
		t.Fatalf("cube parameters wrong: k=%d n=%d order=%d", cube.K(), cube.N(), cube.Order())
	}
	sched := cube.Broadcast(0)
	rep := cube.Verify(sched)
	if !rep.Valid || !rep.Complete || !rep.MinimumTime {
		t.Fatalf("verification failed: %+v", rep)
	}
	if rep.Rounds != 10 || rep.MaxCallLength > 2 {
		t.Fatalf("schedule shape wrong: %+v", rep)
	}
}

func TestNewWithDims(t *testing.T) {
	cube, err := NewWithDims(3, []int{2, 4, 7})
	if err != nil {
		t.Fatal(err)
	}
	dims := cube.Dims()
	if len(dims) != 3 || dims[0] != 2 || dims[2] != 7 {
		t.Fatalf("Dims = %v", dims)
	}
	// Mutating the returned slice must not affect the cube.
	dims[0] = 99
	if cube.Dims()[0] != 2 {
		t.Fatal("Dims leaked internal state")
	}
	if _, err := NewWithDims(2, []int{5, 3}); err == nil {
		t.Fatal("expected parameter validation error")
	}
}

func TestDegreesAndEdges(t *testing.T) {
	cube, err := NewWithDims(2, []int{3, 15})
	if err != nil {
		t.Fatal(err)
	}
	if cube.MaxDegree() != 6 || cube.MinDegree() != 6 {
		t.Fatalf("G_{15,3} should be 6-regular: max %d min %d", cube.MaxDegree(), cube.MinDegree())
	}
	if cube.NumEdges() != 6*(1<<15)/2 {
		t.Fatalf("|E| = %d", cube.NumEdges())
	}
	if cube.Degree(0) != 6 {
		t.Fatalf("Degree(0) = %d", cube.Degree(0))
	}
}

func TestNeighborsAndHasEdgeAgree(t *testing.T) {
	cube, err := New(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	f := func(uRaw uint16) bool {
		u := uint64(uRaw) & (cube.Order() - 1)
		nbrs := cube.Neighbors(u)
		if len(nbrs) != cube.Degree(u) {
			return false
		}
		for _, v := range nbrs {
			if !cube.HasEdge(u, v) || !cube.HasEdge(v, u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVerifyCatchesTampering(t *testing.T) {
	cube, err := New(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	sched := cube.Broadcast(5)
	// Drop a round: incomplete.
	tampered := &Schedule{Source: sched.Source, Rounds: sched.Rounds[:len(sched.Rounds)-1]}
	rep := cube.Verify(tampered)
	if rep.Complete || rep.MinimumTime {
		t.Fatal("truncated schedule should not verify as complete")
	}
	// Corrupt a path: violations reported.
	bad := cube.Broadcast(5)
	bad.Rounds[0][0].Path = []uint64{5}
	rep = cube.Verify(bad)
	if rep.Valid || len(rep.Violations) == 0 {
		t.Fatal("corrupted schedule should report violations")
	}
	if !strings.Contains(rep.Violations[0], "path-invalid") {
		t.Fatalf("unexpected violation: %v", rep.Violations)
	}
}

func TestCallAccessors(t *testing.T) {
	c := Call{Path: []uint64{1, 3, 7}}
	if c.From() != 1 || c.To() != 7 {
		t.Fatal("Call accessors wrong")
	}
}

func TestFormatSchedule(t *testing.T) {
	cube, err := New(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	out := cube.FormatSchedule(cube.Broadcast(0))
	if !strings.Contains(out, "broadcast from 000 in 3 rounds") {
		t.Errorf("FormatSchedule output:\n%s", out)
	}
}

func TestBoundsAPI(t *testing.T) {
	if MinimumRounds(1<<15) != 15 || MinimumRounds(22) != 5 {
		t.Error("MinimumRounds wrong")
	}
	if LowerBoundDegree(2, 16) != 4 {
		t.Error("LowerBoundDegree wrong")
	}
	ub, err := UpperBoundDegree(2, 15)
	if err != nil || ub != 8 {
		t.Errorf("UpperBoundDegree(2,15) = %d, %v", ub, err)
	}
	ub, err = UpperBoundDegree(1, 9)
	if err != nil || ub != 9 {
		t.Errorf("UpperBoundDegree(1,9) = %d, %v", ub, err)
	}
	if _, err := UpperBoundDegree(5, 4); err == nil {
		t.Error("expected domain error for k >= n")
	}
	if _, err := UpperBoundDegree(0, 4); err == nil {
		t.Error("expected domain error for k = 0")
	}
	ub, err = UpperBoundDegree(3, 27)
	if err != nil || ub != (2*3-1)*3-3 {
		t.Errorf("UpperBoundDegree(3,27) = %d, %v", ub, err)
	}
}

// The headline guarantee, end to end through the public API: for a range
// of (k, n) the built cube respects both degree bounds and broadcasts in
// minimum time.
func TestHeadlineGuarantee(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4} {
		for _, n := range []int{8, 12} {
			if n <= k {
				continue
			}
			cube, err := New(k, n)
			if err != nil {
				t.Fatal(err)
			}
			ub, err := UpperBoundDegree(k, n)
			if err != nil {
				t.Fatal(err)
			}
			if cube.MaxDegree() > ub {
				t.Errorf("k=%d n=%d: Delta %d > bound %d", k, n, cube.MaxDegree(), ub)
			}
			if cube.MaxDegree() < LowerBoundDegree(k, n) {
				t.Errorf("k=%d n=%d: Delta below lower bound", k, n)
			}
			rep := cube.Verify(cube.Broadcast(uint64(n)))
			if !rep.MinimumTime || rep.MaxCallLength > k {
				t.Errorf("k=%d n=%d: broadcast report %+v", k, n, rep)
			}
		}
	}
}
