// Package intmath provides exact integer arithmetic helpers used by the
// sparse-hypercube bound formulas: ceiling division, integer k-th roots,
// base-2 logarithms and saturating powers.
//
// All functions are exact: no floating point is involved, so bound tables
// generated from them are reproducible across platforms. Arguments are
// validated with panics because every call site passes compile-time-ish
// constants (paper parameters); a panic indicates a programming error, not
// an input error.
package intmath

import "math/bits"

// CeilDiv returns ceil(a/b) for a >= 0, b > 0.
func CeilDiv(a, b int) int {
	if a < 0 || b <= 0 {
		panic("intmath: CeilDiv requires a >= 0, b > 0")
	}
	return (a + b - 1) / b
}

// FloorLog2 returns floor(log2 x) for x > 0.
func FloorLog2(x uint64) int {
	if x == 0 {
		panic("intmath: FloorLog2(0)")
	}
	return 63 - bits.LeadingZeros64(x)
}

// CeilLog2 returns ceil(log2 x) for x > 0. CeilLog2(1) == 0.
func CeilLog2(x uint64) int {
	if x == 0 {
		panic("intmath: CeilLog2(0)")
	}
	l := FloorLog2(x)
	if x == 1<<uint(l) {
		return l
	}
	return l + 1
}

// IsPow2 reports whether x is a power of two (x > 0).
func IsPow2(x uint64) bool {
	return x != 0 && x&(x-1) == 0
}

// Pow returns base**exp, panicking on overflow of uint64.
func Pow(base uint64, exp int) uint64 {
	if exp < 0 {
		panic("intmath: Pow with negative exponent")
	}
	result := uint64(1)
	for i := 0; i < exp; i++ {
		if base != 0 && result > ^uint64(0)/base {
			panic("intmath: Pow overflow")
		}
		result *= base
	}
	return result
}

// powGreater reports whether base**exp > x, saturating instead of
// overflowing.
func powGreater(base uint64, exp int, x uint64) bool {
	result := uint64(1)
	for i := 0; i < exp; i++ {
		if base != 0 && result > ^uint64(0)/base {
			return true // true product exceeds MaxUint64 >= x
		}
		result *= base
	}
	return result > x
}

// FloorRoot returns floor(x^(1/k)) for x >= 0, k >= 1, computed exactly by
// binary search on the monotone predicate r**k <= x.
func FloorRoot(x uint64, k int) uint64 {
	if k < 1 {
		panic("intmath: FloorRoot requires k >= 1")
	}
	if k == 1 || x < 2 {
		return x
	}
	lo, hi := uint64(1), x
	// Tighten hi: floor root of x is at most 2^(floor(log2 x)/k + 1).
	if b := FloorLog2(x)/k + 1; b < 63 {
		hi = 1 << uint(b)
	}
	for lo < hi {
		mid := lo + (hi-lo+1)/2
		if powGreater(mid, k, x) {
			hi = mid - 1
		} else {
			lo = mid
		}
	}
	return lo
}

// CeilRoot returns ceil(x^(1/k)) for x >= 0, k >= 1.
func CeilRoot(x uint64, k int) uint64 {
	r := FloorRoot(x, k)
	if Pow(r, k) == x {
		return r
	}
	return r + 1
}

// CeilSqrt returns ceil(sqrt(x)).
func CeilSqrt(x uint64) uint64 { return CeilRoot(x, 2) }

// Min returns the smaller of a and b.
func Min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
