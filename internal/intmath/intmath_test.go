package intmath

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 1, 0}, {1, 1, 1}, {1, 2, 1}, {2, 2, 1}, {3, 2, 2},
		{10, 3, 4}, {9, 3, 3}, {100, 7, 15}, {6, 7, 1},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCeilDivPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CeilDiv(-1,1) did not panic")
		}
	}()
	CeilDiv(-1, 1)
}

func TestFloorLog2(t *testing.T) {
	cases := []struct {
		x    uint64
		want int
	}{
		{1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3}, {1023, 9}, {1024, 10},
		{1 << 40, 40}, {math.MaxUint64, 63},
	}
	for _, c := range cases {
		if got := FloorLog2(c.x); got != c.want {
			t.Errorf("FloorLog2(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestCeilLog2(t *testing.T) {
	cases := []struct {
		x    uint64
		want int
	}{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{22, 5}, // tri-tree h=3 order: ceil(log2 22) = 5 rounds
		{1 << 15, 15},
	}
	for _, c := range cases {
		if got := CeilLog2(c.x); got != c.want {
			t.Errorf("CeilLog2(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for i := 0; i < 63; i++ {
		if !IsPow2(1 << uint(i)) {
			t.Errorf("IsPow2(2^%d) = false", i)
		}
	}
	for _, x := range []uint64{0, 3, 5, 6, 7, 9, 12, 1000} {
		if IsPow2(x) {
			t.Errorf("IsPow2(%d) = true", x)
		}
	}
}

func TestPow(t *testing.T) {
	cases := []struct {
		base uint64
		exp  int
		want uint64
	}{
		{2, 10, 1024}, {3, 4, 81}, {10, 0, 1}, {0, 3, 0}, {1, 100, 1}, {7, 5, 16807},
	}
	for _, c := range cases {
		if got := Pow(c.base, c.exp); got != c.want {
			t.Errorf("Pow(%d,%d) = %d, want %d", c.base, c.exp, got, c.want)
		}
	}
}

func TestPowOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pow(2,64) did not panic")
		}
	}()
	Pow(2, 64)
}

func TestFloorRootExhaustiveSmall(t *testing.T) {
	for k := 1; k <= 6; k++ {
		for x := uint64(0); x <= 5000; x++ {
			got := FloorRoot(x, k)
			// got**k <= x < (got+1)**k
			if Pow(got, k) > x {
				t.Fatalf("FloorRoot(%d,%d) = %d: root too large", x, k, got)
			}
			if !powGreater(got+1, k, x) {
				t.Fatalf("FloorRoot(%d,%d) = %d: root too small", x, k, got)
			}
		}
	}
}

func TestCeilRootKnown(t *testing.T) {
	cases := []struct {
		x    uint64
		k    int
		want uint64
	}{
		{16, 2, 4}, {17, 2, 5}, {15, 2, 4}, {27, 3, 3}, {28, 3, 4},
		{64, 3, 4}, {64, 6, 2}, {65, 6, 3}, {1, 5, 1}, {0, 3, 0},
		// Theorem 5 ingredient: m* = ceil(sqrt(2n+4)) - 2 for n = 15: sqrt(34) -> 6, m* = 4.
		{34, 2, 6},
	}
	for _, c := range cases {
		if got := CeilRoot(c.x, c.k); got != c.want {
			t.Errorf("CeilRoot(%d,%d) = %d, want %d", c.x, c.k, got, c.want)
		}
	}
}

func TestRootsLargeValues(t *testing.T) {
	if got := FloorRoot(math.MaxUint64, 2); got != (1<<32)-1 {
		t.Errorf("FloorRoot(MaxUint64,2) = %d, want %d", got, uint64(1<<32)-1)
	}
	if got := FloorRoot(1<<60, 4); got != 1<<15 {
		t.Errorf("FloorRoot(2^60,4) = %d, want %d", got, 1<<15)
	}
	if got := CeilRoot(1<<60+1, 4); got != 1<<15+1 {
		t.Errorf("CeilRoot(2^60+1,4) = %d, want %d", got, 1<<15+1)
	}
}

// Property: for random x and k in 1..8, FloorRoot agrees with the float
// computation within its exactness guarantees, and Ceil/Floor are consistent.
func TestRootProperties(t *testing.T) {
	f := func(x uint64, kRaw uint8) bool {
		k := int(kRaw%8) + 1
		fl := FloorRoot(x, k)
		cl := CeilRoot(x, k)
		if Pow2Safe(fl, k) > x {
			return false
		}
		if cl < fl || cl > fl+1 {
			return false
		}
		if cl == fl && x != 0 && Pow(fl, k) != x && k > 1 && fl != x {
			// ceil == floor only when exact power (or k == 1).
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Pow2Safe is Pow but saturating instead of panicking, for property tests.
func Pow2Safe(base uint64, exp int) uint64 {
	result := uint64(1)
	for i := 0; i < exp; i++ {
		if base != 0 && result > ^uint64(0)/base {
			return ^uint64(0)
		}
		result *= base
	}
	return result
}

// Property: CeilLog2(x) is the number of rounds needed to double 1 up to x.
func TestCeilLog2DoublingProperty(t *testing.T) {
	f := func(xRaw uint32) bool {
		x := uint64(xRaw) + 1
		r := CeilLog2(x)
		// 2^r >= x and (r == 0 or 2^(r-1) < x)
		if Pow2Safe(2, r) < x {
			return false
		}
		if r > 0 && Pow2Safe(2, r-1) >= x {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 || Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Min/Max broken")
	}
}
