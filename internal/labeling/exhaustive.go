package labeling

// MaxLabelsExhaustive computes lambda_m exactly by backtracking search:
// the largest K for which V(Q_m) can be labeled with K labels so that
// every label class dominates Q_m. Exponential; intended for m <= 4
// (m = 4 takes well under a second with the pruning below).
func MaxLabelsExhaustive(m int) (int, *Labeling) {
	if m < 1 || m > 4 {
		panic("labeling: exhaustive search limited to m <= 4")
	}
	for k := UpperBound(m); k >= 1; k-- {
		if labels, ok := searchLabeling(m, k); ok {
			l, err := FromLabels(m, k, labels, "exhaustive")
			if err != nil {
				panic("labeling: exhaustive search produced invalid labeling: " + err.Error())
			}
			return k, l
		}
	}
	panic("labeling: unreachable — one label always works")
}

// searchLabeling looks for a Condition-A labeling of Q_m with exactly k
// classes (every class nonempty is implied: a class that never appears
// cannot dominate).
func searchLabeling(m, k int) ([]uint8, bool) {
	order := 1 << uint(m)
	if k > order {
		return nil, false
	}
	labels := make([]uint8, order)
	assigned := make([]bool, order)

	// For each vertex u: which classes are present in N[u] so far, and how
	// many slots of N[u] remain unassigned.
	type nbState struct {
		present uint32
		free    int
	}
	state := make([]nbState, order)
	for u := range state {
		state[u].free = m + 1
	}
	closed := make([][]int, order)
	for u := 0; u < order; u++ {
		nb := []int{u}
		for b := 0; b < m; b++ {
			nb = append(nb, u^(1<<uint(b)))
		}
		closed[u] = nb
	}
	fullMask := uint32(1)<<uint(k) - 1

	var rec func(v int) bool
	rec = func(v int) bool {
		if v == order {
			return true
		}
		// Symmetry breaking: vertex 0 gets label 0; beyond that, a new
		// label value may only be introduced in order.
		maxUsed := 0
		for i := 0; i < v; i++ {
			if int(labels[i])+1 > maxUsed {
				maxUsed = int(labels[i]) + 1
			}
		}
		limit := maxUsed + 1
		if limit > k {
			limit = k
		}
		for c := 0; c < limit; c++ {
			labels[v] = uint8(c)
			assigned[v] = true
			ok := true
			// Update neighborhood states; prune when any fully assigned
			// neighborhood misses a class, or cannot possibly cover.
			for _, u := range closed[v] {
				st := &state[u]
				st.present |= 1 << uint(c)
				st.free--
				missing := popcount32(fullMask &^ st.present)
				if missing > st.free {
					ok = false
				}
			}
			if ok && rec(v+1) {
				return true
			}
			for _, u := range closed[v] {
				st := &state[u]
				st.free++
				// Recompute presence (cheap for m <= 4).
				st.present = 0
				for _, w := range closed[u] {
					if assigned[w] && w != v {
						st.present |= 1 << uint(labels[w])
					} else if w == v {
						// v is being unassigned
						continue
					}
				}
			}
			assigned[v] = false
		}
		return false
	}
	if rec(0) {
		return labels, true
	}
	return nil, false
}

func popcount32(x uint32) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
