package labeling

import "testing"

// Known domination numbers of small hypercubes.
func TestDominationNumbers(t *testing.T) {
	want := map[int]int{1: 1, 2: 2, 3: 2, 4: 4, 5: 7}
	for m, g := range want {
		if got := DominationNumberExact(m); got != g {
			t.Errorf("gamma(Q_%d) = %d, want %d", m, got, g)
		}
	}
}

// The counting bound pins lambda exactly where construction meets it:
// lambda_1 = 2, lambda_3 = 4 (perfect codes), and crucially lambda_5 = 4:
// floor(32/7) = 4 = the composed construction's label count, settling a
// value the exhaustive search cannot reach.
func TestCountingBoundPinsLambda(t *testing.T) {
	cases := []struct{ m, lambda int }{{1, 2}, {3, 4}, {5, 4}}
	for _, c := range cases {
		best, err := Best(c.m)
		if err != nil {
			t.Fatal(err)
		}
		ub := CountingUpperBound(c.m)
		if best.NumLabels() != c.lambda || ub != c.lambda {
			t.Errorf("m=%d: construction %d, counting upper bound %d, want both %d",
				c.m, best.NumLabels(), ub, c.lambda)
		}
	}
	// m = 2: counting gives floor(4/2) = 2 = lambda_2, also exact.
	if CountingUpperBound(2) != 2 {
		t.Errorf("CountingUpperBound(2) = %d", CountingUpperBound(2))
	}
	// m = 4: counting gives floor(16/4) = 4 = lambda_4 (matches the
	// exhaustive result).
	if CountingUpperBound(4) != 4 {
		t.Errorf("CountingUpperBound(4) = %d", CountingUpperBound(4))
	}
	// Large m falls back to Lemma 2.
	if CountingUpperBound(9) != 10 {
		t.Errorf("CountingUpperBound(9) = %d", CountingUpperBound(9))
	}
}

func TestDominationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for m = 6")
		}
	}()
	DominationNumberExact(6)
}
