package labeling

import (
	"sparsehypercube/internal/graph"
	"sparsehypercube/internal/topo"
)

// Counting upper bound on lambda_m: a Condition-A labeling partitions
// V(Q_m) into label classes that each dominate Q_m, so no labeling can
// use more than floor(2^m / gamma(Q_m)) labels, where gamma is the
// domination number. Combined with Lemma 2's m+1 this pins lambda_m
// exactly for several m beyond exhaustive reach (e.g. lambda_5 = 4).

// DominationNumberExact computes gamma(Q_m) by branch and bound.
// Practical for m <= 5 (gamma(Q_5) = 7 takes well under a second).
func DominationNumberExact(m int) int {
	if m < 1 || m > 5 {
		panic("labeling: exact domination number limited to m <= 5")
	}
	return graph.MinDominatingSetSize(topo.Hypercube(m))
}

// CountingUpperBound returns min(m+1, floor(2^m / gamma(Q_m))) for m <= 5,
// falling back to Lemma 2's m+1 for larger m (where gamma is out of
// exact reach here).
func CountingUpperBound(m int) int {
	ub := UpperBound(m)
	if m >= 1 && m <= 5 {
		if byCount := (1 << uint(m)) / DominationNumberExact(m); byCount < ub {
			ub = byCount
		}
	}
	return ub
}
