package labeling

import (
	"testing"
	"testing/quick"

	"sparsehypercube/internal/bitvec"
	"sparsehypercube/internal/graph"
	"sparsehypercube/internal/topo"
)

func TestTrivial(t *testing.T) {
	for m := 1; m <= 6; m++ {
		l, err := Trivial(m)
		if err != nil {
			t.Fatal(err)
		}
		if l.NumLabels() != 1 || l.M() != m {
			t.Fatalf("trivial(%d) wrong", m)
		}
		if l.DominatorBit(0, 0) != -1 {
			t.Fatal("own label must map to -1")
		}
	}
}

func TestHammingLabeling(t *testing.T) {
	for _, m := range []int{1, 3, 7, 15} {
		l, err := Hamming(m)
		if err != nil {
			t.Fatal(err)
		}
		if l.NumLabels() != m+1 {
			t.Fatalf("hamming(%d): %d labels, want %d", m, l.NumLabels(), m+1)
		}
		if err := l.Verify(); err != nil {
			t.Fatalf("hamming(%d): %v", m, err)
		}
		// All classes have equal size 2^m/(m+1).
		want := (1 << uint(m)) / (m + 1)
		for c := 0; c < l.NumLabels(); c++ {
			if got := l.ClassSize(c); got != want {
				t.Fatalf("hamming(%d) class %d size %d, want %d", m, c, got, want)
			}
		}
	}
	for _, m := range []int{2, 4, 5, 6, 8} {
		if _, err := Hamming(m); err == nil {
			t.Errorf("Hamming(%d) should fail", m)
		}
	}
}

func TestComposedMeetsLemma2LowerBound(t *testing.T) {
	for m := 1; m <= MaxWindow; m++ {
		l, err := Composed(m)
		if err != nil {
			t.Fatal(err)
		}
		if l.NumLabels() < LowerBound(m) {
			t.Errorf("composed(%d): %d labels < Lemma-2 lower bound %d", m, l.NumLabels(), LowerBound(m))
		}
		if l.NumLabels() > UpperBound(m) {
			t.Errorf("composed(%d): %d labels > upper bound %d", m, l.NumLabels(), UpperBound(m))
		}
	}
}

func TestBestKnownValues(t *testing.T) {
	// lambda values achieved by the paper's constructions.
	want := map[int]int{1: 2, 2: 2, 3: 4, 4: 4, 5: 4, 6: 4, 7: 8, 8: 8, 14: 8, 15: 16}
	for m, k := range want {
		l, err := Best(m)
		if err != nil {
			t.Fatal(err)
		}
		if l.NumLabels() != k {
			t.Errorf("Best(%d) = %d labels, want %d", m, l.NumLabels(), k)
		}
	}
}

// Every label class of a Condition-A labeling must dominate Q_m — checked
// against the independent graph-level dominating-set test.
func TestClassesAreDominatingSets(t *testing.T) {
	for _, m := range []int{2, 3, 4, 5, 6, 7} {
		l, err := Best(m)
		if err != nil {
			t.Fatal(err)
		}
		q := topo.Hypercube(m)
		for c := 0; c < l.NumLabels(); c++ {
			set := bitvec.New(q.NumVertices())
			for x := 0; x < q.NumVertices(); x++ {
				if l.Label(uint64(x)) == c {
					set.Set(x)
				}
			}
			if !graph.IsDominatingSet(q, set) {
				t.Errorf("m=%d: class %d is not dominating", m, c)
			}
		}
	}
}

func TestDominatorBitSemantics(t *testing.T) {
	for _, m := range []int{2, 3, 5, 7} {
		l, err := Best(m)
		if err != nil {
			t.Fatal(err)
		}
		for x := uint64(0); x < 1<<uint(m); x++ {
			for c := 0; c < l.NumLabels(); c++ {
				b := l.DominatorBit(x, c)
				if b == -1 {
					if l.Label(x) != c {
						t.Fatalf("m=%d x=%d c=%d: -1 but label %d", m, x, c, l.Label(x))
					}
					continue
				}
				if got := l.Label(x ^ 1<<uint(b)); got != c {
					t.Fatalf("m=%d x=%d c=%d: flip bit %d gives label %d", m, x, c, b, got)
				}
			}
		}
	}
}

func TestPaperExample1(t *testing.T) {
	q2 := PaperExample1Q2()
	if q2.NumLabels() != 2 {
		t.Fatal("Example 1 Q2 should have 2 labels")
	}
	if q2.Label(0b00) != q2.Label(0b11) || q2.Label(0b01) != q2.Label(0b10) ||
		q2.Label(0b00) == q2.Label(0b01) {
		t.Fatal("Example 1 Q2 labeling pattern wrong")
	}
	q3 := PaperExample1Q3()
	if q3.NumLabels() != 4 {
		t.Fatal("Example 1 Q3 should have 4 labels")
	}
	pairs := [][2]uint64{{0b000, 0b111}, {0b001, 0b110}, {0b010, 0b101}, {0b011, 0b100}}
	seen := map[int]bool{}
	for _, p := range pairs {
		if q3.Label(p[0]) != q3.Label(p[1]) {
			t.Fatalf("complementary pair %v has different labels", p)
		}
		if seen[q3.Label(p[0])] {
			t.Fatalf("label %d reused across pairs", q3.Label(p[0]))
		}
		seen[q3.Label(p[0])] = true
	}
}

func TestFromLabelsRejectsBadInput(t *testing.T) {
	// Wrong length.
	if _, err := FromLabels(2, 2, []uint8{0, 1}, "x"); err == nil {
		t.Error("expected length error")
	}
	// Label out of range.
	if _, err := FromLabels(2, 2, []uint8{0, 1, 2, 0}, "x"); err == nil {
		t.Error("expected range error")
	}
	// Violates Condition A: label 1 appears only on vertex 3; vertex 0's
	// closed neighborhood {0,1,2} misses it.
	if _, err := FromLabels(2, 2, []uint8{0, 0, 0, 1}, "x"); err == nil {
		t.Error("expected Condition A violation")
	}
}

// Exhaustive lambda for m <= 4 matches the constructive values, proving
// the constructions optimal there (the paper notes lambda_2 = 2 < 3,
// i.e. the Lemma-2 lower bound is tight at m = 2).
func TestExhaustiveLambda(t *testing.T) {
	want := map[int]int{1: 2, 2: 2, 3: 4, 4: 4}
	for m, k := range want {
		got, l := MaxLabelsExhaustive(m)
		if got != k {
			t.Errorf("lambda_%d = %d (exhaustive), want %d", m, got, k)
		}
		if l.NumLabels() != k {
			t.Errorf("exhaustive labeling for m=%d has %d labels", m, l.NumLabels())
		}
		if err := l.Verify(); err != nil {
			t.Errorf("exhaustive labeling invalid: %v", err)
		}
		best, err := Best(m)
		if err != nil {
			t.Fatal(err)
		}
		if best.NumLabels() != got {
			t.Errorf("Best(%d) = %d labels but exhaustive found %d", m, best.NumLabels(), got)
		}
	}
}

// Property: for random m and random vertices, Condition A holds — the
// closed neighborhood of any vertex sees every label.
func TestConditionAProperty(t *testing.T) {
	f := func(mRaw, xRaw uint16) bool {
		m := int(mRaw)%10 + 1
		l, err := Best(m)
		if err != nil {
			return false
		}
		x := uint64(xRaw) & (1<<uint(m) - 1)
		seen := make([]bool, l.NumLabels())
		seen[l.Label(x)] = true
		for b := 0; b < m; b++ {
			seen[l.Label(x^1<<uint(b))] = true
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
