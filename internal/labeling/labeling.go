// Package labeling builds and verifies the "Condition A" labelings at the
// heart of the sparse-hypercube construction (paper §3): a labeling f of
// V(Q_m) by a set C of labels such that for every vertex u, the labels seen
// on u's closed neighborhood are exactly C — equivalently, every label
// class is a dominating set of Q_m. The maximum possible number of labels
// is the domatic-style quantity the paper calls lambda_m, with
// ceil(m/2)+1 <= lambda_m <= m+1 (Lemma 2); the upper end is achieved by
// Hamming-code cosets when m = 2^p - 1.
package labeling

import (
	"fmt"

	"sparsehypercube/internal/hamming"
)

// MaxWindow bounds the window dimension m for explicit label tables.
// Sparse-hypercube windows are O(n^(1/k)), so 16 is far beyond any
// parameter the experiments reach.
const MaxWindow = 16

// Labeling assigns one of NumLabels labels (0-based) to every vertex of
// Q_m and carries a dominator table for O(1) Condition-A lookups.
type Labeling struct {
	m         int
	numLabels int
	labels    []uint8 // 2^m entries
	dom       []int8  // dom[x*numLabels+c]: bit to flip at x to reach class c; -1 if f(x)==c
	source    string  // human-readable provenance
}

// M returns the window dimension.
func (l *Labeling) M() int { return l.m }

// NumLabels returns the number of label classes.
func (l *Labeling) NumLabels() int { return l.numLabels }

// Source describes how the labeling was constructed.
func (l *Labeling) Source() string { return l.source }

// Label returns the label of vertex x of Q_m.
func (l *Labeling) Label(x uint64) int {
	return int(l.labels[x])
}

// DominatorBit returns the 0-based bit to flip at x so that the result has
// label c, or -1 when x itself has label c. Defined for every (x, c) by
// Condition A.
func (l *Labeling) DominatorBit(x uint64, c int) int {
	return int(l.dom[int(x)*l.numLabels+c])
}

// ClassSize returns the number of vertices carrying label c.
func (l *Labeling) ClassSize(c int) int {
	cnt := 0
	for _, lb := range l.labels {
		if int(lb) == c {
			cnt++
		}
	}
	return cnt
}

// Trivial returns the one-label labeling of Q_m (always satisfies
// Condition A).
func Trivial(m int) (*Labeling, error) {
	if err := checkM(m); err != nil {
		return nil, err
	}
	labels := make([]uint8, 1<<uint(m))
	return finish(m, 1, labels, "trivial")
}

// Hamming returns the coset labeling of Q_m for m = 2^p - 1: label(x) is
// the Hamming syndrome of x, giving m+1 labels, the Lemma-2 maximum.
func Hamming(m int) (*Labeling, error) {
	if err := checkM(m); err != nil {
		return nil, err
	}
	p := 0
	for (1<<uint(p+1))-1 <= m {
		p++
	}
	if (1<<uint(p))-1 != m {
		return nil, fmt.Errorf("labeling: Hamming labeling requires m = 2^p - 1, got %d", m)
	}
	code, err := hamming.New(p)
	if err != nil {
		return nil, err
	}
	labels := make([]uint8, 1<<uint(m))
	for x := range labels {
		labels[x] = uint8(code.Syndrome(uint64(x)))
	}
	return finish(m, m+1, labels, fmt.Sprintf("hamming(p=%d)", p))
}

// Composed returns the paper's general-m construction (Lemma 2 proof):
// take the largest m' = 2^p - 1 <= m, partition Q_m into 2^(m-m') copies
// of Q_{m'}, and label each copy by the Hamming syndrome of its low m'
// bits. Yields m'+1 >= ceil(m/2)+1 labels.
func Composed(m int) (*Labeling, error) {
	if err := checkM(m); err != nil {
		return nil, err
	}
	p := 1
	for (1<<uint(p+1))-1 <= m {
		p++
	}
	mPrime := 1<<uint(p) - 1
	code, err := hamming.New(p)
	if err != nil {
		return nil, err
	}
	mask := uint64(1)<<uint(mPrime) - 1
	labels := make([]uint8, 1<<uint(m))
	for x := range labels {
		labels[x] = uint8(code.Syndrome(uint64(x) & mask))
	}
	return finish(m, mPrime+1, labels, fmt.Sprintf("composed(m'=%d)", mPrime))
}

// Best returns the best available constructive labeling of Q_m: Hamming
// when m = 2^p - 1, otherwise Composed. Its label count meets the Lemma-2
// lower bound ceil(m/2)+1 and is optimal for every m <= 5.
func Best(m int) (*Labeling, error) {
	if l, err := Hamming(m); err == nil {
		return l, nil
	}
	return Composed(m)
}

// FromLabels validates an arbitrary labeling against Condition A and wraps
// it. labels must have 2^m entries with values in [0, numLabels).
func FromLabels(m, numLabels int, labels []uint8, source string) (*Labeling, error) {
	if err := checkM(m); err != nil {
		return nil, err
	}
	if len(labels) != 1<<uint(m) {
		return nil, fmt.Errorf("labeling: got %d labels, want 2^%d", len(labels), m)
	}
	if numLabels < 1 || numLabels > 256 {
		return nil, fmt.Errorf("labeling: numLabels %d out of range", numLabels)
	}
	for x, lb := range labels {
		if int(lb) >= numLabels {
			return nil, fmt.Errorf("labeling: vertex %d has label %d >= %d", x, lb, numLabels)
		}
	}
	cp := make([]uint8, len(labels))
	copy(cp, labels)
	return finish(m, numLabels, cp, source)
}

// finish builds the dominator table, verifying Condition A in the process.
func finish(m, numLabels int, labels []uint8, source string) (*Labeling, error) {
	order := 1 << uint(m)
	dom := make([]int8, order*numLabels)
	for i := range dom {
		dom[i] = -2 // sentinel: class not seen
	}
	for x := 0; x < order; x++ {
		row := dom[x*numLabels : (x+1)*numLabels]
		row[labels[x]] = -1
		for b := 0; b < m; b++ {
			y := x ^ (1 << uint(b))
			c := labels[y]
			if row[c] == -2 {
				row[c] = int8(b)
			}
		}
		for c, v := range row {
			if v == -2 {
				return nil, fmt.Errorf(
					"labeling: Condition A violated: vertex %0*b sees no label %d in its closed neighborhood",
					m, x, c)
			}
		}
	}
	return &Labeling{m: m, numLabels: numLabels, labels: labels, dom: dom, source: source}, nil
}

// Verify re-checks Condition A from scratch; it never fails for labelings
// built by this package and exists for use on externally supplied tables.
func (l *Labeling) Verify() error {
	_, err := finish(l.m, l.numLabels, l.labels, l.source)
	return err
}

// LowerBound returns the Lemma-2 lower bound ceil(m/2)+1 on lambda_m.
func LowerBound(m int) int { return (m+1)/2 + 1 }

// UpperBound returns the Lemma-2 upper bound m+1 on lambda_m.
func UpperBound(m int) int { return m + 1 }

func checkM(m int) error {
	if m < 1 || m > MaxWindow {
		return fmt.Errorf("labeling: window dimension %d out of range [1,%d]", m, MaxWindow)
	}
	return nil
}

// PaperExample1Q2 returns the Q_2 labeling of the paper's Example 1:
// f(00)=f(11)=c1, f(01)=f(10)=c2 (c1 -> 0, c2 -> 1).
func PaperExample1Q2() *Labeling {
	l, err := FromLabels(2, 2, []uint8{0, 1, 1, 0}, "paper-example1-Q2")
	if err != nil {
		panic(err) // fixture; cannot fail
	}
	return l
}

// PaperExample1Q3 returns the Q_3 labeling of the paper's Example 1:
// f(000)=f(111)=c1, f(001)=f(110)=c2, f(010)=f(101)=c3, f(011)=f(100)=c4.
func PaperExample1Q3() *Labeling {
	// Index by vertex value: 000,001,010,011,100,101,110,111.
	l, err := FromLabels(3, 4, []uint8{0, 1, 2, 3, 3, 2, 1, 0}, "paper-example1-Q3")
	if err != nil {
		panic(err)
	}
	return l
}
