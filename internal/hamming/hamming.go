// Package hamming implements binary Hamming codes Ham(2^p - 1) over GF(2).
// The paper's Lemma 2 builds optimal Condition-A labelings of Q_m from the
// coset structure of these codes: each of the 2^p syndrome classes of
// Ham(2^p - 1) is a perfect dominating set of the (2^p - 1)-cube.
//
// Words are uint64 bit masks; bit i-1 of the mask is code position i
// (positions are 1-based, as is conventional for Hamming codes, so that the
// parity-check column of position i is the binary representation of i).
package hamming

import "fmt"

// Code is the binary Hamming code with parameter p: length m = 2^p - 1,
// dimension m - p, minimum distance 3, perfect 1-error-correcting.
type Code struct {
	p int
	m int
}

// New returns Ham(2^p - 1). p must be in [1, 6] (length <= 63).
// p = 1 is the degenerate length-1 code {0}.
func New(p int) (*Code, error) {
	if p < 1 || p > 6 {
		return nil, fmt.Errorf("hamming: p = %d out of supported range [1,6]", p)
	}
	return &Code{p: p, m: 1<<uint(p) - 1}, nil
}

// P returns the number of parity bits.
func (c *Code) P() int { return c.p }

// Length returns the code length m = 2^p - 1.
func (c *Code) Length() int { return c.m }

// Dimension returns the number of data bits, m - p.
func (c *Code) Dimension() int { return c.m - c.p }

// NumCosets returns the number of syndrome classes, 2^p = m + 1.
func (c *Code) NumCosets() int { return c.m + 1 }

// Syndrome returns the syndrome of word x: the XOR of the (1-based)
// positions of its set bits. Syndrome 0 means x is a codeword; otherwise
// the syndrome is the position of the single correctable error.
func (c *Code) Syndrome(x uint64) int {
	if x>>uint(c.m) != 0 {
		panic(fmt.Sprintf("hamming: word %#x exceeds length %d", x, c.m))
	}
	s := 0
	for t := x; t != 0; t &= t - 1 {
		pos := trailing(t) + 1
		s ^= pos
	}
	return s
}

// IsCodeword reports whether x belongs to the code.
func (c *Code) IsCodeword(x uint64) bool { return c.Syndrome(x) == 0 }

// Correct returns the nearest codeword to x (distance <= 1), flipping the
// position named by the syndrome when nonzero.
func (c *Code) Correct(x uint64) uint64 {
	s := c.Syndrome(x)
	if s == 0 {
		return x
	}
	return x ^ 1<<uint(s-1)
}

// Encode maps a data word (Dimension() bits) to a codeword: data bits are
// placed at non-power-of-two positions in increasing order, then the
// power-of-two parity positions are set so that the syndrome vanishes.
func (c *Code) Encode(data uint64) uint64 {
	if data>>uint(c.Dimension()) != 0 {
		panic(fmt.Sprintf("hamming: data %#x exceeds dimension %d", data, c.Dimension()))
	}
	var word uint64
	bit := 0
	for pos := 1; pos <= c.m; pos++ {
		if pos&(pos-1) == 0 { // power of two: parity slot
			continue
		}
		if data&(1<<uint(bit)) != 0 {
			word |= 1 << uint(pos-1)
		}
		bit++
	}
	s := c.Syndrome(word)
	// The syndrome of the data positions is cancelled by setting parity
	// position 2^j whenever bit j of s is 1; parity positions have
	// single-bit columns so they contribute exactly 2^j each.
	for j := 0; j < c.p; j++ {
		if s&(1<<uint(j)) != 0 {
			word |= 1 << uint((1<<uint(j))-1)
		}
	}
	return word
}

// Decode inverts Encode on a received word with at most one bit error:
// it corrects the word and extracts the data positions.
func (c *Code) Decode(received uint64) uint64 {
	word := c.Correct(received)
	var data uint64
	bit := 0
	for pos := 1; pos <= c.m; pos++ {
		if pos&(pos-1) == 0 {
			continue
		}
		if word&(1<<uint(pos-1)) != 0 {
			data |= 1 << uint(bit)
		}
		bit++
	}
	return data
}

// ParityCheckMatrix returns the p x m parity-check matrix H as row masks:
// row j has a 1 in column i-1 iff bit j of i is set. Columns are exactly
// the nonzero p-bit vectors, which is what makes every syndrome class a
// perfect dominating set of Q_m.
func (c *Code) ParityCheckMatrix() []uint64 {
	rows := make([]uint64, c.p)
	for pos := 1; pos <= c.m; pos++ {
		for j := 0; j < c.p; j++ {
			if pos&(1<<uint(j)) != 0 {
				rows[j] |= 1 << uint(pos-1)
			}
		}
	}
	return rows
}

// CosetRepresentativeBit returns, for a word x and a target syndrome s,
// the 0-based bit position to flip so that the result has syndrome s, or
// -1 if x already has syndrome s. This is the "dominator" lookup behind
// Condition A: flipping position (Syndrome(x) XOR s) moves x into coset s.
func (c *Code) CosetRepresentativeBit(x uint64, s int) int {
	cur := c.Syndrome(x)
	if cur == s {
		return -1
	}
	return (cur ^ s) - 1 // position (1-based) = cur XOR s, always in [1, m]
}

func trailing(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}
