package hamming

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func mustCode(t *testing.T, p int) *Code {
	t.Helper()
	c, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	for _, p := range []int{0, -1, 7, 100} {
		if _, err := New(p); err == nil {
			t.Errorf("New(%d) should fail", p)
		}
	}
	c := mustCode(t, 3)
	if c.Length() != 7 || c.Dimension() != 4 || c.NumCosets() != 8 || c.P() != 3 {
		t.Errorf("Ham(7) parameters wrong: %+v", c)
	}
}

func TestSyndromeBasics(t *testing.T) {
	c := mustCode(t, 3)
	if c.Syndrome(0) != 0 {
		t.Error("syndrome of 0 must be 0")
	}
	// Single-bit words: syndrome is the 1-based position.
	for pos := 1; pos <= 7; pos++ {
		if s := c.Syndrome(1 << uint(pos-1)); s != pos {
			t.Errorf("syndrome(e_%d) = %d", pos, s)
		}
	}
	// Known Hamming(7,4) codeword: positions {3,5,6} -> 3^5^6 = 0.
	if !c.IsCodeword(1<<2 | 1<<4 | 1<<5) {
		t.Error("positions {3,5,6} should be a codeword")
	}
}

func TestCodewordCountAndMinDistance(t *testing.T) {
	for p := 2; p <= 4; p++ {
		c := mustCode(t, p)
		m := c.Length()
		var codewords []uint64
		for x := uint64(0); x < 1<<uint(m); x++ {
			if c.IsCodeword(x) {
				codewords = append(codewords, x)
			}
		}
		if len(codewords) != 1<<uint(c.Dimension()) {
			t.Fatalf("Ham(%d): %d codewords, want 2^%d", m, len(codewords), c.Dimension())
		}
		minD := m + 1
		for i := range codewords {
			for j := i + 1; j < len(codewords); j++ {
				if d := bits.OnesCount64(codewords[i] ^ codewords[j]); d < minD {
					minD = d
				}
			}
		}
		if minD != 3 {
			t.Fatalf("Ham(%d): min distance %d, want 3", m, minD)
		}
	}
}

// The perfect-code property: every word is within distance 1 of exactly
// one codeword. Equivalently each coset (syndrome class) is a perfect
// dominating set of Q_m.
func TestPerfectCovering(t *testing.T) {
	for p := 2; p <= 4; p++ {
		c := mustCode(t, p)
		m := c.Length()
		for x := uint64(0); x < 1<<uint(m); x++ {
			cw := c.Correct(x)
			if !c.IsCodeword(cw) {
				t.Fatalf("Correct(%#x) = %#x is not a codeword", x, cw)
			}
			if d := bits.OnesCount64(x ^ cw); d > 1 {
				t.Fatalf("Correct moved %#x by distance %d", x, d)
			}
			// Exactly one codeword within distance 1: count them.
			cnt := 0
			if c.IsCodeword(x) {
				cnt++
			}
			for i := 0; i < m; i++ {
				if c.IsCodeword(x ^ 1<<uint(i)) {
					cnt++
				}
			}
			if cnt != 1 {
				t.Fatalf("word %#x has %d codewords within distance 1", x, cnt)
			}
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for p := 2; p <= 4; p++ {
		c := mustCode(t, p)
		for data := uint64(0); data < 1<<uint(c.Dimension()); data++ {
			w := c.Encode(data)
			if !c.IsCodeword(w) {
				t.Fatalf("Encode(%#x) not a codeword", data)
			}
			if got := c.Decode(w); got != data {
				t.Fatalf("Decode(Encode(%#x)) = %#x", data, got)
			}
			// Single-bit error correction.
			for i := 0; i < c.Length(); i++ {
				if got := c.Decode(w ^ 1<<uint(i)); got != data {
					t.Fatalf("p=%d data=%#x: error at bit %d not corrected (got %#x)", p, data, i, got)
				}
			}
		}
	}
}

func TestParityCheckMatrix(t *testing.T) {
	c := mustCode(t, 3)
	rows := c.ParityCheckMatrix()
	if len(rows) != 3 {
		t.Fatalf("H has %d rows", len(rows))
	}
	// Column i (position i+1) must read the binary representation of i+1.
	for pos := 1; pos <= 7; pos++ {
		col := 0
		for j := 0; j < 3; j++ {
			if rows[j]&(1<<uint(pos-1)) != 0 {
				col |= 1 << uint(j)
			}
		}
		if col != pos {
			t.Errorf("column of position %d reads %d", pos, col)
		}
	}
	// Syndrome via H rows equals Syndrome().
	for x := uint64(0); x < 128; x++ {
		s := 0
		for j, row := range rows {
			if bits.OnesCount64(row&x)%2 == 1 {
				s |= 1 << uint(j)
			}
		}
		if s != c.Syndrome(x) {
			t.Fatalf("H-syndrome %d != Syndrome %d for %#x", s, c.Syndrome(x), x)
		}
	}
}

func TestCosetRepresentativeBit(t *testing.T) {
	for p := 2; p <= 4; p++ {
		c := mustCode(t, p)
		m := c.Length()
		for x := uint64(0); x < 1<<uint(m); x++ {
			for s := 0; s < c.NumCosets(); s++ {
				bit := c.CosetRepresentativeBit(x, s)
				if bit == -1 {
					if c.Syndrome(x) != s {
						t.Fatalf("claimed x in coset %d but syndrome %d", s, c.Syndrome(x))
					}
					continue
				}
				if bit < 0 || bit >= m {
					t.Fatalf("dominator bit %d out of range", bit)
				}
				if got := c.Syndrome(x ^ 1<<uint(bit)); got != s {
					t.Fatalf("flip bit %d of %#x: syndrome %d, want %d", bit, x, got, s)
				}
			}
		}
	}
}

// Property: syndromes are linear: Syndrome(x^y) = Syndrome(x)^Syndrome(y).
func TestSyndromeLinearity(t *testing.T) {
	c := mustCode(t, 5) // length 31
	f := func(xRaw, yRaw uint32) bool {
		x := uint64(xRaw) & (1<<31 - 1)
		y := uint64(yRaw) & (1<<31 - 1)
		return c.Syndrome(x^y) == c.Syndrome(x)^c.Syndrome(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: cosets partition the space into equal-size classes.
func TestCosetSizes(t *testing.T) {
	c := mustCode(t, 3)
	sizes := make([]int, c.NumCosets())
	for x := uint64(0); x < 128; x++ {
		sizes[c.Syndrome(x)]++
	}
	for s, sz := range sizes {
		if sz != 16 {
			t.Errorf("coset %d has size %d, want 16", s, sz)
		}
	}
}

func TestDegenerateP1(t *testing.T) {
	c := mustCode(t, 1)
	if c.Length() != 1 || c.Dimension() != 0 || c.NumCosets() != 2 {
		t.Fatal("Ham(1) parameters wrong")
	}
	if c.Syndrome(0) != 0 || c.Syndrome(1) != 1 {
		t.Fatal("Ham(1) syndromes wrong")
	}
	if c.Encode(0) != 0 || c.Decode(1) != 0 {
		t.Fatal("Ham(1) encode/decode wrong")
	}
}
