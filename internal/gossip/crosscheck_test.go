package gossip

import (
	"math/rand"
	"reflect"
	"testing"

	"sparsehypercube/internal/core"
	"sparsehypercube/internal/linecomm"
)

// Stream-vs-serial crosschecks for the gossip validator, mirroring PR 1's
// broadcast crosschecks: for k in {1, 2, 3}, ValidateStream must produce
// byte-identical Results to the serial Validate on intact, mutated and
// randomly corrupted gather-scatter schedules, on both structural engines
// (the bitvec fast path the sparse hypercube's DimensionedNetwork
// contract enables, and the map fallback).

// plainNet strips the DimensionedNetwork upgrade so the same instance
// routes to the map engine.
type plainNet struct{ net linecomm.Network }

func (p plainNet) Order() uint64            { return p.net.Order() }
func (p plainNet) HasEdge(u, v uint64) bool { return p.net.HasEdge(u, v) }

// crosscheckCases returns the (k, cube) instances the crosschecks run on.
func crosscheckCases(t *testing.T) []*core.SparseHypercube {
	t.Helper()
	var out []*core.SparseHypercube
	for _, p := range []core.Params{
		core.HypercubeParams(6), // k = 1
		core.BaseParams(8, 3),   // k = 2
		core.RecParams(9, 5, 2), // k = 3
	} {
		s, err := core.New(p)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
	return out
}

// mustMatchSerialGossip asserts the streamed validator reproduces the
// serial Result exactly — violations, order, messages, flags, counts —
// on both structural engines.
func mustMatchSerialGossip(t *testing.T, s *core.SparseHypercube, k int, sched *linecomm.Schedule) {
	t.Helper()
	want := Validate(s, k, sched)
	for name, net := range map[string]linecomm.Network{"bitvec": s, "map": plainNet{s}} {
		got := linecomm.ValidateGossipStream(net, k, sched.Stream())
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s engine diverges from serial:\nserial: %+v\nstream: %+v", name, want, got)
		}
	}
}

func TestGossipStreamMatchesSerialOnIntactSchedules(t *testing.T) {
	for _, s := range crosscheckCases(t) {
		for _, root := range []uint64{0, s.Order() - 1, s.Order() / 3} {
			sched := GatherScatter(s, root)
			res := Validate(s, s.K(), sched)
			if err := res.Err(); err != nil {
				t.Fatalf("k=%d root=%d: base schedule invalid: %v", s.K(), root, err)
			}
			if !res.Complete || !res.Simulated || res.Rounds != 2*s.N() {
				t.Fatalf("k=%d root=%d: base schedule incomplete: %+v", s.K(), root, res)
			}
			mustMatchSerialGossip(t, s, s.K(), sched)
		}
	}
}

// gossipMutation is one structural corruption of a gather-scatter
// schedule; mut returns false when inapplicable.
type gossipMutation struct {
	name string
	mut  func(rng *rand.Rand, s *core.SparseHypercube, sched *linecomm.Schedule) bool
}

func gossipMutations() []gossipMutation {
	pick := func(rng *rand.Rand, sched *linecomm.Schedule) (int, int) {
		ri := rng.Intn(len(sched.Rounds))
		return ri, rng.Intn(len(sched.Rounds[ri]))
	}
	return []gossipMutation{
		{"busy-endpoint", func(rng *rand.Rand, s *core.SparseHypercube, sched *linecomm.Schedule) bool {
			// Duplicate a call inside its round: both endpoints busy twice
			// and every path edge reused.
			ri, ci := pick(rng, sched)
			c := sched.Rounds[ri][ci]
			sched.Rounds[ri] = append(sched.Rounds[ri],
				linecomm.Call{Path: append([]uint64(nil), c.Path...)})
			return true
		}},
		{"non-edge-hop", func(rng *rand.Rand, s *core.SparseHypercube, sched *linecomm.Schedule) bool {
			// Retarget a receiver at Hamming distance 2: no such edge.
			ri, ci := pick(rng, sched)
			p := sched.Rounds[ri][ci].Path
			p[len(p)-1] = p[0] ^ 3
			return true
		}},
		{"repeated-vertex", func(rng *rand.Rand, s *core.SparseHypercube, sched *linecomm.Schedule) bool {
			ri, ci := pick(rng, sched)
			c := &sched.Rounds[ri][ci]
			c.Path = append(c.Path, c.Path[len(c.Path)-2], c.Path[len(c.Path)-1])
			return true
		}},
		{"overlong-call", func(rng *rand.Rand, s *core.SparseHypercube, sched *linecomm.Schedule) bool {
			// Extend past k by walking base-dimension edges (dimension 1
			// always exists), keeping the path structurally sound.
			ri, ci := pick(rng, sched)
			c := &sched.Rounds[ri][ci]
			for hop := 0; hop <= s.K(); hop++ {
				last := c.Path[len(c.Path)-1]
				next := last ^ uint64(1)<<uint(hop%2) // alternate dims 1 and 2
				c.Path = append(c.Path, next)
			}
			return true
		}},
		{"out-of-range-vertex", func(rng *rand.Rand, s *core.SparseHypercube, sched *linecomm.Schedule) bool {
			ri, ci := pick(rng, sched)
			p := sched.Rounds[ri][ci].Path
			p[rng.Intn(len(p))] = s.Order() + uint64(rng.Intn(4))
			return true
		}},
		{"empty-path", func(rng *rand.Rand, s *core.SparseHypercube, sched *linecomm.Schedule) bool {
			ri, ci := pick(rng, sched)
			sched.Rounds[ri][ci].Path = sched.Rounds[ri][ci].Path[:1]
			return true
		}},
		{"dropped-call", func(rng *rand.Rand, s *core.SparseHypercube, sched *linecomm.Schedule) bool {
			// Drop a first-gather-round call: the caller is a leaf of the
			// broadcast tree whose only other appearance is the final
			// scatter round, so its token provably strands (incomplete,
			// but structurally valid). Later-round calls can be redundant
			// — telephone exchanges move tokens both ways.
			r := sched.Rounds[0]
			ci := rng.Intn(len(r))
			sched.Rounds[0] = append(r[:ci], r[ci+1:]...)
			return true
		}},
		{"truncated-schedule", func(rng *rand.Rand, s *core.SparseHypercube, sched *linecomm.Schedule) bool {
			sched.Rounds = sched.Rounds[:len(sched.Rounds)-1-rng.Intn(2)]
			return true
		}},
	}
}

func cloneSchedule(s *linecomm.Schedule) *linecomm.Schedule {
	out := &linecomm.Schedule{Source: s.Source, Rounds: make([]linecomm.Round, len(s.Rounds))}
	for i, r := range s.Rounds {
		out.Rounds[i] = linecomm.CloneRound(r)
	}
	return out
}

func TestGossipStreamMatchesSerialOnMutations(t *testing.T) {
	for _, s := range crosscheckCases(t) {
		base := GatherScatter(s, 0)
		for _, m := range gossipMutations() {
			rng := rand.New(rand.NewSource(42))
			applied := false
			for trial := 0; trial < 10; trial++ {
				sched := cloneSchedule(base)
				if !m.mut(rng, s, sched) {
					continue
				}
				applied = true
				res := Validate(s, s.K(), sched)
				if res.Valid() && res.Complete {
					t.Fatalf("k=%d: mutation %q went undetected", s.K(), m.name)
				}
				mustMatchSerialGossip(t, s, s.K(), sched)
			}
			if !applied {
				t.Fatalf("mutation %q never applicable", m.name)
			}
		}
	}
}

// TestGossipStreamMatchesSerialRandomCorruption goes beyond the curated
// catalogue: random low-level path edits, call duplications and
// truncations, all crosschecked for exact Result equality.
func TestGossipStreamMatchesSerialRandomCorruption(t *testing.T) {
	s, err := core.NewBase(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := GatherScatter(s, 0)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		sched := cloneSchedule(base)
		edits := rng.Intn(4) + 1
		for e := 0; e < edits; e++ {
			ri := rng.Intn(len(sched.Rounds))
			if len(sched.Rounds[ri]) == 0 {
				continue
			}
			ci := rng.Intn(len(sched.Rounds[ri]))
			c := &sched.Rounds[ri][ci]
			switch rng.Intn(5) {
			case 0: // corrupt one path vertex (possibly out of range)
				if len(c.Path) > 0 {
					c.Path[rng.Intn(len(c.Path))] = uint64(rng.Intn(int(s.Order()) + 4))
				}
			case 1: // extend the path
				c.Path = append(c.Path, uint64(rng.Intn(int(s.Order()))))
			case 2: // truncate the path
				c.Path = c.Path[:rng.Intn(len(c.Path)+1)]
			case 3: // duplicate an existing call into this round
				sched.Rounds[ri] = append(sched.Rounds[ri],
					linecomm.Call{Path: append([]uint64(nil), c.Path...)})
			case 4: // swap two calls (stresses first-claim index recovery)
				cj := rng.Intn(len(sched.Rounds[ri]))
				sched.Rounds[ri][ci], sched.Rounds[ri][cj] = sched.Rounds[ri][cj], sched.Rounds[ri][ci]
			}
		}
		mustMatchSerialGossip(t, s, s.K(), sched)
	}
}

// TestGossipStreamMatchesSerialOnForeignSchedules feeds the gossip
// validators schedules they were not built for — the dimension-exchange
// gossip (valid, minimum-time) and a broadcast schedule (valid gossip
// moves, incomplete) — and crosschecks equality there too.
func TestGossipStreamMatchesSerialOnForeignSchedules(t *testing.T) {
	s, err := core.New(core.HypercubeParams(6))
	if err != nil {
		t.Fatal(err)
	}
	exchange, err := HypercubeExchange(6)
	if err != nil {
		t.Fatal(err)
	}
	res := Validate(s, 1, exchange)
	if !res.Complete || !res.MinimumTime {
		t.Fatalf("dimension exchange misjudged: %+v", res)
	}
	mustMatchSerialGossip(t, s, 1, exchange)

	bc := s.BroadcastSchedule(0)
	res = Validate(s, 1, bc)
	if res.Complete {
		t.Fatal("a one-way broadcast cannot complete gossip")
	}
	mustMatchSerialGossip(t, s, 1, bc)
}
