package gossip

import (
	"testing"

	"sparsehypercube/internal/core"
	"sparsehypercube/internal/linecomm"
)

// Boundary behaviour of the serial simulation cap: at exactly
// MaxSimulateOrder the validator must still simulate; one dimension up it
// must refuse with the dedicated SimulationCapExceeded kind (not the
// misleading VertexOutOfRange it used to report).

func TestValidateAtSimulationCapBoundary(t *testing.T) {
	s, err := core.NewBase(14, 3) // order 2^14 == MaxSimulateOrder
	if err != nil {
		t.Fatal(err)
	}
	if s.Order() != MaxSimulateOrder {
		t.Fatalf("test premise broken: order %d != cap %d", s.Order(), MaxSimulateOrder)
	}
	res := Validate(s, 2, &linecomm.Schedule{})
	if !res.Valid() || !res.Simulated {
		t.Fatalf("order == cap must simulate: %+v", res)
	}
	if res.Complete || res.MinKnown != 1 {
		t.Fatalf("empty schedule at cap: %+v", res)
	}

	full := GatherScatter(s, 0)
	res = Validate(s, 2, full)
	if err := res.Err(); err != nil {
		t.Fatalf("gather-scatter at cap: %v", err)
	}
	if !res.Complete || !res.Simulated || res.MinKnown != int(s.Order()) {
		t.Fatalf("gather-scatter at cap incomplete: %+v", res)
	}
}

func TestValidateJustAboveSimulationCap(t *testing.T) {
	s, err := core.NewBase(15, 3) // order 2^15, one dimension above the cap
	if err != nil {
		t.Fatal(err)
	}
	sched := &linecomm.Schedule{Rounds: []linecomm.Round{{{Path: []uint64{0, 1}}}}}
	res := Validate(s, 2, sched)
	if res.Valid() {
		t.Fatal("expected cap violation for 2^15 vertices")
	}
	v := res.Violations[0]
	if v.Kind != linecomm.SimulationCapExceeded {
		t.Fatalf("cap reported as %s, want %s", v.Kind, linecomm.SimulationCapExceeded)
	}
	if v.Round != -1 || v.Call != -1 {
		t.Fatalf("cap violation mislocated: %+v", v)
	}
	if res.Simulated || res.Complete {
		t.Fatalf("over-cap result claims simulation: %+v", res)
	}
	if res.Rounds != 1 {
		t.Fatalf("over-cap result must still report declared rounds: %+v", res)
	}

	// The streamed validator picks up exactly where the serial cap ends:
	// the same 2^15 instance simulates fully there.
	sres := ValidateStream(s, 2, StreamGatherScatter(s, 0))
	if err := sres.Err(); err != nil {
		t.Fatalf("streamed 2^15 gossip: %v", err)
	}
	if !sres.Complete || !sres.Simulated || sres.MinKnown != int(s.Order()) {
		t.Fatalf("streamed 2^15 gossip incomplete: %+v", sres)
	}
}

// TestValidateAllocations pins the serial validator's allocation shape:
// per-round maps are reused and exchanges run on a scratch-free union, so
// doubling the schedule length must not add per-call or per-round
// allocations (the token matrix — O(order) allocations — dominates).
func TestValidateAllocations(t *testing.T) {
	s, err := core.NewBase(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := GatherScatter(s, 0)
	doubled := &linecomm.Schedule{Rounds: append(append([]linecomm.Round{}, base.Rounds...), base.Rounds...)}

	allocs := testing.AllocsPerRun(5, func() {
		if res := Validate(s, 2, base); !res.Complete {
			t.Fatal("base schedule incomplete")
		}
	})
	allocsDoubled := testing.AllocsPerRun(5, func() {
		if res := Validate(s, 2, doubled); !res.Complete {
			t.Fatal("doubled schedule incomplete")
		}
	})

	order := float64(s.Order())
	// Token matrix: two allocations per vertex (set header + words), plus
	// a constant number of maps and slices.
	if limit := 2*order + 64; allocs > limit {
		t.Fatalf("Validate allocated %.0f times (limit %.0f)", allocs, limit)
	}
	// Twice the rounds and calls must cost no more than slack: the
	// per-round state is cleared, not reallocated.
	if allocsDoubled > allocs+16 {
		t.Fatalf("doubling the schedule raised allocations %.0f -> %.0f", allocs, allocsDoubled)
	}
}
