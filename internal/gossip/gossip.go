// Package gossip explores the paper's closing research direction (§5):
// gossiping — the all-to-all analogue of broadcast — under the k-line
// communication model. Every vertex starts with its own token; a call
// between two vertices exchanges all tokens both ways (the telephone
// convention); calls placed in the same round must be edge-disjoint, of
// length at most k, and each vertex may take part in at most one call per
// round as an endpoint (pass-through switching remains free, as in the
// line model).
//
// The package provides the model validator/simulator, the classic
// dimension-exchange scheme on Q_n (optimal: n rounds), and a
// gather-scatter scheme on sparse hypercubes that completes in 2n rounds
// with calls of length at most k — evidence that the degree reduction of
// the paper extends to gossip at a factor-2 cost in time. Whether
// minimum-time k-line gossip (n rounds) is possible on o(n)-degree graphs
// is exactly the open problem the paper poses.
package gossip

import (
	"fmt"
	"iter"

	"sparsehypercube/internal/core"
	"sparsehypercube/internal/linecomm"
)

// MaxSimulateOrder caps the serial validator's full token-set simulation
// (bitset per vertex). linecomm.ValidateGossipStream shards the token
// matrix and reaches far larger instances (see
// linecomm.MaxGossipSimulateCells).
const MaxSimulateOrder = linecomm.MaxGossipSimulateOrder

// Result reports gossip validation. It is the shared
// linecomm.GossipResult, so serial and streamed validations compare
// field for field.
type Result = linecomm.GossipResult

// MinimumRounds returns the gossip lower bound ceil(log2 N): each round
// at most doubles the spread of any single token.
func MinimumRounds(order uint64) int { return linecomm.GossipMinimumRounds(order) }

// Validate checks a schedule under the k-line gossip model on net and
// simulates token propagation with a full per-vertex token matrix.
// Schedule.Source is ignored (gossip has no distinguished originator).
// It is the serial reference implementation; ValidateStream and the
// sharded linecomm.ValidateGossipStream are crosschecked against it.
func Validate(net linecomm.Network, k int, s *linecomm.Schedule) *Result {
	return linecomm.ValidateGossip(net, k, s)
}

// ValidateStream is the streamed form of Validate: it consumes rounds as
// a producer emits them (the doubled gather-scatter schedule is never
// materialised) and shards the token simulation, producing a Result
// identical to Validate whenever both run.
func ValidateStream(net linecomm.Network, k int, rounds iter.Seq[linecomm.Round]) *Result {
	return linecomm.ValidateGossipStream(net, k, rounds)
}

// HypercubeExchange returns the classic dimension-exchange gossip on Q_n:
// in the round for dimension i every vertex exchanges with its dimension-i
// neighbor (2^(n-1) disjoint edges). Completes in n = ceil(log2 N) rounds
// with k = 1 — minimum time, but on a degree-n graph.
func HypercubeExchange(n int) (*linecomm.Schedule, error) {
	if n < 1 || n > 14 {
		return nil, fmt.Errorf("gossip: dimension %d out of [1,14]", n)
	}
	order := uint64(1) << uint(n)
	s := &linecomm.Schedule{}
	for d := 1; d <= n; d++ {
		var round linecomm.Round
		bit := uint64(1) << uint(d-1)
		for u := uint64(0); u < order; u++ {
			if u&bit == 0 {
				round = append(round, linecomm.Call{Path: []uint64{u, u | bit}})
			}
		}
		s.Rounds = append(s.Rounds, round)
	}
	return s, nil
}

// GatherScatter returns a 2n-round k-line gossip on a sparse hypercube:
// the broadcast tree of root is first run in reverse (each vertex forwards
// its accumulated tokens to the vertex that informed it, in reverse round
// order), concentrating all tokens at root after n rounds; the paper's
// Broadcast_k then disseminates them in n more rounds. Call lengths stay
// bounded by k, and per-round calls are edge-disjoint because each phase
// reuses the edge sets of single broadcast rounds.
func GatherScatter(s *core.SparseHypercube, root uint64) *linecomm.Schedule {
	return FromBroadcast(s.BroadcastSchedule(root))
}

// StreamGatherScatter yields the same 2n gather-scatter rounds as
// GatherScatter without ever materialising any schedule: it is
// core.ScheduleGossipRounds, which rebuilds every round off the
// precomputed broadcast frontier (O(N) words peak — the frontier plus
// one round's arena — instead of the full broadcast schedule this
// function used to hold). Yielded rounds reuse storage between
// iterations; use linecomm.CloneRound to retain one.
func StreamGatherScatter(s *core.SparseHypercube, root uint64) iter.Seq[linecomm.Round] {
	return s.ScheduleGossipRounds(root)
}

// FromBroadcast lifts ANY valid broadcast schedule into a gossip schedule
// of twice the length: the broadcast run backwards (reversed rounds,
// reversed paths) gathers every token at the source — each vertex sends
// to the vertex that informed it, strictly before that vertex sends on,
// because broadcast informs parents before children — then the original
// broadcast scatters the full token set. Edge-disjointness per round and
// the one-call-per-vertex gossip constraint are inherited from the
// broadcast rounds (callers and receivers of a valid broadcast round are
// disjoint sets). This turns every broadcast scheme in the repository —
// Broadcast_k, the tri-tree schemes, tree planners — into a
// 2*ceil(log2 N)-round gossip scheme on the same graph.
func FromBroadcast(bc *linecomm.Schedule) *linecomm.Schedule {
	out := &linecomm.Schedule{Source: bc.Source}
	for ri := len(bc.Rounds) - 1; ri >= 0; ri-- {
		var round linecomm.Round
		for _, call := range bc.Rounds[ri] {
			rev := make([]uint64, len(call.Path))
			for i, v := range call.Path {
				rev[len(call.Path)-1-i] = v
			}
			round = append(round, linecomm.Call{Path: rev})
		}
		out.Rounds = append(out.Rounds, round)
	}
	out.Rounds = append(out.Rounds, bc.Rounds...)
	return out
}
