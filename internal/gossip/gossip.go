// Package gossip explores the paper's closing research direction (§5):
// gossiping — the all-to-all analogue of broadcast — under the k-line
// communication model. Every vertex starts with its own token; a call
// between two vertices exchanges all tokens both ways (the telephone
// convention); calls placed in the same round must be edge-disjoint, of
// length at most k, and each vertex may take part in at most one call per
// round as an endpoint (pass-through switching remains free, as in the
// line model).
//
// The package provides the model validator/simulator, the classic
// dimension-exchange scheme on Q_n (optimal: n rounds), and a
// gather-scatter scheme on sparse hypercubes that completes in 2n rounds
// with calls of length at most k — evidence that the degree reduction of
// the paper extends to gossip at a factor-2 cost in time. Whether
// minimum-time k-line gossip (n rounds) is possible on o(n)-degree graphs
// is exactly the open problem the paper poses.
package gossip

import (
	"fmt"
	"iter"

	"sparsehypercube/internal/bitvec"
	"sparsehypercube/internal/core"
	"sparsehypercube/internal/intmath"
	"sparsehypercube/internal/linecomm"
)

// MaxSimulateOrder caps full token-set simulation (bitset per vertex).
const MaxSimulateOrder = 1 << 14

// Result reports gossip validation.
type Result struct {
	Violations []linecomm.Violation
	// Complete: every vertex knows every token at the end.
	Complete bool
	// MinKnown is the smallest token count over vertices at the end.
	MinKnown int
	// Rounds is the schedule length.
	Rounds int
	// MinimumTime: complete in exactly ceil(log2 N) rounds.
	MinimumTime bool
}

// Valid reports whether no violations were found.
func (r *Result) Valid() bool { return len(r.Violations) == 0 }

// Err mirrors linecomm.Result.Err.
func (r *Result) Err() error {
	if r.Valid() {
		return nil
	}
	return fmt.Errorf("gossip: %d violations, first: %s", len(r.Violations), r.Violations[0])
}

// MinimumRounds returns the gossip lower bound ceil(log2 N): each round
// at most doubles the spread of any single token.
func MinimumRounds(order uint64) int { return intmath.CeilLog2(order) }

// Validate checks a schedule under the k-line gossip model on net and
// simulates token propagation. Schedule.Source is ignored (gossip has no
// distinguished originator).
func Validate(net linecomm.Network, k int, s *linecomm.Schedule) *Result {
	res := &Result{Rounds: len(s.Rounds)}
	order := net.Order()
	if order > MaxSimulateOrder {
		res.Violations = append(res.Violations, linecomm.Violation{
			Round: -1, Call: -1, Kind: linecomm.VertexOutOfRange,
			Msg: fmt.Sprintf("order %d exceeds simulation cap %d", order, MaxSimulateOrder),
		})
		return res
	}
	n := int(order)
	know := make([]*bitvec.Set, n)
	for v := 0; v < n; v++ {
		know[v] = bitvec.New(n)
		know[v].Set(v)
	}
	for ri, round := range s.Rounds {
		usedEdge := make(map[[2]uint64]bool)
		busy := make(map[uint64]int)
		type xchg struct{ a, b uint64 }
		var merges []xchg
		for ci, call := range round {
			bad := false
			if len(call.Path) < 2 {
				res.Violations = append(res.Violations, linecomm.Violation{
					Round: ri, Call: ci, Kind: linecomm.PathInvalid,
					Msg: fmt.Sprintf("path has %d vertices", len(call.Path))})
				continue
			}
			for _, v := range call.Path {
				if v >= order {
					res.Violations = append(res.Violations, linecomm.Violation{
						Round: ri, Call: ci, Kind: linecomm.VertexOutOfRange,
						Msg: fmt.Sprintf("vertex %d outside [0,%d)", v, order)})
					bad = true
				}
			}
			if bad {
				continue
			}
			seen := make(map[uint64]bool)
			for _, v := range call.Path {
				if seen[v] {
					res.Violations = append(res.Violations, linecomm.Violation{
						Round: ri, Call: ci, Kind: linecomm.PathInvalid,
						Msg: fmt.Sprintf("vertex %d repeated", v)})
					bad = true
				}
				seen[v] = true
			}
			for i := 1; i < len(call.Path); i++ {
				if !net.HasEdge(call.Path[i-1], call.Path[i]) {
					res.Violations = append(res.Violations, linecomm.Violation{
						Round: ri, Call: ci, Kind: linecomm.PathInvalid,
						Msg: fmt.Sprintf("no edge {%d,%d}", call.Path[i-1], call.Path[i])})
					bad = true
				}
			}
			if call.Length() > k {
				res.Violations = append(res.Violations, linecomm.Violation{
					Round: ri, Call: ci, Kind: linecomm.PathTooLong,
					Msg: fmt.Sprintf("length %d > k = %d", call.Length(), k)})
			}
			if bad {
				continue
			}
			for _, endpoint := range []uint64{call.From(), call.To()} {
				if prev, dup := busy[endpoint]; dup {
					res.Violations = append(res.Violations, linecomm.Violation{
						Round: ri, Call: ci, Kind: linecomm.CallerDuplicate,
						Msg: fmt.Sprintf("vertex %d already in call %d this round", endpoint, prev)})
				} else {
					busy[endpoint] = ci
				}
			}
			for i := 1; i < len(call.Path); i++ {
				a, b := call.Path[i-1], call.Path[i]
				if a > b {
					a, b = b, a
				}
				e := [2]uint64{a, b}
				if usedEdge[e] {
					res.Violations = append(res.Violations, linecomm.Violation{
						Round: ri, Call: ci, Kind: linecomm.EdgeConflict,
						Msg: fmt.Sprintf("edge {%d,%d} reused", a, b)})
				}
				usedEdge[e] = true
			}
			merges = append(merges, xchg{call.From(), call.To()})
		}
		// Apply all exchanges simultaneously (synchronous round).
		for _, m := range merges {
			u := know[m.a].Clone()
			know[m.a].UnionWith(know[m.b])
			know[m.b].UnionWith(u)
		}
	}
	res.MinKnown = n
	res.Complete = true
	for v := 0; v < n; v++ {
		c := know[v].Count()
		if c < res.MinKnown {
			res.MinKnown = c
		}
		if c != n {
			res.Complete = false
		}
	}
	res.MinimumTime = res.Complete && len(s.Rounds) == MinimumRounds(order)
	return res
}

// HypercubeExchange returns the classic dimension-exchange gossip on Q_n:
// in the round for dimension i every vertex exchanges with its dimension-i
// neighbor (2^(n-1) disjoint edges). Completes in n = ceil(log2 N) rounds
// with k = 1 — minimum time, but on a degree-n graph.
func HypercubeExchange(n int) (*linecomm.Schedule, error) {
	if n < 1 || n > 14 {
		return nil, fmt.Errorf("gossip: dimension %d out of [1,14]", n)
	}
	order := uint64(1) << uint(n)
	s := &linecomm.Schedule{}
	for d := 1; d <= n; d++ {
		var round linecomm.Round
		bit := uint64(1) << uint(d-1)
		for u := uint64(0); u < order; u++ {
			if u&bit == 0 {
				round = append(round, linecomm.Call{Path: []uint64{u, u | bit}})
			}
		}
		s.Rounds = append(s.Rounds, round)
	}
	return s, nil
}

// GatherScatter returns a 2n-round k-line gossip on a sparse hypercube:
// the broadcast tree of root is first run in reverse (each vertex forwards
// its accumulated tokens to the vertex that informed it, in reverse round
// order), concentrating all tokens at root after n rounds; the paper's
// Broadcast_k then disseminates them in n more rounds. Call lengths stay
// bounded by k, and per-round calls are edge-disjoint because each phase
// reuses the edge sets of single broadcast rounds.
func GatherScatter(s *core.SparseHypercube, root uint64) *linecomm.Schedule {
	return FromBroadcast(s.BroadcastSchedule(root))
}

// StreamGatherScatter yields the same 2n gather-scatter rounds as
// GatherScatter without ever materialising the doubled schedule: the
// broadcast schedule is built once, then streamed backward (the gather
// phase reuses one round buffer) and forward (the scatter phase aliases
// it directly). Peak memory is one broadcast schedule, half of
// GatherScatter's. Yielded rounds may reuse storage between iterations.
func StreamGatherScatter(s *core.SparseHypercube, root uint64) iter.Seq[linecomm.Round] {
	return func(yield func(linecomm.Round) bool) {
		bc := s.BroadcastSchedule(root)
		for r := range bc.StreamBackward() {
			if !yield(r) {
				return
			}
		}
		for r := range bc.Stream() {
			if !yield(r) {
				return
			}
		}
	}
}

// FromBroadcast lifts ANY valid broadcast schedule into a gossip schedule
// of twice the length: the broadcast run backwards (reversed rounds,
// reversed paths) gathers every token at the source — each vertex sends
// to the vertex that informed it, strictly before that vertex sends on,
// because broadcast informs parents before children — then the original
// broadcast scatters the full token set. Edge-disjointness per round and
// the one-call-per-vertex gossip constraint are inherited from the
// broadcast rounds (callers and receivers of a valid broadcast round are
// disjoint sets). This turns every broadcast scheme in the repository —
// Broadcast_k, the tri-tree schemes, tree planners — into a
// 2*ceil(log2 N)-round gossip scheme on the same graph.
func FromBroadcast(bc *linecomm.Schedule) *linecomm.Schedule {
	out := &linecomm.Schedule{Source: bc.Source}
	for ri := len(bc.Rounds) - 1; ri >= 0; ri-- {
		var round linecomm.Round
		for _, call := range bc.Rounds[ri] {
			rev := make([]uint64, len(call.Path))
			for i, v := range call.Path {
				rev[len(call.Path)-1-i] = v
			}
			round = append(round, linecomm.Call{Path: rev})
		}
		out.Rounds = append(out.Rounds, round)
	}
	out.Rounds = append(out.Rounds, bc.Rounds...)
	return out
}
