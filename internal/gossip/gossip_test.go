package gossip

import (
	"reflect"
	"testing"

	"sparsehypercube/internal/broadcast"
	"sparsehypercube/internal/core"
	"sparsehypercube/internal/linecomm"
	"sparsehypercube/internal/topo"
	"sparsehypercube/internal/treecast"
)

func TestHypercubeExchangeOptimal(t *testing.T) {
	for n := 1; n <= 10; n++ {
		sched, err := HypercubeExchange(n)
		if err != nil {
			t.Fatal(err)
		}
		net := linecomm.GraphNetwork{G: topo.Hypercube(n)}
		res := Validate(net, 1, sched)
		if err := res.Err(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !res.Complete {
			t.Fatalf("n=%d: incomplete, min known %d", n, res.MinKnown)
		}
		if !res.MinimumTime {
			t.Fatalf("n=%d: %d rounds, want %d", n, res.Rounds, MinimumRounds(1<<uint(n)))
		}
	}
	if _, err := HypercubeExchange(0); err == nil {
		t.Error("expected range error")
	}
}

// Gather-scatter gossip on sparse hypercubes: complete in exactly 2n
// rounds with calls of length <= k — the factor-2 upper bound for the
// paper's open problem.
func TestGatherScatterOnSparseHypercubes(t *testing.T) {
	params := []core.Params{
		core.BaseParams(6, 2),
		core.BaseParams(9, 3),
		core.RecParams(10, 5, 2),
		{K: 4, Dims: []int{2, 4, 6, 11}},
	}
	for _, p := range params {
		s, err := core.New(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, root := range []uint64{0, s.Order() - 1, s.Order() / 3} {
			sched := GatherScatter(s, root)
			res := Validate(s, p.K, sched)
			if err := res.Err(); err != nil {
				t.Fatalf("%v root=%d: %v", p, root, err)
			}
			if !res.Complete {
				t.Fatalf("%v root=%d: incomplete (min known %d of %d)", p, root, res.MinKnown, s.Order())
			}
			if res.Rounds != 2*s.N() {
				t.Fatalf("%v: %d rounds, want %d", p, res.Rounds, 2*s.N())
			}
		}
	}
}

// FromBroadcast lifts the Theorem-1 tri-tree broadcast into gossip on a
// degree-3 graph: all-to-all in 2*ceil(log2 N) rounds with calls <= 2h.
func TestFromBroadcastTriTree(t *testing.T) {
	for h := 2; h <= 5; h++ {
		g := topo.TriTree(h)
		net := linecomm.GraphNetwork{G: g}
		for _, src := range []int{0, 1, g.NumVertices() - 1} {
			bc, err := broadcast.TriTreeSchedule(h, src)
			if err != nil {
				t.Fatal(err)
			}
			gsched := FromBroadcast(bc)
			res := Validate(net, 2*h, gsched)
			if err := res.Err(); err != nil {
				t.Fatalf("h=%d src=%d: %v", h, src, err)
			}
			if !res.Complete {
				t.Fatalf("h=%d src=%d: incomplete (min known %d)", h, src, res.MinKnown)
			}
			want := 2 * broadcast.TriTreeMinimumRounds(h)
			if res.Rounds != want {
				t.Fatalf("h=%d: %d rounds, want %d", h, res.Rounds, want)
			}
		}
	}
}

// FromBroadcast also lifts the generic tree planner: gossip on a path.
func TestFromBroadcastTreePlanner(t *testing.T) {
	g := topo.Path(16)
	p, err := treecast.New(g)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := p.Schedule(5)
	if err != nil {
		t.Fatal(err)
	}
	gsched := FromBroadcast(bc)
	res := Validate(linecomm.GraphNetwork{G: g}, 15, gsched)
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.Rounds != 8 {
		t.Fatalf("path gossip: complete=%v rounds=%d", res.Complete, res.Rounds)
	}
}

// The gossip lower bound: token spread at most doubles per round, so the
// gather-scatter scheme is within a factor 2 of any scheme.
func TestMinimumRounds(t *testing.T) {
	cases := map[uint64]int{2: 1, 4: 2, 16: 4, 22: 5, 1 << 10: 10}
	for order, want := range cases {
		if got := MinimumRounds(order); got != want {
			t.Errorf("MinimumRounds(%d) = %d, want %d", order, got, want)
		}
	}
}

func TestValidateCatchesBusyVertex(t *testing.T) {
	// On C_4: vertex 1 in two exchanges the same round.
	net := linecomm.GraphNetwork{G: topo.Cycle(4)}
	s := &linecomm.Schedule{Rounds: []linecomm.Round{
		{{Path: []uint64{0, 1}}, {Path: []uint64{1, 2}}},
	}}
	res := Validate(net, 1, s)
	if res.Valid() {
		t.Fatal("busy vertex not flagged")
	}
	found := false
	for _, v := range res.Violations {
		if v.Kind == linecomm.CallerDuplicate {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected busy-vertex violation, got %v", res.Violations)
	}
}

func TestValidateCatchesEdgeReuse(t *testing.T) {
	net := linecomm.GraphNetwork{G: topo.Cycle(4)}
	s := &linecomm.Schedule{Rounds: []linecomm.Round{
		{{Path: []uint64{0, 1, 2}}, {Path: []uint64{3, 0}}},
		{{Path: []uint64{0, 3, 2}}, {Path: []uint64{1, 0}}}, // wait: vertex 0 busy twice? no: round 2 has calls 0-3-2 and 1-0: 0 is endpoint of first and receiver of second
	}}
	res := Validate(net, 2, s)
	if res.Valid() {
		t.Fatal("expected violations")
	}
}

func TestValidateCatchesPathProblems(t *testing.T) {
	net := linecomm.GraphNetwork{G: topo.Cycle(4)}
	for _, bad := range []linecomm.Round{
		{{Path: []uint64{0}}},          // too short
		{{Path: []uint64{0, 2}}},       // non-edge
		{{Path: []uint64{0, 1, 0}}},    // repeated vertex
		{{Path: []uint64{0, 9}}},       // out of range
		{{Path: []uint64{0, 1, 2, 3}}}, // longer than k = 2
	} {
		res := Validate(net, 2, &linecomm.Schedule{Rounds: []linecomm.Round{bad}})
		if res.Valid() {
			t.Fatalf("schedule %v should be invalid", bad)
		}
	}
}

func TestValidateTokenSemantics(t *testing.T) {
	// P_3: exchange (0,1), then (1,2): vertex 2 ends up knowing all three
	// tokens; vertex 0 misses token 2 (no second exchange for it).
	net := linecomm.GraphNetwork{G: topo.Path(3)}
	s := &linecomm.Schedule{Rounds: []linecomm.Round{
		{{Path: []uint64{0, 1}}},
		{{Path: []uint64{1, 2}}},
	}}
	res := Validate(net, 1, s)
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("vertex 0 cannot know token 2")
	}
	if res.MinKnown != 2 {
		t.Fatalf("min known = %d, want 2 (vertex 0 knows {0,1})", res.MinKnown)
	}
	// One more exchange completes it.
	s.Rounds = append(s.Rounds, linecomm.Round{{Path: []uint64{0, 1}}})
	res = Validate(net, 1, s)
	if !res.Complete {
		t.Fatal("gossip should now be complete")
	}
}

func TestValidateSimulationCap(t *testing.T) {
	s, err := core.NewBase(15, 3)
	if err != nil {
		t.Fatal(err)
	}
	res := Validate(s, 2, &linecomm.Schedule{})
	if res.Valid() {
		t.Fatal("expected cap violation for 2^15 vertices")
	}
}

// Synchronicity: exchanges in the same round use round-start knowledge
// only — a chain (0,1),(2,3) then (1,2) needs the later round to move
// token 0 to vertex 2; packing both pairs in one round must not leak.
func TestValidateSynchronousRounds(t *testing.T) {
	net := linecomm.GraphNetwork{G: topo.Path(4)}
	s := &linecomm.Schedule{Rounds: []linecomm.Round{
		{{Path: []uint64{0, 1}}, {Path: []uint64{2, 3}}},
	}}
	res := Validate(net, 1, s)
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	// After one round: 0 knows {0,1}, 2 knows {2,3} — token 0 must not
	// have reached vertex 2.
	if res.MinKnown != 2 || res.Complete {
		t.Fatalf("synchronous semantics broken: %+v", res)
	}
}

// TestStreamGatherScatterMatchesMaterialised pins the streamed rounds
// against FromBroadcast's materialised schedule, value for value.
func TestStreamGatherScatterMatchesMaterialised(t *testing.T) {
	s, err := core.NewBase(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := GatherScatter(s, 5)
	var got []linecomm.Round
	for r := range StreamGatherScatter(s, 5) {
		got = append(got, linecomm.CloneRound(r))
	}
	if len(got) != len(want.Rounds) {
		t.Fatalf("streamed %d rounds, want %d", len(got), len(want.Rounds))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want.Rounds[i]) {
			t.Fatalf("round %d diverged:\n%v\n%v", i, got[i], want.Rounds[i])
		}
	}
}
