package analysis

import (
	"strings"
	"testing"
)

func TestRunDiameterBoundHolds(t *testing.T) {
	tb := RunDiameter()
	if !tb.AllOK("within bound") {
		t.Fatalf("footnote-1 diameter bound violated:\n%s", tb.Markdown())
	}
	if len(tb.Rows) < 6 {
		t.Errorf("diameter table too small: %d rows", len(tb.Rows))
	}
}

func TestRunGossipComplete(t *testing.T) {
	tb := RunGossip()
	if !tb.AllOK("complete") {
		t.Fatalf("gossip schemes incomplete:\n%s", tb.Markdown())
	}
	// Dimension exchange must be time-optimal: rounds == lower bound.
	for _, row := range tb.Rows {
		if row[0] == "dimension exchange" && row[4] != row[5] {
			t.Errorf("dimension exchange not optimal: %v", row)
		}
		if row[0] == "gather-scatter" {
			// 2n rounds vs lower bound n: exactly a factor 2.
			if row[4] == row[5] {
				t.Errorf("gather-scatter unexpectedly optimal: %v", row)
			}
		}
	}
}

func TestRunTreecastAllMinimum(t *testing.T) {
	tb := RunTreecast()
	if !tb.AllOK("minimum") {
		t.Fatalf("treecast table has non-minimum rows:\n%s", tb.Markdown())
	}
	if len(tb.Rows) < 7 {
		t.Errorf("treecast table too small: %d rows", len(tb.Rows))
	}
}

func TestRunMbgAllCertified(t *testing.T) {
	tb := RunMbg()
	if !tb.AllOK("1-mlbg (exhaustive)") {
		t.Fatalf("mbg catalogue failed:\n%s", tb.Markdown())
	}
	if len(tb.Rows) != 8 {
		t.Errorf("mbg rows = %d", len(tb.Rows))
	}
}

func TestRunPermZoo(t *testing.T) {
	tb := RunPermZoo()
	if len(tb.Rows) != 8 {
		t.Fatalf("perm zoo rows = %d", len(tb.Rows))
	}
	md := tb.Markdown()
	for _, want := range []string{"star S_4", "pancake P_5", "| 720 "} {
		if !strings.Contains(md, want) {
			t.Errorf("perm zoo missing %q:\n%s", want, md)
		}
	}
}

func TestRunGossipStreamSmall(t *testing.T) {
	tb := RunGossipStream(8, 11)
	if len(tb.Rows) != 4 {
		t.Fatalf("gossip stream rows = %d:\n%s", len(tb.Rows), tb.Markdown())
	}
	if !tb.AllOK("valid") || !tb.AllOK("complete") {
		t.Fatalf("streamed gossip pipeline failed:\n%s", tb.Markdown())
	}
	for _, row := range tb.Rows {
		if row[3] != "all" {
			t.Errorf("small orders must simulate all sources: %v", row)
		}
	}
}
