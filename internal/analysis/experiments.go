package analysis

import (
	"fmt"

	"sparsehypercube/internal/broadcast"
	"sparsehypercube/internal/core"
	"sparsehypercube/internal/graph"
	"sparsehypercube/internal/intmath"
	"sparsehypercube/internal/labeling"
	"sparsehypercube/internal/linecomm"
	"sparsehypercube/internal/topo"
)

// RunFig1 reproduces Figure 1 / Theorem 1: the degree-3 tri-tree family.
// For each h it builds T_h, checks the three conditions of the proof
// (degree 3, diameter 2h, order 3*2^h-2) and machine-checks the
// minimum-time 2h-line broadcast from a set of sources (all sources for
// small h).
func RunFig1(hMax int) *Table {
	t := &Table{
		ID:    "EXP-FIG1",
		Title: "Theorem 1 tree T_h (Fig. 1 shows h = 3)",
		Headers: []string{"h", "N=3*2^h-2", "Delta", "diam", "k=2h",
			"rounds", "ceil(log2 N)", "sources", "all-valid"},
	}
	for h := 1; h <= hMax; h++ {
		g := topo.TriTree(h)
		net := linecomm.GraphNetwork{G: g}
		want := broadcast.TriTreeMinimumRounds(h)
		sources := allOrSampledSources(g.NumVertices(), 64)
		valid := true
		rounds := 0
		for _, src := range sources {
			sched, err := broadcast.TriTreeSchedule(h, src)
			if err != nil {
				valid = false
				break
			}
			res := linecomm.Validate(net, 2*h, sched)
			if !res.Valid() || !res.MinimumTime || res.MaxCallLength > 2*h {
				valid = false
			}
			rounds = len(sched.Rounds)
		}
		t.AddRow(h, g.NumVertices(), g.MaxDegree(), graph.Diameter(g), 2*h,
			rounds, want, len(sources), valid)
	}
	t.Note("Fig. 1 instance: h = 3, N = 22, Delta = 3, broadcast in 5 rounds with calls <= 6.")
	return t
}

// RunFig2 reproduces Figure 2: the Rule-1 (subcube) edges of G_{4,2}.
func RunFig2() *Table {
	t := &Table{
		ID:      "EXP-FIG2",
		Title:   "Rule-1 edges of Construct_BASE(4,2) (Fig. 2)",
		Headers: []string{"edge", "dimension"},
	}
	s := mustPaperG42()
	for u := uint64(0); u < s.Order(); u++ {
		for d := 1; d <= 2; d++ {
			v := u ^ 1<<uint(d-1)
			if u < v {
				t.AddRow(fmt.Sprintf("%s -- %s", topo.BitString(u, 4), topo.BitString(v, 4)), d)
			}
		}
	}
	return t
}

// RunFig3 reproduces Figure 3: the complete edge set of G_{4,2} with the
// paper's labeling and partition, plus the graph statistics.
func RunFig3() *Table {
	t := &Table{
		ID:      "EXP-FIG3",
		Title:   "G_{4,2} = Construct_BASE(4,2) (Fig. 3)",
		Headers: []string{"edge", "dimension", "rule"},
	}
	s := mustPaperG42()
	for u := uint64(0); u < s.Order(); u++ {
		for d := 1; d <= 4; d++ {
			v := u ^ 1<<uint(d-1)
			if u < v && s.HasEdgeDim(u, d) {
				rule := "1"
				if d > 2 {
					rule = "2"
				}
				t.AddRow(fmt.Sprintf("%s -- %s", topo.BitString(u, 4), topo.BitString(v, 4)), d, rule)
			}
		}
	}
	g, err := s.Graph()
	if err != nil {
		panic(err)
	}
	ok, src, err := broadcast.IsKMLBG(g, 2)
	if err != nil {
		panic(err)
	}
	t.Note("|V| = %d, |E| = %d, Delta = %d (3-regular, vs Delta(Q_4) = 4).",
		s.Order(), s.NumEdges(), s.MaxDegree())
	t.Note("Exhaustive checker certifies 2-mlbg: %v (first failing source: %d).", ok, src)
	return t
}

// RunFig4 reproduces Figure 4 / Example 4: the broadcast from 0000 in
// G_{4,2}, round by round.
func RunFig4() (*Table, string) {
	s := mustPaperG42()
	sched := s.BroadcastSchedule(0)
	res := linecomm.Validate(s, 2, sched)
	t := &Table{
		ID:      "EXP-FIG4",
		Title:   "Broadcast_2 from 0000 in G_{4,2} (Fig. 4 / Example 4)",
		Headers: []string{"round", "dimension", "calls", "informed-after"},
	}
	for i, round := range sched.Rounds {
		t.AddRow(i+1, s.N()-i, len(round), res.InformedPerRound[i])
	}
	t.Note("valid: %v, minimum time: %v, max call length: %d.",
		res.Valid(), res.MinimumTime, res.MaxCallLength)
	t.Note("The paper routes 0000's first call through relay 0010; the" +
		" dominator table here picks relay 0001 — both satisfy Condition A.")
	return t, sched.Format(4)
}

// RunFig5 reproduces Figure 5: the dimension-window partition of the
// k = 3 recursive construction, rendered for Construct_REC(7,4,2).
func RunFig5() string {
	s, err := core.NewRec(7, 4, 2,
		core.LevelSpec{Labeling: labeling.PaperExample1Q2(), Partition: [][]int{{3}, {4}}},
		core.LevelSpec{Labeling: labeling.PaperExample1Q2(), Partition: [][]int{{7, 6}, {5}}},
	)
	if err != nil {
		panic(err)
	}
	return s.Describe()
}

// RunEx1 reproduces Example 1: optimal Condition-A labelings of Q_2, Q_3,
// with exhaustive optimality certificates.
func RunEx1() *Table {
	t := &Table{
		ID:      "EXP-EX1",
		Title:   "Example 1 labelings and exact lambda_m",
		Headers: []string{"m", "paper labels", "constructive", "exhaustive lambda", "optimal"},
	}
	q2 := labeling.PaperExample1Q2()
	q3 := labeling.PaperExample1Q3()
	for _, c := range []struct {
		m     int
		paper *labeling.Labeling
	}{{2, q2}, {3, q3}} {
		best, err := labeling.Best(c.m)
		if err != nil {
			panic(err)
		}
		exact, _ := labeling.MaxLabelsExhaustive(c.m)
		t.AddRow(c.m, c.paper.NumLabels(), best.NumLabels(), exact,
			c.paper.NumLabels() == exact && best.NumLabels() == exact)
	}
	return t
}

// RunEx3 reproduces Example 3: G_{15,3} statistics and a validated
// broadcast.
func RunEx3() *Table {
	s, err := core.NewBase(15, 3)
	if err != nil {
		panic(err)
	}
	sched := s.BroadcastSchedule(0)
	res := linecomm.Validate(s, 2, sched)
	t := &Table{
		ID:      "EXP-EX3",
		Title:   "G_{15,3} (Example 3)",
		Headers: []string{"quantity", "value", "paper"},
	}
	t.AddRow("N", s.Order(), "2^15")
	t.AddRow("Delta(G_{15,3})", s.MaxDegree(), "6 = 3 + 3")
	t.AddRow("Delta(Q_15)", 15, "15")
	t.AddRow("|S_i| (each)", 3, "3")
	t.AddRow("broadcast rounds from 0", len(sched.Rounds), "15")
	t.AddRow("schedule valid & minimal", res.Valid() && res.MinimumTime, "yes")
	t.AddRow("max call length", res.MaxCallLength, "<= 2")
	return t
}

// RunEx6 reproduces Example 6: the adjacency of 0000000 in
// Construct_REC(7,4,2) plus a validated 3-line broadcast.
func RunEx6() *Table {
	s, err := core.NewRec(7, 4, 2,
		core.LevelSpec{Labeling: labeling.PaperExample1Q2(), Partition: [][]int{{3}, {4}}},
		core.LevelSpec{Labeling: labeling.PaperExample1Q2(), Partition: [][]int{{7, 6}, {5}}},
	)
	if err != nil {
		panic(err)
	}
	t := &Table{
		ID:      "EXP-EX6",
		Title:   "Construct_REC(7,4,2) (Examples 5-6)",
		Headers: []string{"quantity", "value", "paper"},
	}
	nbrs := s.Neighbors(0)
	nbrStr := ""
	for i, v := range nbrs {
		if i > 0 {
			nbrStr += " "
		}
		nbrStr += topo.BitString(v, 7)
	}
	t.AddRow("N(0000000)", nbrStr, "0000001 0000010 0000100 0100000 1000000")
	t.AddRow("Delta", s.MaxDegree(), "")
	valid := true
	for _, src := range []uint64{0, 1, 63, 127} {
		res := linecomm.Validate(s, 3, s.BroadcastSchedule(src))
		if !res.Valid() || !res.MinimumTime || res.MaxCallLength > 3 {
			valid = false
		}
	}
	t.AddRow("3-line broadcast valid (4 sources)", valid, "yes")
	return t
}

// RunLowerBounds tabulates Theorems 2 and 3 against the constructed
// degrees: the lower bound for the class and the degree our construction
// achieves (EXP-THM23).
func RunLowerBounds(nMax int) *Table {
	t := &Table{
		ID:      "EXP-THM23",
		Title:   "Degree lower bounds (Theorems 2-3) vs constructed degree",
		Headers: []string{"n", "k", "lower bound", "constructed Delta", "LB <= Delta"},
	}
	for _, k := range []int{2, 3, 4, 5, 6} {
		for n := k + 1; n <= nMax; n += 3 {
			p, err := core.AutoParams(k, n)
			if err != nil {
				continue
			}
			d, err := core.DegreeForParams(p)
			if err != nil {
				continue
			}
			lb := core.LowerBoundDegree(k, n)
			t.AddRow(n, k, lb, d, lb <= d)
		}
	}
	return t
}

// RunThm4 sweeps Construct_BASE instances and validates Broadcast_2
// (EXP-THM4), exhaustively over sources for small n.
func RunThm4(nMax int) *Table {
	t := &Table{
		ID:      "EXP-THM4",
		Title:   "Theorem 4: Broadcast_2 is a minimum-time 2-line scheme",
		Headers: []string{"n", "m", "Delta", "sources", "rounds", "max-len", "all-valid"},
	}
	for n := 2; n <= nMax; n++ {
		for m := 1; m < n; m++ {
			s, err := core.NewBase(n, m)
			if err != nil {
				continue
			}
			sources := allOrSampledSources(int(s.Order()), 32)
			valid := true
			maxLen := 0
			for _, src := range sources {
				res := linecomm.Validate(s, 2, s.BroadcastSchedule(uint64(src)))
				if !res.Valid() || !res.MinimumTime {
					valid = false
				}
				if res.MaxCallLength > maxLen {
					maxLen = res.MaxCallLength
				}
			}
			t.AddRow(n, m, s.MaxDegree(), len(sources), s.N(), maxLen, valid)
		}
	}
	return t
}

// RunThm5 produces the k = 2 series (EXP-THM5): constructed degree vs the
// Theorem-5 bound and the Theorem-2 lower bound.
func RunThm5(nMax int) *Table {
	t := &Table{
		ID:    "EXP-THM5",
		Title: "Theorem 5: k = 2 sparse hypercubes, Delta <= 2*ceil(sqrt(2n+4)) - 4",
		Headers: []string{"n", "m*", "Delta(G_{n,m*})", "auto Delta", "T5 bound",
			"lower ceil(sqrt n)", "Delta <= bound"},
	}
	for n := 2; n <= nMax; n++ {
		m := core.Theorem5M(n)
		d, err := core.DegreeForParams(core.BaseParams(n, m))
		if err != nil {
			continue
		}
		pa, err := core.AutoParams(2, n)
		if err != nil {
			continue
		}
		da, err := core.DegreeForParams(pa)
		if err != nil {
			continue
		}
		bound := core.UpperBoundTheorem5(n)
		t.AddRow(n, m, d, da, bound, core.LowerBoundDegree(2, n), d <= bound)
	}
	t.Note("Q_n itself has Delta = n: the construction wins for every n >= 7 and asymptotically Delta = Theta(sqrt n).")
	return t
}

// RunThm6 sweeps recursive constructions and validates Broadcast_k
// (EXP-THM6).
func RunThm6() *Table {
	t := &Table{
		ID:      "EXP-THM6",
		Title:   "Theorem 6: Broadcast_k is a minimum-time k-line scheme",
		Headers: []string{"k", "params (n,...,n_1)", "Delta", "sources", "max-len", "all-valid"},
	}
	cases := []core.Params{
		core.RecParams(6, 4, 2),
		core.RecParams(7, 4, 2),
		core.RecParams(10, 5, 2),
		core.RecParams(12, 5, 2),
		{K: 4, Dims: []int{1, 2, 3, 8}},
		{K: 4, Dims: []int{2, 4, 7, 12}},
		{K: 5, Dims: []int{1, 2, 3, 4, 10}},
		{K: 5, Dims: []int{2, 3, 5, 8, 13}},
		{K: 6, Dims: []int{1, 2, 4, 6, 9, 14}},
	}
	for _, p := range cases {
		s, err := core.New(p)
		if err != nil {
			continue
		}
		sources := allOrSampledSources(int(s.Order()), 16)
		valid := true
		maxLen := 0
		for _, src := range sources {
			res := linecomm.Validate(s, p.K, s.BroadcastSchedule(uint64(src)))
			if !res.Valid() || !res.MinimumTime {
				valid = false
			}
			if res.MaxCallLength > maxLen {
				maxLen = res.MaxCallLength
			}
		}
		t.AddRow(p.K, p.String(), s.MaxDegree(), len(sources), maxLen, valid)
	}
	return t
}

// RunThm7 produces the k >= 3 series (EXP-THM7).
func RunThm7(nMax int) *Table {
	t := &Table{
		ID:    "EXP-THM7",
		Title: "Theorem 7: Delta <= (2k-1)*ceil(n^(1/k)) - k",
		Headers: []string{"k", "n", "formula params Delta", "auto Delta", "T7 bound",
			"lower bound", "Delta <= bound"},
	}
	for _, k := range []int{3, 4, 5, 6} {
		for n := k + 2; n <= nMax; n += 2 {
			var dFormula interface{} = "-"
			if p, err := core.Theorem7Params(k, n); err == nil {
				if d, err := core.DegreeForParams(p); err == nil {
					dFormula = d
				}
			}
			pa, err := core.AutoParams(k, n)
			if err != nil {
				continue
			}
			da, err := core.DegreeForParams(pa)
			if err != nil {
				continue
			}
			bound := core.UpperBoundTheorem7(k, n)
			t.AddRow(k, n, dFormula, da, bound, core.LowerBoundDegree(k, n), da <= bound)
		}
	}
	return t
}

// RunCor1 produces the Corollary 1 series (EXP-COR1).
func RunCor1(nMax int) *Table {
	t := &Table{
		ID:      "EXP-COR1",
		Title:   "Corollary 1: k = ceil(log2 n) gives Delta <= 4*ceil(log2 log2 N) - 2",
		Headers: []string{"n", "k", "auto Delta", "C1 bound", "Delta <= bound"},
	}
	for n := 4; n <= nMax; n += 2 {
		k := core.Corollary1K(n)
		p, err := core.AutoParams(k, n)
		if err != nil {
			continue
		}
		d, err := core.DegreeForParams(p)
		if err != nil {
			continue
		}
		bound := core.UpperBoundCorollary1(n)
		t.AddRow(n, k, d, bound, d <= bound)
	}
	return t
}

// RunCor2 produces the tightness ratios of Corollary 2 (EXP-COR2): for
// constant k the constructed degree over the lower bound stays bounded.
func RunCor2(nMax int) *Table {
	t := &Table{
		ID:      "EXP-COR2",
		Title:   "Corollary 2: Delta = Theta(n^(1/k)) — ratio constructed/lower stays bounded",
		Headers: []string{"k", "n", "Delta", "ceil(n^(1/k))", "ratio"},
	}
	for _, k := range []int{2, 3, 4} {
		for n := 8; n <= nMax; n *= 2 {
			if n <= k {
				continue
			}
			p, err := core.AutoParams(k, n)
			if err != nil {
				continue
			}
			d, err := core.DegreeForParams(p)
			if err != nil {
				continue
			}
			root := int(intmath.CeilRoot(uint64(n), k))
			t.AddRow(k, n, d, root, float64(d)/float64(root))
		}
	}
	t.Note("The ratio stays below 2k-1 (Theorem 7's coefficient), witnessing Theta(n^(1/k)).")
	return t
}

// RunLem2 produces the lambda_m table (EXP-LEM2). Beyond the paper's
// bounds it adds the counting upper bound floor(2^m / gamma(Q_m)), which
// pins lambda exactly for every m <= 5.
func RunLem2(mMax int) *Table {
	t := &Table{
		ID:      "EXP-LEM2",
		Title:   "Lemma 2: ceil(m/2)+1 <= lambda_m <= m+1 (counting bound added)",
		Headers: []string{"m", "constructive lambda", "lower", "upper", "counting upper", "exact", "in-range"},
	}
	for m := 1; m <= mMax; m++ {
		best, err := labeling.Best(m)
		if err != nil {
			continue
		}
		lam := best.NumLabels()
		counting := labeling.CountingUpperBound(m)
		exact := "-"
		if m <= 4 {
			e, _ := labeling.MaxLabelsExhaustive(m)
			exact = fmt.Sprintf("%d", e)
		} else if lam == counting {
			exact = fmt.Sprintf("%d", lam) // construction meets the counting bound
		}
		t.AddRow(m, lam, labeling.LowerBound(m), labeling.UpperBound(m), counting, exact,
			lam >= labeling.LowerBound(m) && lam <= counting)
	}
	t.Note("Equality lambda_m = m+1 holds at m = 2^p - 1 via Hamming-code cosets; the counting bound settles lambda_5 = 4.")
	return t
}

// RunZoo compares the topology zoo against sparse hypercubes at matched
// order (EXP-ZOO).
func RunZoo() *Table {
	t := &Table{
		ID:      "EXP-ZOO",
		Title:   "Topology context (paper SS1/SS3): degree/diameter/edges at N = 2^9 (or closest)",
		Headers: []string{"graph", "N", "Delta", "diameter", "edges", "k-mlbg status"},
	}
	n := 9
	q := topo.Hypercube(n)
	t.AddRow(fmt.Sprintf("Q_%d", n), q.NumVertices(), q.MaxDegree(), graph.Diameter(q), q.NumEdges(), "1-mlbg (classic)")
	fq := topo.FoldedHypercube(n)
	t.AddRow(fmt.Sprintf("FQ_%d", n), fq.NumVertices(), fq.MaxDegree(), graph.Diameter(fq), fq.NumEdges(), "1-mlbg (denser)")
	cq := topo.CrossedCube(n)
	t.AddRow(fmt.Sprintf("CQ_%d", n), cq.NumVertices(), cq.MaxDegree(), graph.Diameter(cq), cq.NumEdges(), "diameter-halved variant")
	ccc := topo.CubeConnectedCycles(6)
	t.AddRow("CCC_6", ccc.NumVertices(), ccc.MaxDegree(), graph.Diameter(ccc), ccc.NumEdges(), "degree-3, diameter Theta(n)")
	db := topo.DeBruijn(n)
	t.AddRow(fmt.Sprintf("UB_%d", n), db.NumVertices(), db.MaxDegree(), graph.Diameter(db), db.NumEdges(), "degree-4")
	tt := topo.TriTree(8)
	t.AddRow("T_8 (Thm 1)", tt.NumVertices(), tt.MaxDegree(), graph.Diameter(tt), tt.NumEdges(),
		fmt.Sprintf("%d-mlbg", 16))
	for _, k := range []int{2, 3} {
		s, err := core.NewAuto(k, n)
		if err != nil {
			continue
		}
		g, err := s.Graph()
		if err != nil {
			continue
		}
		t.AddRow(fmt.Sprintf("sparse %s", s.Params()), s.Order(), s.MaxDegree(),
			graph.Diameter(g), s.NumEdges(), fmt.Sprintf("%d-mlbg (this paper)", k))
	}
	return t
}

// RunAblation measures how often random Q_4 subgraphs at a given edge
// budget fail to be 2-mlbgs, versus the always-passing G_{4,2}
// (EXP-ABL).
func RunAblation(trials int) *Table {
	t := &Table{
		ID:      "EXP-ABL",
		Title:   "Ablation: random connected Q_4 subgraphs vs Construct_BASE(4,2) at k = 2",
		Headers: []string{"edges", "graphs tried", "2-mlbg", "failure rate"},
	}
	for _, budget := range []int{15, 18, 21, 24, 28, 32} {
		fails := 0
		for seed := 0; seed < trials; seed++ {
			g := randomCubeSubgraph(int64(seed)*977+int64(budget), 4, budget)
			ok, _, err := broadcast.IsKMLBG(g, 2)
			if err != nil {
				panic(err)
			}
			if !ok {
				fails++
			}
		}
		t.AddRow(budget, trials, trials-fails, float64(fails)/float64(trials))
	}
	s := mustPaperG42()
	g, _ := s.Graph()
	ok, _, _ := broadcast.IsKMLBG(g, 2)
	t.Note("G_{4,2} (24 edges, structured): 2-mlbg = %v on every run.", ok)
	return t
}

// RunCongestion reports the edge-load statistics of Broadcast_k schedules
// (EXP-CONG) — the §5 discussion quantified.
func RunCongestion() *Table {
	t := &Table{
		ID:    "EXP-CONG",
		Title: "Congestion of Broadcast_k schedules (paper SS5 discussion)",
		Headers: []string{"construction", "rounds", "calls", "edges used", "|E|",
			"max edge load", "mean edge load", "len histogram"},
	}
	cases := []core.Params{
		core.BaseParams(10, 3),
		core.BaseParams(15, 3),
		core.RecParams(12, 5, 2),
		{K: 4, Dims: []int{2, 4, 7, 14}},
	}
	for _, p := range cases {
		s, err := core.New(p)
		if err != nil {
			continue
		}
		sched := s.BroadcastSchedule(0)
		st := linecomm.Congestion(sched)
		hist := linecomm.PathLengthHistogram(sched)
		histStr := ""
		for l := 1; l <= p.K; l++ {
			if histStr != "" {
				histStr += " "
			}
			histStr += fmt.Sprintf("%d:%d", l, hist[l])
		}
		t.AddRow(p.String(), len(sched.Rounds), sched.TotalCalls(), st.EdgesUsed,
			s.NumEdges(), st.MaxEdgeLoad, st.MeanEdgeLoad, histStr)
	}
	t.Note("Within a round, loads are 1 by edge-disjointness; totals measure reuse across rounds.")
	return t
}

// mustPaperG42 builds G_{4,2} with the paper's Example-2 choices.
func mustPaperG42() *core.SparseHypercube {
	s, err := core.NewBase(4, 2, core.LevelSpec{
		Labeling:  labeling.PaperExample1Q2(),
		Partition: [][]int{{3}, {4}},
	})
	if err != nil {
		panic(err)
	}
	return s
}

// allOrSampledSources returns every vertex when order <= limit, otherwise
// a deterministic sample including the extremes.
func allOrSampledSources(order, limit int) []int {
	if order <= limit {
		out := make([]int, order)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := []int{0, 1, order - 1}
	step := order / (limit - len(out))
	if step < 1 {
		step = 1
	}
	for v := step; v < order-1 && len(out) < limit; v += step {
		out = append(out, v)
	}
	return out
}

// randomCubeSubgraph builds a connected spanning subgraph of Q_n with the
// given edge budget: a random spanning tree plus random extra cube edges.
func randomCubeSubgraph(seed int64, n, budget int) *graph.Graph {
	q := topo.Hypercube(n)
	order := q.NumVertices()
	var edges [][2]int
	q.Edges(func(u, v int) { edges = append(edges, [2]int{u, v}) })
	// Deterministic shuffle (xorshift) to stay reproducible.
	rng := seed*2654435761 + 1
	next := func(bound int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		v := int(rng % int64(bound))
		if v < 0 {
			v = -v
		}
		return v
	}
	for i := len(edges) - 1; i > 0; i-- {
		j := next(i + 1)
		edges[i], edges[j] = edges[j], edges[i]
	}
	parent := make([]int, order)
	for i := range parent {
		parent[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	b := graph.NewBuilder(order)
	used := 0
	var extra [][2]int
	for _, e := range edges {
		ru, rv := find(e[0]), find(e[1])
		if ru != rv {
			parent[ru] = rv
			b.AddEdge(e[0], e[1])
			used++
		} else {
			extra = append(extra, e)
		}
	}
	for _, e := range extra {
		if used >= budget {
			break
		}
		b.AddEdge(e[0], e[1])
		used++
	}
	return b.Finish()
}
