package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"time"

	"sparsehypercube/internal/core"
	"sparsehypercube/internal/linecomm"
	"sparsehypercube/internal/schedio"
)

// RunReplay exercises the write-once/verify-many story end to end: per
// (k, n) it streams the broadcast scheme through the schedio encoder,
// replays the encoding into the streaming validator, and checks the
// replayed Result is identical to direct generate+validate. The table
// records the encoded size (and bytes/call — the XOR-delta varint
// format's compactness) and both wall times.
func RunReplay(nMax int) *Table {
	t := &Table{
		ID:    "EXP-REPLAY",
		Title: "Round codec: encode once, replay + re-verify (schedio)",
		Headers: []string{"k", "n", "N", "calls", "bytes", "B/call",
			"enc ms", "replay ms", "match"},
	}
	for n := 8; n <= nMax; n += 2 {
		for _, k := range []int{2, 3} {
			p, err := core.AutoParams(k, n)
			if err != nil {
				continue
			}
			s, err := core.New(p)
			if err != nil {
				continue
			}
			direct := linecomm.ValidateStream(s, k, 0, s.ScheduleRounds(0))

			calls := uint64(1)<<uint(n) - 1
			var buf bytes.Buffer
			h := schedio.Header{K: p.K, Dims: p.Dims, Scheme: "broadcast", Source: 0}
			start := time.Now()
			nBytes, err := schedio.Write(&buf, h, s.ScheduleRounds(0))
			encMs := time.Since(start).Seconds() * 1e3
			if err != nil {
				// A codec failure is the regression this table exists to
				// catch: surface it as a non-matching row, never drop it.
				t.AddRow(k, n, s.Order(), calls, nBytes, 0.0, encMs, 0.0, false)
				t.Note("k=%d n=%d: encode failed: %v", k, n, err)
				continue
			}

			start = time.Now()
			dec, err := schedio.NewDecoder(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.AddRow(k, n, s.Order(), calls, nBytes,
					float64(nBytes)/float64(calls), encMs, 0.0, false)
				t.Note("k=%d n=%d: decode failed: %v", k, n, err)
				continue
			}
			replayed := linecomm.ValidateStream(s, k, dec.Header().Source, dec.Rounds())
			replayMs := time.Since(start).Seconds() * 1e3
			match := dec.Err() == nil && reflect.DeepEqual(direct, replayed)

			t.AddRow(k, n, s.Order(), calls, nBytes,
				float64(nBytes)/float64(calls), encMs, replayMs, match)
		}
	}
	t.Note("Encode streams straight off ScheduleRounds (never materialised); replay feeds the decoder into ValidateStream and must reproduce the direct Result byte for byte.")
	return t
}

// MulticoreResult is the machine-readable form of RunMulticore, written
// as BENCH_multicore.json to track the worker pools' scaling trajectory.
type MulticoreResult struct {
	Experiment string         `json:"experiment"`
	HostCPUs   int            `json:"host_cpus"`
	GoVersion  string         `json:"go_version"`
	K          int            `json:"k"`
	N          int            `json:"n"`
	Runs       []MulticoreRun `json:"runs"`
}

// MulticoreRun is one GOMAXPROCS setting's measurements (best of the
// repeats, milliseconds).
type MulticoreRun struct {
	Procs      int     `json:"gomaxprocs"`
	GenMs      float64 `json:"generate_ms"`
	ValidateMs float64 `json:"validate_ms"`
	PipelineMs float64 `json:"pipeline_ms"`
}

// RunMulticore measures the PR 1 worker pools — parallel call-path
// construction (core.ScheduleRounds) and sharded structural validation
// (linecomm.ValidateStream) — at each GOMAXPROCS setting: generation
// alone, validation alone (over a pre-materialised schedule), and the
// fused streamed pipeline. Each number is the best of repeats runs.
// GOMAXPROCS is restored afterwards.
func RunMulticore(n int, procs []int, repeats int) (*Table, *MulticoreResult) {
	t := &Table{
		ID:    "EXP-MULTICORE",
		Title: fmt.Sprintf("Worker-pool scaling, n = %d (best of %d)", n, repeats),
		Headers: []string{"GOMAXPROCS", "gen ms", "validate ms", "pipeline ms",
			"pipeline speedup"},
	}
	res := &MulticoreResult{
		Experiment: "multicore",
		HostCPUs:   runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		K:          2,
		N:          n,
	}
	s, err := core.NewAuto(res.K, n)
	if err != nil {
		t.Note("construction failed: %v", err)
		return t, res
	}
	sched := s.BroadcastSchedule(0)
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	best := func(f func()) float64 {
		b := 0.0
		for r := 0; r < repeats; r++ {
			start := time.Now()
			f()
			ms := time.Since(start).Seconds() * 1e3
			if r == 0 || ms < b {
				b = ms
			}
		}
		return b
	}
	var base float64
	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		run := MulticoreRun{Procs: p}
		run.GenMs = best(func() {
			for range s.ScheduleRounds(0) {
			}
		})
		run.ValidateMs = best(func() {
			linecomm.ValidateStream(s, res.K, 0, sched.Stream())
		})
		run.PipelineMs = best(func() {
			linecomm.ValidateStream(s, res.K, 0, s.ScheduleRounds(0))
		})
		if base == 0 {
			base = run.PipelineMs
		}
		res.Runs = append(res.Runs, run)
		t.AddRow(p, run.GenMs, run.ValidateMs, run.PipelineMs,
			fmt.Sprintf("%.2fx", base/run.PipelineMs))
	}
	t.Note("host: %d CPU(s), %s; speedup is relative to the first GOMAXPROCS setting.",
		res.HostCPUs, res.GoVersion)
	return t, res
}

// WriteJSON writes the multicore result as indented JSON.
func (m *MulticoreResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
