package analysis

import (
	"bytes"
	"encoding/json"
	"io"
	"reflect"
	"runtime"
	"time"

	"sparsehypercube/internal/graph"
	"sparsehypercube/internal/linecomm"
	"sparsehypercube/internal/topo"
)

// The map-vs-CSR curve: validating the same BFS-tree broadcast on the
// same general graph through the two engines that can handle arbitrary
// topologies — the hash-map reference and the slot-indexed CSR engine.
// The graphs are the non-hypercube families the CSR substrate exists
// for: random regular graphs and random k-trees. Every size checks the
// acceptance invariant (reflect.DeepEqual plus byte-identical JSON
// Reports) before recording the timing, so the curve can never
// silently compare diverging validators.

// CSRResult is the machine-readable trajectory of the csr experiment.
type CSRResult struct {
	Experiment string   `json:"experiment"`
	HostCPUs   int      `json:"host_cpus"`
	GoVersion  string   `json:"go_version"`
	Runs       []CSRRun `json:"runs"`
}

// CSRRun is one (family, size) measurement: best-of-repeats wall time
// for each engine in milliseconds, and the engine-agreement invariant.
type CSRRun struct {
	Family  string  `json:"family"`
	N       int     `json:"n"`
	Edges   int     `json:"edges"`
	Rounds  int     `json:"rounds"`
	MapMs   float64 `json:"map_ms"`
	CsrMs   float64 `json:"csr_ms"`
	Speedup float64 `json:"speedup"`
	Match   bool    `json:"match"`
}

// bareNet strips a linecomm.GraphNetwork down to the bare Network
// interface, hiding its slot numbering so engine selection falls back
// to the map engine — the experiment's baseline.
type bareNet struct {
	g linecomm.GraphNetwork
}

func (b bareNet) Order() uint64            { return b.g.Order() }
func (b bareNet) HasEdge(u, v uint64) bool { return b.g.HasEdge(u, v) }

// RunCSR measures map-engine vs CSR-engine validation of intact
// BFS-tree broadcasts on random regular (d = 8) and random k-tree
// (k = 8) graphs of 2^10 .. 2^maxLog vertices, best of repeats.
func RunCSR(maxLog, repeats int) (*Table, *CSRResult) {
	t := &Table{
		ID:    "EXP-CSR",
		Title: "General-graph validation: map engine vs CSR edge-slot engine",
		Headers: []string{"family", "N", "m", "rounds", "map ms", "csr ms",
			"speedup", "match"},
	}
	res := &CSRResult{
		Experiment: "csr",
		HostCPUs:   runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
	for logN := 10; logN <= maxLog; logN += 2 {
		n := 1 << logN
		for _, fam := range []struct {
			name  string
			build func() *graph.Graph
		}{
			{"regular-8", func() *graph.Graph { return topo.RandomRegular(n, 8, int64(logN)) }},
			{"ktree-8", func() *graph.Graph { return topo.RandomKTree(n, 8, int64(logN)) }},
		} {
			g := fam.build()
			csrNet := linecomm.GraphNetwork{G: g}
			mapNet := bareNet{csrNet}
			// Materialise the rounds once so both engines time pure
			// validation of identical input, not schedule generation.
			var rounds []linecomm.Round
			for r := range linecomm.TreeRounds(g, 0) {
				rounds = append(rounds, linecomm.CloneRound(r))
			}
			replay := func(yield func(linecomm.Round) bool) {
				for _, r := range rounds {
					if !yield(r) {
						return
					}
				}
			}
			var mapRes, csrRes *linecomm.Result
			mapMs := timeBest(repeats, func() { mapRes = linecomm.ValidateStream(mapNet, 1, 0, replay) })
			csrMs := timeBest(repeats, func() { csrRes = linecomm.ValidateStream(csrNet, 1, 0, replay) })
			match := mapRes.Valid() && mapRes.Complete &&
				reflect.DeepEqual(mapRes, csrRes) && jsonEqual(mapRes, csrRes)
			run := CSRRun{
				Family: fam.name, N: n, Edges: g.NumEdges(), Rounds: len(rounds),
				MapMs: mapMs, CsrMs: csrMs, Speedup: mapMs / csrMs, Match: match,
			}
			res.Runs = append(res.Runs, run)
			t.AddRow(run.Family, run.N, run.Edges, run.Rounds, run.MapMs,
				run.CsrMs, run.Speedup, run.Match)
		}
	}
	t.Note("Same intact BFS-tree broadcast, same Network graph, same streamed rounds; the engines differ only in how per-round disjointness state is indexed (hash maps vs dense edge slots). match = DeepEqual + byte-identical JSON Reports.")
	return t, res
}

func timeBest(repeats int, fn func()) float64 {
	if repeats < 1 {
		repeats = 1
	}
	best := 0.0
	for i := 0; i < repeats; i++ {
		start := time.Now()
		fn()
		ms := time.Since(start).Seconds() * 1e3
		if i == 0 || ms < best {
			best = ms
		}
	}
	return best
}

func jsonEqual(a, b *linecomm.Result) bool {
	aj, err1 := json.Marshal(a)
	bj, err2 := json.Marshal(b)
	return err1 == nil && err2 == nil && bytes.Equal(aj, bj)
}

// WriteJSON writes the csr result as indented JSON.
func (c *CSRResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}
