package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"time"

	"sparsehypercube"
	"sparsehypercube/internal/planserver"
)

// ServeResult is the machine-readable form of RunServe, written as
// BENCH_serve.json: the verification service's throughput curve as
// concurrent sessions pile onto one cached plan.
type ServeResult struct {
	Experiment string     `json:"experiment"`
	HostCPUs   int        `json:"host_cpus"`
	GoVersion  string     `json:"go_version"`
	K          int        `json:"k"`
	N          int        `json:"n"`
	PlanBytes  int64      `json:"plan_bytes"`
	Runs       []ServeRun `json:"runs"`
}

// ServeRun is one concurrency level's measurements.
type ServeRun struct {
	Concurrency int     `json:"concurrency"`
	Requests    int     `json:"requests"`
	TotalMs     float64 `json:"total_ms"`
	MsPerReq    float64 `json:"ms_per_request"`
	ReqPerSec   float64 `json:"requests_per_sec"`
}

// RunServe measures the plan verification service end to end over HTTP:
// one (k = 2, n) indexed broadcast plan is uploaded once, then each
// concurrency level fires requests POST /v1/plans/{id}/verify requests
// across that many workers against the one cached copy. Every response
// is checked byte-identical to the first — the serving contract — while
// the table records the throughput curve.
func RunServe(n int, concurrencies []int, requests int) (*Table, *ServeResult) {
	t := &Table{
		ID:    "EXP-SERVE",
		Title: fmt.Sprintf("Plan verification service throughput, n = %d (%d requests per level)", n, requests),
		Headers: []string{"concurrency", "requests", "total ms", "ms/req",
			"req/s", "speedup"},
	}
	res := &ServeResult{
		Experiment: "serve",
		HostCPUs:   runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		K:          2,
		N:          n,
	}
	cube, err := sparsehypercube.New(res.K, n)
	if err != nil {
		t.Note("construction failed: %v", err)
		return t, res
	}
	var buf bytes.Buffer
	if _, err := cube.Plan(sparsehypercube.BroadcastScheme{Source: 0}).WriteIndexedTo(&buf); err != nil {
		t.Note("plan encoding failed: %v", err)
		return t, res
	}
	res.PlanBytes = int64(buf.Len())

	ts := httptest.NewServer(planserver.New().Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/plans", "application/octet-stream", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Note("upload failed: %v", err)
		return t, res
	}
	var info struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if err != nil || info.ID == "" {
		t.Note("upload response unusable: %v", err)
		return t, res
	}
	url := ts.URL + "/v1/plans/" + info.ID + "/verify"

	var canonical []byte
	var base float64
	for _, c := range concurrencies {
		if c < 1 {
			continue
		}
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			firstErr error
		)
		next := make(chan struct{}, requests)
		for i := 0; i < requests; i++ {
			next <- struct{}{}
		}
		close(next)
		start := time.Now()
		for w := 0; w < c; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for range next {
					resp, err := http.Post(url, "application/json", nil)
					if err == nil {
						var body []byte
						body, err = io.ReadAll(resp.Body)
						resp.Body.Close()
						if err == nil && resp.StatusCode != http.StatusOK {
							err = fmt.Errorf("status %d: %s", resp.StatusCode, body)
						}
						if err == nil {
							mu.Lock()
							if canonical == nil {
								canonical = body
							} else if !bytes.Equal(body, canonical) {
								err = fmt.Errorf("response diverged: %s", body)
							}
							mu.Unlock()
						}
					}
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
				}
			}()
		}
		wg.Wait()
		totalMs := time.Since(start).Seconds() * 1e3
		if firstErr != nil {
			t.Note("concurrency %d: %v", c, firstErr)
			continue
		}
		run := ServeRun{
			Concurrency: c,
			Requests:    requests,
			TotalMs:     totalMs,
			MsPerReq:    totalMs / float64(requests),
			ReqPerSec:   float64(requests) / (totalMs / 1e3),
		}
		if base == 0 {
			base = run.ReqPerSec
		}
		res.Runs = append(res.Runs, run)
		t.AddRow(c, requests, run.TotalMs, run.MsPerReq, run.ReqPerSec,
			fmt.Sprintf("%.2fx", run.ReqPerSec/base))
	}
	t.Note("host: %d CPU(s), %s; one cached %d-byte indexed plan (k = %d, n = %d), all responses byte-identical; speedup relative to the first concurrency level.",
		res.HostCPUs, res.GoVersion, res.PlanBytes, res.K, res.N)
	return t, res
}

// WriteJSON writes the serve result as indented JSON.
func (m *ServeResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
