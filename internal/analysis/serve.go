package analysis

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"sparsehypercube"
	"sparsehypercube/internal/planserver"
)

// ServeResult is the machine-readable form of RunServe, written as
// BENCH_serve.json: the verification service's throughput curve as
// concurrent sessions pile onto one cached plan.
type ServeResult struct {
	Experiment string     `json:"experiment"`
	HostCPUs   int        `json:"host_cpus"`
	GoVersion  string     `json:"go_version"`
	K          int        `json:"k"`
	N          int        `json:"n"`
	PlanBytes  int64      `json:"plan_bytes"`
	Runs       []ServeRun `json:"runs"`

	// Churn is the lifecycle-churn companion run, when recorded.
	Churn *ServeChurn `json:"churn,omitempty"`
}

// ServeRun is one concurrency level's measurements.
type ServeRun struct {
	Concurrency int     `json:"concurrency"`
	Requests    int     `json:"requests"`
	TotalMs     float64 `json:"total_ms"`
	MsPerReq    float64 `json:"ms_per_request"`
	ReqPerSec   float64 `json:"requests_per_sec"`
}

// ServeChurn is the lifecycle-churn companion measurement: a mixed
// upload/verify/delete workload against a cache budgeted below the
// working set, so the server spills, evicts, and re-admits plans
// continuously instead of serving one hot entry.
type ServeChurn struct {
	Workers   int     `json:"workers"`
	Ops       int     `json:"ops"`
	PlanPool  int     `json:"plan_pool"`
	MaxPlans  int     `json:"max_plans"`
	TotalMs   float64 `json:"total_ms"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Evictions int64   `json:"evictions"`
	Spills    int64   `json:"spills"`
}

// RunServe measures the plan verification service end to end over HTTP:
// one (k = 2, n) indexed broadcast plan is uploaded once, then each
// concurrency level fires requests POST /v1/plans/{id}/verify requests
// across that many workers against the one cached copy. Every response
// is checked byte-identical to the first — the serving contract — while
// the table records the throughput curve.
func RunServe(n int, concurrencies []int, requests int) (*Table, *ServeResult) {
	t := &Table{
		ID:    "EXP-SERVE",
		Title: fmt.Sprintf("Plan verification service throughput, n = %d (%d requests per level)", n, requests),
		Headers: []string{"concurrency", "requests", "total ms", "ms/req",
			"req/s", "speedup"},
	}
	res := &ServeResult{
		Experiment: "serve",
		HostCPUs:   runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		K:          2,
		N:          n,
	}
	cube, err := sparsehypercube.New(res.K, n)
	if err != nil {
		t.Note("construction failed: %v", err)
		return t, res
	}
	var buf bytes.Buffer
	if _, err := cube.Plan(sparsehypercube.BroadcastScheme{Source: 0}).WriteIndexedTo(&buf); err != nil {
		t.Note("plan encoding failed: %v", err)
		return t, res
	}
	res.PlanBytes = int64(buf.Len())

	ts := httptest.NewServer(planserver.New().Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/plans", "application/octet-stream", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Note("upload failed: %v", err)
		return t, res
	}
	var info struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if err != nil || info.ID == "" {
		t.Note("upload response unusable: %v", err)
		return t, res
	}
	url := ts.URL + "/v1/plans/" + info.ID + "/verify"

	var canonical []byte
	var base float64
	for _, c := range concurrencies {
		if c < 1 {
			continue
		}
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			firstErr error
		)
		next := make(chan struct{}, requests)
		for i := 0; i < requests; i++ {
			next <- struct{}{}
		}
		close(next)
		start := time.Now()
		for w := 0; w < c; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for range next {
					resp, err := http.Post(url, "application/json", nil)
					if err == nil {
						var body []byte
						body, err = io.ReadAll(resp.Body)
						resp.Body.Close()
						if err == nil && resp.StatusCode != http.StatusOK {
							err = fmt.Errorf("status %d: %s", resp.StatusCode, body)
						}
						if err == nil {
							mu.Lock()
							if canonical == nil {
								canonical = body
							} else if !bytes.Equal(body, canonical) {
								err = fmt.Errorf("response diverged: %s", body)
							}
							mu.Unlock()
						}
					}
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
				}
			}()
		}
		wg.Wait()
		totalMs := time.Since(start).Seconds() * 1e3
		if firstErr != nil {
			t.Note("concurrency %d: %v", c, firstErr)
			continue
		}
		run := ServeRun{
			Concurrency: c,
			Requests:    requests,
			TotalMs:     totalMs,
			MsPerReq:    totalMs / float64(requests),
			ReqPerSec:   float64(requests) / (totalMs / 1e3),
		}
		if base == 0 {
			base = run.ReqPerSec
		}
		res.Runs = append(res.Runs, run)
		t.AddRow(c, requests, run.TotalMs, run.MsPerReq, run.ReqPerSec,
			fmt.Sprintf("%.2fx", run.ReqPerSec/base))
	}
	t.Note("host: %d CPU(s), %s; one cached %d-byte indexed plan (k = %d, n = %d), all responses byte-identical; speedup relative to the first concurrency level.",
		res.HostCPUs, res.GoVersion, res.PlanBytes, res.K, res.N)
	return t, res
}

// RunServeChurn measures the service under lifecycle churn: workers
// uploading, verifying, and deleting a pool of plans against a spill
// directory and a cache budget smaller than the pool, so every
// operation contends with eviction and re-admission rather than one
// hot cached entry. Eviction and spill counts come from the server's
// own GET /metrics exposition — the measurement doubles as a smoke
// test of the operational surface.
func RunServeChurn(n, workers, opsPerWorker int) (*Table, *ServeChurn) {
	const poolSize, maxPlans = 4, 2
	t := &Table{
		ID:    "EXP-SERVE-CHURN",
		Title: fmt.Sprintf("Plan service under eviction churn, n = %d (%d workers x %d ops, %d plans through %d slots)", n, workers, opsPerWorker, poolSize, maxPlans),
		Headers: []string{"workers", "ops", "total ms", "ops/s",
			"evictions", "spills"},
	}
	res := &ServeChurn{Workers: workers, Ops: workers * opsPerWorker,
		PlanPool: poolSize, MaxPlans: maxPlans}

	cube, err := sparsehypercube.New(2, n)
	if err != nil {
		t.Note("construction failed: %v", err)
		return t, res
	}
	pool := make([][]byte, 0, poolSize)
	ids := make([]string, 0, poolSize)
	for src := 0; src < poolSize; src++ {
		var buf bytes.Buffer
		if _, err := cube.Plan(sparsehypercube.BroadcastScheme{Source: uint64(src)}).WriteIndexedTo(&buf); err != nil {
			t.Note("plan encoding failed: %v", err)
			return t, res
		}
		pool = append(pool, buf.Bytes())
		sum := sha256.Sum256(buf.Bytes())
		ids = append(ids, hex.EncodeToString(sum[:]))
	}

	dir, err := os.MkdirTemp("", "serve-churn-")
	if err != nil {
		t.Note("spill dir: %v", err)
		return t, res
	}
	defer os.RemoveAll(dir)
	srv := planserver.New(planserver.WithSpillDir(dir), planserver.WithMaxPlans(maxPlans))
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				pi := (w*opsPerWorker + i) % poolSize
				if i%5 == 4 {
					req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/plans/"+ids[pi], nil)
					resp, err := http.DefaultClient.Do(req)
					if err != nil {
						fail(err)
						return
					}
					resp.Body.Close()
					continue
				}
				resp, err := http.Post(ts.URL+"/v1/plans", "application/octet-stream", bytes.NewReader(pool[pi]))
				if err != nil {
					fail(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
					fail(fmt.Errorf("upload status %d", resp.StatusCode))
					return
				}
				resp, err = http.Post(ts.URL+"/v1/plans/"+ids[pi]+"/verify", "application/json", nil)
				if err != nil {
					fail(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
					fail(fmt.Errorf("verify status %d", resp.StatusCode))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	res.TotalMs = time.Since(start).Seconds() * 1e3
	if firstErr != nil {
		t.Note("churn failed: %v", firstErr)
		return t, res
	}
	res.OpsPerSec = float64(res.Ops) / (res.TotalMs / 1e3)

	res.Evictions, res.Spills, err = scrapeChurnCounters(ts.URL)
	if err != nil {
		t.Note("metrics scrape: %v", err)
		return t, res
	}
	t.AddRow(res.Workers, res.Ops, res.TotalMs, res.OpsPerSec, res.Evictions, res.Spills)
	t.Note("mixed upload+verify+delete workload; a %d-plan pool over a %d-entry budget keeps the LRU evicting throughout. Counters read back from the server's own /metrics exposition.",
		poolSize, maxPlans)
	return t, res
}

// scrapeChurnCounters reads the eviction and spill counters off the
// Prometheus text exposition.
func scrapeChurnCounters(base string) (evictions, spills int64, err error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("metrics status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, 0, err
	}
	for _, line := range strings.Split(string(body), "\n") {
		if v, ok := strings.CutPrefix(line, "planserver_plans_evicted_total "); ok {
			if evictions, err = strconv.ParseInt(v, 10, 64); err != nil {
				return 0, 0, err
			}
		}
		if v, ok := strings.CutPrefix(line, "planserver_plans_spilled_total "); ok {
			if spills, err = strconv.ParseInt(v, 10, 64); err != nil {
				return 0, 0, err
			}
		}
	}
	return evictions, spills, nil
}

// WriteJSON writes the serve result as indented JSON.
func (m *ServeResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
