package analysis

import (
	"fmt"

	"sparsehypercube/internal/broadcast"
	"sparsehypercube/internal/core"
	"sparsehypercube/internal/gossip"
	"sparsehypercube/internal/graph"
	"sparsehypercube/internal/linecomm"
	"sparsehypercube/internal/topo"
	"sparsehypercube/internal/treecast"
)

// RunDiameter checks the paper's footnote 1 (EXP-DIAM): if G is a
// k-mlbg then diam(G) <= k*ceil(log2 |V|), because any two vertices are
// linked by at most ceil(log2 |V|) hops of k-line communication. The
// table reports measured diameters of constructed graphs against that
// bound (and against Q_n's diameter n).
func RunDiameter() *Table {
	t := &Table{
		ID:      "EXP-DIAM",
		Title:   "Footnote 1: diam(G) <= k*ceil(log2 N) for k-mlbgs",
		Headers: []string{"construction", "k", "diam", "k*n bound", "diam(Q_n) = n", "within bound"},
	}
	cases := []core.Params{
		core.BaseParams(8, 2),
		core.BaseParams(10, 3),
		core.BaseParams(12, 4),
		core.BaseParams(14, 4),
		core.RecParams(10, 5, 2),
		core.RecParams(12, 5, 2),
		{K: 4, Dims: []int{2, 4, 7, 12}},
		{K: 5, Dims: []int{2, 3, 5, 8, 12}},
	}
	for _, p := range cases {
		s, err := core.New(p)
		if err != nil {
			continue
		}
		g, err := s.Graph()
		if err != nil {
			continue
		}
		d := graph.Diameter(g)
		bound := p.K * s.N()
		t.AddRow(p.String(), p.K, d, bound, s.N(), d <= bound)
	}
	t.Note("Measured diameters sit far below the footnote's generic bound — the base subcube keeps routes short.")
	return t
}

// RunGossip reports the §5 gossip extension (EXP-GOSSIP): the classic
// dimension-exchange on Q_n is time-optimal at full degree; gather-scatter
// on sparse hypercubes completes in 2n rounds at O(n^(1/k)) degree.
// Whether n rounds are possible at sub-n degree is the paper's open
// problem.
func RunGossip() *Table {
	t := &Table{
		ID:    "EXP-GOSSIP",
		Title: "SS5 extension: k-line gossip (all-to-all)",
		Headers: []string{"scheme", "graph", "Delta", "k", "rounds",
			"lower bound", "complete"},
	}
	for _, n := range []int{6, 8, 10} {
		sched, err := gossip.HypercubeExchange(n)
		if err != nil {
			continue
		}
		net := linecomm.GraphNetwork{G: topo.Hypercube(n)}
		res := gossip.Validate(net, 1, sched)
		t.AddRow("dimension exchange", fmt.Sprintf("Q_%d", n), n, 1, res.Rounds,
			gossip.MinimumRounds(1<<uint(n)), res.Valid() && res.Complete)
	}
	cases := []core.Params{
		core.BaseParams(8, 3),
		core.BaseParams(10, 3),
		core.RecParams(11, 5, 2),
	}
	for _, p := range cases {
		s, err := core.New(p)
		if err != nil {
			continue
		}
		sched := gossip.GatherScatter(s, 0)
		res := gossip.Validate(s, p.K, sched)
		t.AddRow("gather-scatter", p.String(), s.MaxDegree(), p.K, res.Rounds,
			gossip.MinimumRounds(s.Order()), res.Valid() && res.Complete)
	}
	t.Note("Minimum-time (n-round) k-line gossip at o(n) degree remains open, as the paper anticipates.")
	return t
}

// RunTreecast reports the k = N-1 end of the scale (EXP-TREE): the
// generic tree line-broadcast planner achieving ceil(log2 N) on standard
// tree families — the paper's §2 background fact "all connected graphs
// are in G_{N-1}" made executable.
func RunTreecast() *Table {
	t := &Table{
		ID:      "EXP-TREE",
		Title:   "SS2 background: line broadcast on trees (k unbounded) via territory splitting",
		Headers: []string{"tree", "N", "sources", "rounds", "ceil(log2 N)", "minimum"},
	}
	type tc struct {
		name string
		g    *graph.Graph
	}
	cases := []tc{
		{"P_16", topo.Path(16)},
		{"P_31", topo.Path(31)},
		{"K_{1,15}", topo.Star(16)},
		{"CBT(5)", topo.CompleteBinaryTree(5)},
		{"CBT(7)", topo.CompleteBinaryTree(7)},
		{"T_4 (tri-tree)", topo.TriTree(4)},
		{"T_6 (tri-tree)", topo.TriTree(6)},
		{"B_6 (binomial)", topo.BinomialTree(6)},
	}
	for _, c := range cases {
		p, err := treecast.New(c.g)
		if err != nil {
			continue
		}
		want := p.MinimumRounds()
		sources := allOrSampledSources(c.g.NumVertices(), 24)
		worst := 0
		ok := true
		for _, src := range sources {
			sched, err := p.Schedule(src)
			if err != nil {
				ok = false
				break
			}
			res := linecomm.Validate(linecomm.GraphNetwork{G: c.g}, c.g.NumVertices()-1, sched)
			if !res.Valid() || !res.Complete {
				ok = false
			}
			if len(sched.Rounds) > worst {
				worst = len(sched.Rounds)
			}
		}
		t.AddRow(c.name, c.g.NumVertices(), len(sources), worst, want, ok && worst == want)
	}
	t.Note("The split family can lose a round on adversarial spiders (see treecast tests); the exhaustive checker certifies the true optimum there.")
	return t
}

// RunMbg tabulates the §2 class-G_1 catalogue (EXP-MBG): classic minimum
// broadcast graphs certified by the exhaustive checker.
func RunMbg() *Table {
	t := &Table{
		ID:      "EXP-MBG",
		Title:   "SS2 background: classic minimum broadcast graphs (class G_1)",
		Headers: []string{"N", "graph", "B(N) edges", "1-mlbg (exhaustive)"},
	}
	names := map[int]string{
		2: "K_2", 3: "P_3", 4: "C_4", 5: "C_5", 6: "C_6",
		7: "C_6 + center", 8: "Q_3", 16: "Q_4",
	}
	for _, n := range []int{2, 3, 4, 5, 6, 7, 8, 16} {
		g, err := broadcast.MinimumBroadcastGraph(n)
		if err != nil {
			continue
		}
		ok, _, err := broadcast.IsKMLBG(g, 1)
		if err != nil {
			ok = false
		}
		t.AddRow(n, names[n], g.NumEdges(), ok)
	}
	t.Note("Edge-minimality (dropping any edge breaks the property) is verified in broadcast.TestCatalogueEdgeMinimal.")
	return t
}

// RunPermZoo extends the topology context with the permutation networks
// the introduction cites (EXP-PERMZOO).
func RunPermZoo() *Table {
	t := &Table{
		ID:      "EXP-PERMZOO",
		Title:   "Permutation networks cited in SS1: star and pancake graphs",
		Headers: []string{"graph", "N", "Delta", "diameter", "edges"},
	}
	for n := 3; n <= 6; n++ {
		g := topo.StarGraph(n)
		t.AddRow(fmt.Sprintf("star S_%d", n), g.NumVertices(), g.MaxDegree(),
			graph.Diameter(g), g.NumEdges())
	}
	for n := 3; n <= 6; n++ {
		g := topo.Pancake(n)
		t.AddRow(fmt.Sprintf("pancake P_%d", n), g.NumVertices(), g.MaxDegree(),
			graph.Diameter(g), g.NumEdges())
	}
	t.Note("Sub-logarithmic degree at factorial order — but neither is a k-mlbg for small k; the sparse hypercube targets exactly that property.")
	return t
}
