package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"time"

	"sparsehypercube"
)

// MmapResult is the machine-readable form of RunMmap, written as
// BENCH_mmap.json: the parallel round-range verification curve over one
// memory-mapped indexed plan, W = 1..8.
type MmapResult struct {
	Experiment string    `json:"experiment"`
	HostCPUs   int       `json:"host_cpus"`
	GoVersion  string    `json:"go_version"`
	K          int       `json:"k"`
	N          int       `json:"n"`
	PlanBytes  int64     `json:"plan_bytes"`
	Runs       []MmapRun `json:"runs"`
}

// MmapRun is one worker count's measurements (best of the repeats,
// milliseconds). Match records the acceptance invariant: the Report at
// this worker count is reflect.DeepEqual to the serial one.
type MmapRun struct {
	Workers  int     `json:"workers"`
	VerifyMs float64 `json:"verify_ms"`
	Match    bool    `json:"match"`
}

// RunMmap measures mmap-backed parallel plan verification end to end:
// one (k = 2, n) indexed broadcast plan is written to disk once, then
// for each worker count W the file is opened through OpenPlanFile (a
// read-only memory mapping where the platform has one) and verified by
// the round-range engine. Every Report is checked DeepEqual against the
// serial W = 1 pass — the byte-identity contract — while the table
// records the scaling curve.
func RunMmap(n int, workers []int, repeats int) (*Table, *MmapResult) {
	t := &Table{
		ID:      "EXP-MMAP",
		Title:   fmt.Sprintf("mmap'd parallel round-range verification, n = %d (best of %d)", n, repeats),
		Headers: []string{"workers", "verify ms", "speedup", "match"},
	}
	res := &MmapResult{
		Experiment: "mmap",
		HostCPUs:   runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		K:          2,
		N:          n,
	}
	cube, err := sparsehypercube.New(res.K, n)
	if err != nil {
		t.Note("construction failed: %v", err)
		return t, res
	}
	dir, err := os.MkdirTemp("", "mmapbench")
	if err != nil {
		t.Note("temp dir failed: %v", err)
		return t, res
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "plan.shcp")
	f, err := os.Create(path)
	if err != nil {
		t.Note("create failed: %v", err)
		return t, res
	}
	res.PlanBytes, err = cube.Plan(sparsehypercube.BroadcastScheme{Source: 0}).WriteIndexedTo(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Note("plan encoding failed: %v", err)
		return t, res
	}

	var serial sparsehypercube.Report
	haveSerial := false
	var base float64
	for _, w := range workers {
		if w < 1 {
			continue
		}
		plan, err := sparsehypercube.OpenPlanFile(path, sparsehypercube.WithVerifyWorkers(w))
		if err != nil {
			t.Note("open (W=%d) failed: %v", w, err)
			continue
		}
		run := MmapRun{Workers: w}
		var rep sparsehypercube.Report
		for r := 0; r < repeats; r++ {
			start := time.Now()
			rep = plan.Verify()
			ms := time.Since(start).Seconds() * 1e3
			if r == 0 || ms < run.VerifyMs {
				run.VerifyMs = ms
			}
		}
		plan.Close()
		// The baseline is strictly the W = 1 pass; without it, match
		// cannot be claimed for any parallel run. The baseline row's own
		// match reduces to its Report being valid — the cross-check is
		// only meaningful for w > 1.
		if w == 1 {
			serial, haveSerial = rep, true
		}
		run.Match = haveSerial && rep.Valid && reflect.DeepEqual(rep, serial)
		if base == 0 {
			base = run.VerifyMs
		}
		res.Runs = append(res.Runs, run)
		t.AddRow(w, run.VerifyMs, fmt.Sprintf("%.2fx", base/run.VerifyMs), run.Match)
	}
	t.Note("host: %d CPU(s), %s; one %d-byte indexed plan (k = %d, n = %d) on disk, opened memory-mapped per worker count; match = Report valid and DeepEqual to the serial W = 1 baseline (for the baseline row itself this reduces to the Report being valid); speedup relative to the first run.",
		res.HostCPUs, res.GoVersion, res.PlanBytes, res.K, res.N)
	return t, res
}

// WriteJSON writes the mmap result as indented JSON.
func (m *MmapResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
