package analysis

import (
	"time"

	"sparsehypercube/internal/core"
	"sparsehypercube/internal/linecomm"
)

// RunStream exercises the streaming engine end to end: per (k, n) it
// generates the broadcast scheme round by round (core.ScheduleRounds)
// and feeds it straight into the round-at-a-time validator
// (linecomm.ValidateStream), so the schedule is never materialised. The
// table certifies minimum time and the Theorem 4/6 call-length bound at
// sizes the materialised path only reaches uncomfortably, and records
// wall time as the perf-trajectory quantity.
func RunStream(nMax int) *Table {
	t := &Table{
		ID:    "EXP-STREAM",
		Title: "Streaming generate+validate pipeline (Theorems 4/6 at scale)",
		Headers: []string{"k", "n", "N", "calls", "rounds", "maxlen",
			"valid", "min-time", "ms"},
	}
	for n := 8; n <= nMax; n += 2 {
		for _, k := range []int{2, 3} {
			p, err := core.AutoParams(k, n)
			if err != nil {
				continue
			}
			s, err := core.New(p)
			if err != nil {
				continue
			}
			calls := 0
			counted := func(yield func(linecomm.Round) bool) {
				for r := range s.ScheduleRounds(0) {
					calls += len(r)
					if !yield(r) {
						return
					}
				}
			}
			start := time.Now()
			res := linecomm.ValidateStream(s, k, 0, counted)
			elapsed := time.Since(start)
			t.AddRow(k, n, s.Order(), calls, len(res.InformedPerRound),
				res.MaxCallLength, res.Valid(), res.MinimumTime,
				elapsed.Seconds()*1e3)
		}
	}
	t.Note("Schedule is generated and validated round by round: peak memory is the frontier (O(N) words), not the O(N*n*k)-word schedule.")
	return t
}
