package analysis

import (
	"time"

	"sparsehypercube/internal/core"
	"sparsehypercube/internal/linecomm"
)

// RunGossipStream exercises the streamed gossip engine end to end
// (EXP-GOSSIP-STREAM): per n it generates the 2n-round gather-scatter
// scheme round by round (core.ScheduleGossipRounds, k = 2) and feeds it
// straight into the streamed telephone-model validator
// (linecomm.ValidateGossipStream), so the doubled schedule is never
// materialised. While order x order stays under the cell cap (n <= 20)
// every vertex is a token source — the paper's full gossip problem;
// beyond it the run switches to multi-source dissemination over 1024
// evenly spaced sources, which the sharded simulation still checks
// exactly. Wall time is the perf-trajectory quantity.
func RunGossipStream(nMin, nMax int) *Table {
	t := &Table{
		ID:    "EXP-GOSSIP-STREAM",
		Title: "Streamed gather-scatter gossip pipeline (SS5 at the n >= 18 regime)",
		Headers: []string{"k", "n", "N", "sources", "calls", "rounds",
			"maxlen", "valid", "complete", "min-known", "ms"},
	}
	const k = 2
	for n := nMin; n <= nMax; n++ {
		p, err := core.AutoParams(k, n)
		if err != nil {
			continue
		}
		s, err := core.New(p)
		if err != nil {
			continue
		}
		order := s.Order()
		if order > linecomm.MaxGossipSimulateVertices {
			t.Note("stopped at n = %d: order beyond the %d-vertex simulation cap", n-1, linecomm.MaxGossipSimulateVertices)
			break
		}
		var sources []uint64
		sourceLabel := "all"
		if order > linecomm.MaxGossipSimulateCells/order {
			const m = 1024
			sources = make([]uint64, 0, m)
			for i := uint64(0); i < m; i++ {
				sources = append(sources, i*(order/m))
			}
			sourceLabel = "1024 sampled"
		}
		calls := 0
		counted := func(yield func(linecomm.Round) bool) {
			for r := range s.ScheduleGossipRounds(0) {
				calls += len(r)
				if !yield(r) {
					return
				}
			}
		}
		start := time.Now()
		res := linecomm.ValidateMultiSourceStream(s, k, sources, counted)
		elapsed := time.Since(start)
		t.AddRow(k, n, order, sourceLabel, calls, res.Rounds, res.MaxCallLength,
			res.Valid(), res.Complete, res.MinKnown, elapsed.Seconds()*1e3)
	}
	t.Note("Rounds are rebuilt from the precomputed broadcast frontier and validated as they stream; knowledge is tracked in token shards (order x tokens <= %d cells), so the doubled schedule never exists in memory.", linecomm.MaxGossipSimulateCells)
	return t
}
