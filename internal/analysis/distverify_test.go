package analysis

import "testing"

// TestRunDistVerifyMatches is a correctness smoke, not a timing run: at
// a small dimension every fleet size's stitched Report must match the
// local baseline (the experiment's whole point — the timing columns are
// only meaningful on a real fleet).
func TestRunDistVerifyMatches(t *testing.T) {
	tb, res := RunDistVerify(8, []int{1, 2}, 1)
	if len(res.Runs) != 2 {
		t.Fatalf("expected 2 runs:\n%s", tb.Markdown())
	}
	for _, run := range res.Runs {
		if !run.Match {
			t.Errorf("fleet of %d diverged from the local baseline:\n%s", run.Workers, tb.Markdown())
		}
	}
}
