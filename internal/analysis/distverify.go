package analysis

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"reflect"
	"runtime"
	"time"

	"sparsehypercube"
	"sparsehypercube/internal/distverify"
	"sparsehypercube/internal/planserver"
)

// DistVerifyResult is the machine-readable form of RunDistVerify,
// written as BENCH_distverify.json: the distributed round-range
// verification curve over an httptest planserver fleet, plus the local
// single-process baseline the stitched Reports are held identical to.
type DistVerifyResult struct {
	Experiment string          `json:"experiment"`
	HostCPUs   int             `json:"host_cpus"`
	GoVersion  string          `json:"go_version"`
	K          int             `json:"k"`
	N          int             `json:"n"`
	PlanBytes  int64           `json:"plan_bytes"`
	LocalMs    float64         `json:"local_ms"`
	Runs       []DistVerifyRun `json:"runs"`
}

// DistVerifyRun is one fleet size's measurements (best of the repeats,
// milliseconds). Match records the acceptance invariant: the stitched
// Report at this fleet size is reflect.DeepEqual — and JSON
// byte-identical — to the local single-process one.
type DistVerifyRun struct {
	Workers  int     `json:"workers"`
	VerifyMs float64 `json:"verify_ms"`
	Match    bool    `json:"match"`
}

// RunDistVerify measures distributed plan verification end to end: one
// (k = 2, n) indexed broadcast plan is encoded once and verified
// locally for the baseline Report, then for each fleet size F an
// httptest fleet of F planserver workers is stood up and a distverify
// coordinator (with plan upload, so ranges travel by content-hash id)
// verifies the same bytes through them. Every stitched Report is
// checked DeepEqual and JSON byte-identical against the local baseline
// — the wire contract — while the table records the curve. On one host
// the fleet shares the local CPUs, so the curve shows coordination
// overhead, not cluster speedup; the match column is the point.
func RunDistVerify(n int, fleets []int, repeats int) (*Table, *DistVerifyResult) {
	t := &Table{
		ID:      "EXP-DISTVERIFY",
		Title:   fmt.Sprintf("distributed round-range verification, n = %d (best of %d)", n, repeats),
		Headers: []string{"workers", "verify ms", "vs local", "match"},
	}
	res := &DistVerifyResult{
		Experiment: "distverify",
		HostCPUs:   runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		K:          2,
		N:          n,
	}
	cube, err := sparsehypercube.New(res.K, n)
	if err != nil {
		t.Note("construction failed: %v", err)
		return t, res
	}
	var buf bytes.Buffer
	if _, err := cube.Plan(sparsehypercube.BroadcastScheme{Source: 0}).WriteIndexedTo(&buf); err != nil {
		t.Note("plan encoding failed: %v", err)
		return t, res
	}
	data := buf.Bytes()
	res.PlanBytes = int64(len(data))

	plan, err := sparsehypercube.ReadPlanAt(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Note("plan open failed: %v", err)
		return t, res
	}
	var local sparsehypercube.Report
	for r := 0; r < repeats; r++ {
		start := time.Now()
		local = plan.Verify()
		ms := time.Since(start).Seconds() * 1e3
		if r == 0 || ms < res.LocalMs {
			res.LocalMs = ms
		}
	}
	localJSON, err := json.Marshal(local)
	if err != nil {
		t.Note("baseline encoding failed: %v", err)
		return t, res
	}

	for _, f := range fleets {
		if f < 1 {
			continue
		}
		servers := make([]*httptest.Server, f)
		urls := make([]string, f)
		for i := range servers {
			servers[i] = httptest.NewServer(planserver.New().Handler())
			urls[i] = servers[i].URL
		}
		c, err := distverify.New(urls, distverify.WithPlanUpload())
		if err != nil {
			t.Note("coordinator (F=%d) failed: %v", f, err)
			continue
		}
		run := DistVerifyRun{Workers: f}
		var rep sparsehypercube.Report
		var verr error
		for r := 0; r < repeats; r++ {
			start := time.Now()
			rep, verr = c.Verify(context.Background(), data)
			ms := time.Since(start).Seconds() * 1e3
			if verr != nil {
				break
			}
			if r == 0 || ms < run.VerifyMs {
				run.VerifyMs = ms
			}
		}
		for _, s := range servers {
			s.Close()
		}
		if verr != nil {
			t.Note("verify (F=%d) failed: %v", f, verr)
			continue
		}
		repJSON, err := json.Marshal(rep)
		if err != nil {
			t.Note("report encoding (F=%d) failed: %v", f, err)
			continue
		}
		run.Match = rep.Valid && reflect.DeepEqual(rep, local) && string(repJSON) == string(localJSON)
		res.Runs = append(res.Runs, run)
		t.AddRow(f, run.VerifyMs, fmt.Sprintf("%.2fx", res.LocalMs/run.VerifyMs), run.Match)
	}
	t.Note("host: %d CPU(s), %s; one %d-byte indexed plan (k = %d, n = %d) uploaded by content hash to an httptest fleet sharing the local CPUs; local single-process baseline %.1f ms; match = stitched Report valid, DeepEqual and JSON byte-identical to the local baseline.",
		res.HostCPUs, res.GoVersion, res.PlanBytes, res.K, res.N, res.LocalMs)
	return t, res
}

// WriteJSON writes the distverify result as indented JSON.
func (m *DistVerifyResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
