// Package analysis regenerates every evaluation artifact of the paper —
// Figures 1–5, Examples 1–6, and the bound tables behind Theorems 1–7,
// Lemmas 1–2 and Corollaries 1–2 — as machine-checked tables. Each
// Run* function corresponds to one experiment id in DESIGN.md and is
// surfaced through cmd/benchtab.
package analysis

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string // experiment id, e.g. "EXP-THM5"
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string // free-form commentary below the table
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case bool:
			if v {
				row[i] = "yes"
			} else {
				row[i] = "NO"
			}
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a commentary line.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		b.WriteByte('|')
		for i, c := range cells {
			fmt.Fprintf(&b, " %-*s |", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	b.WriteByte('|')
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteByte('|')
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	return b.String()
}

// TSV renders the table as tab-separated values (headers first).
func (t *Table) TSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, "\t"))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}

// AllOK reports whether every cell in the named column reads "yes"
// (used by tests to assert inequality columns hold everywhere).
func (t *Table) AllOK(column string) bool {
	idx := -1
	for i, h := range t.Headers {
		if h == column {
			idx = i
		}
	}
	if idx < 0 {
		return false
	}
	for _, row := range t.Rows {
		if row[idx] != "yes" {
			return false
		}
	}
	return len(t.Rows) > 0
}
