package analysis

import (
	"strconv"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Headers: []string{"a", "bb"}}
	tb.AddRow(1, true)
	tb.AddRow("x", false)
	tb.AddRow(2.5, "z")
	tb.Note("note %d", 7)
	md := tb.Markdown()
	for _, want := range []string{"### X — demo", "| a", "| bb", "yes", "NO", "2.500", "> note 7"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	tsv := tb.TSV()
	if !strings.HasPrefix(tsv, "a\tbb\n1\tyes\n") {
		t.Errorf("tsv = %q", tsv)
	}
}

func TestAllOK(t *testing.T) {
	tb := &Table{Headers: []string{"v", "ok"}}
	tb.AddRow(1, true)
	tb.AddRow(2, true)
	if !tb.AllOK("ok") {
		t.Error("AllOK should hold")
	}
	tb.AddRow(3, false)
	if tb.AllOK("ok") {
		t.Error("AllOK should fail with a NO row")
	}
	if tb.AllOK("missing") {
		t.Error("AllOK on missing column should fail")
	}
	empty := &Table{Headers: []string{"ok"}}
	if empty.AllOK("ok") {
		t.Error("AllOK on empty table should fail")
	}
}

func TestRunFig1AllValid(t *testing.T) {
	tb := RunFig1(4)
	if !tb.AllOK("all-valid") {
		t.Fatalf("Fig. 1 reproduction has failures:\n%s", tb.Markdown())
	}
	if len(tb.Rows) != 4 {
		t.Errorf("expected 4 rows, got %d", len(tb.Rows))
	}
	// h = 3 row must read N = 22, Delta = 3, diam = 6.
	row := tb.Rows[2]
	if row[1] != "22" || row[2] != "3" || row[3] != "6" {
		t.Errorf("h=3 row wrong: %v", row)
	}
}

func TestRunFig2Fig3EdgeCounts(t *testing.T) {
	if got := len(RunFig2().Rows); got != 16 {
		t.Errorf("Fig. 2: %d Rule-1 edges, want 16", got)
	}
	f3 := RunFig3()
	if got := len(f3.Rows); got != 24 {
		t.Errorf("Fig. 3: %d edges, want 24", got)
	}
	rule2 := 0
	for _, row := range f3.Rows {
		if row[2] == "2" {
			rule2++
		}
	}
	if rule2 != 8 {
		t.Errorf("Fig. 3: %d Rule-2 edges, want 8 (one per vertex pair per high dim)", rule2)
	}
}

func TestRunFig4(t *testing.T) {
	tb, formatted := RunFig4()
	if len(tb.Rows) != 4 {
		t.Fatalf("Fig. 4: %d rounds", len(tb.Rows))
	}
	// Informed counts must double: 2, 4, 8, 16.
	want := []string{"2", "4", "8", "16"}
	for i, row := range tb.Rows {
		if row[3] != want[i] {
			t.Errorf("round %d informed = %s, want %s", i+1, row[3], want[i])
		}
	}
	if !strings.Contains(formatted, "broadcast from 0000 in 4 rounds") {
		t.Errorf("formatted schedule wrong:\n%s", formatted)
	}
}

func TestRunFig5(t *testing.T) {
	out := RunFig5()
	for _, want := range []string{"Construct(3, [7 4 2])", "S_1 = {7,6}", "S_2 = {5}", "base region: dimensions 1..2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig. 5 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunEx1(t *testing.T) {
	tb := RunEx1()
	if !tb.AllOK("optimal") {
		t.Fatalf("Example 1 labelings not optimal:\n%s", tb.Markdown())
	}
}

func TestRunEx3(t *testing.T) {
	tb := RunEx3()
	md := tb.Markdown()
	for _, want := range []string{"| Delta(G_{15,3})", "| 6 ", "| 32768"} {
		if !strings.Contains(md, want) {
			t.Errorf("Example 3 table missing %q:\n%s", want, md)
		}
	}
}

func TestRunEx6(t *testing.T) {
	tb := RunEx6()
	md := tb.Markdown()
	if !strings.Contains(md, "0000001 0000010 0000100 0100000 1000000") {
		t.Errorf("Example 6 adjacency wrong:\n%s", md)
	}
}

func TestRunBoundTables(t *testing.T) {
	if tb := RunLowerBounds(24); !tb.AllOK("LB <= Delta") {
		t.Errorf("lower-bound table violated:\n%s", tb.Markdown())
	}
	if tb := RunThm5(32); !tb.AllOK("Delta <= bound") {
		t.Errorf("Theorem 5 table violated:\n%s", tb.Markdown())
	}
	if tb := RunThm7(28); !tb.AllOK("Delta <= bound") {
		t.Errorf("Theorem 7 table violated:\n%s", tb.Markdown())
	}
	if tb := RunCor1(32); !tb.AllOK("Delta <= bound") {
		t.Errorf("Corollary 1 table violated:\n%s", tb.Markdown())
	}
	if tb := RunLem2(12); !tb.AllOK("in-range") {
		t.Errorf("Lemma 2 table violated:\n%s", tb.Markdown())
	}
}

func TestRunSchemeTables(t *testing.T) {
	if tb := RunThm4(7); !tb.AllOK("all-valid") {
		t.Errorf("Theorem 4 sweep failed:\n%s", tb.Markdown())
	}
	if tb := RunThm6(); !tb.AllOK("all-valid") {
		t.Errorf("Theorem 6 sweep failed:\n%s", tb.Markdown())
	}
}

func TestRunCor2RatioBounded(t *testing.T) {
	tb := RunCor2(32)
	for _, row := range tb.Rows {
		k := row[0]
		var coeff float64
		switch k {
		case "2":
			coeff = 3
		case "3":
			coeff = 5
		case "4":
			coeff = 7
		}
		ratio, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("bad ratio cell %q", row[4])
		}
		if ratio > coeff {
			t.Errorf("k=%s: ratio %f exceeds 2k-1 = %f", k, ratio, coeff)
		}
	}
}

func TestRunZoo(t *testing.T) {
	tb := RunZoo()
	if len(tb.Rows) < 7 {
		t.Errorf("zoo table too small:\n%s", tb.Markdown())
	}
}

func TestRunAblation(t *testing.T) {
	tb := RunAblation(4)
	if len(tb.Rows) != 6 {
		t.Fatalf("ablation rows = %d", len(tb.Rows))
	}
	// At the spanning-tree budget (15 edges) failure must be total: a
	// 16-vertex tree cannot 2-line broadcast in 4 rounds... (max degree 4
	// spanning trees of Q_4 lack the reach). At 32 edges (all of Q_4),
	// every graph is Q_4 itself, a 1-mlbg, hence 2-mlbg.
	last := tb.Rows[len(tb.Rows)-1]
	if last[3] != "0.000" {
		t.Errorf("full Q_4 budget should never fail: %v", last)
	}
}

func TestRunCongestion(t *testing.T) {
	tb := RunCongestion()
	if len(tb.Rows) < 3 {
		t.Fatalf("congestion rows = %d", len(tb.Rows))
	}
}
