package core

import (
	"iter"
	"runtime"
	"sync"

	"sparsehypercube/internal/linecomm"
)

// streamChunk is the minimum number of call paths worth handing to a
// worker goroutine; smaller frontiers are built serially.
const streamChunk = 2048

// forChunks fans body out over [0, f) in contiguous ascending chunks
// across a GOMAXPROCS-bounded worker pool, running serially when f is
// below streamChunk. Every parallel stage of the schedule engines
// (broadcast rounds, the gossip frontier, gossip rounds) shares this
// fan-out, so worker sizing is tuned in one place.
func forChunks(f int, body func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if w := (f + streamChunk - 1) / streamChunk; w < workers {
		workers = w
	}
	if workers <= 1 {
		body(0, f)
		return
	}
	chunk := (f + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, f)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// AppendCallPath appends CallPath(u, d) onto dst and returns the extended
// slice. It is the allocation-free form of CallPath used by the streaming
// schedule generator, which carves paths out of a per-round arena.
func (s *SparseHypercube) AppendCallPath(dst []uint64, u uint64, d int) []uint64 {
	s.checkDim(d)
	s.checkVertex(u)
	return s.extendPath(append(dst, u), d)
}

// ScheduleRounds generates the same broadcast scheme as BroadcastSchedule
// but as a round iterator: the round for dimension d is built from the
// informed-set frontier and yielded immediately, so peak memory is
// O(frontier) — the current round's calls plus the informed vertex list —
// instead of the full schedule's O(N * n * k) words. Call paths within a
// round are independent, so they are constructed in parallel across a
// worker pool sized by GOMAXPROCS.
//
// The yielded round and every call path inside it are only valid until
// the next iteration step: the engine reuses their backing storage. Use
// linecomm.CloneRound to retain a round. Feed the iterator to
// linecomm.ValidateStream to machine-check Theorems 4 and 6 without ever
// materialising the schedule.
func (s *SparseHypercube) ScheduleRounds(source uint64) iter.Seq[linecomm.Round] {
	s.checkVertex(source)
	return func(yield func(linecomm.Round) bool) {
		maxPath := s.params.K + 1
		informed := make([]uint64, 1, 2)
		informed[0] = source
		var (
			round linecomm.Round
			arena []uint64
		)
		for d := s.n; d >= 1; d-- {
			f := len(informed)
			if cap(round) < f {
				round = make(linecomm.Round, f)
			}
			round = round[:f]
			if cap(arena) < f*maxPath {
				arena = make([]uint64, f*maxPath)
			}
			// Grow the frontier in place: callers occupy [0, f), their
			// receivers land in [f, 2f) (each informed vertex places
			// exactly one call, and in a valid scheme every receiver is
			// new, so the informed set doubles each round).
			if cap(informed) < 2*f {
				grown := make([]uint64, 2*f)
				copy(grown, informed)
				informed = grown
			} else {
				informed = informed[:2*f]
			}
			s.buildRound(d, informed[:f], informed[f:2*f], round, arena, maxPath)
			if !yield(round) {
				return
			}
		}
	}
}

// buildRound fills round[i] with callers[i]'s call across dimension d and
// records its receiver, fanning the frontier out over a worker pool.
func (s *SparseHypercube) buildRound(d int, callers, receivers []uint64, round linecomm.Round, arena []uint64, maxPath int) {
	forChunks(len(callers), func(lo, hi int) {
		s.buildRoundChunk(d, callers, receivers, round, arena, maxPath, lo, hi)
	})
}

// buildRoundChunk is the worker body for callers [lo, hi). Each call's
// path is carved from its own fixed arena slot (capacity maxPath >= the
// paper's k+1 length bound), so path construction never allocates.
func (s *SparseHypercube) buildRoundChunk(d int, callers, receivers []uint64, round linecomm.Round, arena []uint64, maxPath, lo, hi int) {
	if s.dimLevel[d] == 1 {
		// Base dimension: the edge is always present, so every call in
		// the round is the direct hop u -> u^2^(d-1). These are the low
		// dimensions, i.e. exactly the widest rounds of the broadcast.
		bit := uint64(1) << uint(d-1)
		for i := lo; i < hi; i++ {
			off := i * maxPath
			u := callers[i]
			p := append(arena[off:off:off+maxPath], u, u^bit)
			round[i] = linecomm.Call{Path: p}
			receivers[i] = u ^ bit
		}
		return
	}
	for i := lo; i < hi; i++ {
		off := i * maxPath
		p := append(arena[off:off:off+maxPath], callers[i])
		p = s.extendPath(p, d)
		round[i] = linecomm.Call{Path: p}
		receivers[i] = p[len(p)-1]
	}
}
