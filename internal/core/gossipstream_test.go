package core

import (
	"reflect"
	"testing"

	"sparsehypercube/internal/linecomm"
)

// TestGossipFrontierPrefixes pins the frontier array's defining property:
// the prefix of length 2^r is the informed set after r broadcast rounds,
// in the engine's canonical order (frontier[2^r+i] is the receiver of
// frontier[i]'s round-r call), and the whole array is a permutation of
// the vertex set.
func TestGossipFrontierPrefixes(t *testing.T) {
	for _, p := range []Params{BaseParams(6, 2), BaseParams(9, 3), RecParams(10, 5, 2)} {
		s, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, root := range []uint64{0, s.Order() - 1, s.Order() / 3} {
			frontier := s.GossipFrontier(root)
			if uint64(len(frontier)) != s.Order() {
				t.Fatalf("%v: frontier has %d entries, want %d", p, len(frontier), s.Order())
			}
			bc := s.BroadcastSchedule(root)
			informed := []uint64{root}
			for _, round := range bc.Rounds {
				for _, call := range round {
					informed = append(informed, call.To())
				}
			}
			if !reflect.DeepEqual(frontier, informed) {
				t.Fatalf("%v root=%d: frontier diverges from broadcast informed order", p, root)
			}
			seen := make(map[uint64]bool, len(frontier))
			for _, v := range frontier {
				if seen[v] || v >= s.Order() {
					t.Fatalf("%v root=%d: frontier not a permutation (vertex %d)", p, root, v)
				}
				seen[v] = true
			}
		}
	}
}

// TestScheduleGossipRoundsMatchesBroadcast pins the streamed gossip
// rounds, value for value, against the materialised broadcast schedule:
// gather round g must equal broadcast round n-1-g with every path
// reversed, scatter round g must equal broadcast round g verbatim.
func TestScheduleGossipRoundsMatchesBroadcast(t *testing.T) {
	for _, p := range []Params{BaseParams(6, 2), BaseParams(9, 3), RecParams(10, 5, 2), HypercubeParams(7)} {
		s, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		root := s.Order() / 5
		bc := s.BroadcastSchedule(root)
		var got []linecomm.Round
		for r := range s.ScheduleGossipRounds(root) {
			got = append(got, linecomm.CloneRound(r))
		}
		if len(got) != 2*s.n {
			t.Fatalf("%v: streamed %d rounds, want %d", p, len(got), 2*s.n)
		}
		for g := 0; g < s.n; g++ {
			want := reverseRound(bc.Rounds[s.n-1-g])
			if !reflect.DeepEqual(got[g], want) {
				t.Fatalf("%v: gather round %d diverged:\n%v\n%v", p, g, got[g], want)
			}
		}
		for g := 0; g < s.n; g++ {
			if !reflect.DeepEqual(got[s.n+g], bc.Rounds[g]) {
				t.Fatalf("%v: scatter round %d diverged:\n%v\n%v", p, g, got[s.n+g], bc.Rounds[g])
			}
		}
	}
}

func reverseRound(r linecomm.Round) linecomm.Round {
	out := make(linecomm.Round, len(r))
	for i, c := range r {
		rev := make([]uint64, len(c.Path))
		for j, v := range c.Path {
			rev[len(c.Path)-1-j] = v
		}
		out[i] = linecomm.Call{Path: rev}
	}
	return out
}

// TestScheduleGossipRoundsEarlyStop: stopping the iterator mid-phase must
// not leak goroutines or panic — the contract every consumer (WriteTo,
// the validator with a dead sink) relies on.
func TestScheduleGossipRoundsEarlyStop(t *testing.T) {
	s, err := NewBase(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, stop := range []int{0, 3, 8, 11} {
		n := 0
		for range s.ScheduleGossipRounds(1) {
			if n == stop {
				break
			}
			n++
		}
	}
}

// TestScheduleGossipRoundsBadRoot: an out-of-range root panics like every
// other core generator (the facade converts this to a violation).
func TestScheduleGossipRoundsBadRoot(t *testing.T) {
	s, err := NewBase(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range root")
		}
	}()
	s.ScheduleGossipRounds(s.Order())
}
