package core

import (
	"iter"

	"sparsehypercube/internal/linecomm"
)

// This file generalises the streaming schedule engine (stream.go) from
// broadcast to gather-scatter gossip. The obstacle to streaming the
// gather phase is that it is the broadcast run backwards: its first round
// is the broadcast's last — the one round a forward frontier walk reaches
// only after producing every other round. StreamGatherScatter used to
// solve that by materialising one full broadcast schedule.
//
// The engine instead precomputes the frontier array: the informed vertex
// list of the full broadcast, laid out so that the prefix of length 2^r
// is exactly the informed set after r rounds (callers occupy [0, 2^r),
// their receivers land at the mirrored offsets [2^r, 2^{r+1}) — one shard
// per sub-cube of the recursion, written at deterministic offsets by a
// worker pool, so the merged frontier is byte-identical regardless of
// worker count). Any broadcast round can then be rebuilt independently:
// round r's calls are CallPath(frontier[i], d) for i < 2^r. The gather
// phase replays rounds n-1..0 with reversed paths, the scatter phase
// rounds 0..n-1 forward — 2n rounds, byte-identical to
// gossip.GatherScatter, at O(N) words peak (the frontier plus one round's
// arena) instead of the full O(N*n*k)-word schedule.

// callEndpoint returns the final vertex of CallPath(u, d) without
// building the path: the frontier precomputation needs only receivers.
func (s *SparseHypercube) callEndpoint(u uint64, d int) uint64 {
	r := &s.routes[d]
	if r.table != nil {
		if helper := int(r.table[(u>>r.shift)&r.mask]); helper != 0 {
			u = s.callEndpoint(u, helper)
		}
	}
	return u ^ (1 << uint(d-1))
}

// GossipFrontier returns the broadcast frontier array from root: a
// permutation of the vertex set whose prefix of length 2^r is the
// informed set after r broadcast rounds, in the engine's canonical order
// (frontier[2^r + i] is the receiver of frontier[i]'s round-r call).
func (s *SparseHypercube) GossipFrontier(root uint64) []uint64 {
	s.checkVertex(root)
	return s.gossipFrontier(root)
}

func (s *SparseHypercube) gossipFrontier(root uint64) []uint64 {
	frontier := make([]uint64, s.Order())
	frontier[0] = root
	for r := 0; r < s.n; r++ {
		d := s.n - r
		f := 1 << uint(r)
		callers, receivers := frontier[:f], frontier[f:2*f]
		forChunks(f, func(lo, hi int) {
			s.fillEndpoints(d, callers, receivers, lo, hi)
		})
	}
	return frontier
}

// fillEndpoints is the frontier worker body: receivers[i] is the
// endpoint of callers[i]'s dimension-d call, written at the fixed
// mirrored offset (the deterministic merge of the shard outputs).
func (s *SparseHypercube) fillEndpoints(d int, callers, receivers []uint64, lo, hi int) {
	if s.dimLevel[d] == 1 {
		bit := uint64(1) << uint(d-1)
		for i := lo; i < hi; i++ {
			receivers[i] = callers[i] ^ bit
		}
		return
	}
	for i := lo; i < hi; i++ {
		receivers[i] = s.callEndpoint(callers[i], d)
	}
}

// ScheduleGossipRounds generates the same 2n-round gather-scatter gossip
// scheme as gossip.GatherScatter but as a round iterator off the
// precomputed frontier: the gather phase emits the broadcast rounds in
// reverse order with reversed paths (each vertex returns its tokens along
// the call that informed it), the scatter phase re-emits them forward.
// Peak memory is the O(N)-word frontier plus one round's arena — the
// doubled schedule is never materialised. Call paths within a round are
// built in parallel across a worker pool, arena-backed like
// ScheduleRounds.
//
// The yielded round and every call path inside it are only valid until
// the next iteration step: the engine reuses their backing storage. Use
// linecomm.CloneRound to retain a round. Feed the iterator to
// linecomm.ValidateGossipStream (or ValidateMultiSourceStream) to check
// the telephone-model gossip constraints without materialising anything.
func (s *SparseHypercube) ScheduleGossipRounds(root uint64) iter.Seq[linecomm.Round] {
	s.checkVertex(root)
	return func(yield func(linecomm.Round) bool) {
		maxPath := s.params.K + 1
		frontier := s.gossipFrontier(root)
		var (
			round linecomm.Round
			arena []uint64
		)
		emit := func(r int, reversed bool) bool {
			d := s.n - r
			f := 1 << uint(r)
			if cap(round) < f {
				round = make(linecomm.Round, f)
			}
			round = round[:f]
			if cap(arena) < f*maxPath {
				arena = make([]uint64, f*maxPath)
			}
			s.buildGossipRound(d, frontier[:f], round, arena, maxPath, reversed)
			return yield(round)
		}
		// Gather: rounds n-1 .. 0, paths reversed (receiver calls its
		// informer). The widest round comes first, so the arena and round
		// buffers are right-sized once.
		for r := s.n - 1; r >= 0; r-- {
			if !emit(r, true) {
				return
			}
		}
		// Scatter: the broadcast itself, rounds 0 .. n-1.
		for r := 0; r < s.n; r++ {
			if !emit(r, false) {
				return
			}
		}
	}
}

// buildGossipRound fills round[i] with callers[i]'s dimension-d call
// (path reversed for the gather phase), fanning the frontier out over a
// worker pool exactly like the broadcast engine's buildRound.
func (s *SparseHypercube) buildGossipRound(d int, callers []uint64, round linecomm.Round, arena []uint64, maxPath int, reversed bool) {
	forChunks(len(callers), func(lo, hi int) {
		s.buildGossipRoundChunk(d, callers, round, arena, maxPath, lo, hi, reversed)
	})
}

// buildGossipRoundChunk is the worker body for callers [lo, hi). Each
// call path is carved from its own fixed arena slot and, for the gather
// phase, reversed in place.
func (s *SparseHypercube) buildGossipRoundChunk(d int, callers []uint64, round linecomm.Round, arena []uint64, maxPath, lo, hi int, reversed bool) {
	if s.dimLevel[d] == 1 {
		// Base dimension: every call is the direct hop u -> u^2^(d-1).
		bit := uint64(1) << uint(d-1)
		for i := lo; i < hi; i++ {
			off := i * maxPath
			u := callers[i]
			var p []uint64
			if reversed {
				p = append(arena[off:off:off+maxPath], u^bit, u)
			} else {
				p = append(arena[off:off:off+maxPath], u, u^bit)
			}
			round[i] = linecomm.Call{Path: p}
		}
		return
	}
	for i := lo; i < hi; i++ {
		off := i * maxPath
		p := append(arena[off:off:off+maxPath], callers[i])
		p = s.extendPath(p, d)
		if reversed {
			for a, b := 0, len(p)-1; a < b; a, b = a+1, b-1 {
				p[a], p[b] = p[b], p[a]
			}
		}
		round[i] = linecomm.Call{Path: p}
	}
}
