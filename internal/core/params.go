// Package core implements the paper's contribution: sparse hypercubes —
// spanning subgraphs of the binary n-cube that remain minimal k-line
// broadcast graphs (broadcast from any source in exactly n rounds with
// calls of length at most k) while reducing the maximum degree from n to
// O(k * n^(1/k)).
//
// The three constructions of the paper are unified behind one parameter
// vector: Construct(k, (n, n_{k-1}, ..., n_1)) with
// 1 <= n_1 < n_2 < ... < n_{k-1} < n. Construct_BASE(n, m) is the K = 2
// case with Dims = [m, n]; Construct_REC(n, a, b) is K = 3 with
// Dims = [b, a, n]; K = 1 degenerates to the full hypercube Q_n (the
// classic store-and-forward minimal broadcast graph).
package core

import (
	"fmt"

	"sparsehypercube/internal/intmath"
	"sparsehypercube/internal/labeling"
)

// MaxMaterializeN bounds explicit graph materialisation (2^22 vertices).
const MaxMaterializeN = 22

// MaxN bounds the dimension for implicit constructions. Schedules and
// degree formulas work at any n <= MaxN; only Graph() is further limited.
const MaxN = 40

// Params identifies a sparse hypercube construction.
type Params struct {
	// K is the call-length bound k >= 1.
	K int
	// Dims is the strictly increasing parameter vector
	// [n_1, n_2, ..., n_{K-1}, n] of length K; Dims[K-1] = n is the cube
	// dimension (order 2^n).
	Dims []int
}

// N returns the cube dimension n.
func (p Params) N() int { return p.Dims[len(p.Dims)-1] }

// Validate checks the paper's parameter constraints.
func (p Params) Validate() error {
	if p.K < 1 {
		return fmt.Errorf("core: k = %d < 1", p.K)
	}
	if len(p.Dims) != p.K {
		return fmt.Errorf("core: got %d parameters for k = %d (want exactly k)", len(p.Dims), p.K)
	}
	if p.Dims[0] < 1 {
		return fmt.Errorf("core: n_1 = %d < 1", p.Dims[0])
	}
	for i := 1; i < len(p.Dims); i++ {
		if p.Dims[i] <= p.Dims[i-1] {
			return fmt.Errorf("core: parameters not strictly increasing: %v", p.Dims)
		}
	}
	if n := p.N(); n > MaxN {
		return fmt.Errorf("core: n = %d exceeds supported maximum %d", n, MaxN)
	}
	// Each label window must fit the labeling package's table bound.
	for l := 2; l <= p.K; l++ {
		if w := p.windowSize(l); w > labeling.MaxWindow {
			return fmt.Errorf("core: level %d label window size %d exceeds %d", l, w, labeling.MaxWindow)
		}
	}
	return nil
}

// windowSize returns the label-window width of level l (2 <= l <= K):
// n_1 for l = 2, n_{l-1} - n_{l-2} for l >= 3.
func (p Params) windowSize(l int) int {
	if l == 2 {
		return p.Dims[0]
	}
	return p.Dims[l-2] - p.Dims[l-3]
}

// windowLow returns the exclusive lower bit index of level l's window.
func (p Params) windowLow(l int) int {
	if l == 2 {
		return 0
	}
	return p.Dims[l-3]
}

// governedRange returns the dimension range (lo, hi] whose edges level l
// controls: (n_{l-1}, n_l].
func (p Params) governedRange(l int) (lo, hi int) {
	return p.Dims[l-2], p.Dims[l-1]
}

// String renders the parameter vector in the paper's order
// (n, n_{k-1}, ..., n_1).
func (p Params) String() string {
	rev := make([]int, len(p.Dims))
	for i, d := range p.Dims {
		rev[len(p.Dims)-1-i] = d
	}
	return fmt.Sprintf("Construct(%d, %v)", p.K, rev)
}

// BaseParams returns the Construct_BASE(n, m) parameter vector (k = 2).
func BaseParams(n, m int) Params { return Params{K: 2, Dims: []int{m, n}} }

// RecParams returns the Construct_REC(n, a, b) parameter vector (k = 3).
func RecParams(n, a, b int) Params { return Params{K: 3, Dims: []int{b, a, n}} }

// HypercubeParams returns the degenerate k = 1 vector (full Q_n).
func HypercubeParams(n int) Params { return Params{K: 1, Dims: []int{n}} }

// lambdaConstructive returns the label count achieved by labeling.Best(w)
// without building the table: m'+1 for the largest m' = 2^p - 1 <= w.
func lambdaConstructive(w int) int {
	p := 1
	for (1<<uint(p+1))-1 <= w {
		p++
	}
	return 1<<uint(p) - 1 + 1
}

// DegreeForParams returns the exact maximum degree of the graph Construct
// builds for p with default (Best) labelings and near-even partitions,
// computed from the Lemma-1 formula without building the graph:
// Delta = n_1 + sum over levels of ceil((n_l - n_{l-1}) / lambda(window)).
func DegreeForParams(p Params) (int, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	d := p.Dims[0]
	for l := 2; l <= p.K; l++ {
		lo, hi := p.governedRange(l)
		lam := lambdaConstructive(p.windowSize(l))
		d += intmath.CeilDiv(hi-lo, lam)
	}
	return d, nil
}

// Theorem5M returns the paper's k = 2 parameter choice
// m* = ceil(sqrt(2n+4)) - 2, clamped to [1, n-1].
func Theorem5M(n int) int {
	if n < 2 {
		return 1
	}
	m := int(intmath.CeilSqrt(uint64(2*n+4))) - 2
	if m < 1 {
		m = 1
	}
	if m > n-1 {
		m = n - 1
	}
	return m
}

// Theorem7Params returns the paper's k >= 3 parameter choice
// n_i = ceil((n-k)^(i/k)) + i - 1, repaired to strict monotonicity and
// clamped below n. The proof of Theorem 7 uses exactly this vector.
func Theorem7Params(k, n int) (Params, error) {
	if k < 3 || n <= k {
		return Params{}, fmt.Errorf("core: Theorem7Params requires 3 <= k < n, got k=%d n=%d", k, n)
	}
	m := n - k
	dims := make([]int, k)
	for i := 1; i <= k-1; i++ {
		// ceil(m^(i/k)) = CeilRoot(m^i, k), exact in integers.
		dims[i-1] = int(intmath.CeilRoot(intmath.Pow(uint64(m), i), k)) + i - 1
	}
	dims[k-1] = n
	// Repair: enforce strict increase and the n bound (degenerate only for
	// very small m).
	for i := 1; i < k; i++ {
		if dims[i] <= dims[i-1] {
			dims[i] = dims[i-1] + 1
		}
	}
	if dims[k-1] != n {
		return Params{}, fmt.Errorf("core: Theorem7Params(%d,%d): no room for %d levels below n", k, n, k)
	}
	p := Params{K: k, Dims: dims}
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}

// AutoParams picks a parameter vector for (k, n) minimising the exact
// degree formula. By Property 1 a construction for any k' <= k stays a
// valid k-mlbg, so the search considers every level count up to k and
// keeps the best; each candidate starts from the paper's Theorem 5/7
// choice refined by coordinate descent.
func AutoParams(k, n int) (Params, error) {
	if k < 1 || n < 1 {
		return Params{}, fmt.Errorf("core: AutoParams requires k, n >= 1")
	}
	best, err := autoParamsExact(1, n)
	if err != nil {
		return Params{}, err
	}
	bestD, err := DegreeForParams(best)
	if err != nil {
		return Params{}, err
	}
	for kk := 2; kk <= k && kk < n; kk++ {
		cand, err := autoParamsExact(kk, n)
		if err != nil {
			continue
		}
		d, err := DegreeForParams(cand)
		if err != nil {
			continue
		}
		if d < bestD {
			best, bestD = cand, d
		}
	}
	return best, nil
}

// autoParamsExact searches with exactly k levels.
func autoParamsExact(k, n int) (Params, error) {
	if k == 1 || n == 1 {
		return HypercubeParams(n), nil
	}
	if k >= n {
		k = n - 1
	}
	if k == 1 {
		return HypercubeParams(n), nil
	}
	var seed Params
	if k == 2 {
		seed = BaseParams(n, Theorem5M(n))
	} else {
		var err error
		seed, err = Theorem7Params(k, n)
		if err != nil {
			// Fall back to the minimal valid vector 1,2,...,k-1,n.
			dims := make([]int, k)
			for i := 0; i < k-1; i++ {
				dims[i] = i + 1
			}
			dims[k-1] = n
			seed = Params{K: k, Dims: dims}
		}
	}
	if err := seed.Validate(); err != nil {
		return Params{}, err
	}
	best := seed
	bestD, err := DegreeForParams(best)
	if err != nil {
		return Params{}, err
	}
	// Coordinate descent on the k-1 free parameters.
	for pass := 0; pass < 8; pass++ {
		improved := false
		for i := 0; i < k-1; i++ {
			for _, delta := range []int{-2, -1, 1, 2} {
				cand := Params{K: k, Dims: append([]int(nil), best.Dims...)}
				cand.Dims[i] += delta
				if cand.Validate() != nil {
					continue
				}
				if d, err := DegreeForParams(cand); err == nil && d < bestD {
					best, bestD = cand, d
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return best, nil
}
