package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sparsehypercube/internal/linecomm"
)

// The strongest end-to-end property in the repository: a RANDOM valid
// parameter vector yields a construction whose scheme from a random
// source is a flawless minimum-time k-line broadcast. This covers the
// whole pipeline (labelings, partitions, edge rule, call-path recursion,
// schedule assembly) against the model validator with no hand-picked
// cases.
func TestRandomParamsAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(5) + 1 // 1..5
		n := rng.Intn(9) + k + 1
		if n > 12 {
			n = 12
		}
		if n <= k {
			n = k + 1
		}
		// Random strictly increasing dims below n.
		dims := randomDims(rng, k, n)
		p := Params{K: k, Dims: dims}
		if p.Validate() != nil {
			return true // not a valid vector; nothing to check
		}
		s, err := New(p)
		if err != nil {
			return false
		}
		src := uint64(rng.Int63()) & (s.Order() - 1)
		res := linecomm.Validate(s, k, s.BroadcastSchedule(src))
		return res.Valid() && res.MinimumTime && res.MaxCallLength <= k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func randomDims(rng *rand.Rand, k, n int) []int {
	if k == 1 {
		return []int{n}
	}
	// Choose k-1 distinct values in [1, n-1].
	perm := rng.Perm(n - 1)
	picked := perm[:k-1]
	dims := make([]int, 0, k)
	for _, v := range picked {
		dims = append(dims, v+1)
	}
	dims = append(dims, n)
	sortInts(dims)
	return dims
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Property 1 of the paper, machine-checked: a minimum-time k-line scheme
// is a minimum-time (k+1)-line scheme — our k-schedules validate under
// every larger bound.
func TestProperty1Monotonicity(t *testing.T) {
	s, err := NewBase(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	sched := s.BroadcastSchedule(7)
	for k := 2; k <= 8; k++ {
		res := linecomm.Validate(s, k, sched)
		if !res.Valid() || !res.MinimumTime {
			t.Fatalf("schedule invalid under k = %d: %v", k, res.Err())
		}
	}
	// And under k = 1 it must fail: relays exist.
	if linecomm.Validate(s, 1, sched).Valid() {
		t.Fatal("a 2-line schedule with relays cannot be valid at k = 1")
	}
}

// Determinism: the construction and its schedules are pure functions of
// the parameters.
func TestSchedulesDeterministic(t *testing.T) {
	build := func() string {
		s, err := NewRec(9, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		return s.BroadcastSchedule(5).Format(9)
	}
	a, b := build(), build()
	if a != b {
		t.Fatal("schedule generation is nondeterministic")
	}
}
