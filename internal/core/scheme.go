package core

import (
	"sparsehypercube/internal/linecomm"
)

// CallPath returns the path a caller at u uses to fire dimension d — the
// call placed by schemes Broadcast_2 / Broadcast_k when processing
// dimension d (paper §3/§4).
//
// If the dimension-d edge exists at u the call is direct. Otherwise
// Condition A guarantees a helper dimension j in the level-below window
// whose flip moves u into the label class owning d; the path recursively
// flips j, then crosses d. The endpoint therefore equals u with bit d
// flipped, possibly with additional flips in bits below the level window —
// exactly the paper's "w calls vertex +-i(+-j w)". Length <= Level(d) <= k.
func (s *SparseHypercube) CallPath(u uint64, d int) []uint64 {
	s.checkDim(d)
	s.checkVertex(u)
	path := make([]uint64, 1, s.Level(d)+1)
	path[0] = u
	return s.extendPath(path, d)
}

// extendPath routes from the last vertex of path across dimension d,
// appending every hop. The dimension's flat route table answers "direct
// edge, or which window bit to flip first?" in one shifted load (the
// level/class indirection, the label-equality test and the Condition-A
// dominator lookup fused), which is the hot loop of schedule generation
// for every level >= 2 dimension.
func (s *SparseHypercube) extendPath(path []uint64, d int) []uint64 {
	u := path[len(path)-1]
	r := &s.routes[d]
	if r.table == nil {
		// Base dimension: the edge is always present.
		return append(path, u^(1<<uint(d-1)))
	}
	helper := int(r.table[(u>>r.shift)&r.mask])
	if helper == 0 {
		// u's label owns d: the dimension-d edge exists at u.
		return append(path, u^(1<<uint(d-1)))
	}
	// No direct edge: flip the helper dimension (itself routed, one
	// level down) to reach the class owning d, then cross d.
	path = s.extendPath(path, helper)
	v := path[len(path)-1]
	return append(path, v^(1<<uint(d-1)))
}

// BroadcastSchedule generates the paper's minimum-time k-line broadcast
// scheme from source (Broadcast_2 for K = 2, Broadcast_k generally,
// binomial broadcast for K = 1): n rounds; in the round for dimension
// i = n, n-1, ..., 1 every informed vertex places CallPath(., i).
// Theorems 4 and 6 assert validity; linecomm.Validate machine-checks it.
func (s *SparseHypercube) BroadcastSchedule(source uint64) *linecomm.Schedule {
	s.checkVertex(source)
	informed := make([]uint64, 1, s.Order())
	informed[0] = source
	rounds := make([]linecomm.Round, 0, s.n)
	for d := s.n; d >= 1; d-- {
		round := make(linecomm.Round, 0, len(informed))
		for _, w := range informed {
			round = append(round, linecomm.Call{Path: s.CallPath(w, d)})
		}
		for _, call := range round {
			informed = append(informed, call.To())
		}
		rounds = append(rounds, round)
	}
	return &linecomm.Schedule{Source: source, Rounds: rounds}
}

// MaxCallLength returns the worst-case call length of the scheme, which
// is the number of levels K (Theorem 6's k bound).
func (s *SparseHypercube) MaxCallLength() int { return s.params.K }
