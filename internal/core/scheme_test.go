package core

import (
	"testing"
	"testing/quick"

	"sparsehypercube/internal/labeling"
	"sparsehypercube/internal/linecomm"
)

// mustValidSchedule asserts the construction's scheme from source is a
// flawless minimum-time k-line broadcast.
func mustValidSchedule(t *testing.T, s *SparseHypercube, source uint64) *linecomm.Result {
	t.Helper()
	sched := s.BroadcastSchedule(source)
	if len(sched.Rounds) != s.N() {
		t.Fatalf("%v source %d: %d rounds, want %d", s.Params(), source, len(sched.Rounds), s.N())
	}
	res := linecomm.Validate(s, s.K(), sched)
	if err := res.Err(); err != nil {
		t.Fatalf("%v source %d: %v", s.Params(), source, err)
	}
	if !res.Complete || !res.MinimumTime {
		t.Fatalf("%v source %d: complete=%v minimumTime=%v informed=%d",
			s.Params(), source, res.Complete, res.MinimumTime, res.Informed)
	}
	return res
}

// Theorem 4: Broadcast_2 is a minimum-time 2-line broadcast scheme for
// every Construct_BASE graph, from every source.
func TestTheorem4AllSourcesSmall(t *testing.T) {
	for n := 2; n <= 6; n++ {
		for m := 1; m < n; m++ {
			s, err := NewBase(n, m)
			if err != nil {
				t.Fatal(err)
			}
			for src := uint64(0); src < s.Order(); src++ {
				res := mustValidSchedule(t, s, src)
				if res.MaxCallLength > 2 {
					t.Fatalf("n=%d m=%d src=%d: call length %d > 2", n, m, src, res.MaxCallLength)
				}
			}
		}
	}
}

// Theorem 4 on larger instances with sampled sources, including the
// paper's G_{15,3}.
func TestTheorem4Sampled(t *testing.T) {
	cases := []struct{ n, m int }{{10, 3}, {12, 4}, {15, 3}, {15, 4}, {16, 5}}
	for _, c := range cases {
		s, err := NewBase(c.n, c.m)
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range []uint64{0, 1, s.Order() - 1, s.Order() / 3, 0xA5A5 % s.Order()} {
			res := mustValidSchedule(t, s, src)
			if res.MaxCallLength > 2 {
				t.Fatalf("n=%d m=%d: call length %d", c.n, c.m, res.MaxCallLength)
			}
		}
	}
}

// Theorem 6: Broadcast_k is a minimum-time k-line broadcast scheme for the
// general construction. Exhaustive over sources for small instances.
func TestTheorem6AllSourcesSmall(t *testing.T) {
	params := []Params{
		RecParams(4, 3, 1),
		RecParams(5, 3, 2),
		RecParams(6, 4, 2),
		RecParams(7, 4, 2), // the paper's Example 6 shape
		{K: 4, Dims: []int{1, 2, 3, 6}},
		{K: 4, Dims: []int{2, 3, 5, 7}},
		{K: 5, Dims: []int{1, 2, 3, 4, 7}},
	}
	for _, p := range params {
		s, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		for src := uint64(0); src < s.Order(); src++ {
			res := mustValidSchedule(t, s, src)
			if res.MaxCallLength > p.K {
				t.Fatalf("%v src=%d: call length %d > k", p, src, res.MaxCallLength)
			}
		}
	}
}

// Theorem 6 on larger instances with sampled sources.
func TestTheorem6Sampled(t *testing.T) {
	params := []Params{
		RecParams(12, 5, 2),
		RecParams(15, 6, 3),
		{K: 4, Dims: []int{2, 4, 7, 14}},
		{K: 5, Dims: []int{2, 3, 5, 8, 13}},
		{K: 6, Dims: []int{1, 2, 4, 6, 9, 12}},
	}
	for _, p := range params {
		s, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range []uint64{0, 1, s.Order() - 1, s.Order() / 5} {
			res := mustValidSchedule(t, s, src)
			if res.MaxCallLength > p.K {
				t.Fatalf("%v src=%d: call length %d > k", p, src, res.MaxCallLength)
			}
		}
	}
}

// The degenerate K = 1 construction runs the classic binomial broadcast:
// all calls have length exactly 1.
func TestHypercubeBinomialScheme(t *testing.T) {
	s, err := NewHypercube(6)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []uint64{0, 17, 63} {
		res := mustValidSchedule(t, s, src)
		if res.MaxCallLength != 1 {
			t.Fatalf("binomial scheme produced call length %d", res.MaxCallLength)
		}
	}
}

// Example 4 / Fig. 4: broadcasting from 0000 in G_{4,2}. Round 1 is a
// single length-2 call from 0000 whose relay flips a base dimension and
// which crosses dimension 4; the remaining rounds keep doubling.
func TestPaperExample4Broadcast(t *testing.T) {
	s, err := NewBase(4, 2, LevelSpec{
		Labeling:  labeling.PaperExample1Q2(),
		Partition: [][]int{{3}, {4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sched := s.BroadcastSchedule(0)
	res := linecomm.Validate(s, 2, sched)
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if !res.MinimumTime {
		t.Fatal("not minimum time")
	}
	r1 := sched.Rounds[0]
	if len(r1) != 1 {
		t.Fatalf("round 1 has %d calls", len(r1))
	}
	call := r1[0]
	if call.From() != 0 {
		t.Fatal("round 1 caller must be the source")
	}
	// 0000 has label c1; dimension 4 belongs to S_2, so the call must
	// relay through a base neighbor with label c2 (0001 or 0010, the
	// paper picks 0010) and end at that neighbor with bit 4 flipped.
	if call.Length() != 2 {
		t.Fatalf("round 1 call length %d, want 2", call.Length())
	}
	relay := call.Path[1]
	if relay != 0b0001 && relay != 0b0010 {
		t.Fatalf("relay %04b not a base neighbor of 0000", relay)
	}
	if s.LabelAt(2, relay) != 1 {
		t.Fatalf("relay label %d, want c2", s.LabelAt(2, relay))
	}
	if call.To() != relay|0b1000 {
		t.Fatalf("receiver %04b, want relay + dimension 4", call.To())
	}
	// Round 2: two calls (doubling), crossing dimension 3.
	if len(sched.Rounds[1]) != 2 {
		t.Fatalf("round 2 has %d calls", len(sched.Rounds[1]))
	}
	if res.InformedPerRound[1] != 4 || res.InformedPerRound[3] != 16 {
		t.Fatalf("doubling broken: %v", res.InformedPerRound)
	}
}

// CallPath structural properties on a 3-level construction.
func TestCallPathProperties(t *testing.T) {
	s, err := New(Params{K: 3, Dims: []int{3, 6, 12}})
	if err != nil {
		t.Fatal(err)
	}
	f := func(uRaw uint16, dRaw uint8) bool {
		u := uint64(uRaw) & (1<<12 - 1)
		d := int(dRaw)%12 + 1
		path := s.CallPath(u, d)
		if len(path) < 2 || len(path)-1 > s.Level(d) {
			return false
		}
		if path[0] != u {
			return false
		}
		// Every hop is an edge.
		for i := 1; i < len(path); i++ {
			if !s.HasEdge(path[i-1], path[i]) {
				return false
			}
		}
		// The endpoint flips bit d; any extra flips are strictly below d.
		diff := path[len(path)-1] ^ u
		if diff&(1<<uint(d-1)) == 0 {
			return false
		}
		if diff>>uint(d) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Schedules never produce a call longer than K across a parameter sweep.
func TestMaxCallLengthBound(t *testing.T) {
	params := []Params{
		BaseParams(9, 3),
		RecParams(10, 5, 2),
		{K: 4, Dims: []int{2, 4, 6, 11}},
	}
	for _, p := range params {
		s, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		sched := s.BroadcastSchedule(1)
		if got := sched.MaxCallLength(); got > s.MaxCallLength() {
			t.Errorf("%v: observed call length %d > declared %d", p, got, s.MaxCallLength())
		}
	}
}

// Congestion sanity on a validated schedule: within-round edge use is
// disjoint by validity, so the max per-edge load across the whole
// schedule is bounded by the number of rounds.
func TestScheduleCongestionBounded(t *testing.T) {
	s, err := NewBase(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	sched := s.BroadcastSchedule(0)
	st := linecomm.Congestion(sched)
	if st.MaxEdgeLoad > s.N() {
		t.Errorf("max edge load %d > rounds %d", st.MaxEdgeLoad, s.N())
	}
	if st.EdgesUsed == 0 || st.TotalEdgeTime < int(s.Order())-1 {
		t.Errorf("congestion stats implausible: %+v", st)
	}
}
