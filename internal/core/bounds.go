package core

import (
	"sparsehypercube/internal/intmath"
)

// Bounds from the paper's §2 and the degree guarantees of §3–§4. All are
// exact integer formulas; n = log2 N throughout.

// LowerBoundDegree returns the paper's degree lower bound for a k-mlbg on
// 2^n vertices:
//
//	k = 1:       Delta >= n (the source must call n distinct neighbors),
//	k = 2, 3, 4: Delta >= ceil(n^(1/k))            (Theorem 2),
//	k >= 5:      the smallest Delta >= 3 with
//	             3*((Delta-1)^k - 1) >= n          (Theorem 3's inequality),
//	             which is >= ceil((n/3 + 1)^(1/k)) + 1.
func LowerBoundDegree(k, n int) int {
	if k < 1 || n < 1 {
		panic("core: LowerBoundDegree requires k, n >= 1")
	}
	switch {
	case k == 1:
		return n
	case k <= 4:
		return int(intmath.CeilRoot(uint64(n), k))
	default:
		for delta := 3; ; delta++ {
			if 3*(intPowSat(delta-1, k)-1) >= n {
				return delta
			}
		}
	}
}

// intPowSat computes base^exp saturating at a large sentinel to avoid
// overflow in bound loops.
func intPowSat(base, exp int) int {
	const cap = 1 << 50
	r := 1
	for i := 0; i < exp; i++ {
		r *= base
		if r > cap {
			return cap
		}
	}
	return r
}

// UpperBoundTheorem5 returns Theorem 5's guarantee for k = 2:
// there is a 2-mlbg of order 2^n with Delta <= 2*ceil(sqrt(2n+4)) - 4
// (for n = 1 the bound given in the proof is 2*3 - 4 = 2).
func UpperBoundTheorem5(n int) int {
	if n < 1 {
		panic("core: UpperBoundTheorem5 requires n >= 1")
	}
	return 2*int(intmath.CeilSqrt(uint64(2*n+4))) - 4
}

// UpperBoundTheorem7 returns Theorem 7's guarantee for k >= 3:
// Delta <= (2k-1)*ceil(n^(1/k)) - k.
func UpperBoundTheorem7(k, n int) int {
	if k < 3 || n <= k {
		panic("core: UpperBoundTheorem7 requires 3 <= k < n")
	}
	return (2*k-1)*int(intmath.CeilRoot(uint64(n), k)) - k
}

// UpperBoundCorollary1 returns Corollary 1's guarantee: with
// k = ceil(log2 n), Delta <= 4*ceil(log2 log2 N) - 2 = 4*ceil(log2 n) - 2.
func UpperBoundCorollary1(n int) int {
	if n < 2 {
		panic("core: UpperBoundCorollary1 requires n >= 2")
	}
	return 4*intmath.CeilLog2(uint64(n)) - 2
}

// Corollary1K returns the call length Corollary 1 uses: ceil(log2 n).
func Corollary1K(n int) int {
	if n < 2 {
		panic("core: Corollary1K requires n >= 2")
	}
	return intmath.CeilLog2(uint64(n))
}

// Theorem1K returns the call-length threshold of Theorem 1: for
// k >= 2*ceil(log2((N+2)/3)) there is a k-mlbg with Delta <= 3
// (the tri-tree T_h with h = ceil(log2((N+2)/3)), the smallest h with
// 3*2^h - 2 >= N).
func Theorem1K(order uint64) int {
	if order < 4 {
		panic("core: Theorem1K requires N >= 4")
	}
	h := 0
	for 3*(uint64(1)<<uint(h))-2 < order {
		h++
	}
	return 2 * h
}
