package core

import (
	"testing"
)

func TestLowerBoundDegreeKnown(t *testing.T) {
	cases := []struct{ k, n, want int }{
		{1, 10, 10},
		{2, 15, 4},  // ceil(sqrt(15))
		{2, 16, 4},  // sqrt exact
		{2, 17, 5},  // wait: ceil(sqrt(17)) = 5
		{3, 27, 3},  // cube root exact
		{3, 28, 4},  // hmm: ceil(28^(1/3)) = 4
		{4, 16, 2},  // ceil(16^(1/4)) = 2
		{4, 17, 3},  // hmm: ceil(17^(1/4)) = 3
		{5, 6, 3},   // smallest Delta with 3*((D-1)^5 - 1) >= 6: D=3 gives 3*31=93 >= 6
		{5, 94, 4},  // D=3 gives 93 < 94, so 4
		{6, 189, 3}, // 3*(2^6-1) = 189
		{6, 190, 4},
	}
	for _, c := range cases {
		if got := LowerBoundDegree(c.k, c.n); got != c.want {
			t.Errorf("LowerBoundDegree(%d,%d) = %d, want %d", c.k, c.n, got, c.want)
		}
	}
}

func TestLowerBoundMonotoneInK(t *testing.T) {
	// Within each theorem's family the bound is non-increasing in k.
	// (Theorem 2's root bound for k <= 4 and Theorem 3's branching bound
	// for k >= 5 are separate results with different validity domains —
	// Theorem 3 additionally forces Delta >= 3 via the cycle argument,
	// which only applies for n > k >= 5 — so they are not compared.)
	for n := 4; n <= 64; n++ {
		prev := LowerBoundDegree(1, n)
		for k := 2; k <= 4; k++ {
			cur := LowerBoundDegree(k, n)
			if cur > prev {
				t.Errorf("Theorem-2 bound increased: k=%d n=%d: %d > %d", k, n, cur, prev)
			}
			prev = cur
		}
		prev = LowerBoundDegree(5, n)
		for k := 6; k <= 9; k++ {
			cur := LowerBoundDegree(k, n)
			if cur > prev {
				t.Errorf("Theorem-3 bound increased: k=%d n=%d: %d > %d", k, n, cur, prev)
			}
			prev = cur
		}
	}
	// Theorem 3's bound never drops below 3 on its domain n > k >= 5.
	for k := 5; k <= 8; k++ {
		for n := k + 1; n <= 64; n++ {
			if LowerBoundDegree(k, n) < 3 {
				t.Errorf("Theorem-3 bound below 3 at k=%d n=%d", k, n)
			}
		}
	}
}

// Theorem 5: the constructed G_{n,m*} meets Delta <= 2*ceil(sqrt(2n+4))-4
// for every n in the materialisable range and analytically beyond.
func TestTheorem5Bound(t *testing.T) {
	for n := 2; n <= MaxN; n++ {
		m := Theorem5M(n)
		d, err := DegreeForParams(BaseParams(n, m))
		if err != nil {
			t.Fatalf("n=%d m=%d: %v", n, m, err)
		}
		bound := UpperBoundTheorem5(n)
		if d > bound {
			t.Errorf("n=%d: Delta(G_{n,%d}) = %d > Theorem-5 bound %d", n, m, d, bound)
		}
		if lb := LowerBoundDegree(2, n); d < lb {
			t.Errorf("n=%d: degree %d below the k=2 lower bound %d (impossible)", n, d, lb)
		}
	}
}

// Theorem 7: for k >= 3 the formula parameters meet
// Delta <= (2k-1)*ceil(n^(1/k)) - k wherever the formula vector is valid.
func TestTheorem7Bound(t *testing.T) {
	for k := 3; k <= 6; k++ {
		for n := k + 2; n <= MaxN; n++ {
			p, err := Theorem7Params(k, n)
			if err != nil {
				continue // degenerate small-n cases are covered by AutoParams
			}
			d, err := DegreeForParams(p)
			if err != nil {
				t.Fatalf("k=%d n=%d: %v", k, n, err)
			}
			bound := UpperBoundTheorem7(k, n)
			if d > bound {
				t.Errorf("k=%d n=%d: Delta = %d > Theorem-7 bound %d (params %v)", k, n, d, bound, p)
			}
		}
	}
}

// AutoParams never does worse than the paper's formula choices.
func TestAutoParamsAtLeastAsGood(t *testing.T) {
	for n := 3; n <= MaxN; n++ {
		pa, err := AutoParams(2, n)
		if err != nil {
			t.Fatal(err)
		}
		da, err := DegreeForParams(pa)
		if err != nil {
			t.Fatal(err)
		}
		df, err := DegreeForParams(BaseParams(n, Theorem5M(n)))
		if err != nil {
			t.Fatal(err)
		}
		if da > df {
			t.Errorf("k=2 n=%d: auto %d worse than formula %d", n, da, df)
		}
	}
	for k := 3; k <= 5; k++ {
		for n := k + 2; n <= MaxN; n++ {
			pa, err := AutoParams(k, n)
			if err != nil {
				t.Fatal(err)
			}
			da, err := DegreeForParams(pa)
			if err != nil {
				t.Fatal(err)
			}
			if pf, err := Theorem7Params(k, n); err == nil {
				df, err2 := DegreeForParams(pf)
				if err2 != nil {
					t.Fatal(err2)
				}
				if da > df {
					t.Errorf("k=%d n=%d: auto %d worse than formula %d", k, n, da, df)
				}
			}
		}
	}
}

// Corollary 1: with k = ceil(log2 n), the auto construction achieves
// Delta <= 4*ceil(log2 log2 N) - 2.
func TestCorollary1Bound(t *testing.T) {
	for n := 4; n <= MaxN; n++ {
		k := Corollary1K(n)
		p, err := AutoParams(k, n)
		if err != nil {
			t.Fatal(err)
		}
		d, err := DegreeForParams(p)
		if err != nil {
			t.Fatal(err)
		}
		if bound := UpperBoundCorollary1(n); d > bound {
			t.Errorf("n=%d (k=%d): Delta %d > Corollary-1 bound %d", n, k, d, bound)
		}
	}
}

func TestTheorem1K(t *testing.T) {
	// N = 22 = 3*2^3 - 2 -> h = 3 -> k = 6.
	if got := Theorem1K(22); got != 6 {
		t.Errorf("Theorem1K(22) = %d, want 6", got)
	}
	// N = 4 -> h = 1 -> k = 2.
	if got := Theorem1K(4); got != 2 {
		t.Errorf("Theorem1K(4) = %d, want 2", got)
	}
	// N = 10 -> h = 2 -> k = 4.
	if got := Theorem1K(10); got != 4 {
		t.Errorf("Theorem1K(10) = %d, want 4", got)
	}
	// N = 23 needs h = 4 (3*2^3-2 = 22 < 23).
	if got := Theorem1K(23); got != 8 {
		t.Errorf("Theorem1K(23) = %d, want 8", got)
	}
}

func TestTheorem5M(t *testing.T) {
	// n = 15: ceil(sqrt(34)) - 2 = 6 - 2 = 4.
	if got := Theorem5M(15); got != 4 {
		t.Errorf("Theorem5M(15) = %d, want 4", got)
	}
	if got := Theorem5M(1); got != 1 {
		t.Errorf("Theorem5M(1) = %d", got)
	}
	for n := 2; n <= 64; n++ {
		m := Theorem5M(n)
		if m < 1 || m >= n {
			t.Errorf("Theorem5M(%d) = %d out of range", n, m)
		}
	}
}

func TestAutoParamsDegenerate(t *testing.T) {
	// k >= n falls back to k' = n-1.
	p, err := AutoParams(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.K > 3 {
		t.Errorf("AutoParams(10,4) used k = %d > n-1", p.K)
	}
	if _, err := AutoParams(0, 5); err == nil {
		t.Error("expected error for k = 0")
	}
	p, err = AutoParams(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

// The note after Theorem 5: when m = lambda_m + 1... the text's example —
// with m such that lambda_m = m+1 (m = 2^p - 1) and n = m*(m+2), the
// construction gives Delta = 2m < 2*sqrt(n).
func TestTheorem5RemarkExactCase(t *testing.T) {
	for _, m := range []int{3, 7} {
		n := m * (m + 2)
		if n > MaxN {
			continue
		}
		d, err := DegreeForParams(BaseParams(n, m))
		if err != nil {
			t.Fatal(err)
		}
		if d != 2*m {
			t.Errorf("m=%d n=%d: Delta = %d, want exactly 2m = %d", m, n, d, 2*m)
		}
	}
}
