package core

import (
	"fmt"
	"strings"
)

// Describe renders the construction's level structure — the information of
// the paper's Fig. 5 (window layout and partition of S) in text form.
func (s *SparseHypercube) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: N = 2^%d, Delta = %d, delta = %d, |E| = %d\n",
		s.params, s.n, s.MaxDegree(), s.MinDegree(), s.NumEdges())
	fmt.Fprintf(&b, "  base region: dimensions 1..%d (all edges present)\n", s.params.Dims[0])
	for l := 2; l <= s.params.K; l++ {
		ld := s.levelOf(l)
		lo, hi := s.params.governedRange(l)
		fmt.Fprintf(&b, "  level %d: labels g_%d over window (%d,%d] (%s, lambda = %d) govern dimensions %d..%d\n",
			l, l, ld.wlo, ld.whi, ld.lab.Source(), ld.lab.NumLabels(), lo+1, hi)
		for c, dims := range ld.classDims {
			fmt.Fprintf(&b, "    S_%d = %s\n", c+1, dimSet(dims))
		}
	}
	return b.String()
}

func dimSet(dims []int) string {
	if len(dims) == 0 {
		return "{}"
	}
	parts := make([]string, len(dims))
	for i, d := range dims {
		parts[i] = fmt.Sprintf("%d", d)
	}
	return "{" + strings.Join(parts, ",") + "}"
}
