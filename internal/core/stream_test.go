package core

import (
	"reflect"
	"runtime"
	"testing"

	"sparsehypercube/internal/linecomm"
)

// collectStream materialises a round stream by deep-copying every yielded
// round (the iterator reuses its buffers).
func collectStream(s *SparseHypercube, source uint64) *linecomm.Schedule {
	out := &linecomm.Schedule{Source: source}
	for r := range s.ScheduleRounds(source) {
		out.Rounds = append(out.Rounds, linecomm.CloneRound(r))
	}
	return out
}

// streamEquivalenceParams covers all three construction families:
// k = 1 (full hypercube), k = 2 (Construct_BASE), k = 3 (Construct_REC),
// n <= 12 as the equivalence envelope.
func streamEquivalenceParams() []Params {
	return []Params{
		HypercubeParams(1),
		HypercubeParams(4),
		HypercubeParams(8),
		BaseParams(4, 2),
		BaseParams(9, 3),
		BaseParams(12, 4),
		{K: 3, Dims: []int{2, 4, 9}},
		{K: 3, Dims: []int{2, 5, 12}},
	}
}

// sourcesFor samples broadcast sources: every vertex for small cubes, a
// stride cover including both ends otherwise.
func sourcesFor(order uint64) []uint64 {
	if order <= 1<<8 {
		out := make([]uint64, order)
		for i := range out {
			out[i] = uint64(i)
		}
		return out
	}
	var out []uint64
	for src := uint64(0); src < order; src += order / 31 {
		out = append(out, src)
	}
	return append(out, order-1)
}

// TestScheduleRoundsMatchesBroadcastSchedule is the byte-for-byte
// equivalence gate: the streamed rounds must reproduce BroadcastSchedule
// exactly, for every construction family and all sampled sources.
func TestScheduleRoundsMatchesBroadcastSchedule(t *testing.T) {
	for _, p := range streamEquivalenceParams() {
		s, err := New(p)
		if err != nil {
			t.Fatalf("New(%v): %v", p, err)
		}
		for _, src := range sourcesFor(s.Order()) {
			want := s.BroadcastSchedule(src)
			got := collectStream(s, src)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("k=%d dims=%v source %d: streamed schedule diverges", p.K, p.Dims, src)
			}
		}
	}
}

// TestScheduleRoundsParallel forces the worker pool (frontier above
// streamChunk needs n >= 12 and GOMAXPROCS > 1) and re-checks
// equivalence; under -race this doubles as a data-race probe.
func TestScheduleRoundsParallel(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	s, err := NewBase(13, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []uint64{0, 4097, s.Order() - 1} {
		want := s.BroadcastSchedule(src)
		got := collectStream(s, src)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("parallel streamed schedule diverges at source %d", src)
		}
	}
}

// TestScheduleRoundsEarlyStop checks that breaking out of the iterator
// mid-broadcast neither hangs nor yields further rounds.
func TestScheduleRoundsEarlyStop(t *testing.T) {
	s, err := NewBase(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	rounds := 0
	for range s.ScheduleRounds(0) {
		rounds++
		if rounds == 3 {
			break
		}
	}
	if rounds != 3 {
		t.Fatalf("iterated %d rounds after break at 3", rounds)
	}
}

// TestScheduleRoundsValidateStream runs the full streamed pipeline —
// generation feeding validation round by round — and requires a
// violation-free minimum-time broadcast (Theorems 4 and 6, streamed).
func TestScheduleRoundsValidateStream(t *testing.T) {
	for _, p := range []Params{BaseParams(14, 4), {K: 3, Dims: []int{2, 5, 13}}, {K: 4, Dims: []int{2, 4, 7, 14}}} {
		s, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		res := linecomm.ValidateStream(s, s.K(), 5, s.ScheduleRounds(5))
		if !res.Valid() || !res.MinimumTime || res.MaxCallLength > s.K() {
			t.Fatalf("k=%d dims=%v: streamed pipeline invalid: %v", p.K, p.Dims, res.Err())
		}
	}
}

// TestAppendCallPath pins the arena primitive against CallPath.
func TestAppendCallPath(t *testing.T) {
	s, err := New(Params{K: 3, Dims: []int{2, 5, 11}})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]uint64, 0, 8)
	for u := uint64(0); u < s.Order(); u += 97 {
		for d := 1; d <= s.N(); d++ {
			want := s.CallPath(u, d)
			got := s.AppendCallPath(buf[:0], u, d)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("AppendCallPath(%d, %d) = %v, want %v", u, d, got, want)
			}
		}
	}
}
