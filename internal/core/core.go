package core

import (
	"fmt"

	"sparsehypercube/internal/graph"
	"sparsehypercube/internal/labeling"
)

// SparseHypercube is the graph produced by the paper's Construct
// procedure: the vertex set {0,1}^n with an implicit, O(1)-evaluable edge
// predicate. Dimensions are numbered 1..n from the least significant bit,
// matching the paper.
//
// Structure: dimension i <= n_1 edges are always present ("Rule 1" of
// Construct_BASE, applied recursively). A dimension i in (n_{l-1}, n_l]
// belongs to level l; its edge at vertex u is present iff the partition
// class that owns i equals the label g_l(u), where g_l reads only the bit
// window (n_{l-2}, n_{l-1}] of u ("Rule 2").
type SparseHypercube struct {
	params Params
	n      int
	levels []levelData // levels[i] describes level i+2
	// dimLevel[d] for d in 1..n: 1 for the base region, else the level.
	dimLevel []uint8
	// dimClass[d]: partition class owning dimension d (0 for base dims).
	dimClass []uint8
	// routes[d]: the flat call-path routing table of dimension d.
	routes []dimRoute
}

// levelData holds one level of the recursive construction.
type levelData struct {
	wlo, whi  int // label window (wlo, whi], 1-based dimensions
	lab       *labeling.Labeling
	classDims [][]int // classDims[c]: dimensions in class S_{c+1}, descending
}

// dimRoute caches every labeling lookup a dimension's call-path step
// needs in one flat table indexed by window value: table[x] is 0 when a
// vertex with window value x owns the dimension's edges directly, else
// the helper dimension (a window bit, Condition A) whose flip moves the
// vertex into the owning class. One shifted load replaces the
// level/class indirection, the label-equality test and the
// dominator-bit lookup of the call-path hot loop. Base dimensions have a
// nil table; dimensions of one class share one table.
type dimRoute struct {
	shift uint
	mask  uint64
	table []uint16
}

// LevelSpec optionally overrides the nondeterministic choices of one level
// (the paper's f* and partition of S). Zero value means "use defaults":
// labeling.Best for the window and a near-even contiguous partition
// assigning higher dimensions to lower-numbered classes (the paper's
// Example 3 style).
type LevelSpec struct {
	// Labeling must satisfy Condition A over the level's window size.
	Labeling *labeling.Labeling
	// Partition[c] lists the dimensions of class c+1. It must exactly
	// cover the level's governed range. Near-evenness is not enforced:
	// the paper requires it only for the degree bound, not correctness.
	Partition [][]int
}

// New runs Construct(k, (n, n_{k-1}, ..., n_1)) for p and optional
// per-level overrides (specs[i] configures level i+2).
func New(p Params, specs ...LevelSpec) (*SparseHypercube, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(specs) > p.K-1 {
		return nil, fmt.Errorf("core: %d level specs for %d levels", len(specs), p.K-1)
	}
	n := p.N()
	s := &SparseHypercube{
		params:   p,
		n:        n,
		dimLevel: make([]uint8, n+1),
		dimClass: make([]uint8, n+1),
	}
	for d := 1; d <= p.Dims[0]; d++ {
		s.dimLevel[d] = 1
	}
	for l := 2; l <= p.K; l++ {
		var spec LevelSpec
		if idx := l - 2; idx < len(specs) {
			spec = specs[idx]
		}
		ld, err := buildLevel(p, l, spec)
		if err != nil {
			return nil, err
		}
		lo, hi := p.governedRange(l)
		for c, dims := range ld.classDims {
			for _, d := range dims {
				if d <= lo || d > hi {
					return nil, fmt.Errorf("core: level %d partition dimension %d outside (%d,%d]", l, d, lo, hi)
				}
				if s.dimLevel[d] != 0 {
					return nil, fmt.Errorf("core: level %d partition repeats dimension %d", l, d)
				}
				s.dimLevel[d] = uint8(l)
				s.dimClass[d] = uint8(c)
			}
		}
		for d := lo + 1; d <= hi; d++ {
			if s.dimLevel[d] == 0 {
				return nil, fmt.Errorf("core: level %d partition misses dimension %d", l, d)
			}
		}
		s.levels = append(s.levels, ld)
	}
	s.routes = buildRoutes(n, s.levels)
	return s, nil
}

// buildRoutes flattens the level labelings into per-dimension routing
// tables (see dimRoute). Dimensions in one partition class share one
// table, so the total size is sum over levels of 2^w * numLabels
// uint16s — windows are O(n^(1/k)) bits, a few KB at most.
func buildRoutes(n int, levels []levelData) []dimRoute {
	routes := make([]dimRoute, n+1)
	for li := range levels {
		ld := &levels[li]
		w := ld.whi - ld.wlo
		for c, dims := range ld.classDims {
			if len(dims) == 0 {
				continue
			}
			table := make([]uint16, 1<<uint(w))
			for x := uint64(0); x < 1<<uint(w); x++ {
				if b := ld.lab.DominatorBit(x, c); b >= 0 {
					// Window bit b is dimension wlo+b+1; 0 stays
					// "direct", which DominatorBit reports as -1
					// (label already c).
					table[x] = uint16(ld.wlo + b + 1)
				}
			}
			r := dimRoute{shift: uint(ld.wlo), mask: 1<<uint(w) - 1, table: table}
			for _, d := range dims {
				routes[d] = r
			}
		}
	}
	return routes
}

func buildLevel(p Params, l int, spec LevelSpec) (levelData, error) {
	w := p.windowSize(l)
	lab := spec.Labeling
	if lab == nil {
		var err error
		lab, err = labeling.Best(w)
		if err != nil {
			return levelData{}, err
		}
	}
	if lab.M() != w {
		return levelData{}, fmt.Errorf("core: level %d labeling is over Q_%d, want Q_%d", l, lab.M(), w)
	}
	lo, hi := p.governedRange(l)
	part := spec.Partition
	if part == nil {
		part = defaultPartition(lo, hi, lab.NumLabels())
	}
	if len(part) != lab.NumLabels() {
		return levelData{}, fmt.Errorf("core: level %d partition has %d classes, labeling has %d",
			l, len(part), lab.NumLabels())
	}
	return levelData{wlo: p.windowLow(l), whi: p.Dims[l-2], lab: lab, classDims: part}, nil
}

// defaultPartition splits (lo, hi] into numClasses near-even contiguous
// chunks, highest dimensions first (S_1 = {hi, hi-1, ...} as in the
// paper's Example 3). Classes may be empty when hi-lo < numClasses.
func defaultPartition(lo, hi, numClasses int) [][]int {
	total := hi - lo
	part := make([][]int, numClasses)
	d := hi
	for c := 0; c < numClasses; c++ {
		size := total / numClasses
		if c < total%numClasses {
			size++
		}
		for j := 0; j < size; j++ {
			part[c] = append(part[c], d)
			d--
		}
	}
	return part
}

// Params returns the construction parameters.
func (s *SparseHypercube) Params() Params { return s.params }

// N returns the cube dimension n.
func (s *SparseHypercube) N() int { return s.n }

// K returns the call-length bound the construction targets.
func (s *SparseHypercube) K() int { return s.params.K }

// Order returns 2^n.
func (s *SparseHypercube) Order() uint64 { return 1 << uint(s.n) }

// Level returns the level of dimension d: 1 for the always-present base
// region d <= n_1, otherwise l with d in (n_{l-1}, n_l].
func (s *SparseHypercube) Level(d int) int {
	s.checkDim(d)
	return int(s.dimLevel[d])
}

// DimClass returns the partition class (0-based) owning dimension d; -1
// for base dimensions.
func (s *SparseHypercube) DimClass(d int) int {
	s.checkDim(d)
	if s.dimLevel[d] == 1 {
		return -1
	}
	return int(s.dimClass[d])
}

func (s *SparseHypercube) checkDim(d int) {
	if d < 1 || d > s.n {
		panic(fmt.Sprintf("core: dimension %d out of [1,%d]", d, s.n))
	}
}

func (s *SparseHypercube) checkVertex(u uint64) {
	if u >= s.Order() {
		panic(fmt.Sprintf("core: vertex %d outside [0,2^%d)", u, s.n))
	}
}

// levelOf returns the levelData for level l >= 2.
func (s *SparseHypercube) levelOf(l int) *levelData { return &s.levels[l-2] }

// windowValue extracts u's bits in the level's label window.
func (ld *levelData) windowValue(u uint64) uint64 {
	return (u >> uint(ld.wlo)) & (1<<uint(ld.whi-ld.wlo) - 1)
}

// LabelAt returns g_l(u), the level-l label of vertex u.
func (s *SparseHypercube) LabelAt(l int, u uint64) int {
	if l < 2 || l > s.params.K {
		panic(fmt.Sprintf("core: level %d out of [2,%d]", l, s.params.K))
	}
	s.checkVertex(u)
	ld := s.levelOf(l)
	return ld.lab.Label(ld.windowValue(u))
}

// HasEdgeDim reports whether the dimension-d edge {u, u xor 2^(d-1)} is
// present.
func (s *SparseHypercube) HasEdgeDim(u uint64, d int) bool {
	s.checkDim(d)
	s.checkVertex(u)
	return s.hasEdgeDim(u, d)
}

// hasEdgeDim is HasEdgeDim without range checks, for validated-input hot
// paths (schedule generation evaluates it once per call-path hop).
func (s *SparseHypercube) hasEdgeDim(u uint64, d int) bool {
	l := s.dimLevel[d]
	if l == 1 {
		return true
	}
	ld := s.levelOf(int(l))
	return ld.lab.Label(ld.windowValue(u)) == int(s.dimClass[d])
}

// HasEdge implements linecomm.Network: u ~ v iff they differ in exactly
// one bit whose dimension edge is present at u.
func (s *SparseHypercube) HasEdge(u, v uint64) bool {
	if u >= s.Order() || v >= s.Order() {
		return false
	}
	x := u ^ v
	if x == 0 || x&(x-1) != 0 {
		return false
	}
	d := 1
	for x>>1 != 0 {
		x >>= 1
		d++
	}
	return s.HasEdgeDim(u, d)
}

// Neighbors returns the sorted adjacency of u.
func (s *SparseHypercube) Neighbors(u uint64) []uint64 {
	s.checkVertex(u)
	var out []uint64
	for d := 1; d <= s.n; d++ {
		if s.HasEdgeDim(u, d) {
			out = append(out, u^(1<<uint(d-1)))
		}
	}
	return out
}

// DegreeOf returns the degree of vertex u: n_1 plus, per level, the size
// of the class owning u's label.
func (s *SparseHypercube) DegreeOf(u uint64) int {
	s.checkVertex(u)
	d := s.params.Dims[0]
	for i := range s.levels {
		ld := &s.levels[i]
		d += len(ld.classDims[ld.lab.Label(ld.windowValue(u))])
	}
	return d
}

// MaxDegree returns the exact maximum degree: every label combination
// occurs (windows are disjoint bit ranges), so it is n_1 plus the largest
// class size per level — the Lemma 1 quantity.
func (s *SparseHypercube) MaxDegree() int {
	d := s.params.Dims[0]
	for i := range s.levels {
		max := 0
		for _, dims := range s.levels[i].classDims {
			if len(dims) > max {
				max = len(dims)
			}
		}
		d += max
	}
	return d
}

// MinDegree returns the exact minimum degree (n_1 plus smallest class
// sizes).
func (s *SparseHypercube) MinDegree() int {
	d := s.params.Dims[0]
	for i := range s.levels {
		min := -1
		for _, dims := range s.levels[i].classDims {
			if min < 0 || len(dims) < min {
				min = len(dims)
			}
		}
		if min > 0 {
			d += min
		}
	}
	return d
}

// NumEdges returns the exact edge count. Base dimensions contribute
// 2^(n-1) each; a level-l dimension owned by class c contributes one edge
// per vertex pair whose label is c: 2^(n-1) * |class c| / 2^w.
func (s *SparseHypercube) NumEdges() uint64 {
	total := uint64(s.params.Dims[0]) << uint(s.n-1)
	for i := range s.levels {
		ld := &s.levels[i]
		w := ld.whi - ld.wlo
		for c, dims := range ld.classDims {
			if len(dims) == 0 {
				continue
			}
			classSize := uint64(ld.lab.ClassSize(c))
			// edges per owned dimension = 2^(n-1) * classSize / 2^w
			total += uint64(len(dims)) * (classSize << uint(s.n-1-w))
		}
	}
	return total
}

// Graph materialises the construction as an explicit graph (vertex ids
// are the cube labels). Limited to n <= MaxMaterializeN.
func (s *SparseHypercube) Graph() (*graph.Graph, error) {
	if s.n > MaxMaterializeN {
		return nil, fmt.Errorf("core: refusing to materialise 2^%d vertices (max n = %d)", s.n, MaxMaterializeN)
	}
	order := int(s.Order())
	b := graph.NewBuilder(order)
	for u := 0; u < order; u++ {
		for d := 1; d <= s.n; d++ {
			v := u ^ 1<<uint(d-1)
			if u < v && s.HasEdgeDim(uint64(u), d) {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Finish(), nil
}

// NewBase runs Construct_BASE(n, m) (paper §3).
func NewBase(n, m int, specs ...LevelSpec) (*SparseHypercube, error) {
	return New(BaseParams(n, m), specs...)
}

// NewRec runs Construct_REC(n, a, b) (paper §4.1, k = 3).
func NewRec(n, a, b int, specs ...LevelSpec) (*SparseHypercube, error) {
	return New(RecParams(n, a, b), specs...)
}

// NewHypercube returns the degenerate k = 1 construction: the full Q_n.
func NewHypercube(n int) (*SparseHypercube, error) {
	return New(HypercubeParams(n))
}

// NewAuto builds the construction for (k, n) with automatically chosen
// parameters (Theorem 5/7 seeds plus local search).
func NewAuto(k, n int) (*SparseHypercube, error) {
	p, err := AutoParams(k, n)
	if err != nil {
		return nil, err
	}
	return New(p)
}
