package core

import (
	"testing"
)

func TestAccessorsAndPanics(t *testing.T) {
	s, err := NewRec(7, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Params(); got.K != 3 || got.N() != 7 {
		t.Errorf("Params() = %v", got)
	}
	// Level/DimClass over the whole dimension range.
	wantLevel := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 6: 3, 7: 3}
	for d, l := range wantLevel {
		if s.Level(d) != l {
			t.Errorf("Level(%d) = %d, want %d", d, s.Level(d), l)
		}
	}
	for d := 1; d <= 2; d++ {
		if s.DimClass(d) != -1 {
			t.Errorf("base dim %d should have class -1", d)
		}
	}
	for d := 3; d <= 7; d++ {
		if c := s.DimClass(d); c < 0 || c > 1 {
			t.Errorf("DimClass(%d) = %d out of range", d, c)
		}
	}
	for _, fn := range []func(){
		func() { s.Level(0) },
		func() { s.Level(8) },
		func() { s.DimClass(-1) },
		func() { s.HasEdgeDim(1<<7, 3) },
		func() { s.DegreeOf(1 << 7) },
		func() { s.LabelAt(1, 0) },
		func() { s.LabelAt(4, 0) },
		func() { s.CallPath(0, 0) },
		func() { s.BroadcastSchedule(1 << 7) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestNewAutoEndToEnd(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4} {
		s, err := NewAuto(k, 11)
		if err != nil {
			t.Fatal(err)
		}
		if s.N() != 11 {
			t.Errorf("k=%d: n = %d", k, s.N())
		}
		if s.K() > k {
			t.Errorf("k=%d: construction uses %d levels > k", k, s.K())
		}
	}
	if _, err := NewAuto(0, 5); err == nil {
		t.Error("expected error for k = 0")
	}
}

func TestBoundPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { UpperBoundTheorem5(0) },
		func() { UpperBoundTheorem7(2, 10) },
		func() { UpperBoundTheorem7(5, 5) },
		func() { UpperBoundCorollary1(1) },
		func() { Corollary1K(1) },
		func() { LowerBoundDegree(0, 5) },
		func() { Theorem1K(3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestTheorem7ParamsDomainErrors(t *testing.T) {
	if _, err := Theorem7Params(2, 10); err == nil {
		t.Error("k = 2 should be rejected")
	}
	if _, err := Theorem7Params(5, 5); err == nil {
		t.Error("n <= k should be rejected")
	}
	// Very tight n: either a valid vector or a clean error.
	for k := 3; k <= 6; k++ {
		p, err := Theorem7Params(k, k+1)
		if err == nil {
			if verr := p.Validate(); verr != nil {
				t.Errorf("k=%d n=%d: returned invalid params: %v", k, k+1, verr)
			}
		}
	}
}
