package core

import (
	"strings"
	"testing"
	"testing/quick"

	"sparsehypercube/internal/graph"
	"sparsehypercube/internal/labeling"
)

// paperG42 builds G_{4,2} exactly as in the paper's Example 2 / Fig. 3:
// Example-1 labeling of Q_2 (f(00)=f(11)=c1, f(01)=f(10)=c2) and partition
// S_1 = {3}, S_2 = {4}.
func paperG42(t *testing.T) *SparseHypercube {
	t.Helper()
	s, err := NewBase(4, 2, LevelSpec{
		Labeling:  labeling.PaperExample1Q2(),
		Partition: [][]int{{3}, {4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{K: 0, Dims: nil},
		{K: 2, Dims: []int{3}},
		{K: 2, Dims: []int{0, 4}},
		{K: 2, Dims: []int{4, 4}},
		{K: 3, Dims: []int{3, 2, 7}},
		{K: 2, Dims: []int{2, MaxN + 1}},
		{K: 2, Dims: []int{labeling.MaxWindow + 1, labeling.MaxWindow + 5}},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Params %v should be invalid", p)
		}
	}
	good := []Params{
		{K: 1, Dims: []int{5}},
		{K: 2, Dims: []int{2, 4}},
		{K: 3, Dims: []int{2, 4, 7}},
		{K: 4, Dims: []int{1, 2, 3, 10}},
	}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("Params %v: %v", p, err)
		}
	}
}

func TestParamsString(t *testing.T) {
	p := RecParams(7, 4, 2)
	if got := p.String(); got != "Construct(3, [7 4 2])" {
		t.Errorf("String = %q", got)
	}
}

// Example 2 / Fig. 3: G_{4,2} has 16 vertices, is 3-regular (so 24 edges),
// and contains/omits the specific edges the text names.
func TestPaperExample2Fig3(t *testing.T) {
	s := paperG42(t)
	if s.Order() != 16 {
		t.Fatalf("order = %d", s.Order())
	}
	if s.MaxDegree() != 3 || s.MinDegree() != 3 {
		t.Fatalf("G_{4,2} degrees: max %d min %d, want 3-regular", s.MaxDegree(), s.MinDegree())
	}
	if s.NumEdges() != 24 {
		t.Fatalf("|E| = %d, want 24", s.NumEdges())
	}
	// g(0011) = g(0111) = g(1011) = g(1111) = c1 (label 0).
	for _, u := range []uint64{0b0011, 0b0111, 0b1011, 0b1111} {
		if s.LabelAt(2, u) != 0 {
			t.Errorf("g(%04b) = %d, want c1", u, s.LabelAt(2, u))
		}
	}
	// Vertex 0011 is connected with 0111 via the dimension-3 edge
	// (S_1 = {3}, g(0011) = c1).
	if !s.HasEdge(0b0011, 0b0111) {
		t.Error("edge {0011, 0111} missing")
	}
	// 0000 has label c1, so its dimension-4 edge (S_2) is absent:
	if s.HasEdge(0b0000, 0b1000) {
		t.Error("edge {0000, 1000} should be absent")
	}
	// Rule 1 edges (Fig. 2): dimensions 1 and 2 are always present.
	for u := uint64(0); u < 16; u++ {
		if !s.HasEdgeDim(u, 1) || !s.HasEdgeDim(u, 2) {
			t.Errorf("Rule-1 edge missing at %04b", u)
		}
	}
	// Full degree profile via materialisation.
	g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() != 3 || g.MinDegree() != 3 || g.NumEdges() != 24 {
		t.Fatalf("materialised G_{4,2}: max %d min %d edges %d", g.MaxDegree(), g.MinDegree(), g.NumEdges())
	}
	if !graph.IsConnected(g) {
		t.Fatal("G_{4,2} disconnected")
	}
}

// Example 5 / LABEL(7,4,2): g(x00y) = g(x11y) = c1 and g(x01y) = g(x10y) = c2
// for all x in {0,1}^3, y in {0,1}^2.
func TestPaperExample5Labeling(t *testing.T) {
	s, err := NewRec(7, 4, 2,
		LevelSpec{Labeling: labeling.PaperExample1Q2(), Partition: [][]int{{3}, {4}}},
		LevelSpec{Labeling: labeling.PaperExample1Q2()},
	)
	if err != nil {
		t.Fatal(err)
	}
	for x := uint64(0); x < 8; x++ {
		for y := uint64(0); y < 4; y++ {
			u00 := x<<4 | 0b00<<2 | y
			u11 := x<<4 | 0b11<<2 | y
			u01 := x<<4 | 0b01<<2 | y
			u10 := x<<4 | 0b10<<2 | y
			if s.LabelAt(3, u00) != 0 || s.LabelAt(3, u11) != 0 {
				t.Fatalf("g(%07b) or g(%07b) != c1", u00, u11)
			}
			if s.LabelAt(3, u01) != 1 || s.LabelAt(3, u10) != 1 {
				t.Fatalf("g(%07b) or g(%07b) != c2", u01, u10)
			}
		}
	}
}

// Example 6: in Construct_REC(7,4,2) with S_1 = {7,6}, S_2 = {5}, vertex
// 0000000 is adjacent to exactly 0000100, 0000010, 0000001 (Rule 1) and
// 1000000, 0100000 (Rule 2).
func TestPaperExample6Adjacency(t *testing.T) {
	s, err := NewRec(7, 4, 2,
		LevelSpec{Labeling: labeling.PaperExample1Q2(), Partition: [][]int{{3}, {4}}},
		LevelSpec{Labeling: labeling.PaperExample1Q2(), Partition: [][]int{{7, 6}, {5}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Neighbors(0)
	want := []uint64{0b0000001, 0b0000010, 0b0000100, 0b0100000, 0b1000000}
	if len(got) != len(want) {
		t.Fatalf("neighbors of 0000000 = %b, want %b", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("neighbors of 0000000 = %b, want %b", got, want)
		}
	}
	if s.DegreeOf(0) != 5 {
		t.Errorf("deg(0000000) = %d, want 5", s.DegreeOf(0))
	}
	// The default partition (high dims first) matches the paper's choice.
	s2, err := NewRec(7, 4, 2,
		LevelSpec{Labeling: labeling.PaperExample1Q2(), Partition: [][]int{{3}, {4}}},
		LevelSpec{Labeling: labeling.PaperExample1Q2()},
	)
	if err != nil {
		t.Fatal(err)
	}
	got2 := s2.Neighbors(0)
	if len(got2) != len(got) {
		t.Fatalf("default level-3 partition differs from paper: %b", got2)
	}
	for i := range got {
		if got2[i] != got[i] {
			t.Fatalf("default level-3 partition differs from paper: %b", got2)
		}
	}
}

// Example 3: G_{15,3} has maximum degree 6 = 3 + 3, less than half of
// Delta(Q_15) = 15.
func TestPaperExample3G153(t *testing.T) {
	s, err := NewBase(15, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxDegree() != 6 {
		t.Fatalf("Delta(G_{15,3}) = %d, want 6", s.MaxDegree())
	}
	if s.MinDegree() != 6 {
		t.Fatalf("G_{15,3} should be 6-regular, min = %d", s.MinDegree())
	}
	// lambda_3 = 4 classes, |S| = 12, so every class has exactly 3 dims.
	d, err := DegreeForParams(BaseParams(15, 3))
	if err != nil || d != 6 {
		t.Fatalf("DegreeForParams = %d, %v", d, err)
	}
	// Vertex 0 (label c1, S_1 = {15,14,13}) is adjacent to the three
	// highest-dimension flips, as in the paper's walkthrough.
	for _, d := range []int{15, 14, 13} {
		if !s.HasEdgeDim(0, d) {
			t.Errorf("edge dim %d missing at 000...0", d)
		}
	}
	for _, d := range []int{12, 11, 10, 9, 8, 7, 6, 5, 4} {
		if s.HasEdgeDim(0, d) {
			t.Errorf("edge dim %d unexpectedly present at 000...0", d)
		}
	}
}

// Lemma 1: the exact degree formula matches materialised graphs over a
// sweep of (n, m).
func TestLemma1DegreeFormula(t *testing.T) {
	for n := 2; n <= 9; n++ {
		for m := 1; m < n; m++ {
			s, err := NewBase(n, m)
			if err != nil {
				t.Fatal(err)
			}
			g, err := s.Graph()
			if err != nil {
				t.Fatal(err)
			}
			if g.MaxDegree() != s.MaxDegree() {
				t.Errorf("n=%d m=%d: formula Delta %d, graph %d", n, m, s.MaxDegree(), g.MaxDegree())
			}
			if g.MinDegree() != s.MinDegree() {
				t.Errorf("n=%d m=%d: formula delta %d, graph %d", n, m, s.MinDegree(), g.MinDegree())
			}
			if uint64(g.NumEdges()) != s.NumEdges() {
				t.Errorf("n=%d m=%d: formula |E| %d, graph %d", n, m, s.NumEdges(), g.NumEdges())
			}
			if !graph.IsConnected(g) {
				t.Errorf("n=%d m=%d: disconnected", n, m)
			}
			// Lemma 1 inequality: Delta <= ceil((n-m)/lambda_m) + m.
			lam := lambdaConstructive(m)
			if s.MaxDegree() > (n-m+lam-1)/lam+m {
				t.Errorf("n=%d m=%d: Lemma 1 bound violated", n, m)
			}
		}
	}
}

// The per-vertex degree accessor agrees with materialised degrees.
func TestDegreeOfMatchesGraph(t *testing.T) {
	for _, p := range []Params{BaseParams(8, 3), RecParams(9, 4, 2), {K: 4, Dims: []int{2, 4, 6, 10}}} {
		s, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		g, err := s.Graph()
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < g.NumVertices(); u++ {
			if g.Degree(u) != s.DegreeOf(uint64(u)) {
				t.Fatalf("%v: deg(%d) formula %d, graph %d", p, u, s.DegreeOf(uint64(u)), g.Degree(u))
			}
		}
	}
}

// Edge predicate must be symmetric: HasEdgeDim(u, d) == HasEdgeDim(u^bit, d).
// This is the property making Rule 2 well-defined (labels ignore the
// flipped bit, which lives above the label window).
func TestEdgeSymmetryProperty(t *testing.T) {
	s, err := New(Params{K: 4, Dims: []int{2, 5, 8, 12}})
	if err != nil {
		t.Fatal(err)
	}
	f := func(uRaw uint16, dRaw uint8) bool {
		u := uint64(uRaw) & (1<<12 - 1)
		d := int(dRaw)%12 + 1
		v := u ^ 1<<uint(d-1)
		return s.HasEdgeDim(u, d) == s.HasEdgeDim(v, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHasEdgeRejectsNonNeighbors(t *testing.T) {
	s := paperG42(t)
	if s.HasEdge(0, 0) {
		t.Error("self edge")
	}
	if s.HasEdge(0b0000, 0b0011) {
		t.Error("distance-2 pair reported adjacent")
	}
	if s.HasEdge(0, 16) || s.HasEdge(16, 0) {
		t.Error("out-of-range vertex reported adjacent")
	}
}

func TestHypercubeDegenerate(t *testing.T) {
	s, err := NewHypercube(5)
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxDegree() != 5 || s.MinDegree() != 5 || s.NumEdges() != 5*16 {
		t.Fatalf("Q_5 stats wrong: %d %d %d", s.MaxDegree(), s.MinDegree(), s.NumEdges())
	}
	for u := uint64(0); u < 32; u++ {
		for d := 1; d <= 5; d++ {
			if !s.HasEdgeDim(u, d) {
				t.Fatal("Q_5 missing an edge")
			}
		}
	}
}

func TestGraphMaterialiseLimit(t *testing.T) {
	s, err := New(Params{K: 2, Dims: []int{5, MaxMaterializeN + 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Graph(); err == nil {
		t.Error("expected materialisation refusal")
	}
}

func TestDescribe(t *testing.T) {
	s := paperG42(t)
	out := s.Describe()
	for _, want := range []string{"Construct(2, [4 2])", "base region: dimensions 1..2", "S_1 = {3}", "S_2 = {4}"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q:\n%s", want, out)
		}
	}
}

func TestLevelSpecValidation(t *testing.T) {
	// Partition with wrong class count.
	if _, err := NewBase(4, 2, LevelSpec{
		Labeling:  labeling.PaperExample1Q2(),
		Partition: [][]int{{3, 4}},
	}); err == nil {
		t.Error("expected class-count error")
	}
	// Partition with out-of-range dimension.
	if _, err := NewBase(4, 2, LevelSpec{
		Labeling:  labeling.PaperExample1Q2(),
		Partition: [][]int{{2}, {4}},
	}); err == nil {
		t.Error("expected range error")
	}
	// Partition missing a dimension.
	if _, err := NewBase(5, 2, LevelSpec{
		Labeling:  labeling.PaperExample1Q2(),
		Partition: [][]int{{3}, {4}},
	}); err == nil {
		t.Error("expected coverage error")
	}
	// Duplicate dimension.
	if _, err := NewBase(4, 2, LevelSpec{
		Labeling:  labeling.PaperExample1Q2(),
		Partition: [][]int{{3, 4}, {4}},
	}); err == nil {
		t.Error("expected duplicate error")
	}
	// Labeling over wrong window.
	if _, err := NewBase(5, 3, LevelSpec{Labeling: labeling.PaperExample1Q2()}); err == nil {
		t.Error("expected window mismatch error")
	}
	// Too many specs.
	if _, err := NewBase(4, 2, LevelSpec{}, LevelSpec{}); err == nil {
		t.Error("expected spec-count error")
	}
}
