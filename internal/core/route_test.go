package core

import (
	"testing"
)

// TestRouteTableMatchesLabeling re-derives every route entry from the
// labeling primitives: route[x][c] must be 0 exactly when x's label is c
// (direct edge), and otherwise name a window dimension whose flip moves
// the window value into class c (Condition A).
func TestRouteTableMatchesLabeling(t *testing.T) {
	for _, p := range []Params{
		BaseParams(10, 3),
		BaseParams(15, 3),
		RecParams(14, 7, 3),
		{K: 4, Dims: []int{2, 4, 7, 14}},
	} {
		s, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		for d := 1; d <= s.n; d++ {
			r := &s.routes[d]
			if s.Level(d) == 1 {
				if r.table != nil {
					t.Fatalf("%v d=%d: base dimension has a route table", p, d)
				}
				continue
			}
			ld := s.levelOf(s.Level(d))
			c := s.DimClass(d)
			w := ld.whi - ld.wlo
			if r.table == nil || len(r.table) != 1<<uint(w) ||
				r.shift != uint(ld.wlo) || r.mask != 1<<uint(w)-1 {
				t.Fatalf("%v d=%d: route table shape wrong: %+v", p, d, r)
			}
			for x := uint64(0); x < 1<<uint(w); x++ {
				got := int(r.table[x])
				if ld.lab.Label(x) == c {
					if got != 0 {
						t.Fatalf("%v d=%d x=%d: direct case routed via %d", p, d, x, got)
					}
					continue
				}
				if got <= ld.wlo || got > ld.whi {
					t.Fatalf("%v d=%d x=%d: helper %d outside window (%d,%d]",
						p, d, x, got, ld.wlo, ld.whi)
				}
				flipped := x ^ (1 << uint(got-ld.wlo-1))
				if ld.lab.Label(flipped) != c {
					t.Fatalf("%v d=%d x=%d: flipping dim %d lands in class %d",
						p, d, x, got, ld.lab.Label(flipped))
				}
			}
		}
	}
}

// TestExtendPathAgreesWithHasEdge walks every call path produced for
// level >= 2 dimensions and checks each hop is a real edge ending at the
// dimension-d flip of the caller (possibly with extra window flips, as
// the paper's "w calls +-i(+-j w)" allows).
func TestExtendPathAgreesWithHasEdge(t *testing.T) {
	s, err := New(Params{K: 3, Dims: []int{2, 5, 12}})
	if err != nil {
		t.Fatal(err)
	}
	for u := uint64(0); u < s.Order(); u += 13 {
		for d := s.params.Dims[0] + 1; d <= s.n; d++ {
			path := s.CallPath(u, d)
			if len(path) < 2 || path[0] != u {
				t.Fatalf("u=%d d=%d: bad path %v", u, d, path)
			}
			for i := 1; i < len(path); i++ {
				if !s.HasEdge(path[i-1], path[i]) {
					t.Fatalf("u=%d d=%d: hop {%d,%d} is not an edge", u, d, path[i-1], path[i])
				}
			}
			if got := path[len(path)-1] ^ u; got&(1<<uint(d-1)) == 0 {
				t.Fatalf("u=%d d=%d: endpoint %d does not flip bit d", u, d, path[len(path)-1])
			}
			if got := len(path) - 1; got > s.Level(d) {
				t.Fatalf("u=%d d=%d: path length %d exceeds level %d", u, d, got, s.Level(d))
			}
		}
	}
}
