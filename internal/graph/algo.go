package graph

import (
	"math/bits"

	"sparsehypercube/internal/bitvec"
)

// BFS returns the distance from src to every vertex (-1 if unreachable).
func BFS(g *Graph, src int) []int32 {
	dist := make([]int32, g.NumVertices())
	for i := range dist {
		dist[i] = -1
	}
	BFSInto(g, src, dist, nil)
	return dist
}

// BFSInto runs BFS from src writing distances into dist (which must be
// pre-filled with -1 and have length NumVertices). queue, if non-nil, is
// used as scratch space to avoid allocation across repeated calls.
func BFSInto(g *Graph, src int, dist []int32, queue []int32) {
	if queue == nil {
		queue = make([]int32, 0, g.NumVertices())
	}
	queue = queue[:0]
	dist[src] = 0
	queue = append(queue, int32(src))
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := dist[v]
		for _, w := range g.Neighbors(int(v)) {
			if dist[w] < 0 {
				dist[w] = dv + 1
				queue = append(queue, w)
			}
		}
	}
}

// Distance returns dist(u, v), or -1 if disconnected.
func Distance(g *Graph, u, v int) int {
	if u == v {
		return 0
	}
	return int(BFS(g, u)[v])
}

// ShortestPath returns one shortest u-v path as a vertex sequence
// (inclusive of both endpoints), or nil if v is unreachable from u.
func ShortestPath(g *Graph, u, v int) []int {
	if u == v {
		return []int{u}
	}
	prev := make([]int32, g.NumVertices())
	for i := range prev {
		prev[i] = -1
	}
	prev[u] = int32(u)
	queue := []int32{int32(u)}
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		for _, w := range g.Neighbors(int(x)) {
			if prev[w] < 0 {
				prev[w] = x
				if int(w) == v {
					return tracePath(prev, u, v)
				}
				queue = append(queue, w)
			}
		}
	}
	return nil
}

func tracePath(prev []int32, u, v int) []int {
	var rev []int
	for x := v; ; x = int(prev[x]) {
		rev = append(rev, x)
		if x == u {
			break
		}
	}
	path := make([]int, len(rev))
	for i := range rev {
		path[i] = rev[len(rev)-1-i]
	}
	return path
}

// Eccentricity returns the greatest distance from v to any vertex, or -1
// if the graph is disconnected from v.
func Eccentricity(g *Graph, v int) int {
	dist := BFS(g, v)
	ecc := 0
	for _, d := range dist {
		if d < 0 {
			return -1
		}
		if int(d) > ecc {
			ecc = int(d)
		}
	}
	return ecc
}

// Diameter returns the diameter of g (max eccentricity), or -1 if g is
// disconnected or empty. It runs BFS from every vertex: fine for the
// at-most-2^20-vertex graphs used in the experiments, and exact.
func Diameter(g *Graph) int {
	n := g.NumVertices()
	if n == 0 {
		return -1
	}
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	diam := 0
	for v := 0; v < n; v++ {
		for i := range dist {
			dist[i] = -1
		}
		BFSInto(g, v, dist, queue)
		for _, d := range dist {
			if d < 0 {
				return -1
			}
			if int(d) > diam {
				diam = int(d)
			}
		}
	}
	return diam
}

// IsConnected reports whether g is connected (the empty graph is not; the
// single vertex is).
func IsConnected(g *Graph) bool {
	n := g.NumVertices()
	if n == 0 {
		return false
	}
	dist := BFS(g, 0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// Components returns a component id per vertex (ids are 0-based, assigned
// in order of discovery) and the number of components.
func Components(g *Graph) ([]int32, int) {
	n := g.NumVertices()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	id := int32(0)
	var queue []int32
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = id
		queue = append(queue[:0], int32(s))
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, w := range g.Neighbors(int(v)) {
				if comp[w] < 0 {
					comp[w] = id
					queue = append(queue, w)
				}
			}
		}
		id++
	}
	return comp, int(id)
}

// IsBipartite reports whether g is 2-colorable.
func IsBipartite(g *Graph) bool {
	n := g.NumVertices()
	color := make([]int8, n)
	var queue []int32
	for s := 0; s < n; s++ {
		if color[s] != 0 {
			continue
		}
		color[s] = 1
		queue = append(queue[:0], int32(s))
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, w := range g.Neighbors(int(v)) {
				switch color[w] {
				case 0:
					color[w] = -color[v]
					queue = append(queue, w)
				case color[v]:
					return false
				}
			}
		}
	}
	return true
}

// IsTree reports whether g is connected and acyclic.
func IsTree(g *Graph) bool {
	return IsConnected(g) && g.NumEdges() == g.NumVertices()-1
}

// IsDominatingSet reports whether set dominates g: every vertex is in set
// or adjacent to a member of set.
func IsDominatingSet(g *Graph, set *bitvec.Set) bool {
	if set.Len() != g.NumVertices() {
		panic("graph: dominating set universe mismatch")
	}
	for v := 0; v < g.NumVertices(); v++ {
		if set.Get(v) {
			continue
		}
		dominated := false
		for _, w := range g.Neighbors(v) {
			if set.Get(int(w)) {
				dominated = true
				break
			}
		}
		if !dominated {
			return false
		}
	}
	return true
}

// MinDominatingSetSize computes the domination number of g exactly by
// branch and bound. Intended for small graphs (n <= ~32); panics above 63
// vertices.
func MinDominatingSetSize(g *Graph) int {
	n := g.NumVertices()
	if n > 63 {
		panic("graph: MinDominatingSetSize limited to 63 vertices")
	}
	// closed[v] = closed neighborhood mask of v.
	closed := make([]uint64, n)
	for v := 0; v < n; v++ {
		m := uint64(1) << uint(v)
		for _, w := range g.Neighbors(v) {
			m |= 1 << uint(w)
		}
		closed[v] = m
	}
	full := uint64(1)<<uint(n) - 1
	best := n
	var rec func(covered uint64, size int)
	rec = func(covered uint64, size int) {
		if size >= best {
			return
		}
		if covered == full {
			best = size
			return
		}
		// Pick the lowest uncovered vertex; some member of its closed
		// neighborhood must be in the set.
		var u int
		for u = 0; u < n; u++ {
			if covered&(1<<uint(u)) == 0 {
				break
			}
		}
		cands := closed[u]
		for cands != 0 {
			v := bits.TrailingZeros64(cands)
			cands &= cands - 1
			rec(covered|closed[v], size+1)
		}
	}
	rec(0, 0)
	return best
}
