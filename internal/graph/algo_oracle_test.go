package graph

import (
	"math/rand"
	"testing"
)

// Floyd–Warshall oracle for the BFS-based algorithms in algo.go: an
// O(n^3) all-pairs distance matrix over graphs of at most 64 vertices,
// computed with none of the code under test.
func floydWarshall(g *Graph) [][]int {
	n := g.NumVertices()
	const inf = 1 << 20
	d := make([][]int, n)
	for i := range d {
		d[i] = make([]int, n)
		for j := range d[i] {
			if i == j {
				d[i][j] = 0
			} else {
				d[i][j] = inf
			}
		}
	}
	g.Edges(func(u, v int) {
		d[u][v] = 1
		d[v][u] = 1
	})
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d[i][k]+d[k][j] < d[i][j] {
					d[i][j] = d[i][k] + d[k][j]
				}
			}
		}
	}
	for i := range d {
		for j := range d[i] {
			if d[i][j] >= inf {
				d[i][j] = -1 // unreachable, matching BFS's convention
			}
		}
	}
	return d
}

// TestAlgoAgainstFloydWarshall crosschecks BFS, Distance, ShortestPath,
// Eccentricity, Diameter, IsConnected and Components against the
// all-pairs oracle on sparse, dense and disconnected random graphs.
func TestAlgoAgainstFloydWarshall(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(63) + 2
		// Sweep density: seed mod 3 picks sparse (likely disconnected),
		// medium, and dense.
		m := []int{n / 2, 2 * n, n * n / 4}[seed%3]
		g := randomGraph(seed, n, m)
		d := floydWarshall(g)

		for u := 0; u < n; u++ {
			dist := BFS(g, u)
			for v := 0; v < n; v++ {
				if int(dist[v]) != d[u][v] {
					t.Fatalf("seed %d: BFS(%d)[%d] = %d, oracle %d", seed, u, v, dist[v], d[u][v])
				}
			}
		}
		for trial := 0; trial < 20; trial++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if got := Distance(g, u, v); got != d[u][v] {
				t.Fatalf("seed %d: Distance(%d,%d) = %d, oracle %d", seed, u, v, got, d[u][v])
			}
			p := ShortestPath(g, u, v)
			if d[u][v] < 0 {
				if p != nil {
					t.Fatalf("seed %d: path %v between disconnected %d,%d", seed, p, u, v)
				}
				continue
			}
			if len(p) != d[u][v]+1 || p[0] != u || p[len(p)-1] != v {
				t.Fatalf("seed %d: ShortestPath(%d,%d) = %v, oracle length %d", seed, u, v, p, d[u][v])
			}
			for i := 1; i < len(p); i++ {
				if !g.HasEdge(p[i-1], p[i]) {
					t.Fatalf("seed %d: path %v uses non-edge {%d,%d}", seed, p, p[i-1], p[i])
				}
			}
		}

		connected := true
		diam := 0
		for u := 0; u < n; u++ {
			ecc := 0
			for v := 0; v < n; v++ {
				if d[u][v] < 0 {
					connected = false
					ecc = -1
					break
				}
				if d[u][v] > ecc {
					ecc = d[u][v]
				}
			}
			if got := Eccentricity(g, u); got != ecc {
				t.Fatalf("seed %d: Eccentricity(%d) = %d, oracle %d", seed, u, got, ecc)
			}
			if ecc > diam {
				diam = ecc
			}
		}
		if !connected {
			diam = -1
		}
		if got := Diameter(g); got != diam {
			t.Fatalf("seed %d: Diameter = %d, oracle %d", seed, got, diam)
		}
		if got := IsConnected(g); got != connected {
			t.Fatalf("seed %d: IsConnected = %v, oracle %v", seed, got, connected)
		}

		comp, k := Components(g)
		// Same component iff finite oracle distance; ids dense in [0, k).
		maxID := int32(-1)
		for u := 0; u < n; u++ {
			if comp[u] > maxID {
				maxID = comp[u]
			}
			for v := 0; v < n; v++ {
				same := comp[u] == comp[v]
				if same != (d[u][v] >= 0) {
					t.Fatalf("seed %d: components disagree with oracle at (%d,%d)", seed, u, v)
				}
			}
		}
		if int(maxID)+1 != k {
			t.Fatalf("seed %d: %d components but max id %d", seed, k, maxID)
		}
		if (k == 1) != connected {
			t.Fatalf("seed %d: k=%d vs connected=%v", seed, k, connected)
		}
	}
}
