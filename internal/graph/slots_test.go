package graph

import (
	"math/rand"
	"testing"
)

// graphFromBytes decodes a fuzz payload into a graph: byte 0 picks the
// vertex count in [2, 33], then consecutive byte pairs are candidate
// edges (reduced mod n, self-loops dropped). Duplicate pairs are
// deliberately kept so the builder's coalescing is always in play.
func graphFromBytes(data []byte) (*Graph, [][2]int) {
	if len(data) == 0 {
		data = []byte{0}
	}
	n := int(data[0])%32 + 2
	b := NewBuilder(n)
	var edges [][2]int
	for i := 1; i+1 < len(data); i += 2 {
		u, v := int(data[i])%n, int(data[i+1])%n
		if u == v {
			continue
		}
		b.AddEdge(u, v)
		if u > v {
			u, v = v, u
		}
		edges = append(edges, [2]int{u, v})
	}
	return b.Finish(), edges
}

// FuzzEdgeSlotNumbering checks the slot-numbering invariants on
// arbitrary constructions: the mapping Edges -> [0, NumEdgeSlots) is a
// bijection, symmetric in endpoint order, inverted exactly by
// SlotEndpoints, rejects non-edges, and is a pure function of the edge
// set (stable under insertion order).
func FuzzEdgeSlotNumbering(f *testing.F) {
	f.Add([]byte{4, 0, 1, 1, 2, 2, 3, 3, 0})     // C4 plus dup potential
	f.Add([]byte{0, 0, 1, 0, 1, 1, 0})           // duplicates both ways
	f.Add([]byte{30, 5, 9, 9, 5, 17, 3, 29, 29}) // self-loop byte pair dropped
	f.Add([]byte{8})                             // edgeless
	f.Fuzz(func(t *testing.T, data []byte) {
		g, inserted := graphFromBytes(data)
		n := g.NumVertices()
		if g.NumEdgeSlots() != g.NumEdges() {
			t.Fatalf("slot universe %d != edge count %d", g.NumEdgeSlots(), g.NumEdges())
		}
		seen := make(map[int][2]int, g.NumEdges())
		g.Edges(func(u, v int) {
			s, ok := g.EdgeSlot(u, v)
			if !ok {
				t.Fatalf("edge {%d,%d} has no slot", u, v)
			}
			if s < 0 || s >= g.NumEdgeSlots() {
				t.Fatalf("slot %d outside [0,%d)", s, g.NumEdgeSlots())
			}
			if prev, dup := seen[s]; dup {
				t.Fatalf("slot %d claimed by {%d,%d} and {%d,%d}", s, prev[0], prev[1], u, v)
			}
			seen[s] = [2]int{u, v}
			if s2, ok2 := g.EdgeSlot(v, u); !ok2 || s2 != s {
				t.Fatalf("EdgeSlot(%d,%d)=%d,%v but EdgeSlot(%d,%d)=%d,%v", u, v, s, ok, v, u, s2, ok2)
			}
			if ru, rv := g.SlotEndpoints(s); ru != u || rv != v {
				t.Fatalf("SlotEndpoints(%d) = {%d,%d}, want {%d,%d}", s, ru, rv, u, v)
			}
		})
		if len(seen) != g.NumEdges() {
			t.Fatalf("numbering covers %d of %d edges", len(seen), g.NumEdges())
		}
		// Non-edges, self-loops and out-of-range pairs have no slot.
		for v := 0; v < n; v++ {
			if _, ok := g.EdgeSlot(v, v); ok {
				t.Fatalf("self-loop {%d,%d} got a slot", v, v)
			}
		}
		for _, pair := range [][2]int{{-1, 0}, {0, n}, {n, n + 1}, {-2, -1}} {
			if _, ok := g.EdgeSlot(pair[0], pair[1]); ok {
				t.Fatalf("out-of-range pair %v got a slot", pair)
			}
		}
		for u := 0; u < n && u < 8; u++ {
			for v := u + 1; v < n; v++ {
				_, ok := g.EdgeSlot(u, v)
				if ok != g.HasEdge(u, v) {
					t.Fatalf("EdgeSlot(%d,%d) ok=%v but HasEdge=%v", u, v, ok, g.HasEdge(u, v))
				}
			}
		}
		// Insertion order must not matter: rebuild from the recorded pairs
		// in reversed order and compare every slot.
		b := NewBuilder(n)
		for i := len(inserted) - 1; i >= 0; i-- {
			b.AddEdge(inserted[i][1], inserted[i][0])
		}
		g2 := b.Finish()
		if g2.NumEdgeSlots() != g.NumEdgeSlots() {
			t.Fatalf("reordered build: %d slots vs %d", g2.NumEdgeSlots(), g.NumEdgeSlots())
		}
		g.Edges(func(u, v int) {
			s1, _ := g.EdgeSlot(u, v)
			s2, ok := g2.EdgeSlot(u, v)
			if !ok || s1 != s2 {
				t.Fatalf("slot of {%d,%d} unstable under insertion order: %d vs %d (ok=%v)", u, v, s1, s2, ok)
			}
		})
	})
}

// FuzzGraphConstruction checks the builder's structural invariants on
// arbitrary inputs: coalesced duplicates, sorted neighbor lists,
// symmetric adjacency, and degree sums.
func FuzzGraphConstruction(f *testing.F) {
	f.Add([]byte{2, 0, 1, 0, 1, 1, 0})
	f.Add([]byte{15, 1, 2, 3, 4, 5, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, inserted := graphFromBytes(data)
		distinct := make(map[[2]int]bool, len(inserted))
		for _, e := range inserted {
			distinct[e] = true
		}
		if g.NumEdges() != len(distinct) {
			t.Fatalf("NumEdges %d, want %d distinct of %d inserted", g.NumEdges(), len(distinct), len(inserted))
		}
		degSum := 0
		for v := 0; v < g.NumVertices(); v++ {
			ns := g.Neighbors(v)
			degSum += len(ns)
			for i, w := range ns {
				if i > 0 && ns[i-1] >= w {
					t.Fatalf("neighbors of %d not strictly sorted: %v", v, ns)
				}
				if !g.HasEdge(int(w), v) {
					t.Fatalf("adjacency not symmetric: %d->%d", v, w)
				}
				if !distinct[[2]int{min(v, int(w)), max(v, int(w))}] {
					t.Fatalf("phantom edge {%d,%d}", v, w)
				}
			}
		}
		if degSum != 2*g.NumEdges() {
			t.Fatalf("degree sum %d != 2m = %d", degSum, 2*g.NumEdges())
		}
	})
}

// TestBuilderRejectsBadEdges pins the panic contract: self-loops and
// out-of-range endpoints are construction bugs, not data.
func TestBuilderRejectsBadEdges(t *testing.T) {
	for _, tc := range []struct {
		name string
		u, v int
	}{
		{"self-loop", 3, 3},
		{"negative", -1, 2},
		{"beyond-n", 0, 8},
		{"both-bad", -1, 99},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("AddEdge(%d,%d) did not panic", tc.u, tc.v)
				}
			}()
			NewBuilder(8).AddEdge(tc.u, tc.v)
		})
	}
	t.Run("slot-out-of-range", func(t *testing.T) {
		b := NewBuilder(3)
		b.AddEdge(0, 1)
		g := b.Finish()
		for _, s := range []int{-1, 1, 99} {
			func() {
				defer func() {
					if recover() == nil {
						t.Fatalf("SlotEndpoints(%d) did not panic", s)
					}
				}()
				g.SlotEndpoints(s)
			}()
		}
	})
}

// TestEdgeSlotRandomGraphs is the deterministic (non-fuzz) sweep of the
// same invariants over larger random graphs, so `go test` alone gives
// coverage beyond the seed corpus.
func TestEdgeSlotRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 2
		g := randomGraph(seed, n, rng.Intn(4*n))
		seen := make([]bool, g.NumEdgeSlots())
		count := 0
		g.Edges(func(u, v int) {
			s, ok := g.EdgeSlot(u, v)
			if !ok || seen[s] {
				t.Fatalf("seed %d: edge {%d,%d} slot %d ok=%v dup=%v", seed, u, v, s, ok, ok && seen[s])
			}
			seen[s] = true
			count++
			if ru, rv := g.SlotEndpoints(s); ru != u || rv != v {
				t.Fatalf("seed %d: SlotEndpoints(%d) = {%d,%d}, want {%d,%d}", seed, s, ru, rv, u, v)
			}
		})
		if count != g.NumEdgeSlots() {
			t.Fatalf("seed %d: %d edges, %d slots", seed, count, g.NumEdgeSlots())
		}
	}
}
