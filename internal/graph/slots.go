package graph

import "sort"

// Edge-slot numbering: a dense bijection between the undirected edges of
// the graph and [0, NumEdges). It is derived entirely from the CSR
// arrays — the edge {u, v} with u < v gets slot
//
//	eoff[u] + rank of v among u's neighbors greater than u
//
// where eoff[u] counts the edges whose lower endpoint is below u. The
// up-neighbor lists are materialised once at Finish (uadj, the CSR of
// the lower-to-higher orientation), so EdgeSlot is a single search of
// an average deg(u)/2 entries and SlotEndpoints is a binary search over
// eoff plus one array read.
//
// The numbering is what lets the streaming validator index per-round
// edge-disjointness state for an arbitrary graph in flat arrays (one
// counter per slot) instead of hash maps — the same trick the
// dimensioned fast path plays with vertex*n + dim slots, without
// needing the one-bit-per-edge hypercube structure.

// NumEdgeSlots returns the size of the dense edge-slot universe, which
// equals NumEdges: every undirected edge owns exactly one slot.
func (g *Graph) NumEdgeSlots() int { return len(g.adj) / 2 }

// EdgeSlot returns the dense slot id of the edge {u, v}, in either
// endpoint order. ok is false exactly when HasEdge(u, v) is false:
// self-loops, out-of-range vertices and non-edges have no slot. This
// sits on the CSR engine's per-hop path, hence the hand-rolled search
// (see searchInt32) and the slotOf side array, which lets the lookup
// scan whichever endpoint has the shorter neighbor list — on skewed
// graphs (k-trees, stars) that turns a binary search of a hub's
// thousands of up-neighbors into a short linear scan at the other end.
func (g *Graph) EdgeSlot(u, v int) (int, bool) {
	if u < 0 || v < 0 || u >= g.n || v >= g.n || u == v {
		return 0, false
	}
	if g.off[u+1]-g.off[u] > g.off[v+1]-g.off[v] {
		u, v = v, u
	}
	i := searchInt32(g.adj[g.off[u]:g.off[u+1]], int32(v))
	if i < 0 {
		return 0, false
	}
	return int(g.slotOf[int(g.off[u])+i]), true
}

// SlotEndpoints inverts EdgeSlot: it returns the edge {u, v} (u < v)
// owning slot s. It panics if s is outside [0, NumEdgeSlots).
func (g *Graph) SlotEndpoints(s int) (u, v int) {
	if s < 0 || s >= g.NumEdgeSlots() {
		panic("graph: edge slot out of range")
	}
	// Largest u with eoff[u] <= s: eoff is nondecreasing with
	// eoff[n] = NumEdges, so the search is over the vertex axis.
	u = sort.Search(g.n, func(i int) bool { return int(g.eoff[i+1]) > s })
	return u, int(g.uadj[s])
}

// buildSlotIndex computes the slot index of a finished CSR graph: the
// eoff prefix-sum array (eoff[u] = number of edges {x, y} with x < y
// and x < u), the flat up-neighbor lists uadj (sorted, since each is a
// suffix of a sorted neighbor list), and the directed-edge slot array
// slotOf, aligned with adj. The down half of slotOf is filled with a
// per-vertex cursor: sweeping u upward hands v its down-neighbors in
// ascending order, which is exactly how they sit in v's sorted
// adjacency prefix, so each write lands at the cursor — O(m) total.
func buildSlotIndex(off, adj []int32, n int) (eoff, uadj, slotOf []int32) {
	eoff = make([]int32, n+1)
	uadj = make([]int32, len(adj)/2)
	slotOf = make([]int32, len(adj))
	cur := make([]int32, n)
	copy(cur, off[:n])
	for u := 0; u < n; u++ {
		ns := adj[off[u]:off[u+1]]
		// Up-neighbors are the suffix beyond the last w <= u.
		i := len(ns)
		for i > 0 && ns[i-1] > int32(u) {
			i--
		}
		eoff[u+1] = eoff[u] + int32(copy(uadj[eoff[u]:], ns[i:]))
		for j, v := range ns[i:] {
			s := eoff[u] + int32(j)
			slotOf[int(off[u])+i+j] = s
			slotOf[cur[v]] = s
			cur[v]++
		}
	}
	return eoff, uadj, slotOf
}
