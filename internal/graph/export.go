package graph

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT writes g in Graphviz DOT format. label, if non-nil, supplies a
// display label per vertex (default: the vertex index).
func WriteDOT(w io.Writer, g *Graph, name string, label func(v int) string) error {
	bw := bufio.NewWriter(w)
	if name == "" {
		name = "G"
	}
	fmt.Fprintf(bw, "graph %s {\n", name)
	for v := 0; v < g.NumVertices(); v++ {
		if label != nil {
			fmt.Fprintf(bw, "  %d [label=%q];\n", v, label(v))
		}
	}
	g.Edges(func(u, v int) {
		fmt.Fprintf(bw, "  %d -- %d;\n", u, v)
	})
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// WriteEdgeList writes one "u v" pair per line (u < v), optionally mapping
// vertices through label.
func WriteEdgeList(w io.Writer, g *Graph, label func(v int) string) error {
	bw := bufio.NewWriter(w)
	var err error
	g.Edges(func(u, v int) {
		if err != nil {
			return
		}
		if label != nil {
			_, err = fmt.Fprintf(bw, "%s %s\n", label(u), label(v))
		} else {
			_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}
