package graph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"sparsehypercube/internal/bitvec"
)

// k4 returns the complete graph on 4 vertices.
func k4() *Graph {
	return FromEdges(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
}

// c5 returns the 5-cycle.
func c5() *Graph {
	return FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
}

// p4 returns the path on 4 vertices.
func p4() *Graph {
	return FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
}

func TestBuilderBasics(t *testing.T) {
	g := k4()
	if g.NumVertices() != 4 || g.NumEdges() != 6 {
		t.Fatalf("K4: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	for v := 0; v < 4; v++ {
		if g.Degree(v) != 3 {
			t.Errorf("K4 degree(%d) = %d", v, g.Degree(v))
		}
	}
	if !g.HasEdge(0, 3) || !g.HasEdge(3, 0) || g.HasEdge(0, 0) || g.HasEdge(0, 4) {
		t.Error("HasEdge wrong")
	}
}

func TestBuilderDedupAndSorted(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(3, 1)
	b.AddEdge(1, 3)
	b.AddEdge(4, 1)
	b.AddEdge(0, 1)
	g := b.Finish()
	if g.NumEdges() != 3 {
		t.Fatalf("dedup failed: m=%d", g.NumEdges())
	}
	ns := g.Neighbors(1)
	for i := 1; i < len(ns); i++ {
		if ns[i-1] >= ns[i] {
			t.Fatalf("neighbors of 1 not sorted: %v", ns)
		}
	}
	if len(ns) != 3 || ns[0] != 0 || ns[1] != 3 || ns[2] != 4 {
		t.Fatalf("neighbors of 1 = %v", ns)
	}
}

func TestBuilderPanics(t *testing.T) {
	b := NewBuilder(3)
	for _, fn := range []func(){
		func() { b.AddEdge(0, 0) },
		func() { b.AddEdge(-1, 2) },
		func() { b.AddEdge(0, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestHandshakeLemma(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw)%20 + 2
		m := int(mRaw) % 40
		g := randomGraph(seed, n, m)
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBFSDistances(t *testing.T) {
	g := p4()
	d := BFS(g, 0)
	want := []int32{0, 1, 2, 3}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("BFS(P4,0) = %v", d)
		}
	}
	if Distance(g, 0, 3) != 3 || Distance(g, 2, 2) != 0 {
		t.Error("Distance wrong")
	}
	// Disconnected.
	g2 := FromEdges(4, [][2]int{{0, 1}, {2, 3}})
	if Distance(g2, 0, 3) != -1 {
		t.Error("expected -1 for disconnected pair")
	}
}

func TestShortestPath(t *testing.T) {
	g := c5()
	p := ShortestPath(g, 0, 2)
	if len(p) != 3 || p[0] != 0 || p[2] != 2 {
		t.Fatalf("ShortestPath(C5,0,2) = %v", p)
	}
	for i := 1; i < len(p); i++ {
		if !g.HasEdge(p[i-1], p[i]) {
			t.Fatalf("path uses non-edge: %v", p)
		}
	}
	if got := ShortestPath(g, 3, 3); len(got) != 1 || got[0] != 3 {
		t.Error("trivial path wrong")
	}
	g2 := FromEdges(3, [][2]int{{0, 1}})
	if ShortestPath(g2, 0, 2) != nil {
		t.Error("expected nil path when unreachable")
	}
}

func TestEccentricityDiameter(t *testing.T) {
	if d := Diameter(c5()); d != 2 {
		t.Errorf("diam(C5) = %d, want 2", d)
	}
	if d := Diameter(p4()); d != 3 {
		t.Errorf("diam(P4) = %d, want 3", d)
	}
	if d := Diameter(k4()); d != 1 {
		t.Errorf("diam(K4) = %d, want 1", d)
	}
	if e := Eccentricity(p4(), 1); e != 2 {
		t.Errorf("ecc(P4,1) = %d, want 2", e)
	}
	g2 := FromEdges(4, [][2]int{{0, 1}, {2, 3}})
	if Diameter(g2) != -1 || Eccentricity(g2, 0) != -1 {
		t.Error("disconnected diameter should be -1")
	}
}

func TestConnectivityComponents(t *testing.T) {
	if !IsConnected(c5()) || IsConnected(FromEdges(2, nil)) {
		t.Error("IsConnected wrong")
	}
	comp, nc := Components(FromEdges(6, [][2]int{{0, 1}, {1, 2}, {3, 4}}))
	if nc != 3 {
		t.Fatalf("components = %d, want 3", nc)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] || comp[3] != comp[4] || comp[0] == comp[3] || comp[5] == comp[0] || comp[5] == comp[3] {
		t.Errorf("component ids wrong: %v", comp)
	}
}

func TestBipartite(t *testing.T) {
	if IsBipartite(c5()) {
		t.Error("C5 reported bipartite")
	}
	if !IsBipartite(p4()) {
		t.Error("P4 reported non-bipartite")
	}
	c6 := FromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	if !IsBipartite(c6) {
		t.Error("C6 reported non-bipartite")
	}
}

func TestIsTree(t *testing.T) {
	if !IsTree(p4()) {
		t.Error("P4 is a tree")
	}
	if IsTree(c5()) || IsTree(FromEdges(4, [][2]int{{0, 1}, {2, 3}})) {
		t.Error("non-trees reported as trees")
	}
}

func TestDominatingSet(t *testing.T) {
	g := c5()
	s := bitvec.New(5)
	s.Set(0)
	s.Set(2)
	if !IsDominatingSet(g, s) {
		t.Error("{0,2} dominates C5")
	}
	s2 := bitvec.New(5)
	s2.Set(0)
	if IsDominatingSet(g, s2) {
		t.Error("{0} does not dominate C5")
	}
	if got := MinDominatingSetSize(g); got != 2 {
		t.Errorf("gamma(C5) = %d, want 2", got)
	}
	if got := MinDominatingSetSize(k4()); got != 1 {
		t.Errorf("gamma(K4) = %d, want 1", got)
	}
	// gamma(P4) = 2, gamma(C7) = 3 (= ceil(7/3)).
	if got := MinDominatingSetSize(p4()); got != 2 {
		t.Errorf("gamma(P4) = %d, want 2", got)
	}
	c7 := FromEdges(7, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 0}})
	if got := MinDominatingSetSize(c7); got != 3 {
		t.Errorf("gamma(C7) = %d, want 3", got)
	}
}

// Property: BFS from u gives symmetric distances dist_u(v) == dist_v(u) on
// random connected graphs.
func TestBFSSymmetryProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%12 + 2
		g := randomConnectedGraph(seed, n)
		for u := 0; u < n; u++ {
			du := BFS(g, u)
			for v := 0; v < n; v++ {
				if BFS(g, v)[u] != du[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality dist(u,w) <= dist(u,v) + dist(v,w).
func TestTriangleInequalityProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%12 + 3
		g := randomConnectedGraph(seed, n)
		d := make([][]int32, n)
		for v := 0; v < n; v++ {
			d[v] = BFS(g, v)
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				for w := 0; w < n; w++ {
					if d[u][w] > d[u][v]+d[v][w] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWriteDOTAndEdgeList(t *testing.T) {
	var sb strings.Builder
	if err := WriteDOT(&sb, p4(), "P4", func(v int) string { return string(rune('a' + v)) }); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"graph P4 {", `0 [label="a"];`, "0 -- 1;", "2 -- 3;"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	if err := WriteEdgeList(&sb, p4(), nil); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "0 1\n1 2\n2 3\n" {
		t.Errorf("edge list = %q", sb.String())
	}
}

func randomGraph(seed int64, n, m int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.Finish()
}

func randomConnectedGraph(seed int64, n int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(v, rng.Intn(v)) // random spanning tree
	}
	extra := rng.Intn(n)
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.Finish()
}
