// Package graph implements the undirected-graph substrate for the sparse
// hypercube reproduction: a compact CSR adjacency representation, BFS-based
// metrics (distance, eccentricity, diameter), connectivity, dominating-set
// checks, and exports. Vertices are dense integers in [0, N).
//
// The package is deliberately minimal and allocation-conscious: the
// broadcast validator and the exhaustive scheme search sit in hot loops on
// top of it.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable simple undirected graph in compressed sparse row
// form. Neighbor lists are sorted, contain no duplicates and no self-loops.
type Graph struct {
	off    []int32 // len n+1; adjacency of v is adj[off[v]:off[v+1]]
	adj    []int32
	eoff   []int32 // len n+1; edge-slot offsets, see slots.go
	uadj   []int32 // len m; up-neighbors of u are uadj[eoff[u]:eoff[u+1]]
	slotOf []int32 // len 2m; slotOf[i] is the slot of edge {row of i, adj[i]}
	n      int
}

// NumVertices returns the order of the graph.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.adj) / 2 }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int {
	return int(g.off[v+1] - g.off[v])
}

// Neighbors returns the sorted neighbor list of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v int) []int32 {
	return g.adj[g.off[v]:g.off[v+1]]
}

// HasEdge reports whether {u, v} is an edge. The search is hand-rolled
// (not sort.Search) because this sits on the validators' per-hop path:
// a branchless-friendly linear scan for the short neighbor lists of
// sparse graphs, binary search above that, always over the endpoint
// with the shorter neighbor list.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.n || v >= g.n || u == v {
		return false
	}
	if g.off[u+1]-g.off[u] > g.off[v+1]-g.off[v] {
		u, v = v, u
	}
	return searchInt32(g.adj[g.off[u]:g.off[u+1]], int32(v)) >= 0
}

// searchInt32 returns the index of x in the sorted slice ns, or -1.
func searchInt32(ns []int32, x int32) int {
	if len(ns) <= 16 {
		for i, w := range ns {
			if w == x {
				return i
			}
			if w > x {
				return -1
			}
		}
		return -1
	}
	lo, hi := 0, len(ns)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ns[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ns) && ns[lo] == x {
		return lo
	}
	return -1
}

// MaxDegree returns the maximum vertex degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// MinDegree returns the minimum vertex degree (0 for the empty graph).
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	min := g.Degree(0)
	for v := 1; v < g.n; v++ {
		if d := g.Degree(v); d < min {
			min = d
		}
	}
	return min
}

// DegreeHistogram returns a map degree -> number of vertices.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for v := 0; v < g.n; v++ {
		h[g.Degree(v)]++
	}
	return h
}

// Edges calls fn for every undirected edge {u, v} with u < v.
func (g *Graph) Edges(fn func(u, v int)) {
	for u := 0; u < g.n; u++ {
		for _, w := range g.Neighbors(u) {
			if int(w) > u {
				fn(u, int(w))
			}
		}
	}
}

// Builder accumulates edges and produces an immutable Graph. Duplicate
// edges are coalesced; self-loops are rejected.
type Builder struct {
	n     int
	edges [][2]int32
}

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u, v}. It panics on out-of-range
// vertices or self-loops; duplicates are tolerated and coalesced by Finish.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || v < 0 || u >= b.n || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, [2]int32{int32(u), int32(v)})
}

// Finish builds the immutable graph.
func (b *Builder) Finish() *Graph {
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i][0] != b.edges[j][0] {
			return b.edges[i][0] < b.edges[j][0]
		}
		return b.edges[i][1] < b.edges[j][1]
	})
	// Dedup in place.
	uniq := b.edges[:0]
	for i, e := range b.edges {
		if i == 0 || e != b.edges[i-1] {
			uniq = append(uniq, e)
		}
	}
	b.edges = uniq

	deg := make([]int32, b.n+1)
	for _, e := range b.edges {
		deg[e[0]+1]++
		deg[e[1]+1]++
	}
	off := make([]int32, b.n+1)
	for v := 1; v <= b.n; v++ {
		off[v] = off[v-1] + deg[v]
	}
	adj := make([]int32, off[b.n])
	cursor := make([]int32, b.n)
	copy(cursor, off[:b.n])
	for _, e := range b.edges {
		adj[cursor[e[0]]] = e[1]
		cursor[e[0]]++
		adj[cursor[e[1]]] = e[0]
		cursor[e[1]]++
	}
	eoff, uadj, slotOf := buildSlotIndex(off, adj, b.n)
	g := &Graph{off: off, adj: adj, eoff: eoff, uadj: uadj, slotOf: slotOf, n: b.n}
	// Neighbor lists are sorted because edges were processed in sorted
	// order for the low endpoint; the high-endpoint insertions also happen
	// in sorted order of the low endpoint, which is the neighbor value.
	return g
}

// FromEdges is a convenience constructor.
func FromEdges(n int, edges [][2]int) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Finish()
}
