package treecast

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"sparsehypercube/internal/broadcast"
	"sparsehypercube/internal/graph"
	"sparsehypercube/internal/intmath"
	"sparsehypercube/internal/linecomm"
	"sparsehypercube/internal/topo"
)

// mustSchedule builds the schedule and validates it under unbounded call
// length (k = N-1), returning the validation result.
func mustSchedule(t *testing.T, g *graph.Graph, src int) (*linecomm.Schedule, *linecomm.Result) {
	t.Helper()
	p, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := p.Schedule(src)
	if err != nil {
		t.Fatal(err)
	}
	res := linecomm.Validate(linecomm.GraphNetwork{G: g}, g.NumVertices()-1, sched)
	if err := res.Err(); err != nil {
		t.Fatalf("src=%d: %v", src, err)
	}
	if !res.Complete {
		t.Fatalf("src=%d: incomplete (%d/%d)", src, res.Informed, g.NumVertices())
	}
	return sched, res
}

func TestRejectsNonTrees(t *testing.T) {
	if _, err := New(topo.Cycle(5)); err == nil {
		t.Error("cycle accepted")
	}
	if _, err := New(graph.FromEdges(4, [][2]int{{0, 1}, {2, 3}})); err == nil {
		t.Error("forest accepted")
	}
	p, err := New(topo.Path(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Schedule(9); err == nil {
		t.Error("bad source accepted")
	}
}

// Paths: minimum time from every source (the split family suffices).
func TestPathsMinimumTime(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8, 13, 16, 31, 32} {
		g := topo.Path(n)
		want := intmath.CeilLog2(uint64(n))
		for src := 0; src < n; src++ {
			sched, _ := mustSchedule(t, g, src)
			if len(sched.Rounds) != want {
				t.Fatalf("P_%d from %d: %d rounds, want %d", n, src, len(sched.Rounds), want)
			}
		}
	}
}

// Stars: the through-center routing case; minimum time from center and
// leaves alike.
func TestStarsMinimumTime(t *testing.T) {
	for _, n := range []int{4, 7, 8, 15, 16, 33} {
		g := topo.Star(n)
		want := intmath.CeilLog2(uint64(n))
		for _, src := range []int{0, 1, n - 1} {
			sched, _ := mustSchedule(t, g, src)
			if len(sched.Rounds) != want {
				t.Fatalf("K_{1,%d} from %d: %d rounds, want %d", n-1, src, len(sched.Rounds), want)
			}
		}
	}
}

// Complete binary trees and tri-trees: cross-check against the dedicated
// Theorem-1 schemes — the generic planner must match their round counts.
func TestStructuredTreesMinimumTime(t *testing.T) {
	for h := 1; h <= 6; h++ {
		g := topo.CompleteBinaryTree(h)
		want := intmath.CeilLog2(uint64(g.NumVertices()))
		sched, _ := mustSchedule(t, g, 0)
		if len(sched.Rounds) != want {
			t.Fatalf("CBT(%d) from root: %d rounds, want %d", h, len(sched.Rounds), want)
		}
	}
	for h := 1; h <= 5; h++ {
		g := topo.TriTree(h)
		want := broadcast.TriTreeMinimumRounds(h)
		for _, src := range []int{0, 1, g.NumVertices() - 1} {
			sched, _ := mustSchedule(t, g, src)
			if len(sched.Rounds) != want {
				t.Fatalf("T_%d from %d: %d rounds, want %d", h, src, len(sched.Rounds), want)
			}
		}
	}
}

// Caterpillars and brooms: mixed-shape trees stay minimum time.
func TestCaterpillarsMinimumTime(t *testing.T) {
	// Caterpillar: path 0..6 with a leaf hanging off each spine vertex.
	b := graph.NewBuilder(14)
	for i := 0; i < 6; i++ {
		b.AddEdge(i, i+1)
	}
	for i := 0; i <= 6; i++ {
		b.AddEdge(i, 7+i)
	}
	g := b.Finish()
	want := intmath.CeilLog2(uint64(g.NumVertices()))
	for src := 0; src < g.NumVertices(); src++ {
		sched, _ := mustSchedule(t, g, src)
		if len(sched.Rounds) != want {
			t.Fatalf("caterpillar from %d: %d rounds, want %d", src, len(sched.Rounds), want)
		}
	}
}

// The spider counterexample from the design notes: legs of sizes 6, 6, 3
// with the source at the end of a long leg defeats the edge-disjoint
// split family at the tight budget. The planner must stay VALID and lose
// at most one round; the exhaustive checker shows a 4-round schedule does
// exist (it routes through foreign territories).
func TestSpiderTightCase(t *testing.T) {
	b := graph.NewBuilder(16)
	// center 0; leg A: 1..6; leg B: 7..12; leg C: 13..15.
	prev := 0
	for v := 1; v <= 6; v++ {
		b.AddEdge(prev, v)
		prev = v
	}
	prev = 0
	for v := 7; v <= 12; v++ {
		b.AddEdge(prev, v)
		prev = v
	}
	prev = 0
	for v := 13; v <= 15; v++ {
		b.AddEdge(prev, v)
		prev = v
	}
	g := b.Finish()
	want := intmath.CeilLog2(uint64(g.NumVertices())) // 4

	sched, _ := mustSchedule(t, g, 6) // end of leg A
	if len(sched.Rounds) > want+1 {
		t.Fatalf("spider: %d rounds, want <= %d", len(sched.Rounds), want+1)
	}
	// The true optimum is 4 rounds (Farley's theorem): certify with the
	// construction-agnostic checker.
	c, err := broadcast.NewChecker(g, g.NumVertices()-1)
	if err != nil {
		t.Fatal(err)
	}
	ok, witness := c.FeasibleFrom(6)
	if !ok {
		t.Fatal("exhaustive checker contradicts Farley's theorem")
	}
	res := linecomm.Validate(linecomm.GraphNetwork{G: g}, g.NumVertices()-1, witness)
	if !res.MinimumTime {
		t.Fatal("witness schedule not minimum time")
	}
	t.Logf("spider: planner %d rounds, optimum %d", len(sched.Rounds), len(witness.Rounds))
}

// Property: on random trees the planner always produces a valid, complete
// schedule within one round of optimum, and hits ceil(log2 N) in the
// overwhelming majority of cases.
func TestRandomTreesProperty(t *testing.T) {
	slow := 0
	total := 0
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%30 + 2
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(n)
		for v := 1; v < n; v++ {
			b.AddEdge(v, rng.Intn(v))
		}
		g := b.Finish()
		p, err := New(g)
		if err != nil {
			return false
		}
		src := rng.Intn(n)
		sched, err := p.Schedule(src)
		if err != nil {
			return false
		}
		res := linecomm.Validate(linecomm.GraphNetwork{G: g}, n-1, sched)
		if !res.Valid() || !res.Complete {
			return false
		}
		want := intmath.CeilLog2(uint64(n))
		total++
		if len(sched.Rounds) > want {
			slow++
		}
		return len(sched.Rounds) <= want+1
	}
	// Fixed randomness: the planner is deterministic, so with a pinned
	// generator this property is fully reproducible run to run.
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(20260610))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	if total > 0 && slow*10 > total {
		t.Errorf("planner missed minimum time on %d/%d random trees", slow, total)
	}
}

// The planner is a pure function of (tree, source): two runs produce
// byte-identical schedules (guards against map-iteration nondeterminism,
// which once caused rare extra rounds).
func TestPlannerDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(28) + 2
		b := graph.NewBuilder(n)
		for v := 1; v < n; v++ {
			b.AddEdge(v, rng.Intn(v))
		}
		g := b.Finish()
		src := rng.Intn(n)
		build := func() string {
			p, err := New(g)
			if err != nil {
				t.Fatal(err)
			}
			sched, err := p.Schedule(src)
			if err != nil {
				t.Fatal(err)
			}
			out := ""
			for _, round := range sched.Rounds {
				for _, c := range round {
					for _, v := range c.Path {
						out += fmt.Sprintf("%d,", v)
					}
					out += ";"
				}
				out += "|"
			}
			return out
		}
		if build() != build() {
			t.Fatalf("trial %d: nondeterministic schedule", trial)
		}
	}
}

// All calls are genuine tree paths (no shortcuts), and every round's
// calls are edge-disjoint — double-checked here explicitly on a bigger
// instance beyond what the validator already enforces.
func TestBigTreeSchedule(t *testing.T) {
	g := topo.CompleteBinaryTree(8) // 511 vertices
	want := intmath.CeilLog2(uint64(g.NumVertices()))
	sched, res := mustSchedule(t, g, 100)
	if len(sched.Rounds) > want+1 {
		t.Fatalf("CBT(8) from 100: %d rounds", len(sched.Rounds))
	}
	if res.MaxCallLength >= g.NumVertices() {
		t.Fatal("call length out of range")
	}
}
