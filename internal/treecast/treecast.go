// Package treecast schedules line broadcasts (unbounded call length, the
// k = N-1 end of the paper's scale) on arbitrary trees. The paper's §2
// recalls that every connected graph is a minimal (N-1)-line broadcast
// graph [Farley 1980]; this package makes that end of the scale
// executable: a territory-splitting scheduler that achieves the
// ceil(log2 N) minimum on most trees and never exceeds it by much, plus
// exact certification for small trees via the exhaustive checker.
//
// Scheduling model: territories are edge-disjoint subtrees, each with one
// informed owner. Each round every owner calls a vertex v in its
// territory; the territory then splits at a cut vertex into the owner's
// side and v's side. Both sides remain subtrees sharing only the cut
// vertex, so calls of different territories stay edge-disjoint forever.
// The split search (cut vertex x subset-sum over component sizes) finds a
// split meeting the doubling budget whenever one exists in this family;
// when none exists (rare — see the spider counterexample in the tests),
// the scheduler takes the most balanced split available and may spend one
// extra round. Optimal schedules routing through foreign territories
// (which the line model permits) can beat the split family; the
// exhaustive checker certifies those cases independently.
package treecast

import (
	"fmt"
	"sort"

	"sparsehypercube/internal/graph"
	"sparsehypercube/internal/intmath"
	"sparsehypercube/internal/linecomm"
)

// Planner schedules line broadcasts on one tree.
type Planner struct {
	g *graph.Graph
	n int
}

// New validates that g is a tree and returns a planner.
func New(g *graph.Graph) (*Planner, error) {
	if !graph.IsTree(g) {
		return nil, fmt.Errorf("treecast: graph is not a tree")
	}
	return &Planner{g: g, n: g.NumVertices()}, nil
}

// MinimumRounds returns ceil(log2 N).
func (p *Planner) MinimumRounds() int {
	return intmath.CeilLog2(uint64(p.n))
}

// territory is a subtree with exactly one informed owner; member records
// membership, uninformed the vertices still to reach (owner excluded,
// shared cut vertices counted in exactly one territory).
type territory struct {
	owner      int
	member     map[int]bool
	uninformed map[int]bool
}

// Schedule computes a line broadcast from src. The result is always a
// valid schedule informing every vertex; Rounds is ceil(log2 N) whenever
// the split family suffices (always on paths, stars, complete binary
// trees, tri-trees, and random trees in the tests) and at most a round or
// two more otherwise.
func (p *Planner) Schedule(src int) (*linecomm.Schedule, error) {
	if src < 0 || src >= p.n {
		return nil, fmt.Errorf("treecast: source %d outside [0,%d)", src, p.n)
	}
	root := &territory{
		owner:      src,
		member:     make(map[int]bool, p.n),
		uninformed: make(map[int]bool, p.n),
	}
	for v := 0; v < p.n; v++ {
		root.member[v] = true
		if v != src {
			root.uninformed[v] = true
		}
	}
	sched := &linecomm.Schedule{Source: uint64(src)}
	active := []*territory{root}
	for budget := p.MinimumRounds(); ; budget-- {
		var round linecomm.Round
		var next []*territory
		progress := false
		for _, t := range active {
			if len(t.uninformed) == 0 {
				continue
			}
			a, b, call := p.split(t, budget)
			round = append(round, call)
			progress = true
			if len(a.uninformed) > 0 {
				next = append(next, a)
			}
			if len(b.uninformed) > 0 {
				next = append(next, b)
			}
		}
		if !progress {
			break
		}
		sched.Rounds = append(sched.Rounds, round)
		active = next
		if len(sched.Rounds) > 4*p.n {
			return nil, fmt.Errorf("treecast: scheduler failed to converge")
		}
	}
	return sched, nil
}

// split chooses a cut vertex and a component grouping for territory t,
// preferring splits that fit the remaining budget (both sides coverable
// in budget-1 rounds), falling back to the most balanced split found.
// It returns the two successor territories and the owner's call.
func (p *Planner) split(t *territory, budget int) (*territory, *territory, linecomm.Call) {
	q := len(t.uninformed)
	// Feasible window for the owner-side count a: the far side gets
	// q - a uninformed, one of which is informed by this round's call.
	// Need a <= 2^(budget-1) - 1 and q - a <= 2^(budget-1).
	half := 1
	if budget >= 1 {
		half = 1 << uint(budget-1)
	}
	bestScore := -1 << 30
	var bestA, bestB map[int]bool // vertex sets (components), owner side / far side
	var bestCut int

	// Deterministic cut order: map iteration order must not influence the
	// schedule (ties are broken toward the smallest cut vertex).
	cuts := make([]int, 0, len(t.member))
	for v := range t.member {
		cuts = append(cuts, v)
	}
	sort.Ints(cuts)
	for _, cut := range cuts {
		comps := p.componentsWithin(t, cut)
		if len(comps) == 0 {
			continue
		}
		// Locate the owner's component (owner may be the cut itself).
		ownerComp := -1
		for i, c := range comps {
			if c.members[t.owner] {
				ownerComp = i
			}
		}
		cutWeight := 0
		if t.uninformed[cut] {
			cutWeight = 1
		}
		// Choose a subset of components (always including the owner's,
		// when the owner is not the cut) for the owner side, minimising
		// the doubling overshoot. The cut vertex is counted on the far
		// side. Subset-sum DP over uninformed counts.
		assign := chooseGrouping(comps, ownerComp, cutWeight, half)
		if assign == nil {
			continue
		}
		aSet := map[int]bool{}
		bSet := map[int]bool{}
		aCount, bCount := 0, cutWeight
		for i, c := range comps {
			dst := bSet
			if assign[i] {
				dst = aSet
			}
			for v := range c.members {
				dst[v] = true
			}
			if assign[i] {
				aCount += c.uninformed
			} else {
				bCount += c.uninformed
			}
		}
		if bCount == 0 {
			continue // the far side must contain the call target
		}
		// Score: feasible splits (both sides within budget) beat
		// infeasible ones; among them prefer balance.
		feasible := aCount <= half-1 && bCount <= half
		score := -abs(aCount - (q - q/2 - 1))
		if feasible {
			score += 1 << 20
		}
		if score > bestScore {
			bestScore = score
			bestA, bestB, bestCut = aSet, bSet, cut
		}
	}

	// Build successor territories. The far side's new owner is the
	// nearest uninformed vertex to the old owner within the far side
	// (often the cut vertex itself).
	aT := &territory{owner: t.owner, member: bestA, uninformed: map[int]bool{}}
	aT.member[bestCut] = true
	for v := range bestA {
		if t.uninformed[v] && v != bestCut {
			aT.uninformed[v] = true
		}
	}
	bT := &territory{member: bestB, uninformed: map[int]bool{}}
	bT.member[bestCut] = true
	for v := range bestB {
		if t.uninformed[v] {
			bT.uninformed[v] = true
		}
	}
	if t.uninformed[bestCut] {
		bT.uninformed[bestCut] = true
	}
	target := p.nearestUninformed(t.owner, bT)
	delete(bT.uninformed, target)
	bT.owner = target
	call := linecomm.Call{Path: p.pathWithin(t, t.owner, target)}
	return aT, bT, call
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// component is a connected piece of a territory minus its cut vertex.
type component struct {
	members    map[int]bool
	uninformed int
}

// componentsWithin returns the connected components of t's subtree with
// cut removed, in deterministic order (smallest contained vertex first).
func (p *Planner) componentsWithin(t *territory, cut int) []component {
	seen := map[int]bool{cut: true}
	var comps []component
	for _, start := range sortedKeys(t.member) {
		if seen[start] {
			continue
		}
		c := component{members: map[int]bool{}}
		stack := []int{start}
		seen[start] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			c.members[v] = true
			if t.uninformed[v] {
				c.uninformed++
			}
			for _, w := range p.g.Neighbors(v) {
				wi := int(w)
				if t.member[wi] && !seen[wi] {
					seen[wi] = true
					stack = append(stack, wi)
				}
			}
		}
		comps = append(comps, c)
	}
	return comps
}

// chooseGrouping picks which components go to the owner side: assign[i]
// true means component i is on the owner's side. ownerComp (if >= 0) is
// forced to the owner side; cutWeight (the cut vertex's uninformed count)
// lands on the far side. Returns nil when no grouping leaves the far side
// nonempty. Prefers groupings with ownerSide <= half-1 and
// farSide <= half; otherwise minimises the larger side.
func chooseGrouping(comps []component, ownerComp, cutWeight, half int) []bool {
	total := cutWeight
	for _, c := range comps {
		total += c.uninformed
	}
	type cand struct {
		idx    int
		weight int
	}
	var free []cand
	base := 0
	if ownerComp >= 0 {
		base = comps[ownerComp].uninformed
	}
	for i, c := range comps {
		if i != ownerComp {
			free = append(free, cand{i, c.uninformed})
		}
	}
	// Subset-sum DP over free components tracking one witness per sum.
	// All iteration is over sorted keys so the chosen witness — and hence
	// the whole schedule — is a pure function of the tree and source.
	type entry struct {
		prev   int // index into entries of predecessor
		picked int // free index picked, -1 at root
	}
	sums := map[int]int{base: 0} // ownerSide weight -> entry index
	entries := []entry{{prev: -1, picked: -1}}
	order := make([]cand, len(free))
	copy(order, free)
	sort.Slice(order, func(i, j int) bool {
		if order[i].weight != order[j].weight {
			return order[i].weight > order[j].weight
		}
		return order[i].idx < order[j].idx
	})
	for fi, c := range order {
		keys := sortedKeys(sums)
		for _, s := range keys {
			ei := sums[s]
			ns := s + c.weight
			if _, ok := sums[ns]; !ok {
				entries = append(entries, entry{prev: ei, picked: fi})
				sums[ns] = len(entries) - 1
			}
		}
	}
	// Pick the best achievable owner-side sum. The far side holds
	// far = total - s uninformed (cut weight included via total) and must
	// be nonempty to host the call target.
	bestSum, bestScore := -1, -1<<30
	for _, s := range sortedKeys(sums) {
		far := total - s
		if far < 1 {
			continue
		}
		feasible := s <= half-1 && far <= half
		score := -intmath.Max(s, far)
		if feasible {
			score += 1 << 20
		}
		if score > bestScore {
			bestScore, bestSum = score, s
		}
	}
	if bestSum < 0 {
		return nil
	}
	assign := make([]bool, len(comps))
	if ownerComp >= 0 {
		assign[ownerComp] = true
	}
	for ei := sums[bestSum]; ei > 0 || entries[ei].picked >= 0; ei = entries[ei].prev {
		e := entries[ei]
		if e.picked < 0 {
			break
		}
		assign[order[e.picked].idx] = true
		if e.prev < 0 {
			break
		}
	}
	return assign
}

// nearestUninformed returns the uninformed vertex of bT closest to from
// in the tree (BFS over the whole tree; the unique tree path determines
// distance). Ties break toward the smallest vertex id for determinism.
func (p *Planner) nearestUninformed(from int, bT *territory) int {
	dist := graph.BFS(p.g, from)
	best, bestD := -1, 1<<30
	for _, v := range sortedKeys(bT.uninformed) {
		if int(dist[v]) < bestD {
			best, bestD = v, int(dist[v])
		}
	}
	return best
}

// sortedKeys returns the keys of an int-keyed map in increasing order.
func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// pathWithin returns the unique tree path from u to v.
func (p *Planner) pathWithin(t *territory, u, v int) []uint64 {
	ipath := graph.ShortestPath(p.g, u, v)
	path := make([]uint64, len(ipath))
	for i, x := range ipath {
		path[i] = uint64(x)
	}
	return path
}
