package treecast

import (
	"math/rand"
	"testing"

	"sparsehypercube/internal/graph"
	"sparsehypercube/internal/intmath"
	"sparsehypercube/internal/linecomm"
)

func TestReproExactInput(t *testing.T) {
	seed := int64(2428545632637465169)
	nRaw := uint8(0x1c)
	n := int(nRaw)%30 + 2
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(v, rng.Intn(v))
	}
	g := b.Finish()
	p, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.Intn(n)
	sched, err := p.Schedule(src)
	if err != nil {
		t.Fatal(err)
	}
	res := linecomm.Validate(linecomm.GraphNetwork{G: g}, n-1, sched)
	want := intmath.CeilLog2(uint64(n))
	t.Logf("n=%d src=%d rounds=%d want=%d valid=%v complete=%v", n, src, len(sched.Rounds), want, res.Valid(), res.Complete)
	if !res.Valid() || !res.Complete {
		t.Fatal("invalid")
	}
	if len(sched.Rounds) > want+1 {
		t.Fatal("too slow")
	}
}
