// Package distverify verifies one indexed plan across a fleet of
// planserver workers: horizontal scale-out of the parallel round-range
// verification the Plan engine runs across goroutines.
//
// The coordinator runs the cheap structural pass locally — per-range
// informed deltas and span CRCs, stitched against the plan's stored
// checksum with crc32Combine — then fans the expensive seeded
// validation of each round range out over HTTP (POST /v1/ranges/verify)
// and merges the responses with linecomm.MergeRangeResults into a
// Report byte-identical to single-process Plan.Verify.
//
// The fleet is assumed unreliable. Every request gets its own timeout;
// a failed or timed-out range goes back on the shared task queue with
// backoff, where any idle worker steals it from the slow or dead one;
// a range that exhausts its retries is verified locally; and a plan
// that cannot be distributed at all (no index, a non-broadcast scheme,
// a checksum anomaly) degrades to the local Plan.Verify — so a dying
// fleet costs throughput, never the answer.
package distverify

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"sparsehypercube"
	"sparsehypercube/internal/linecomm"
	"sparsehypercube/internal/schedio"
)

// Coordinator fans plan verification out to a fleet of planserver
// workers. Construct with New; a Coordinator is safe for concurrent
// use.
type Coordinator struct {
	endpoints []string
	client    *http.Client
	timeout   time.Duration
	retries   int
	backoff   time.Duration
	perWorker int
	upload    bool
	logf      func(format string, args ...any)
}

// Option configures a Coordinator.
type Option func(*Coordinator)

// WithHTTPClient sets the HTTP client used for worker requests.
func WithHTTPClient(c *http.Client) Option {
	return func(co *Coordinator) { co.client = c }
}

// WithRequestTimeout bounds each worker request (default 30s). A range
// whose request times out is reassigned, so this is the reaction time
// to a dead worker, not a bound on total verification time.
func WithRequestTimeout(d time.Duration) Option {
	return func(co *Coordinator) { co.timeout = d }
}

// WithRetries sets how many times a failed range is re-dispatched to
// the fleet (default 2) before the coordinator verifies it locally.
func WithRetries(n int) Option {
	return func(co *Coordinator) { co.retries = max(0, n) }
}

// WithBackoff sets the base delay before a failed range re-enters the
// task queue (default 100ms); attempt i waits i times the base.
func WithBackoff(d time.Duration) Option {
	return func(co *Coordinator) { co.backoff = d }
}

// WithRangesPerWorker sets how many round ranges the plan is split
// into per worker endpoint (default 4). Finer grain smooths over slow
// workers — a stolen range costs less to redo — at more per-request
// overhead.
func WithRangesPerWorker(n int) Option {
	return func(co *Coordinator) { co.perWorker = max(1, n) }
}

// WithPlanUpload makes the coordinator upload the whole plan to each
// worker's plan cache (POST /v1/plans) up front and address ranges by
// plan id, instead of shipping each range's bytes inline in every
// request. Workers that refuse the upload, or answer a plan id with
// 404, are fed inline requests instead.
func WithPlanUpload() Option {
	return func(co *Coordinator) { co.upload = true }
}

// WithLogf sets a progress/fault logger (default: discard).
func WithLogf(logf func(format string, args ...any)) Option {
	return func(co *Coordinator) { co.logf = logf }
}

// New constructs a Coordinator over the given worker base URLs
// (e.g. "http://host:8080"). At least one worker is required.
func New(workers []string, opts ...Option) (*Coordinator, error) {
	if len(workers) == 0 {
		return nil, errors.New("distverify: no worker endpoints")
	}
	c := &Coordinator{
		endpoints: append([]string(nil), workers...),
		client:    &http.Client{},
		timeout:   30 * time.Second,
		retries:   2,
		backoff:   100 * time.Millisecond,
		perWorker: 4,
		logf:      func(string, ...any) {},
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Verify verifies an in-memory plan file across the fleet.
func (c *Coordinator) Verify(ctx context.Context, data []byte) (sparsehypercube.Report, error) {
	return c.VerifyAt(ctx, bytes.NewReader(data), int64(len(data)))
}

// VerifyFile verifies the plan file at path across the fleet, reading
// it through a read-only memory mapping where the platform allows.
func (c *Coordinator) VerifyFile(ctx context.Context, path string) (sparsehypercube.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return sparsehypercube.Report{}, err
	}
	m, err := schedio.OpenMapping(f)
	if err != nil {
		f.Close()
		return sparsehypercube.Report{}, err
	}
	defer m.Close()
	return c.VerifyAt(ctx, m, m.Size())
}

// VerifyAt verifies a plan replayed through r across the fleet and
// returns the exact Report single-process Plan.Verify produces on the
// same bytes. The error is non-nil only when the plan cannot be opened
// at all or ctx is cancelled — worker faults degrade (retry, steal,
// verify locally), they do not fail the verification.
func (c *Coordinator) VerifyAt(ctx context.Context, r io.ReaderAt, size int64) (sparsehypercube.Report, error) {
	plan, err := sparsehypercube.ReadPlanAt(r, size)
	if err != nil {
		return sparsehypercube.Report{}, err
	}
	at, err := schedio.OpenPlanAt(r, size)
	if err != nil {
		return sparsehypercube.Report{}, err
	}

	// Preconditions for distributing: a round index to split on, the
	// broadcast correctness model (the seeded range validator is the
	// broadcast validator), at least two rounds, an in-range source.
	// Everything else verifies locally — Plan.Verify handles serial,
	// parallel, and corrupted plans identically to what the distributed
	// path would conclude.
	rounds := at.NumRounds()
	source := plan.Scheme().Origin()
	cube := plan.Cube()
	if !at.Indexed() || plan.Scheme().Name() == "gossip" || rounds < 2 || source >= cube.Order() {
		c.logf("distverify: plan not distributable, verifying locally")
		return plan.Verify(), nil
	}

	j := &job{c: c, plan: plan, at: at, cube: cube, source: source}
	nRanges := min(rounds, len(c.endpoints)*c.perWorker)
	j.bounds = make([]int, nRanges+1)
	for i := range nRanges + 1 {
		j.bounds[i] = i * rounds / nRanges
	}

	if !j.structuralPass() {
		// A decode or checksum anomaly: the serial pass is authoritative
		// (and reports corruption exactly as Plan.Verify always did).
		c.logf("distverify: structural pass failed, verifying locally")
		return plan.Verify(), nil
	}
	if c.upload {
		j.uploadPlans(ctx, r, size)
	}
	rep, ok := j.dispatch(ctx)
	if !ok {
		if err := ctx.Err(); err != nil {
			return sparsehypercube.Report{}, err
		}
		c.logf("distverify: dispatch degraded, verifying locally")
		return plan.Verify(), nil
	}
	return rep, nil
}

// job is one verification's state: the plan handles, the range bounds,
// and everything the structural pass computed.
type job struct {
	c      *Coordinator
	plan   *sparsehypercube.Plan
	at     *schedio.PlanAt
	cube   *sparsehypercube.Cube
	source uint64

	bounds  []int              // nRanges+1 round-index boundaries
	seeds   [][]uint64         // per-range informed seed (prefix union)
	crcs    []schedio.RangeCRC // per-range span CRCs from the structural pass
	planIDs map[string]string  // endpoint -> uploaded plan id ("" = inline)
}

func (j *job) nRanges() int { return len(j.bounds) - 1 }

// structuralPass is the local pass 1: scan every range for the
// receivers it informs and its span CRC, stitch the CRCs against the
// plan's stored checksum, and prefix-union the deltas into per-range
// seeds. Reports false on any decode or integrity anomaly.
func (j *job) structuralPass() bool {
	n := j.nRanges()
	deltas := make([][]uint64, n)
	j.crcs = make([]schedio.RangeCRC, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, max(1, runtime.GOMAXPROCS(0)))
	for w := range n {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			errs[w] = func() error {
				rr, err := j.at.Range(j.bounds[w], j.bounds[w+1])
				if err != nil {
					return err
				}
				if w < n-1 {
					deltas[w] = linecomm.CollectInformedStream(j.cube, rr.Rounds())
				} else {
					for range rr.Rounds() {
					}
				}
				crc, err := rr.CRC()
				if err != nil {
					return err
				}
				j.crcs[w] = schedio.RangeCRC{CRC: crc, Bytes: rr.Bytes()}
				return nil
			}()
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return false
		}
	}
	if err := j.at.CheckRangeCRCs(j.crcs); err != nil {
		return false
	}
	total := 0
	for _, d := range deltas {
		total += len(d)
	}
	all := make([]uint64, 0, total)
	j.seeds = make([][]uint64, n)
	for w := range n {
		j.seeds[w] = all
		all = append(all, deltas[w]...)
	}
	return true
}

// uploadPlans pushes the whole plan into each worker's plan cache so
// range requests can address it by id. Best effort: a worker that
// refuses stays on inline requests.
func (j *job) uploadPlans(ctx context.Context, r io.ReaderAt, size int64) {
	data := make([]byte, size)
	if _, err := r.ReadAt(data, 0); err != nil {
		j.c.logf("distverify: reading plan for upload: %v", err)
		return
	}
	j.planIDs = make(map[string]string, len(j.c.endpoints))
	for _, ep := range j.c.endpoints {
		id, err := j.c.uploadPlan(ctx, ep, data)
		if err != nil {
			j.c.logf("distverify: upload to %s failed, using inline ranges: %v", ep, err)
			continue
		}
		j.planIDs[ep] = id
	}
}

func (c *Coordinator) uploadPlan(ctx context.Context, endpoint string, data []byte) (string, error) {
	rctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, endpoint+"/v1/plans", bytes.NewReader(data))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return "", fmt.Errorf("upload status %d", resp.StatusCode)
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&info); err != nil {
		return "", err
	}
	if info.ID == "" {
		return "", errors.New("upload response carries no plan id")
	}
	return info.ID, nil
}

// task is one range dispatch attempt.
type task struct {
	idx     int
	attempt int
}

// outcome is one attempt's verdict as seen by the central loop.
type outcome struct {
	task
	res   *linecomm.Result
	err   error
	local bool // a local fallback compute; its failure aborts dispatch
}

// dispatch fans the ranges out: one puller goroutine per endpoint
// drains a shared task queue (so an idle worker steals the retry of a
// range a slow or dead worker dropped), the central loop collects
// outcomes, requeues failures with backoff, and verifies ranges whose
// retry budget is exhausted locally. ok is false when ctx is cancelled
// or a local fallback itself fails — the caller then degrades to the
// full local Verify.
func (j *job) dispatch(ctx context.Context) (sparsehypercube.Report, bool) {
	n := j.nRanges()
	dctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Every task is dispatched at most retries+1 times plus one local
	// compute, so these capacities make every send non-blocking — a
	// backoff timer firing after dispatch returns must never hang.
	queue := make(chan task, n*(j.c.retries+1))
	outcomes := make(chan outcome, n*(j.c.retries+2))
	for i := range n {
		queue <- task{idx: i}
	}
	for _, ep := range j.c.endpoints {
		go j.pull(dctx, ep, queue, outcomes)
	}

	parts := make([]*linecomm.Result, n)
	for done := 0; done < n; {
		var o outcome
		select {
		case <-ctx.Done():
			return sparsehypercube.Report{}, false
		case o = <-outcomes:
		}
		if o.err == nil {
			if parts[o.idx] == nil {
				parts[o.idx] = o.res
				done++
			}
			continue
		}
		if o.local {
			// Local validation failed on a range the CRC pass already
			// cleared — something is deeply wrong; the full serial pass
			// is the authority.
			j.c.logf("distverify: local range %d failed: %v", o.idx, o.err)
			return sparsehypercube.Report{}, false
		}
		j.c.logf("distverify: range %d attempt %d failed: %v", o.idx, o.attempt, o.err)
		if o.attempt < j.c.retries {
			t := task{idx: o.idx, attempt: o.attempt + 1}
			delay := time.Duration(t.attempt) * j.c.backoff
			time.AfterFunc(delay, func() { queue <- t })
			continue
		}
		go func(idx int) {
			res, err := j.localRange(idx)
			outcomes <- outcome{task: task{idx: idx}, res: res, err: err, local: true}
		}(o.idx)
	}
	res := linecomm.MergeRangeResults(j.cube.Order(), parts)
	return reportFrom(res, len(res.InformedPerRound)), true
}

// pull is one endpoint's task loop.
func (j *job) pull(ctx context.Context, endpoint string, queue <-chan task, outcomes chan<- outcome) {
	for {
		select {
		case <-ctx.Done():
			return
		case t := <-queue:
			res, err := j.verifyRange(ctx, endpoint, t.idx)
			select {
			case outcomes <- outcome{task: t, res: res, err: err}:
			case <-ctx.Done():
				return
			}
		}
	}
}

// verifyRange runs one range on one worker: by plan id when the
// endpoint accepted the upload (falling back to inline if the worker
// answers 404), inline otherwise.
func (j *job) verifyRange(ctx context.Context, endpoint string, idx int) (*linecomm.Result, error) {
	lo, hi := j.bounds[idx], j.bounds[idx+1]
	wire := &RangeRequest{
		StartRound: lo,
		EndRound:   hi,
		Seed:       j.seeds[idx],
		SpanCRC:    j.crcs[idx].CRC,
	}
	if id := j.planIDs[endpoint]; id != "" {
		wire.PlanID = id
		res, status, err := j.post(ctx, endpoint, wire)
		if status != http.StatusNotFound {
			return res, err
		}
		// The worker lost (or never had) the plan: ship the bytes.
		wire.PlanID = ""
	}
	h := j.at.Header()
	span, err := j.at.RangeBytes(lo, hi)
	if err != nil {
		return nil, err
	}
	wire.Plan = &InlinePlan{K: h.K, Dims: h.Dims, Source: h.Source, Span: span}
	res, _, err := j.post(ctx, endpoint, wire)
	return res, err
}

// post sends one range request and validates the response: the worker
// must echo the exact range and span CRC it was asked about — a
// response for the wrong range is rejected, not merged — and every
// violation kind must parse.
func (j *job) post(ctx context.Context, endpoint string, wire *RangeRequest) (*linecomm.Result, int, error) {
	body, err := json.Marshal(wire)
	if err != nil {
		return nil, 0, err
	}
	rctx, cancel := context.WithTimeout(ctx, j.c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, endpoint+"/v1/ranges/verify", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := j.c.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	rd := io.LimitReader(resp.Body, 1<<30)
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(rd).Decode(&e)
		return nil, resp.StatusCode, fmt.Errorf("%s: status %d: %s", endpoint, resp.StatusCode, e.Error)
	}
	var rr RangeResponse
	if err := json.NewDecoder(rd).Decode(&rr); err != nil {
		return nil, resp.StatusCode, fmt.Errorf("%s: decoding response: %w", endpoint, err)
	}
	if rr.StartRound != wire.StartRound || rr.EndRound != wire.EndRound || rr.SpanCRC != wire.SpanCRC {
		return nil, resp.StatusCode, fmt.Errorf("%s: response for range [%d,%d) crc %08x, asked [%d,%d) crc %08x",
			endpoint, rr.StartRound, rr.EndRound, rr.SpanCRC, wire.StartRound, wire.EndRound, wire.SpanCRC)
	}
	if len(rr.InformedPerRound) != wire.EndRound-wire.StartRound {
		return nil, resp.StatusCode, fmt.Errorf("%s: response carries %d round counts for %d rounds",
			endpoint, len(rr.InformedPerRound), wire.EndRound-wire.StartRound)
	}
	res, err := rr.Result()
	if err != nil {
		return nil, resp.StatusCode, fmt.Errorf("%s: %w", endpoint, err)
	}
	return res, resp.StatusCode, nil
}

// localRange verifies one range in-process — the landing spot of a
// range the fleet kept failing.
func (j *job) localRange(idx int) (*linecomm.Result, error) {
	lo, hi := j.bounds[idx], j.bounds[idx+1]
	rr, err := j.at.Range(lo, hi)
	if err != nil {
		return nil, err
	}
	rr.DisableCRC() // the structural pass already pinned this span's checksum
	res := linecomm.ValidateStreamSeeded(j.cube, j.cube.K(), j.source,
		j.seeds[idx], lo, rr.Rounds(), linecomm.DefaultOptions(), 0)
	return res, rr.Err()
}

// reportFrom mirrors the facade's unexported conversion from a merged
// linecomm.Result to the public Report; the byte-identity tests pin the
// two together.
func reportFrom(res *linecomm.Result, rounds int) sparsehypercube.Report {
	rep := sparsehypercube.Report{
		Valid:         res.Valid(),
		Complete:      res.Complete,
		MinimumTime:   res.MinimumTime,
		Rounds:        rounds,
		MaxCallLength: res.MaxCallLength,
	}
	for _, v := range res.Violations {
		rep.Violations = append(rep.Violations, v.String())
	}
	return rep
}
