package distverify

import (
	"encoding/json"
	"reflect"
	"testing"

	"sparsehypercube/internal/linecomm"
)

// TestWireRoundTrip: a Result must survive response-wrapping, JSON, and
// reconstruction exactly — every violation kind by name, every index
// and message untouched — because the coordinator's stitched Report is
// built from the reconstruction.
func TestWireRoundTrip(t *testing.T) {
	res := &linecomm.Result{
		Violations: []linecomm.Violation{
			{Round: 3, Call: 1, Kind: linecomm.CallerUninformed, Msg: "caller 5 is not informed"},
			{Round: 4, Call: -1, Kind: linecomm.SimulationCapExceeded, Msg: "cap"},
			{Round: 5, Call: 0, Kind: linecomm.VertexOutOfRange, Msg: "vertex 99 outside [0,64)"},
		},
		InformedPerRound: []uint64{9, 17, 33},
		Informed:         33,
		MaxCallLength:    2,
	}
	wire := ResponseFromResult(res, 3, 6, 0xdeadbeef)
	if wire.StartRound != 3 || wire.EndRound != 6 || wire.SpanCRC != 0xdeadbeef {
		t.Fatalf("echo fields wrong: %+v", wire)
	}
	data, err := json.Marshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	var back RangeResponse
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	got, err := back.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, got) {
		t.Fatalf("round trip diverged:\nin:  %+v\nout: %+v", res, got)
	}
	for i := range res.Violations {
		if res.Violations[i].String() != got.Violations[i].String() {
			t.Fatalf("violation %d string diverged: %q != %q",
				i, got.Violations[i].String(), res.Violations[i].String())
		}
	}

	// Every kind's name must parse back to itself.
	for k := linecomm.CallerUninformed; k <= linecomm.SimulationCapExceeded; k++ {
		parsed, ok := linecomm.ParseViolationKind(k.String())
		if !ok || parsed != k {
			t.Errorf("kind %d does not round-trip through %q", int(k), k.String())
		}
	}

	// An unknown kind name is a hard error, not a guess.
	back.Violations[0].Kind = "made-up-kind"
	if _, err := back.Result(); err == nil {
		t.Error("unknown violation kind accepted")
	}
}
