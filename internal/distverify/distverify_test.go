package distverify_test

// External test package on purpose: these tests stand up real
// planserver fleets over httptest, and distverify itself must not
// import planserver (planserver imports distverify's wire types).

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sparsehypercube"
	"sparsehypercube/internal/distverify"
	"sparsehypercube/internal/linecomm"
	"sparsehypercube/internal/planserver"
	"sparsehypercube/internal/schedio"
)

// fleet starts n planserver workers and returns their base URLs.
func fleet(t *testing.T, n int) ([]string, []*httptest.Server) {
	t.Helper()
	urls := make([]string, n)
	servers := make([]*httptest.Server, n)
	for i := range n {
		ts := httptest.NewServer(planserver.New().Handler())
		t.Cleanup(ts.Close)
		urls[i], servers[i] = ts.URL, ts
	}
	return urls, servers
}

func indexedPlanBytes(t *testing.T, cube *sparsehypercube.Cube, src uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := cube.Plan(sparsehypercube.BroadcastScheme{Source: src}).WriteIndexedTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// localReport is the single-process baseline the distributed Report
// must be byte-identical to.
func localReport(t *testing.T, data []byte) sparsehypercube.Report {
	t.Helper()
	plan, err := sparsehypercube.ReadPlanAt(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	return plan.Verify()
}

// checkIdentical asserts the acceptance criterion both ways: DeepEqual
// on the Report values and equality of their JSON wire bytes.
func checkIdentical(t *testing.T, want, got sparsehypercube.Report, format string, args ...any) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf(format+": Report diverges:\nlocal:       %+v\ndistributed: %+v", append(args, want, got)...)
	}
	wb, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wb, gb) {
		t.Fatalf(format+": response bytes diverge:\nlocal:       %s\ndistributed: %s", append(args, wb, gb)...)
	}
}

// TestDistVerifyMatchesLocal is the tentpole acceptance gate: for
// k ∈ {1,2,3}, intact plans fanned over fleets of one and three
// workers — inline and plan-upload modes — must stitch to the exact
// single-process Report.
func TestDistVerifyMatchesLocal(t *testing.T) {
	for _, kn := range [][2]int{{1, 6}, {2, 10}, {3, 12}} {
		k, n := kn[0], kn[1]
		cube, err := sparsehypercube.New(k, n)
		if err != nil {
			t.Fatal(err)
		}
		data := indexedPlanBytes(t, cube, cube.Order()/3)
		want := localReport(t, data)
		if !want.Valid || !want.MinimumTime {
			t.Fatalf("k=%d: intact plan did not verify locally: %+v", k, want)
		}
		for _, workers := range []int{1, 3} {
			urls, _ := fleet(t, workers)
			for _, upload := range []bool{false, true} {
				opts := []distverify.Option{distverify.WithLogf(t.Logf)}
				if upload {
					opts = append(opts, distverify.WithPlanUpload())
				}
				c, err := distverify.New(urls, opts...)
				if err != nil {
					t.Fatal(err)
				}
				got, err := c.Verify(context.Background(), data)
				if err != nil {
					t.Fatalf("k=%d workers=%d upload=%v: %v", k, workers, upload, err)
				}
				checkIdentical(t, want, got, "k=%d workers=%d upload=%v", k, workers, upload)
			}
		}
	}
}

// mutateSchedule applies one named structural corruption, mirroring the
// facade's parallel-verify test catalogue (cross-range effects on
// purpose).
func mutateSchedule(name string, s *sparsehypercube.Schedule, order uint64) {
	last := len(s.Rounds) - 1
	switch name {
	case "drop-middle-call":
		mid := s.Rounds[last/2]
		s.Rounds[last/2] = mid[:len(mid)-1]
	case "duplicate-call":
		r := s.Rounds[last/2]
		s.Rounds[last/2] = append(r, r[0])
	case "retarget-receiver":
		r := s.Rounds[last]
		if len(r) >= 2 {
			r[1].Path[len(r[1].Path)-1] = r[0].Path[len(r[0].Path)-1]
		}
	case "overlong-call":
		c := &s.Rounds[last][0]
		tail := c.Path[len(c.Path)-1]
		c.Path = append(c.Path, tail^1, tail^1^2)
	case "out-of-range-vertex":
		c := &s.Rounds[last/2][0]
		c.Path[len(c.Path)-1] = order + 7
	case "uninformed-early-caller":
		c := s.Rounds[last][0]
		s.Rounds[last] = s.Rounds[last][1:]
		s.Rounds[0] = append(s.Rounds[0], c)
	}
}

func mutatedPlanBytes(t *testing.T, cube *sparsehypercube.Cube, src uint64, name string) []byte {
	t.Helper()
	s := cube.Plan(sparsehypercube.BroadcastScheme{Source: src}).Materialize()
	mutateSchedule(name, s, cube.Order())
	inner := &linecomm.Schedule{Source: s.Source, Rounds: make([]linecomm.Round, len(s.Rounds))}
	for i, round := range s.Rounds {
		inner.Rounds[i] = make(linecomm.Round, len(round))
		for j, c := range round {
			inner.Rounds[i][j] = linecomm.Call{Path: c.Path}
		}
	}
	var buf bytes.Buffer
	h := schedio.Header{K: cube.K(), Dims: cube.Dims(), Scheme: "broadcast", Source: src}
	if _, err := schedio.EncodeIndexed(&buf, h, inner); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDistVerifyMutatedPlans: semantically broken plans must stitch to
// byte-identical Reports — violations, their order and messages
// included — for k ∈ {1,2,3}.
func TestDistVerifyMutatedPlans(t *testing.T) {
	names := []string{"drop-middle-call", "duplicate-call", "retarget-receiver",
		"overlong-call", "out-of-range-vertex", "uninformed-early-caller"}
	urls, _ := fleet(t, 3)
	for _, kn := range [][2]int{{1, 6}, {2, 9}, {3, 12}} {
		k, n := kn[0], kn[1]
		cube, err := sparsehypercube.New(k, n)
		if err != nil {
			t.Fatal(err)
		}
		c, err := distverify.New(urls)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range names {
			data := mutatedPlanBytes(t, cube, 1, name)
			want := localReport(t, data)
			if want.Valid && want.Complete && want.MinimumTime {
				t.Fatalf("k=%d %s: mutation went undetected", k, name)
			}
			got, err := c.Verify(context.Background(), data)
			if err != nil {
				t.Fatalf("k=%d %s: %v", k, name, err)
			}
			checkIdentical(t, want, got, "k=%d %s", k, name)
		}
	}
}

// TestDistVerifyCorruptedPlans: random byte corruption anywhere in the
// file must leave the distributed Report identical to the local one —
// the structural pass catches the anomaly and defers to the local
// authoritative pass.
func TestDistVerifyCorruptedPlans(t *testing.T) {
	cube, err := sparsehypercube.New(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	data := indexedPlanBytes(t, cube, 3)
	urls, _ := fleet(t, 2)
	c, err := distverify.New(urls)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		mut := append([]byte(nil), data...)
		off := rng.Intn(len(mut))
		mut[off] ^= byte(1 + rng.Intn(255))
		plan, lerr := sparsehypercube.ReadPlanAt(bytes.NewReader(mut), int64(len(mut)))
		got, derr := c.Verify(context.Background(), mut)
		if (lerr == nil) != (derr == nil) {
			t.Fatalf("trial %d (offset %d): open split: local err %v, distributed err %v", trial, off, lerr, derr)
		}
		if lerr != nil {
			continue // corruption caught at open time, identically
		}
		checkIdentical(t, plan.Verify(), got, "trial %d (offset %d)", trial, off)
	}
}

// flakyHandler wraps a worker with an injected fault on its range
// endpoint.
func flakyHandler(inner http.Handler, fault func(w http.ResponseWriter, r *http.Request, body []byte) bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/ranges/verify" {
			inner.ServeHTTP(w, r)
			return
		}
		body, _ := io.ReadAll(r.Body)
		r.Body = io.NopCloser(bytes.NewReader(body))
		if fault(w, r, body) {
			return // fault consumed the request
		}
		inner.ServeHTTP(w, r)
	})
}

// rewriteResponse proxies a range request to the real handler and lets
// the fault rewrite the JSON response before it leaves.
func rewriteResponse(inner http.Handler, rewrite func(m map[string]any)) func(w http.ResponseWriter, r *http.Request, body []byte) bool {
	return func(w http.ResponseWriter, r *http.Request, body []byte) bool {
		rec := httptest.NewRecorder()
		inner.ServeHTTP(rec, r)
		if rec.Code != http.StatusOK {
			for k, v := range rec.Header() {
				w.Header()[k] = v
			}
			w.WriteHeader(rec.Code)
			w.Write(rec.Body.Bytes())
			return true
		}
		var m map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return true
		}
		rewrite(m)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(m)
		return true
	}
}

// TestDistVerifyWorkerFaults: the acceptance criterion under injected
// faults — timeouts, mid-run crashes, corrupt span CRCs, responses for
// the wrong range, a fully dead fleet — retries, reassignment, or the
// local fallback must still produce the byte-identical Report.
func TestDistVerifyWorkerFaults(t *testing.T) {
	cube, err := sparsehypercube.New(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	data := indexedPlanBytes(t, cube, 5)
	want := localReport(t, data)
	mutated := mutatedPlanBytes(t, cube, 5, "uninformed-early-caller")
	wantMutated := localReport(t, mutated)

	opts := func(extra ...distverify.Option) []distverify.Option {
		return append([]distverify.Option{
			distverify.WithRequestTimeout(500 * time.Millisecond),
			distverify.WithBackoff(10 * time.Millisecond),
			distverify.WithLogf(t.Logf),
		}, extra...)
	}

	t.Run("timeout", func(t *testing.T) {
		urls, _ := fleet(t, 2)
		// Hold every request until the client gives up. The body must be
		// drained first — the server only notices a client abort through
		// its background read, which waits for the body to be consumed —
		// and the release channel unblocks stragglers so Close can finish.
		release := make(chan struct{})
		hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			io.Copy(io.Discard, r.Body)
			select {
			case <-r.Context().Done():
			case <-release:
			}
		}))
		t.Cleanup(func() {
			close(release)
			hang.Close()
		})
		c, err := distverify.New(append(urls, hang.URL), opts()...)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Verify(context.Background(), data)
		if err != nil {
			t.Fatal(err)
		}
		checkIdentical(t, want, got, "hanging worker")
	})

	t.Run("killed-mid-run", func(t *testing.T) {
		urls, _ := fleet(t, 2)
		victim := planserver.New().Handler()
		var served atomic.Int64
		var kill sync.Once
		var vs *httptest.Server
		vs = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if served.Add(1) > 1 {
				// Die mid-run: drop the connection without a response and
				// refuse everything after.
				kill.Do(func() { go vs.CloseClientConnections() })
				panic(http.ErrAbortHandler)
			}
			victim.ServeHTTP(w, r)
		}))
		t.Cleanup(vs.Close)
		c, err := distverify.New(append(urls, vs.URL), opts()...)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Verify(context.Background(), data)
		if err != nil {
			t.Fatal(err)
		}
		checkIdentical(t, want, got, "killed worker")
	})

	t.Run("corrupt-span-crc", func(t *testing.T) {
		urls, _ := fleet(t, 2)
		inner := planserver.New().Handler()
		bad := httptest.NewServer(flakyHandler(inner, rewriteResponse(inner, func(m map[string]any) {
			m["span_crc"] = float64(12345)
		})))
		t.Cleanup(bad.Close)
		c, err := distverify.New(append(urls, bad.URL), opts()...)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Verify(context.Background(), data)
		if err != nil {
			t.Fatal(err)
		}
		checkIdentical(t, want, got, "corrupt span crc")
	})

	t.Run("wrong-range-response", func(t *testing.T) {
		// A worker answering for the wrong range must be rejected, not
		// merged — run it against the mutated plan so a mis-merge would
		// visibly scramble the violations.
		urls, _ := fleet(t, 2)
		inner := planserver.New().Handler()
		bad := httptest.NewServer(flakyHandler(inner, rewriteResponse(inner, func(m map[string]any) {
			m["start_round"] = m["start_round"].(float64) + 1
			m["end_round"] = m["end_round"].(float64) + 1
		})))
		t.Cleanup(bad.Close)
		c, err := distverify.New(append(urls, bad.URL), opts()...)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Verify(context.Background(), mutated)
		if err != nil {
			t.Fatal(err)
		}
		checkIdentical(t, wantMutated, got, "wrong-range response")
	})

	t.Run("all-dead", func(t *testing.T) {
		dead := httptest.NewServer(http.NotFoundHandler())
		url := dead.URL
		dead.Close() // connection refused from the first request
		c, err := distverify.New([]string{url}, opts(distverify.WithRetries(1))...)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Verify(context.Background(), data)
		if err != nil {
			t.Fatal(err)
		}
		checkIdentical(t, want, got, "dead fleet")
	})
}

// TestDistVerifyOutOfOrderCompletion: ranges deliberately finish in
// reverse order (earlier ranges are slowed the most); the stitch must
// still be positional, not arrival-ordered.
func TestDistVerifyOutOfOrderCompletion(t *testing.T) {
	cube, err := sparsehypercube.New(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	mutated := mutatedPlanBytes(t, cube, 1, "uninformed-early-caller")
	want := localReport(t, mutated)

	inner := planserver.New().Handler()
	slowEarly := httptest.NewServer(flakyHandler(inner, func(w http.ResponseWriter, r *http.Request, body []byte) bool {
		var req distverify.RangeRequest
		if json.Unmarshal(body, &req) == nil {
			time.Sleep(time.Duration(max(0, 20-req.StartRound)) * 5 * time.Millisecond)
		}
		return false
	}))
	t.Cleanup(slowEarly.Close)
	c, err := distverify.New([]string{slowEarly.URL, slowEarly.URL, slowEarly.URL},
		distverify.WithRangesPerWorker(2))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Verify(context.Background(), mutated)
	if err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, want, got, "out-of-order completion")
}

// TestDistVerifyPlanUploadFallbacks: upload mode must degrade — an
// endpoint whose upload fails is fed inline ranges; an endpoint that
// claims an id it later 404s gets the bytes shipped inline per request.
func TestDistVerifyPlanUploadFallbacks(t *testing.T) {
	cube, err := sparsehypercube.New(2, 9)
	if err != nil {
		t.Fatal(err)
	}
	data := indexedPlanBytes(t, cube, 2)
	want := localReport(t, data)

	inner := planserver.New().Handler()
	noUpload := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/plans" {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(noUpload.Close)
	amnesiac := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/plans" {
			// Accept the upload, remember nothing: every plan-id range
			// request will 404 and the coordinator must re-ship inline.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusCreated)
			w.Write([]byte(`{"id":"acceptedandforgotten"}`))
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(amnesiac.Close)

	c, err := distverify.New([]string{noUpload.URL, amnesiac.URL},
		distverify.WithPlanUpload(), distverify.WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Verify(context.Background(), data)
	if err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, want, got, "upload fallbacks")
}

// TestDistVerifyLocalFallbackPaths: plans that cannot be distributed
// verify locally with the identical Report, and real input errors still
// surface as errors.
func TestDistVerifyLocalFallbackPaths(t *testing.T) {
	urls, _ := fleet(t, 1)
	c, err := distverify.New(urls)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := sparsehypercube.New(2, 8)
	if err != nil {
		t.Fatal(err)
	}

	// A gossip plan verifies under its own model — locally.
	var gossip bytes.Buffer
	if _, err := cube.Plan(sparsehypercube.GossipScheme{Root: 2}).WriteIndexedTo(&gossip); err != nil {
		t.Fatal(err)
	}
	want := localReport(t, gossip.Bytes())
	got, err := c.Verify(context.Background(), gossip.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, want, got, "gossip plan")

	// An unindexed plan has nothing to split.
	var plain bytes.Buffer
	if _, err := cube.Plan(sparsehypercube.BroadcastScheme{Source: 1}).WriteTo(&plain); err != nil {
		t.Fatal(err)
	}
	want = localReport(t, plain.Bytes())
	got, err = c.Verify(context.Background(), plain.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, want, got, "unindexed plan")

	// Garbage is an open error, exactly as ReadPlanAt reports it.
	if _, err := c.Verify(context.Background(), []byte("not a plan")); err == nil {
		t.Error("garbage accepted")
	}

	// A cancelled context surfaces as its error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	data := indexedPlanBytes(t, cube, 0)
	if _, err := c.Verify(ctx, data); err == nil {
		t.Error("cancelled context produced a report")
	}

	// No workers is a construction error.
	if _, err := distverify.New(nil); err == nil {
		t.Error("empty fleet accepted")
	}
}

// TestDistVerifyFile: the file entry point verifies through a mapping
// and matches the in-memory path.
func TestDistVerifyFile(t *testing.T) {
	cube, err := sparsehypercube.New(2, 9)
	if err != nil {
		t.Fatal(err)
	}
	data := indexedPlanBytes(t, cube, 4)
	dir := t.TempDir()
	path := dir + "/plan.shcp"
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	urls, _ := fleet(t, 2)
	c, err := distverify.New(urls)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.VerifyFile(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, localReport(t, data), got, "file entry point")
	if _, err := c.VerifyFile(context.Background(), dir+"/missing"); err == nil {
		t.Error("missing file accepted")
	}
}
