package distverify

// This file is the wire contract of distributed range verification: the
// JSON request/response envelope of planserver's POST /v1/ranges/verify
// endpoint, documented (and executed) in docs/FORMAT.md. Planserver
// imports these types to serve the endpoint; the coordinator in this
// package speaks them as a client. The conversion helpers round-trip
// linecomm values exactly — violation kinds travel by their canonical
// names and are parsed back into the same ViolationKind — so a Report
// stitched from responses is byte-identical to a local verification.

import (
	"fmt"

	"sparsehypercube/internal/linecomm"
)

// RangeRequest asks a worker to run the seeded stream validator over
// one contiguous round range of a plan. Exactly one of PlanID and Plan
// must be set: PlanID names a plan previously uploaded to the worker's
// plan cache (POST /v1/plans); Plan carries the range inline, nothing
// pre-shared.
type RangeRequest struct {
	// PlanID addresses a cached indexed plan on the worker; the range is
	// read from the worker's copy via its round index.
	PlanID string `json:"plan_id,omitempty"`
	// Plan carries the range inline for workers holding nothing.
	Plan *InlinePlan `json:"plan,omitempty"`

	// StartRound and EndRound delimit the absolute round range
	// [start_round, end_round) being verified.
	StartRound int `json:"start_round"`
	EndRound   int `json:"end_round"`

	// Seed lists the vertices (beyond the source) informed by rounds
	// [0, start_round) — the coordinator's structural pass output,
	// exactly what linecomm.CollectInformedStream returns for them.
	Seed []uint64 `json:"seed,omitempty"`

	// SpanCRC is the CRC-32 (IEEE) the coordinator expects of the
	// range's encoded byte span. A worker whose bytes disagree refuses
	// with 409 rather than verifying the wrong bytes.
	SpanCRC uint32 `json:"span_crc"`
}

// InlinePlan is the self-contained form of a range: the cube the plan
// binds to, the broadcast source, and the raw encoded byte span of the
// requested rounds (schedio round encoding, as extracted by
// PlanAt.RangeBytes; base64 in JSON).
type InlinePlan struct {
	K      int    `json:"k"`
	Dims   []int  `json:"dims"`
	Source uint64 `json:"source"`
	Span   []byte `json:"span"`
}

// WireViolation is one validator finding on the wire. Round and Call
// are the 0-based indices of linecomm.Violation (absolute rounds); Kind
// is the kind's canonical name (linecomm.ViolationKind.String).
type WireViolation struct {
	Round int    `json:"round"`
	Call  int    `json:"call"`
	Kind  string `json:"kind"`
	Msg   string `json:"msg"`
}

// RangeResponse is a worker's verdict on one range: the
// linecomm.Result of the seeded validator, plus the echoed range bounds
// and span CRC so a coordinator can reject a response that answers a
// different question than it asked.
type RangeResponse struct {
	StartRound       int             `json:"start_round"`
	EndRound         int             `json:"end_round"`
	SpanCRC          uint32          `json:"span_crc"`
	Informed         uint64          `json:"informed"`
	InformedPerRound []uint64        `json:"informed_per_round"`
	MaxCallLength    int             `json:"max_call_length"`
	Violations       []WireViolation `json:"violations,omitempty"`
}

// ResponseFromResult wraps a seeded range validation result for the
// wire.
func ResponseFromResult(res *linecomm.Result, startRound, endRound int, spanCRC uint32) RangeResponse {
	out := RangeResponse{
		StartRound:       startRound,
		EndRound:         endRound,
		SpanCRC:          spanCRC,
		Informed:         res.Informed,
		InformedPerRound: res.InformedPerRound,
		MaxCallLength:    res.MaxCallLength,
	}
	for _, v := range res.Violations {
		out.Violations = append(out.Violations, WireViolation{
			Round: v.Round, Call: v.Call, Kind: v.Kind.String(), Msg: v.Msg,
		})
	}
	return out
}

// Result reconstructs the exact linecomm.Result the worker computed —
// kinds parsed back from their names, so every Violation.String comes
// out byte-identical. Complete and MinimumTime are whole-schedule
// judgements and stay false, as ValidateStreamSeeded leaves them; the
// coordinator's MergeRangeResults computes them. An unknown kind name
// is an error: a response this code cannot represent must be rejected,
// not guessed at.
func (r *RangeResponse) Result() (*linecomm.Result, error) {
	res := &linecomm.Result{
		Informed:         r.Informed,
		InformedPerRound: r.InformedPerRound,
		MaxCallLength:    r.MaxCallLength,
	}
	for _, v := range r.Violations {
		kind, ok := linecomm.ParseViolationKind(v.Kind)
		if !ok {
			return nil, fmt.Errorf("distverify: unknown violation kind %q", v.Kind)
		}
		res.Violations = append(res.Violations, linecomm.Violation{
			Round: v.Round, Call: v.Call, Kind: kind, Msg: v.Msg,
		})
	}
	return res, nil
}
