package planserver

// The worker half of distributed range verification: a distverify
// coordinator runs the structural pass over a plan locally, then ships
// each round range here — by the content-hash id of a previously
// uploaded plan, or self-contained with the range's bytes inline — and
// this endpoint runs the seeded stream validator over it. Everything a
// request claims is checked against what the bytes say: the span CRC
// must match what the decode accumulates (409 otherwise — verifying
// different bytes than the coordinator checksummed would stitch a lie
// into its report), the seed must fit the cube, and any refusal is the
// structured 4xx envelope, never a 500.

import (
	"hash/crc32"
	"net/http"
	"time"

	"sparsehypercube"
	"sparsehypercube/internal/distverify"
	"sparsehypercube/internal/linecomm"
	"sparsehypercube/internal/schedio"
)

// handleRangeVerify serves POST /v1/ranges/verify: one seeded range
// validation (distverify.RangeRequest in, distverify.RangeResponse
// out).
func (s *Server) handleRangeVerify(w http.ResponseWriter, r *http.Request) {
	var req distverify.RangeRequest
	if err := decodeJSONBody(w, r, s.maxUpload, &req); err != nil {
		writeError(w, uploadStatus(err), "range request: %v", err)
		return
	}
	if (req.PlanID == "") == (req.Plan == nil) {
		writeError(w, http.StatusBadRequest, "exactly one of plan_id and plan must be set")
		return
	}
	lo, hi := req.StartRound, req.EndRound
	if lo < 0 || lo >= hi {
		writeError(w, http.StatusBadRequest, "round range [%d,%d) is empty", lo, hi)
		return
	}

	var (
		cube   *sparsehypercube.Cube
		source uint64
		rr     *schedio.RoundRange
	)
	if req.PlanID != "" {
		sp, ok := s.lookupPlan(req.PlanID)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown plan %q", req.PlanID)
			return
		}
		defer sp.release()
		if sp.info.Scheme == "gossip" {
			writeError(w, http.StatusBadRequest, "range verification applies the broadcast model; plan %q is a %q plan", req.PlanID, sp.info.Scheme)
			return
		}
		if !sp.info.Indexed {
			writeError(w, http.StatusBadRequest, "plan %q has no round index", req.PlanID)
			return
		}
		if hi > sp.info.Rounds {
			writeError(w, http.StatusBadRequest, "round range [%d,%d) outside [0,%d)", lo, hi, sp.info.Rounds)
			return
		}
		cube, source = sp.plan.Cube(), sp.info.Source
		var err error
		if rr, err = sp.at.Range(lo, hi); err != nil {
			writeError(w, http.StatusBadRequest, "range: %v", err)
			return
		}
	} else {
		p := req.Plan
		c, err := sparsehypercube.NewWithDims(p.K, p.Dims)
		if err != nil {
			writeError(w, http.StatusBadRequest, "range cube: %v", err)
			return
		}
		if err := s.checkN(c.N()); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		// Refuse before validating: checking the claimed span CRC here is
		// one cheap scan, and a mismatch means the coordinator and this
		// worker would be talking about different bytes.
		if crc := crc32.ChecksumIEEE(p.Span); crc != req.SpanCRC {
			writeError(w, http.StatusConflict, "span checksum mismatch: computed %08x, request claims %08x", crc, req.SpanCRC)
			return
		}
		h := schedio.Header{K: p.K, Dims: p.Dims, Scheme: "broadcast", Source: p.Source}
		if rr, err = schedio.DecodeSpan(h, p.Span, lo, hi); err != nil {
			writeError(w, http.StatusBadRequest, "range: %v", err)
			return
		}
		cube, source = c, p.Source
	}
	if source >= cube.Order() {
		writeError(w, http.StatusBadRequest, "source %d outside [0,%d)", source, cube.Order())
		return
	}
	for _, v := range req.Seed {
		// The validator's bit-set state seeds by index; an out-of-range
		// vertex is a malformed request, not a violation to report.
		if v >= cube.Order() {
			writeError(w, http.StatusBadRequest, "seed vertex %d outside [0,%d)", v, cube.Order())
			return
		}
	}

	release := s.acquireVerify()
	start := time.Now()
	res := linecomm.ValidateStreamSeeded(cube, cube.K(), source, req.Seed, lo,
		rr.Rounds(), linecomm.DefaultOptions(), 0)
	s.observeVerify(start)
	release()
	// The decode is trusted no further than the bytes deserve: the range
	// must have drained cleanly, consumed exactly its declared span, and
	// checksummed to what the coordinator expects — otherwise the Result
	// above judged different bytes than the coordinator will stitch.
	crc, err := rr.CRC()
	if err != nil {
		writeError(w, http.StatusBadRequest, "range decode: %v", err)
		return
	}
	if crc != req.SpanCRC {
		writeError(w, http.StatusConflict, "span checksum mismatch: computed %08x, request claims %08x", crc, req.SpanCRC)
		return
	}
	writeJSON(w, http.StatusOK, distverify.ResponseFromResult(res, lo, hi, crc))
}
