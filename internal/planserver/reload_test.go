package planserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"sparsehypercube"
)

// reloadPool uploads a few indexed plans to a spill-mode server and
// returns id → canonical verify response body.
func reloadPool(t *testing.T, url string, sources []uint64) map[string][]byte {
	t.Helper()
	cube, err := sparsehypercube.New(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string][]byte, len(sources))
	for _, src := range sources {
		var buf bytes.Buffer
		if _, err := cube.Plan(sparsehypercube.BroadcastScheme{Source: src}).WriteIndexedTo(&buf); err != nil {
			t.Fatal(err)
		}
		resp, body := post(t, url+"/v1/plans", "application/octet-stream", buf.Bytes())
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload status %d: %s", resp.StatusCode, body)
		}
		var info PlanInfo
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		if !info.Spilled {
			t.Fatalf("upload did not spill: %+v", info)
		}
		resp, body = post(t, url+"/v1/plans/"+info.ID+"/verify", "application/json", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("verify status %d: %s", resp.StatusCode, body)
		}
		want[info.ID] = body
	}
	return want
}

// TestRestartReloadServesSpilledPlans is the restart-recovery pin: a
// fresh Server over a populated spill directory must serve every prior
// plan id byte-identically, while planted garbage — a truncated file
// under a plausible name, a valid plan renamed to a foreign id — is
// quarantined with a logged reason, never fatal.
func TestRestartReloadServesSpilledPlans(t *testing.T) {
	dir := t.TempDir()

	// First life: three plans spilled, canonical responses recorded.
	s1 := New(WithSpillDir(dir))
	ts1 := httptest.NewServer(s1.Handler())
	want := reloadPool(t, ts1.URL, []uint64{0, 3, 5})
	ts1.Close()
	s1.Close()

	// Plant garbage the reload must survive. The truncated file has a
	// plausible 64-hex name; the foreign file holds a real, checkable
	// plan whose bytes hash to a different id than its name claims.
	truncID := strings.Repeat("ab", 32)
	foreignID := strings.Repeat("cd", 32)
	for id := range want {
		data, err := os.ReadFile(filepath.Join(dir, id+".shcp"))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, truncID+".shcp"), data[:len(data)/2], 0o600); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, foreignID+".shcp"), data, 0o600); err != nil {
			t.Fatal(err)
		}
		break
	}
	// A crashed upload's temp file and an unrelated stray: swept/skipped.
	if err := os.WriteFile(filepath.Join(dir, "upload-123.tmp"), []byte("partial"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("operator scribbles"), 0o600); err != nil {
		t.Fatal(err)
	}

	// Second life: reload over the same directory, capturing the log.
	var (
		logMu sync.Mutex
		logs  []string
	)
	s2 := New(WithSpillDir(dir), WithLogf(func(format string, args ...any) {
		logMu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		logMu.Unlock()
	}))
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)

	if n := s2.metrics.plansReloaded.Load(); n != int64(len(want)) {
		t.Errorf("plans reloaded: %d, want %d", n, len(want))
	}
	if n := s2.metrics.plansQuarantined.Load(); n != 3 {
		t.Errorf("plans quarantined: %d, want 3 (truncated + foreign + stray)", n)
	}

	for id, body := range want {
		resp, got := post(t, ts2.URL+"/v1/plans/"+id+"/verify", "application/json", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("restarted verify of %s: status %d: %s", id[:12], resp.StatusCode, got)
		}
		if !bytes.Equal(got, body) {
			t.Errorf("plan %s not byte-identical across restart:\nbefore %s\nafter  %s", id[:12], body, got)
		}
	}

	// The quarantined ids are not served, and their reasons were logged.
	for _, id := range []string{truncID, foreignID} {
		resp, body := post(t, ts2.URL+"/v1/plans/"+id+"/verify", "application/json", nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("quarantined %s served: status %d: %s", id[:12], resp.StatusCode, body)
		}
		if _, err := os.Stat(filepath.Join(dir, id+".shcp")); err != nil {
			t.Errorf("quarantined file %s removed from disk: %v", id[:12], err)
		}
	}
	logMu.Lock()
	defer logMu.Unlock()
	quarantineLogs := 0
	for _, line := range logs {
		if strings.Contains(line, "quarantined") {
			quarantineLogs++
			if !strings.Contains(line, truncID+".shcp") &&
				!strings.Contains(line, foreignID+".shcp") &&
				!strings.Contains(line, "notes.txt") {
				t.Errorf("quarantine log names no planted file: %q", line)
			}
		}
	}
	if quarantineLogs != 3 {
		t.Errorf("quarantine log lines: %d, want 3: %q", quarantineLogs, logs)
	}

	// The crashed-upload temp file was swept; the stray left in place.
	if _, err := os.Stat(filepath.Join(dir, "upload-123.tmp")); !os.IsNotExist(err) {
		t.Errorf("crashed upload temp file not swept: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "notes.txt")); err != nil {
		t.Errorf("stray non-plan file disturbed: %v", err)
	}
}

// TestReloadRespectsBudgets: a reload over more spill files than the
// cache budget admits must evict down to the budget, with the files
// still on disk for a later re-admission.
func TestReloadRespectsBudgets(t *testing.T) {
	dir := t.TempDir()
	s1 := New(WithSpillDir(dir))
	ts1 := httptest.NewServer(s1.Handler())
	want := reloadPool(t, ts1.URL, []uint64{0, 1, 2, 3})
	ts1.Close()
	s1.Close()

	s2 := New(WithSpillDir(dir), WithMaxPlans(2))
	defer s2.Close()
	s2.mu.Lock()
	cached := len(s2.plans)
	s2.mu.Unlock()
	if cached != 2 {
		t.Fatalf("reload over MaxPlans=2 cached %d plans", cached)
	}
	if n := s2.metrics.plansEvicted.Load(); n != 2 {
		t.Errorf("reload evictions: %d, want 2", n)
	}
	for id := range want {
		if _, err := os.Stat(filepath.Join(dir, id+".shcp")); err != nil {
			t.Errorf("spill file %s gone after budgeted reload: %v", id[:12], err)
		}
	}
}
