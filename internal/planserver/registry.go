package planserver

import (
	"sync"
	"sync/atomic"
)

// sessionShards is the fixed size of the session registry's shard
// array. A power of two keeps id-hash routing a mask instead of a
// modulo; 16 shards is far past the point where the registry lock
// stops being the ceiling (the validator work behind each request
// dwarfs the map access), while keeping the reaper's full sweep cheap.
const sessionShards = 16

// sessionShard is one slice of the registry: its own mutex, its own
// map. Open/append/close on sessions that hash to different shards
// never contend.
type sessionShard struct {
	mu       sync.RWMutex
	sessions map[string]*session
}

// sessionRegistry replaces the old single-mutex sessions map: session
// ids hash onto a fixed power-of-two shard array so concurrent
// sessions stop serialising on one lock. The open-session cap is
// global, enforced with an optimistic atomic counter rather than any
// cross-shard lock.
type sessionRegistry struct {
	shards [sessionShards]sessionShard
	open   atomic.Int64
}

func (r *sessionRegistry) init() {
	for i := range r.shards {
		r.shards[i].sessions = make(map[string]*session)
	}
}

// shard routes an id to its shard by FNV-1a hash.
func (r *sessionRegistry) shard(id string) *sessionShard {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return &r.shards[h&(sessionShards-1)]
}

func (r *sessionRegistry) get(id string) (*session, bool) {
	sh := r.shard(id)
	sh.mu.RLock()
	sess, ok := sh.sessions[id]
	sh.mu.RUnlock()
	return sess, ok
}

// insert registers a session, refusing when the global cap (maxOpen
// > 0) is already met. The count is claimed optimistically before the
// shard insert: a loser backs its claim out, so the cap can briefly
// turn away an open racing a close, but can never be exceeded.
func (r *sessionRegistry) insert(sess *session, maxOpen int) bool {
	if n := r.open.Add(1); maxOpen > 0 && n > int64(maxOpen) {
		r.open.Add(-1)
		return false
	}
	sh := r.shard(sess.id)
	sh.mu.Lock()
	sh.sessions[sess.id] = sess
	sh.mu.Unlock()
	return true
}

// remove deregisters an id, reporting whether it was present (a close
// racing the reaper must decrement the open count exactly once).
func (r *sessionRegistry) remove(id string) bool {
	sh := r.shard(id)
	sh.mu.Lock()
	_, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
	}
	sh.mu.Unlock()
	if ok {
		r.open.Add(-1)
	}
	return ok
}

// snapshot copies out every registered session — the reaper's and
// drain's sweep input. Holding no lock across the sweep itself means a
// swept session may already be closing; forceClose tolerates that.
func (r *sessionRegistry) snapshot() []*session {
	var out []*session
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for _, sess := range sh.sessions {
			out = append(out, sess)
		}
		sh.mu.RUnlock()
	}
	return out
}
