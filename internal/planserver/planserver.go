// Package planserver serves schedio plan verification over HTTP: the
// Plan engine behind an endpoint, consumed by many concurrent broadcast
// sessions.
//
// Three ways in, all returning the same Report JSON the in-process
// engine produces (sparsehypercube.Report's wire form):
//
//	POST /v1/verify                 one-shot: the body is a schedio plan
//	                                file, streamed through the decoder
//	                                into the stream validator — never
//	                                materialised, nothing retained
//	POST /v1/plans                  upload once: the plan is fully
//	                                validated (structure + checksums),
//	                                cached in memory, and addressed by
//	                                its content hash
//	GET  /v1/plans/{id}             cached plan metadata
//	POST /v1/plans/{id}/verify      verify the cached plan; any number of
//	                                concurrent verifiers replay the one
//	                                cached copy through ReadPlanAt
//	DELETE /v1/plans/{id}           drop a cached plan
//	POST /v1/ranges/verify          verify one round range as a worker of
//	                                a distributed verification (see
//	                                internal/distverify): a seeded range
//	                                validator over a cached plan's index
//	                                or over inline range bytes
//	POST /v1/sessions               open an incremental session: a cube
//	                                plus a scheme name bind a streaming
//	                                validator fed round batches
//	POST /v1/sessions/{id}/rounds   append a round batch (JSON envelope,
//	                                linecomm.ReadRoundBatch)
//	POST /v1/sessions/{id}/close    finish the stream, get the Report
//	GET  /healthz                   liveness: 200 serving, 503 draining
//	GET  /metrics                   Prometheus text exposition (plans
//	                                cached/spilled/evicted, sessions
//	                                open/reaped, verify latency
//	                                histogram, bytes mapped)
//
// Every schedio byte that arrives here is untrusted: decoders cap
// wire-driven allocation, uploads are size-limited, and malformed input
// yields a structured {"error": ...} with a 4xx status — never a 500,
// never a panic. Resource use is bounded the same way: the validator's
// working state scales with the cube order a header *declares* (a
// 25-byte file can name a 2^26-vertex cube), so the service refuses
// cubes past a configurable dimension bound, runs verifications under a
// concurrency limiter, and caps the number of open sessions.
//
// With WithSpillDir set (`sparsecube serve -spill-dir`), uploaded plans
// spill to disk instead of living on the heap: each validated upload is
// written to a content-addressed file, memory-mapped read-only, and
// every verifier replays the one page-cache copy of the bytes — cold
// plans cost no resident memory, and a plan file can be shared with
// other processes mapping it. A restarted server is no longer amnesiac:
// New rescans the spill directory, re-derives each plan id from its
// filename, re-checks the bytes (content hash + footer/index CRC), and
// rebuilds the in-memory index, quarantining anything truncated or
// foreign with a logged reason (reload.go). Indexed uploads
// additionally verify with the parallel round-range engine (see
// sparsehypercube.WithVerifyWorkers), Reports unchanged.
//
// The server survives churn instead of leaking by design: the plan
// cache is an LRU bounded by count and byte budgets (WithMaxPlans,
// WithMaxPlanBytes — eviction is refcount-aware, so an evicted plan
// unmaps only after its last in-flight verifier, and an evicted spilled
// plan keeps its on-disk file for the next restart; see evict.go), idle
// sessions are reaped after WithSessionTTL (drain.go), the session
// registry is sharded so opens/appends/closes stop serialising on one
// lock (registry.go), and Drain quiesces everything for a graceful
// SIGTERM. GET /healthz and GET /metrics expose the server's health
// (metrics.go).
package planserver

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sparsehypercube"
	"sparsehypercube/internal/schedio"
)

const (
	// DefaultMaxUpload bounds plan uploads and round batches (1 GiB — a
	// ~4 B/call plan far beyond the largest simulatable cube).
	DefaultMaxUpload = 1 << 30

	// DefaultMaxN bounds the cube dimension the service binds a
	// validator to. The streaming validator's bit sets scale with
	// order*n — a hostile header is 25 bytes, the state it would demand
	// is not — so anything above the bound is refused up front.
	DefaultMaxN = 24

	// DefaultMaxSessions bounds concurrently open incremental sessions,
	// each of which holds live validator state until closed.
	DefaultMaxSessions = 64
)

// Server is the verification service. The zero value is not usable;
// construct with New.
type Server struct {
	maxUpload    int64
	maxN         int
	maxSessions  int
	maxPlans     int   // LRU count budget; 0 = unbounded
	maxPlanBytes int64 // LRU byte budget; 0 = unbounded
	sessionTTL   time.Duration
	spillDir     string
	verifySem    chan struct{} // limits concurrently running verifications
	logf         func(format string, args ...any)
	now          func() time.Time

	mu        sync.Mutex
	plans     map[string]*servedPlan
	lru       *list.List // *servedPlan entries, most recent at the front
	planBytes int64      // total bytes of cached plans
	// spilling counts in-flight spill-mode uploads per plan id. A DELETE
	// consults it (under mu) before unlinking the content-addressed spill
	// file: an in-flight re-upload of the same id writes the same bytes
	// to the same path, so removal must be skipped and deferred to
	// whoever finishes last (finishSpillLocked).
	spilling map[string]int

	sessions   sessionRegistry
	sessionSeq atomic.Int64

	metrics  metrics
	draining atomic.Bool

	stopReaper sync.Once
	reaperStop chan struct{}
	reaperDone chan struct{}
}

// Option configures a Server.
type Option func(*Server)

// WithMaxUpload caps the bytes accepted per plan upload or round batch.
func WithMaxUpload(n int64) Option {
	return func(s *Server) { s.maxUpload = n }
}

// WithMaxN caps the cube dimension the service will verify.
func WithMaxN(n int) Option {
	return func(s *Server) { s.maxN = n }
}

// WithMaxSessions caps concurrently open incremental sessions.
func WithMaxSessions(n int) Option {
	return func(s *Server) { s.maxSessions = n }
}

// WithMaxPlans bounds how many plans the cache holds: past the budget,
// least-recently-used entries are evicted (refcount-aware — in-flight
// verifiers finish first). 0 means unbounded.
func WithMaxPlans(n int) Option {
	return func(s *Server) { s.maxPlans = n }
}

// WithMaxPlanBytes bounds the cache's total plan bytes the same way.
// The most recently used plan is always admitted even when it alone
// exceeds the budget. 0 means unbounded.
func WithMaxPlanBytes(n int64) Option {
	return func(s *Server) { s.maxPlanBytes = n }
}

// WithSessionTTL makes a background reaper force-close incremental
// sessions idle (no open/append activity) for longer than ttl, so an
// abandoned client stops pinning validator state forever. 0 disables
// the reaper. Servers with a TTL own a goroutine; release it with
// Close.
func WithSessionTTL(ttl time.Duration) Option {
	return func(s *Server) { s.sessionTTL = ttl }
}

// WithLogf routes the server's operational diagnostics (spill-reload
// quarantines, degraded-mode notices). Default: discarded.
func WithLogf(logf func(format string, args ...any)) Option {
	return func(s *Server) { s.logf = logf }
}

// WithSpillDir makes uploaded plans spill to disk: each validated
// upload is written to dir (content-addressed, <id>.shcp), memory-
// mapped, and served straight off the mapping — the kernel page cache
// holds the one copy of the bytes instead of the Go heap, it is shared
// with any other process mapping the same file, and cold plans cost no
// resident memory at all. On platforms without mmap the spilled file is
// served through positional reads; if spilling itself fails the upload
// degrades to the in-memory copy rather than erroring. Deleting a plan
// removes its spill file; the mapping is unmapped only once the last
// in-flight verifier finishes.
func WithSpillDir(dir string) Option {
	return func(s *Server) { s.spillDir = dir }
}

// WithVerifyConcurrency caps concurrently *running* verifications.
// Requests beyond the cap queue; they are not rejected — any number of
// concurrent verification requests complete, the limiter only bounds
// peak validator memory and CPU.
func WithVerifyConcurrency(n int) Option {
	return func(s *Server) { s.verifySem = make(chan struct{}, max(1, n)) }
}

// New constructs a Server. With a spill directory configured, the
// directory is rescanned and every servable plan file re-indexed
// before New returns (see reload.go), so a restart serves what its
// predecessor spilled.
func New(opts ...Option) *Server {
	s := &Server{
		maxUpload:   DefaultMaxUpload,
		maxN:        DefaultMaxN,
		maxSessions: DefaultMaxSessions,
		plans:       make(map[string]*servedPlan),
		lru:         list.New(),
		spilling:    make(map[string]int),
		logf:        func(string, ...any) {},
		now:         time.Now,
	}
	s.sessions.init()
	for _, o := range opts {
		o(s)
	}
	if s.verifySem == nil {
		s.verifySem = make(chan struct{}, max(2, runtime.NumCPU()))
	}
	if s.spillDir != "" {
		s.reloadSpillDir()
	}
	s.startReaper()
	return s
}

// acquireVerify claims a verification slot; the returned release must
// be called when the validator finishes.
func (s *Server) acquireVerify() (release func()) {
	s.verifySem <- struct{}{}
	return func() { <-s.verifySem }
}

// checkN enforces the served cube-dimension bound.
func (s *Server) checkN(n int) error {
	if n > s.maxN {
		return fmt.Errorf("cube dimension %d exceeds the served maximum %d", n, s.maxN)
	}
	return nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/verify", s.handleVerify)
	mux.HandleFunc("POST /v1/plans", s.handlePlanUpload)
	mux.HandleFunc("GET /v1/plans/{id}", s.handlePlanInfo)
	mux.HandleFunc("POST /v1/plans/{id}/verify", s.handlePlanVerify)
	mux.HandleFunc("POST /v1/ranges/verify", s.handleRangeVerify)
	mux.HandleFunc("DELETE /v1/plans/{id}", s.handlePlanDelete)
	mux.HandleFunc("POST /v1/sessions", s.handleSessionOpen)
	mux.HandleFunc("POST /v1/sessions/{id}/rounds", s.handleSessionRounds)
	mux.HandleFunc("POST /v1/sessions/{id}/close", s.handleSessionClose)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// servedPlan is one cached plan: the reusable ReadPlanAt handle every
// verifier shares, backed either by the single in-memory copy of the
// upload or — in spill mode — by a memory-mapped file on disk.
type servedPlan struct {
	info    PlanInfo
	plan    *sparsehypercube.Plan
	at      *schedio.PlanAt // random access for range verification
	mapping io.Closer       // spill mode: the file mapping; nil in-memory
	path    string          // spill mode: the on-disk file; "" in-memory

	elem     *list.Element // LRU position; nil once deleted or evicted
	mapBytes int64         // mapping size, for the bytes-mapped gauge
	metrics  *metrics      // gauge sink; nil for unmapped plans

	// refs counts the cache's own reference plus every in-flight
	// verifier, so a DELETE (or an eviction) never unmaps bytes a
	// concurrent verify is still reading.
	refs atomic.Int64
}

// release drops one reference; the last one out closes the mapping.
func (sp *servedPlan) release() {
	if sp.refs.Add(-1) == 0 {
		sp.closeMapping()
	}
}

// discard disposes of a servedPlan that never entered the cache (the
// loser of a concurrent-upload insert race). Only the mapping is
// closed; the spill file is finishSpillLocked's concern — the winner
// either serves those exact bytes from the same content-addressed path
// or, if it degraded to in-memory, the last retiring upload sweeps the
// file.
func (sp *servedPlan) discard() {
	sp.closeMapping()
}

func (sp *servedPlan) closeMapping() {
	if sp.mapping != nil {
		sp.mapping.Close()
		if sp.metrics != nil {
			sp.metrics.bytesMapped.Add(-sp.mapBytes)
		}
	}
}

// adoptMapping hands a servedPlan its file mapping and keeps the
// bytes-mapped gauge honest across the adopt/close pair.
func (s *Server) adoptMapping(sp *servedPlan, m *schedio.Mapping) {
	sp.mapping, sp.mapBytes, sp.metrics = m, m.Size(), &s.metrics
	s.metrics.bytesMapped.Add(m.Size())
}

// PlanInfo is the metadata envelope for a cached plan.
type PlanInfo struct {
	ID      string `json:"id"`
	K       int    `json:"k"`
	Dims    []int  `json:"dims"`
	Scheme  string `json:"scheme"`
	Source  uint64 `json:"source"`
	Bytes   int64  `json:"bytes"`
	Rounds  int    `json:"rounds"`
	Indexed bool   `json:"indexed"`
	Spilled bool   `json:"spilled,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError emits the structured error envelope. Malformed input is
// the client's fault, so everything routed here is a 4xx.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// uploadStatus maps a body-read failure to a status: over-limit bodies
// are 413, everything else a plain 400.
func uploadStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// handleVerify streams one plan file from the request body through the
// decoder into the stream validator and returns the Report — the
// one-shot form, nothing cached, nothing materialised.
func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.refuseDraining(w)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.maxUpload)
	plan, err := sparsehypercube.ReadPlan(body)
	if err != nil {
		writeError(w, uploadStatus(err), "invalid plan: %v", err)
		return
	}
	if err := s.checkN(plan.Cube().N()); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	release := s.acquireVerify()
	start := time.Now()
	rep := plan.Verify()
	s.observeVerify(start)
	release()
	// An over-limit body is a size-policy failure, not a verdict on the
	// plan: a valid plan larger than the cap must get the same 413 an
	// upload to /v1/plans gets, never a definitive valid:false Report.
	var mbe *http.MaxBytesError
	if errors.As(plan.Err(), &mbe) {
		writeError(w, http.StatusRequestEntityTooLarge, "reading upload: %v", mbe)
		return
	}
	// Other decode failures past the header fold into the report as
	// replay violations — the upload "verified" as definitively broken,
	// which is an answer, not a server error.
	writeJSON(w, http.StatusOK, rep)
}

// handlePlanUpload validates and caches a plan. The plan is addressed
// by content hash, so re-uploading an already-served file is a no-op
// that returns the existing entry.
func (s *Server) handlePlanUpload(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.refuseDraining(w)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxUpload))
	if err != nil {
		writeError(w, uploadStatus(err), "reading upload: %v", err)
		return
	}
	// The full digest is the address: peers are hostile, and a truncated
	// hash would open the dedupe path to birthday-collision poisoning.
	sum := sha256.Sum256(data)
	id := hex.EncodeToString(sum[:])

	s.mu.Lock()
	sp, ok := s.plans[id]
	if ok {
		s.touchPlanLocked(sp)
	}
	s.mu.Unlock()
	if ok {
		writeJSON(w, http.StatusOK, sp.info)
		return
	}

	spillTracked := s.spillDir != ""
	if spillTracked {
		s.mu.Lock()
		s.spilling[id]++
		s.mu.Unlock()
	}
	sp, err = s.newServedPlan(id, data)
	if err != nil {
		if spillTracked {
			s.mu.Lock()
			//lint:allow lockheld the spill sweep's check-and-unlink must share this critical section — a racing upload of the same id could re-create the file between the ownership check and the remove
			s.finishSpillLocked(id)
			s.mu.Unlock()
		}
		writeError(w, http.StatusBadRequest, "invalid plan: %v", err)
		return
	}
	status := http.StatusCreated
	var victims []*servedPlan
	var loser *servedPlan
	s.mu.Lock()
	if existing, ok := s.plans[id]; ok {
		// A concurrent identical upload won the insert race: serve its
		// copy, and report 200 exactly as the sequential dedupe path does.
		// The loser's mapping is discarded after the unlock below — its
		// munmap must not serialise other requests behind this section.
		loser, sp, status = sp, existing, http.StatusOK
		s.touchPlanLocked(existing)
	} else {
		victims = s.insertPlanLocked(sp)
	}
	if spillTracked {
		//lint:allow lockheld the spill sweep's check-and-unlink must share this critical section — a racing upload of the same id could re-create the file between the ownership check and the remove
		s.finishSpillLocked(id)
	}
	s.mu.Unlock()
	if loser != nil {
		loser.discard()
	}
	// The budgets' evictions unmap outside the lock, and only once the
	// victims' last in-flight verifiers are done.
	releaseAll(victims)
	writeJSON(w, status, sp.info)
}

// finishSpillLocked retires one in-flight spill for id; the last one
// out sweeps the content-addressed file if no cache entry owns it (a
// failed or degraded upload racing a DELETE would otherwise orphan it).
// The caller holds s.mu.
func (s *Server) finishSpillLocked(id string) {
	if n := s.spilling[id] - 1; n > 0 {
		s.spilling[id] = n
		return
	}
	delete(s.spilling, id)
	if sp, ok := s.plans[id]; !ok || sp.path == "" {
		os.Remove(filepath.Join(s.spillDir, id+".shcp")) // best effort; usually absent
	}
}

// newServedPlan fully validates an uploaded plan — structure, plan
// checksum, index agreement, stream/random-access consistency — in one
// Check scan, and builds the shared verification handle. Everything
// downstream trusts the bytes because of this one scan. (ReadPlanAt
// re-parses the small header/trailer that OpenPlanAt already read;
// deduplicating that would mean routing internal schedio types through
// the public facade, a poor trade for microseconds per upload.)
func (s *Server) newServedPlan(id string, data []byte) (*servedPlan, error) {
	at, err := schedio.OpenPlanAt(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, err
	}
	h := at.Header()
	if err := s.checkN(h.Dims[len(h.Dims)-1]); err != nil {
		return nil, err
	}
	rounds, err := at.Check()
	if err != nil {
		return nil, err
	}
	sp := &servedPlan{
		info: PlanInfo{
			ID:      id,
			K:       h.K,
			Dims:    h.Dims,
			Scheme:  h.Scheme,
			Source:  h.Source,
			Bytes:   int64(len(data)),
			Rounds:  rounds,
			Indexed: at.Indexed(),
		},
	}
	sp.refs.Store(1) // the cache's own reference
	if s.spillDir != "" {
		if plan, pat, m, path, err := s.spillPlan(id, data); err == nil {
			sp.plan, sp.at, sp.path = plan, pat, path
			s.adoptMapping(sp, m)
			sp.info.Spilled = true
			s.metrics.plansSpilled.Add(1)
			return sp, nil
		} else {
			// Spilling is an optimisation: if the disk or the mapping is
			// unavailable, serving from memory beats failing the upload.
			s.logf("planserver: spilling %s failed, serving from memory: %v", id[:12], err)
		}
	}
	plan, err := sparsehypercube.ReadPlanAt(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, err
	}
	sp.plan, sp.at = plan, at
	return sp, nil
}

// spillPlan writes a validated upload to the spill directory (written
// to a temp name, renamed into the content-addressed path — atomic
// naming, so a crashed upload never leaves a half-written file under
// the served name; the data itself is not fsync'd, the mapping we
// serve from is what matters) and opens it for serving through a
// read-only memory mapping.
func (s *Server) spillPlan(id string, data []byte) (*sparsehypercube.Plan, *schedio.PlanAt, *schedio.Mapping, string, error) {
	if err := os.MkdirAll(s.spillDir, 0o755); err != nil {
		return nil, nil, nil, "", err
	}
	path := filepath.Join(s.spillDir, id+".shcp")
	tmp, err := os.CreateTemp(s.spillDir, "upload-*.tmp")
	if err != nil {
		return nil, nil, nil, "", err
	}
	_, werr := tmp.Write(data)
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return nil, nil, nil, "", werr
	}
	// Failures past the rename leave the content-addressed file behind
	// on purpose: a concurrent identical upload may have renamed its own
	// copy onto the path, so unlinking here could strand the winner.
	// finishSpillLocked sweeps the file once the last in-flight upload
	// retires with no cache entry owning it.
	plan, pat, m, err := s.openSpilled(path)
	if err != nil {
		return nil, nil, nil, "", err
	}
	return plan, pat, m, path, nil
}

// openSpilled memory-maps a plan file and builds the two serving
// handles over the one mapping — the tail of every spill and the whole
// of a startup reload.
func (s *Server) openSpilled(path string) (*sparsehypercube.Plan, *schedio.PlanAt, *schedio.Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, err
	}
	m, err := schedio.OpenMapping(f)
	if err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	plan, err := sparsehypercube.ReadPlanAt(m, m.Size())
	if err != nil {
		m.Close()
		return nil, nil, nil, err
	}
	pat, err := schedio.OpenPlanAt(m, m.Size())
	if err != nil {
		m.Close()
		return nil, nil, nil, err
	}
	return plan, pat, m, nil
}

// lookupPlan returns the cached plan with a reference acquired (under
// the lock, so a concurrent DELETE or eviction cannot unmap it first)
// and bumps it to the front of the LRU; the caller must release it.
func (s *Server) lookupPlan(id string) (*servedPlan, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sp, ok := s.plans[id]
	if ok {
		sp.refs.Add(1)
		s.touchPlanLocked(sp)
	}
	return sp, ok
}

func (s *Server) handlePlanInfo(w http.ResponseWriter, r *http.Request) {
	sp, ok := s.lookupPlan(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown plan %q", r.PathValue("id"))
		return
	}
	defer sp.release()
	writeJSON(w, http.StatusOK, sp.info)
}

// handlePlanVerify replays the cached plan through its own decoder —
// the Plan handle is safe for any number of concurrent verifiers, all
// sharing the one cached byte copy.
func (s *Server) handlePlanVerify(w http.ResponseWriter, r *http.Request) {
	sp, ok := s.lookupPlan(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown plan %q", r.PathValue("id"))
		return
	}
	defer sp.release()
	release := s.acquireVerify()
	start := time.Now()
	rep := sp.plan.Verify()
	s.observeVerify(start)
	release()
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handlePlanDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sp, ok := s.plans[id]
	if ok {
		s.removePlanLocked(sp)
		// Unlink the spill file in the same critical section — unless a
		// re-upload of the same id is in flight, which writes the same
		// bytes to the same content-addressed path and must be left the
		// file (its retire sweep reclaims it if it fails). Unlinking a
		// mapped file is safe (the pages live until the last unmap); on
		// fallback platforms an open handle may pin the file — best
		// effort, the handle's close is what matters.
		if sp.path != "" && s.spilling[id] == 0 {
			//lint:allow lockheld the unlink must share the delete's critical section: an upload of the same id racing outside it could re-create the path between check and remove
			os.Remove(sp.path)
		}
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown plan %q", id)
		return
	}
	sp.release() // the cache's reference; in-flight verifiers hold their own
	w.WriteHeader(http.StatusNoContent)
}
