package planserver

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Startup reload: the content-addressed spill files survive a restart,
// so the in-memory index is rebuilt from them instead of starting
// amnesiac. Each <id>.shcp in the spill directory has its plan id
// re-derived from its filename, its bytes re-hashed against that id
// (content addressing is the serving contract — a renamed file must not
// serve foreign bytes under a trusted id), and its structure re-checked
// the same way an upload is (OpenPlanAt header + full footer/index CRC
// scan). Anything that fails — truncated, foreign, unreadable, past the
// dimension bound — is quarantined: skipped with a logged reason and
// left in place for the operator, never fatal to startup.

// reloadSpillDir rescans s.spillDir and re-indexes every plan file it
// can trust. Called from New before the server is published, so the
// per-file insert takes s.mu only out of discipline (and to reuse the
// budgeted insert path); all file I/O happens with no lock held.
func (s *Server) reloadSpillDir() {
	entries, err := os.ReadDir(s.spillDir)
	if err != nil {
		if !os.IsNotExist(err) {
			s.logf("planserver: spill dir %s unreadable, starting empty: %v", s.spillDir, err)
		}
		return
	}
	// Oldest first, so the LRU order after reload approximates the file
	// history and the budgets evict the stalest plans.
	sort.Slice(entries, func(i, j int) bool {
		ii, ierr := entries[i].Info()
		ji, jerr := entries[j].Info()
		if ierr != nil || jerr != nil {
			return ierr == nil
		}
		return ii.ModTime().Before(ji.ModTime())
	})
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasPrefix(name, "upload-") && strings.HasSuffix(name, ".tmp") {
			// A crashed upload's temp file: never renamed, so never served.
			os.Remove(filepath.Join(s.spillDir, name))
			continue
		}
		sp, err := s.reloadOne(name)
		if err != nil {
			s.metrics.plansQuarantined.Add(1)
			s.logf("planserver: quarantined spill file %s: %v", name, err)
			continue
		}
		s.mu.Lock()
		var victims []*servedPlan
		if _, dup := s.plans[sp.info.ID]; dup {
			// Two files cannot share one content-addressed name; only a
			// case-folding filesystem could get here. First one wins.
			s.mu.Unlock()
			sp.discard()
			continue
		}
		victims = s.insertPlanLocked(sp)
		s.mu.Unlock()
		releaseAll(victims)
		s.metrics.plansReloaded.Add(1)
	}
}

// reloadOne re-admits a single spill file, returning a quarantine
// reason as the error.
func (s *Server) reloadOne(name string) (*servedPlan, error) {
	id, ok := strings.CutSuffix(name, ".shcp")
	if !ok {
		return nil, fmt.Errorf("foreign file: no .shcp suffix")
	}
	if len(id) != sha256.Size*2 || !isLowerHex(id) {
		return nil, fmt.Errorf("foreign file: name is not a sha256 plan id")
	}
	path := filepath.Join(s.spillDir, name)
	plan, at, m, err := s.openSpilled(path)
	if err != nil {
		return nil, fmt.Errorf("not a servable plan: %w", err)
	}
	h := at.Header()
	if err := s.checkN(h.Dims[len(h.Dims)-1]); err != nil {
		m.Close()
		return nil, err
	}
	rounds, err := at.Check()
	if err != nil {
		m.Close()
		return nil, fmt.Errorf("plan check: %w", err)
	}
	sum := sha256.New()
	if _, err := io.Copy(sum, io.NewSectionReader(m, 0, m.Size())); err != nil {
		m.Close()
		return nil, fmt.Errorf("rehashing: %w", err)
	}
	if got := hex.EncodeToString(sum.Sum(nil)); got != id {
		m.Close()
		return nil, fmt.Errorf("foreign file: content hashes to %s, name claims %s", got[:12], id[:12])
	}
	sp := &servedPlan{
		info: PlanInfo{
			ID:      id,
			K:       h.K,
			Dims:    h.Dims,
			Scheme:  h.Scheme,
			Source:  h.Source,
			Bytes:   m.Size(),
			Rounds:  rounds,
			Indexed: at.Indexed(),
			Spilled: true,
		},
	}
	sp.refs.Store(1)
	sp.plan, sp.at = plan, at
	s.adoptMapping(sp, m)
	return sp, nil
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
