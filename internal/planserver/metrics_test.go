package planserver

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sparsehypercube"
)

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts one un-labelled sample from a scrape.
func metricValue(t *testing.T, scrape, name string) string {
	t.Helper()
	for _, line := range strings.Split(scrape, "\n") {
		if v, ok := strings.CutPrefix(line, name+" "); ok {
			return v
		}
	}
	t.Fatalf("metric %s missing from scrape:\n%s", name, scrape)
	return ""
}

// TestMetricsEndpoint drives one of everything through the server and
// checks the Prometheus text exposition reflects it: every series
// present, gauges tracking the live state, counters monotonic.
func TestMetricsEndpoint(t *testing.T) {
	dir := t.TempDir()
	s := New(WithSpillDir(dir))
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	cube, err := sparsehypercube.New(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := cube.Plan(sparsehypercube.BroadcastScheme{Source: 2}).WriteIndexedTo(&buf); err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, ts.URL+"/v1/plans", "application/octet-stream", buf.Bytes())
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d: %s", resp.StatusCode, body)
	}
	id := contentHashID(buf.Bytes())
	resp, body = post(t, ts.URL+"/v1/plans/"+id+"/verify", "application/json", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify status %d: %s", resp.StatusCode, body)
	}
	resp, body = post(t, ts.URL+"/v1/sessions", "application/json", []byte(`{"k":2,"n":8}`))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("session open status %d: %s", resp.StatusCode, body)
	}

	got := scrape(t, ts.URL)
	for name, want := range map[string]string{
		"planserver_plans_cached":                     "1",
		"planserver_plans_cached_bytes":               fmt.Sprint(buf.Len()),
		"planserver_plans_spilled_total":              "1",
		"planserver_plans_evicted_total":              "0",
		"planserver_plans_reloaded_total":             "0",
		"planserver_plans_quarantined_total":          "0",
		"planserver_sessions_open":                    "1",
		"planserver_sessions_opened_total":            "1",
		"planserver_sessions_reaped_total":            "0",
		"planserver_sessions_drained_total":           "0",
		"planserver_bytes_mapped":                     fmt.Sprint(buf.Len()),
		"planserver_verify_seconds_count":             "1",
		`planserver_verify_seconds_bucket{le="+Inf"}`: "1",
	} {
		if v := metricValue(t, got, name); v != want {
			t.Errorf("%s = %s, want %s", name, v, want)
		}
	}
	// Histogram buckets are cumulative and properly formed.
	for _, le := range []string{"0.001", "0.005", "0.025", "0.1", "0.5", "2.5", "10"} {
		metricValue(t, got, fmt.Sprintf("planserver_verify_seconds_bucket{le=%q}", le))
	}
	if !strings.Contains(got, "# TYPE planserver_verify_seconds histogram") {
		t.Error("verify histogram TYPE line missing")
	}

	// Healthz flips from 200 to 503 across a drain, and the drain shows
	// up in the session counters.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while serving: %d", hresp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	hresp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d", hresp.StatusCode)
	}
	got = scrape(t, ts.URL)
	if v := metricValue(t, got, "planserver_sessions_drained_total"); v != "1" {
		t.Errorf("sessions drained: %s, want 1", v)
	}
	if v := metricValue(t, got, "planserver_sessions_open"); v != "0" {
		t.Errorf("sessions open after drain: %s, want 0", v)
	}
}

// TestSessionReaper: a session idle past the TTL is closed by the
// reaper and counted; an active one survives.
func TestSessionReaper(t *testing.T) {
	s := New(WithSessionTTL(50 * time.Millisecond))
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, body := post(t, ts.URL+"/v1/sessions", "application/json", []byte(`{"k":2,"n":8}`))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open status %d: %s", resp.StatusCode, body)
	}

	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.sessionsReaped.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle session never reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := s.sessions.open.Load(); n != 0 {
		t.Fatalf("%d sessions open after reap", n)
	}
}

// BenchmarkSessionRegistry compares the sharded registry against a
// single-mutex map under parallel open/get/close churn — the sharded
// path is the one the server runs; the mutex path is the baseline it
// replaced.
func BenchmarkSessionRegistry(b *testing.B) {
	b.Run("sharded", func(b *testing.B) {
		var r sessionRegistry
		r.init()
		var seq atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			g := seq.Add(1)
			i := 0
			for pb.Next() {
				i++
				id := fmt.Sprintf("s%d-%d", g, i)
				sess := &session{id: id}
				r.insert(sess, 0)
				r.get(id)
				r.remove(id)
			}
		})
	})
	b.Run("single-mutex", func(b *testing.B) {
		var (
			mu       sync.Mutex
			sessions = map[string]*session{}
			seq      atomic.Int64
		)
		b.RunParallel(func(pb *testing.PB) {
			g := seq.Add(1)
			i := 0
			for pb.Next() {
				i++
				id := fmt.Sprintf("s%d-%d", g, i)
				sess := &session{id: id}
				mu.Lock()
				sessions[id] = sess
				mu.Unlock()
				mu.Lock()
				_ = sessions[id]
				mu.Unlock()
				mu.Lock()
				delete(sessions, id)
				mu.Unlock()
			}
		})
	})
}
