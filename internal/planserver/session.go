package planserver

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"sparsehypercube"
	"sparsehypercube/internal/linecomm"
)

// session is one open incremental verification: a streaming validator
// running in its own goroutine, fed rounds over a channel as batches
// arrive. The validator sees exactly the round stream a file replay
// would produce, so a closed session's Report matches what Verify on
// the equivalent plan file reports.
type session struct {
	id   string
	ch   chan []sparsehypercube.Call
	done chan struct{}

	// report is written once by the validator goroutine before done is
	// closed; readers wait on done first.
	report sparsehypercube.Report

	// lastActive is the unix-nano time of the last open or append — the
	// idle-TTL reaper's clock.
	lastActive atomic.Int64

	// sendMu serialises producers: batches append in arrival order, and
	// close cannot race a send.
	sendMu   sync.Mutex
	closed   bool
	received int
}

// forceClose ends the round stream if it is still open and waits for
// the validator goroutine to drain, reporting whether this call did
// the closing. The reaper and Drain share it; losing the race to a
// client's own close (or to each other) is a clean no-op.
func (sess *session) forceClose() bool {
	sess.sendMu.Lock()
	already := sess.closed
	if !already {
		sess.closed = true
		close(sess.ch)
	}
	sess.sendMu.Unlock()
	if already {
		return false
	}
	<-sess.done
	return true
}

// sessionRequest opens a session. Dims (explicit parameter vector)
// takes precedence over K/N (automatic construction). Scheme names
// bind exactly as stored plans do: "gossip" verifies under the
// telephone-model gossip validator (with optional restricted Sources),
// anything else under single-source broadcast from Source.
type sessionRequest struct {
	K       int      `json:"k"`
	N       int      `json:"n"`
	Dims    []int    `json:"dims,omitempty"`
	Scheme  string   `json:"scheme"`
	Source  uint64   `json:"source"`
	Sources []uint64 `json:"sources,omitempty"`
}

type sessionResponse struct {
	ID string `json:"id"`
}

type roundsResponse struct {
	ID       string `json:"id"`
	Accepted int    `json:"accepted"`
	Received int    `json:"received"`
}

func (s *Server) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.refuseDraining(w)
		return
	}
	var req sessionRequest
	if err := decodeJSONBody(w, r, s.maxUpload, &req); err != nil {
		writeError(w, uploadStatus(err), "session request: %v", err)
		return
	}
	if req.Scheme == "" {
		req.Scheme = "broadcast"
	}
	var (
		cube *sparsehypercube.Cube
		err  error
	)
	if len(req.Dims) > 0 {
		cube, err = sparsehypercube.NewWithDims(len(req.Dims), req.Dims)
	} else {
		cube, err = sparsehypercube.New(req.K, req.N)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "session cube: %v", err)
		return
	}
	if err := s.checkN(cube.N()); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	sess := &session{
		id:   fmt.Sprintf("s%d", s.sessionSeq.Add(1)),
		ch:   make(chan []sparsehypercube.Call, 16),
		done: make(chan struct{}),
	}
	sess.lastActive.Store(s.now().UnixNano())
	// Each open session pins live validator state until closed or
	// reaped by the idle TTL (drain.go); the cap bounds the worst case.
	if !s.sessions.insert(sess, s.maxSessions) {
		writeError(w, http.StatusTooManyRequests, "session limit reached (%d open)", s.maxSessions)
		return
	}
	s.metrics.sessionsOpened.Add(1)
	go sess.run(cube, req)
	writeJSON(w, http.StatusCreated, sessionResponse{ID: sess.id})
}

// run feeds the channel into the scheme's streaming validator, then
// keeps draining so producers never block on a validator that stopped
// consuming early (bad source, fatal violation).
func (sess *session) run(cube *sparsehypercube.Cube, req sessionRequest) {
	seq := func(yield func([]sparsehypercube.Call) bool) {
		for round := range sess.ch {
			if !yield(round) {
				return
			}
		}
	}
	var rep sparsehypercube.Report
	if req.Scheme == "gossip" {
		rep = sparsehypercube.MultiSourceScheme{Root: req.Source, Sources: req.Sources}.
			VerifyPlan(cube, seq)
	} else {
		rep = cube.Plan(sparsehypercube.RoundScheme(req.Scheme, req.Source, seq)).Verify()
	}
	sess.report = rep
	for range sess.ch {
	}
	close(sess.done)
}

func (s *Server) handleSessionRounds(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", r.PathValue("id"))
		return
	}
	sess.lastActive.Store(s.now().UnixNano())
	batch, err := linecomm.ReadRoundBatch(http.MaxBytesReader(w, r.Body, s.maxUpload))
	if err != nil {
		writeError(w, uploadStatus(err), "round batch: %v", err)
		return
	}
	// The channel sends must stay inside the critical section (close
	// cannot race a send), but the response write must not: a slow
	// client draining its response would otherwise hold sendMu and
	// serialise every other producer behind it. Snapshot the counter
	// under the lock, answer after it.
	sess.sendMu.Lock()
	if sess.closed {
		sess.sendMu.Unlock()
		writeError(w, http.StatusConflict, "session %s already closed", sess.id)
		return
	}
	for _, round := range batch {
		calls := make([]sparsehypercube.Call, len(round))
		for i, c := range round {
			calls[i] = sparsehypercube.Call{Path: c.Path}
		}
		sess.ch <- calls
	}
	sess.received += len(batch)
	received := sess.received
	sess.sendMu.Unlock()
	writeJSON(w, http.StatusOK, roundsResponse{ID: sess.id, Accepted: len(batch), Received: received})
}

func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", r.PathValue("id"))
		return
	}
	sess.sendMu.Lock()
	if sess.closed {
		sess.sendMu.Unlock()
		writeError(w, http.StatusConflict, "session %s already closing", sess.id)
		return
	}
	sess.closed = true
	close(sess.ch)
	sess.sendMu.Unlock()

	<-sess.done
	s.sessions.remove(sess.id)
	writeJSON(w, http.StatusOK, sess.report)
}

// decodeJSONBody decodes one bounded JSON value.
func decodeJSONBody(w http.ResponseWriter, r *http.Request, limit int64, v any) error {
	return json.NewDecoder(http.MaxBytesReader(w, r.Body, limit)).Decode(v)
}
