package planserver

// Plan-cache eviction: the plans map is fronted by an LRU list with a
// count budget and a byte budget (either zero = unbounded). Uploads and
// lookups bump their entry to the front; whenever an insert pushes the
// cache over budget, entries fall off the back until it fits again —
// except the most recent one, which is always admitted (a byte budget
// smaller than a single plan must not make the server refuse to serve
// anything).
//
// Eviction is cache management, not deletion: an evicted entry's
// mapping is unmapped only when its last in-flight verifier releases it
// (the same refcount DELETE relies on), and an evicted *spilled* plan's
// content-addressed file stays on disk — a restart's spill-dir rescan
// (reload.go) re-indexes it, and re-uploading the same bytes just
// renames the identical content onto the identical path. DELETE remains
// the only path that unlinks.
//
// Every helper here requires s.mu held; none performs I/O or closes a
// mapping — callers release the returned victims after unlocking, which
// is exactly the lockheld discipline sparselint enforces.

// insertPlanLocked adds a plan to the cache and returns any entries the
// budgets push out; the caller must release each victim after
// dropping s.mu.
func (s *Server) insertPlanLocked(sp *servedPlan) (evicted []*servedPlan) {
	s.plans[sp.info.ID] = sp
	sp.elem = s.lru.PushFront(sp)
	s.planBytes += sp.info.Bytes
	return s.evictLocked()
}

// touchPlanLocked marks an entry most recently used.
func (s *Server) touchPlanLocked(sp *servedPlan) {
	if sp.elem != nil {
		s.lru.MoveToFront(sp.elem)
	}
}

// removePlanLocked takes an entry out of the map and the LRU
// bookkeeping (DELETE and eviction share it). The caller still owns
// the cache's reference and must release it after unlocking.
func (s *Server) removePlanLocked(sp *servedPlan) {
	delete(s.plans, sp.info.ID)
	if sp.elem != nil {
		s.lru.Remove(sp.elem)
		sp.elem = nil
	}
	s.planBytes -= sp.info.Bytes
}

// evictLocked pops least-recently-used entries until the cache fits
// both budgets again, always sparing the most recent entry.
func (s *Server) evictLocked() (evicted []*servedPlan) {
	for s.overBudgetLocked() && s.lru.Len() > 1 {
		sp := s.lru.Back().Value.(*servedPlan)
		s.removePlanLocked(sp)
		s.metrics.plansEvicted.Add(1)
		evicted = append(evicted, sp)
	}
	return evicted
}

func (s *Server) overBudgetLocked() bool {
	return (s.maxPlans > 0 && s.lru.Len() > s.maxPlans) ||
		(s.maxPlanBytes > 0 && s.planBytes > s.maxPlanBytes)
}

// releaseAll drops the cache reference of every victim evictLocked
// returned — called with no lock held, because the last reference out
// unmaps.
func releaseAll(victims []*servedPlan) {
	for _, sp := range victims {
		sp.release()
	}
}
