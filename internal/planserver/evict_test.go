package planserver

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"sparsehypercube"
	"sparsehypercube/internal/distverify"
	"sparsehypercube/internal/linecomm"
	"sparsehypercube/internal/schedio"
)

// contentHashID computes the serving id of a plan upload the same way
// the server does: the full sha256 of the bytes.
func contentHashID(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// evictPlan is one uploadable plan plus the client-side span CRC a
// range-verify request over its full round range must claim.
type evictPlan struct {
	id      string
	data    []byte
	rounds  int
	spanCRC uint32
}

func buildEvictPlans(t *testing.T, sources []uint64) []*evictPlan {
	t.Helper()
	cube, err := sparsehypercube.New(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	plans := make([]*evictPlan, 0, len(sources))
	for _, src := range sources {
		var buf bytes.Buffer
		if _, err := cube.Plan(sparsehypercube.BroadcastScheme{Source: src}).WriteIndexedTo(&buf); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()
		at, err := schedio.OpenPlanAt(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			t.Fatal(err)
		}
		rounds, err := at.Check()
		if err != nil {
			t.Fatal(err)
		}
		rr, err := at.Range(0, rounds)
		if err != nil {
			t.Fatal(err)
		}
		for range rr.Rounds() {
		}
		crc, err := rr.CRC()
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, &evictPlan{
			id:      contentHashID(data),
			data:    data,
			rounds:  rounds,
			spanCRC: crc,
		})
	}
	return plans
}

// TestEvictRaceDeleteVerify races uploads, verifies, range verifies,
// and deletes over a cache budgeted for a single plan, so every upload
// of one plan evicts another while requests against the victim are in
// flight. Under -race, every response must be a definitive 2xx or a
// clean 404 — never torn bytes, a 5xx, or a span-CRC 409 (which would
// mean a verifier read different bytes than were uploaded).
func TestEvictRaceDeleteVerify(t *testing.T) {
	plans := buildEvictPlans(t, []uint64{0, 2, 7})
	s := New(WithSpillDir(t.TempDir()), WithMaxPlans(1))
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	worker := func(seed int64) error {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 60; i++ {
			p := plans[rng.Intn(len(plans))]
			switch rng.Intn(6) {
			case 0: // delete
				req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/plans/"+p.id, nil)
				if err != nil {
					return err
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					return err
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusNotFound {
					return fmt.Errorf("delete status %d", resp.StatusCode)
				}
			case 1, 2: // range verify against possibly-evicted plan
				reqBody, err := json.Marshal(distverify.RangeRequest{
					PlanID:     p.id,
					StartRound: 0,
					EndRound:   p.rounds,
					SpanCRC:    p.spanCRC,
				})
				if err != nil {
					return err
				}
				resp, err := http.Post(ts.URL+"/v1/ranges/verify", "application/json", bytes.NewReader(reqBody))
				if err != nil {
					return err
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					return err
				}
				switch resp.StatusCode {
				case http.StatusOK:
					var rr distverify.RangeResponse
					if err := json.Unmarshal(body, &rr); err != nil {
						return fmt.Errorf("range response not JSON: %q: %v", body, err)
					}
					if len(rr.Violations) != 0 || rr.SpanCRC != p.spanCRC {
						return fmt.Errorf("range over plan %s judged invalid under eviction race: %s", p.id[:12], body)
					}
				case http.StatusNotFound:
					// Evicted or deleted first: fine.
				default:
					return fmt.Errorf("range verify status %d: %s", resp.StatusCode, body)
				}
			default: // upload, evicting someone, then verify
				resp, err := http.Post(ts.URL+"/v1/plans", "application/octet-stream", bytes.NewReader(p.data))
				if err != nil {
					return err
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					return err
				}
				if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
					return fmt.Errorf("upload status %d: %s", resp.StatusCode, body)
				}
				resp, err = http.Post(ts.URL+"/v1/plans/"+p.id+"/verify", "application/json", nil)
				if err != nil {
					return err
				}
				body, err = io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					return err
				}
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
					return fmt.Errorf("verify status %d: %s", resp.StatusCode, body)
				}
			}
		}
		return nil
	}

	const workers = 6
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			errs <- worker(seed)
		}(int64(100 + w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if n := s.metrics.plansEvicted.Load(); n == 0 {
		t.Error("race soak over MaxPlans=1 never evicted")
	}
}

// TestEvictMidRangeCompletesThenUnmaps pins the refcount contract at
// the eviction boundary: evicting a spilled plan while a verifier
// holds it must leave the mapping live until that verifier finishes,
// and unmap the instant its reference drops.
func TestEvictMidRangeCompletesThenUnmaps(t *testing.T) {
	plans := buildEvictPlans(t, []uint64{1, 4})
	s := New(WithSpillDir(t.TempDir()), WithMaxPlans(1))
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, body := post(t, ts.URL+"/v1/plans", "application/octet-stream", plans[0].data)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d: %s", resp.StatusCode, body)
	}

	// An in-flight verifier: holds a reference exactly as the handlers do.
	sp, ok := s.lookupPlan(plans[0].id)
	if !ok {
		t.Fatal("uploaded plan not served")
	}
	m, ok := sp.mapping.(*schedio.Mapping)
	if !ok {
		t.Fatalf("spilled plan has no file mapping: %T", sp.mapping)
	}

	// The second upload busts the one-plan budget and evicts the first.
	resp, body = post(t, ts.URL+"/v1/plans", "application/octet-stream", plans[1].data)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("second upload status %d: %s", resp.StatusCode, body)
	}
	s.mu.Lock()
	_, cached := s.plans[plans[0].id]
	s.mu.Unlock()
	if cached {
		t.Fatal("first plan still cached after budget-busting upload")
	}
	if n := s.metrics.plansEvicted.Load(); n != 1 {
		t.Fatalf("evictions: %d, want 1", n)
	}
	if !m.Mapped() {
		t.Fatal("eviction unmapped a plan with an in-flight verifier")
	}

	// The held reference still serves the full round range correctly off
	// the evicted-but-mapped bytes.
	rr, err := sp.at.Range(0, sp.info.Rounds)
	if err != nil {
		t.Fatalf("range over evicted plan: %v", err)
	}
	cube := sp.plan.Cube()
	res := linecomm.ValidateStreamSeeded(cube, cube.K(), sp.info.Source, nil, 0,
		rr.Rounds(), linecomm.DefaultOptions(), 0)
	// Complete is a whole-schedule judgement the range validator leaves
	// false; a full-cube informed count says the same thing here.
	if !res.Valid() || res.Informed != cube.Order() {
		t.Fatalf("evicted plan's range failed validation: %+v", res)
	}
	crc, err := rr.CRC()
	if err != nil {
		t.Fatal(err)
	}
	if crc != plans[0].spanCRC {
		t.Fatalf("evicted plan's span CRC diverged: %08x != %08x", crc, plans[0].spanCRC)
	}

	// Dropping the last reference unmaps immediately.
	sp.release()
	if n := sp.refs.Load(); n != 0 {
		t.Fatalf("refcount after release: %d", n)
	}
	if m.Mapped() {
		t.Fatal("mapping survives the last reference")
	}
}
