package planserver

import (
	"bytes"
	"encoding/json"
	"hash/crc32"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"sparsehypercube"
	"sparsehypercube/internal/distverify"
	"sparsehypercube/internal/linecomm"
	"sparsehypercube/internal/schedio"
)

// rangeFixture builds everything a range-verify request needs: an
// indexed broadcast plan, its random-access view, and the seed/span/CRC
// of rounds [lo, hi).
type rangeFixture struct {
	cube   *sparsehypercube.Cube
	data   []byte
	at     *schedio.PlanAt
	lo, hi int
	seed   []uint64
	span   []byte
	crc    uint32
	want   *linecomm.Result // the seeded validator's local verdict
}

func newRangeFixture(t *testing.T, k, n int, source uint64, lo, hi int) *rangeFixture {
	t.Helper()
	cube, err := sparsehypercube.New(k, n)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := cube.Plan(sparsehypercube.BroadcastScheme{Source: source}).WriteIndexedTo(&buf); err != nil {
		t.Fatal(err)
	}
	f := &rangeFixture{cube: cube, data: buf.Bytes(), lo: lo, hi: hi}
	f.at, err = schedio.OpenPlanAt(bytes.NewReader(f.data), int64(len(f.data)))
	if err != nil {
		t.Fatal(err)
	}
	if lo > 0 {
		head, err := f.at.Range(0, lo)
		if err != nil {
			t.Fatal(err)
		}
		f.seed = linecomm.CollectInformedStream(cube, head.Rounds())
	}
	f.span, err = f.at.RangeBytes(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	f.crc = crc32.ChecksumIEEE(f.span)
	rr, err := f.at.Range(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	f.want = linecomm.ValidateStreamSeeded(cube, k, source, f.seed, lo,
		rr.Rounds(), linecomm.DefaultOptions(), 0)
	return f
}

func (f *rangeFixture) inlineRequest() *distverify.RangeRequest {
	return &distverify.RangeRequest{
		Plan: &distverify.InlinePlan{
			K:      f.cube.K(),
			Dims:   f.cube.Dims(),
			Source: f.at.Header().Source,
			Span:   f.span,
		},
		StartRound: f.lo,
		EndRound:   f.hi,
		Seed:       f.seed,
		SpanCRC:    f.crc,
	}
}

func postRange(t *testing.T, url string, req *distverify.RangeRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return post(t, url+"/v1/ranges/verify", "application/json", body)
}

func checkRangeResponse(t *testing.T, f *rangeFixture, body []byte) {
	t.Helper()
	var rr distverify.RangeResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatalf("decoding range response %q: %v", body, err)
	}
	if rr.StartRound != f.lo || rr.EndRound != f.hi || rr.SpanCRC != f.crc {
		t.Fatalf("response echoes [%d,%d) crc %08x, want [%d,%d) crc %08x",
			rr.StartRound, rr.EndRound, rr.SpanCRC, f.lo, f.hi, f.crc)
	}
	got, err := rr.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, f.want) {
		t.Fatalf("served range Result diverges:\ngot  %+v\nwant %+v", got, f.want)
	}
}

// TestRangeVerifyInline: a self-contained range request must come back
// with exactly the local seeded validator's Result — on a clean middle
// range and on the seedless first range.
func TestRangeVerifyInline(t *testing.T) {
	ts := newTestServer(t)
	for _, split := range [][2]int{{0, 3}, {3, 7}, {9, 10}} {
		f := newRangeFixture(t, 2, 10, 3, split[0], split[1])
		resp, body := postRange(t, ts.URL, f.inlineRequest())
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("range %v: status %d: %s", split, resp.StatusCode, body)
		}
		checkRangeResponse(t, f, body)
	}
}

// TestRangeVerifyPlanID: the cached-plan form must serve the same
// Result off the uploaded copy's round index — in-memory and spilled.
func TestRangeVerifyPlanID(t *testing.T) {
	for _, spill := range []bool{false, true} {
		name := "memory"
		opts := []Option(nil)
		if spill {
			name, opts = "spill", []Option{WithSpillDir(t.TempDir())}
		}
		t.Run(name, func(t *testing.T) {
			ts := newTestServer(t, opts...)
			f := newRangeFixture(t, 2, 9, 1, 2, 6)
			resp, body := post(t, ts.URL+"/v1/plans", "application/octet-stream", f.data)
			if resp.StatusCode != http.StatusCreated {
				t.Fatalf("upload status %d: %s", resp.StatusCode, body)
			}
			var info PlanInfo
			if err := json.Unmarshal(body, &info); err != nil {
				t.Fatal(err)
			}
			req := f.inlineRequest()
			req.Plan, req.PlanID = nil, info.ID
			resp, body = postRange(t, ts.URL, req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			checkRangeResponse(t, f, body)
		})
	}
}

// TestRangeVerifyViolationsTravel: a range whose rounds violate the
// model must ship every violation — kind, indices, message — exactly
// as the local validator words them.
func TestRangeVerifyViolationsTravel(t *testing.T) {
	ts := newTestServer(t)
	f := newRangeFixture(t, 1, 6, 0, 2, 6)
	// Lie about the seed: rounds [2,6) validated with an empty informed
	// set yield caller-uninformed violations — legitimately computed by
	// the worker, and they must round-trip exactly.
	f.seed = nil
	rr, err := f.at.Range(f.lo, f.hi)
	if err != nil {
		t.Fatal(err)
	}
	f.want = linecomm.ValidateStreamSeeded(f.cube, f.cube.K(), 0, nil, f.lo,
		rr.Rounds(), linecomm.DefaultOptions(), 0)
	if f.want.Valid() {
		t.Fatal("unseeded middle range produced no violations")
	}
	resp, body := postRange(t, ts.URL, f.inlineRequest())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	checkRangeResponse(t, f, body)
}

// TestRangeVerifyRefusals: every malformed or unserveable range request
// gets the structured 4xx envelope it deserves.
func TestRangeVerifyRefusals(t *testing.T) {
	ts := newTestServer(t, WithMaxN(10))
	f := newRangeFixture(t, 2, 9, 1, 2, 6)

	// A cached gossip plan and an uncached-id baseline for the id form.
	cube := f.cube
	var gossip bytes.Buffer
	if _, err := cube.Plan(sparsehypercube.GossipScheme{Root: 0}).WriteIndexedTo(&gossip); err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, ts.URL+"/v1/plans", "application/octet-stream", gossip.Bytes())
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("gossip upload status %d: %s", resp.StatusCode, body)
	}
	var gossipInfo PlanInfo
	if err := json.Unmarshal(body, &gossipInfo); err != nil {
		t.Fatal(err)
	}
	var plain bytes.Buffer
	if _, err := cube.Plan(sparsehypercube.BroadcastScheme{Source: 0}).WriteTo(&plain); err != nil {
		t.Fatal(err)
	}
	resp, body = post(t, ts.URL+"/v1/plans", "application/octet-stream", plain.Bytes())
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("plain upload status %d: %s", resp.StatusCode, body)
	}
	var plainInfo PlanInfo
	if err := json.Unmarshal(body, &plainInfo); err != nil {
		t.Fatal(err)
	}
	resp, body = post(t, ts.URL+"/v1/plans", "application/octet-stream", f.data)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d: %s", resp.StatusCode, body)
	}
	var info PlanInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func(r *distverify.RangeRequest)
		status int
		substr string
	}{
		{"both-forms", func(r *distverify.RangeRequest) { r.PlanID = info.ID }, http.StatusBadRequest, "exactly one"},
		{"neither-form", func(r *distverify.RangeRequest) { r.Plan = nil }, http.StatusBadRequest, "exactly one"},
		{"empty-range", func(r *distverify.RangeRequest) { r.StartRound, r.EndRound = 3, 3 }, http.StatusBadRequest, "empty"},
		{"negative-range", func(r *distverify.RangeRequest) { r.StartRound = -1 }, http.StatusBadRequest, "empty"},
		{"unknown-plan", func(r *distverify.RangeRequest) { r.Plan, r.PlanID = nil, "feedbeef" }, http.StatusNotFound, "unknown plan"},
		{"gossip-plan", func(r *distverify.RangeRequest) { r.Plan, r.PlanID = nil, gossipInfo.ID }, http.StatusBadRequest, "broadcast model"},
		{"unindexed-plan", func(r *distverify.RangeRequest) { r.Plan, r.PlanID = nil, plainInfo.ID }, http.StatusBadRequest, "no round index"},
		{"range-past-end", func(r *distverify.RangeRequest) { r.Plan, r.PlanID = nil, info.ID; r.EndRound = 99 }, http.StatusBadRequest, "outside"},
		{"bad-cube", func(r *distverify.RangeRequest) { r.Plan.Dims = []int{0} }, http.StatusBadRequest, "range cube"},
		{"span-crc-mismatch", func(r *distverify.RangeRequest) { r.SpanCRC ^= 1 }, http.StatusConflict, "checksum mismatch"},
		{"plan-id-crc-mismatch", func(r *distverify.RangeRequest) { r.Plan, r.PlanID = nil, info.ID; r.SpanCRC ^= 1 }, http.StatusConflict, "checksum mismatch"},
		{"seed-out-of-range", func(r *distverify.RangeRequest) { r.Seed = []uint64{cube.Order() + 3} }, http.StatusBadRequest, "seed vertex"},
		{"source-out-of-range", func(r *distverify.RangeRequest) { r.Plan.Source = cube.Order() + 1 }, http.StatusBadRequest, "source"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := f.inlineRequest()
			tc.mutate(req)
			resp, body := postRange(t, ts.URL, req)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, body)
			}
			if msg := decodeError(t, body); !strings.Contains(msg, tc.substr) {
				t.Fatalf("error %q does not mention %q", msg, tc.substr)
			}
		})
	}

	// A dimension past the served bound is refused up front.
	big := newRangeFixture(t, 2, 12, 0, 1, 4)
	resp, body = postRange(t, ts.URL, big.inlineRequest())
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized cube: status %d: %s", resp.StatusCode, body)
	}
	if msg := decodeError(t, body); !strings.Contains(msg, "exceeds the served maximum") {
		t.Fatalf("oversized cube error: %q", msg)
	}

	// Corrupted span bytes that still match their claimed CRC must fail
	// the decode with a 400, not yield a Result over garbage.
	cf := newRangeFixture(t, 2, 9, 1, 2, 6)
	cf.span[0] ^= 0xff
	req := cf.inlineRequest()
	req.SpanCRC = crc32.ChecksumIEEE(cf.span)
	resp, body = postRange(t, ts.URL, req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt span: status %d: %s", resp.StatusCode, body)
	}
	if msg := decodeError(t, body); !strings.Contains(msg, "range decode") {
		t.Fatalf("corrupt span error: %q", msg)
	}

	// A non-JSON body is a 400 with the envelope.
	resp, body = post(t, ts.URL+"/v1/ranges/verify", "application/json", []byte("{"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d: %s", resp.StatusCode, body)
	}
	decodeError(t, body)
}
