package planserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"sparsehypercube"
	"sparsehypercube/internal/linecomm"
)

func newTestServer(t *testing.T, opts ...Option) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(opts...).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, url, contentType string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decodeReport(t *testing.T, data []byte) sparsehypercube.Report {
	t.Helper()
	var rep sparsehypercube.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("decoding report %q: %v", data, err)
	}
	return rep
}

func decodeError(t *testing.T, data []byte) string {
	t.Helper()
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("error envelope not JSON: %q: %v", data, err)
	}
	if e.Error == "" {
		t.Fatalf("error envelope empty: %q", data)
	}
	return e.Error
}

// TestOneShotVerifyMatchesDirect is the end-to-end service acceptance:
// a gossip plan written with WriteTo, POSTed to the service, must come
// back with a Report DeepEqual to in-process plan.Verify().
func TestOneShotVerifyMatchesDirect(t *testing.T) {
	cube, err := sparsehypercube.New(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	plan := cube.Plan(sparsehypercube.GossipScheme{Root: 3})
	direct := plan.Verify()
	if !direct.Valid || !direct.Complete {
		t.Fatalf("baseline gossip report broken: %+v", direct)
	}
	var buf bytes.Buffer
	if _, err := plan.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/verify", "application/octet-stream", buf.Bytes())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := decodeReport(t, body); !reflect.DeepEqual(got, direct) {
		t.Fatalf("served report diverges:\ngot  %+v\nwant %+v", got, direct)
	}
}

// TestOneShotVerifyCorrupted: a corrupted upload yields a structured
// error (or a structured invalid Report for post-header corruption) —
// never a 500.
func TestOneShotVerifyCorrupted(t *testing.T) {
	cube, err := sparsehypercube.New(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := cube.Plan(sparsehypercube.BroadcastScheme{Source: 0}).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t)

	// Corrupt header: structured 400.
	bad := append([]byte(nil), buf.Bytes()...)
	bad[0] ^= 0xff
	resp, body := post(t, ts.URL+"/v1/verify", "application/octet-stream", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt magic: status %d: %s", resp.StatusCode, body)
	}
	if msg := decodeError(t, body); !strings.Contains(msg, "invalid plan") {
		t.Fatalf("corrupt magic error: %q", msg)
	}

	// Corrupt body: the decode failure folds into the Report as a replay
	// violation — a definitive verification answer, still not a 500.
	bad = append([]byte(nil), buf.Bytes()...)
	bad[len(bad)/2] ^= 0x01
	resp, body = post(t, ts.URL+"/v1/verify", "application/octet-stream", bad)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("corrupt body: status %d: %s", resp.StatusCode, body)
	}
	rep := decodeReport(t, body)
	if rep.Valid {
		t.Fatalf("corrupt body verified: %+v", rep)
	}
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v, "replay:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("corrupt body report lacks replay violation: %+v", rep)
	}

	// Truly empty body: structured 400.
	resp, body = post(t, ts.URL+"/v1/verify", "application/octet-stream", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty body: status %d: %s", resp.StatusCode, body)
	}
	decodeError(t, body)
}

// TestCachedPlanConcurrentVerify is the serving acceptance criterion:
// 64 concurrent verification sessions over one cached plan file, every
// response byte-identical, every Report DeepEqual to in-process
// plan.Verify().
func TestCachedPlanConcurrentVerify(t *testing.T) {
	cube, err := sparsehypercube.New(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	plan := cube.Plan(sparsehypercube.BroadcastScheme{Source: 5})
	direct := plan.Verify()
	var buf bytes.Buffer
	if _, err := plan.WriteIndexedTo(&buf); err != nil {
		t.Fatal(err)
	}

	ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/plans", "application/octet-stream", buf.Bytes())
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d: %s", resp.StatusCode, body)
	}
	var info PlanInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Scheme != "broadcast" || info.Source != 5 || info.Rounds != 10 || !info.Indexed {
		t.Fatalf("plan info: %+v", info)
	}

	// Re-uploading the same bytes dedupes onto the same cached entry.
	resp, body = post(t, ts.URL+"/v1/plans", "application/octet-stream", buf.Bytes())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-upload status %d: %s", resp.StatusCode, body)
	}
	var again PlanInfo
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if again.ID != info.ID {
		t.Fatalf("re-upload changed id: %s != %s", again.ID, info.ID)
	}

	const verifiers = 64
	bodies := make([][]byte, verifiers)
	var wg sync.WaitGroup
	errs := make(chan error, verifiers)
	url := ts.URL + "/v1/plans/" + info.ID + "/verify"
	for g := 0; g < verifiers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			resp, err := http.Post(url, "application/json", nil)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			data, err := io.ReadAll(resp.Body)
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("verifier %d: status %d: %s", g, resp.StatusCode, data)
				return
			}
			bodies[g] = data
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for g := 1; g < verifiers; g++ {
		if !bytes.Equal(bodies[g], bodies[0]) {
			t.Fatalf("verifier %d response differs from verifier 0:\n%s\n%s", g, bodies[g], bodies[0])
		}
	}
	if got := decodeReport(t, bodies[0]); !reflect.DeepEqual(got, direct) {
		t.Fatalf("served report diverges from direct Verify:\ngot  %+v\nwant %+v", got, direct)
	}

	// Metadata round-trips; deleting frees the id; verify then 404s.
	resp, body = post(t, ts.URL+"/v1/plans/nonesuch/verify", "application/json", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown plan verify status %d: %s", resp.StatusCode, body)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/plans/"+info.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", dresp.StatusCode)
	}
	resp, body = post(t, url, "application/json", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("verify-after-delete status %d: %s", resp.StatusCode, body)
	}
}

// TestCachedPlanUploadCorrupted: upload validation happens once, at
// upload time, with a structured error.
func TestCachedPlanUploadCorrupted(t *testing.T) {
	cube, err := sparsehypercube.New(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := cube.Plan(sparsehypercube.BroadcastScheme{Source: 0}).WriteIndexedTo(&buf); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), buf.Bytes()...)
	bad[len(bad)/3] ^= 0x10

	ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/plans", "application/octet-stream", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if msg := decodeError(t, body); !strings.Contains(msg, "invalid plan") {
		t.Fatalf("error: %q", msg)
	}
}

// TestUploadTooLarge: the size cap answers with 413 and the envelope —
// on the cache endpoint, and on one-shot verify even when the limit
// trips mid-stream after a well-formed header (a size-policy failure
// must never come back as a definitive valid:false Report).
func TestUploadTooLarge(t *testing.T) {
	ts := newTestServer(t, WithMaxUpload(64))
	resp, body := post(t, ts.URL+"/v1/plans", "application/octet-stream", make([]byte, 65))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	decodeError(t, body)

	cube, err := sparsehypercube.New(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := cube.Plan(sparsehypercube.BroadcastScheme{Source: 0}).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() <= 64 {
		t.Fatalf("test plan too small to trip the cap: %d bytes", buf.Len())
	}
	resp, body = post(t, ts.URL+"/v1/verify", "application/octet-stream", buf.Bytes())
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("one-shot over-limit status %d: %s", resp.StatusCode, body)
	}
	decodeError(t, body)
}

// TestServedBounds pins the resource bounds: a tiny upload naming a
// cube past the dimension bound is refused on every entry point (the
// validator's state scales with declared order, not upload size), and
// opens past the session cap answer 429.
func TestServedBounds(t *testing.T) {
	ts := newTestServer(t, WithMaxN(10), WithMaxSessions(2))

	cube, err := sparsehypercube.New(2, 12)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := cube.Plan(sparsehypercube.BroadcastScheme{Source: 0}).WriteIndexedTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, ep := range []string{"/v1/verify", "/v1/plans"} {
		resp, body := post(t, ts.URL+ep, "application/octet-stream", buf.Bytes())
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s with n=12 under MaxN=10: status %d: %s", ep, resp.StatusCode, body)
		}
		if msg := decodeError(t, body); !strings.Contains(msg, "exceeds the served maximum") {
			t.Fatalf("%s error: %q", ep, msg)
		}
	}
	resp, body := post(t, ts.URL+"/v1/sessions", "application/json", []byte(`{"k":2,"n":12}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("session n=12 under MaxN=10: status %d: %s", resp.StatusCode, body)
	}
	decodeError(t, body)

	// Session cap: the third concurrent open is refused, and closing one
	// frees the slot.
	var ids []string
	for i := 0; i < 2; i++ {
		resp, body := post(t, ts.URL+"/v1/sessions", "application/json", []byte(`{"k":2,"n":8}`))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("open %d: status %d: %s", i, resp.StatusCode, body)
		}
		var sr sessionResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, sr.ID)
	}
	resp, body = post(t, ts.URL+"/v1/sessions", "application/json", []byte(`{"k":2,"n":8}`))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap open: status %d: %s", resp.StatusCode, body)
	}
	decodeError(t, body)
	resp, _ = post(t, ts.URL+"/v1/sessions/"+ids[0]+"/close", "application/json", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("close: status %d", resp.StatusCode)
	}
	resp, body = post(t, ts.URL+"/v1/sessions", "application/json", []byte(`{"k":2,"n":8}`))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open after close: status %d: %s", resp.StatusCode, body)
	}
	var sr sessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{ids[1], sr.ID} {
		post(t, ts.URL+"/v1/sessions/"+id+"/close", "application/json", nil)
	}
}

// streamSessionRounds POSTs a materialised schedule's rounds to a
// session in batches of batchSize.
func streamSessionRounds(t *testing.T, url string, sched *sparsehypercube.Schedule, batchSize int) {
	t.Helper()
	for lo := 0; lo < len(sched.Rounds); lo += batchSize {
		hi := min(lo+batchSize, len(sched.Rounds))
		batch := make([]linecomm.Round, 0, hi-lo)
		for _, round := range sched.Rounds[lo:hi] {
			r := make(linecomm.Round, len(round))
			for i, c := range round {
				r[i] = linecomm.Call{Path: c.Path}
			}
			batch = append(batch, r)
		}
		var buf bytes.Buffer
		if err := linecomm.WriteRoundBatch(&buf, batch); err != nil {
			t.Fatal(err)
		}
		resp, body := post(t, url, "application/json", buf.Bytes())
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("rounds status %d: %s", resp.StatusCode, body)
		}
	}
}

// TestSessionRoundTrip: an incremental session fed round batches closes
// to the same Report the equivalent whole-plan verification produces —
// for the broadcast model and the gossip model.
func TestSessionRoundTrip(t *testing.T) {
	ts := newTestServer(t)
	for _, tc := range []struct {
		name   string
		scheme string
		open   string
	}{
		{"broadcast", "broadcast", `{"k":2,"n":9,"scheme":"broadcast","source":3}`},
		{"gossip", "gossip", `{"k":2,"n":9,"scheme":"gossip","source":3}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cube, err := sparsehypercube.New(2, 9)
			if err != nil {
				t.Fatal(err)
			}
			var direct sparsehypercube.Report
			var sched *sparsehypercube.Schedule
			if tc.scheme == "gossip" {
				plan := cube.Plan(sparsehypercube.GossipScheme{Root: 3})
				direct = plan.Verify()
				sched = plan.Materialize()
			} else {
				plan := cube.Plan(sparsehypercube.BroadcastScheme{Source: 3})
				direct = plan.Verify()
				sched = plan.Materialize()
			}

			resp, body := post(t, ts.URL+"/v1/sessions", "application/json", []byte(tc.open))
			if resp.StatusCode != http.StatusCreated {
				t.Fatalf("open status %d: %s", resp.StatusCode, body)
			}
			var sr sessionResponse
			if err := json.Unmarshal(body, &sr); err != nil {
				t.Fatal(err)
			}

			streamSessionRounds(t, ts.URL+"/v1/sessions/"+sr.ID+"/rounds", sched, 3)

			resp, body = post(t, ts.URL+"/v1/sessions/"+sr.ID+"/close", "application/json", nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("close status %d: %s", resp.StatusCode, body)
			}
			if got := decodeReport(t, body); !reflect.DeepEqual(got, direct) {
				t.Fatalf("session report diverges:\ngot  %+v\nwant %+v", got, direct)
			}

			// The session is gone once closed.
			resp, body = post(t, ts.URL+"/v1/sessions/"+sr.ID+"/close", "application/json", nil)
			if resp.StatusCode != http.StatusNotFound {
				t.Fatalf("re-close status %d: %s", resp.StatusCode, body)
			}
		})
	}
}

// TestSessionErrors: malformed opens, batches, and targets all answer
// with structured 4xx envelopes.
func TestSessionErrors(t *testing.T) {
	ts := newTestServer(t)

	resp, body := post(t, ts.URL+"/v1/sessions", "application/json", []byte(`{"k":0,"n":-3}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad cube status %d: %s", resp.StatusCode, body)
	}
	decodeError(t, body)

	resp, body = post(t, ts.URL+"/v1/sessions", "application/json", []byte(`{not json`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json status %d: %s", resp.StatusCode, body)
	}
	decodeError(t, body)

	resp, body = post(t, ts.URL+"/v1/sessions/nonesuch/rounds", "application/json", []byte(`{"rounds":[]}`))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session status %d: %s", resp.StatusCode, body)
	}
	decodeError(t, body)

	resp, body = post(t, ts.URL+"/v1/sessions", "application/json", []byte(`{"k":2,"n":8}`))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open status %d: %s", resp.StatusCode, body)
	}
	var sr sessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	// A single-vertex path is structurally invalid at the envelope.
	resp, body = post(t, ts.URL+"/v1/sessions/"+sr.ID+"/rounds", "application/json",
		[]byte(`{"rounds":[[[5]]]}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad batch status %d: %s", resp.StatusCode, body)
	}
	decodeError(t, body)
	// The session survives a rejected batch and still closes cleanly.
	resp, body = post(t, ts.URL+"/v1/sessions/"+sr.ID+"/close", "application/json", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("close status %d: %s", resp.StatusCode, body)
	}
	// An empty stream carries no violations but cannot be complete.
	rep := decodeReport(t, body)
	if rep.Complete || rep.Rounds != 0 {
		t.Fatalf("empty broadcast session reported complete: %+v", rep)
	}
}
