package planserver

import (
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// metrics is the server's operational surface, exported in Prometheus
// text format by GET /metrics. Everything is an atomic so the hot
// paths record without taking any lock; the two gauges that live
// behind s.mu (plans cached, cached bytes) are snapshotted under it
// and rendered after release.
type metrics struct {
	plansSpilled     atomic.Int64 // uploads that landed on disk
	plansEvicted     atomic.Int64 // cache entries dropped by the LRU budgets
	plansReloaded    atomic.Int64 // spill files re-indexed at startup
	plansQuarantined atomic.Int64 // spill files skipped at startup as unusable
	sessionsOpened   atomic.Int64
	sessionsReaped   atomic.Int64 // idle sessions closed by the TTL reaper
	sessionsDrained  atomic.Int64 // sessions force-closed by Drain
	bytesMapped      atomic.Int64 // live mmap bytes across all served plans

	verify latencyHistogram
}

// verifyBuckets are the verify-latency histogram's upper bounds in
// seconds. Verifications span sub-millisecond toy cubes to multi-second
// million-vertex plans, so the buckets are a coarse log scale.
var verifyBuckets = [...]float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// latencyHistogram is a fixed-bucket Prometheus histogram: cumulative
// rendering happens at scrape time, observation is two atomic adds.
type latencyHistogram struct {
	counts  [len(verifyBuckets) + 1]atomic.Int64 // +1 for +Inf
	sumNs   atomic.Int64
	samples atomic.Int64
}

func (h *latencyHistogram) observe(d time.Duration) {
	sec := d.Seconds()
	i := 0
	for i < len(verifyBuckets) && sec > verifyBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNs.Add(int64(d))
	h.samples.Add(1)
}

// observeVerify records one verification's wall-clock latency.
func (s *Server) observeVerify(start time.Time) {
	s.metrics.verify.observe(time.Since(start))
}

// handleHealthz answers liveness probes: 200 while serving, 503 once
// draining so a load balancer pulls the instance before shutdown.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		//lint:allow errenvelope a draining instance really is unavailable server-side; 503 is the health-check contract, and the body still carries the structured envelope shape
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics renders the Prometheus text exposition. The two
// registry-backed gauges are snapshotted under s.mu first; the
// response is written with no lock held.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	cached := len(s.plans)
	cachedBytes := s.planBytes
	s.mu.Unlock()

	m := &s.metrics
	var b strings.Builder
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("planserver_plans_cached", "Plans currently in the serving cache.", int64(cached))
	gauge("planserver_plans_cached_bytes", "Total bytes of plans currently cached.", cachedBytes)
	counter("planserver_plans_spilled_total", "Validated uploads spilled to disk.", m.plansSpilled.Load())
	counter("planserver_plans_evicted_total", "Cache entries evicted by the LRU budgets.", m.plansEvicted.Load())
	counter("planserver_plans_reloaded_total", "Spill files re-indexed at startup.", m.plansReloaded.Load())
	counter("planserver_plans_quarantined_total", "Spill files skipped at startup as truncated, foreign, or unreadable.", m.plansQuarantined.Load())
	gauge("planserver_sessions_open", "Incremental sessions currently open.", s.sessions.open.Load())
	counter("planserver_sessions_opened_total", "Incremental sessions opened.", m.sessionsOpened.Load())
	counter("planserver_sessions_reaped_total", "Idle sessions closed by the TTL reaper.", m.sessionsReaped.Load())
	counter("planserver_sessions_drained_total", "Sessions force-closed by graceful drain.", m.sessionsDrained.Load())
	gauge("planserver_bytes_mapped", "Bytes of live plan memory mappings.", m.bytesMapped.Load())

	fmt.Fprintf(&b, "# HELP planserver_verify_seconds Wall-clock latency of one verification.\n# TYPE planserver_verify_seconds histogram\n")
	cum := int64(0)
	for i, ub := range verifyBuckets {
		cum += m.verify.counts[i].Load()
		fmt.Fprintf(&b, "planserver_verify_seconds_bucket{le=%q} %d\n", trimFloat(ub), cum)
	}
	cum += m.verify.counts[len(verifyBuckets)].Load()
	fmt.Fprintf(&b, "planserver_verify_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(&b, "planserver_verify_seconds_sum %g\n", float64(m.verify.sumNs.Load())/1e9)
	fmt.Fprintf(&b, "planserver_verify_seconds_count %d\n", m.verify.samples.Load())

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, b.String())
}

// trimFloat renders a bucket bound the way Prometheus expects:
// shortest decimal form, no exponent for these magnitudes.
func trimFloat(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", f), "0"), ".")
}
