package planserver

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"

	"sparsehypercube"
	"sparsehypercube/internal/linecomm"
)

// churnPlan is one member of the soak test's plan pool: the encoded
// indexed plan, its content-hash id, the in-process reference Report,
// and a materialised schedule for session streaming.
type churnPlan struct {
	id     string
	source uint64
	data   []byte
	report sparsehypercube.Report
	sched  *sparsehypercube.Schedule
}

func buildChurnPool(t *testing.T, n int, sources []uint64) []*churnPlan {
	t.Helper()
	cube, err := sparsehypercube.New(2, n)
	if err != nil {
		t.Fatal(err)
	}
	pool := make([]*churnPlan, 0, len(sources))
	for _, src := range sources {
		plan := cube.Plan(sparsehypercube.BroadcastScheme{Source: src})
		var buf bytes.Buffer
		if _, err := plan.WriteIndexedTo(&buf); err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(buf.Bytes())
		pool = append(pool, &churnPlan{
			id:     hex.EncodeToString(sum[:]),
			source: src,
			data:   buf.Bytes(),
			report: plan.Verify(),
			sched:  plan.Materialize(),
		})
	}
	return pool
}

// soakIters returns the per-worker iteration count: quick by default,
// scaled up in CI's dedicated soak step via SPARSECUBE_SOAK_ITERS.
func soakIters(t *testing.T, def int) int {
	if v := os.Getenv("SPARSECUBE_SOAK_ITERS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad SPARSECUBE_SOAK_ITERS %q", v)
		}
		return n
	}
	return def
}

// TestChurnSoak is the lifecycle-hardening headline: N goroutines
// upload, verify, delete, and session-stream a pool of plans against a
// spill-mode server whose cache budget is small enough that eviction
// never stops, for (scaled) thousands of operations under -race. Every
// verification Report must stay byte-identical to the in-process
// reference, refcounts must settle back to exactly the cache's own,
// and the server must drain cleanly at the end.
func TestChurnSoak(t *testing.T) {
	const workers = 8
	iters := soakIters(t, 120)
	pool := buildChurnPool(t, 7, []uint64{0, 1, 2, 3, 4, 5})
	planBytes := int64(len(pool[0].data))

	dir := t.TempDir()
	s := New(WithSpillDir(dir),
		WithMaxPlans(2),               // six plans churning through two slots
		WithMaxPlanBytes(3*planBytes), // and a byte budget in the same regime
		WithSessionTTL(time.Minute),   // reaper runs but must never fire mid-soak
	)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// canonical[i] pins the first verify response body seen for pool[i]:
	// every later response for the same plan must be byte-identical.
	var (
		canonMu   sync.Mutex
		canonical = make([][]byte, len(pool))
	)
	checkReportBody := func(i int, body []byte) error {
		var rep sparsehypercube.Report
		if err := json.Unmarshal(body, &rep); err != nil {
			return fmt.Errorf("report not JSON: %q: %v", body, err)
		}
		if !reflect.DeepEqual(rep, pool[i].report) {
			return fmt.Errorf("plan %d report diverged from reference:\ngot  %+v\nwant %+v", i, rep, pool[i].report)
		}
		canonMu.Lock()
		defer canonMu.Unlock()
		if canonical[i] == nil {
			canonical[i] = append([]byte(nil), body...)
		} else if !bytes.Equal(canonical[i], body) {
			return fmt.Errorf("plan %d response bytes diverged mid-soak", i)
		}
		return nil
	}

	do := func(method, url string, body []byte) (int, []byte, error) {
		req, err := http.NewRequest(method, url, bytes.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0, nil, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, data, err
	}

	worker := func(seed int64) error {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < iters; i++ {
			pi := rng.Intn(len(pool))
			p := pool[pi]
			switch rng.Intn(10) {
			case 0, 1: // delete: races other workers' verifies and uploads
				st, body, err := do(http.MethodDelete, ts.URL+"/v1/plans/"+p.id, nil)
				if err != nil {
					return err
				}
				if st != http.StatusNoContent && st != http.StatusNotFound {
					return fmt.Errorf("delete status %d: %s", st, body)
				}
			case 2: // incremental session over the same cube
				if err := churnSession(ts.URL, p, rng, checkReportBody, pi); err != nil {
					return err
				}
			default: // upload + verify; evictions and deletes surface as 404
				if err := churnVerify(ts.URL, p, do, checkReportBody, pi); err != nil {
					return err
				}
			}
		}
		return nil
	}

	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			errs <- worker(seed)
		}(int64(w + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// The budgets were genuinely undersized: churn must have evicted.
	if n := s.metrics.plansEvicted.Load(); n == 0 {
		t.Error("soak finished without a single eviction — the cache budget did not bite")
	}

	// Quiescent state: every surviving cache entry holds exactly the
	// cache's own reference (no stuck refcounts), nothing mid-spill.
	s.mu.Lock()
	for id, sp := range s.plans {
		if r := sp.refs.Load(); r != 1 {
			t.Errorf("plan %s refcount stuck at %d after soak (want 1)", id[:12], r)
		}
	}
	if len(s.spilling) != 0 {
		t.Errorf("spilling map not drained: %v", s.spilling)
	}
	if s.lru.Len() != len(s.plans) {
		t.Errorf("LRU/map desync: %d list entries, %d map entries", s.lru.Len(), len(s.plans))
	}
	s.mu.Unlock()

	// The server must be fully drainable, and refuse new work after.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n := s.sessions.open.Load(); n != 0 {
		t.Fatalf("%d sessions still open after drain", n)
	}
	st, body, err := do(http.MethodPost, ts.URL+"/v1/plans", pool[0].data)
	if err != nil {
		t.Fatal(err)
	}
	if st != http.StatusServiceUnavailable {
		t.Fatalf("post-drain upload status %d: %s", st, body)
	}
	st, body, err = do(http.MethodPost, ts.URL+"/v1/sessions", []byte(`{"k":2,"n":7}`))
	if err != nil {
		t.Fatal(err)
	}
	if st != http.StatusServiceUnavailable {
		t.Fatalf("post-drain session open status %d: %s", st, body)
	}
}

// churnVerify uploads (idempotent by content address) and verifies one
// plan, tolerating the 404s a concurrent DELETE or eviction injects by
// re-uploading and retrying.
func churnVerify(base string, p *churnPlan, do func(string, string, []byte) (int, []byte, error), check func(int, []byte) error, pi int) error {
	for attempt := 0; attempt < 25; attempt++ {
		st, body, err := do(http.MethodPost, base+"/v1/plans", p.data)
		if err != nil {
			return err
		}
		if st != http.StatusCreated && st != http.StatusOK {
			return fmt.Errorf("upload status %d: %s", st, body)
		}
		st, body, err = do(http.MethodPost, base+"/v1/plans/"+p.id+"/verify", nil)
		if err != nil {
			return err
		}
		switch st {
		case http.StatusOK:
			return check(pi, body)
		case http.StatusNotFound:
			continue // deleted or evicted between upload and verify
		default:
			return fmt.Errorf("verify status %d: %s", st, body)
		}
	}
	return fmt.Errorf("plan %d: verify still 404 after 25 upload+verify attempts", pi)
}

// churnSession opens an incremental session, streams the plan's rounds
// in randomly sized batches, and checks the close Report.
func churnSession(base string, p *churnPlan, rng *rand.Rand, check func(int, []byte) error, pi int) error {
	open := fmt.Sprintf(`{"k":2,"n":7,"scheme":"broadcast","source":%d}`, p.source)
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader([]byte(open)))
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		return nil // cap hit under churn: a clean refusal, not a failure
	}
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("session open status %d: %s", resp.StatusCode, body)
	}
	var sr sessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		return err
	}
	batch := 1 + rng.Intn(4)
	if err := postScheduleRounds(base+"/v1/sessions/"+sr.ID+"/rounds", p.sched, batch); err != nil {
		return err
	}
	resp, err = http.Post(base+"/v1/sessions/"+sr.ID+"/close", "application/json", nil)
	if err != nil {
		return err
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("session close status %d: %s", resp.StatusCode, body)
	}
	return check(pi, body)
}

// postScheduleRounds is streamSessionRounds for worker goroutines: it
// returns errors instead of calling t.Fatal, which must not run off
// the test goroutine.
func postScheduleRounds(url string, sched *sparsehypercube.Schedule, batchSize int) error {
	for lo := 0; lo < len(sched.Rounds); lo += batchSize {
		hi := min(lo+batchSize, len(sched.Rounds))
		batch := make([]linecomm.Round, 0, hi-lo)
		for _, round := range sched.Rounds[lo:hi] {
			r := make(linecomm.Round, len(round))
			for i, c := range round {
				r[i] = linecomm.Call{Path: c.Path}
			}
			batch = append(batch, r)
		}
		var buf bytes.Buffer
		if err := linecomm.WriteRoundBatch(&buf, batch); err != nil {
			return err
		}
		resp, err := http.Post(url, "application/json", &buf)
		if err != nil {
			return err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("rounds status %d: %s", resp.StatusCode, body)
		}
	}
	return nil
}
