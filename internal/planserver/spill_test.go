package planserver

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"sparsehypercube"
)

// spillUpload uploads an indexed broadcast plan to a spill-mode server
// and returns the info envelope, the plan bytes, and the in-process
// reference Report.
func spillUpload(t *testing.T, ts string) (PlanInfo, []byte, sparsehypercube.Report) {
	t.Helper()
	cube, err := sparsehypercube.New(2, 9)
	if err != nil {
		t.Fatal(err)
	}
	plan := cube.Plan(sparsehypercube.BroadcastScheme{Source: 3})
	var buf bytes.Buffer
	if _, err := plan.WriteIndexedTo(&buf); err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, ts+"/v1/plans", "application/octet-stream", buf.Bytes())
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d: %s", resp.StatusCode, body)
	}
	var info PlanInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	return info, buf.Bytes(), plan.Verify()
}

// TestSpillServesFromDisk: in spill mode an upload lands on disk, is
// reported as spilled, and verifies off the mapped file with a Report
// DeepEqual to in-process verification.
func TestSpillServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	ts := newTestServer(t, WithSpillDir(dir))
	info, data, want := spillUpload(t, ts.URL)
	if !info.Spilled {
		t.Fatalf("upload not spilled: %+v", info)
	}
	path := filepath.Join(dir, info.ID+".shcp")
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("spill file missing: %v", err)
	}
	if !bytes.Equal(onDisk, data) {
		t.Fatal("spill file bytes diverge from the upload")
	}
	resp, body := post(t, ts.URL+"/v1/plans/"+info.ID+"/verify", "application/json", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify status %d: %s", resp.StatusCode, body)
	}
	if got := decodeReport(t, body); !reflect.DeepEqual(got, want) {
		t.Fatalf("spilled verify diverges:\ngot  %+v\nwant %+v", got, want)
	}

	// Re-upload dedupes against the cached entry, 200 not 201.
	resp, body = post(t, ts.URL+"/v1/plans", "application/octet-stream", data)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-upload status %d: %s", resp.StatusCode, body)
	}

	// DELETE removes the spill file.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/plans/"+info.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", dresp.StatusCode)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("spill file survives delete: %v", err)
	}
}

// TestSpillDeleteDuringVerify races concurrent verifiers against a
// DELETE of the mapped plan: every verifier must get either a correct
// Report or a clean 404, never torn bytes or a crash — the refcount
// keeps the mapping alive until the last reader finishes.
func TestSpillDeleteDuringVerify(t *testing.T) {
	dir := t.TempDir()
	ts := newTestServer(t, WithSpillDir(dir))
	info, _, want := spillUpload(t, ts.URL)

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		// Plain client code, t.Errorf only: t.Fatal (which the post/
		// decodeReport helpers use) must not run off the test goroutine.
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/plans/"+info.ID+"/verify", "application/json", nil)
			if err != nil {
				t.Errorf("verify request: %v", err)
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Errorf("reading verify response: %v", err)
				return
			}
			switch resp.StatusCode {
			case http.StatusOK:
				var got sparsehypercube.Report
				if err := json.Unmarshal(body, &got); err != nil {
					t.Errorf("report not JSON: %q: %v", body, err)
				} else if !reflect.DeepEqual(got, want) {
					t.Errorf("report diverged under delete race: %+v", got)
				}
			case http.StatusNotFound:
				// Deleted first: fine.
			default:
				t.Errorf("status %d: %s", resp.StatusCode, body)
			}
		}()
		if i == 8 {
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/plans/"+info.ID, nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
	}
	wg.Wait()
}

// TestSpillDeleteSkipsInflightReupload pins the DELETE/re-upload race
// criterion: while a spill of the same id is in flight, DELETE must
// leave the content-addressed file alone (the re-upload writes those
// exact bytes), and the last retiring spill sweeps it if no cache
// entry claims it.
func TestSpillDeleteSkipsInflightReupload(t *testing.T) {
	dir := t.TempDir()
	s := New(WithSpillDir(dir))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	info, _, _ := spillUpload(t, ts.URL)
	path := filepath.Join(dir, info.ID+".shcp")

	// Simulate a concurrent re-upload mid-spill.
	s.mu.Lock()
	s.spilling[info.ID]++
	s.mu.Unlock()

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/plans/"+info.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("spill file removed despite in-flight re-upload: %v", err)
	}

	// The in-flight upload retires without inserting (say it failed):
	// the sweep must reclaim the now-unowned file.
	s.mu.Lock()
	s.finishSpillLocked(info.ID)
	s.mu.Unlock()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("unowned spill file not swept: %v", err)
	}
}

// TestSpillSweepWhenWinnerDegraded pins the insert-race criterion: a
// loser that spilled while the winner serves from memory must not
// orphan its file — the retire sweep removes it because the cache
// entry owns no path.
func TestSpillSweepWhenWinnerDegraded(t *testing.T) {
	dir := t.TempDir()
	s := New(WithSpillDir(dir))
	const id = "deadbeef"
	path := filepath.Join(dir, id+".shcp")
	if err := os.WriteFile(path, []byte("spilled by the race loser"), 0o600); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.plans[id] = &servedPlan{info: PlanInfo{ID: id}} // winner, in-memory
	s.spilling[id] = 1                                // the loser, about to retire
	s.finishSpillLocked(id)
	s.mu.Unlock()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("loser's spill file not swept under a memory-only winner: %v", err)
	}
	if len(s.spilling) != 0 {
		t.Fatalf("spilling map not drained: %v", s.spilling)
	}
}

// TestSpillDegradesToMemory: an unusable spill directory must not fail
// uploads — the plan serves from memory, unspilled.
func TestSpillDegradesToMemory(t *testing.T) {
	blocked := filepath.Join(t.TempDir(), "file-not-dir")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, WithSpillDir(filepath.Join(blocked, "sub")))
	info, _, want := spillUpload(t, ts.URL)
	if info.Spilled {
		t.Fatalf("upload claims spilled into an unusable dir: %+v", info)
	}
	resp, body := post(t, ts.URL+"/v1/plans/"+info.ID+"/verify", "application/json", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify status %d: %s", resp.StatusCode, body)
	}
	if got := decodeReport(t, body); !reflect.DeepEqual(got, want) {
		t.Fatalf("degraded verify diverges: %+v", got)
	}
}
