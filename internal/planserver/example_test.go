package planserver_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	"sparsehypercube"
	"sparsehypercube/internal/planserver"
)

// The service's two verification shapes end to end: the one-shot
// POST /v1/verify (stream in, Report out, nothing retained) and the
// write-once/verify-many pair POST /v1/plans + POST /v1/plans/{id}/verify
// (upload validated and cached once, then any number of verifiers
// replay the one copy).
func ExampleServer_Handler() {
	ts := httptest.NewServer(planserver.New().Handler())
	defer ts.Close()

	cube, err := sparsehypercube.New(2, 8)
	if err != nil {
		panic(err)
	}
	var plan bytes.Buffer
	if _, err := cube.Plan(sparsehypercube.BroadcastScheme{Source: 3}).WriteIndexedTo(&plan); err != nil {
		panic(err)
	}

	// One-shot: the body is a schedio plan file, the answer its Report.
	resp, err := http.Post(ts.URL+"/v1/verify", "application/octet-stream", bytes.NewReader(plan.Bytes()))
	if err != nil {
		panic(err)
	}
	var rep sparsehypercube.Report
	json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	fmt.Println("one-shot:", resp.StatusCode, "valid:", rep.Valid)

	// Upload once: cached under its content hash, metadata returned.
	resp, err = http.Post(ts.URL+"/v1/plans", "application/octet-stream", bytes.NewReader(plan.Bytes()))
	if err != nil {
		panic(err)
	}
	var info planserver.PlanInfo
	json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	fmt.Println("upload:", resp.StatusCode, "rounds:", info.Rounds, "indexed:", info.Indexed)

	// Verify many: each request replays the one cached copy.
	resp, err = http.Post(ts.URL+"/v1/plans/"+info.ID+"/verify", "application/json", nil)
	if err != nil {
		panic(err)
	}
	json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	fmt.Println("cached verify:", resp.StatusCode, "minimum time:", rep.MinimumTime)

	// And drop it.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/plans/"+info.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		panic(err)
	}
	resp.Body.Close()
	fmt.Println("delete:", resp.StatusCode)
	// Output:
	// one-shot: 200 valid: true
	// upload: 201 rounds: 8 indexed: true
	// cached verify: 200 minimum time: true
	// delete: 204
}
