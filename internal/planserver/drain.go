package planserver

import (
	"context"
	"net/http"
	"time"
)

// Graceful drain and the idle-session reaper. Drain is the SIGTERM
// half of `sparsecube serve`: the http.Server stops accepting at the
// listener, and this stops the work inside — new uploads, one-shot
// verifies, and session opens answer a structured 503 envelope, every
// open session is force-closed (its validator goroutine drained), and
// the call returns once all in-flight verifications have finished.

// Drain puts the server into draining mode and waits, bounded by ctx,
// for in-flight work to finish. It is idempotent; once it returns nil
// the server holds no running validators and no open sessions.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	for _, sess := range s.sessions.snapshot() {
		if sess.forceClose() {
			s.metrics.sessionsDrained.Add(1)
		}
		s.sessions.remove(sess.id)
	}
	// Every verification holds one verifySem slot while running, so
	// owning all slots means none are left in flight.
	acquired := 0
	for acquired < cap(s.verifySem) {
		select {
		case s.verifySem <- struct{}{}:
			acquired++
		case <-ctx.Done():
			for ; acquired > 0; acquired-- {
				<-s.verifySem
			}
			return ctx.Err()
		}
	}
	for ; acquired > 0; acquired-- {
		<-s.verifySem
	}
	return nil
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// refuseDraining answers an entry point that takes on new work while
// the server is shutting down.
func (s *Server) refuseDraining(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	//lint:allow errenvelope a draining server is genuinely unavailable — this is the one server-side refusal, still wrapped in the structured envelope so clients parse it like any other
	writeError(w, http.StatusServiceUnavailable, "server is draining")
}

// Close stops the background reaper (if any). It does not drain; use
// Drain for that. Safe to call more than once.
func (s *Server) Close() {
	s.stopReaper.Do(func() {
		if s.reaperStop != nil {
			close(s.reaperStop)
			<-s.reaperDone
		}
	})
}

// startReaper launches the idle-session reaper when a TTL is
// configured. The sweep period is a quarter of the TTL, clamped so a
// tiny test TTL doesn't spin and a huge one still notices Close.
func (s *Server) startReaper() {
	if s.sessionTTL <= 0 {
		return
	}
	s.reaperStop = make(chan struct{})
	s.reaperDone = make(chan struct{})
	period := s.sessionTTL / 4
	period = max(period, 10*time.Millisecond)
	period = min(period, time.Minute)
	go s.reapLoop(period)
}

func (s *Server) reapLoop(period time.Duration) {
	defer close(s.reaperDone)
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.reaperStop:
			return
		case <-t.C:
			s.reapIdleSessions()
		}
	}
}

// reapIdleSessions force-closes every session idle past the TTL. A
// session the client is concurrently closing loses the forceClose race
// cleanly (forceClose reports false) and keeps its own removal; one
// the reaper wins answers subsequent appends/closes with the
// structured conflict/not-found envelopes.
func (s *Server) reapIdleSessions() {
	deadline := s.now().Add(-s.sessionTTL).UnixNano()
	for _, sess := range s.sessions.snapshot() {
		if sess.lastActive.Load() > deadline {
			continue
		}
		if sess.forceClose() {
			s.sessions.remove(sess.id)
			s.metrics.sessionsReaped.Add(1)
		}
	}
}
