package schedio

import (
	"errors"
	"fmt"
	"io"
	"os"
)

// Mapping is a read-only random-access view of a plan file: the file's
// bytes memory-mapped where the platform supports it (one page-cache
// copy shared by every reader, and across processes mapping the same
// file), plain positional reads elsewhere. It implements io.ReaderAt —
// the shape OpenPlanAt and ReadPlanAt consume — and is safe for
// concurrent use, so any number of verifiers can replay one mapped
// plan at zero per-reader memory.
//
// Close releases the mapping and closes the underlying file. Reading a
// Mapping whose file is truncated by another process after mapping is
// undefined (the usual mmap caveat); plan files are written once and
// served immutable, which is the intended use.
type Mapping struct {
	f    *os.File
	data []byte // nil on the fallback path
	size int64
}

// forceFallback disables memory mapping so tests exercise the portable
// positional-read path on every platform.
var forceFallback = false

// OpenMapping maps f read-only. The Mapping takes ownership of f (Close
// closes it). Platforms without mmap support — and files that cannot be
// mapped, such as empty ones — fall back transparently to positional
// reads through the same interface; Mapped reports which path is live.
func OpenMapping(f *os.File) (*Mapping, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("schedio: mapping %s: %w", f.Name(), err)
	}
	m := &Mapping{f: f, size: st.Size()}
	if m.size > 0 && m.size == int64(int(m.size)) && !forceFallback {
		if data, err := mapFile(f, m.size); err == nil {
			m.data = data
		}
	}
	return m, nil
}

// ReadAt implements io.ReaderAt.
func (m *Mapping) ReadAt(p []byte, off int64) (int, error) {
	if m.data == nil {
		return m.f.ReadAt(p, off)
	}
	if off < 0 {
		return 0, errors.New("schedio: negative read offset")
	}
	if off >= m.size {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Size returns the mapped file's size in bytes.
func (m *Mapping) Size() int64 { return m.size }

// Mapped reports whether the view is an actual memory mapping (false on
// platforms without mmap and for files that could not be mapped).
func (m *Mapping) Mapped() bool { return m.data != nil }

// Close unmaps the view (when mapped) and closes the underlying file.
func (m *Mapping) Close() error {
	var err error
	if m.data != nil {
		err = unmapFile(m.data)
		m.data = nil
	}
	if cerr := m.f.Close(); err == nil {
		err = cerr
	}
	return err
}
