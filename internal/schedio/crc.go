package schedio

// CRC-32 combination: crc32Combine(crcA, crcB, lenB) computes the CRC
// of the concatenation A||B from the CRCs of A and B alone, so W
// workers can checksum W byte ranges of one plan independently and the
// results still pin the file's single stored footer. The algorithm is
// the classic GF(2) matrix one (zlib's crc32_combine): appending lenB
// zero bytes to A's CRC is a linear operation, represented as a 32x32
// bit matrix raised to the lenB-th power by repeated squaring.

// crcPoly is the reflected IEEE CRC-32 polynomial, matching
// hash/crc32.IEEE in the bit order the running CRC uses.
const crcPoly = 0xedb88320

// gf2Times multiplies the GF(2) matrix mat by the bit vector vec.
func gf2Times(mat *[32]uint32, vec uint32) uint32 {
	var sum uint32
	for i := 0; vec != 0; vec >>= 1 {
		if vec&1 != 0 {
			sum ^= mat[i]
		}
		i++
	}
	return sum
}

// gf2Square sets dst to mat squared.
func gf2Square(dst, mat *[32]uint32) {
	for i := range dst {
		dst[i] = gf2Times(mat, mat[i])
	}
}

// crc32Combine returns the CRC-32 (IEEE) of A||B given crcA = CRC(A),
// crcB = CRC(B) and lenB = len(B).
func crc32Combine(crcA, crcB uint32, lenB int64) uint32 {
	if lenB <= 0 {
		return crcA ^ crcB
	}
	var even, odd [32]uint32
	// odd is the operator for one zero *bit* appended: a right shift
	// folding through the polynomial.
	odd[0] = crcPoly
	row := uint32(1)
	for i := 1; i < 32; i++ {
		odd[i] = row
		row <<= 1
	}
	gf2Square(&even, &odd) // even: two zero bits
	gf2Square(&odd, &even) // odd: four zero bits
	// The first squaring inside the loop makes even the one-zero-byte
	// operator; each further squaring doubles the byte count, so the
	// operator applied at bit k of lenB appends 1<<k zero bytes.
	for {
		gf2Square(&even, &odd)
		if lenB&1 != 0 {
			crcA = gf2Times(&even, crcA)
		}
		lenB >>= 1
		if lenB == 0 {
			break
		}
		gf2Square(&odd, &even)
		if lenB&1 != 0 {
			crcA = gf2Times(&odd, crcA)
		}
		lenB >>= 1
		if lenB == 0 {
			break
		}
	}
	return crcA ^ crcB
}
