//go:build !(darwin || dragonfly || freebsd || linux || netbsd || openbsd || solaris)

package schedio

import (
	"errors"
	"os"
)

// mapFile on platforms without syscall.Mmap: always refuse, so every
// Mapping runs the positional-read fallback. Functionality (and the
// Reports it produces) is identical; only the zero-copy sharing is
// lost.
func mapFile(*os.File, int64) ([]byte, error) {
	return nil, errors.ErrUnsupported
}

// unmapFile is never reached on fallback-only platforms (no mapFile
// success to undo), but must exist for the portable Close path.
func unmapFile([]byte) error {
	return nil
}
