package schedio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"sparsehypercube/internal/linecomm"
)

// PlanAt is a random-access view of one plan file through an io.ReaderAt
// — the serving form of the codec. Opening reads only the fixed-size
// index trailer (when present) and the header; rounds decode on demand.
//
// A PlanAt is safe for concurrent use as long as the underlying ReaderAt
// is (bytes.Reader and os.File both are): every NewDecoder and Round
// call works on its own io.SectionReader and its own scratch, so many
// verifiers can replay one shared copy of a served plan file — an mmap'd
// file shares a single page-cache copy across processes, an in-memory
// upload a single byte slice across sessions.
type PlanAt struct {
	r        io.ReaderAt
	size     int64 // whole file, index included
	planSize int64 // the plan proper, through its checksum
	body     int64 // offset of the first round marker
	h        Header
	offs     []int64 // nil without an index; else marker offsets + terminator
}

// OpenPlanAt opens a plan file of the given size. It validates the
// header, and — when the file carries a round index — the index's
// checksum, monotonicity, and agreement with the plan boundaries. The
// round stream itself is not scanned; use Check once on untrusted input.
func OpenPlanAt(r io.ReaderAt, size int64) (*PlanAt, error) {
	p := &PlanAt{r: r, size: size, planSize: size}
	offs, planSize, err := readIndexTrailer(r, size)
	if err != nil {
		return nil, err
	}
	if offs != nil {
		p.offs, p.planSize = offs, planSize
	}
	d, err := NewDecoder(io.NewSectionReader(r, 0, p.planSize))
	if err != nil {
		return nil, err
	}
	p.h = d.Header()
	p.body = d.Consumed()
	if p.offs != nil {
		if p.offs[0] != p.body {
			return nil, fmt.Errorf("schedio: index first offset %d, header ends at %d", p.offs[0], p.body)
		}
		// The terminator is a single zero byte followed by the 4-byte plan
		// checksum, so the index's last entry is pinned exactly.
		if last := p.offs[len(p.offs)-1]; last != p.planSize-5 {
			return nil, fmt.Errorf("schedio: index terminator offset %d, plan ends at %d", last, p.planSize-5)
		}
	}
	return p, nil
}

// readIndexTrailer looks for a round index at the end of the file. A
// file without one (the trailer bytes don't resolve to an index magic)
// is simply unindexed; a file with a recognisable but corrupt index is
// an error. Allocation is bounded by the file's real size: the declared
// trailer length is checked against size before any buffer is made.
func readIndexTrailer(r io.ReaderAt, size int64) (offs []int64, planSize int64, err error) {
	// magic + count + one offset + crc is the smallest possible index;
	// anything shorter (or longer than the file) means no index.
	minIndex := int64(len(indexMagic)) + 1 + 1 + 4
	minPlan := int64(len(magic)) + 1 + 4 // magic, version, checksum, at the very least
	if size < minPlan+minIndex+4 {
		return nil, size, nil
	}
	var quad [4]byte
	if _, err := r.ReadAt(quad[:], size-4); err != nil {
		return nil, 0, fmt.Errorf("schedio: reading index trailer: %w", err)
	}
	ilen := int64(binary.LittleEndian.Uint32(quad[:]))
	if ilen < minIndex || ilen+4+minPlan > size {
		return nil, size, nil
	}
	start := size - 4 - ilen
	buf := make([]byte, ilen)
	if _, err := r.ReadAt(buf, start); err != nil {
		return nil, 0, fmt.Errorf("schedio: reading index: %w", err)
	}
	if string(buf[:len(indexMagic)]) != indexMagic {
		return nil, size, nil
	}
	body, stored := buf[:ilen-4], binary.LittleEndian.Uint32(buf[ilen-4:])
	if got := crc32.ChecksumIEEE(body); got != stored {
		return nil, 0, fmt.Errorf("schedio: index checksum mismatch: stored %08x, computed %08x", stored, got)
	}
	// Parse the varints through the one canonical-form decoder, so the
	// random-access and streaming paths can never disagree on what a
	// valid index is.
	d := &Decoder{}
	d.src.r = bytes.NewReader(body[len(indexMagic):])
	nr, err := d.uvarint("index round count")
	if err != nil {
		return nil, 0, err
	}
	if nr > maxIndexRounds {
		return nil, 0, fmt.Errorf("schedio: index declares %d rounds (max %d)", nr, uint64(maxIndexRounds))
	}
	// Offsets grow as index bytes are parsed (each entry is at least one
	// byte), never preallocated from the declared count.
	var prev int64
	for i := uint64(0); i <= nr; i++ {
		v, err := d.uvarint("index offset")
		if err != nil {
			return nil, 0, err
		}
		off := int64(v)
		if i > 0 {
			off = prev + int64(v)
		}
		if off < 0 || off >= start || (i > 0 && off <= prev) {
			return nil, 0, fmt.Errorf("schedio: index offset %d out of order or out of range", i)
		}
		offs = append(offs, off)
		prev = off
	}
	if _, err := d.src.readByte(); err != io.EOF {
		return nil, 0, errors.New("schedio: trailing bytes inside index")
	}
	return offs, start, nil
}

// Header returns the plan's header.
func (p *PlanAt) Header() Header { return p.h }

// Size returns the file size the plan was opened with, index included.
func (p *PlanAt) Size() int64 { return p.size }

// Indexed reports whether the file carries a round index.
func (p *PlanAt) Indexed() bool { return p.offs != nil }

// NumRounds returns the indexed round count, or -1 when the file has no
// index (the count is then only known by streaming the rounds).
func (p *PlanAt) NumRounds() int {
	if p.offs == nil {
		return -1
	}
	return len(p.offs) - 1
}

// NewDecoder returns a fresh streaming decoder over the plan. Each call
// is independent — concurrent decoders share only the ReaderAt.
func (p *PlanAt) NewDecoder() (*Decoder, error) {
	return NewDecoder(io.NewSectionReader(p.r, 0, p.planSize))
}

// Round random-accesses round i (zero-based) through the index and
// returns it in freshly allocated storage. The round bytes are bounds-
// checked by the index (validated at open time) but not re-checksummed;
// run Check once if the file is untrusted.
func (p *PlanAt) Round(i int) (linecomm.Round, error) {
	if p.offs == nil {
		return nil, errors.New("schedio: plan has no round index")
	}
	if i < 0 || i >= len(p.offs)-1 {
		return nil, fmt.Errorf("schedio: round %d outside [0,%d)", i, len(p.offs)-1)
	}
	lo, hi := p.offs[i], p.offs[i+1]
	d := &Decoder{h: p.h}
	d.src.r = io.NewSectionReader(p.r, lo, hi-lo)
	var sc roundScratch
	round, done, err := d.readRound(&sc)
	if err != nil {
		return nil, err
	}
	if done {
		return nil, fmt.Errorf("schedio: round %d: unexpected terminator", i)
	}
	if d.src.n != hi-lo {
		return nil, fmt.Errorf("schedio: round %d: decoded %d of %d bytes", i, d.src.n, hi-lo)
	}
	return linecomm.CloneRound(round), nil
}

// Check streams the whole file through the decoder once, verifying
// round structure, the plan checksum, and — when present — the index
// against the actual round boundaries. It returns the round count.
// Serving processes run it at upload time so everything after trusts
// the file.
//
// Check also requires the streaming and random-access interpretations
// of the file to agree on whether an index exists and how many rounds
// it covers: CRC-32 is forgeable, so a crafted file could otherwise
// present one plan to a stream decoder and a different (prefix) plan
// plus embedded index to the trailer heuristic. Such a file fails here.
func (p *PlanAt) Check() (int, error) {
	d, err := NewDecoder(io.NewSectionReader(p.r, 0, p.size))
	if err != nil {
		return 0, err
	}
	rounds := 0
	for range d.Rounds() {
		rounds++
	}
	if err := d.Err(); err != nil {
		return rounds, err
	}
	if d.HasIndex() != p.Indexed() {
		return rounds, errors.New("schedio: index trailer inconsistent with stream decode")
	}
	if p.offs != nil && rounds != len(p.offs)-1 {
		return rounds, fmt.Errorf("schedio: index declares %d rounds, stream has %d", len(p.offs)-1, rounds)
	}
	return rounds, nil
}
