//go:build darwin || dragonfly || freebsd || linux || netbsd || openbsd || solaris

package schedio

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only and shared: every Mapping of
// the same plan file — across goroutines and across processes — reads
// the one page-cache copy.
func mapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// unmapFile releases a mapFile mapping.
func unmapFile(data []byte) error {
	return syscall.Munmap(data)
}
