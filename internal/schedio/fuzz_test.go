package schedio

import (
	"bytes"
	"reflect"
	"testing"

	"sparsehypercube/internal/core"
	"sparsehypercube/internal/linecomm"
)

// fuzzSeed encodes a small (k, n) broadcast schedule for the corpus.
func fuzzSeed(f *testing.F, k, n int, source uint64) {
	f.Helper()
	s, err := core.NewAuto(k, n)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	h := Header{K: s.Params().K, Dims: s.Params().Dims, Scheme: "broadcast", Source: source}
	if _, err := Write(&buf, h, s.ScheduleRounds(source)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
}

// FuzzCodecRoundTrip drives DecodeAll with arbitrary bytes. Contract:
// never panic; and when decoding succeeds, the whole input was consumed
// (trailing bytes are rejected) and re-encoding must reproduce it byte
// for byte (canonical varints + checksum make the encoding a bijection
// on its image), and a second decode of the re-encoding must agree.
func FuzzCodecRoundTrip(f *testing.F) {
	fuzzSeed(f, 1, 4, 0)
	fuzzSeed(f, 2, 7, 3)
	fuzzSeed(f, 3, 9, 100)
	f.Add([]byte("SHCP"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			return
		}
		s := &linecomm.Schedule{Source: d.Header().Source}
		for round := range d.Rounds() {
			s.Rounds = append(s.Rounds, linecomm.CloneRound(round))
		}
		if d.Err() != nil {
			return
		}
		consumed := d.Consumed()
		if consumed != int64(len(data)) {
			t.Fatalf("decode succeeded consuming %d of %d bytes", consumed, len(data))
		}
		var re bytes.Buffer
		if _, err := Encode(&re, d.Header(), s); err != nil {
			t.Fatalf("decoded plan failed to re-encode: %v", err)
		}
		if !bytes.Equal(re.Bytes(), data[:consumed]) {
			t.Fatalf("re-encode diverges from consumed input:\nin:  %x\nout: %x",
				data[:consumed], re.Bytes())
		}
		h2, s2, err := DecodeAll(bytes.NewReader(re.Bytes()))
		if err != nil {
			t.Fatalf("re-encoding failed to decode: %v", err)
		}
		if !reflect.DeepEqual(d.Header(), h2) {
			t.Fatalf("header unstable: %+v != %+v", d.Header(), h2)
		}
		if len(s2.Rounds) != len(s.Rounds) {
			t.Fatalf("round count unstable: %d != %d", len(s.Rounds), len(s2.Rounds))
		}
	})
}
