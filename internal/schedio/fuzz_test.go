package schedio

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"iter"
	"reflect"
	"testing"

	"sparsehypercube/internal/core"
	"sparsehypercube/internal/linecomm"
)

// fuzzSeed encodes a small (k, n) broadcast schedule for the corpus.
func fuzzSeed(f *testing.F, k, n int, source uint64) {
	f.Helper()
	s, err := core.NewAuto(k, n)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	h := Header{K: s.Params().K, Dims: s.Params().Dims, Scheme: "broadcast", Source: source}
	if _, err := Write(&buf, h, s.ScheduleRounds(source)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
}

// fuzzSeedIndexed is fuzzSeed with the round index appended.
func fuzzSeedIndexed(f *testing.F, k, n int, source uint64) {
	f.Helper()
	s, err := core.NewAuto(k, n)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	h := Header{K: s.Params().K, Dims: s.Params().Dims, Scheme: "broadcast", Source: source}
	if _, err := WriteIndexed(&buf, h, s.ScheduleRounds(source)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
}

// adversarialHeaders are tiny hostile inputs that declare huge counts —
// round calls, path lengths, dims, scheme names, index rounds — with no
// bytes to back them. Shared between the fuzz corpus and the
// deterministic decoder tests: every one must fail with a clean error
// while allocating no more than a fixed multiple of its real size.
func adversarialHeaders() [][]byte {
	// A minimal valid header: magic, version 1, k=1, one dim (4), scheme
	// "broadcast", source 0.
	head := func() []byte {
		b := []byte(magic)
		b = append(b, 1, 1, 1, 4)
		b = append(b, byte(len("broadcast")))
		b = append(b, "broadcast"...)
		return append(b, 0)
	}
	uv := func(b []byte, v uint64) []byte {
		for v >= 0x80 {
			b = append(b, byte(v)|0x80)
			v >>= 7
		}
		return append(b, byte(v))
	}
	var out [][]byte
	// A round declaring 2^60 calls in a 30-byte file.
	out = append(out, uv(head(), 1<<60+1))
	// A round whose declared call count sits just past maxRoundCalls.
	out = append(out, uv(head(), maxRoundCalls+2))
	// One call declaring a 2^50-vertex path.
	out = append(out, uv(uv(head(), 2), 1<<50))
	// A header declaring 2^40 dims.
	out = append(out, uv([]byte{'S', 'H', 'C', 'P', 1, 1}, 1<<40))
	// A header declaring a 2^30-byte scheme name.
	out = append(out, uv([]byte{'S', 'H', 'C', 'P', 1, 1, 1, 4}, 1<<30))
	// A plan whose index declares 2^35 rounds backed by nothing: encode a
	// real empty-ish plan, then splice a hostile index after its CRC.
	var buf bytes.Buffer
	if _, err := Write(&buf, Header{K: 1, Dims: []int{4}, Scheme: "broadcast"}, emptyRounds()); err == nil {
		idx := []byte(indexMagic)
		idx = uv(idx, 1<<35)
		idx = uv(idx, 14)
		idx = binary.LittleEndian.AppendUint32(idx, crc32.ChecksumIEEE(idx))
		idx = binary.LittleEndian.AppendUint32(idx, uint32(len(idx)))
		out = append(out, append(buf.Bytes(), idx...))
	}
	return out
}

func emptyRounds() iter.Seq[linecomm.Round] {
	return func(yield func(linecomm.Round) bool) {}
}

// encodeGossipPlan streams the 2n-round gather-scatter gossip scheme of a
// small (k, n) cube through the codec, exactly as Plan.WriteTo does.
func encodeGossipPlan(tb testing.TB, k, n int, root uint64) []byte {
	tb.Helper()
	s, err := core.NewAuto(k, n)
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	h := Header{K: s.Params().K, Dims: s.Params().Dims, Scheme: "gossip", Source: root}
	if _, err := Write(&buf, h, s.ScheduleGossipRounds(root)); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzCodecRoundTrip drives DecodeAll with arbitrary bytes. Contract:
// never panic; and when decoding succeeds, the whole input was consumed
// (trailing bytes are rejected) and re-encoding must reproduce it byte
// for byte (canonical varints + checksum make the encoding a bijection
// on its image), and a second decode of the re-encoding must agree.
func FuzzCodecRoundTrip(f *testing.F) {
	fuzzSeed(f, 1, 4, 0)
	fuzzSeed(f, 2, 7, 3)
	fuzzSeed(f, 3, 9, 100)
	fuzzSeedIndexed(f, 2, 7, 3)
	f.Add([]byte("SHCP"))
	f.Add([]byte{})
	for _, adv := range adversarialHeaders() {
		f.Add(adv)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			return
		}
		s := &linecomm.Schedule{Source: d.Header().Source}
		for round := range d.Rounds() {
			s.Rounds = append(s.Rounds, linecomm.CloneRound(round))
		}
		if d.Err() != nil {
			return
		}
		consumed := d.Consumed()
		if consumed != int64(len(data)) {
			t.Fatalf("decode succeeded consuming %d of %d bytes", consumed, len(data))
		}
		encode := Encode
		if d.HasIndex() {
			encode = EncodeIndexed
		}
		var re bytes.Buffer
		if _, err := encode(&re, d.Header(), s); err != nil {
			t.Fatalf("decoded plan failed to re-encode: %v", err)
		}
		if !bytes.Equal(re.Bytes(), data[:consumed]) {
			t.Fatalf("re-encode diverges from consumed input:\nin:  %x\nout: %x",
				data[:consumed], re.Bytes())
		}
		h2, s2, err := DecodeAll(bytes.NewReader(re.Bytes()))
		if err != nil {
			t.Fatalf("re-encoding failed to decode: %v", err)
		}
		if !reflect.DeepEqual(d.Header(), h2) {
			t.Fatalf("header unstable: %+v != %+v", d.Header(), h2)
		}
		if len(s2.Rounds) != len(s.Rounds) {
			t.Fatalf("round count unstable: %d != %d", len(s.Rounds), len(s2.Rounds))
		}
	})
}

// FuzzGossipPlanRoundTrip is the gossip-plan sibling of
// FuzzCodecRoundTrip: the corpus is seeded with streamed gather-scatter
// plans (reversed gather paths make the XOR deltas differ from broadcast
// plans, exercising the multi-byte delta encodings). Contract: never
// panic; a successful decode consumed the whole input and re-encodes byte
// for byte; truncation and corruption fail cleanly through Err.
func FuzzGossipPlanRoundTrip(f *testing.F) {
	f.Add(encodeGossipPlan(f, 1, 4, 0))
	f.Add(encodeGossipPlan(f, 2, 7, 3))
	f.Add(encodeGossipPlan(f, 3, 9, 100))
	// A truncated and a bit-flipped plan seed the failure paths.
	trunc := encodeGossipPlan(f, 2, 6, 1)
	f.Add(trunc[:len(trunc)*2/3])
	flipped := append([]byte(nil), trunc...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	for _, adv := range adversarialHeaders() {
		f.Add(adv)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			return
		}
		s := &linecomm.Schedule{Source: d.Header().Source}
		for round := range d.Rounds() {
			s.Rounds = append(s.Rounds, linecomm.CloneRound(round))
		}
		if d.Err() != nil {
			return
		}
		if consumed := d.Consumed(); consumed != int64(len(data)) {
			t.Fatalf("decode succeeded consuming %d of %d bytes", consumed, len(data))
		}
		encode := Encode
		if d.HasIndex() {
			encode = EncodeIndexed
		}
		var re bytes.Buffer
		if _, err := encode(&re, d.Header(), s); err != nil {
			t.Fatalf("decoded plan failed to re-encode: %v", err)
		}
		if !bytes.Equal(re.Bytes(), data) {
			t.Fatalf("re-encode diverges from input:\nin:  %x\nout: %x", data, re.Bytes())
		}
	})
}

// TestGossipPlanCodecRoundTrip is the deterministic core of the fuzz
// contract: for k in {1, 2, 3}, a streamed gossip plan decodes to exactly
// the rounds ScheduleGossipRounds generates and re-encodes byte for byte;
// every truncation point fails cleanly, as does a corrupted interior.
func TestGossipPlanCodecRoundTrip(t *testing.T) {
	for _, kn := range [][2]int{{1, 4}, {2, 7}, {3, 9}} {
		k, n := kn[0], kn[1]
		enc := encodeGossipPlan(t, k, n, 2)

		h, s, err := DecodeAll(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if h.Scheme != "gossip" || h.Source != 2 || len(s.Rounds) != 2*n {
			t.Fatalf("k=%d: decoded %q from %d with %d rounds", k, h.Scheme, h.Source, len(s.Rounds))
		}
		cube, err := core.NewAuto(k, n)
		if err != nil {
			t.Fatal(err)
		}
		ri := 0
		for want := range cube.ScheduleGossipRounds(2) {
			if !reflect.DeepEqual(linecomm.CloneRound(want), s.Rounds[ri]) {
				t.Fatalf("k=%d: decoded round %d diverges from generator", k, ri)
			}
			ri++
		}
		var re bytes.Buffer
		if _, err := Encode(&re, h, s); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, re.Bytes()) {
			t.Fatalf("k=%d: re-encode not byte-identical (%d vs %d bytes)", k, len(enc), re.Len())
		}

		// Truncation at every prefix length must surface an error —
		// either at NewDecoder or through Err — never a silent pass.
		step := len(enc)/37 + 1
		for cut := 0; cut < len(enc); cut += step {
			d, err := NewDecoder(bytes.NewReader(enc[:cut]))
			if err != nil {
				continue
			}
			for range d.Rounds() {
			}
			if d.Err() == nil {
				t.Fatalf("k=%d: truncation at %d of %d decoded cleanly", k, cut, len(enc))
			}
		}

		// A flipped interior byte must be caught (worst case by the CRC).
		bad := append([]byte(nil), enc...)
		bad[len(bad)/2] ^= 0x01
		if d, err := NewDecoder(bytes.NewReader(bad)); err == nil {
			for range d.Rounds() {
			}
			if d.Err() == nil {
				t.Fatalf("k=%d: corrupted plan decoded cleanly", k)
			}
		}
	}
}
