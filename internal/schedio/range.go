package schedio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"iter"

	"sparsehypercube/internal/linecomm"
)

// RoundRange decodes a contiguous, index-delimited slice of a plan's
// rounds off an io.ReaderAt — the unit of work of parallel round-range
// verification, local (PlanAt.Range) or remote (DecodeSpan over bytes
// shipped by RangeBytes). A RoundRange is single-use (Rounds may be
// consumed once) but independent: concurrent RoundRanges over one
// PlanAt share only the ReaderAt.
//
// The range decoder trusts the index no further than the streaming
// decoder would: after the rounds drain, CRC reports whether the range
// decoded cleanly — every round well formed, no early terminator, and
// the decode consuming exactly the byte span the index declared — and
// returns the CRC-32 of that span, so the caller can stitch the ranges
// back into the plan's stored checksum with PlanAt.CheckRangeCRCs.
type RoundRange struct {
	h          Header
	r          io.ReaderAt
	lo, hi     int
	start, end int64

	crc     uint32
	noCRC   bool
	err     error
	claimed bool
	drained bool
}

// DisableCRC turns off checksum accumulation for this range's decode —
// for a second pass over a span whose CRC was already pinned, where
// only the drain status matters. Must be called before Rounds; CRC is
// then unavailable (use Err for the status).
func (r *RoundRange) DisableCRC() { r.noCRC = true }

// Range returns a decoder over rounds [lo, hi) of an indexed plan.
func (p *PlanAt) Range(lo, hi int) (*RoundRange, error) {
	if p.offs == nil {
		return nil, errors.New("schedio: plan has no round index")
	}
	if lo < 0 || hi > len(p.offs)-1 || lo >= hi {
		return nil, fmt.Errorf("schedio: round range [%d,%d) outside [0,%d)", lo, hi, len(p.offs)-1)
	}
	return &RoundRange{h: p.h, r: p.r, lo: lo, hi: hi, start: p.offs[lo], end: p.offs[hi]}, nil
}

// RangeBytes returns the raw encoded byte span of rounds [lo, hi) — the
// unit a distributed-verification coordinator ships to a remote range
// verifier, decoded there by DecodeSpan. The span is exactly the bytes
// the index delimits; its CRC-32 is the RangeCRC contribution of the
// same range.
func (p *PlanAt) RangeBytes(lo, hi int) ([]byte, error) {
	if p.offs == nil {
		return nil, errors.New("schedio: plan has no round index")
	}
	if lo < 0 || hi > len(p.offs)-1 || lo >= hi {
		return nil, fmt.Errorf("schedio: round range [%d,%d) outside [0,%d)", lo, hi, len(p.offs)-1)
	}
	// The span length is bounded by the file size: offsets were checked
	// strictly increasing and below the index start when the plan opened.
	buf := make([]byte, p.offs[hi]-p.offs[lo])
	if _, err := p.r.ReadAt(buf, p.offs[lo]); err != nil {
		return nil, fmt.Errorf("schedio: reading rounds [%d,%d): %w", lo, hi, err)
	}
	return buf, nil
}

// DecodeSpan returns a decoder over rounds [lo, hi) of a detached byte
// span, as produced by RangeBytes on the plan whose header is h — the
// worker side of shipped-range verification. The span is untrusted: the
// decode applies every structural bound of the streaming decoder, must
// yield exactly hi-lo rounds, and must consume the span exactly (see
// RoundRange).
func DecodeSpan(h Header, span []byte, lo, hi int) (*RoundRange, error) {
	if lo < 0 || lo >= hi {
		return nil, fmt.Errorf("schedio: round range [%d,%d) is empty", lo, hi)
	}
	return &RoundRange{h: h, r: bytes.NewReader(span), lo: lo, hi: hi, start: 0, end: int64(len(span))}, nil
}

// Bytes returns the byte length of the range's indexed span.
func (r *RoundRange) Bytes() int64 { return r.end - r.start }

// Rounds returns the range's round stream, decoded off the span the
// index declared. It is single use; the yielded round and the paths
// inside it are reused between iterations (linecomm.CloneRound retains
// one). Stopping early leaves the range's CRC status unresolved.
func (r *RoundRange) Rounds() iter.Seq[linecomm.Round] {
	return func(yield func(linecomm.Round) bool) {
		if r.claimed {
			r.err = errors.New("schedio: round range already consumed")
			return
		}
		r.claimed = true
		d := &Decoder{h: r.h}
		d.src.r = io.NewSectionReader(r.r, r.start, r.end-r.start)
		if r.noCRC {
			d.src.stopCRC() // every later fold no-ops: no checksum work
		}
		var sc roundScratch
		for i := r.lo; i < r.hi; i++ {
			round, done, err := d.readRound(&sc)
			if err != nil {
				r.err = err
				return
			}
			if done {
				r.err = fmt.Errorf("schedio: round %d: unexpected terminator", i)
				return
			}
			if !yield(round) {
				return
			}
		}
		if d.src.n != r.end-r.start {
			r.err = fmt.Errorf("schedio: rounds [%d,%d): decoded %d of %d bytes", r.lo, r.hi, d.src.n, r.end-r.start)
			return
		}
		if !r.noCRC {
			d.src.stopCRC()
			r.crc = d.src.crc
		}
		r.drained = true
	}
}

// Err reports whether the range decoded cleanly and completely: nil
// after a full drain of Rounds, otherwise the decode failure, the
// terminator or byte-span disagreement between index and stream, or an
// incomplete-drain error.
func (r *RoundRange) Err() error {
	if r.err != nil {
		return r.err
	}
	if !r.drained {
		return errors.New("schedio: round range not fully drained")
	}
	return nil
}

// CRC returns the CRC-32 of the range's byte span after a clean,
// complete drain of Rounds, or the error that makes the range
// untrustworthy (see Err).
func (r *RoundRange) CRC() (uint32, error) {
	if err := r.Err(); err != nil {
		return 0, err
	}
	if r.noCRC {
		return 0, errors.New("schedio: checksum accumulation disabled for this range")
	}
	return r.crc, nil
}

// RangeCRC pairs one round range's CRC-32 with its byte length, the
// per-worker integrity contribution consumed by CheckRangeCRCs.
type RangeCRC struct {
	CRC   uint32
	Bytes int64
}

// CheckRangeCRCs verifies the plan's stored checksum from per-range
// CRCs: parts must be the RangeCRC results of contiguous ranges
// covering rounds [0, NumRounds) in order. It combines them with the
// header bytes and the stream terminator, checks the terminator byte
// itself, and compares against the stored footer — together with each
// range's own clean-drain status this gives exactly the integrity
// guarantee of one serial decode, at W-way parallel cost.
func (p *PlanAt) CheckRangeCRCs(parts []RangeCRC) error {
	if p.offs == nil {
		return errors.New("schedio: plan has no round index")
	}
	head := make([]byte, p.offs[0])
	if _, err := p.r.ReadAt(head, 0); err != nil {
		return fmt.Errorf("schedio: reading header: %w", err)
	}
	crc := crc32.ChecksumIEEE(head)
	total := p.offs[0]
	for _, part := range parts {
		crc = crc32Combine(crc, part.CRC, part.Bytes)
		total += part.Bytes
	}
	if last := p.offs[len(p.offs)-1]; total != last {
		return fmt.Errorf("schedio: ranges cover bytes [%d,%d), round stream is [%d,%d)", p.offs[0], total, p.offs[0], last)
	}
	// The index pinned the terminator at planSize-5 when the plan was
	// opened, so exactly one marker byte and the 4-byte checksum remain.
	var tail [5]byte
	if _, err := p.r.ReadAt(tail[:], total); err != nil {
		return fmt.Errorf("schedio: reading footer: %w", err)
	}
	if tail[0] != 0 {
		return fmt.Errorf("schedio: round stream not terminated at offset %d", total)
	}
	crc = crc32.Update(crc, crc32.IEEETable, tail[:1])
	if stored := binary.LittleEndian.Uint32(tail[1:]); stored != crc {
		return fmt.Errorf("schedio: checksum mismatch: stored %08x, computed %08x", stored, crc)
	}
	return nil
}
