package schedio

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// writeTempPlan writes an encoded plan to a temp file and returns its
// path and bytes.
func writeTempPlan(t *testing.T, indexed bool) (string, []byte) {
	t.Helper()
	data := encodePlan(t, 2, 6, 0, indexed)
	path := filepath.Join(t.TempDir(), "plan.shcp")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path, data
}

// mappingModes runs a subtest twice: once on the platform's real path
// (mmap where available) and once with the positional-read fallback
// forced, so the fallback is exercised on every platform — not only
// the ones without syscall.Mmap.
func mappingModes(t *testing.T, run func(t *testing.T)) {
	t.Run("native", run)
	t.Run("fallback", func(t *testing.T) {
		forceFallback = true
		defer func() { forceFallback = false }()
		run(t)
	})
}

func TestMappingReadAt(t *testing.T) {
	path, data := writeTempPlan(t, true)
	mappingModes(t, func(t *testing.T) {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		m, err := OpenMapping(f)
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		if forceFallback && m.Mapped() {
			t.Fatal("fallback mode produced a mapping")
		}
		if m.Size() != int64(len(data)) {
			t.Fatalf("Size = %d, want %d", m.Size(), len(data))
		}
		// Whole-file and sliding-window reads match the bytes.
		got := make([]byte, len(data))
		if n, err := m.ReadAt(got, 0); n != len(data) || (err != nil && err != io.EOF) {
			t.Fatalf("ReadAt full: n=%d err=%v", n, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("full read diverges from file bytes")
		}
		win := make([]byte, 7)
		for off := int64(0); off < int64(len(data))-7; off += 13 {
			if _, err := m.ReadAt(win, off); err != nil {
				t.Fatalf("ReadAt(%d): %v", off, err)
			}
			if !bytes.Equal(win, data[off:off+7]) {
				t.Fatalf("window at %d diverges", off)
			}
		}
		// Tail semantics: a short read at the end returns io.EOF.
		if n, err := m.ReadAt(win, int64(len(data))-3); n != 3 || err != io.EOF {
			t.Errorf("tail read: n=%d err=%v, want 3, EOF", n, err)
		}
		if _, err := m.ReadAt(win, int64(len(data))); err != io.EOF {
			t.Errorf("read at end: err=%v, want EOF", err)
		}
		if _, err := m.ReadAt(win, -1); err == nil {
			t.Error("negative offset accepted")
		}
	})
}

// openMappedPlan composes os.Open + OpenMapping + OpenPlanAt the way
// the facade's OpenPlanFile and the planserver spill path do.
func openMappedPlan(t *testing.T, path string) (*PlanAt, *Mapping) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapping(f)
	if err != nil {
		f.Close()
		t.Fatal(err)
	}
	p, err := OpenPlanAt(m, m.Size())
	if err != nil {
		m.Close()
		t.Fatal(err)
	}
	return p, m
}

func TestMappingServesPlanAt(t *testing.T) {
	path, data := writeTempPlan(t, true)
	mappingModes(t, func(t *testing.T) {
		p, m := openMappedPlan(t, path)
		defer m.Close()
		if !p.Indexed() {
			t.Fatal("mapped plan lost its index")
		}
		if _, err := p.Check(); err != nil {
			t.Fatalf("Check over mapping: %v", err)
		}
		// Random access and range decode work off the mapping.
		if _, err := p.Round(p.NumRounds() - 1); err != nil {
			t.Fatal(err)
		}
		if err := p.CheckRangeCRCs(collectRangeCRCs(t, p, 3)); err != nil {
			t.Fatal(err)
		}
		// The reference: the same plan over a bytes.Reader.
		ref, err := OpenPlanAt(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			t.Fatal(err)
		}
		if ref.NumRounds() != p.NumRounds() {
			t.Fatalf("rounds %d via mapping, %d via memory", p.NumRounds(), ref.NumRounds())
		}
	})
}

func TestMappingEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapping(f)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Mapped() {
		t.Error("empty file claims a mapping")
	}
	if m.Size() != 0 {
		t.Errorf("Size = %d", m.Size())
	}
	if _, err := m.ReadAt(make([]byte, 1), 0); err == nil {
		t.Error("read from empty mapping succeeded")
	}
}

func TestMappedGarbageRejected(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.shcp")
	if err := os.WriteFile(bad, []byte("not a plan at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(bad)
	if err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapping(f)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := OpenPlanAt(m, m.Size()); err == nil {
		t.Error("garbage file accepted")
	}
}
