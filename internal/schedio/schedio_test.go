package schedio

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"sparsehypercube/internal/core"
	"sparsehypercube/internal/linecomm"
)

// encodeCube materialises the broadcast scheme of a (k, n) cube and
// encodes it, returning header, schedule, and bytes.
func encodeCube(t *testing.T, k, n int, source uint64) (Header, *linecomm.Schedule, []byte) {
	t.Helper()
	s, err := core.NewAuto(k, n)
	if err != nil {
		t.Fatal(err)
	}
	sched := s.BroadcastSchedule(source)
	h := Header{K: s.Params().K, Dims: s.Params().Dims, Scheme: "broadcast", Source: source}
	var buf bytes.Buffer
	wn, err := Encode(&buf, h, sched)
	if err != nil {
		t.Fatal(err)
	}
	if wn != int64(buf.Len()) {
		t.Fatalf("Write reported %d bytes, wrote %d", wn, buf.Len())
	}
	return h, sched, buf.Bytes()
}

// TestRoundTrip pins the core codec contract: decode recovers the exact
// header and schedule, and re-encoding is byte-identical.
func TestRoundTrip(t *testing.T) {
	for _, kn := range [][2]int{{1, 5}, {2, 9}, {3, 11}} {
		h, sched, enc := encodeCube(t, kn[0], kn[1], 3)
		gotH, gotS, err := DecodeAll(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("k=%d n=%d: decode: %v", kn[0], kn[1], err)
		}
		if !reflect.DeepEqual(h, gotH) {
			t.Fatalf("k=%d n=%d: header diverged: %+v != %+v", kn[0], kn[1], h, gotH)
		}
		if !reflect.DeepEqual(sched, gotS) {
			t.Fatalf("k=%d n=%d: schedule diverged", kn[0], kn[1])
		}
		var re bytes.Buffer
		if _, err := Encode(&re, gotH, gotS); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, re.Bytes()) {
			t.Fatalf("k=%d n=%d: re-encode not byte-identical (%d vs %d bytes)",
				kn[0], kn[1], len(enc), re.Len())
		}
	}
}

// TestStreamingWriteMatchesMaterialised checks that Write off the round
// iterator produces the same bytes as Encode of the materialised
// schedule.
func TestStreamingWriteMatchesMaterialised(t *testing.T) {
	s, err := core.NewAuto(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	h := Header{K: 2, Dims: s.Params().Dims, Scheme: "broadcast", Source: 0}
	var streamed, materialised bytes.Buffer
	if _, err := Write(&streamed, h, s.ScheduleRounds(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := Encode(&materialised, h, s.BroadcastSchedule(0)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), materialised.Bytes()) {
		t.Fatal("streamed and materialised encodings differ")
	}
}

// TestEmptyAndDegenerateRounds covers rounds with zero calls and calls
// with empty or single-vertex paths — invalid under the model, but the
// codec must carry them faithfully for the validator to flag.
func TestEmptyAndDegenerateRounds(t *testing.T) {
	h := Header{K: 2, Dims: []int{2, 4}, Scheme: "external", Source: 1}
	sched := &linecomm.Schedule{Source: 1, Rounds: []linecomm.Round{
		{},
		{{Path: nil}, {Path: []uint64{5}}},
		{{Path: []uint64{0, 1, 3}}},
	}}
	var buf bytes.Buffer
	if _, err := Encode(&buf, h, sched); err != nil {
		t.Fatal(err)
	}
	_, got, err := DecodeAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rounds) != 3 || len(got.Rounds[0]) != 0 || len(got.Rounds[1]) != 2 {
		t.Fatalf("degenerate rounds mangled: %+v", got.Rounds)
	}
	if got.Rounds[1][0].Path != nil && len(got.Rounds[1][0].Path) != 0 {
		t.Fatalf("empty path not preserved: %v", got.Rounds[1][0].Path)
	}
	if !reflect.DeepEqual(got.Rounds[2], sched.Rounds[2]) {
		t.Fatalf("path mangled: %v", got.Rounds[2])
	}
}

// TestHeaderValidation exercises Write-side header rejection.
func TestHeaderValidation(t *testing.T) {
	bad := []Header{
		{K: 0, Dims: nil},
		{K: 2, Dims: []int{3}},
		{K: 2, Dims: []int{5, 3}},
		{K: 2, Dims: []int{0, 3}},
		{K: 2, Dims: []int{3, 100}},
		{K: 1, Dims: []int{4}, Scheme: string(make([]byte, 100))},
	}
	for i, h := range bad {
		if _, err := Write(io.Discard, h, (&linecomm.Schedule{}).Stream()); err == nil {
			t.Errorf("header %d accepted: %+v", i, h)
		}
	}
}

// TestTruncationFailsCleanly decodes every prefix of a valid encoding and
// expects an error (never a panic, never silent success).
func TestTruncationFailsCleanly(t *testing.T) {
	_, _, enc := encodeCube(t, 2, 6, 0)
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeAll(bytes.NewReader(enc[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded successfully", cut, len(enc))
		}
	}
}

// TestCorruptionFailsCleanly flips each byte of a valid encoding in turn;
// CRC-32 detects any single-byte corruption, so decode must error.
func TestCorruptionFailsCleanly(t *testing.T) {
	_, _, enc := encodeCube(t, 2, 6, 0)
	rng := rand.New(rand.NewSource(1))
	for pos := 0; pos < len(enc); pos++ {
		mut := append([]byte(nil), enc...)
		flip := byte(1 + rng.Intn(255))
		mut[pos] ^= flip
		if _, _, err := DecodeAll(bytes.NewReader(mut)); err == nil {
			t.Fatalf("corrupting byte %d (xor %#x) decoded successfully", pos, flip)
		}
	}
}

// TestTrailingDataRejected: bytes after the checksum are corruption —
// an appended-to plan file must not verify clean.
func TestTrailingDataRejected(t *testing.T) {
	_, _, enc := encodeCube(t, 2, 6, 0)
	for _, tail := range [][]byte{{0}, []byte("junk"), enc} {
		mut := append(append([]byte(nil), enc...), tail...)
		if _, _, err := DecodeAll(bytes.NewReader(mut)); err == nil {
			t.Fatalf("decode accepted %d trailing bytes", len(tail))
		}
	}
}

// TestNonCanonicalVarintRejected pins the minimal-form rule the
// byte-identical re-encode guarantee rests on.
func TestNonCanonicalVarintRejected(t *testing.T) {
	_, _, enc := encodeCube(t, 2, 6, 0)
	// The version varint is the byte right after the 4-byte magic;
	// version 1 in non-minimal form is 0x81 0x00.
	mut := append([]byte(nil), enc[:4]...)
	mut = append(mut, 0x81, 0x00)
	mut = append(mut, enc[5:]...)
	if _, _, err := DecodeAll(bytes.NewReader(mut)); err == nil {
		t.Fatal("non-canonical varint accepted")
	}
}

// TestDecoderSingleUse: the round iterator may be consumed once.
func TestDecoderSingleUse(t *testing.T) {
	_, _, enc := encodeCube(t, 2, 6, 0)
	d, err := NewDecoder(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	for range d.Rounds() {
	}
	if err := d.Err(); err != nil {
		t.Fatalf("first pass: %v", err)
	}
	for range d.Rounds() {
		t.Fatal("second pass yielded a round")
	}
	if d.Err() == nil {
		t.Fatal("second pass not flagged")
	}
}

// TestDecodedRoundsValidate replays a decoded stream through the
// streaming validator and compares with direct validation.
func TestDecodedRoundsValidate(t *testing.T) {
	s, err := core.NewAuto(3, 12)
	if err != nil {
		t.Fatal(err)
	}
	direct := linecomm.ValidateStream(s, 3, 5, s.ScheduleRounds(5))
	var buf bytes.Buffer
	h := Header{K: s.Params().K, Dims: s.Params().Dims, Scheme: "broadcast", Source: 5}
	if _, err := Write(&buf, h, s.ScheduleRounds(5)); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	replayed := linecomm.ValidateStream(s, 3, d.Header().Source, d.Rounds())
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, replayed) {
		t.Fatalf("replayed validation diverged:\n%+v\n%+v", direct, replayed)
	}
}
