package schedio

import (
	"bytes"
	"hash/crc32"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"sparsehypercube/internal/linecomm"
)

func TestCRC32Combine(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	buf := make([]byte, 4096)
	rng.Read(buf)
	for _, split := range []int{0, 1, 7, 100, 2048, 4095, 4096} {
		a, b := buf[:split], buf[split:]
		got := crc32Combine(crc32.ChecksumIEEE(a), crc32.ChecksumIEEE(b), int64(len(b)))
		if want := crc32.ChecksumIEEE(buf); got != want {
			t.Errorf("split %d: combined %08x, direct %08x", split, got, want)
		}
	}
	// Three-way association, as CheckRangeCRCs chains it.
	crc := crc32.ChecksumIEEE(buf[:100])
	crc = crc32Combine(crc, crc32.ChecksumIEEE(buf[100:1000]), 900)
	crc = crc32Combine(crc, crc32.ChecksumIEEE(buf[1000:]), int64(len(buf)-1000))
	if want := crc32.ChecksumIEEE(buf); crc != want {
		t.Errorf("chained combine %08x, direct %08x", crc, want)
	}
}

func TestRoundRangeMatchesStream(t *testing.T) {
	data := encodePlan(t, 2, 6, 0, true)
	_, s, err := DecodeAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	p, err := OpenPlanAt(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	n := p.NumRounds()
	if n != len(s.Rounds) {
		t.Fatalf("NumRounds = %d, want %d", n, len(s.Rounds))
	}
	for _, split := range [][2]int{{0, n}, {0, 1}, {n - 1, n}, {1, n - 1}} {
		rr, err := p.Range(split[0], split[1])
		if err != nil {
			t.Fatal(err)
		}
		i := split[0]
		for round := range rr.Rounds() {
			if !reflect.DeepEqual(linecomm.CloneRound(round), s.Rounds[i]) {
				t.Fatalf("range %v: round %d diverges", split, i)
			}
			i++
		}
		if i != split[1] {
			t.Fatalf("range %v yielded %d rounds", split, i-split[0])
		}
		if _, err := rr.CRC(); err != nil {
			t.Fatalf("range %v: %v", split, err)
		}
	}

	// DisableCRC: status still reported, checksum unavailable.
	rrNo, err := p.Range(0, n)
	if err != nil {
		t.Fatal(err)
	}
	rrNo.DisableCRC()
	if err := rrNo.Err(); err == nil {
		t.Error("Err nil before any drain")
	}
	for range rrNo.Rounds() {
	}
	if err := rrNo.Err(); err != nil {
		t.Errorf("CRC-less drain: %v", err)
	}
	if _, err := rrNo.CRC(); err == nil {
		t.Error("CRC available despite DisableCRC")
	}

	// Bounds and misuse.
	if _, err := p.Range(-1, 1); err == nil {
		t.Error("negative lo accepted")
	}
	if _, err := p.Range(0, n+1); err == nil {
		t.Error("hi beyond rounds accepted")
	}
	if _, err := p.Range(2, 2); err == nil {
		t.Error("empty range accepted")
	}
	rr, _ := p.Range(0, n)
	for range rr.Rounds() {
		break // abandon mid-stream
	}
	if _, err := rr.CRC(); err == nil {
		t.Error("CRC available without a full drain")
	}
	for range rr.Rounds() {
	}
	if _, err := rr.CRC(); err == nil || !strings.Contains(err.Error(), "consumed") {
		t.Errorf("second Rounds call: err = %v", err)
	}

	// A plain (unindexed) plan has no ranges.
	plain := encodePlan(t, 2, 6, 0, false)
	pp, err := OpenPlanAt(bytes.NewReader(plain), int64(len(plain)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pp.Range(0, 1); err == nil {
		t.Error("Range on unindexed plan accepted")
	}
	if err := pp.CheckRangeCRCs(nil); err == nil {
		t.Error("CheckRangeCRCs on unindexed plan accepted")
	}
}

// collectRangeCRCs drains every range of a W-way split and returns the
// RangeCRC parts, failing the test on any decode error.
func collectRangeCRCs(t *testing.T, p *PlanAt, workers int) []RangeCRC {
	t.Helper()
	n := p.NumRounds()
	var parts []RangeCRC
	for w := range workers {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo == hi {
			continue
		}
		rr, err := p.Range(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		for range rr.Rounds() {
		}
		crc, err := rr.CRC()
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, RangeCRC{CRC: crc, Bytes: rr.Bytes()})
	}
	return parts
}

func TestCheckRangeCRCs(t *testing.T) {
	data := encodePlan(t, 2, 6, 0, true)
	p, err := OpenPlanAt(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, p.NumRounds()} {
		if err := p.CheckRangeCRCs(collectRangeCRCs(t, p, workers)); err != nil {
			t.Errorf("%d workers: %v", workers, err)
		}
	}

	// Incomplete coverage must be refused.
	parts := collectRangeCRCs(t, p, 2)
	if err := p.CheckRangeCRCs(parts[:1]); err == nil {
		t.Error("partial coverage accepted")
	}
	// A wrong per-range CRC must fail the footer comparison.
	bad := append([]RangeCRC(nil), parts...)
	bad[0].CRC ^= 1
	if err := p.CheckRangeCRCs(bad); err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Errorf("corrupted range CRC: err = %v", err)
	}

	// A flipped byte inside a round span surfaces either as a range
	// decode error or as a CRC mismatch — never silence.
	for off := int(p.offs[0]); off < int(p.offs[len(p.offs)-1]); off += 11 {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x5a
		mp, err := OpenPlanAt(bytes.NewReader(mut), int64(len(mut)))
		if err != nil {
			continue // index disagreement caught at open: fine
		}
		caught := false
		var mparts []RangeCRC
		n := mp.NumRounds()
		for w := range 3 {
			lo, hi := w*n/3, (w+1)*n/3
			if lo == hi {
				continue
			}
			rr, rerr := mp.Range(lo, hi)
			if rerr != nil {
				t.Fatal(rerr)
			}
			for range rr.Rounds() {
			}
			crc, rerr := rr.CRC()
			if rerr != nil {
				caught = true
				break
			}
			mparts = append(mparts, RangeCRC{CRC: crc, Bytes: rr.Bytes()})
		}
		if !caught && mp.CheckRangeCRCs(mparts) == nil {
			t.Fatalf("flipped byte at %d slipped through range verification", off)
		}
	}
}

// TestRangeBytesDecodeSpan: the shipped form of a range — raw span
// bytes out of RangeBytes, decoded detached by DecodeSpan — must yield
// exactly the rounds and span CRC the attached PlanAt.Range yields, and
// both refusal paths (bad bounds, missing index, truncated or corrupted
// spans) must error rather than mis-decode.
func TestRangeBytesDecodeSpan(t *testing.T) {
	data := encodePlan(t, 2, 6, 0, true)
	p, err := OpenPlanAt(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	n := p.NumRounds()
	for _, split := range [][2]int{{0, n}, {0, 1}, {n - 1, n}, {1, n - 1}} {
		lo, hi := split[0], split[1]
		span, err := p.RangeBytes(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		attached, err := p.Range(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		var want []linecomm.Round
		for round := range attached.Rounds() {
			want = append(want, linecomm.CloneRound(round))
		}
		wantCRC, err := attached.CRC()
		if err != nil {
			t.Fatal(err)
		}
		if got := crc32.ChecksumIEEE(span); got != wantCRC {
			t.Fatalf("range %v: span checksum %08x, range CRC %08x", split, got, wantCRC)
		}
		detached, err := DecodeSpan(p.Header(), span, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if got := detached.Bytes(); got != int64(len(span)) {
			t.Fatalf("range %v: Bytes() = %d, span is %d", split, got, len(span))
		}
		i := 0
		for round := range detached.Rounds() {
			if !reflect.DeepEqual(linecomm.CloneRound(round), want[i]) {
				t.Fatalf("range %v: detached round %d diverges", split, lo+i)
			}
			i++
		}
		gotCRC, err := detached.CRC()
		if err != nil {
			t.Fatalf("range %v: detached CRC: %v", split, err)
		}
		if gotCRC != wantCRC {
			t.Fatalf("range %v: detached CRC %08x, want %08x", split, gotCRC, wantCRC)
		}
	}

	// Bounds refusals mirror Range's.
	for _, split := range [][2]int{{-1, 1}, {2, 2}, {3, 1}, {0, n + 1}} {
		if _, err := p.RangeBytes(split[0], split[1]); err == nil {
			t.Errorf("RangeBytes(%d,%d) accepted", split[0], split[1])
		}
	}
	if _, err := DecodeSpan(p.Header(), nil, 1, 1); err == nil {
		t.Error("DecodeSpan accepted an empty range")
	}

	// An unindexed plan has no spans to ship.
	plain := encodePlan(t, 2, 6, 0, false)
	pp, err := OpenPlanAt(bytes.NewReader(plain), int64(len(plain)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pp.RangeBytes(0, 1); err == nil {
		t.Error("RangeBytes on an unindexed plan accepted")
	}

	// A truncated span must fail the exact-byte-span check; a corrupted
	// one must fail the decode or the drain — never silently yield.
	span, err := p.RangeBytes(1, n-1)
	if err != nil {
		t.Fatal(err)
	}
	trunc, err := DecodeSpan(p.Header(), span[:len(span)-1], 1, n-1)
	if err != nil {
		t.Fatal(err)
	}
	for range trunc.Rounds() {
	}
	if trunc.Err() == nil {
		t.Error("truncated span drained cleanly")
	}
	bad := append([]byte(nil), span...)
	bad[0] ^= 0xff
	corrupt, err := DecodeSpan(p.Header(), bad, 1, n-1)
	if err != nil {
		t.Fatal(err)
	}
	for range corrupt.Rounds() {
	}
	if corrupt.Err() == nil {
		t.Error("corrupted span drained cleanly")
	}
}
