// Package schedio implements the on-disk round format for k-line call
// plans: a compact binary encoding of a schedule's header and round
// stream that can be written straight off a round iterator (never
// materialising the schedule) and replayed, round by round, into the
// streaming validator. Produce a million-vertex schedule once, serve and
// re-verify it many times.
//
// # Format
//
// All integers are unsigned LEB128 varints in canonical (minimal) form;
// the decoder rejects non-minimal encodings, so every valid byte stream
// has exactly one decoding and re-encoding a decoded plan reproduces the
// input byte for byte.
//
//	magic   "SHCP" (4 bytes)
//	uvarint version (currently 1)
//	uvarint k                      call-length bound
//	uvarint len(dims)              parameter vector length (== k)
//	uvarint dims[i] ...            strictly increasing, dims[last] = n
//	uvarint len(scheme)            scheme name length (<= 64)
//	bytes   scheme                 scheme identifier ("broadcast", ...)
//	uvarint source                 distinguished originator vertex
//	rounds:
//	  uvarint numCalls+1           0 terminates the round stream
//	  per call:
//	    uvarint pathLen
//	    uvarint path[0]            (when pathLen > 0)
//	    uvarint path[i-1]^path[i]  pathLen-1 XOR deltas
//	uint32  CRC-32 (IEEE), little endian, of every preceding byte
//
// The checksum must be the end of the stream: trailing bytes are
// treated as corruption (an appended-to file), so one plan file holds
// exactly one plan.
//
// Hypercube call paths flip one dimension bit per hop, so the XOR deltas
// are single powers of two and encode in one or two bytes for the low
// (wide-round) dimensions — the bulk of any broadcast schedule.
//
// The decoder never trusts counts for allocation: storage grows only as
// call data is actually read, so truncated or hostile headers fail
// cleanly with an error instead of panicking or over-allocating.
package schedio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"iter"

	"sparsehypercube/internal/linecomm"
)

const (
	// Version is the current format version.
	Version = 1

	magic = "SHCP"

	// maxDims caps the parameter vector length the codec accepts.
	maxDims = 64
	// maxDim caps individual dimension values (core.MaxN is 40).
	maxDim = 64
	// maxSchemeName caps the scheme identifier length.
	maxSchemeName = 64
	// maxPathLen caps a single call path; the paper's schemes use at most
	// k+1 vertices, so this is purely a hostile-input bound.
	maxPathLen = 1 << 20
)

// Header identifies the plan stored in a file: the construction
// parameters of the cube the rounds were generated on, the scheme that
// produced them, and its originator.
type Header struct {
	K      int
	Dims   []int
	Scheme string
	Source uint64
}

func (h Header) validate() error {
	if h.K < 1 || h.K > maxDims {
		return fmt.Errorf("schedio: k = %d outside [1,%d]", h.K, maxDims)
	}
	if len(h.Dims) != h.K {
		return fmt.Errorf("schedio: %d dims for k = %d (want exactly k)", len(h.Dims), h.K)
	}
	prev := 0
	for _, d := range h.Dims {
		if d <= prev || d > maxDim {
			return fmt.Errorf("schedio: dims %v not strictly increasing in [1,%d]", h.Dims, maxDim)
		}
		prev = d
	}
	if len(h.Scheme) > maxSchemeName {
		return fmt.Errorf("schedio: scheme name %d bytes long (max %d)", len(h.Scheme), maxSchemeName)
	}
	return nil
}

// Write encodes h followed by the round stream onto w and returns the
// number of bytes written. It consumes rounds as they are produced —
// yielded rounds may reuse storage between iterations — so a schedule
// never has to be materialised to be stored.
func Write(w io.Writer, h Header, rounds iter.Seq[linecomm.Round]) (int64, error) {
	if err := h.validate(); err != nil {
		return 0, err
	}
	e := &encoder{w: w}
	e.bytes([]byte(magic))
	e.uvarint(Version)
	e.uvarint(uint64(h.K))
	e.uvarint(uint64(len(h.Dims)))
	for _, d := range h.Dims {
		e.uvarint(uint64(d))
	}
	e.uvarint(uint64(len(h.Scheme)))
	e.bytes([]byte(h.Scheme))
	e.uvarint(h.Source)
	for round := range rounds {
		e.uvarint(uint64(len(round)) + 1)
		for _, call := range round {
			e.uvarint(uint64(len(call.Path)))
			for i, v := range call.Path {
				if i == 0 {
					e.uvarint(v)
				} else {
					e.uvarint(call.Path[i-1] ^ v)
				}
			}
		}
		if e.err != nil {
			break // stop consuming the producer once the sink is dead
		}
	}
	e.uvarint(0)
	e.flush()
	if e.err != nil {
		return e.n, e.err
	}
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], e.crc)
	nf, err := w.Write(foot[:])
	e.n += int64(nf)
	if err != nil {
		return e.n, fmt.Errorf("schedio: writing checksum: %w", err)
	}
	return e.n, nil
}

// Encode is Write over a materialised schedule.
func Encode(w io.Writer, h Header, s *linecomm.Schedule) (int64, error) {
	return Write(w, h, s.Stream())
}

// encoder buffers output and folds the running CRC at flush boundaries.
type encoder struct {
	w   io.Writer
	buf []byte
	crc uint32
	n   int64
	err error
}

const encoderFlushAt = 32 << 10

func (e *encoder) flush() {
	if len(e.buf) == 0 || e.err != nil {
		e.buf = e.buf[:0]
		return
	}
	e.crc = crc32.Update(e.crc, crc32.IEEETable, e.buf)
	n, err := e.w.Write(e.buf)
	e.n += int64(n)
	if err != nil {
		e.err = fmt.Errorf("schedio: %w", err)
	}
	e.buf = e.buf[:0]
}

func (e *encoder) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
	if len(e.buf) >= encoderFlushAt {
		e.flush()
	}
}

func (e *encoder) bytes(b []byte) {
	e.buf = append(e.buf, b...)
	if len(e.buf) >= encoderFlushAt {
		e.flush()
	}
}

// Decoder reads a plan back: the header eagerly (at NewDecoder time), the
// rounds lazily through a single-use iterator that reuses its buffers
// between rounds. After the iterator is drained, Err reports whether the
// stream decoded cleanly and the trailing checksum matched.
type Decoder struct {
	src      byteSource
	h        Header
	err      error
	consumed bool
}

// NewDecoder reads and validates the header from r. The returned decoder
// reads from r incrementally; r must not be read from concurrently.
func NewDecoder(r io.Reader) (*Decoder, error) {
	d := &Decoder{src: byteSource{r: r}}
	var m [4]byte
	if err := d.src.readFull(m[:]); err != nil {
		return nil, fmt.Errorf("schedio: reading magic: %w", err)
	}
	if string(m[:]) != magic {
		return nil, fmt.Errorf("schedio: bad magic %q", m[:])
	}
	v, err := d.uvarint("version")
	if err != nil {
		return nil, err
	}
	if v != Version {
		return nil, fmt.Errorf("schedio: unsupported version %d (have %d)", v, Version)
	}
	k, err := d.uvarint("k")
	if err != nil {
		return nil, err
	}
	nd, err := d.uvarint("dims length")
	if err != nil {
		return nil, err
	}
	if nd < 1 || nd > maxDims {
		return nil, fmt.Errorf("schedio: dims length %d outside [1,%d]", nd, maxDims)
	}
	dims := make([]int, nd)
	for i := range dims {
		dv, err := d.uvarint("dim")
		if err != nil {
			return nil, err
		}
		if dv < 1 || dv > maxDim {
			return nil, fmt.Errorf("schedio: dim %d outside [1,%d]", dv, maxDim)
		}
		dims[i] = int(dv)
	}
	nameLen, err := d.uvarint("scheme name length")
	if err != nil {
		return nil, err
	}
	if nameLen > maxSchemeName {
		return nil, fmt.Errorf("schedio: scheme name %d bytes long (max %d)", nameLen, maxSchemeName)
	}
	name := make([]byte, nameLen)
	if err := d.src.readFull(name); err != nil {
		return nil, fmt.Errorf("schedio: reading scheme name: %w", err)
	}
	source, err := d.uvarint("source")
	if err != nil {
		return nil, err
	}
	d.h = Header{K: int(k), Dims: dims, Scheme: string(name), Source: source}
	if err := d.h.validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// Header returns the decoded header.
func (d *Decoder) Header() Header { return d.h }

// Consumed returns the number of bytes read off the underlying reader so
// far (buffered-but-unparsed bytes excluded).
func (d *Decoder) Consumed() int64 { return d.src.n }

// Err returns the first decode error, or nil when the stream (as far as
// it has been consumed) decoded cleanly. A fully drained round iterator
// additionally implies the trailing checksum matched.
func (d *Decoder) Err() error { return d.err }

// Rounds returns the round stream. It is single use: a second call
// yields nothing and flags an error. The yielded round and the paths
// inside it are reused between iterations — use linecomm.CloneRound to
// retain one. Stopping early leaves the checksum unverified.
func (d *Decoder) Rounds() iter.Seq[linecomm.Round] {
	return func(yield func(linecomm.Round) bool) {
		if d.err != nil {
			return
		}
		if d.consumed {
			d.err = errors.New("schedio: round stream already consumed")
			return
		}
		d.consumed = true
		var (
			round linecomm.Round
			arena []uint64
			offs  []int
		)
		for {
			marker, err := d.uvarint("round header")
			if err != nil {
				d.err = err
				return
			}
			if marker == 0 {
				d.err = d.checkFooter()
				return
			}
			numCalls := marker - 1
			arena = arena[:0]
			offs = offs[:0]
			for ci := uint64(0); ci < numCalls; ci++ {
				plen, err := d.uvarint("path length")
				if err != nil {
					d.err = err
					return
				}
				if plen > maxPathLen {
					d.err = fmt.Errorf("schedio: path length %d exceeds %d", plen, maxPathLen)
					return
				}
				offs = append(offs, len(arena))
				var prev uint64
				for i := uint64(0); i < plen; i++ {
					v, err := d.uvarint("path vertex")
					if err != nil {
						d.err = err
						return
					}
					if i > 0 {
						v ^= prev // stored as XOR delta from the previous hop
					}
					arena = append(arena, v)
					prev = v
				}
			}
			offs = append(offs, len(arena))
			if cap(round) < len(offs)-1 {
				round = make(linecomm.Round, len(offs)-1)
			}
			round = round[:len(offs)-1]
			for i := range round {
				lo, hi := offs[i], offs[i+1]
				round[i] = linecomm.Call{Path: arena[lo:hi:hi]}
			}
			if !yield(round) {
				return
			}
		}
	}
}

// checkFooter folds the CRC over everything consumed so far, compares
// it with the trailing checksum, and requires the stream to end there —
// trailing bytes are corruption (an appended-to file), not padding.
func (d *Decoder) checkFooter() error {
	d.src.stopCRC()
	var foot [4]byte
	if err := d.src.readFull(foot[:]); err != nil {
		return fmt.Errorf("schedio: reading checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(foot[:]); got != d.src.crc {
		return fmt.Errorf("schedio: checksum mismatch: stored %08x, computed %08x", got, d.src.crc)
	}
	switch _, err := d.src.readByte(); err {
	case io.EOF:
		return nil
	case nil:
		return errors.New("schedio: trailing data after checksum")
	default:
		return fmt.Errorf("schedio: after checksum: %w", err)
	}
}

// DecodeAll reads a complete plan into a materialised schedule — the
// convenience (and fuzzing) entry point; use Decoder for streaming.
func DecodeAll(r io.Reader) (Header, *linecomm.Schedule, error) {
	d, err := NewDecoder(r)
	if err != nil {
		return Header{}, nil, err
	}
	s := &linecomm.Schedule{Source: d.h.Source}
	for round := range d.Rounds() {
		s.Rounds = append(s.Rounds, linecomm.CloneRound(round))
	}
	if err := d.Err(); err != nil {
		return Header{}, nil, err
	}
	return d.h, s, nil
}

// uvarint reads one canonical-form varint, rejecting non-minimal
// encodings so that decode-then-encode is the identity on valid streams.
func (d *Decoder) uvarint(what string) (uint64, error) {
	var x uint64
	var s uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := d.src.readByte()
		if err != nil {
			if err == io.EOF && i > 0 {
				err = io.ErrUnexpectedEOF
			}
			return 0, fmt.Errorf("schedio: reading %s: %w", what, err)
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, fmt.Errorf("schedio: reading %s: varint overflows uint64", what)
			}
			if i > 0 && b == 0 {
				return 0, fmt.Errorf("schedio: reading %s: non-canonical varint", what)
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, fmt.Errorf("schedio: reading %s: varint overflows uint64", what)
}

// byteSource is a buffered reader that tracks the bytes actually
// consumed and folds them into a running CRC lazily (at refill and stop
// points), so per-byte reads stay cheap.
type byteSource struct {
	r        io.Reader
	buf      [32 << 10]byte
	pos, lim int
	crcdPos  int // buf[crcdPos:pos] has not been folded into crc yet
	crcDone  bool
	crc      uint32
	n        int64
}

func (s *byteSource) fold() {
	if !s.crcDone && s.pos > s.crcdPos {
		s.crc = crc32.Update(s.crc, crc32.IEEETable, s.buf[s.crcdPos:s.pos])
	}
	s.crcdPos = s.pos
}

// stopCRC finalises the CRC over everything consumed so far; bytes
// consumed afterwards (the footer itself) are excluded.
func (s *byteSource) stopCRC() {
	s.fold()
	s.crcDone = true
}

func (s *byteSource) fill() error {
	s.fold()
	s.pos, s.lim, s.crcdPos = 0, 0, 0
	for {
		n, err := s.r.Read(s.buf[:])
		if n > 0 {
			s.lim = n
			return nil
		}
		if err != nil {
			return err
		}
	}
}

func (s *byteSource) readByte() (byte, error) {
	if s.pos == s.lim {
		if err := s.fill(); err != nil {
			return 0, err
		}
	}
	b := s.buf[s.pos]
	s.pos++
	s.n++
	return b, nil
}

func (s *byteSource) readFull(p []byte) error {
	for i := range p {
		b, err := s.readByte()
		if err != nil {
			if err == io.EOF && i > 0 {
				return io.ErrUnexpectedEOF
			}
			return err
		}
		p[i] = b
	}
	return nil
}
