// Package schedio implements the on-disk round format for k-line call
// plans: a compact binary encoding of a schedule's header and round
// stream that can be written straight off a round iterator (never
// materialising the schedule) and replayed, round by round, into the
// streaming validator. Produce a million-vertex schedule once, serve and
// re-verify it many times.
//
// # Format
//
// The normative, externally consumable specification of the wire format
// — byte-level worked examples (executed by format_doc_test.go, so the
// spec cannot drift from this code), the index trailer, and the
// versioning/compatibility policy — is docs/FORMAT.md. In brief:
//
// All integers are unsigned LEB128 varints in canonical (minimal) form;
// the decoder rejects non-minimal encodings, so every valid byte stream
// has exactly one decoding and re-encoding a decoded plan reproduces the
// input byte for byte.
//
//	magic   "SHCP" (4 bytes)
//	uvarint version (currently 1)
//	uvarint k                      call-length bound
//	uvarint len(dims)              parameter vector length (== k)
//	uvarint dims[i] ...            strictly increasing, dims[last] = n
//	uvarint len(scheme)            scheme name length (<= 64)
//	bytes   scheme                 scheme identifier ("broadcast", ...)
//	uvarint source                 distinguished originator vertex
//	rounds:
//	  uvarint numCalls+1           0 terminates the round stream
//	  per call:
//	    uvarint pathLen
//	    uvarint path[0]            (when pathLen > 0)
//	    uvarint path[i-1]^path[i]  pathLen-1 XOR deltas
//	uint32  CRC-32 (IEEE), little endian, of every preceding byte
//
// The checksum must be the end of the plan: trailing bytes are treated
// as corruption (an appended-to file), so one plan file holds exactly
// one plan — with one exception, the optional round index a serving
// process uses for random access (see WriteIndexed):
//
//	magic   "SHIX" (4 bytes)
//	uvarint numRounds
//	uvarint offset[0]              byte offset of round 1's marker
//	uvarint offset[i]-offset[i-1]  numRounds deltas; the last entry is
//	                               the offset of the terminating 0
//	uint32  CRC-32 (IEEE), little endian, of the index bytes above
//	uint32  index length in bytes (magic through index CRC), little
//	        endian — a fixed-size trailer, so an io.ReaderAt finds the
//	        index from the file end without scanning the plan
//
// The streaming decoder cross-checks an index against the round
// boundaries it actually saw, so a file whose index disagrees with its
// round stream never decodes cleanly.
//
// Hypercube call paths flip one dimension bit per hop, so the XOR deltas
// are single powers of two and encode in one or two bytes for the low
// (wide-round) dimensions — the bulk of any broadcast schedule.
//
// The decoder never trusts counts for allocation: storage grows only as
// call data is actually read, so truncated or hostile headers fail
// cleanly with an error instead of panicking or over-allocating.
package schedio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"iter"
	"sync"

	"sparsehypercube/internal/linecomm"
)

const (
	// Version is the current format version.
	Version = 1

	magic      = "SHCP"
	indexMagic = "SHIX"

	// maxDims caps the parameter vector length the codec accepts. Header
	// fields sized from wire varints (dims, scheme name) stay under these
	// fixed small bounds, so header decoding allocates O(1) bytes no
	// matter what counts a hostile header declares.
	maxDims = 64
	// maxDim caps individual dimension values (core.MaxN is 40).
	maxDim = 64
	// maxSchemeName caps the scheme identifier length.
	maxSchemeName = 64
	// maxPathLen caps a single call path; the paper's schemes use at most
	// k+1 vertices, so this is purely a hostile-input bound.
	maxPathLen = 1 << 20
	// maxRoundCalls caps a single round's declared call count. A round can
	// never hold more calls than half the largest cube's order, and a file
	// actually containing that many calls would be petabytes; the bound
	// exists so a tiny hostile file declaring a huge count fails
	// immediately with a clean error. Call storage itself only ever grows
	// as call bytes are read, never from this declared count.
	maxRoundCalls = 1 << 44
	// maxIndexRounds caps the declared round count in a round index.
	maxIndexRounds = 1 << 32
)

// Header identifies the plan stored in a file: the construction
// parameters of the cube the rounds were generated on, the scheme that
// produced them, and its originator.
type Header struct {
	K      int
	Dims   []int
	Scheme string
	Source uint64
}

func (h Header) validate() error {
	if h.K < 1 || h.K > maxDims {
		return fmt.Errorf("schedio: k = %d outside [1,%d]", h.K, maxDims)
	}
	if len(h.Dims) != h.K {
		return fmt.Errorf("schedio: %d dims for k = %d (want exactly k)", len(h.Dims), h.K)
	}
	prev := 0
	for _, d := range h.Dims {
		if d <= prev || d > maxDim {
			return fmt.Errorf("schedio: dims %v not strictly increasing in [1,%d]", h.Dims, maxDim)
		}
		prev = d
	}
	if len(h.Scheme) > maxSchemeName {
		return fmt.Errorf("schedio: scheme name %d bytes long (max %d)", len(h.Scheme), maxSchemeName)
	}
	return nil
}

// Write encodes h followed by the round stream onto w and returns the
// number of bytes written. It consumes rounds as they are produced —
// yielded rounds may reuse storage between iterations — so a schedule
// never has to be materialised to be stored.
func Write(w io.Writer, h Header, rounds iter.Seq[linecomm.Round]) (int64, error) {
	return writePlan(w, h, rounds, nil)
}

// WriteIndexed is Write plus a round index appended after the checksum:
// the byte offset of every round marker (and the stream terminator),
// delta-encoded, checksummed, and closed by a fixed-size length trailer.
// An indexed file replays exactly like a plain one through any decoder
// in this package, and additionally supports per-round random access
// through OpenPlanAt — the form a serving process wants, where many
// concurrent verifiers share one copy of the file.
func WriteIndexed(w io.Writer, h Header, rounds iter.Seq[linecomm.Round]) (int64, error) {
	var offs []int64
	n, err := writePlan(w, h, rounds, &offs)
	if err != nil {
		return n, err
	}
	idx := appendIndex(nil, offs)
	ni, err := w.Write(idx)
	n += int64(ni)
	if err != nil {
		return n, fmt.Errorf("schedio: writing index: %w", err)
	}
	return n, nil
}

// writePlan encodes the plan proper, recording the byte offset of every
// round marker plus the terminator into offs when non-nil.
func writePlan(w io.Writer, h Header, rounds iter.Seq[linecomm.Round], offs *[]int64) (int64, error) {
	if err := h.validate(); err != nil {
		return 0, err
	}
	e := &encoder{w: w}
	e.bytes([]byte(magic))
	e.uvarint(Version)
	e.uvarint(uint64(h.K))
	e.uvarint(uint64(len(h.Dims)))
	for _, d := range h.Dims {
		e.uvarint(uint64(d))
	}
	e.uvarint(uint64(len(h.Scheme)))
	e.bytes([]byte(h.Scheme))
	e.uvarint(h.Source)
	for round := range rounds {
		if offs != nil {
			*offs = append(*offs, e.offset())
		}
		e.uvarint(uint64(len(round)) + 1)
		for _, call := range round {
			e.uvarint(uint64(len(call.Path)))
			for i, v := range call.Path {
				if i == 0 {
					e.uvarint(v)
				} else {
					e.uvarint(call.Path[i-1] ^ v)
				}
			}
		}
		if e.err != nil {
			break // stop consuming the producer once the sink is dead
		}
	}
	if offs != nil {
		*offs = append(*offs, e.offset())
	}
	e.uvarint(0)
	e.flush()
	if e.err != nil {
		return e.n, e.err
	}
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], e.crc)
	nf, err := w.Write(foot[:])
	e.n += int64(nf)
	if err != nil {
		return e.n, fmt.Errorf("schedio: writing checksum: %w", err)
	}
	return e.n, nil
}

// appendIndex appends the round-index section for the recorded offsets
// (round markers plus terminator, as writePlan records them).
func appendIndex(buf []byte, offs []int64) []byte {
	start := len(buf)
	buf = append(buf, indexMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(offs)-1))
	var prev int64
	for i, off := range offs {
		if i == 0 {
			buf = binary.AppendUvarint(buf, uint64(off))
		} else {
			buf = binary.AppendUvarint(buf, uint64(off-prev))
		}
		prev = off
	}
	crc := crc32.ChecksumIEEE(buf[start:])
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	return binary.LittleEndian.AppendUint32(buf, uint32(len(buf)-start))
}

// Encode is Write over a materialised schedule.
func Encode(w io.Writer, h Header, s *linecomm.Schedule) (int64, error) {
	return Write(w, h, s.Stream())
}

// EncodeIndexed is WriteIndexed over a materialised schedule.
func EncodeIndexed(w io.Writer, h Header, s *linecomm.Schedule) (int64, error) {
	return WriteIndexed(w, h, s.Stream())
}

// encoder buffers output and folds the running CRC at flush boundaries.
type encoder struct {
	w   io.Writer
	buf []byte
	crc uint32
	n   int64
	err error
}

const encoderFlushAt = 32 << 10

func (e *encoder) flush() {
	if len(e.buf) == 0 || e.err != nil {
		e.buf = e.buf[:0]
		return
	}
	e.crc = crc32.Update(e.crc, crc32.IEEETable, e.buf)
	n, err := e.w.Write(e.buf)
	e.n += int64(n)
	if err != nil {
		e.err = fmt.Errorf("schedio: %w", err)
	}
	e.buf = e.buf[:0]
}

func (e *encoder) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
	if len(e.buf) >= encoderFlushAt {
		e.flush()
	}
}

func (e *encoder) bytes(b []byte) {
	e.buf = append(e.buf, b...)
	if len(e.buf) >= encoderFlushAt {
		e.flush()
	}
}

// offset returns the logical write position: bytes flushed plus bytes
// still buffered.
func (e *encoder) offset() int64 { return e.n + int64(len(e.buf)) }

// Decoder reads a plan back: the header eagerly (at NewDecoder time), the
// rounds lazily through a single-use iterator that reuses its buffers
// between rounds. After the iterator is drained, Err reports whether the
// stream decoded cleanly and the trailing checksum matched.
//
// A Decoder is single-use but safe against concurrent misuse: Err may be
// called from any goroutine, and a second (even concurrent) Rounds call
// fails with a clean error instead of racing on the underlying reader.
type Decoder struct {
	src byteSource
	h   Header

	mu       sync.Mutex
	err      error
	consumed bool
	hasIndex bool

	// roundOffs records the byte offset of every round marker seen, plus
	// the terminator, to cross-check a trailing index. One word per round
	// actually read, so growth stays proportional to bytes consumed.
	roundOffs []int64
}

// NewDecoder reads and validates the header from r. The returned decoder
// reads from r incrementally; r must not be read from concurrently.
func NewDecoder(r io.Reader) (*Decoder, error) {
	d := &Decoder{src: byteSource{r: r}}
	var m [4]byte
	if err := d.src.readFull(m[:]); err != nil {
		return nil, fmt.Errorf("schedio: reading magic: %w", err)
	}
	if string(m[:]) != magic {
		return nil, fmt.Errorf("schedio: bad magic %q", m[:])
	}
	v, err := d.uvarint("version")
	if err != nil {
		return nil, err
	}
	if v != Version {
		return nil, fmt.Errorf("schedio: unsupported version %d (have %d)", v, Version)
	}
	k, err := d.uvarint("k")
	if err != nil {
		return nil, err
	}
	nd, err := d.uvarint("dims length")
	if err != nil {
		return nil, err
	}
	if nd < 1 || nd > maxDims {
		return nil, fmt.Errorf("schedio: dims length %d outside [1,%d]", nd, maxDims)
	}
	dims := make([]int, nd)
	for i := range dims {
		dv, err := d.uvarint("dim")
		if err != nil {
			return nil, err
		}
		if dv < 1 || dv > maxDim {
			return nil, fmt.Errorf("schedio: dim %d outside [1,%d]", dv, maxDim)
		}
		dims[i] = int(dv)
	}
	nameLen, err := d.uvarint("scheme name length")
	if err != nil {
		return nil, err
	}
	if nameLen > maxSchemeName {
		return nil, fmt.Errorf("schedio: scheme name %d bytes long (max %d)", nameLen, maxSchemeName)
	}
	name := make([]byte, nameLen)
	if err := d.src.readFull(name); err != nil {
		return nil, fmt.Errorf("schedio: reading scheme name: %w", err)
	}
	source, err := d.uvarint("source")
	if err != nil {
		return nil, err
	}
	d.h = Header{K: int(k), Dims: dims, Scheme: string(name), Source: source}
	if err := d.h.validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// Header returns the decoded header.
func (d *Decoder) Header() Header { return d.h }

// Consumed returns the number of bytes read off the underlying reader so
// far (buffered-but-unparsed bytes excluded).
func (d *Decoder) Consumed() int64 { return d.src.n }

// Err returns the first decode error, or nil when the stream (as far as
// it has been consumed) decoded cleanly. A fully drained round iterator
// additionally implies the trailing checksum matched. Err is safe to
// call concurrently.
func (d *Decoder) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}

// HasIndex reports whether the stream carried a (verified) round index
// after its checksum. Meaningful only after the round iterator drained.
func (d *Decoder) HasIndex() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.hasIndex
}

// setErr records the first decode error.
func (d *Decoder) setErr(err error) {
	if err == nil {
		return
	}
	d.mu.Lock()
	if d.err == nil {
		d.err = err
	}
	d.mu.Unlock()
}

// claim marks the round stream consumed; a second claim — including a
// concurrent one — fails cleanly instead of racing on the reader.
func (d *Decoder) claim() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.err != nil {
		return false
	}
	if d.consumed {
		d.err = errors.New("schedio: round stream already consumed")
		return false
	}
	d.consumed = true
	return true
}

// Rounds returns the round stream. It is single use: a second call
// yields nothing and flags an error. The yielded round and the paths
// inside it are reused between iterations — use linecomm.CloneRound to
// retain one. Stopping early leaves the checksum unverified.
func (d *Decoder) Rounds() iter.Seq[linecomm.Round] {
	return func(yield func(linecomm.Round) bool) {
		if !d.claim() {
			return
		}
		var sc roundScratch
		for {
			d.roundOffs = append(d.roundOffs, d.src.n)
			round, done, err := d.readRound(&sc)
			if err != nil {
				d.setErr(err)
				return
			}
			if done {
				d.setErr(d.checkFooter())
				return
			}
			if !yield(round) {
				return
			}
		}
	}
}

// roundScratch is the storage a round decode reuses between rounds: the
// path arena, per-call offsets into it, and the round slice itself. All
// three grow only as call bytes are actually read off the wire — never
// from a declared count — so a hostile header cannot force allocation
// beyond a fixed multiple of the bytes it backs with data.
type roundScratch struct {
	round linecomm.Round
	arena []uint64
	offs  []int
}

// readRound decodes one round into sc's reused storage. done is true at
// the stream terminator (round is nil there).
func (d *Decoder) readRound(sc *roundScratch) (round linecomm.Round, done bool, err error) {
	marker, err := d.uvarint("round header")
	if err != nil {
		return nil, false, err
	}
	if marker == 0 {
		return nil, true, nil
	}
	numCalls := marker - 1
	if numCalls > maxRoundCalls {
		return nil, false, fmt.Errorf("schedio: round declares %d calls (max %d)", numCalls, uint64(maxRoundCalls))
	}
	sc.arena = sc.arena[:0]
	sc.offs = sc.offs[:0]
	for ci := uint64(0); ci < numCalls; ci++ {
		plen, err := d.uvarint("path length")
		if err != nil {
			return nil, false, err
		}
		if plen > maxPathLen {
			return nil, false, fmt.Errorf("schedio: path length %d exceeds %d", plen, maxPathLen)
		}
		sc.offs = append(sc.offs, len(sc.arena))
		var prev uint64
		for i := uint64(0); i < plen; i++ {
			v, err := d.uvarint("path vertex")
			if err != nil {
				return nil, false, err
			}
			if i > 0 {
				v ^= prev // stored as XOR delta from the previous hop
			}
			sc.arena = append(sc.arena, v)
			prev = v
		}
	}
	sc.offs = append(sc.offs, len(sc.arena))
	if cap(sc.round) < len(sc.offs)-1 {
		sc.round = make(linecomm.Round, len(sc.offs)-1)
	}
	sc.round = sc.round[:len(sc.offs)-1]
	for i := range sc.round {
		lo, hi := sc.offs[i], sc.offs[i+1]
		sc.round[i] = linecomm.Call{Path: sc.arena[lo:hi:hi]}
	}
	return sc.round, false, nil
}

// checkFooter folds the CRC over everything consumed so far, compares
// it with the trailing checksum, and requires the stream to end there —
// trailing bytes are corruption (an appended-to file), not padding —
// unless what follows is a round index, which is verified against the
// round boundaries the decode actually saw.
func (d *Decoder) checkFooter() error {
	d.src.stopCRC()
	var foot [4]byte
	if err := d.src.readFull(foot[:]); err != nil {
		return fmt.Errorf("schedio: reading checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(foot[:]); got != d.src.crc {
		return fmt.Errorf("schedio: checksum mismatch: stored %08x, computed %08x", got, d.src.crc)
	}
	d.src.restartCRC() // the index carries its own checksum
	b, err := d.src.readByte()
	switch {
	case err == io.EOF:
		return nil
	case err != nil:
		return fmt.Errorf("schedio: after checksum: %w", err)
	}
	var m [4]byte
	m[0] = b
	if err := d.src.readFull(m[1:]); err != nil || string(m[:]) != indexMagic {
		return errors.New("schedio: trailing data after checksum")
	}
	return d.checkIndexTrailer()
}

// checkIndexTrailer parses the round index that follows the plan
// checksum and requires it to agree exactly with the stream just
// decoded: same round count, same marker offsets, valid index checksum
// and length trailer, then end of stream.
func (d *Decoder) checkIndexTrailer() error {
	indexStart := d.src.n - int64(len(indexMagic))
	nr, err := d.uvarint("index round count")
	if err != nil {
		return err
	}
	if nr > maxIndexRounds {
		return fmt.Errorf("schedio: index declares %d rounds (max %d)", nr, uint64(maxIndexRounds))
	}
	if nr != uint64(len(d.roundOffs)-1) {
		return fmt.Errorf("schedio: index declares %d rounds, stream has %d", nr, len(d.roundOffs)-1)
	}
	var prev int64
	for i := range d.roundOffs {
		v, err := d.uvarint("index offset")
		if err != nil {
			return err
		}
		off := int64(v)
		if i > 0 {
			off = prev + int64(v)
		}
		if off != d.roundOffs[i] {
			return fmt.Errorf("schedio: index offset %d is %d, stream has %d", i, off, d.roundOffs[i])
		}
		prev = off
	}
	d.src.stopCRC()
	var buf [4]byte
	if err := d.src.readFull(buf[:]); err != nil {
		return fmt.Errorf("schedio: reading index checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(buf[:]); got != d.src.crc {
		return fmt.Errorf("schedio: index checksum mismatch: stored %08x, computed %08x", got, d.src.crc)
	}
	if err := d.src.readFull(buf[:]); err != nil {
		return fmt.Errorf("schedio: reading index length: %w", err)
	}
	if got, want := int64(binary.LittleEndian.Uint32(buf[:])), d.src.n-4-indexStart; got != want {
		return fmt.Errorf("schedio: index length field %d, index is %d bytes", got, want)
	}
	d.mu.Lock()
	d.hasIndex = true
	d.mu.Unlock()
	switch _, err := d.src.readByte(); err {
	case io.EOF:
		return nil
	case nil:
		return errors.New("schedio: trailing data after index")
	default:
		return fmt.Errorf("schedio: after index: %w", err)
	}
}

// DecodeAll reads a complete plan into a materialised schedule — the
// convenience (and fuzzing) entry point; use Decoder for streaming.
func DecodeAll(r io.Reader) (Header, *linecomm.Schedule, error) {
	d, err := NewDecoder(r)
	if err != nil {
		return Header{}, nil, err
	}
	s := &linecomm.Schedule{Source: d.h.Source}
	for round := range d.Rounds() {
		s.Rounds = append(s.Rounds, linecomm.CloneRound(round))
	}
	if err := d.Err(); err != nil {
		return Header{}, nil, err
	}
	return d.h, s, nil
}

// uvarint reads one canonical-form varint, rejecting non-minimal
// encodings so that decode-then-encode is the identity on valid streams.
func (d *Decoder) uvarint(what string) (uint64, error) {
	var x uint64
	var s uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := d.src.readByte()
		if err != nil {
			if err == io.EOF && i > 0 {
				err = io.ErrUnexpectedEOF
			}
			return 0, fmt.Errorf("schedio: reading %s: %w", what, err)
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, fmt.Errorf("schedio: reading %s: varint overflows uint64", what)
			}
			if i > 0 && b == 0 {
				return 0, fmt.Errorf("schedio: reading %s: non-canonical varint", what)
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, fmt.Errorf("schedio: reading %s: varint overflows uint64", what)
}

// byteSource is a buffered reader that tracks the bytes actually
// consumed and folds them into a running CRC lazily (at refill and stop
// points), so per-byte reads stay cheap.
type byteSource struct {
	r        io.Reader
	buf      [32 << 10]byte
	pos, lim int
	crcdPos  int // buf[crcdPos:pos] has not been folded into crc yet
	crcDone  bool
	crc      uint32
	n        int64
}

func (s *byteSource) fold() {
	if !s.crcDone && s.pos > s.crcdPos {
		s.crc = crc32.Update(s.crc, crc32.IEEETable, s.buf[s.crcdPos:s.pos])
	}
	s.crcdPos = s.pos
}

// stopCRC finalises the CRC over everything consumed so far; bytes
// consumed afterwards (the footer itself) are excluded.
func (s *byteSource) stopCRC() {
	s.fold()
	s.crcDone = true
}

// restartCRC begins a fresh CRC over the bytes consumed from here on —
// used at the index boundary, which is checksummed separately from the
// plan.
func (s *byteSource) restartCRC() {
	s.crcdPos = s.pos
	s.crcDone = false
	s.crc = 0
}

func (s *byteSource) fill() error {
	s.fold()
	s.pos, s.lim, s.crcdPos = 0, 0, 0
	for {
		n, err := s.r.Read(s.buf[:])
		if n > 0 {
			s.lim = n
			return nil
		}
		if err != nil {
			return err
		}
	}
}

func (s *byteSource) readByte() (byte, error) {
	if s.pos == s.lim {
		if err := s.fill(); err != nil {
			return 0, err
		}
	}
	b := s.buf[s.pos]
	s.pos++
	s.n++
	return b, nil
}

func (s *byteSource) readFull(p []byte) error {
	for i := range p {
		b, err := s.readByte()
		if err != nil {
			if err == io.EOF && i > 0 {
				return io.ErrUnexpectedEOF
			}
			return err
		}
		p[i] = b
	}
	return nil
}
