package schedio

import (
	"bytes"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"sparsehypercube/internal/core"
	"sparsehypercube/internal/linecomm"
)

// encodePlan streams a (k, n) broadcast plan, optionally indexed.
func encodePlan(tb testing.TB, k, n int, source uint64, indexed bool) []byte {
	tb.Helper()
	s, err := core.NewAuto(k, n)
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	h := Header{K: s.Params().K, Dims: s.Params().Dims, Scheme: "broadcast", Source: source}
	write := Write
	if indexed {
		write = WriteIndexed
	}
	if _, err := write(&buf, h, s.ScheduleRounds(source)); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// TestIndexedPlanStreamDecode pins the indexed file down to the stream
// decoder: it decodes cleanly, reports the index, and re-encodes byte
// for byte through EncodeIndexed.
func TestIndexedPlanStreamDecode(t *testing.T) {
	for _, kn := range [][2]int{{1, 4}, {2, 7}, {3, 9}} {
		k, n := kn[0], kn[1]
		enc := encodePlan(t, k, n, 1, true)
		plain := encodePlan(t, k, n, 1, false)
		if len(enc) <= len(plain) {
			t.Fatalf("k=%d: indexed file (%d B) not larger than plain (%d B)", k, len(enc), len(plain))
		}
		if !bytes.Equal(enc[:len(plain)], plain) {
			t.Fatalf("k=%d: indexed file does not extend the plain encoding", k)
		}

		d, err := NewDecoder(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		s := &linecomm.Schedule{Source: d.Header().Source}
		for round := range d.Rounds() {
			s.Rounds = append(s.Rounds, linecomm.CloneRound(round))
		}
		if err := d.Err(); err != nil {
			t.Fatalf("k=%d: indexed plan failed stream decode: %v", k, err)
		}
		if !d.HasIndex() {
			t.Fatalf("k=%d: index not reported", k)
		}
		if got := d.Consumed(); got != int64(len(enc)) {
			t.Fatalf("k=%d: consumed %d of %d bytes", k, got, len(enc))
		}
		var re bytes.Buffer
		if _, err := EncodeIndexed(&re, d.Header(), s); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re.Bytes(), enc) {
			t.Fatalf("k=%d: indexed re-encode not byte-identical", k)
		}
	}
}

// TestPlanAtRandomAccess checks OpenPlanAt against the stream decoder:
// every indexed round random-accesses to exactly the streamed round, in
// any order, including concurrently.
func TestPlanAtRandomAccess(t *testing.T) {
	enc := encodePlan(t, 2, 8, 3, true)
	p, err := OpenPlanAt(bytes.NewReader(enc), int64(len(enc)))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Indexed() {
		t.Fatal("index not detected")
	}
	if rounds, err := p.Check(); err != nil || rounds != 8 {
		t.Fatalf("Check = (%d, %v), want (8, nil)", rounds, err)
	}
	d, err := p.NewDecoder()
	if err != nil {
		t.Fatal(err)
	}
	var want []linecomm.Round
	for round := range d.Rounds() {
		want = append(want, linecomm.CloneRound(round))
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if p.NumRounds() != len(want) {
		t.Fatalf("NumRounds = %d, streamed %d", p.NumRounds(), len(want))
	}
	// Backwards, to prove access order does not matter.
	for i := p.NumRounds() - 1; i >= 0; i-- {
		got, err := p.Round(i)
		if err != nil {
			t.Fatalf("Round(%d): %v", i, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("Round(%d) diverges from stream", i)
		}
	}
	if _, err := p.Round(p.NumRounds()); err == nil {
		t.Fatal("out-of-range round accepted")
	}
	if _, err := p.Round(-1); err == nil {
		t.Fatal("negative round accepted")
	}

	// Concurrent readers share the one copy: fresh decoders and random
	// accesses from many goroutines must all agree.
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				d, err := p.NewDecoder()
				if err != nil {
					errs <- err
					return
				}
				i := 0
				for round := range d.Rounds() {
					if !reflect.DeepEqual(linecomm.CloneRound(round), want[i]) {
						errs <- fmt.Errorf("goroutine %d: stream round %d diverges", g, i)
						return
					}
					i++
				}
				errs <- d.Err()
				return
			}
			for i := range want {
				got, err := p.Round((i + g) % len(want))
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, want[(i+g)%len(want)]) {
					errs <- fmt.Errorf("goroutine %d: random round diverges", g)
					return
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestPlanAtUnindexed: a plain plan file opens fine, streams fine, and
// reports the absence of random access instead of guessing.
func TestPlanAtUnindexed(t *testing.T) {
	enc := encodePlan(t, 2, 7, 0, false)
	p, err := OpenPlanAt(bytes.NewReader(enc), int64(len(enc)))
	if err != nil {
		t.Fatal(err)
	}
	if p.Indexed() || p.NumRounds() != -1 {
		t.Fatalf("plain file reported as indexed (rounds %d)", p.NumRounds())
	}
	if _, err := p.Round(0); err == nil {
		t.Fatal("Round succeeded without an index")
	}
	if rounds, err := p.Check(); err != nil || rounds != 7 {
		t.Fatalf("Check = (%d, %v), want (7, nil)", rounds, err)
	}
	d, err := p.NewDecoder()
	if err != nil {
		t.Fatal(err)
	}
	rounds := 0
	for range d.Rounds() {
		rounds++
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if rounds != 7 {
		t.Fatalf("streamed %d rounds, want 7", rounds)
	}
}

// TestIndexCorruptionSweep flips every byte of the index region and
// truncates at every index prefix: each must fail at OpenPlanAt, at
// Check, or at the stream decoder — never decode cleanly.
func TestIndexCorruptionSweep(t *testing.T) {
	enc := encodePlan(t, 2, 7, 1, true)
	plain := encodePlan(t, 2, 7, 1, false)
	idxStart := len(plain)

	decodesCleanly := func(data []byte) bool {
		// The stream decoder is the arbiter: index disagreement, bad
		// checksums, and trailing garbage all surface through Err.
		d, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			return false
		}
		for range d.Rounds() {
		}
		return d.Err() == nil
	}
	for i := idxStart; i < len(enc); i++ {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x01
		if decodesCleanly(bad) {
			t.Fatalf("flip at index byte %d decoded cleanly", i-idxStart)
		}
	}
	for cut := idxStart + 1; cut < len(enc); cut++ {
		if decodesCleanly(enc[:cut]) {
			t.Fatalf("index truncated at %d decoded cleanly", cut-idxStart)
		}
	}
	// OpenPlanAt on a recognisable-but-corrupt index must error rather
	// than silently fall back to unindexed.
	bad := append([]byte(nil), enc...)
	bad[idxStart+len(indexMagic)] ^= 0x01 // round count varint
	if p, err := OpenPlanAt(bytes.NewReader(bad), int64(len(bad))); err == nil && p.Indexed() {
		t.Fatal("corrupt index opened as indexed")
	}
}

// TestCheckIndexStreamConsistency pins Check's cross-interpretation
// guard: a PlanAt that believes it has an index while the stream decode
// of the same bytes sees none (the shape a CRC-forged ambiguous file
// produces) must fail Check, not quietly serve the prefix plan.
func TestCheckIndexStreamConsistency(t *testing.T) {
	indexed := encodePlan(t, 2, 7, 1, true)
	plain := encodePlan(t, 2, 7, 1, false)
	p, err := OpenPlanAt(bytes.NewReader(indexed), int64(len(indexed)))
	if err != nil {
		t.Fatal(err)
	}
	// Swap the backing bytes for the plain encoding (same plan, no
	// trailer): the random-access view still says Indexed, the stream
	// says otherwise.
	p.r = bytes.NewReader(plain)
	p.size = int64(len(plain))
	if _, err := p.Check(); err == nil || !strings.Contains(err.Error(), "inconsistent") {
		t.Fatalf("Check on inconsistent views = %v, want inconsistency error", err)
	}
}

// TestAdversarialHeaders drives every crafted hostile input through the
// stream decoder and OpenPlanAt: clean errors, no panics.
func TestAdversarialHeaders(t *testing.T) {
	for i, data := range adversarialHeaders() {
		d, err := NewDecoder(bytes.NewReader(data))
		if err == nil {
			for range d.Rounds() {
			}
			err = d.Err()
		}
		if err == nil {
			t.Fatalf("adversarial input %d decoded cleanly", i)
		}
		if msg := err.Error(); !strings.HasPrefix(msg, "schedio: ") {
			t.Fatalf("adversarial input %d: unwrapped error %q", i, msg)
		}
		if p, err := OpenPlanAt(bytes.NewReader(data), int64(len(data))); err == nil {
			if _, err := p.Check(); err == nil {
				t.Fatalf("adversarial input %d passed PlanAt.Check", i)
			}
		}
	}
}

// TestDecoderAllocationBound is the acceptance bound made executable:
// decoding a tiny hostile input must not allocate more than a fixed
// multiple of the bytes actually read. The decoder's fixed footprint is
// its 32 KiB read buffer; everything beyond that budget would mean a
// declared count was trusted for allocation.
func TestDecoderAllocationBound(t *testing.T) {
	inputs := adversarialHeaders()
	const perDecodeBudget = 256 << 10 // fixed footprint + slack, per decode

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const reps = 8
	for r := 0; r < reps; r++ {
		for _, data := range inputs {
			d, err := NewDecoder(bytes.NewReader(data))
			if err != nil {
				continue
			}
			for range d.Rounds() {
			}
		}
	}
	runtime.ReadMemStats(&after)
	total := after.TotalAlloc - before.TotalAlloc
	budget := uint64(reps * len(inputs) * perDecodeBudget)
	if total > budget {
		t.Fatalf("decoding %d tiny hostile inputs allocated %d bytes (budget %d)",
			reps*len(inputs), total, budget)
	}
}

// TestDecoderConcurrentClaim: a second, concurrent Rounds call fails
// with a clean error; the winner's decode is unaffected.
func TestDecoderConcurrentClaim(t *testing.T) {
	enc := encodePlan(t, 2, 7, 0, false)
	d, err := NewDecoder(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	counts := make([]int, 4)
	for g := range counts {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for range d.Rounds() {
				counts[g]++
			}
		}(g)
	}
	wg.Wait()
	winners, rounds := 0, 0
	for _, c := range counts {
		if c > 0 {
			winners++
			rounds = c
		}
	}
	if winners != 1 || rounds != 7 {
		t.Fatalf("winners = %d, rounds = %d (want exactly one winner with 7)", winners, rounds)
	}
	if err := d.Err(); err == nil || !strings.Contains(err.Error(), "already consumed") {
		t.Fatalf("losers' error = %v", err)
	}
}
