package topo

import (
	"testing"
	"testing/quick"

	"sparsehypercube/internal/graph"
)

func TestPermRankRoundTrip(t *testing.T) {
	for n := 1; n <= 6; n++ {
		seen := map[string]bool{}
		for r := 0; r < factorial[n]; r++ {
			p := PermOfRank(n, r)
			if RankOfPerm(p) != r {
				t.Fatalf("n=%d rank %d: round trip gave %d", n, r, RankOfPerm(p))
			}
			key := string(p)
			if seen[key] {
				t.Fatalf("n=%d: permutation %v repeated", n, p)
			}
			seen[key] = true
			// Must be a permutation.
			mask := 0
			for _, x := range p {
				mask |= 1 << x
			}
			if mask != 1<<uint(n)-1 {
				t.Fatalf("n=%d rank %d: not a permutation: %v", n, r, p)
			}
		}
	}
	if p := PermOfRank(4, 0); p[0] != 0 || p[3] != 3 {
		t.Errorf("rank 0 should be the identity, got %v", p)
	}
}

func TestPermOfRankPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { PermOfRank(0, 0) },
		func() { PermOfRank(3, 6) },
		func() { PermOfRank(3, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestStarGraphInvariants(t *testing.T) {
	// Known diameters: floor(3(n-1)/2).
	wantDiam := map[int]int{2: 1, 3: 3, 4: 4, 5: 6}
	for n := 2; n <= 5; n++ {
		g := StarGraph(n)
		if g.NumVertices() != factorial[n] {
			t.Fatalf("S_%d order %d", n, g.NumVertices())
		}
		if g.MaxDegree() != n-1 || g.MinDegree() != n-1 {
			t.Fatalf("S_%d not (n-1)-regular", n)
		}
		if g.NumEdges() != factorial[n]*(n-1)/2 {
			t.Fatalf("S_%d edges %d", n, g.NumEdges())
		}
		if !graph.IsConnected(g) {
			t.Fatalf("S_%d disconnected", n)
		}
		if d := graph.Diameter(g); d != wantDiam[n] {
			t.Fatalf("diam(S_%d) = %d, want %d", n, d, wantDiam[n])
		}
		if !graph.IsBipartite(g) {
			t.Fatalf("S_%d must be bipartite (transpositions change parity)", n)
		}
	}
}

func TestPancakeInvariants(t *testing.T) {
	// Known pancake-graph diameters.
	wantDiam := map[int]int{2: 1, 3: 3, 4: 4, 5: 5}
	for n := 2; n <= 5; n++ {
		g := Pancake(n)
		if g.NumVertices() != factorial[n] {
			t.Fatalf("P_%d order %d", n, g.NumVertices())
		}
		if g.MaxDegree() != n-1 || g.MinDegree() != n-1 {
			t.Fatalf("P_%d not (n-1)-regular", n)
		}
		if !graph.IsConnected(g) {
			t.Fatalf("P_%d disconnected", n)
		}
		if d := graph.Diameter(g); d != wantDiam[n] {
			t.Fatalf("diam(P_%d) = %d, want %d", n, d, wantDiam[n])
		}
	}
}

// S_3 is the 6-cycle — a nice cross-check of the generator.
func TestStarGraph3IsC6(t *testing.T) {
	g := StarGraph(3)
	if g.NumVertices() != 6 || g.NumEdges() != 6 || g.MaxDegree() != 2 {
		t.Fatal("S_3 should be C_6")
	}
	if graph.Diameter(g) != 3 {
		t.Fatal("diam(C_6) = 3")
	}
}

// Property: star-graph adjacency is an involution (swapping back returns).
func TestStarAdjacencyInvolution(t *testing.T) {
	f := func(rankRaw uint16, iRaw uint8) bool {
		n := 5
		r := int(rankRaw) % factorial[n]
		i := int(iRaw)%(n-1) + 1
		p := PermOfRank(n, r)
		p[0], p[i] = p[i], p[0]
		r2 := RankOfPerm(p)
		p[0], p[i] = p[i], p[0]
		return RankOfPerm(p) == r && r2 != r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
