package topo

import (
	"fmt"

	"sparsehypercube/internal/graph"
)

// Permutation-based interconnection networks cited in the paper's
// introduction as alternative low-degree topologies: the star graph
// (Akers-Krishnamurthy) and the pancake graph. Vertices are the n!
// permutations of {0,..,n-1}, identified by their factorial-number-system
// rank; PermOfRank/RankOfPerm expose the numbering.

// factorials up to 12! (beyond any constructible size here).
var factorial = [...]int{1, 1, 2, 6, 24, 120, 720, 5040, 40320, 362880, 3628800, 39916800, 479001600}

// PermOfRank returns the rank-th permutation of {0..n-1} in Lehmer-code
// order (rank 0 is the identity).
func PermOfRank(n, rank int) []uint8 {
	if n < 1 || n > 10 {
		panic("topo: permutation size out of [1,10]")
	}
	if rank < 0 || rank >= factorial[n] {
		panic(fmt.Sprintf("topo: rank %d out of [0,%d)", rank, factorial[n]))
	}
	avail := make([]uint8, n)
	for i := range avail {
		avail[i] = uint8(i)
	}
	perm := make([]uint8, n)
	for i := 0; i < n; i++ {
		f := factorial[n-1-i]
		idx := rank / f
		rank %= f
		perm[i] = avail[idx]
		avail = append(avail[:idx], avail[idx+1:]...)
	}
	return perm
}

// RankOfPerm inverts PermOfRank.
func RankOfPerm(perm []uint8) int {
	n := len(perm)
	rank := 0
	for i := 0; i < n; i++ {
		smaller := 0
		for j := i + 1; j < n; j++ {
			if perm[j] < perm[i] {
				smaller++
			}
		}
		rank += smaller * factorial[n-1-i]
	}
	return rank
}

// StarGraph returns the star graph S_n: permutations of {0..n-1}, with an
// edge when one results from the other by swapping positions 0 and i for
// some i >= 1. Regular of degree n-1, order n!, diameter
// floor(3(n-1)/2). n in [2, 7] (7! = 5040 vertices).
func StarGraph(n int) *graph.Graph {
	if n < 2 || n > 7 {
		panic("topo: star graph size out of [2,7]")
	}
	order := factorial[n]
	b := graph.NewBuilder(order)
	buf := make([]uint8, n)
	for r := 0; r < order; r++ {
		perm := PermOfRank(n, r)
		for i := 1; i < n; i++ {
			copy(buf, perm)
			buf[0], buf[i] = buf[i], buf[0]
			r2 := RankOfPerm(buf)
			if r < r2 {
				b.AddEdge(r, r2)
			}
		}
	}
	return b.Finish()
}

// Pancake returns the pancake graph P_n: permutations of {0..n-1}, with
// an edge when one results from the other by reversing a prefix of length
// 2..n. Regular of degree n-1, order n!. n in [2, 7].
func Pancake(n int) *graph.Graph {
	if n < 2 || n > 7 {
		panic("topo: pancake graph size out of [2,7]")
	}
	order := factorial[n]
	b := graph.NewBuilder(order)
	buf := make([]uint8, n)
	for r := 0; r < order; r++ {
		perm := PermOfRank(n, r)
		for l := 2; l <= n; l++ {
			copy(buf, perm)
			for i, j := 0, l-1; i < j; i, j = i+1, j-1 {
				buf[i], buf[j] = buf[j], buf[i]
			}
			r2 := RankOfPerm(buf)
			if r < r2 {
				b.AddEdge(r, r2)
			}
		}
	}
	return b.Finish()
}
