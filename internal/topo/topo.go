// Package topo generates the interconnection topologies the paper builds
// on or cites as context: binary hypercubes and their degree- or
// diameter-oriented variants, rings, trees, and the degree-3 broadcast tree
// of Theorem 1. All generators return immutable graph.Graph values with a
// documented vertex numbering so experiments can address vertices
// symbolically (bit strings, (cycle, position) pairs, ...).
package topo

import (
	"fmt"

	"sparsehypercube/internal/graph"
)

// Hypercube returns the binary n-cube Q_n: vertices are the integers
// 0..2^n-1 read as bit strings; u ~ v iff they differ in exactly one bit.
// Degree n, diameter n, 2^(n-1)*n edges.
func Hypercube(n int) *graph.Graph {
	checkCubeDim(n, 26)
	order := 1 << uint(n)
	b := graph.NewBuilder(order)
	for u := 0; u < order; u++ {
		for i := 0; i < n; i++ {
			v := u ^ (1 << uint(i))
			if u < v {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Finish()
}

// FoldedHypercube returns FQ_n: Q_n plus the complementary "fold" edges
// {u, ^u}. Degree n+1, diameter ceil(n/2).
func FoldedHypercube(n int) *graph.Graph {
	checkCubeDim(n, 26)
	order := 1 << uint(n)
	b := graph.NewBuilder(order)
	mask := order - 1
	for u := 0; u < order; u++ {
		for i := 0; i < n; i++ {
			v := u ^ (1 << uint(i))
			if u < v {
				b.AddEdge(u, v)
			}
		}
		if v := u ^ mask; u < v {
			b.AddEdge(u, v)
		}
	}
	return b.Finish()
}

// CrossedCube returns CQ_n (Efe 1991), a diameter-halving twist of Q_n.
// For each vertex u and each "leading" bit l there is exactly one neighbor:
// flip bit l; keep bit l-1 when l is odd; and replace every full 2-bit
// block strictly below l's block by its pair-related partner
// (00<->00, 10<->10, 01<->11). Degree n, diameter ceil((n+1)/2).
func CrossedCube(n int) *graph.Graph {
	checkCubeDim(n, 20)
	order := 1 << uint(n)
	b := graph.NewBuilder(order)
	for u := 0; u < order; u++ {
		for l := 0; l < n; l++ {
			v := crossedNeighbor(u, l)
			if u < v {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Finish()
}

// crossedNeighbor returns the unique CQ_n neighbor of u across leading
// bit l. The pair-relation partner of block b1b0 flips b1 iff b0 == 1.
func crossedNeighbor(u, l int) int {
	v := u ^ (1 << uint(l))
	for blk := 0; blk < l/2; blk++ {
		if v&(1<<uint(2*blk)) != 0 { // low bit of block set: flip high bit
			v ^= 1 << uint(2*blk+1)
		}
	}
	return v
}

// CubeConnectedCycles returns CCC_n (Preparata–Vuillemin): each hypercube
// vertex is replaced by an n-cycle; vertex id is cube*n + pos, with cycle
// edges (cube, pos)~(cube, pos±1 mod n) and cube edges
// (cube, pos)~(cube xor 2^pos, pos). Degree 3 (for n >= 3), n*2^n vertices.
func CubeConnectedCycles(n int) *graph.Graph {
	checkCubeDim(n, 20)
	if n < 3 {
		panic("topo: CCC requires n >= 3")
	}
	order := n << uint(n)
	b := graph.NewBuilder(order)
	id := func(cube, pos int) int { return cube*n + pos }
	for cube := 0; cube < 1<<uint(n); cube++ {
		for pos := 0; pos < n; pos++ {
			b.AddEdge(id(cube, pos), id(cube, (pos+1)%n))
			other := cube ^ (1 << uint(pos))
			if cube < other {
				b.AddEdge(id(cube, pos), id(other, pos))
			}
		}
	}
	return b.Finish()
}

// DeBruijn returns the undirected binary de Bruijn graph UB(2, n):
// vertices 0..2^n-1, u adjacent to (2u mod 2^n) and (2u+1 mod 2^n)
// (shift-in edges), undirected, self-loops dropped. Max degree 4.
func DeBruijn(n int) *graph.Graph {
	checkCubeDim(n, 24)
	order := 1 << uint(n)
	mask := order - 1
	b := graph.NewBuilder(order)
	for u := 0; u < order; u++ {
		for _, v := range []int{(u << 1) & mask, ((u << 1) | 1) & mask} {
			if u != v {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Finish()
}

// Cycle returns the cycle C_n (n >= 3).
func Cycle(n int) *graph.Graph {
	if n < 3 {
		panic("topo: cycle requires n >= 3")
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Finish()
}

// Path returns the path P_n on n vertices (n >= 1).
func Path(n int) *graph.Graph {
	if n < 1 {
		panic("topo: path requires n >= 1")
	}
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Finish()
}

// Complete returns K_n.
func Complete(n int) *graph.Graph {
	if n < 1 {
		panic("topo: complete graph requires n >= 1")
	}
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Finish()
}

// Star returns the star K_{1,n-1}: vertex 0 is the center. The paper notes
// this is the fewest-edge member of G_k for every k >= 2.
func Star(n int) *graph.Graph {
	if n < 2 {
		panic("topo: star requires n >= 2")
	}
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	return b.Finish()
}

// Torus returns the rows x cols wraparound grid (each dimension >= 3 to
// avoid multi-edges).
func Torus(rows, cols int) *graph.Graph {
	if rows < 3 || cols < 3 {
		panic("topo: torus requires rows, cols >= 3")
	}
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddEdge(id(r, c), id((r+1)%rows, c))
			b.AddEdge(id(r, c), id(r, (c+1)%cols))
		}
	}
	return b.Finish()
}

// Mesh returns the rows x cols grid without wraparound.
func Mesh(rows, cols int) *graph.Graph {
	if rows < 1 || cols < 1 {
		panic("topo: mesh requires rows, cols >= 1")
	}
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
		}
	}
	return b.Finish()
}

func checkCubeDim(n, max int) {
	if n < 1 || n > max {
		panic(fmt.Sprintf("topo: dimension %d out of supported range [1,%d]", n, max))
	}
}
