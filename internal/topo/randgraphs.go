package topo

import (
	"fmt"
	"math/rand"

	"sparsehypercube/internal/graph"
)

// Random graph families for the general-graph (CSR engine) workloads:
// the differential validator suite and benchtab's map-vs-CSR curve need
// connected sparse graphs that are nothing like hypercubes — random
// regular graphs (the Fraigniaud–Harutyunyan sparse-broadcast regime)
// and random k-trees (the Hollander Shabtai–Roditty line-broadcast
// topology), plus the Erdős–Rényi and tree-plus-chords mixes the tests
// sweep. All constructions are deterministic in (parameters, seed).

// Gnp returns an Erdős–Rényi G(n, p) sample: every unordered pair is an
// edge independently with probability p. O(n^2) — intended for test
// sizes. The sample may be disconnected.
func Gnp(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Finish()
}

// RandomConnected returns a connected graph on n vertices: a random
// recursive tree (vertex v attaches to a uniform earlier vertex) plus
// extra uniformly random chords (duplicates coalesce, so the realised
// chord count can be lower).
func RandomConnected(n, extra int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(v, rng.Intn(v))
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.Finish()
}

// RandomRegular returns a uniform-ish random d-regular simple graph on n
// vertices via the configuration (pairing) model with edge-swap repair:
// d stubs per vertex are paired uniformly, then self-loops and duplicate
// edges are removed by swapping endpoints with uniformly chosen partner
// edges (each swap preserves the degree sequence). Requires 0 <= d < n
// and n*d even. The result can in principle be disconnected for tiny d;
// for d >= 3 it essentially never is.
func RandomRegular(n, d int, seed int64) *graph.Graph {
	if d < 0 || d >= n || n*d%2 != 0 {
		panic(fmt.Sprintf("topo: RandomRegular(%d, %d) needs 0 <= d < n and n*d even", n, d))
	}
	rng := rand.New(rand.NewSource(seed))
	m := n * d / 2
	stubs := make([]int32, n*d)
	for v := 0; v < n; v++ {
		for j := 0; j < d; j++ {
			stubs[v*d+j] = int32(v)
		}
	}
	edges := make([][2]int32, m)
	key := func(u, v int32) [2]int32 {
		if u > v {
			u, v = v, u
		}
		return [2]int32{u, v}
	}
	for {
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		cnt := make(map[[2]int32]int, m)
		for i := range edges {
			edges[i] = key(stubs[2*i], stubs[2*i+1])
			cnt[edges[i]]++
		}
		bad := func(e [2]int32) bool { return e[0] == e[1] || cnt[e] > 1 }
		// Swap repair: each pass visits the offending edges and tries to
		// swap each with a random partner; degree sequence is invariant.
		repaired := false
		for pass := 0; pass < 200 && !repaired; pass++ {
			repaired = true
			for i := range edges {
				if !bad(edges[i]) {
					continue
				}
				repaired = false
				for try := 0; try < 50; try++ {
					j := rng.Intn(m)
					if j == i {
						continue
					}
					a, b1 := edges[i][0], edges[i][1]
					c, d1 := edges[j][0], edges[j][1]
					// Propose {a,c} and {b1,d1} (or the cross pairing).
					if rng.Intn(2) == 1 {
						c, d1 = d1, c
					}
					e1, e2 := key(a, c), key(b1, d1)
					if e1[0] == e1[1] || e2[0] == e2[1] {
						continue
					}
					// Reject if either proposal already exists (beyond the
					// two edges being retired).
					cnt[edges[i]]--
					cnt[edges[j]]--
					if cnt[e1] > 0 || cnt[e2] > 0 || e1 == e2 {
						cnt[edges[i]]++
						cnt[edges[j]]++
						continue
					}
					cnt[e1]++
					cnt[e2]++
					edges[i], edges[j] = e1, e2
					break
				}
			}
		}
		if !repaired {
			continue // pathological shuffle: start over
		}
		b := graph.NewBuilder(n)
		for _, e := range edges {
			b.AddEdge(int(e[0]), int(e[1]))
		}
		return b.Finish()
	}
}

// RandomKTree returns a random k-tree on n vertices: vertices 0..k form
// a (k+1)-clique, and every later vertex is joined to the k vertices of
// a uniformly chosen existing k-clique (the standard Markov growth
// process, the topology of the Hollander Shabtai–Roditty line-broadcast
// model). Requires n >= k+1 and k >= 1. The result is connected with
// exactly k*(k+1)/2 + (n-k-1)*k edges: the base clique plus k per later
// vertex.
func RandomKTree(n, k int, seed int64) *graph.Graph {
	if k < 1 || n < k+1 {
		panic(fmt.Sprintf("topo: RandomKTree(%d, %d) needs k >= 1 and n >= k+1", n, k))
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for u := 0; u <= k; u++ {
		for v := u + 1; v <= k; v++ {
			b.AddEdge(u, v)
		}
	}
	// The k-cliques of the current k-tree, flat: clique i is
	// cliques[i*k : (i+1)*k]. The base (k+1)-clique contributes its k+1
	// k-subsets.
	cliques := make([]int32, 0, (1+(k+1)+(n-k-1)*k)*k)
	for drop := 0; drop <= k; drop++ {
		for u := 0; u <= k; u++ {
			if u != drop {
				cliques = append(cliques, int32(u))
			}
		}
	}
	for v := k + 1; v < n; v++ {
		ci := rng.Intn(len(cliques) / k)
		c := cliques[ci*k : (ci+1)*k]
		for _, u := range c {
			b.AddEdge(v, int(u))
		}
		// New k-cliques: c with each member replaced by v.
		for drop := 0; drop < k; drop++ {
			for i, u := range c {
				if i == drop {
					cliques = append(cliques, int32(v))
				} else {
					cliques = append(cliques, u)
				}
			}
		}
	}
	return b.Finish()
}
