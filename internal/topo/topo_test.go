package topo

import (
	"testing"
	"testing/quick"

	"sparsehypercube/internal/graph"
)

func TestHypercubeInvariants(t *testing.T) {
	for n := 1; n <= 10; n++ {
		g := Hypercube(n)
		order := 1 << uint(n)
		if g.NumVertices() != order {
			t.Fatalf("Q_%d order %d", n, g.NumVertices())
		}
		if g.NumEdges() != n*order/2 {
			t.Fatalf("Q_%d edges %d, want %d", n, g.NumEdges(), n*order/2)
		}
		if g.MaxDegree() != n || g.MinDegree() != n {
			t.Fatalf("Q_%d not %d-regular", n, n)
		}
		if n <= 8 {
			if d := graph.Diameter(g); d != n {
				t.Fatalf("diam(Q_%d) = %d", n, d)
			}
			if !graph.IsBipartite(g) {
				t.Fatalf("Q_%d not bipartite", n)
			}
		}
	}
}

func TestHypercubeDistanceIsHamming(t *testing.T) {
	g := Hypercube(6)
	d := graph.BFS(g, 0)
	for v := 0; v < g.NumVertices(); v++ {
		pop := 0
		for x := v; x != 0; x &= x - 1 {
			pop++
		}
		if int(d[v]) != pop {
			t.Fatalf("dist(0,%06b) = %d, want popcount %d", v, d[v], pop)
		}
	}
}

func TestFoldedHypercube(t *testing.T) {
	for n := 2; n <= 8; n++ {
		g := FoldedHypercube(n)
		order := 1 << uint(n)
		if g.NumEdges() != n*order/2+order/2 {
			t.Fatalf("FQ_%d edges %d", n, g.NumEdges())
		}
		if g.MaxDegree() != n+1 || g.MinDegree() != n+1 {
			t.Fatalf("FQ_%d not (n+1)-regular", n)
		}
		if d := graph.Diameter(g); d != (n+1)/2 {
			t.Fatalf("diam(FQ_%d) = %d, want %d", n, d, (n+1)/2)
		}
	}
}

func TestCrossedCube(t *testing.T) {
	// CQ_1 = K_2, CQ_2 = C_4.
	if g := CrossedCube(1); g.NumEdges() != 1 {
		t.Fatal("CQ_1 wrong")
	}
	if g := CrossedCube(2); g.NumEdges() != 4 || graph.Diameter(g) != 2 {
		t.Fatal("CQ_2 should be C_4")
	}
	for n := 1; n <= 9; n++ {
		g := CrossedCube(n)
		order := 1 << uint(n)
		if g.NumEdges() != n*order/2 {
			t.Fatalf("CQ_%d edges %d, want %d", n, g.NumEdges(), n*order/2)
		}
		if g.MaxDegree() != n || g.MinDegree() != n {
			t.Fatalf("CQ_%d not %d-regular", n, n)
		}
		if !graph.IsConnected(g) {
			t.Fatalf("CQ_%d disconnected", n)
		}
		// Known diameter ceil((n+1)/2).
		if d := graph.Diameter(g); d != (n+2)/2 {
			t.Fatalf("diam(CQ_%d) = %d, want %d", n, d, (n+2)/2)
		}
	}
}

func TestCubeConnectedCycles(t *testing.T) {
	for n := 3; n <= 6; n++ {
		g := CubeConnectedCycles(n)
		order := n << uint(n)
		if g.NumVertices() != order {
			t.Fatalf("CCC_%d order %d", n, g.NumVertices())
		}
		// 3-regular: each vertex has 2 cycle edges + 1 cube edge.
		if g.MaxDegree() != 3 || g.MinDegree() != 3 {
			t.Fatalf("CCC_%d not 3-regular (max %d min %d)", n, g.MaxDegree(), g.MinDegree())
		}
		if g.NumEdges() != 3*order/2 {
			t.Fatalf("CCC_%d edges %d", n, g.NumEdges())
		}
		if !graph.IsConnected(g) {
			t.Fatalf("CCC_%d disconnected", n)
		}
	}
}

func TestDeBruijn(t *testing.T) {
	for n := 2; n <= 10; n++ {
		g := DeBruijn(n)
		if g.NumVertices() != 1<<uint(n) {
			t.Fatalf("UB_%d order", n)
		}
		if g.MaxDegree() > 4 {
			t.Fatalf("UB_%d max degree %d > 4", n, g.MaxDegree())
		}
		if !graph.IsConnected(g) {
			t.Fatalf("UB_%d disconnected", n)
		}
		if n <= 8 {
			// de Bruijn diameter is n.
			if d := graph.Diameter(g); d > n {
				t.Fatalf("diam(UB_%d) = %d > n", n, d)
			}
		}
	}
}

func TestElementaryGraphs(t *testing.T) {
	if g := Cycle(7); g.NumEdges() != 7 || graph.Diameter(g) != 3 {
		t.Error("C_7 wrong")
	}
	if g := Path(5); g.NumEdges() != 4 || graph.Diameter(g) != 4 {
		t.Error("P_5 wrong")
	}
	if g := Complete(6); g.NumEdges() != 15 || graph.Diameter(g) != 1 {
		t.Error("K_6 wrong")
	}
	if g := Star(8); g.NumEdges() != 7 || g.Degree(0) != 7 || graph.Diameter(g) != 2 {
		t.Error("K_{1,7} wrong")
	}
	if g := Torus(3, 4); g.NumVertices() != 12 || g.MaxDegree() != 4 || g.MinDegree() != 4 {
		t.Error("torus wrong")
	}
	if g := Mesh(3, 4); g.NumEdges() != 3*3+2*4 {
		t.Errorf("mesh edges %d", g.NumEdges())
	}
}

func TestCompleteBinaryTree(t *testing.T) {
	for h := 0; h <= 8; h++ {
		g := CompleteBinaryTree(h)
		if g.NumVertices() != 1<<uint(h+1)-1 {
			t.Fatalf("CBT(%d) order %d", h, g.NumVertices())
		}
		if !graph.IsTree(g) {
			t.Fatalf("CBT(%d) not a tree", h)
		}
		if h >= 1 && g.MaxDegree() != 3 && h != 1 {
			t.Fatalf("CBT(%d) max degree %d", h, g.MaxDegree())
		}
		if e := graph.Eccentricity(g, 0); e != h {
			t.Fatalf("CBT(%d) root ecc %d", h, e)
		}
	}
}

// Theorem 1's three conditions: Delta = 3, max distance <= 2h, order 3*2^h-2.
func TestTriTreeTheorem1Conditions(t *testing.T) {
	for h := 1; h <= 9; h++ {
		g := TriTree(h)
		if g.NumVertices() != TriTreeOrder(h) {
			t.Fatalf("T_%d order %d, want %d", h, g.NumVertices(), TriTreeOrder(h))
		}
		if !graph.IsTree(g) {
			t.Fatalf("T_%d not a tree", h)
		}
		if g.MaxDegree() != 3 {
			t.Fatalf("T_%d max degree %d, want 3", h, g.MaxDegree())
		}
		if h <= 7 {
			if d := graph.Diameter(g); d != 2*h {
				t.Fatalf("diam(T_%d) = %d, want %d", h, d, 2*h)
			}
		}
		if g.Degree(TriTreeCenter) != 3 {
			t.Fatalf("T_%d center degree %d", h, g.Degree(TriTreeCenter))
		}
		for br := 0; br < 3; br++ {
			r := TriTreeBranchRoot(h, br)
			if !g.HasEdge(TriTreeCenter, r) {
				t.Fatalf("T_%d center not adjacent to branch root %d", h, r)
			}
		}
	}
}

func TestBinomialTree(t *testing.T) {
	for n := 1; n <= 10; n++ {
		g := BinomialTree(n)
		if g.NumVertices() != 1<<uint(n) || !graph.IsTree(g) {
			t.Fatalf("B_%d wrong", n)
		}
		if g.Degree(0) != n {
			t.Fatalf("B_%d root degree %d", n, g.Degree(0))
		}
		// The binomial tree is a spanning tree of the hypercube.
		q := Hypercube(n)
		bad := false
		g.Edges(func(u, v int) {
			if !q.HasEdge(u, v) {
				bad = true
			}
		})
		if bad {
			t.Fatalf("B_%d has non-hypercube edge", n)
		}
	}
}

func TestBitStringRoundTrip(t *testing.T) {
	if s := BitString(0b1010, 4); s != "1010" {
		t.Errorf("BitString = %q", s)
	}
	if s := BitString(3, 5); s != "00011" {
		t.Errorf("BitString = %q", s)
	}
	v, err := ParseBitString("01101")
	if err != nil || v != 13 {
		t.Errorf("ParseBitString = %d, %v", v, err)
	}
	if _, err := ParseBitString("01x"); err == nil {
		t.Error("expected parse error")
	}
	if _, err := ParseBitString(""); err == nil {
		t.Error("expected error on empty string")
	}
	f := func(vRaw uint32, nRaw uint8) bool {
		n := int(nRaw)%32 + 1
		v := uint64(vRaw) & (1<<uint(n) - 1)
		got, err := ParseBitString(BitString(v, n))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: crossed cube neighbor relation is an involution across each
// leading bit.
func TestCrossedNeighborInvolution(t *testing.T) {
	f := func(uRaw uint16, lRaw uint8) bool {
		n := 10
		u := int(uRaw) & (1<<uint(n) - 1)
		l := int(lRaw) % n
		v := crossedNeighbor(u, l)
		return v != u && crossedNeighbor(v, l) == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
