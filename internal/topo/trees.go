package topo

import (
	"fmt"

	"sparsehypercube/internal/graph"
)

// CompleteBinaryTree returns the complete binary tree of height h in heap
// numbering: vertex 0 is the root, children of v are 2v+1 and 2v+2.
// Order 2^(h+1)-1; height 0 is the single vertex.
func CompleteBinaryTree(h int) *graph.Graph {
	if h < 0 || h > 24 {
		panic("topo: complete binary tree height out of range [0,24]")
	}
	order := 1<<uint(h+1) - 1
	b := graph.NewBuilder(order)
	for v := 1; v < order; v++ {
		b.AddEdge(v, (v-1)/2)
	}
	return b.Finish()
}

// TriTreeOrder returns |V(T_h)| = 3*2^h - 2.
func TriTreeOrder(h int) int { return 3<<uint(h) - 2 }

// TriTree returns the Theorem-1 graph T_h: a center vertex joined to the
// roots of three complete binary trees of height h-1. It satisfies
// Delta = 3 (for h >= 1... the center has degree 3; internal tree vertices
// have degree 3; leaves degree 1), max pairwise distance exactly 2h, and
// order 3*2^h - 2.
//
// Numbering: vertex 0 is the center; branch b in {0,1,2} occupies the
// contiguous range [1 + b*s, 1 + (b+1)*s) where s = 2^h - 1, in heap order
// within the branch (the branch root is the first vertex of the range).
func TriTree(h int) *graph.Graph {
	if h < 1 || h > 24 {
		panic("topo: tri-tree height out of range [1,24]")
	}
	s := 1<<uint(h) - 1 // size of each branch
	order := 1 + 3*s
	b := graph.NewBuilder(order)
	for branch := 0; branch < 3; branch++ {
		base := 1 + branch*s
		b.AddEdge(0, base)
		for v := 1; v < s; v++ {
			b.AddEdge(base+v, base+(v-1)/2)
		}
	}
	return b.Finish()
}

// TriTreeCenter is the center vertex of TriTree numbering.
const TriTreeCenter = 0

// TriTreeBranchRoot returns the root vertex of branch b (0..2) of T_h.
func TriTreeBranchRoot(h, branch int) int {
	if branch < 0 || branch > 2 {
		panic("topo: branch out of range")
	}
	return 1 + branch*(1<<uint(h)-1)
}

// BinomialTree returns the binomial tree B_n on 2^n vertices: the spanning
// tree of Q_n traced by the classic store-and-forward broadcast. Vertex
// labels are the hypercube labels; v's parent clears v's highest set bit.
func BinomialTree(n int) *graph.Graph {
	checkCubeDim(n, 26)
	order := 1 << uint(n)
	b := graph.NewBuilder(order)
	for v := 1; v < order; v++ {
		b.AddEdge(v, v&^highestBit(v))
	}
	return b.Finish()
}

func highestBit(x int) int {
	h := 1
	for h<<1 <= x {
		h <<= 1
	}
	return h
}

// BitString renders vertex v of a 2^n-vertex cube-like graph as an n-bit
// string, most significant bit first (dimension n down to dimension 1 in
// the paper's numbering).
func BitString(v uint64, n int) string {
	buf := make([]byte, n)
	for i := 0; i < n; i++ {
		if v&(1<<uint(n-1-i)) != 0 {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}

// ParseBitString parses an MSB-first bit string into a vertex id.
func ParseBitString(s string) (uint64, error) {
	var v uint64
	if len(s) == 0 || len(s) > 64 {
		return 0, fmt.Errorf("topo: bit string length %d out of range", len(s))
	}
	for _, c := range s {
		switch c {
		case '0':
			v <<= 1
		case '1':
			v = v<<1 | 1
		default:
			return 0, fmt.Errorf("topo: invalid bit %q in %q", c, s)
		}
	}
	return v, nil
}
