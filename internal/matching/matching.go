// Package matching implements maximum bipartite matching (Kuhn's
// augmenting-path algorithm). The store-and-forward broadcast baseline
// uses it to maximise the number of newly informed vertices per round.
package matching

// Bipartite computes a maximum matching in a bipartite graph given as
// adjacency lists from the left side (nLeft vertices) to the right side
// (nRight vertices). It returns matchL (for each left vertex, the matched
// right vertex or -1) and the matching size.
//
// Kuhn's algorithm runs in O(V*E); the broadcast rounds it serves involve
// at most a few thousand vertices, far below where Hopcroft-Karp would
// matter.
func Bipartite(nLeft, nRight int, adj [][]int) (matchL []int, size int) {
	if len(adj) != nLeft {
		panic("matching: adjacency length mismatch")
	}
	matchL = make([]int, nLeft)
	matchR := make([]int, nRight)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	visited := make([]bool, nRight)
	var tryAugment func(u int) bool
	tryAugment = func(u int) bool {
		for _, v := range adj[u] {
			if v < 0 || v >= nRight {
				panic("matching: right vertex out of range")
			}
			if visited[v] {
				continue
			}
			visited[v] = true
			if matchR[v] == -1 || tryAugment(matchR[v]) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		return false
	}
	for u := 0; u < nLeft; u++ {
		for i := range visited {
			visited[i] = false
		}
		if tryAugment(u) {
			size++
		}
	}
	return matchL, size
}
