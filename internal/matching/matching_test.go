package matching

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPerfectMatching(t *testing.T) {
	// K_{3,3}: perfect matching of size 3.
	adj := [][]int{{0, 1, 2}, {0, 1, 2}, {0, 1, 2}}
	matchL, size := Bipartite(3, 3, adj)
	if size != 3 {
		t.Fatalf("size = %d, want 3", size)
	}
	seen := map[int]bool{}
	for u, v := range matchL {
		if v < 0 || seen[v] {
			t.Fatalf("invalid matching %v", matchL)
		}
		seen[v] = true
		_ = u
	}
}

func TestAugmentingRequired(t *testing.T) {
	// Greedy would match L0-R0 and block L1; augmenting fixes it.
	adj := [][]int{{0}, {0, 1}}
	_, size := Bipartite(2, 2, adj)
	if size != 2 {
		t.Fatalf("size = %d, want 2", size)
	}
}

func TestNoEdges(t *testing.T) {
	matchL, size := Bipartite(3, 3, [][]int{{}, {}, {}})
	if size != 0 {
		t.Fatalf("size = %d, want 0", size)
	}
	for _, v := range matchL {
		if v != -1 {
			t.Fatal("unmatched vertex should be -1")
		}
	}
}

func TestStarShape(t *testing.T) {
	// All left vertices compete for one right vertex.
	adj := [][]int{{0}, {0}, {0}}
	_, size := Bipartite(3, 1, adj)
	if size != 1 {
		t.Fatalf("size = %d, want 1", size)
	}
}

func TestKnownMaximum(t *testing.T) {
	// A bipartite graph whose maximum matching (3) is smaller than both
	// sides: L0-{R0}, L1-{R0,R1}, L2-{R1}, L3-{R2}.
	adj := [][]int{{0}, {0, 1}, {1}, {2}}
	_, size := Bipartite(4, 3, adj)
	if size != 3 {
		t.Fatalf("size = %d, want 3", size)
	}
}

// bruteMaxMatching finds the maximum matching size by exhaustive search.
func bruteMaxMatching(nLeft, nRight int, adj [][]int) int {
	best := 0
	usedR := make([]bool, nRight)
	var rec func(u, size int)
	rec = func(u, size int) {
		if size > best {
			best = size
		}
		if u == nLeft {
			return
		}
		rec(u+1, size) // skip u
		for _, v := range adj[u] {
			if !usedR[v] {
				usedR[v] = true
				rec(u+1, size+1)
				usedR[v] = false
			}
		}
	}
	rec(0, 0)
	return best
}

// Property: Kuhn's result equals brute force on random small graphs.
func TestMatchingOptimalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nL, nR := rng.Intn(6)+1, rng.Intn(6)+1
		adj := make([][]int, nL)
		for u := range adj {
			for v := 0; v < nR; v++ {
				if rng.Intn(3) == 0 {
					adj[u] = append(adj[u], v)
				}
			}
		}
		matchL, size := Bipartite(nL, nR, adj)
		// Validity: matched pairs are edges, right side distinct.
		seen := map[int]bool{}
		for u, v := range matchL {
			if v == -1 {
				continue
			}
			ok := false
			for _, w := range adj[u] {
				if w == v {
					ok = true
				}
			}
			if !ok || seen[v] {
				return false
			}
			seen[v] = true
		}
		return size == bruteMaxMatching(nL, nR, adj)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
