// Package bitvec implements fixed-size bit sets tuned for the broadcast
// machinery: informed-vertex sets, dominating-set checks and label-class
// masks over vertex spaces of up to a few million elements.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// Set is a fixed-capacity bit set over the universe [0, Len()).
// The zero value is an empty set of capacity 0; use New to size one.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set with universe size n.
func New(n int) *Set {
	if n < 0 {
		panic("bitvec: negative size")
	}
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the universe size.
func (s *Set) Len() int { return s.n }

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, s.n))
	}
}

// Get reports whether bit i is set.
func (s *Set) Get(i int) bool {
	s.check(i)
	return s.words[i>>6]&(1<<uint(i&63)) != 0
}

// Set sets bit i.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i>>6] |= 1 << uint(i&63)
}

// TestAndSet sets bit i and reports whether it was already set. It is the
// one-bit analogue of a map insert-and-check, used by the streaming
// validator's disjointness sets.
func (s *Set) TestAndSet(i int) bool {
	s.check(i)
	mask := uint64(1) << uint(i&63)
	old := s.words[i>>6]&mask != 0
	s.words[i>>6] |= mask
	return old
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i>>6] &^= 1 << uint(i&63)
}

// Flip toggles bit i.
func (s *Set) Flip(i int) {
	s.check(i)
	s.words[i>>6] ^= 1 << uint(i&63)
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// All reports whether every bit in the universe is set.
func (s *Set) All() bool { return s.Count() == s.n }

// None reports whether the set is empty.
func (s *Set) None() bool { return !s.Any() }

// Reset clears all bits.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill sets all bits in the universe.
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// trim zeroes the tail bits beyond the universe size.
func (s *Set) trim() {
	if r := uint(s.n & 63); r != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << r) - 1
	}
}

func (s *Set) sameSize(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitvec: size mismatch %d vs %d", s.n, t.n))
	}
}

// UnionWith sets s = s | t. The sets must have equal universe size.
func (s *Set) UnionWith(t *Set) {
	s.sameSize(t)
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// IntersectWith sets s = s & t.
func (s *Set) IntersectWith(t *Set) {
	s.sameSize(t)
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
}

// DifferenceWith sets s = s &^ t.
func (s *Set) DifferenceWith(t *Set) {
	s.sameSize(t)
	for i := range s.words {
		s.words[i] &^= t.words[i]
	}
}

// SymmetricDifferenceWith sets s = s ^ t.
func (s *Set) SymmetricDifferenceWith(t *Set) {
	s.sameSize(t)
	for i := range s.words {
		s.words[i] ^= t.words[i]
	}
}

// ContainsAll reports whether t is a subset of s.
func (s *Set) ContainsAll(t *Set) bool {
	s.sameSize(t)
	for i := range s.words {
		if t.words[i]&^s.words[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and t share a set bit.
func (s *Set) Intersects(t *Set) bool {
	s.sameSize(t)
	for i := range s.words {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and t contain the same bits.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of t (equal sizes required).
func (s *Set) CopyFrom(t *Set) {
	s.sameSize(t)
	copy(s.words, t.words)
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// there is none.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	w := i >> 6
	if word := s.words[w] >> uint(i&63); word != 0 {
		return i + bits.TrailingZeros64(word)
	}
	for w++; w < len(s.words); w++ {
		if s.words[w] != 0 {
			return w<<6 + bits.TrailingZeros64(s.words[w])
		}
	}
	return -1
}

// ForEach calls fn for every set bit in increasing order.
func (s *Set) ForEach(fn func(i int)) {
	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) {
		fn(i)
	}
}

// Slice returns the indices of the set bits in increasing order.
func (s *Set) Slice() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// String renders the set as {i, j, ...}.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}
