package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if s.Len() != 130 || s.Any() || s.Count() != 0 {
		t.Fatal("new set not empty")
	}
	s.Set(0)
	s.Set(63)
	s.Set(64)
	s.Set(129)
	if s.Count() != 4 {
		t.Fatalf("Count = %d, want 4", s.Count())
	}
	for _, i := range []int{0, 63, 64, 129} {
		if !s.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if s.Get(1) || s.Get(128) {
		t.Error("unexpected bit set")
	}
	s.Clear(63)
	if s.Get(63) || s.Count() != 3 {
		t.Error("Clear failed")
	}
	s.Flip(63)
	s.Flip(0)
	if !s.Get(63) || s.Get(0) || s.Count() != 3 {
		t.Error("Flip failed")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, fn := range []func(){
		func() { s.Get(10) },
		func() { s.Set(-1) },
		func() { s.Clear(11) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestFillResetAll(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 127, 128, 200} {
		s := New(n)
		s.Fill()
		if !s.All() || s.Count() != n {
			t.Errorf("n=%d: Fill gave Count=%d", n, s.Count())
		}
		s.Reset()
		if !s.None() {
			t.Errorf("n=%d: Reset left bits", n)
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	a, b := New(100), New(100)
	for i := 0; i < 100; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Set(i)
	}
	u := a.Clone()
	u.UnionWith(b)
	in := a.Clone()
	in.IntersectWith(b)
	// |A∪B| = |A| + |B| - |A∩B|
	if u.Count() != a.Count()+b.Count()-in.Count() {
		t.Error("inclusion-exclusion violated")
	}
	d := a.Clone()
	d.DifferenceWith(b)
	if d.Count() != a.Count()-in.Count() {
		t.Error("difference count wrong")
	}
	x := a.Clone()
	x.SymmetricDifferenceWith(b)
	if x.Count() != u.Count()-in.Count() {
		t.Error("symmetric difference count wrong")
	}
	if !u.ContainsAll(a) || !u.ContainsAll(b) || !a.ContainsAll(in) {
		t.Error("ContainsAll wrong")
	}
	if in.Count() > 0 != a.Intersects(b) {
		t.Error("Intersects wrong")
	}
}

func TestNextSetAndForEach(t *testing.T) {
	s := New(300)
	want := []int{0, 5, 64, 128, 199, 299}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d bits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order: got %v, want %v", got, want)
		}
	}
	if s.NextSet(300) != -1 || s.NextSet(200) != 299 || s.NextSet(-5) != 0 {
		t.Error("NextSet boundaries wrong")
	}
	sl := s.Slice()
	for i := range want {
		if sl[i] != want[i] {
			t.Fatalf("Slice: got %v, want %v", sl, want)
		}
	}
}

func TestEqualClone(t *testing.T) {
	a := New(70)
	a.Set(3)
	a.Set(69)
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone not equal")
	}
	b.Flip(10)
	if a.Equal(b) {
		t.Error("mutated clone still equal")
	}
	c := New(71)
	if a.Equal(c) {
		t.Error("different sizes reported equal")
	}
	b.CopyFrom(a)
	if !a.Equal(b) {
		t.Error("CopyFrom failed")
	}
}

func TestString(t *testing.T) {
	s := New(10)
	if s.String() != "{}" {
		t.Errorf("empty String = %q", s.String())
	}
	s.Set(1)
	s.Set(7)
	if s.String() != "{1, 7}" {
		t.Errorf("String = %q", s.String())
	}
}

// Property: De Morgan over random operations — (A∪B) difference A equals
// B difference (A∩B).
func TestDeMorganProperty(t *testing.T) {
	f := func(seedA, seedB int64, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		a, b := randSet(seedA, n), randSet(seedB, n)
		left := a.Clone()
		left.UnionWith(b)
		left.DifferenceWith(a)
		right := b.Clone()
		ab := a.Clone()
		ab.IntersectWith(b)
		right.DifferenceWith(ab)
		return left.Equal(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Count equals the number of distinct indices inserted.
func TestCountProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%500 + 1
		rng := rand.New(rand.NewSource(seed))
		s := New(n)
		ref := map[int]bool{}
		for i := 0; i < 3*n; i++ {
			v := rng.Intn(n)
			s.Set(v)
			ref[v] = true
		}
		return s.Count() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func randSet(seed int64, n int) *Set {
	rng := rand.New(rand.NewSource(seed))
	s := New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			s.Set(i)
		}
	}
	return s
}

func TestTestAndSet(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 63, 64, 129} {
		if s.TestAndSet(i) {
			t.Fatalf("TestAndSet(%d) on clear bit reported set", i)
		}
		if !s.Get(i) {
			t.Fatalf("TestAndSet(%d) did not set the bit", i)
		}
		if !s.TestAndSet(i) {
			t.Fatalf("second TestAndSet(%d) reported clear", i)
		}
	}
	if s.Count() != 4 {
		t.Fatalf("Count() = %d, want 4", s.Count())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("TestAndSet out of range did not panic")
		}
	}()
	s.TestAndSet(130)
}
