package broadcast

import (
	"fmt"

	"sparsehypercube/internal/graph"
	"sparsehypercube/internal/linecomm"
	"sparsehypercube/internal/matching"
)

// StoreForwardSchedule computes a store-and-forward (k = 1) broadcast
// schedule on g from src, maximising the number of newly informed vertices
// each round with a maximum bipartite matching between informed vertices
// and their uninformed neighbors. This is the classic baseline model the
// paper contrasts with k-line communication: on Q_n it completes in the
// minimum n rounds; on low-degree graphs it exhibits the bottleneck that
// motivates longer calls.
func StoreForwardSchedule(g *graph.Graph, src int) (*linecomm.Schedule, error) {
	n := g.NumVertices()
	if src < 0 || src >= n {
		return nil, fmt.Errorf("broadcast: source %d outside [0,%d)", src, n)
	}
	informed := make([]bool, n)
	informed[src] = true
	informedCount := 1
	sched := &linecomm.Schedule{Source: uint64(src)}
	for informedCount < n {
		// Build the bipartite instance: left = informed vertices with at
		// least one uninformed neighbor, right = uninformed vertices.
		var left []int
		rightIndex := make([]int, n)
		for i := range rightIndex {
			rightIndex[i] = -1
		}
		var right []int
		for v := 0; v < n; v++ {
			if !informed[v] {
				rightIndex[v] = len(right)
				right = append(right, v)
			}
		}
		adj := make([][]int, 0, informedCount)
		for v := 0; v < n; v++ {
			if !informed[v] {
				continue
			}
			var row []int
			for _, w := range g.Neighbors(v) {
				if !informed[w] {
					row = append(row, rightIndex[w])
				}
			}
			if len(row) > 0 {
				left = append(left, v)
				adj = append(adj, row)
			}
		}
		matchL, size := matching.Bipartite(len(left), len(right), adj)
		if size == 0 {
			return nil, fmt.Errorf("broadcast: graph disconnected, %d vertices unreachable", n-informedCount)
		}
		var round linecomm.Round
		for i, v := range left {
			if matchL[i] < 0 {
				continue
			}
			w := right[matchL[i]]
			round = append(round, linecomm.Call{Path: []uint64{uint64(v), uint64(w)}})
			informed[w] = true
			informedCount++
		}
		sched.Rounds = append(sched.Rounds, round)
	}
	return sched, nil
}
