package broadcast

import (
	"fmt"
	"math/bits"

	"sparsehypercube/internal/graph"
	"sparsehypercube/internal/intmath"
	"sparsehypercube/internal/linecomm"
)

// Exhaustive minimum-time k-line broadcast decision for small graphs.
// This is a construction-agnostic certificate: it knows nothing about
// sparse hypercubes and searches the raw scheduling space, so agreement
// with the paper's schemes is independent evidence for Theorems 4 and 6
// (and disagreement on ablated graphs shows the checker has teeth).

// ExhaustiveLimitVertices bounds the searchable graph order.
const ExhaustiveLimitVertices = 26

// maxPathsPerPair caps path enumeration to keep the search sane; hit only
// on dense graphs with large k, which the experiments avoid.
const maxPathsPerPair = 512

// pathCand is a candidate call: a concrete path with its edge mask.
type pathCand struct {
	path  []uint64
	edges uint64 // bit mask over edge ids
	to    int
}

// Checker decides minimum-time k-line broadcast feasibility on one graph.
type Checker struct {
	g     *graph.Graph
	k     int
	n     int
	tau   int          // ceil(log2 n)
	cands [][]pathCand // per source vertex: all simple paths of length <= k
}

// NewChecker prepares the path tables for g and k.
func NewChecker(g *graph.Graph, k int) (*Checker, error) {
	n := g.NumVertices()
	if n < 2 || n > ExhaustiveLimitVertices {
		return nil, fmt.Errorf("broadcast: exhaustive checker supports 2..%d vertices, got %d",
			ExhaustiveLimitVertices, n)
	}
	if g.NumEdges() > 64 {
		return nil, fmt.Errorf("broadcast: exhaustive checker supports <= 64 edges, got %d", g.NumEdges())
	}
	if k < 1 {
		return nil, fmt.Errorf("broadcast: k = %d < 1", k)
	}
	edgeID := make(map[[2]int]int)
	g.Edges(func(u, v int) {
		edgeID[[2]int{u, v}] = len(edgeID)
	})
	eid := func(u, v int) int {
		if u > v {
			u, v = v, u
		}
		return edgeID[[2]int{u, v}]
	}
	c := &Checker{g: g, k: k, n: n, tau: intmath.CeilLog2(uint64(n)), cands: make([][]pathCand, n)}
	for src := 0; src < n; src++ {
		var out []pathCand
		onPath := make([]bool, n)
		onPath[src] = true
		pathBuf := []uint64{uint64(src)}
		var dfs func(v int, edges uint64) error
		dfs = func(v int, edges uint64) error {
			if len(pathBuf)-1 >= 1 {
				if len(out) >= maxPathsPerPair*4 {
					return fmt.Errorf("broadcast: path explosion from vertex %d", src)
				}
				cp := make([]uint64, len(pathBuf))
				copy(cp, pathBuf)
				out = append(out, pathCand{path: cp, edges: edges, to: v})
			}
			if len(pathBuf)-1 == c.k {
				return nil
			}
			for _, w := range c.g.Neighbors(v) {
				if onPath[w] {
					continue
				}
				onPath[w] = true
				pathBuf = append(pathBuf, uint64(w))
				if err := dfs(int(w), edges|1<<uint(eid(v, int(w)))); err != nil {
					return err
				}
				pathBuf = pathBuf[:len(pathBuf)-1]
				onPath[w] = false
			}
			return nil
		}
		for _, w := range g.Neighbors(src) {
			onPath[w] = true
			pathBuf = append(pathBuf, uint64(w))
			if err := dfs(int(w), 1<<uint(eid(src, int(w)))); err != nil {
				return nil, err
			}
			pathBuf = pathBuf[:1]
			onPath[w] = false
		}
		c.cands[src] = out
	}
	return c, nil
}

// MinimumRounds returns the broadcast round lower bound for the graph.
func (c *Checker) MinimumRounds() int { return c.tau }

// FeasibleFrom reports whether a minimum-time k-line broadcast from src
// exists, returning a witness schedule when it does.
func (c *Checker) FeasibleFrom(src int) (bool, *linecomm.Schedule) {
	full := uint32(1)<<uint(c.n) - 1
	failed := make(map[uint64]bool) // (round, informed) -> proven infeasible
	rounds := make([]linecomm.Round, 0, c.tau)

	var solve func(round int, informed uint32) bool
	solve = func(round int, informed uint32) bool {
		if informed == full {
			// Trim empty trailing rounds.
			return true
		}
		if round == c.tau {
			return false
		}
		key := uint64(informed)<<5 | uint64(round)
		if failed[key] {
			return false
		}
		// Doubling prune: remaining rounds must be able to cover.
		need := c.n - bits.OnesCount32(informed)
		if bits.OnesCount32(informed)*((1<<uint(c.tau-round))-1) < need {
			failed[key] = true
			return false
		}
		callers := make([]int, 0, bits.OnesCount32(informed))
		for v := 0; v < c.n; v++ {
			if informed&(1<<uint(v)) != 0 {
				callers = append(callers, v)
			}
		}
		var roundCalls linecomm.Round
		var assign func(i int, usedEdges uint64, newInf uint32) bool
		assign = func(i int, usedEdges uint64, newInf uint32) bool {
			if i == len(callers) {
				if newInf == 0 {
					return false // no progress; skip-everything branch is useless
				}
				rounds = append(rounds, append(linecomm.Round(nil), roundCalls...))
				if solve(round+1, informed|newInf) {
					return true
				}
				rounds = rounds[:len(rounds)-1]
				return false
			}
			// Prune: even if every remaining caller informs one vertex, can
			// the doubling requirement still be met?
			potential := bits.OnesCount32(informed) + bits.OnesCount32(newInf) + (len(callers) - i)
			if potential*(1<<uint(c.tau-round-1)) < c.n {
				return false
			}
			caller := callers[i]
			for _, cand := range c.cands[caller] {
				tgt := uint32(1) << uint(cand.to)
				if informed&tgt != 0 || newInf&tgt != 0 {
					continue
				}
				if usedEdges&cand.edges != 0 {
					continue
				}
				roundCalls = append(roundCalls, linecomm.Call{Path: cand.path})
				if assign(i+1, usedEdges|cand.edges, newInf|tgt) {
					return true
				}
				roundCalls = roundCalls[:len(roundCalls)-1]
			}
			// Caller skips this round.
			return assign(i+1, usedEdges, newInf)
		}
		if assign(0, 0, 0) {
			return true
		}
		failed[key] = true
		return false
	}
	if solve(0, 1<<uint(src)) {
		return true, &linecomm.Schedule{Source: uint64(src), Rounds: rounds}
	}
	return false, nil
}

// IsKMLBG reports whether g is a minimal k-line broadcast graph: broadcast
// completes in ceil(log2 N) rounds from every source. On failure it
// returns a witness source with no minimum-time scheme.
func IsKMLBG(g *graph.Graph, k int) (bool, int, error) {
	c, err := NewChecker(g, k)
	if err != nil {
		return false, -1, err
	}
	for src := 0; src < g.NumVertices(); src++ {
		if ok, _ := c.FeasibleFrom(src); !ok {
			return false, src, nil
		}
	}
	return true, -1, nil
}
