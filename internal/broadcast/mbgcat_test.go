package broadcast

import (
	"testing"

	"sparsehypercube/internal/graph"
	"sparsehypercube/internal/intmath"
)

// Every catalogued minimum broadcast graph must (a) carry exactly B(N)
// edges and (b) be certified a 1-mlbg by the exhaustive checker — the
// paper's §2 baseline class, re-verified rather than trusted.
func TestCatalogueIsCorrect(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 6, 7, 8, 16} {
		g, err := MinimumBroadcastGraph(n)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumEdges() != KnownB[n] {
			t.Errorf("N=%d: %d edges, want B(N) = %d", n, g.NumEdges(), KnownB[n])
		}
		if !graph.IsConnected(g) {
			t.Fatalf("N=%d: disconnected", n)
		}
		ok, src, err := IsKMLBG(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("N=%d: catalogued graph fails 1-mlbg check from source %d", n, src)
		}
	}
}

func TestCatalogueUnknownSize(t *testing.T) {
	if _, err := MinimumBroadcastGraph(9); err == nil {
		t.Error("expected error for uncatalogued size")
	}
	g, err := MinimumBroadcastGraph(1)
	if err != nil || g.NumVertices() != 1 {
		t.Error("singleton graph wrong")
	}
}

// Dropping any edge from a catalogued graph must break the 1-mlbg
// property (they are edge-minimal broadcast graphs).
func TestCatalogueEdgeMinimal(t *testing.T) {
	for _, n := range []int{4, 5, 6, 7, 8} {
		g, err := MinimumBroadcastGraph(n)
		if err != nil {
			t.Fatal(err)
		}
		var edges [][2]int
		g.Edges(func(u, v int) { edges = append(edges, [2]int{u, v}) })
		for drop := range edges {
			b := graph.NewBuilder(g.NumVertices())
			for i, e := range edges {
				if i != drop {
					b.AddEdge(e[0], e[1])
				}
			}
			sub := b.Finish()
			if !graph.IsConnected(sub) {
				continue // disconnection trivially breaks broadcast
			}
			ok, _, err := IsKMLBG(sub, 1)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				t.Errorf("N=%d: dropping edge %v left a 1-mlbg with %d < B(N) edges",
					n, edges[drop], sub.NumEdges())
			}
		}
	}
}

// B(2^p) = p*2^(p-1): hypercubes are the extremal graphs at powers of
// two; the known table must agree.
func TestKnownBAtPowersOfTwo(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4} {
		n := 1 << uint(p)
		if KnownB[n] != p*n/2 {
			t.Errorf("B(%d) = %d, want %d", n, KnownB[n], p*n/2)
		}
	}
	// Consistency with the information bound: B(N) >= ceil((N-1)/1)... at
	// least N-1 edges are needed for connectivity except the degenerate
	// cases; and broadcast time ceil(log2 N) is achievable on each.
	for n, b := range KnownB {
		if n >= 2 && b < n-1 {
			t.Errorf("B(%d) = %d below spanning-tree minimum", n, b)
		}
		_ = intmath.CeilLog2(uint64(n))
	}
}
