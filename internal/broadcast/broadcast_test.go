package broadcast

import (
	"testing"

	"sparsehypercube/internal/graph"
	"sparsehypercube/internal/intmath"
	"sparsehypercube/internal/linecomm"
	"sparsehypercube/internal/topo"
)

// Theorem 1, machine-checked: T_h is a 2h-mlbg — from every source the
// tree scheme completes in ceil(log2(3*2^h-2)) rounds with calls of
// length at most 2h.
func TestTriTreeScheduleAllSources(t *testing.T) {
	for h := 1; h <= 5; h++ {
		g := topo.TriTree(h)
		net := linecomm.GraphNetwork{G: g}
		k := 2 * h
		want := TriTreeMinimumRounds(h)
		for src := 0; src < g.NumVertices(); src++ {
			sched, err := TriTreeSchedule(h, src)
			if err != nil {
				t.Fatal(err)
			}
			res := linecomm.Validate(net, k, sched)
			if err := res.Err(); err != nil {
				t.Fatalf("h=%d src=%d: %v", h, src, err)
			}
			if !res.Complete {
				t.Fatalf("h=%d src=%d: incomplete (%d/%d)", h, src, res.Informed, g.NumVertices())
			}
			if len(sched.Rounds) != want {
				t.Fatalf("h=%d src=%d: %d rounds, want %d", h, src, len(sched.Rounds), want)
			}
			if !res.MinimumTime {
				t.Fatalf("h=%d src=%d: not minimum time", h, src)
			}
			if res.MaxCallLength > k {
				t.Fatalf("h=%d src=%d: call length %d > 2h = %d", h, src, res.MaxCallLength, k)
			}
		}
	}
}

// Larger tri-trees with sampled sources (h = 6, 7: 190 and 382 vertices).
func TestTriTreeScheduleSampled(t *testing.T) {
	for _, h := range []int{6, 7} {
		g := topo.TriTree(h)
		net := linecomm.GraphNetwork{G: g}
		srcs := []int{0, 1, 2, g.NumVertices() / 2, g.NumVertices() - 1}
		for _, src := range srcs {
			sched, err := TriTreeSchedule(h, src)
			if err != nil {
				t.Fatal(err)
			}
			res := linecomm.Validate(net, 2*h, sched)
			if err := res.Err(); err != nil {
				t.Fatalf("h=%d src=%d: %v", h, src, err)
			}
			if !res.MinimumTime {
				t.Fatalf("h=%d src=%d: %d rounds, want %d", h, src, len(sched.Rounds), TriTreeMinimumRounds(h))
			}
		}
	}
}

func TestTriTreeScheduleErrors(t *testing.T) {
	if _, err := TriTreeSchedule(0, 0); err == nil {
		t.Error("expected error for h = 0")
	}
	if _, err := TriTreeSchedule(2, 100); err == nil {
		t.Error("expected error for out-of-range source")
	}
}

// The complete binary tree from its root broadcasts in minimum time; from
// arbitrary sources within one extra round (the slack Theorem 1 absorbs).
func TestCompleteBinaryTreeSchedule(t *testing.T) {
	for h := 1; h <= 6; h++ {
		g := topo.CompleteBinaryTree(h)
		net := linecomm.GraphNetwork{G: g}
		minRounds := intmath.CeilLog2(uint64(g.NumVertices()))
		for src := 0; src < g.NumVertices(); src++ {
			sched, err := CompleteBinaryTreeSchedule(h, src)
			if err != nil {
				t.Fatal(err)
			}
			res := linecomm.Validate(net, 2*h, sched)
			if err := res.Err(); err != nil {
				t.Fatalf("h=%d src=%d: %v", h, src, err)
			}
			if !res.Complete {
				t.Fatalf("h=%d src=%d: incomplete", h, src)
			}
			if len(sched.Rounds) > minRounds+1 {
				t.Fatalf("h=%d src=%d: %d rounds > %d+1", h, src, len(sched.Rounds), minRounds)
			}
			if src == 0 && len(sched.Rounds) != minRounds {
				t.Fatalf("h=%d from root: %d rounds, want %d", h, len(sched.Rounds), minRounds)
			}
		}
	}
	if _, err := CompleteBinaryTreeSchedule(3, -1); err == nil {
		t.Error("expected error for bad source")
	}
}

func TestStoreForwardOnHypercube(t *testing.T) {
	for n := 1; n <= 7; n++ {
		g := topo.Hypercube(n)
		net := linecomm.GraphNetwork{G: g}
		for _, src := range []int{0, g.NumVertices() - 1} {
			sched, err := StoreForwardSchedule(g, src)
			if err != nil {
				t.Fatal(err)
			}
			res := linecomm.Validate(net, 1, sched)
			if err := res.Err(); err != nil {
				t.Fatalf("n=%d src=%d: %v", n, src, err)
			}
			if !res.MinimumTime {
				t.Fatalf("Q_%d store-and-forward took %d rounds, want %d", n, len(sched.Rounds), n)
			}
		}
	}
}

func TestStoreForwardOnPathAndStar(t *testing.T) {
	// P_8 from an end: k = 1 forces 7 rounds (the motivating bottleneck).
	g := topo.Path(8)
	sched, err := StoreForwardSchedule(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Rounds) != 7 {
		t.Errorf("P_8 from end: %d rounds, want 7", len(sched.Rounds))
	}
	res := linecomm.Validate(linecomm.GraphNetwork{G: g}, 1, sched)
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	// Star from center: one leaf per round.
	s := topo.Star(6)
	sched, err = StoreForwardSchedule(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Rounds) != 5 {
		t.Errorf("K_{1,5} from center: %d rounds, want 5", len(sched.Rounds))
	}
}

func TestStoreForwardDisconnected(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {2, 3}})
	if _, err := StoreForwardSchedule(g, 0); err == nil {
		t.Error("expected error on disconnected graph")
	}
	if _, err := StoreForwardSchedule(g, 9); err == nil {
		t.Error("expected error on bad source")
	}
}

// The checker certifies known k-mlbgs.
func TestExhaustiveKnownPositives(t *testing.T) {
	// K_{1,3} is a 2-mlbg (the paper's fewest-edges example).
	if ok, src, err := IsKMLBG(topo.Star(4), 2); err != nil || !ok {
		t.Errorf("K_{1,3} k=2: ok=%v src=%d err=%v", ok, src, err)
	}
	// C_4 is a 2-mlbg.
	if ok, src, err := IsKMLBG(topo.Cycle(4), 2); err != nil || !ok {
		t.Errorf("C_4 k=2: ok=%v src=%d err=%v", ok, src, err)
	}
	// P_4 is a 2-mlbg but not a 1-mlbg.
	if ok, _, err := IsKMLBG(topo.Path(4), 2); err != nil || !ok {
		t.Error("P_4 k=2 should hold")
	}
	if ok, src, err := IsKMLBG(topo.Path(4), 1); err != nil || ok {
		t.Errorf("P_4 k=1 should fail, got ok (src=%d err=%v)", src, err)
	}
	// Q_3 is a 1-mlbg (hypercubes are minimal broadcast graphs).
	if ok, _, err := IsKMLBG(topo.Hypercube(3), 1); err != nil || !ok {
		t.Error("Q_3 k=1 should hold")
	}
	// T_1 = K_{1,3} again via the tri-tree generator, with k from Theorem 1.
	if ok, _, err := IsKMLBG(topo.TriTree(1), 2); err != nil || !ok {
		t.Error("T_1 k=2 should hold")
	}
}

func TestExhaustiveKnownNegatives(t *testing.T) {
	// P_8 with k = 1: ceil(log 8) = 3 rounds cannot cover a path.
	if ok, _, err := IsKMLBG(topo.Path(8), 1); err != nil || ok {
		t.Error("P_8 k=1 should fail")
	}
	// C_8 with k = 1: a cycle spreads at most 2 vertices/round of growth
	// per frontier; 3 rounds reach at most 1+2+4 = 7 < 8... (it does fail).
	if ok, _, err := IsKMLBG(topo.Cycle(8), 1); err != nil || ok {
		t.Error("C_8 k=1 should fail")
	}
}

func TestExhaustiveWitnessIsValid(t *testing.T) {
	g := topo.Cycle(4)
	c, err := NewChecker(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.MinimumRounds() != 2 {
		t.Fatalf("MinimumRounds = %d", c.MinimumRounds())
	}
	ok, sched := c.FeasibleFrom(0)
	if !ok || sched == nil {
		t.Fatal("C_4 from 0 should be feasible")
	}
	res := linecomm.Validate(linecomm.GraphNetwork{G: g}, 2, sched)
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if !res.MinimumTime {
		t.Fatal("witness not minimum time")
	}
}

func TestCheckerLimits(t *testing.T) {
	if _, err := NewChecker(topo.Hypercube(5), 2); err == nil {
		t.Error("expected vertex-limit error (32 > 26)")
	}
	if _, err := NewChecker(topo.Cycle(4), 0); err == nil {
		t.Error("expected k >= 1 error")
	}
	big := topo.Complete(13) // 78 edges > 64
	if _, err := NewChecker(big, 2); err == nil {
		t.Error("expected edge-limit error")
	}
}
