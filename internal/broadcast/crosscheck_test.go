package broadcast

import (
	"math/rand"
	"testing"

	"sparsehypercube/internal/core"
	"sparsehypercube/internal/graph"
	"sparsehypercube/internal/topo"
)

// Independent certification of Fig. 3: the exhaustive scheduler (which
// knows nothing about the construction) confirms G_{4,2} is a 2-mlbg.
func TestExhaustiveCertifiesG42(t *testing.T) {
	s, err := core.NewBase(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	ok, src, err := IsKMLBG(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("exhaustive checker rejects G_{4,2} from source %d", src)
	}
}

// Construct_BASE(5, 2) has 32 vertices — beyond the checker — but its
// k = 3 relaxation on a 16-vertex REC instance is checkable.
func TestExhaustiveCertifiesRec421(t *testing.T) {
	s, err := core.NewRec(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	ok, src, err := IsKMLBG(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("exhaustive checker rejects Construct_REC(4,2,1) from source %d", src)
	}
}

// Ablation: random subgraphs of Q_4 with the same edge budget as G_{4,2}
// (24 edges) are usually not 2-mlbgs — the structure matters, not just
// sparsity. We require at least one failure across seeds (in practice
// most fail) while G_{4,2} always passes.
func TestAblationRandomSparsificationFails(t *testing.T) {
	failures := 0
	trials := 8
	for seed := int64(0); seed < int64(trials); seed++ {
		g := randomSpanningSubgraph(seed, 4, 24)
		ok, _, err := IsKMLBG(g, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			failures++
		}
	}
	if failures == 0 {
		t.Error("every random 24-edge subgraph of Q_4 was a 2-mlbg; ablation has no signal")
	}
	t.Logf("ablation: %d/%d random sparsifications fail to be 2-mlbgs", failures, trials)
}

// randomSpanningSubgraph keeps a random spanning tree of Q_n plus random
// extra cube edges up to the budget, so the result is connected and
// edge-count-matched to the construction.
func randomSpanningSubgraph(seed int64, n, budget int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	q := topo.Hypercube(n)
	order := q.NumVertices()
	var edges [][2]int
	q.Edges(func(u, v int) { edges = append(edges, [2]int{u, v}) })
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	parent := make([]int, order)
	for i := range parent {
		parent[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	b := graph.NewBuilder(order)
	used := 0
	var extra [][2]int
	for _, e := range edges {
		ru, rv := find(e[0]), find(e[1])
		if ru != rv {
			parent[ru] = rv
			b.AddEdge(e[0], e[1])
			used++
		} else {
			extra = append(extra, e)
		}
	}
	for _, e := range extra {
		if used >= budget {
			break
		}
		b.AddEdge(e[0], e[1])
		used++
	}
	return b.Finish()
}
