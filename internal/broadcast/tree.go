// Package broadcast provides broadcast algorithms that are independent of
// the sparse-hypercube construction: the Theorem-1 tree schemes (line
// broadcasting on the degree-3 tri-tree in minimum time), a
// store-and-forward baseline driven by maximum matching, and an exhaustive
// minimum-time k-line checker used to certify small graphs without
// trusting the paper's schemes.
package broadcast

import (
	"fmt"

	"sparsehypercube/internal/intmath"
	"sparsehypercube/internal/linecomm"
	"sparsehypercube/internal/topo"
)

// treeShape abstracts the complete-binary-tree structure the Theorem-1
// schemes recurse over: a children function plus parent pointers for path
// construction. Vertices are the ids of the underlying topo graph.
type treeShape struct {
	parent   []int // parent[v] or -1 at the global root
	children func(v int) (l, r int, ok bool)
}

// path returns the unique tree path between u and v (inclusive).
func (t *treeShape) path(u, v int) []uint64 {
	// Climb both to their LCA, collecting the two half-paths.
	depth := func(x int) int {
		d := 0
		for t.parent[x] >= 0 {
			x = t.parent[x]
			d++
		}
		return d
	}
	du, dv := depth(u), depth(v)
	var up []uint64
	x, y := u, v
	for du > dv {
		up = append(up, uint64(x))
		x = t.parent[x]
		du--
	}
	var down []uint64
	for dv > du {
		down = append(down, uint64(y))
		y = t.parent[y]
		dv--
	}
	for x != y {
		up = append(up, uint64(x))
		down = append(down, uint64(y))
		x = t.parent[x]
		y = t.parent[y]
	}
	up = append(up, uint64(x)) // the LCA
	for i := len(down) - 1; i >= 0; i-- {
		up = append(up, down[i])
	}
	return up
}

// scheduler accumulates calls into rounds.
type scheduler struct {
	shape  *treeShape
	rounds []linecomm.Round
}

func (s *scheduler) call(round, from, to int) {
	for len(s.rounds) <= round {
		s.rounds = append(s.rounds, nil)
	}
	s.rounds[round] = append(s.rounds[round], linecomm.Call{Path: s.shape.path(from, to)})
}

// scheduleRoot broadcasts a complete binary subtree of height t rooted at
// r (which is already informed), starting at round start. Uses t+1 rounds.
// This is shape A of the recursion: r calls its left child, which takes
// over the left subtree, while r keeps feeding the right subtree (shape B).
func (s *scheduler) scheduleRoot(r, t, start int) {
	if t == 0 {
		return
	}
	l, rc, ok := s.shape.children(r)
	if !ok {
		return
	}
	s.call(start, r, l)
	s.scheduleRoot(l, t-1, start+1)
	s.scheduleFeed(r, rc, t-1, start+1)
}

// scheduleFeed broadcasts a complete binary subtree of height t rooted at
// x, none of which is informed, from the external informed owner v (the
// call paths run from v through the tree to x's subtree). Shape B: v calls
// x's left child, handing it the left subtree plus the pendant x, and
// keeps feeding the right subtree. Uses rounds start..start+t.
func (s *scheduler) scheduleFeed(v, x, t, start int) {
	if t == 0 {
		s.call(start, v, x)
		return
	}
	l, r, _ := s.shape.children(x)
	s.call(start, v, l)
	s.schedulePendant(l, x, t-1, start+1)
	s.scheduleFeed(v, r, t-1, start+1)
}

// schedulePendant broadcasts a complete binary subtree of height t rooted
// at the informed vertex r plus one extra uninformed "pendant" vertex q
// (possibly far from r; the call to q routes through foreign vertices,
// which the line model allows). Shape C. Uses rounds start..start+t.
func (s *scheduler) schedulePendant(r, q, t, start int) {
	if t == 0 {
		s.call(start, r, q)
		return
	}
	l, rc, _ := s.shape.children(r)
	s.call(start, r, l)
	s.schedulePendant(l, q, t-1, start+1)
	s.scheduleFeed(r, rc, t-1, start+1)
}

// scheduleInternal broadcasts a complete binary subtree of height t rooted
// at r from an arbitrary informed vertex src inside it. Uses at most
// rounds start..start+t+1 (one more than from the root: src first calls
// the root, then the two halves proceed as usual).
func (s *scheduler) scheduleInternal(src, r, t, start int) {
	if src == r {
		s.scheduleRoot(r, t, start)
		return
	}
	s.call(start, src, r)
	// Descend toward src: the child subtree containing src keeps src as
	// its owner; r feeds the other child subtree.
	l, rc, _ := s.shape.children(r)
	if inSubtree(s.shape, src, l) {
		s.scheduleFeed(r, rc, t-1, start+1)
		s.scheduleInternal(src, l, t-1, start+1)
	} else {
		s.scheduleFeed(r, l, t-1, start+1)
		s.scheduleInternal(src, rc, t-1, start+1)
	}
}

func inSubtree(shape *treeShape, v, root int) bool {
	for v >= 0 {
		if v == root {
			return true
		}
		v = shape.parent[v]
	}
	return false
}

// cbtShape returns the treeShape of topo.CompleteBinaryTree(h) (heap
// numbering: children of v are 2v+1, 2v+2).
func cbtShape(h int) *treeShape {
	order := 1<<uint(h+1) - 1
	parent := make([]int, order)
	parent[0] = -1
	for v := 1; v < order; v++ {
		parent[v] = (v - 1) / 2
	}
	return &treeShape{
		parent: parent,
		children: func(v int) (int, int, bool) {
			l := 2*v + 1
			if l+1 >= order {
				return 0, 0, false
			}
			return l, l + 1, true
		},
	}
}

// CompleteBinaryTreeSchedule returns a line-broadcast schedule for the
// complete binary tree of height h from source src. From the root it is
// minimum time (h+1 = ceil(log2 N) rounds); from other sources it may use
// one extra round (the tree alone is not an mlbg — Theorem 1 wraps three
// of them around a center to absorb the slack).
func CompleteBinaryTreeSchedule(h, src int) (*linecomm.Schedule, error) {
	order := 1<<uint(h+1) - 1
	if src < 0 || src >= order {
		return nil, fmt.Errorf("broadcast: source %d outside [0,%d)", src, order)
	}
	s := &scheduler{shape: cbtShape(h)}
	s.scheduleInternal(src, 0, h, 0)
	return &linecomm.Schedule{Source: uint64(src), Rounds: s.rounds}, nil
}

// triTreeShape returns the treeShape of topo.TriTree(h), with the center's
// children function excluding the given branch root (the center behaves as
// the root of a virtual complete binary tree over the other two branches).
func triTreeShape(h int, excludeBranch int) *treeShape {
	s := 1<<uint(h) - 1
	order := 1 + 3*s
	parent := make([]int, order)
	parent[topo.TriTreeCenter] = -1
	for br := 0; br < 3; br++ {
		base := 1 + br*s
		parent[base] = topo.TriTreeCenter
		for i := 1; i < s; i++ {
			parent[base+i] = base + (i-1)/2
		}
	}
	branchOf := func(v int) int { return (v - 1) / s }
	return &treeShape{
		parent: parent,
		children: func(v int) (int, int, bool) {
			if v == topo.TriTreeCenter {
				var roots []int
				for br := 0; br < 3; br++ {
					if br != excludeBranch {
						roots = append(roots, topo.TriTreeBranchRoot(h, br))
					}
				}
				return roots[0], roots[1], true
			}
			base := 1 + branchOf(v)*s
			i := v - base
			if 2*i+2 >= s {
				return 0, 0, false
			}
			return base + 2*i + 1, base + 2*i + 2, true
		},
	}
}

// TriTreeSchedule returns a minimum-time line-broadcast schedule for the
// Theorem-1 tree T_h from any source: ceil(log2(3*2^h-2)) rounds with
// every call of length at most 2h, certifying T_h as a 2h-mlbg.
func TriTreeSchedule(h, src int) (*linecomm.Schedule, error) {
	if h < 1 {
		return nil, fmt.Errorf("broadcast: TriTree height %d < 1", h)
	}
	order := topo.TriTreeOrder(h)
	if src < 0 || src >= order {
		return nil, fmt.Errorf("broadcast: source %d outside [0,%d)", src, order)
	}
	if h == 1 {
		return triTreeH1Schedule(src), nil
	}
	c := topo.TriTreeCenter
	if src == c {
		// Rounds 0,1: the center hands roots to branches 0 and 1; from
		// round 2 on it feeds branch 2 while branches 0, 1 self-serve.
		shape := triTreeShape(h, 2) // center's virtual children: roots 0, 1
		s := &scheduler{shape: shape}
		r0 := topo.TriTreeBranchRoot(h, 0)
		r1 := topo.TriTreeBranchRoot(h, 1)
		r2 := topo.TriTreeBranchRoot(h, 2)
		s.call(0, c, r0)
		s.scheduleRoot(r0, h-1, 1)
		s.call(1, c, r1)
		s.scheduleRoot(r1, h-1, 2)
		s.scheduleFeed(c, r2, h-1, 2)
		return &linecomm.Schedule{Source: uint64(src), Rounds: s.rounds}, nil
	}
	// Source inside a branch: it calls the center, which then roots the
	// virtual height-h tree over the other two branches, while the source
	// finishes its own branch from wherever it sits.
	sSize := 1<<uint(h) - 1
	br := (src - 1) / sSize
	shape := triTreeShape(h, br)
	s := &scheduler{shape: shape}
	s.call(0, src, c)
	s.scheduleRoot(c, h, 1)
	s.scheduleInternal(src, topo.TriTreeBranchRoot(h, br), h-1, 1)
	return &linecomm.Schedule{Source: uint64(src), Rounds: s.rounds}, nil
}

// triTreeH1Schedule handles T_1 = K_{1,3} (N = 4, 2 rounds) explicitly.
func triTreeH1Schedule(src int) *linecomm.Schedule {
	c := uint64(topo.TriTreeCenter)
	leaves := []uint64{1, 2, 3}
	if src == topo.TriTreeCenter {
		// c -> 1; then c -> 2 and 1 -> (via c) -> 3.
		return &linecomm.Schedule{Source: c, Rounds: []linecomm.Round{
			{{Path: []uint64{c, 1}}},
			{{Path: []uint64{c, 2}}, {Path: []uint64{1, c, 3}}},
		}}
	}
	var others []uint64
	for _, l := range leaves {
		if int(l) != src {
			others = append(others, l)
		}
	}
	u := uint64(src)
	return &linecomm.Schedule{Source: u, Rounds: []linecomm.Round{
		{{Path: []uint64{u, c}}},
		{{Path: []uint64{c, others[0]}}, {Path: []uint64{u, c, others[1]}}},
	}}
}

// TriTreeMinimumRounds returns ceil(log2(3*2^h-2)).
func TriTreeMinimumRounds(h int) int {
	return intmath.CeilLog2(uint64(topo.TriTreeOrder(h)))
}
