package broadcast

import (
	"fmt"

	"sparsehypercube/internal/graph"
)

// Catalog of classic minimum broadcast graphs (the class G_1 the paper's
// §2 surveys, citing Farley; Farley-Hedetniemi-Mitchell-Proskurowski).
// B(N) is the fewest edges of any N-vertex graph in which store-and-
// forward broadcast completes in ceil(log2 N) rounds from every vertex.
// The entries below are the known extremal graphs for small N whose
// optimality is classical; the exhaustive checker re-certifies their
// 1-mlbg property in tests, grounding the paper's "on the other end of
// the scale" discussion.

// KnownB lists established values of B(N) for N = 1..16 (Farley et al.
// 1979; -1 marks values not carried here).
var KnownB = map[int]int{
	1: 0, 2: 1, 3: 2, 4: 4, 5: 5, 6: 6, 7: 8, 8: 12,
	9: 10, 10: 12, 11: 13, 12: 15, 13: 18, 14: 21, 15: 24, 16: 32,
}

// MinimumBroadcastGraph returns a classic N-vertex minimum broadcast
// graph with exactly KnownB[N] edges, for the catalogued sizes
// N in {1, 2, 3, 4, 5, 6, 7, 8, 16}.
func MinimumBroadcastGraph(n int) (*graph.Graph, error) {
	switch n {
	case 1:
		return graph.FromEdges(1, nil), nil
	case 2:
		return graph.FromEdges(2, [][2]int{{0, 1}}), nil
	case 3:
		// P_3: broadcast in 2 rounds from every vertex.
		return graph.FromEdges(3, [][2]int{{0, 1}, {1, 2}}), nil
	case 4:
		// C_4.
		return graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}), nil
	case 5:
		// C_5.
		return graph.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}), nil
	case 6:
		// C_6.
		return graph.FromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}}), nil
	case 7:
		// C_6 plus a center adjacent to two opposite cycle vertices:
		// 8 edges, broadcast in 3 rounds from every vertex.
		return graph.FromEdges(7, [][2]int{
			{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0},
			{6, 0}, {6, 3},
		}), nil
	case 8:
		// Q_3: the hypercube, 12 edges.
		var edges [][2]int
		for u := 0; u < 8; u++ {
			for b := 1; b <= 4; b <<= 1 {
				if v := u ^ b; u < v {
					edges = append(edges, [2]int{u, v})
				}
			}
		}
		return graph.FromEdges(8, edges), nil
	case 16:
		// Q_4: 32 edges (hypercubes are mbgs at powers of two).
		var edges [][2]int
		for u := 0; u < 16; u++ {
			for b := 1; b <= 8; b <<= 1 {
				if v := u ^ b; u < v {
					edges = append(edges, [2]int{u, v})
				}
			}
		}
		return graph.FromEdges(16, edges), nil
	default:
		return nil, fmt.Errorf("broadcast: no catalogued minimum broadcast graph for N = %d", n)
	}
}
