package lint

import (
	"go/ast"
	"go/types"
)

// RefBalance extends mapclose from handles to counted references: every
// `refs.Add(1)` acquire on an atomic refcount in planserver/distverify
// must reach a release on all paths, error returns included. A
// reference settles by:
//
//   - calling release() on the holder (sp.release(), deferred or not)
//   - returning the holder (the caller now owes the release — this is
//     lookupPlan handing its caller the +1)
//   - storing the holder into a field or composite literal (a
//     longer-lived owner takes over)
//   - appending the holder to a slice later passed into a function
//     whose summary (callgraph.go) says it drops references — evict.go's
//     unlock-then-releaseAll(victims) handoff is the sanctioned pattern
//
// A guarded acquire (`if ok { sp.refs.Add(1) }`) exempts later branches
// that test the same guard: `if !ok { return nil, false }` runs exactly
// when the reference was never taken.
var RefBalance = &Analyzer{
	Name: "refbalance",
	Doc:  "require every refs.Add(1) acquire to reach release() or an ownership transfer on all paths",
	Run:  runRefBalance,
}

func runRefBalance(pass *Pass) {
	p := pass.Pkg
	if !inServingScope(p.PkgPath) {
		return
	}
	sums := p.summaries()
	p.eachFuncBody(func(decl *ast.FuncDecl) {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok || !isRefsCounterOp(p, call, true) {
				return true
			}
			// The holder: X in X.refs.Add(1). A non-identifier holder
			// (s.plans[id].refs.Add(1)) already lives in a longer-lived
			// owner and needs no tracking.
			sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			inner := ast.Unparen(sel.X).(*ast.SelectorExpr)
			holder := p.objectOf(inner.X)
			if holder == nil {
				return true
			}
			frames := stmtPath(decl.Body, stmt)
			if frames == nil {
				return true
			}
			w := &ownershipWalk{
				pass: pass, p: p, handle: holder, release: "release",
				settle: "release or ownership transfer", anchor: "refbalance",
				sums: sums, retarget: true,
				guards:   condGuards(p, frames),
				siblings: map[types.Object]bool{},
			}
			if st := w.walkAfter(frames); !st.done() {
				pass.Reportf(call.Pos(), "reference taken by %s.refs.Add(1) never reaches %s.release() or an ownership transfer on the fall-through path (docs/LINTING.md#refbalance)", holder.Name(), holder.Name())
			}
			return true
		})
	})
}
