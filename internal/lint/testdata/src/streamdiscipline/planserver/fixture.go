// Fixture: streamdiscipline violations inside a restricted package
// (loaded as "internal/planserver"). The same constructs are sanctioned
// in the facade fixture, which loads under an unrestricted path.
package planserver

import (
	"bytes"

	"sparsehypercube"
	"sparsehypercube/internal/linecomm"
	"sparsehypercube/internal/schedio"
)

func materialisesInHotPath(plan *sparsehypercube.Plan) int {
	sched := plan.Materialize() // want `Plan.Materialize in a streaming hot path`
	return len(sched.Rounds)
}

func buildsScheduleInHotPath(rounds []linecomm.Round) *linecomm.Schedule {
	return &linecomm.Schedule{Source: 0, Rounds: rounds} // want `Schedule literal in a streaming hot path`
}

func decodesAllInHotPath(data []byte) error {
	_, _, err := schedio.DecodeAll(bytes.NewReader(data)) // want `schedio.DecodeAll materialises the whole plan`
	return err
}

// streamsProperly is the sanctioned pattern: consume the round iterator
// without ever holding the whole schedule.
func streamsProperly(plan *sparsehypercube.Plan) int {
	rounds := 0
	for range plan.Rounds() {
		rounds++
	}
	return rounds
}
