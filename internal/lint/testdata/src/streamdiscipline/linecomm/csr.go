// Fixture: streamdiscipline violations inside a stream-validator file
// of the linecomm package. The file name matters — csr.go is on the
// streamValidatorFiles list, so the same constructs that json.go (this
// fixture's sibling) may use freely are flagged here.
package linecomm

import (
	"bytes"

	"sparsehypercube"
	lc "sparsehypercube/internal/linecomm"
	"sparsehypercube/internal/schedio"
)

func materialisesInEngine(plan *sparsehypercube.Plan) int {
	sched := plan.Materialize() // want `Plan.Materialize in a streaming hot path`
	return len(sched.Rounds)
}

func buildsScheduleInEngine(rounds []lc.Round) *lc.Schedule {
	return &lc.Schedule{Source: 0, Rounds: rounds} // want `Schedule literal in a streaming hot path`
}

func decodesAllInEngine(data []byte) error {
	_, _, err := schedio.DecodeAll(bytes.NewReader(data)) // want `schedio.DecodeAll materialises the whole plan`
	return err
}

// streamsProperly is the sanctioned engine pattern: one round in flight
// at a time, never the whole schedule.
func streamsProperly(plan *sparsehypercube.Plan) int {
	rounds := 0
	for range plan.Rounds() {
		rounds++
	}
	return rounds
}
