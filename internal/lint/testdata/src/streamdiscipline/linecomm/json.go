// Fixture: the same materialising constructs as csr.go, in a linecomm
// file that is NOT on the streamValidatorFiles list — the JSON envelope
// and the serial engine legitimately build Schedules, so nothing here
// may be reported.
package linecomm

import (
	"bytes"

	"sparsehypercube"
	lc "sparsehypercube/internal/linecomm"
	"sparsehypercube/internal/schedio"
)

func materialiseForEnvelope(plan *sparsehypercube.Plan) *sparsehypercube.Schedule {
	return plan.Materialize() // sanctioned: not a stream-validator file
}

func buildScheduleForEnvelope(rounds []lc.Round) *lc.Schedule {
	return &lc.Schedule{Source: 0, Rounds: rounds} // sanctioned outside the validator files
}

func decodeForEnvelope(data []byte) error {
	_, _, err := schedio.DecodeAll(bytes.NewReader(data)) // sanctioned outside the validator files
	return err
}
