// Fixture: the same materialising constructs as the planserver fixture,
// loaded under an unrestricted package path — the facade, examples and
// tests are the sanctioned home of materialisation, so streamdiscipline
// must report nothing here.
package facade

import (
	"sparsehypercube"
	"sparsehypercube/internal/linecomm"
)

func materialiseForSnapshot(plan *sparsehypercube.Plan) *sparsehypercube.Schedule {
	return plan.Materialize() // sanctioned: facade-level snapshot
}

func buildSchedule(rounds []linecomm.Round) *linecomm.Schedule {
	return &linecomm.Schedule{Source: 0, Rounds: rounds} // sanctioned outside hot paths
}
