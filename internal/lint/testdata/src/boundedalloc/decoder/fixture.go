// Fixture: boundedalloc — allocations sized from wire varints must be
// compared against a cap first (the maxRoundCalls discipline), or
// storage must grow only as bytes are read.
package decoder

import (
	"bytes"
	"encoding/binary"
	"errors"
)

const maxEntries = 1 << 20

// unboundedMake sizes an allocation straight from the wire.
func unboundedMake(r *bytes.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	return make([]byte, n), nil // want `allocation sized from varint-decoded "n"`
}

// unboundedThroughConversion: taint survives int(v).
func unboundedThroughConversion(r *bytes.Reader) ([]int, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	count := int(v)
	return make([]int, 0, count), nil // want `allocation sized from varint-decoded "count"`
}

// cappedMake is the sanctioned pattern: the count is checked against a
// named cap before it sizes anything.
func cappedMake(r *bytes.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > maxEntries {
		return nil, errTooBig
	}
	return make([]byte, n), nil
}

// appendGrown is the other sanctioned pattern: storage grows only as
// bytes are actually read, so a hostile count costs nothing.
func appendGrown(r *bytes.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	var out []byte
	for i := uint64(0); i < n; i++ {
		b, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// localUvarint mirrors schedio's decoder method: a method named uvarint
// is a taint source by name, matching the repo's canonical decoder.
type dec struct{ r *bytes.Reader }

func (d *dec) uvarint() (uint64, error) { return binary.ReadUvarint(d.r) }

func unboundedFromMethod(d *dec) ([]uint64, error) {
	count, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	return make([]uint64, count), nil // want `allocation sized from varint-decoded "count"`
}

var errTooBig = errors.New("too big")
