// Fixture: refbalance — every refs.Add(1) acquire reaches release() or
// an ownership transfer on all paths, error returns included. Loaded as
// "internal/planserver".
package planserver

import (
	"errors"
	"sync/atomic"
)

var errFailed = errors.New("failed")

type servedPlan struct {
	refs atomic.Int64
	info string
}

func (sp *servedPlan) release() {
	if sp.refs.Add(-1) == 0 {
		sp.info = ""
	}
}

func releaseAll(sps []*servedPlan) {
	for _, sp := range sps {
		sp.release()
	}
}

type cache struct {
	plans map[string]*servedPlan
}

// acquireAndDrop takes a reference and forgets it.
func (c *cache) acquireAndDrop(id string) {
	sp := c.plans[id]
	sp.refs.Add(1) // want `reference taken by sp.refs.Add\(1\) never reaches`
}

// acquireLeakOnError releases on the happy path but leaks on the error
// return — the path class the churn suite only catches dynamically.
func (c *cache) acquireLeakOnError(id string, fail bool) error {
	sp := c.plans[id]
	sp.refs.Add(1)
	if fail {
		return errFailed // want `return leaks "sp": no release or ownership transfer`
	}
	sp.release()
	return nil
}

// deferredRelease is the worker shape: the reference drops however the
// handler exits.
func (c *cache) deferredRelease(id string, fail bool) error {
	sp := c.plans[id]
	sp.refs.Add(1)
	defer sp.release()
	if fail {
		return errFailed
	}
	return nil
}

// guardedAcquire mirrors lookupPlan: the acquire happens under ok, the
// not-ok branch returns with no reference to drop, and the caller
// inherits the +1 through the return.
func (c *cache) guardedAcquire(id string) (*servedPlan, bool) {
	sp, ok := c.plans[id]
	if ok {
		sp.refs.Add(1)
	}
	if !ok {
		return nil, false
	}
	return sp, true
}

// evictHandoff mirrors evict.go: victims collected under the lock are
// released together after it, through a helper whose summary says it
// drops references.
func (c *cache) evictHandoff(id string) {
	var victims []*servedPlan
	sp := c.plans[id]
	sp.refs.Add(1)
	victims = append(victims, sp)
	releaseAll(victims)
}

// storeTransfer parks the reference in a longer-lived owner.
func (c *cache) storeTransfer(id string) {
	sp := c.plans[id]
	sp.refs.Add(1)
	c.plans[id+"-pinned"] = sp
}
