// Fixture: mapclose — mappings and refcount acquisitions must reach
// their release (or an ownership transfer) on every path.
package user

import (
	"os"

	"sparsehypercube"
	"sparsehypercube/internal/schedio"
)

// leaksOnErrorBranch acquires a mapping, then returns out of a later
// branch without closing it — the PR 5 leak class.
func leaksOnErrorBranch(f *os.File, bad bool) (*schedio.Mapping, error) {
	m, err := schedio.OpenMapping(f)
	if err != nil {
		return nil, err // exempt: the handle never became valid
	}
	if bad {
		return nil, os.ErrInvalid // want `return leaks "m"`
	}
	return m, nil
}

// leaksOnFallThrough acquires and then simply forgets the handle.
func leaksOnFallThrough(path string) {
	p, err := sparsehypercube.OpenPlanFile(path) // want `OpenPlanFile handle "p" never reaches Close`
	if err != nil {
		return
	}
	_ = p.Indexed()
}

// deferredClose is the canonical sanctioned pattern.
func deferredClose(f *os.File) (int64, error) {
	m, err := schedio.OpenMapping(f)
	if err != nil {
		return 0, err
	}
	defer m.Close()
	return m.Size(), nil
}

// closedOnEveryPath releases explicitly on the failure branch and
// transfers ownership to a field on the success path.
type holder struct{ m *schedio.Mapping }

func (h *holder) adopt(f *os.File, bad bool) error {
	m, err := schedio.OpenMapping(f)
	if err != nil {
		return err
	}
	if bad {
		m.Close()
		return os.ErrInvalid
	}
	h.m = m
	return nil
}

// refcountRelease mirrors planserver's lookupPlan contract: the
// acquired reference is released via defer, and the not-found branch is
// exempt.
type plan struct{}

func (*plan) release() {}

type Server struct{ plans map[string]*plan }

func (s *Server) lookupPlan(id string) (*plan, bool) {
	sp, ok := s.plans[id]
	return sp, ok
}

func (s *Server) serves(id string) bool {
	sp, ok := s.lookupPlan(id)
	if !ok {
		return false
	}
	defer sp.release()
	return true
}

// droppedRef takes a reference and forgets to release it.
func (s *Server) droppedRef(id string) {
	sp, ok := s.lookupPlan(id) // want `lookupPlan handle "sp" never reaches release`
	if !ok {
		return
	}
	_ = sp
}
