// Fixture: ctxdeadline — outbound HTTP carries a deadline context and
// its cancel runs on all paths. Loaded as "internal/distverify".
package distverify

import (
	"context"
	"net/http"
	"time"
)

type client struct {
	hc      *http.Client
	timeout time.Duration
}

// postWithDeadline is the sanctioned shape: a per-request timeout
// derived from the caller's context, cancel deferred immediately.
func (c *client) postWithDeadline(ctx context.Context, url string) error {
	rctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// callerDeadline hands the caller's own context straight through: the
// deadline is the caller's responsibility, not flagged here.
func (c *client) callerDeadline(ctx context.Context, url string) (*http.Request, error) {
	return http.NewRequestWithContext(ctx, http.MethodPost, url, nil)
}

// postBareBackground hands the request an undeadlined root context.
func (c *client) postBareBackground(url string) (*http.Request, error) {
	return http.NewRequestWithContext(context.Background(), http.MethodPost, url, nil) // want `context.Background\(\) flows into a network request without a deadline`
}

// postBareVar reaches the same root context through a variable.
func (c *client) postBareVar(url string) (*http.Request, error) {
	ctx := context.Background()
	return http.NewRequestWithContext(ctx, http.MethodPost, url, nil) // want `flows into a network request without a deadline`
}

// postCancelOnly derives a context that can be cancelled but never
// expires on its own: a dead peer wedges the dispatch slot.
func (c *client) postCancelOnly(ctx context.Context, url string) (*http.Request, error) {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	return http.NewRequestWithContext(cctx, http.MethodPost, url, nil) // want `cancel-only context`
}

// cancelLeakedOnError forgets cancel on the error return: the timer and
// the parent context stay pinned.
func (c *client) cancelLeakedOnError(ctx context.Context, url string) (*http.Response, error) {
	rctx, cancel := context.WithTimeout(ctx, c.timeout)
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, url, nil)
	if err != nil {
		return nil, err // want `return leaks "cancel": no cancel call`
	}
	resp, err := c.hc.Do(req)
	cancel()
	return resp, err
}

// cancelNeverCalled drops the cancel on the floor entirely.
func (c *client) cancelNeverCalled(ctx context.Context) {
	_, cancel := context.WithTimeout(ctx, c.timeout) // want `cancel "cancel" is never called on the fall-through path`
	_ = cancel
}

// discardedCancel assigns the cancel to the blank identifier.
func (c *client) discardedCancel(ctx context.Context, url string) (*http.Request, error) {
	rctx, _ := context.WithTimeout(ctx, c.timeout) // want `cancel function is discarded`
	return http.NewRequestWithContext(rctx, http.MethodPost, url, nil)
}

// plainRequest builds a request with no context at all and sends it.
func (c *client) plainRequest(url string) error {
	req, err := http.NewRequest(http.MethodPost, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req) // want `request built with http.NewRequest carries no context`
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// bareGet uses the context-free convenience: no deadline can ever be
// attached.
func (c *client) bareGet(url string) (*http.Response, error) {
	return c.hc.Get(url) // want `http.Get sends without a request context`
}

type watcher struct {
	stop context.CancelFunc
}

// storedCancel transfers the cancel into a longer-lived owner, which
// now owes the call.
func (c *client) storedCancel(ctx context.Context) (context.Context, *watcher) {
	cctx, cancel := context.WithCancel(ctx)
	w := &watcher{stop: cancel}
	return cctx, w
}

// returnedCancel hands both halves to the caller — the helper shape
// WithTimeout itself has.
func (c *client) returnedCancel(ctx context.Context) (context.Context, context.CancelFunc) {
	rctx, cancel := context.WithTimeout(ctx, c.timeout)
	return rctx, cancel
}
