// Fixture: lockheld — no mutex held across blocking calls (file I/O,
// response writes, mmap) in planserver. Loaded as "internal/planserver".
package planserver

import (
	"fmt"
	"net/http"
	"os"
	"sync"

	"sparsehypercube/internal/schedio"
)

type registry struct {
	mu    sync.RWMutex
	paths map[string]string
}

// removesUnderLock unlinks a file inside the critical section.
func (r *registry) removesUnderLock(id string) {
	r.mu.Lock()
	path := r.paths[id]
	delete(r.paths, id)
	os.Remove(path) // want `os.Remove while holding r.mu`
	r.mu.Unlock()
}

// removesAfterUnlock is the sanctioned shape: decide under the lock,
// act after it.
func (r *registry) removesAfterUnlock(id string) {
	r.mu.Lock()
	path := r.paths[id]
	delete(r.paths, id)
	r.mu.Unlock()
	os.Remove(path)
}

// writeJSON mirrors planserver's envelope helper: anything handed the
// ResponseWriter writes at the client's pace.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.WriteHeader(status)
	fmt.Fprintf(w, "%v", v)
}

// respondsUnderDeferredLock holds the lock (via defer) across a
// response write.
func (r *registry) respondsUnderDeferredLock(w http.ResponseWriter, id string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	writeJSON(w, http.StatusOK, r.paths[id]) // want `response write while holding r.mu`
}

// respondsAfterSnapshot snapshots under the lock and writes after.
func (r *registry) respondsAfterSnapshot(w http.ResponseWriter, id string) {
	r.mu.RLock()
	path := r.paths[id]
	r.mu.RUnlock()
	writeJSON(w, http.StatusOK, path)
}

// unlockInBranch: statements after the in-branch unlock are unheld on
// that path, while the fall-through stays held.
func (r *registry) unlockInBranch(w http.ResponseWriter, id string, full bool) {
	r.mu.Lock()
	if full {
		r.mu.Unlock()
		writeJSON(w, http.StatusTooManyRequests, "full") // sanctioned: unlocked on this path
		return
	}
	r.paths[id] = id
	r.mu.Unlock()
}

// mapsUnderLock performs an mmap syscall inside the critical section.
func (r *registry) mapsUnderLock(f *os.File) (*schedio.Mapping, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return schedio.OpenMapping(f) // want `schedio.OpenMapping \(mmap\) while holding r.mu`
}

// annotatedHold is deliberately held and suppressed with a reason; the
// runner must see no diagnostic here.
func (r *registry) annotatedHold(id string) {
	r.mu.Lock()
	//lint:allow lockheld the unlink must stay in this critical section for the fixture
	os.Remove(r.paths[id])
	r.mu.Unlock()
}

// rangeVerifyShaped mirrors the range-verify endpoint's lookup: the
// registry lock covers only the map access; the validation response is
// written after release.
func (r *registry) rangeVerifyShaped(w http.ResponseWriter, id string) {
	r.mu.RLock()
	path, ok := r.paths[id]
	if !ok {
		writeJSON(w, http.StatusNotFound, id) // want `response write while holding r.mu`
	}
	r.mu.RUnlock()
	writeJSON(w, http.StatusOK, path)
}
