// Fixture: lockheld — no mutex held across blocking calls (file I/O,
// response writes, mmap) in planserver. Loaded as "internal/planserver".
package planserver

import (
	"fmt"
	"net/http"
	"os"
	"sync"

	"sparsehypercube/internal/schedio"
)

type registry struct {
	mu    sync.RWMutex
	paths map[string]string
}

// removesUnderLock unlinks a file inside the critical section.
func (r *registry) removesUnderLock(id string) {
	r.mu.Lock()
	path := r.paths[id]
	delete(r.paths, id)
	os.Remove(path) // want `os.Remove while holding r.mu`
	r.mu.Unlock()
}

// removesAfterUnlock is the sanctioned shape: decide under the lock,
// act after it.
func (r *registry) removesAfterUnlock(id string) {
	r.mu.Lock()
	path := r.paths[id]
	delete(r.paths, id)
	r.mu.Unlock()
	os.Remove(path)
}

// writeJSON mirrors planserver's envelope helper: anything handed the
// ResponseWriter writes at the client's pace.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.WriteHeader(status)
	fmt.Fprintf(w, "%v", v)
}

// respondsUnderDeferredLock holds the lock (via defer) across a
// response write.
func (r *registry) respondsUnderDeferredLock(w http.ResponseWriter, id string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	writeJSON(w, http.StatusOK, r.paths[id]) // want `response write while holding r.mu`
}

// respondsAfterSnapshot snapshots under the lock and writes after.
func (r *registry) respondsAfterSnapshot(w http.ResponseWriter, id string) {
	r.mu.RLock()
	path := r.paths[id]
	r.mu.RUnlock()
	writeJSON(w, http.StatusOK, path)
}

// unlockInBranch: statements after the in-branch unlock are unheld on
// that path, while the fall-through stays held.
func (r *registry) unlockInBranch(w http.ResponseWriter, id string, full bool) {
	r.mu.Lock()
	if full {
		r.mu.Unlock()
		writeJSON(w, http.StatusTooManyRequests, "full") // sanctioned: unlocked on this path
		return
	}
	r.paths[id] = id
	r.mu.Unlock()
}

// mapsUnderLock performs an mmap syscall inside the critical section.
func (r *registry) mapsUnderLock(f *os.File) (*schedio.Mapping, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return schedio.OpenMapping(f) // want `schedio.OpenMapping \(mmap\) while holding r.mu`
}

// annotatedHold is deliberately held and suppressed with a reason; the
// runner must see no diagnostic here.
func (r *registry) annotatedHold(id string) {
	r.mu.Lock()
	//lint:allow lockheld the unlink must stay in this critical section for the fixture
	os.Remove(r.paths[id])
	r.mu.Unlock()
}

// rangeVerifyShaped mirrors the range-verify endpoint's lookup: the
// registry lock covers only the map access; the validation response is
// written after release.
func (r *registry) rangeVerifyShaped(w http.ResponseWriter, id string) {
	r.mu.RLock()
	path, ok := r.paths[id]
	if !ok {
		writeJSON(w, http.StatusNotFound, id) // want `response write while holding r.mu`
	}
	r.mu.RUnlock()
	writeJSON(w, http.StatusOK, path)
}

// shard mirrors the sharded session registry: each shard carries its
// own mutex, and the analyzer must track holds per shard lock — a
// violation under sh.mu is reported against that field, and the
// sanctioned shape (mutate under the shard lock, respond after) stays
// clean.
type shard struct {
	mu       sync.RWMutex
	sessions map[string]string
}

type sharded struct {
	shards [4]shard
}

// shardedRespondUnderLock writes the response while the shard's own
// lock is held.
func (s *sharded) shardedRespondUnderLock(w http.ResponseWriter, id string) {
	sh := &s.shards[len(id)%len(s.shards)]
	sh.mu.Lock()
	sh.sessions[id] = id
	writeJSON(w, http.StatusCreated, id) // want `response write while holding sh.mu`
	sh.mu.Unlock()
}

// shardedRespondAfterUnlock is the server's real shape: the shard
// critical section covers only the map insert.
func (s *sharded) shardedRespondAfterUnlock(w http.ResponseWriter, id string) {
	sh := &s.shards[len(id)%len(s.shards)]
	sh.mu.Lock()
	sh.sessions[id] = id
	sh.mu.Unlock()
	writeJSON(w, http.StatusCreated, id)
}

// shardedSweep mirrors the reaper: per-shard snapshot under each
// shard's lock, the file work after every lock is dropped.
func (s *sharded) shardedSweep() {
	var stale []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id := range sh.sessions {
			stale = append(stale, id)
		}
		sh.mu.RUnlock()
	}
	for _, id := range stale {
		os.Remove(id)
	}
}

// removeSpill is the helper shape the summary layer sees through: the
// unlink sits one call below the locked region.
func (r *registry) removeSpill(path string) {
	os.Remove(path)
}

// removesViaHelperUnderLock blocks interprocedurally: the call site is
// flagged with the helper's own blocking reason.
func (r *registry) removesViaHelperUnderLock(id string) {
	r.mu.Lock()
	r.removeSpill(r.paths[id]) // want `call into removeSpill \(os.Remove\) while holding r.mu`
	r.mu.Unlock()
}

// notesWriter receives the ResponseWriter but never writes to it: its
// clean summary overrides the writer-argument heuristic.
func notesWriter(w http.ResponseWriter, id string) string {
	if w == nil {
		return ""
	}
	return id
}

// passesWriterToNonWriterUnderLock is sanctioned — before the summary
// layer, handing the writer to any helper under a lock was flagged.
func (r *registry) passesWriterToNonWriterUnderLock(w http.ResponseWriter, id string) {
	r.mu.Lock()
	r.paths[id] = notesWriter(w, id)
	r.mu.Unlock()
}
