// Fixture: lockheld — the distverify coordinator is in scope: no mutex
// held across file I/O or stream drains. Loaded as
// "internal/distverify".
package distverify

import (
	"io"
	"net/http"
	"os"
	"sync"
)

type tracker struct {
	mu      sync.Mutex
	pending map[int]bool
}

// readsUnderLock reads the plan file for a local fallback while holding
// the dispatch bookkeeping lock.
func (t *tracker) readsUnderLock(path string, idx int) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pending[idx] = false
	return os.ReadFile(path) // want `os.ReadFile while holding t.mu`
}

// readsAfterUnlock is the sanctioned shape: bookkeeping under the lock,
// I/O after it.
func (t *tracker) readsAfterUnlock(path string, idx int) ([]byte, error) {
	t.mu.Lock()
	t.pending[idx] = false
	t.mu.Unlock()
	return os.ReadFile(path)
}

// drainsUnderLock drains a worker response body — paced by the remote
// end — inside the critical section.
func (t *tracker) drainsUnderLock(resp *http.Response, idx int) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.pending, idx)
	return io.ReadAll(resp.Body) // want `io.ReadAll while holding t.mu`
}

// drainsBeforeLock drains first, then records the outcome.
func (t *tracker) drainsBeforeLock(resp *http.Response, idx int) ([]byte, error) {
	body, err := io.ReadAll(resp.Body)
	t.mu.Lock()
	delete(t.pending, idx)
	t.mu.Unlock()
	return body, err
}
