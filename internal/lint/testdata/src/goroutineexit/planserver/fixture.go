// Fixture: goroutineexit — every spawned goroutine selects on a
// stop/done channel or provably terminates. Loaded as
// "internal/planserver".
package planserver

type worker struct {
	stop chan struct{}
	work chan int
}

// spinsForever has no exit at all: the goroutine survives Drain and
// pins its captures for the process lifetime.
func (w *worker) spinsForever() {
	go func() {
		for { // want `goroutine loops forever without an exit condition`
			<-w.work
		}
	}()
}

// selectsOnStop is the reaper shape: a select arm on the stop channel
// returns out of the loop.
func (w *worker) selectsOnStop() {
	go func() {
		for {
			select {
			case <-w.stop:
				return
			case v := <-w.work:
				_ = v
			}
		}
	}()
}

// breaksInnerSelectOnly looks bounded but is not: the unlabeled break
// leaves the select, never the loop.
func (w *worker) breaksInnerSelectOnly() {
	go func() {
		for { // want `goroutine loops forever without an exit condition`
			select {
			case <-w.stop:
				break
			case v := <-w.work:
				_ = v
			}
		}
	}()
}

// labeledBreak exits the loop by name and is sanctioned.
func (w *worker) labeledBreak() {
	go func() {
	drain:
		for {
			select {
			case <-w.stop:
				break drain
			case v := <-w.work:
				_ = v
			}
		}
	}()
}

// pump loops forever; spawning it is the violation, judged through its
// summary rather than its body at the go site.
func (w *worker) pump() {
	for {
		<-w.work
	}
}

func (w *worker) spawnsPump() {
	go w.pump() // want `goroutine runs pump, which loops forever`
}

func (w *worker) callsPumpInBody() {
	go func() {
		w.pump() // want `goroutine calls pump, which loops forever`
	}()
}

// bounded loops carry their own exit condition.
func (w *worker) bounded(n int) {
	go func() {
		for i := 0; i < n; i++ {
			<-w.work
		}
	}()
}

// rangesOverChannel exits when the channel closes — the session-pump
// shape.
func (w *worker) rangesOverChannel() {
	go func() {
		for v := range w.work {
			_ = v
		}
	}()
}
