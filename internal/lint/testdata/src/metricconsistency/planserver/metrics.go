// Fixture: metricconsistency — every atomic metrics field updated is
// rendered by the /metrics writer and vice versa. The check is
// cross-file on purpose: the struct lives here, the handlers in
// handlers.go. Loaded as "internal/planserver".
package planserver

import "sync/atomic"

type metrics struct {
	plansServed  atomic.Int64
	plansEvicted atomic.Int64 // want `updated but never rendered`
	plansStale   atomic.Int64 // want `rendered by the /metrics writer but never updated`
	plansOrphan  atomic.Int64 // want `neither updated nor rendered`
	sampled      atomic.Int64 // want `updated but never rendered`
}
