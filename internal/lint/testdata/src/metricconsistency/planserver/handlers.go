package planserver

import (
	"fmt"
	"net/http"
)

type server struct {
	m metrics
}

func (s *server) handleVerify(w http.ResponseWriter, r *http.Request) {
	s.m.plansServed.Add(1)
	s.m.plansEvicted.Add(1)
	s.m.sampled.Add(1)
	fmt.Fprintln(w, "ok")
}

// snapshot loads a field outside any response-writing function: reading
// a value is not rendering it.
func (s *server) snapshot() int64 {
	return s.m.sampled.Load()
}

// handleMetrics is the exposition writer — identified by its summary
// (it writes the response), not by name.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintf(w, "plans_served %d\n", s.m.plansServed.Load())
	fmt.Fprintf(w, "plans_stale %d\n", s.m.plansStale.Load())
}
