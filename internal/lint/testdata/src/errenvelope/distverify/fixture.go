// Fixture: errenvelope — distverify is in scope: any HTTP surface it
// grows (a status/debug handler beside the coordinator) must answer
// failures with the structured 4xx envelope, never http.Error or a
// naked 5xx. Loaded as "internal/distverify".
package distverify

import (
	"encoding/json"
	"fmt"
	"net/http"
)

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// plainTextRefusal bypasses the envelope a coordinator client parses.
func plainTextRefusal(w http.ResponseWriter, err error) {
	http.Error(w, err.Error(), http.StatusBadRequest) // want `http.Error bypasses the structured error envelope`
}

// nakedServerError turns a malformed range request into a fake server
// failure.
func nakedServerError(w http.ResponseWriter) {
	w.WriteHeader(http.StatusInternalServerError) // want `naked WriteHeader\(500\)`
}

// envelopeWith5xx defeats the contract from inside the helper.
func envelopeWith5xx(w http.ResponseWriter, err error) {
	writeError(w, http.StatusServiceUnavailable, "range: %v", err) // want `writeError with constant status 503`
}

// properRefusal is the sanctioned path: structured, 4xx.
func properRefusal(w http.ResponseWriter, lo, hi int) {
	writeError(w, http.StatusBadRequest, "round range [%d,%d) is empty", lo, hi)
}
