// Fixture: errenvelope — planserver failures answer through the
// structured 4xx envelope, never http.Error or a naked 5xx. Loaded as
// "internal/planserver".
package planserver

import (
	"encoding/json"
	"fmt"
	"net/http"
)

type errorResponse struct {
	Error string `json:"error"`
}

// writeJSON and writeError mirror the real envelope helpers; the
// variable status inside them is the sanctioned pattern.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// plainTextError bypasses the envelope entirely.
func plainTextError(w http.ResponseWriter, err error) {
	http.Error(w, err.Error(), http.StatusBadRequest) // want `http.Error bypasses the structured error envelope`
}

// nakedServerError blames the server for the client's input.
func nakedServerError(w http.ResponseWriter) {
	w.WriteHeader(http.StatusInternalServerError) // want `naked WriteHeader\(500\)`
}

// envelopeWith5xx defeats the contract from inside the helpers.
func envelopeWith5xx(w http.ResponseWriter, err error) {
	writeError(w, http.StatusBadGateway, "decode: %v", err) // want `writeError with constant status 502`
}

// properEnvelope is the sanctioned path: a structured 4xx.
func properEnvelope(w http.ResponseWriter, err error) {
	writeError(w, http.StatusBadRequest, "invalid plan: %v", err)
}

// successStatus: non-error statuses through WriteHeader are fine.
func successStatus(w http.ResponseWriter) {
	w.WriteHeader(http.StatusNoContent)
}

// rangeVerifyShaped mirrors the range-verify endpoint: a span checksum
// mismatch is the client's problem (409 through the envelope —
// sanctioned), but promoting it to a 5xx is not.
func rangeVerifyShaped(w http.ResponseWriter, got, want uint32) {
	if got != want {
		writeError(w, http.StatusConflict, "span checksum mismatch: computed %08x, request claims %08x", got, want)
		return
	}
	writeError(w, http.StatusInternalServerError, "span checksum mismatch") // want `writeError with constant status 500`
}
