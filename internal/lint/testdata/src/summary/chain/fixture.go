// Fixture: a synthetic package exercising the call-graph summary layer
// (callgraph.go) — direct facts, fixpoint propagation across the
// intra-package call graph, and mutual recursion.
package chain

import (
	"fmt"
	"net/http"
	"os"
	"sync/atomic"
)

type ref struct {
	refs atomic.Int64
}

func (r *ref) release() {
	r.refs.Add(-1)
}

func releaseAll(rs []*ref) {
	for _, r := range rs {
		r.release()
	}
}

func unlink(path string) {
	os.Remove(path)
}

func sweep(path string) {
	unlink(path)
}

func respond(w http.ResponseWriter) {
	fmt.Fprintln(w, "ok")
}

func reply(w http.ResponseWriter) {
	respond(w)
}

// note receives the writer but never writes: its summary must stay
// clean — the precision the writer-argument heuristic alone cannot give.
func note(w http.ResponseWriter) {
	_ = w
}

func spinForever(ch chan int) {
	for {
		<-ch
	}
}

func spinWrapper(ch chan int) {
	spinForever(ch)
}

// ping and pong are mutually recursive; pong blocks, so the fixpoint
// must mark both without diverging.
func ping(n int, path string) {
	if n > 0 {
		pong(n-1, path)
	}
}

func pong(n int, path string) {
	os.Remove(path)
	ping(n, path)
}

// spawner only starts a goroutine: the spawned body blocks, the spawner
// does not.
func spawner(path string) {
	go func() {
		os.Remove(path)
	}()
}

func pure(a, b int) int {
	return a + b
}
