package lint

import (
	"go/ast"
)

// StreamDiscipline enforces the O(frontier) memory guarantee of the
// streaming pipeline (PR 1): the serving and analysis layers, and the
// stream validators themselves, must never materialise a schedule —
// every consumer works round-at-a-time off an iterator. Materialisation
// belongs to the facade (Plan.Materialize exists for callers that want
// a snapshot), to examples, and to tests.
//
// Restricted scope: internal/planserver, internal/analysis, and the
// linecomm stream validators (stream.go, gossipstream.go, range.go,
// csr.go, treerounds.go). Flagged there:
//
//   - Plan.Materialize calls
//   - Schedule composite literals (sparsehypercube.Schedule and
//     linecomm.Schedule)
//   - schedio.DecodeAll calls (decode-to-materialised convenience)
var StreamDiscipline = &Analyzer{
	Name: "streamdiscipline",
	Doc:  "forbid schedule materialisation in streaming hot paths (planserver, analysis, stream validators)",
	Run:  runStreamDiscipline,
}

// streamValidatorFiles are the linecomm files that implement the
// streaming validators; the rest of linecomm (the serial engine, the
// JSON envelope) legitimately builds Schedules.
var streamValidatorFiles = map[string]bool{
	"stream.go":       true,
	"gossipstream.go": true,
	"range.go":        true,
	"csr.go":          true,
	"treerounds.go":   true,
}

func runStreamDiscipline(pass *Pass) {
	p := pass.Pkg
	wholePkg := pathHasSuffix(p.PkgPath, "internal/planserver") ||
		pathHasSuffix(p.PkgPath, "internal/analysis")
	validatorFiles := pathHasSuffix(p.PkgPath, "internal/linecomm")
	if !wholePkg && !validatorFiles {
		return
	}
	inScope := func(n ast.Node) bool {
		return wholePkg || streamValidatorFiles[p.fileBase(n.Pos())]
	}
	p.inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if !inScope(n) {
				return true
			}
			fn := p.callee(n)
			if isMethod(fn, "sparsehypercube", "Plan", "Materialize") {
				pass.Reportf(n.Pos(), "Plan.Materialize in a streaming hot path: consume Rounds instead (O(frontier) discipline, docs/LINTING.md#streamdiscipline)")
			}
			if isFunc(fn, "internal/schedio", "DecodeAll") {
				pass.Reportf(n.Pos(), "schedio.DecodeAll materialises the whole plan: stream through Decoder.Rounds instead (docs/LINTING.md#streamdiscipline)")
			}
		case *ast.CompositeLit:
			if !inScope(n) {
				return true
			}
			if pkg, name := p.namedType(n); name == "Schedule" &&
				(pathHasSuffix(pkg, "sparsehypercube") || pathHasSuffix(pkg, "internal/linecomm")) {
				pass.Reportf(n.Pos(), "Schedule literal in a streaming hot path: build rounds through an iterator instead (docs/LINTING.md#streamdiscipline)")
			}
		}
		return true
	})
}
