package lint

import (
	"go/ast"
)

// LockHeld protects the serving-path locks — planserver's registry and
// the distverify coordinator — from the classic latency inversion: a
// mutex held across a blocking call serialises every other request
// behind one slow disk or one slow client. Within internal/planserver
// and internal/distverify, no sync.Mutex or sync.RWMutex may be held
// across file I/O, http.ResponseWriter writes (directly or through a
// helper that takes the writer), or mmap syscalls.
//
// The walk is lexical and per-function: Lock()/RLock() opens a held
// region, the matching Unlock()/RUnlock() closes it (including inside a
// branch — statements after the unlock in that branch are unheld), and
// defer Unlock() holds the lock to the end of the function. Blocking
// calls inside a held region are flagged, and blocking is resolved
// interprocedurally through the package summary layer (callgraph.go): a
// call into another function in the same package blocks exactly when
// that function's bottom-up summary says it (transitively) blocks, so a
// helper that unlinks a spill file is caught at the locked call site,
// while a helper that merely receives the ResponseWriter without
// writing to it is not. Deliberate holds — e.g. unlinking a spill file
// inside the registry's critical section — carry a //lint:allow
// lockheld annotation explaining why.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "forbid holding planserver/distverify mutexes across blocking calls (file I/O, response writes, mmap)",
	Run:  runLockHeld,
}

func runLockHeld(pass *Pass) {
	if !inServingScope(pass.Pkg.PkgPath) {
		return
	}
	sums := pass.Pkg.summaries()
	pass.Pkg.eachFuncBody(func(decl *ast.FuncDecl) {
		w := &lockWalk{pass: pass, p: pass.Pkg, sums: sums}
		w.walkSeq(decl.Body.List, map[string]bool{})
	})
}

type lockWalk struct {
	pass *Pass
	p    *Package
	sums *Summaries
}

// walkSeq walks one statement sequence with the set of mutexes held on
// entry. held maps the lock expression's printed form ("s.mu",
// "sess.sendMu") to true; branches get their own copy so an unlock
// inside a branch unheld only that path.
func (w *lockWalk) walkSeq(stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		w.walkStmt(stmt, held)
	}
}

func (w *lockWalk) walkStmt(stmt ast.Stmt, held map[string]bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if key, locks := w.lockOp(s.X); key != "" {
			if locks {
				held[key] = true
			} else {
				delete(held, key)
			}
			return
		}
		w.checkExpr(s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock(): the lock stays held for the rest of the
		// function (conservatively, for the rest of this walk).
		if key, locks := w.lockOp(s.Call); key != "" && !locks {
			return // held remains set; nothing to flag in the defer itself
		}
		w.checkExpr(s.Call, held)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.checkExpr(rhs, held)
		}
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			w.checkExpr(res, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.checkExpr(s.Cond, held)
		w.walkSeq(s.Body.List, copyHeld(held))
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			w.walkSeq(e.List, copyHeld(held))
		case *ast.IfStmt:
			w.walkStmt(e, copyHeld(held))
		}
	case *ast.BlockStmt:
		w.walkSeq(s.List, held)
	case *ast.ForStmt:
		w.walkSeq(s.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		w.checkExpr(s.X, held)
		w.walkSeq(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkSeq(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkSeq(cc.Body, copyHeld(held))
			}
		}
	case *ast.GoStmt:
		// A spawned goroutine does not run under the caller's lock.
	case *ast.SendStmt, *ast.SelectStmt, *ast.DeclStmt, *ast.IncDecStmt,
		*ast.BranchStmt, *ast.LabeledStmt, *ast.EmptyStmt:
		// Channel operations are synchronisation, not the I/O class this
		// analyzer polices; declarations and control markers carry no calls.
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// lockOp classifies mu.Lock/RLock (locks=true) and mu.Unlock/RUnlock
// (locks=false) calls on sync.Mutex/RWMutex values, returning the lock
// expression's printed form as the region key.
func (w *lockWalk) lockOp(e ast.Expr) (key string, locks bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	var isLock bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		isLock = true
	case "Unlock", "RUnlock":
	default:
		return "", false
	}
	if pkg, name := w.p.namedType(sel.X); !(pathHasSuffix(pkg, "sync") && (name == "Mutex" || name == "RWMutex")) {
		return "", false
	}
	return exprKey(sel.X), isLock
}

// exprKey renders a lock expression as a stable string key.
func exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprKey(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + exprKey(e.X)
	default:
		return "?"
	}
}

// checkExpr flags blocking calls anywhere under e while any lock is held.
func (w *lockWalk) checkExpr(e ast.Expr, held map[string]bool) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closure body runs when called, not here
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if reason := w.blockingCall(call); reason != "" {
			w.pass.Reportf(call.Pos(), "%s while holding %s: move it outside the critical section (docs/LINTING.md#lockheld)", reason, heldNames(held))
		}
		return true
	})
}

func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	if len(names) == 1 {
		return names[0]
	}
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// blockingCall classifies a call as blocking, returning a description
// ("" if not blocking). An intra-package callee is judged by its
// bottom-up summary (callgraph.go) — transitive file I/O or response
// writes anywhere below it count, and a summary proven clean is
// trusted even if the callee happens to receive the ResponseWriter.
// External callees are judged by the hand-written base-facts table
// (filesystem, io stream helpers, mmap/syscall, ResponseWriter method
// set, http.Client.Do). Only a callee no table knows — a function
// value, an unlisted external — falls back to the writer-argument
// heuristic: handing it the ResponseWriter is presumed a client-paced
// response write.
func (w *lockWalk) blockingCall(call *ast.CallExpr) string {
	fn := w.p.callee(call)
	if fn != nil {
		if sum := w.sums.of(fn); sum != nil {
			switch {
			case sum.WritesResponse:
				return "response write"
			case sum.Blocks:
				return "call into " + fn.Name() + " (" + sum.BlockReason + ")"
			}
			return ""
		}
		if base, ok := baseFacts(fn); ok {
			if base.Blocks {
				return base.BlockReason
			}
			return ""
		}
	}
	if callHandsWriter(w.p, call) {
		return "response write"
	}
	return ""
}
