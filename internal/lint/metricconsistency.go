package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MetricConsistency is a whole-package, cross-file check over the
// planserver `metrics` struct: every atomic counter/gauge field that is
// updated anywhere in the package must be rendered by the /metrics
// writer, and every field the writer renders must be updated somewhere
// — no silent metrics (operators chart a value that never moves into
// the exposition), no dead ones (a line in the exposition that is
// always zero), no orphans (a field nobody touches).
//
// Mechanics: fields of a struct type named `metrics` whose type is a
// sync/atomic counter (Int32/Int64/Uint32/Uint64) are tracked. An
// `.Add`/`.Store` on a field anywhere counts as an update; a `.Load`
// counts as a render only inside a function whose summary
// (callgraph.go) says it writes the HTTP response — that summary is
// what identifies the /metrics handler without naming it.
var MetricConsistency = &Analyzer{
	Name: "metricconsistency",
	Doc:  "require every metrics field updated to be rendered by the /metrics writer and vice versa",
	Run:  runMetricConsistency,
}

func runMetricConsistency(pass *Pass) {
	p := pass.Pkg
	if !inServingScope(p.PkgPath) {
		return
	}
	type mfield struct {
		name string
		pos  token.Pos
	}
	var fields []mfield
	byObj := map[types.Object]int{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != "metrics" {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, fld := range st.Fields.List {
					for _, nm := range fld.Names {
						obj := p.Info.Defs[nm]
						if obj == nil || !isAtomicCounter(obj.Type()) {
							continue
						}
						byObj[obj] = len(fields)
						fields = append(fields, mfield{nm.Name, nm.Pos()})
					}
				}
			}
		}
	}
	if len(fields) == 0 {
		return
	}
	updated := make([]bool, len(fields))
	rendered := make([]bool, len(fields))
	sums := p.summaries()
	p.eachFuncBody(func(decl *ast.FuncDecl) {
		renderer := false
		if fn, ok := p.Info.Defs[decl.Name].(*types.Func); ok {
			if sum := sums.of(fn); sum != nil {
				renderer = sum.WritesResponse
			}
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			idx, ok := byObj[p.Info.Uses[inner.Sel]]
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Add", "Store":
				updated[idx] = true
			case "Load":
				if renderer {
					rendered[idx] = true
				}
			}
			return true
		})
	})
	for i, f := range fields {
		switch {
		case updated[i] && !rendered[i]:
			pass.Reportf(f.pos, "metrics field %s is updated but never rendered by the /metrics writer — a silent metric (docs/LINTING.md#metricconsistency)", f.name)
		case !updated[i] && rendered[i]:
			pass.Reportf(f.pos, "metrics field %s is rendered by the /metrics writer but never updated — a dead metric (docs/LINTING.md#metricconsistency)", f.name)
		case !updated[i] && !rendered[i]:
			pass.Reportf(f.pos, "metrics field %s is neither updated nor rendered (docs/LINTING.md#metricconsistency)", f.name)
		}
	}
}

// isAtomicCounter reports whether t is a sync/atomic integer type.
func isAtomicCounter(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	switch obj.Name() {
	case "Int32", "Int64", "Uint32", "Uint64":
		return true
	}
	return false
}
