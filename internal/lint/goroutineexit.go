package lint

import (
	"go/ast"
)

// GoroutineExit requires every goroutine spawned in planserver and
// distverify — reapers, pullers, drain workers — to have a bounded
// exit: an unconditional `for { ... }` loop must contain a reachable
// return, a break targeting the loop, or a goto (in practice, a select
// arm on a stop/done channel or ctx.Done() that returns). A loop whose
// only breaks belong to an inner select/switch/loop never leaves; such
// a goroutine survives Drain and holds its captures forever.
//
// The check is interprocedural through the summary layer (callgraph.go):
// `go s.reapLoop(d)` is judged by reapLoop's own summary, and a
// goroutine body that calls into a loop-forever helper is flagged at
// the call.
var GoroutineExit = &Analyzer{
	Name: "goroutineexit",
	Doc:  "require every spawned goroutine to select on a stop/done channel or provably terminate",
	Run:  runGoroutineExit,
}

func runGoroutineExit(pass *Pass) {
	p := pass.Pkg
	if !inServingScope(p.PkgPath) {
		return
	}
	sums := p.summaries()
	p.inspect(func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
			for _, pos := range infiniteLoopsNoExit(lit.Body) {
				pass.Reportf(pos, "goroutine loops forever without an exit condition: select on a stop/done channel or ctx.Done(), or bound the loop (docs/LINTING.md#goroutineexit)")
			}
			eachDirectCall(lit.Body, func(call *ast.CallExpr) {
				if fn := p.callee(call); fn != nil {
					if sum := sums.of(fn); sum != nil && sum.LoopsWithoutExit {
						pass.Reportf(call.Pos(), "goroutine calls %s, which loops forever without an exit condition (docs/LINTING.md#goroutineexit)", fn.Name())
					}
				}
			})
			return true
		}
		if fn := p.callee(g.Call); fn != nil {
			if sum := sums.of(fn); sum != nil && sum.LoopsWithoutExit {
				pass.Reportf(g.Pos(), "goroutine runs %s, which loops forever without an exit condition (docs/LINTING.md#goroutineexit)", fn.Name())
			}
		}
		return true
	})
}
