package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BoundedAlloc mechanizes PR 4's decoder-hardening rule: a count read
// off the wire as a varint is hostile until compared against a cap, and
// must never size an allocation directly. The schedio decoder's
// maxRoundCalls/maxIndexRounds bounds are the canonical instance; this
// analyzer makes the same discipline automatic for every future decoder.
//
// Mechanics (intra-function): a variable assigned from a varint decode
// (a call whose name is uvarint, Uvarint, ReadUvarint, Varint or
// ReadVarint — this repo's canonical decoder method and the
// encoding/binary entry points) is tainted, as is anything assigned
// from a tainted value (including conversions like int(v)). A tainted
// variable that is compared against a constant — a named cap like
// maxRoundCalls, or a literal — anywhere in the function counts as
// bounded. Sizing a make (length or capacity argument) from a tainted,
// never-compared variable is a violation. Growth via append as bytes
// are actually read is the sanctioned alternative and is never flagged.
var BoundedAlloc = &Analyzer{
	Name: "boundedalloc",
	Doc:  "forbid make sizes data-flowing from a varint decode without a comparison against a cap",
	Run:  runBoundedAlloc,
}

// varintNames are the decode entry points whose results are tainted.
var varintNames = map[string]bool{
	"uvarint":     true, // schedio's canonical-form decoder method
	"Uvarint":     true, // encoding/binary
	"ReadUvarint": true,
	"Varint":      true,
	"ReadVarint":  true,
}

func runBoundedAlloc(pass *Pass) {
	p := pass.Pkg
	p.eachFuncBody(func(decl *ast.FuncDecl) {
		checkBoundedAlloc(pass, decl.Body)
	})
}

func checkBoundedAlloc(pass *Pass, body *ast.BlockStmt) {
	p := pass.Pkg

	// Pass 1: taint. Seed with direct varint-call results, then
	// propagate through assignments and conversions until fixed point
	// (the function is walked repeatedly; bodies are small).
	tainted := map[types.Object]bool{}
	isVarintCall := func(call *ast.CallExpr) bool {
		fn := p.callee(call)
		return fn != nil && varintNames[fn.Name()]
	}
	// taintedExpr reports whether e's value derives from a tainted
	// object or a varint call: identifiers, conversions, parens, and
	// arithmetic over them.
	var taintedExpr func(e ast.Expr) bool
	taintedExpr = func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.Ident:
			return tainted[p.objectOf(e)]
		case *ast.ParenExpr:
			return taintedExpr(e.X)
		case *ast.CallExpr:
			if isVarintCall(e) {
				return true
			}
			// A conversion like int(v) carries taint through.
			if tv, ok := p.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
				return taintedExpr(e.Args[0])
			}
			return false
		case *ast.BinaryExpr:
			return taintedExpr(e.X) || taintedExpr(e.Y)
		case *ast.UnaryExpr:
			return taintedExpr(e.X)
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			// Multi-value form v, err := call(...): taint every LHS when
			// the one RHS is a tainted call; one-to-one forms propagate
			// per position.
			taintLHS := func(i int) {
				if i >= len(assign.Lhs) {
					return
				}
				if obj := p.objectOf(assign.Lhs[i]); obj != nil && !tainted[obj] {
					// The error sibling of v, err := uvarint() is not a
					// count; only the value position taints.
					if named, ok := obj.Type().(*types.Named); ok && named.Obj().Name() == "error" {
						return
					}
					tainted[obj] = true
					changed = true
				}
			}
			if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
				if taintedExpr(assign.Rhs[0]) {
					for i := range assign.Lhs {
						taintLHS(i)
					}
				}
				return true
			}
			for i, rhs := range assign.Rhs {
				if taintedExpr(rhs) {
					taintLHS(i)
				}
			}
			return true
		})
	}
	if len(tainted) == 0 {
		return
	}

	// Pass 2: bounding. A comparison of a tainted object against a
	// constant anywhere in the function marks it bounded.
	bounded := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		default:
			return true
		}
		for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
			if obj := p.objectOf(pair[0]); obj != nil && tainted[obj] && p.isConstExpr(pair[1]) {
				bounded[obj] = true
			}
		}
		return true
	})

	// Pass 3: flag make sizes fed by tainted, unbounded objects.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "make" ||
			p.Info.Uses[id] != types.Universe.Lookup("make") {
			return true
		}
		for _, arg := range call.Args[1:] { // skip the type argument
			flagUnboundedIdents(pass, arg, tainted, bounded)
		}
		return true
	})
}

// flagUnboundedIdents reports every identifier under e that is tainted
// by a varint decode and never compared against a cap.
func flagUnboundedIdents(pass *Pass, e ast.Expr, tainted, bounded map[types.Object]bool) {
	p := pass.Pkg
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj != nil && tainted[obj] && !bounded[obj] {
			pass.Reportf(id.Pos(), "allocation sized from varint-decoded %q without a comparison against a cap constant (grow storage as bytes are read, or bound it like maxRoundCalls; docs/LINTING.md#boundedalloc)", id.Name)
		}
		return true
	})
}
