// Package lint is sparselint's analysis engine: a small, stdlib-only
// reimplementation of the golang.org/x/tools/go/analysis shape
// (Analyzer, Pass, Report) plus a package loader and a suppression
// mechanism, carrying the custom analyzers that mechanize this repo's
// hand-enforced invariants:
//
//   - streamdiscipline: streaming hot paths never materialise a schedule
//   - boundedalloc: allocations are never sized from an unchecked varint
//   - mapclose: mappings and refcount acquisitions reach their release
//   - lockheld: planserver locks are never held across blocking calls
//   - errenvelope: planserver failures answer with the 4xx envelope
//   - refbalance: refs.Add(1) acquires reach release() on every path
//   - ctxdeadline: outbound HTTP carries a deadline ctx, cancel runs
//   - goroutineexit: spawned goroutines have a bounded exit
//   - metricconsistency: metrics fields are both updated and rendered
//
// The last four are interprocedural: they (and lockheld) share the
// call-graph summary layer in callgraph.go, which computes bottom-up
// per-function facts (blocks, writes the response, releases a
// reference, loops without exit) over the intra-package call graph,
// backed by a small hand-written table for cross-package facts the
// export data cannot carry.
//
// The x/tools analysis framework itself is deliberately not a
// dependency: the module is stdlib-only, and the subset these analyzers
// need — parsed files, full type information, position-addressed
// diagnostics — is covered by go/ast, go/types and the gc export data
// the build cache already holds (see load.go). The Analyzer/Pass shape
// is kept close to x/tools so the analyzers could migrate to a real
// multichecker without rewriting their Run functions.
//
// Each invariant, the PR that established it, and the suppression
// syntax are documented in docs/LINTING.md.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check: a Run function over a type-checked
// package, reporting diagnostics through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:allow
	// suppression comments. Lower-case, no spaces.
	Name string

	// Doc is the one-line invariant statement shown by sparselint -list.
	Doc string

	// Run inspects pass.Files and reports violations via pass.Report.
	Run func(pass *Pass)
}

// Analyzers returns every sparselint analyzer, in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		StreamDiscipline,
		BoundedAlloc,
		MapClose,
		LockHeld,
		ErrEnvelope,
		RefBalance,
		CtxDeadline,
		GoroutineExit,
		MetricConsistency,
	}
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	// report collects diagnostics; Run uses Reportf.
	diags *[]Diagnostic
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics (suppressed ones removed) in file/line order.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunChecked(pkgs, analyzers)
	return diags
}

// StaleAllow is a //lint:allow comment that no longer earns its keep:
// it suppressed nothing in this run, or it names an analyzer that does
// not exist. Stale suppressions are how documented decisions rot into
// blind spots, so sparselint -stale-allows fails on them.
type StaleAllow struct {
	Analyzer string
	Pos      token.Position
	// Unknown: the named analyzer is not in the run's analyzer set at
	// all — a typo, or a suppression that outlived its analyzer.
	Unknown bool
}

func (s StaleAllow) String() string {
	why := "suppresses no diagnostic"
	if s.Unknown {
		why = "names an unknown analyzer"
	}
	return fmt.Sprintf("%s: stale-allow: //lint:allow %s %s", s.Pos, s.Analyzer, why)
}

// RunChecked is Run plus suppression accounting: alongside the
// surviving diagnostics it returns every //lint:allow entry that went
// unused across the full analyzer set. Stale detection is only
// meaningful when analyzers covers the complete registry — an entry for
// an analyzer that simply was not run would be reported as unknown.
func RunChecked(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []StaleAllow) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var diags []Diagnostic
	var stale []StaleAllow
	for _, pkg := range pkgs {
		allowed := pkg.suppressions()
		for _, a := range analyzers {
			var raw []Diagnostic
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &raw}
			a.Run(pass)
			for _, d := range raw {
				if !allowed.covers(a.Name, d.Pos) {
					diags = append(diags, d)
				}
			}
		}
		for _, e := range allowed.all {
			switch {
			case !known[e.analyzer]:
				stale = append(stale, StaleAllow{Analyzer: e.analyzer, Pos: e.pos, Unknown: true})
			case !e.used:
				stale = append(stale, StaleAllow{Analyzer: e.analyzer, Pos: e.pos})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	sort.Slice(stale, func(i, j int) bool {
		a, b := stale[i].Pos, stale[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return diags, stale
}

// allowRe matches the suppression comment form:
//
//	//lint:allow <analyzer> <reason>
//
// placed on the flagged line or the line directly above it. The reason
// is mandatory: a suppression is a documented decision, not an off
// switch.
var allowRe = regexp.MustCompile(`^//lint:allow\s+([a-z]+)\s+\S`)

// allowEntry is one //lint:allow marker, carrying whether any
// diagnostic actually used it (the stale-allows signal).
type allowEntry struct {
	analyzer string
	pos      token.Position
	used     bool
}

// suppressionSet indexes a package's //lint:allow markers by
// "file:line" and keeps the flat list for stale accounting.
type suppressionSet struct {
	byKey map[string][]*allowEntry
	all   []*allowEntry
}

func (s *suppressionSet) covers(analyzer string, pos token.Position) bool {
	hit := false
	for _, key := range []string{
		fmt.Sprintf("%s:%d", pos.Filename, pos.Line),
		fmt.Sprintf("%s:%d", pos.Filename, pos.Line-1), // comment on the line above
	} {
		for _, e := range s.byKey[key] {
			if e.analyzer == analyzer {
				e.used = true
				hit = true
			}
		}
	}
	return hit
}

// suppressions scans every comment in the package for //lint:allow
// markers; a marker covers diagnostics on its own line and on the line
// directly below it (so it can sit on the flagged line or above it).
func (p *Package) suppressions() *suppressionSet {
	set := &suppressionSet{byKey: map[string][]*allowEntry{}}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(strings.TrimSpace(c.Text))
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				e := &allowEntry{analyzer: m[1], pos: pos}
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				set.byKey[key] = append(set.byKey[key], e)
				set.all = append(set.all, e)
			}
		}
	}
	return set
}

// pathHasSuffix reports whether the package import path is pkg or ends
// with "/"+pkg — the scoping test every path-restricted analyzer uses,
// written so that analysistest fixtures (loaded under short paths like
// "internal/planserver") scope identically to the real tree
// ("sparsehypercube/internal/planserver").
func pathHasSuffix(path, pkg string) bool {
	return path == pkg || strings.HasSuffix(path, "/"+pkg)
}

// inServingScope reports whether a package is on the request-serving
// path the lockheld and errenvelope invariants police: the plan server
// and the distributed-verify coordinator that speaks to it.
func inServingScope(pkgPath string) bool {
	return pathHasSuffix(pkgPath, "internal/planserver") ||
		pathHasSuffix(pkgPath, "internal/distverify")
}

// fileBase returns the base filename a node lives in.
func (p *Package) fileBase(pos token.Pos) string {
	name := p.Fset.Position(pos).Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// inspect walks every file in the package.
func (p *Package) inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
