package lint

import (
	"go/ast"
	"go/types"
)

// MapClose mechanizes the resource discipline PR 5's refcounted-unmap
// tests probe dynamically: every mapping and refcount acquisition must
// reach its release. Tracked acquisitions and their releases:
//
//   - schedio.OpenMapping          -> Close   (munmap + file close)
//   - sparsehypercube.OpenPlanFile -> Close   (plan owns the mapping)
//   - planserver lookupPlan        -> release (servedPlan refcount)
//   - planserver spillPlan         -> Close   (the returned io.Closer)
//
// The check is intra-function and ownership-based: after an
// acquisition, the handle must be deferred-released, explicitly
// released, or have its ownership transferred — returned to the caller,
// stored into a field or composite literal (a longer-lived owner takes
// over). An if-branch that returns without doing any of those leaks the
// handle on that path and is flagged; so is falling off the end of the
// function with the handle still owned. The failure-check branch
// immediately following the acquisition (if err != nil / if !ok) is
// exempt — the handle is invalid there.
var MapClose = &Analyzer{
	Name: "mapclose",
	Doc:  "require mapping and refcount acquisitions to reach Close/release on every path",
	Run:  runMapClose,
}

// acquisition describes one tracked acquisition function.
type acquisition struct {
	pkg     string // package path suffix ("" = any, for methods)
	typeN   string // receiver type for methods, "" for functions
	name    string
	result  int    // index of the handle in the result list
	release string // method that releases the handle
}

var acquisitions = []acquisition{
	{pkg: "internal/schedio", name: "OpenMapping", result: 0, release: "Close"},
	{pkg: "sparsehypercube", name: "OpenPlanFile", result: 0, release: "Close"},
	{pkg: "", typeN: "Server", name: "lookupPlan", result: 0, release: "release"},
	{pkg: "", typeN: "Server", name: "spillPlan", result: 1, release: "Close"},
}

// matchAcquisition resolves a call to the acquisition it performs.
func (p *Package) matchAcquisition(call *ast.CallExpr) *acquisition {
	fn := p.callee(call)
	if fn == nil {
		return nil
	}
	for i := range acquisitions {
		a := &acquisitions[i]
		if a.typeN == "" {
			if isFunc(fn, a.pkg, a.name) {
				return a
			}
		} else if isMethod(fn, a.pkg, a.typeN, a.name) {
			return a
		}
	}
	return nil
}

func runMapClose(pass *Pass) {
	pass.Pkg.eachFuncBody(func(decl *ast.FuncDecl) {
		checkMapClose(pass, decl.Body)
	})
}

// checkMapClose finds acquisition statements and runs the ownership
// walk over the statements that follow each within its block. Nested
// blocks are visited for their own acquisitions too.
func checkMapClose(pass *Pass, body *ast.BlockStmt) {
	p := pass.Pkg
	ast.Inspect(body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			assign, ok := stmt.(*ast.AssignStmt)
			if !ok || len(assign.Rhs) != 1 {
				continue
			}
			call, ok := assign.Rhs[0].(*ast.CallExpr)
			if !ok {
				continue
			}
			acq := p.matchAcquisition(call)
			if acq == nil {
				continue
			}
			if acq.result >= len(assign.Lhs) {
				continue
			}
			handle := p.objectOf(assign.Lhs[acq.result])
			if handle == nil { // assigned to _ or a field: owner elsewhere
				continue
			}
			// The sibling objects (err, ok) guard the failure branch.
			siblings := map[types.Object]bool{}
			for j, lhs := range assign.Lhs {
				if j != acq.result {
					if obj := p.objectOf(lhs); obj != nil {
						siblings[obj] = true
					}
				}
			}
			w := &ownershipWalk{
				pass: pass, p: p, handle: handle, release: acq.release,
				settle: acq.release + " or ownership transfer", anchor: "mapclose",
				siblings: siblings,
			}
			st := w.walkSeq(block.List[i+1:], true)
			if !st.done() {
				pass.Reportf(call.Pos(), "%s handle %q never reaches %s or an ownership transfer on the fall-through path (docs/LINTING.md#mapclose)", acq.name, handle.Name(), acq.release)
			}
		}
		return true
	})
}

// ownState is the walk's verdict for one path.
type ownState struct {
	released bool // released (or defer-released) on this path
	escaped  bool // ownership transferred: returned, stored in a field/literal
}

func (s ownState) done() bool { return s.released || s.escaped }

// ownershipWalk tracks one acquired object — a mapping handle, a
// counted reference, a context cancel func — from its acquisition
// statement to a settle point. mapclose, refbalance and ctxdeadline all
// drive it; the fields below the core four configure the per-analyzer
// behavior.
type ownershipWalk struct {
	pass     *Pass
	p        *Package
	handle   types.Object
	release  string // method name that settles the handle (Close, release)
	siblings map[types.Object]bool

	settle string // message fragment: what the leaking path is missing
	anchor string // docs/LINTING.md anchor for the report
	// asCall: the handle itself is the settling callable — calling
	// handle() settles it (a context.CancelFunc).
	asCall bool
	// sums: when set, passing the handle (or its retarget) into a call
	// whose summary says it releases references settles the handle —
	// the evict path's releaseAll(victims) handoff.
	sums *Summaries
	// retarget: follow `owner = append(owner, handle)` by switching the
	// tracked object to the slice (refbalance's victims pattern).
	retarget bool
	// guards: objects whose truth correlates with the acquisition
	// having happened (the conditions of the if-statements enclosing
	// the acquire). A later branch testing a guard is exempt unless it
	// settles the handle inside.
	guards map[types.Object]bool
}

// walkSeq walks a statement sequence that follows the acquisition.
// first marks the sequence directly after the acquisition statement,
// where the leading failure-check branch is exempt.
func (w *ownershipWalk) walkSeq(stmts []ast.Stmt, first bool) ownState {
	var st ownState
	for i, stmt := range stmts {
		if st.done() {
			return st
		}
		switch s := stmt.(type) {
		case *ast.DeferStmt:
			if w.releasesHandle(s.Call) || w.deferBodyReleases(s.Call) {
				st.released = true
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && w.releasesHandle(call) {
				st.released = true
			}
		case *ast.AssignStmt:
			if w.retargetAppend(s) {
				// ownership moved to the append target; keep tracking it
			} else if w.transfersOwnership(s) {
				st.escaped = true
			}
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if w.p.usesObject(res, w.handle) {
					st.escaped = true
				}
			}
			if !st.done() {
				w.pass.Reportf(s.Pos(), "return leaks %q: no %s on this path (docs/LINTING.md#%s)", w.handle.Name(), w.settle, w.anchor)
				st.escaped = true // report once per path
			}
			return st
		case *ast.IfStmt:
			if first && i == 0 && w.isFailureGuard(s) {
				continue // if err != nil { ... } right after acquiring: handle invalid there
			}
			if w.isGuardBranch(s) {
				// The branch tests a guard of the acquisition itself
				// (lookupPlan's `if !ok { return }` after a guarded
				// refs.Add): on the path through it the acquire never
				// happened, unless the branch also settles the handle.
				if w.containsReleaseOrTransfer(s) {
					st.released = true
				}
				continue
			}
			w.walkBranch(s)
		case *ast.BlockStmt:
			sub := w.walkSeq(s.List, false)
			st.released = st.released || sub.released
			st.escaped = st.escaped || sub.escaped
		default:
			// Loops, switches, selects: accept any release or transfer
			// inside (path-insensitive on purpose — the sequential walk
			// is where the leak class lives).
			if w.containsReleaseOrTransfer(stmt) {
				st.released = true
			}
		}
	}
	return st
}

// walkBranch checks an if/else chain mid-sequence: any branch that
// terminates must settle the handle before doing so. Branches that fall
// through contribute nothing (the sequence after the if still runs).
func (w *ownershipWalk) walkBranch(s *ast.IfStmt) {
	w.walkSeq(s.Body.List, false)
	switch e := s.Else.(type) {
	case *ast.BlockStmt:
		w.walkSeq(e.List, false)
	case *ast.IfStmt:
		w.walkBranch(e)
	}
}

// isFailureGuard reports whether the if condition tests a sibling of
// the acquisition (err != nil, !ok) — the branch where the handle never
// became valid.
func (w *ownershipWalk) isFailureGuard(s *ast.IfStmt) bool {
	for obj := range w.siblings {
		if w.p.usesObject(s.Cond, obj) {
			return true
		}
	}
	return false
}

// releasesHandle reports whether call settles the handle: the release
// method on it (handle.Close() / handle.release()), the handle itself
// invoked as a function (a CancelFunc, in asCall mode), or — when a
// summary table is attached — the handle passed into a call that
// (transitively) drops references, like releaseAll(victims).
func (w *ownershipWalk) releasesHandle(call *ast.CallExpr) bool {
	if w.asCall && w.p.objectOf(call.Fun) == w.handle {
		return true
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok &&
		sel.Sel.Name == w.release && w.p.objectOf(sel.X) == w.handle {
		return true
	}
	if w.sums != nil {
		if fn := w.p.callee(call); fn != nil && w.sums.releasesRef(fn) {
			for _, arg := range call.Args {
				if w.p.usesObject(arg, w.handle) {
					return true
				}
			}
		}
	}
	return false
}

// isGuardBranch reports whether the if condition tests a guard of the
// acquisition (see ownershipWalk.guards).
func (w *ownershipWalk) isGuardBranch(s *ast.IfStmt) bool {
	for obj := range w.guards {
		if w.p.usesObject(s.Cond, obj) {
			return true
		}
	}
	return false
}

// retargetAppend follows `owner = append(owner, handle)`: the slice
// becomes the tracked object, so a later releaseAll(owner) settles the
// reference. Only active in retarget mode (refbalance).
func (w *ownershipWalk) retargetAppend(s *ast.AssignStmt) bool {
	if !w.retarget || len(s.Rhs) != 1 || len(s.Lhs) != 1 {
		return false
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || w.p.Info.Uses[id] != nil && w.p.Info.Uses[id].Pkg() != nil {
		return false
	}
	if !w.p.usesObject(call, w.handle) {
		return false
	}
	obj := w.p.objectOf(s.Lhs[0])
	if obj == nil {
		return false
	}
	w.handle = obj
	return true
}

// deferBodyReleases handles defer func() { ... m.Close() ... }().
func (w *ownershipWalk) deferBodyReleases(call *ast.CallExpr) bool {
	lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit)
	if !ok {
		return false
	}
	return w.containsReleaseOrTransfer(lit.Body)
}

// transfersOwnership reports whether the assignment stores the handle
// into a longer-lived owner: a field or element on the left, or a
// composite literal mentioning the handle on the right.
func (w *ownershipWalk) transfersOwnership(s *ast.AssignStmt) bool {
	for i, rhs := range s.Rhs {
		viaLiteral := false
		ast.Inspect(rhs, func(n ast.Node) bool {
			if cl, ok := n.(*ast.CompositeLit); ok && w.p.usesObject(cl, w.handle) {
				viaLiteral = true
			}
			return !viaLiteral
		})
		if viaLiteral {
			return true
		}
		if !w.p.usesObject(rhs, w.handle) {
			continue
		}
		// Parallel assignment: the LHS owning the handle is the one at
		// the same position (or any LHS for the collapsed 1:N form).
		check := s.Lhs
		if len(s.Rhs) == len(s.Lhs) {
			check = s.Lhs[i : i+1]
		}
		for _, lhs := range check {
			switch ast.Unparen(lhs).(type) {
			case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
				return true
			}
		}
	}
	return false
}

// containsReleaseOrTransfer scans a subtree for any release call,
// ownership transfer, or defer of either.
func (w *ownershipWalk) containsReleaseOrTransfer(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			if w.releasesHandle(s) {
				found = true
			}
		case *ast.AssignStmt:
			if w.transfersOwnership(s) {
				found = true
			}
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if w.p.usesObject(res, w.handle) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
