package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info

	// sums caches the package's call-graph summaries (callgraph.go),
	// built on first use and shared by every analyzer in the run.
	sums *Summaries
}

// Loader parses and type-checks packages. Imports resolve through the
// gc export data the go command's build cache holds (`go list -export`)
// — the same data `go vet` drivers consume — so loading needs no
// network, no GOPATH sources, and no third-party framework. One Loader
// shares its importer cache across every package it loads.
type Loader struct {
	// Dir is the directory go list runs in (the module root or below).
	Dir string

	fset *token.FileSet

	mu      sync.Mutex
	exports map[string]string // import path -> export data file
	imp     types.Importer
}

// NewLoader returns a Loader rooted at dir.
func NewLoader(dir string) *Loader {
	l := &Loader{Dir: dir, fset: token.NewFileSet(), exports: map[string]string{}}
	l.imp = importer.ForCompiler(l.fset, "gc", l.lookup)
	return l
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Incomplete bool
}

// goList runs the go command and decodes its JSON package stream.
func (l *Loader) goList(args ...string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json=ImportPath,Dir,GoFiles,Export,Incomplete"}, args...)...)
	cmd.Dir = l.Dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(&out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %s: decoding: %v", strings.Join(args, " "), err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load resolves patterns (as the go command does: "./...", explicit
// import paths) and returns every matched package parsed and fully
// type-checked. Only the package proper is linted — _test.go files are
// the sanctioned home of materialisation and mock I/O, so they are not
// loaded.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	// One -export -deps pass primes the export map for every dependency,
	// so type-checking never shells out per import.
	deps, err := l.goList(append([]string{"-export", "-deps"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	for _, p := range deps {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	l.mu.Unlock()

	targets, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var paths []string
		for _, f := range t.GoFiles {
			paths = append(paths, filepath.Join(t.Dir, f))
		}
		pkg, err := l.check(t.ImportPath, t.Dir, paths)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads the single package in dir under an explicit import
// path — the analysistest entry point, where fixture packages live
// under testdata (invisible to go list) but must scope as if they were
// real tree packages (e.g. "internal/planserver").
func (l *Loader) LoadDir(dir, pkgPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range ents {
		if name := e.Name(); strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			paths = append(paths, filepath.Join(dir, name))
		}
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return l.check(pkgPath, dir, paths)
}

// check parses files and type-checks them as one package.
func (l *Loader) check(pkgPath, dir string, paths []string) (*Package, error) {
	var files []*ast.File
	for _, path := range paths {
		f, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(pkgPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", pkgPath, err)
	}
	return &Package{PkgPath: pkgPath, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// lookup feeds the gc importer export data for one import path, shelling
// out lazily for paths the priming pass did not cover (fixture imports).
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	file, ok := l.exports[path]
	l.mu.Unlock()
	if !ok {
		pkgs, err := l.goList("-export", path)
		if err != nil {
			return nil, err
		}
		if len(pkgs) != 1 || pkgs[0].Export == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		file = pkgs[0].Export
		l.mu.Lock()
		l.exports[path] = file
		l.mu.Unlock()
	}
	return os.Open(file)
}
