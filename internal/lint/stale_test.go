package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"sparsehypercube/internal/lint"
)

// TestStaleAllowFlagged: a //lint:allow that suppresses nothing, and
// one naming a nonexistent analyzer, both surface through RunChecked.
func TestStaleAllowFlagged(t *testing.T) {
	dir := t.TempDir()
	src := `package p

func doubles(x int) int {
	//lint:allow mapclose nothing here acquires anything
	return 2 * x
}

func triples(x int) int {
	//lint:allow nosuchanalyzer suppressing a ghost
	return 3 * x
}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := lint.NewLoader(".").LoadDir(dir, "p")
	if err != nil {
		t.Fatal(err)
	}
	diags, stale := lint.RunChecked([]*lint.Package{pkg}, lint.Analyzers())
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
	if len(stale) != 2 {
		t.Fatalf("stale count = %d, want 2: %v", len(stale), stale)
	}
	if stale[0].Analyzer != "mapclose" || stale[0].Unknown {
		t.Errorf("stale[0] = %+v, want unused mapclose entry", stale[0])
	}
	if stale[1].Analyzer != "nosuchanalyzer" || !stale[1].Unknown {
		t.Errorf("stale[1] = %+v, want unknown-analyzer entry", stale[1])
	}
}

// TestUsedAllowNotStale: the lockheld fixture's annotated deliberate
// hold suppresses a live diagnostic and must not be reported stale.
func TestUsedAllowNotStale(t *testing.T) {
	pkg, err := lint.NewLoader(".").LoadDir("testdata/src/lockheld/planserver", "internal/planserver")
	if err != nil {
		t.Fatal(err)
	}
	_, stale := lint.RunChecked([]*lint.Package{pkg}, lint.Analyzers())
	if len(stale) != 0 {
		t.Fatalf("used suppression reported stale: %v", stale)
	}
}
