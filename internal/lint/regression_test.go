package lint_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"sparsehypercube/internal/lint"
)

// Injected-regression smokes: copy the real serving sources, delete one
// invariant-preserving line, and require sparselint to fail. These
// prove the analyzers guard the live tree, not just fixtures — exactly
// the regressions a future PR would introduce.

// mutatePackage copies srcDir's non-test Go files into a temp dir,
// applying edit to the named file. The edit must change the text.
func mutatePackage(t *testing.T, srcDir, file string, edit func(string) string) string {
	t.Helper()
	dir := t.TempDir()
	ents, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	touched := false
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(srcDir, name))
		if err != nil {
			t.Fatal(err)
		}
		text := string(data)
		if name == file {
			mutated := edit(text)
			if mutated == text {
				t.Fatalf("edit left %s unchanged — the regression was not injected", file)
			}
			text = mutated
			touched = true
		}
		if err := os.WriteFile(filepath.Join(dir, name), []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if !touched {
		t.Fatalf("file %s not found in %s", file, srcDir)
	}
	return dir
}

// requireFinding loads the mutated package under the real tree's
// package path and asserts the analyzer reports a message containing
// msgPart.
func requireFinding(t *testing.T, dir, pkgPath string, a *lint.Analyzer, msgPart string) {
	t.Helper()
	pkg, err := lint.NewLoader(".").LoadDir(dir, pkgPath)
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
	for _, d := range diags {
		if strings.Contains(d.Message, msgPart) {
			return
		}
	}
	t.Fatalf("expected a %s finding containing %q, got %d diagnostic(s): %v", a.Name, msgPart, len(diags), diags)
}

func TestInjectedCancelLeakCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the real distverify package")
	}
	dir := mutatePackage(t, "../distverify", "distverify.go", func(src string) string {
		return strings.Replace(src, "defer cancel()", "_ = cancel", 1)
	})
	requireFinding(t, dir, "internal/distverify", lint.CtxDeadline, "cancel")
}

func TestInjectedReleaseLeakCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the real planserver package")
	}
	dir := mutatePackage(t, "../planserver", "planserver.go", func(src string) string {
		return strings.Replace(src, "defer sp.release()", "_ = sp", 1)
	})
	requireFinding(t, dir, "internal/planserver", lint.MapClose, "release")
}

func TestInjectedReaperSpinCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the real planserver package")
	}
	re := regexp.MustCompile(`case <-s\.reaperStop:\s*\n\s*return`)
	dir := mutatePackage(t, "../planserver", "drain.go", func(src string) string {
		return re.ReplaceAllString(src, "case <-s.reaperStop:")
	})
	requireFinding(t, dir, "internal/planserver", lint.GoroutineExit, "loops forever")
}
