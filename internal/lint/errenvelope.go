package lint

import (
	"go/ast"
	"go/constant"
)

// ErrEnvelope enforces the planserver error contract PR 4 established
// and the range-verify endpoint inherits: every decode or validation
// failure answers with the structured {"error": ...} JSON envelope and
// a 4xx status — clients (including the distverify coordinator, which
// parses the envelope to decide between retry and refusal) treat a
// malformed request as the client's fault, never a server error.
// Within internal/planserver and internal/distverify:
//
//   - http.Error is forbidden (plain-text body, no envelope; route
//     through writeError)
//   - WriteHeader with a constant 5xx status is forbidden (a naked 500
//     turns bad input into a fake server failure)
//   - the envelope helpers themselves (writeError/writeJSON) must not
//     be handed a constant 5xx either
var ErrEnvelope = &Analyzer{
	Name: "errenvelope",
	Doc:  "require planserver/distverify failures to use the structured 4xx envelope, never http.Error or a naked 5xx",
	Run:  runErrEnvelope,
}

func runErrEnvelope(pass *Pass) {
	p := pass.Pkg
	if !inServingScope(p.PkgPath) {
		return
	}
	p.inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := p.callee(call)
		if fn != nil && funcPkgPath(fn) == "net/http" && fn.Name() == "Error" {
			pass.Reportf(call.Pos(), "http.Error bypasses the structured error envelope: use writeError (docs/LINTING.md#errenvelope)")
			return true
		}
		// WriteHeader(5xx) on a ResponseWriter, by method name + arg.
		if sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr); selOK &&
			sel.Sel.Name == "WriteHeader" && len(call.Args) == 1 {
			if code, ok := p.constStatus(call.Args[0]); ok && code >= 500 {
				pass.Reportf(call.Pos(), "naked WriteHeader(%d): failures must go through the 4xx envelope — a 5xx blames the server for the client's input (docs/LINTING.md#errenvelope)", code)
			}
			return true
		}
		// The envelope helpers handed a constant 5xx defeat the contract
		// from the inside.
		if fn != nil && (fn.Name() == "writeError" || fn.Name() == "writeJSON") &&
			inServingScope(funcPkgPath(fn)) && len(call.Args) >= 2 {
			if code, ok := p.constStatus(call.Args[1]); ok && code >= 500 {
				pass.Reportf(call.Pos(), "%s with constant status %d: decode/validation failures are 4xx (docs/LINTING.md#errenvelope)", fn.Name(), code)
			}
		}
		return true
	})
}

// constStatus evaluates e as a constant integer status code.
func (p *Package) constStatus(e ast.Expr) (int64, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}
