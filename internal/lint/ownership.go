package lint

import (
	"go/ast"
	"go/types"
)

// Path machinery for ownership walks that start mid-function: refbalance
// acquires at a `refs.Add(1)` statement nested inside branches, and
// ctxdeadline at a `ctx, cancel := context.WithTimeout(...)` assignment,
// so the walk has to cover the rest of the enclosing statement list at
// every nesting level, innermost first — falling off the end of an
// if-body continues in the statements after the if.

// pathFrame is one level of the enclosing-statement-list chain: the
// list, and the index of the statement (in that list) the target is in.
type pathFrame struct {
	list []ast.Stmt
	idx  int
}

// stmtPath returns the chain of statement lists from body down to the
// one directly holding target, or nil if target is not reachable
// through statement structure. Descending into a function literal
// resets the chain: statements after the literal's enclosing statement
// run outside the literal's activation, so an ownership walk must not
// cross that boundary outward.
func stmtPath(body *ast.BlockStmt, target ast.Stmt) []pathFrame {
	var frames []pathFrame
	list := body.List
	for {
		idx := -1
		for i, st := range list {
			if st.Pos() <= target.Pos() && target.End() <= st.End() {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil
		}
		frames = append(frames, pathFrame{list, idx})
		st := list[idx]
		if st == target {
			return frames
		}
		next, viaFuncLit := childStmtList(st, target)
		if next == nil {
			return nil
		}
		if viaFuncLit {
			frames = frames[:0]
		}
		list = next
	}
}

// childStmtList returns the statement list inside st that (positionally)
// contains target, and whether the descent crossed into a function
// literal.
func childStmtList(st ast.Stmt, target ast.Stmt) ([]ast.Stmt, bool) {
	contains := func(n ast.Node) bool {
		return n != nil && n.Pos() <= target.Pos() && target.End() <= n.End()
	}
	clauses := func(body *ast.BlockStmt) []ast.Stmt {
		for _, c := range body.List {
			switch cc := c.(type) {
			case *ast.CaseClause:
				for _, s := range cc.Body {
					if contains(s) {
						return cc.Body
					}
				}
			case *ast.CommClause:
				for _, s := range cc.Body {
					if contains(s) {
						return cc.Body
					}
				}
			}
		}
		return nil
	}
	switch s := st.(type) {
	case *ast.BlockStmt:
		if contains(s) {
			return s.List, false
		}
	case *ast.IfStmt:
		if contains(s.Body) {
			return s.Body.List, false
		}
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			if contains(e) {
				return e.List, false
			}
		case *ast.IfStmt:
			if contains(e) {
				return []ast.Stmt{e}, false
			}
		}
	case *ast.ForStmt:
		if contains(s.Body) {
			return s.Body.List, false
		}
	case *ast.RangeStmt:
		if contains(s.Body) {
			return s.Body.List, false
		}
	case *ast.SwitchStmt:
		if l := clauses(s.Body); l != nil {
			return l, false
		}
	case *ast.TypeSwitchStmt:
		if l := clauses(s.Body); l != nil {
			return l, false
		}
	case *ast.SelectStmt:
		if l := clauses(s.Body); l != nil {
			return l, false
		}
	case *ast.LabeledStmt:
		if contains(s.Stmt) {
			return []ast.Stmt{s.Stmt}, false
		}
	}
	// Not in any statement body: the target may sit inside a function
	// literal in this statement's expressions. Enter the outermost such
	// literal; deeper nesting is handled by later iterations.
	var lit *ast.FuncLit
	ast.Inspect(st, func(n ast.Node) bool {
		if lit != nil {
			return false
		}
		if fl, ok := n.(*ast.FuncLit); ok && contains(fl) {
			lit = fl
			return false
		}
		return true
	})
	if lit != nil {
		return lit.Body.List, true
	}
	return nil, false
}

// walkAfter runs the ownership walk over everything that executes after
// the target statement: the remainder of its own list first (where the
// leading failure-guard exemption applies), then each enclosing list's
// remainder, innermost to outermost.
func (w *ownershipWalk) walkAfter(frames []pathFrame) ownState {
	for i := len(frames) - 1; i >= 0; i-- {
		fr := frames[i]
		st := w.walkSeq(fr.list[fr.idx+1:], i == len(frames)-1)
		if st.done() {
			return st
		}
	}
	return ownState{}
}

// condGuards collects the objects tested by the if-statements the
// target is nested inside — the acquisition's guards. After
// `if ok { refs.Add(1) }`, a later `if !ok { return }` runs exactly
// when the acquire did not, so branches testing ok are exempt from the
// settle requirement (unless they settle the handle themselves).
func condGuards(p *Package, frames []pathFrame) map[types.Object]bool {
	guards := map[types.Object]bool{}
	for i, fr := range frames {
		if i == len(frames)-1 {
			break // the frame holding the target itself encloses nothing
		}
		ifs, ok := fr.list[fr.idx].(*ast.IfStmt)
		if !ok {
			continue
		}
		ast.Inspect(ifs.Cond, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := guardObject(p.Info.Uses[id]); obj != nil {
					guards[obj] = true
				}
			}
			return true
		})
	}
	return guards
}

// guardObject filters condition identifiers down to the ok/err shape: a
// local boolean or error variable. Receivers and other values in a
// condition do not correlate with the acquisition and must not exempt
// later branches.
func guardObject(obj types.Object) types.Object {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	switch t := v.Type().Underlying().(type) {
	case *types.Basic:
		if t.Kind() == types.Bool {
			return obj
		}
	case *types.Interface:
		if named, ok := v.Type().(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			return obj
		}
	}
	return nil
}
