package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The interprocedural layer: an intra-package call graph with bottom-up
// function summaries, plus a small hand-written table of cross-package
// facts the gc export data cannot carry (that servedPlan.release drops
// a reference, that http.Client.Do blocks at the pace of the request
// context, that anything handed an http.ResponseWriter writes at the
// client's pace). Analyzers that used to stop at a function boundary —
// lockheld's "any call handed the writer" special case, refbalance's
// release tracking, goroutineexit's loop-forever detection,
// metricconsistency's renderer discovery — all consult the one summary
// table instead of re-deriving fragments of it.
//
// Summaries are computed per package, lazily, and cached on the
// Package. Direct facts come from each function's own body (function
// literals and go statements excluded — their bodies run elsewhere);
// transitive facts propagate over intra-package call edges to a
// fixpoint, so mutual recursion converges instead of recursing.

// Summary is one function's bottom-up facts.
type Summary struct {
	// Blocks: the function (transitively) performs a blocking call —
	// file I/O, a response write, an mmap syscall, a network round-trip.
	Blocks bool
	// BlockReason names the first blocking operation found, nested call
	// chain included ("call into finishSpillLocked (os.Remove)").
	BlockReason string
	// WritesResponse: the function (transitively) writes to an
	// http.ResponseWriter. Implies Blocks — the write is paced by the
	// client draining it.
	WritesResponse bool
	// ReleasesRef: the function (transitively) drops a counted
	// reference — it calls a release method or decrements a refs
	// counter. refbalance treats passing a handle into such a function
	// as settling the reference.
	ReleasesRef bool
	// LoopsWithoutExit: the function (transitively) enters a for-loop
	// with no condition and no reachable return or break — spawned as a
	// goroutine it can never exit.
	LoopsWithoutExit bool
	// LoopPos is the offending loop (or the call that reaches one).
	LoopPos token.Pos
}

// Summaries is one package's summary table.
type Summaries struct {
	p     *Package
	decls map[*types.Func]*ast.FuncDecl
	sums  map[*types.Func]*Summary
}

// summaries returns the package's summary table, building it on first
// use.
func (p *Package) summaries() *Summaries {
	if p.sums == nil {
		p.sums = buildSummaries(p)
	}
	return p.sums
}

// of returns the summary for an intra-package function, or nil for
// functions defined elsewhere (use baseFacts for those).
func (s *Summaries) of(fn *types.Func) *Summary {
	return s.sums[fn]
}

// declOf returns the declaration of an intra-package function, or nil.
func (s *Summaries) declOf(fn *types.Func) *ast.FuncDecl {
	return s.decls[fn]
}

// releasesRef reports whether calling fn may drop a counted reference,
// by intra-package summary or by the hand-written cross-package table.
func (s *Summaries) releasesRef(fn *types.Func) bool {
	if sum := s.sums[fn]; sum != nil {
		return sum.ReleasesRef
	}
	base, ok := baseFacts(fn)
	return ok && base.ReleasesRef
}

func buildSummaries(p *Package) *Summaries {
	s := &Summaries{
		p:     p,
		decls: map[*types.Func]*ast.FuncDecl{},
		sums:  map[*types.Func]*Summary{},
	}
	p.eachFuncBody(func(decl *ast.FuncDecl) {
		if fn, ok := p.Info.Defs[decl.Name].(*types.Func); ok {
			s.decls[fn] = decl
		}
	})
	for fn, decl := range s.decls {
		s.sums[fn] = s.direct(decl)
	}
	// Propagate over intra-package call edges until nothing changes.
	// Facts are monotone booleans, so the fixpoint is reached in at
	// most depth-of-call-graph rounds, recursion included.
	for changed := true; changed; {
		changed = false
		for fn, decl := range s.decls {
			sum := s.sums[fn]
			eachDirectCall(decl.Body, func(call *ast.CallExpr) {
				callee := p.callee(call)
				if callee == nil {
					return
				}
				g, ok := s.sums[callee]
				if !ok {
					return
				}
				if g.Blocks && !sum.Blocks {
					sum.Blocks = true
					sum.BlockReason = "call into " + callee.Name() + " (" + g.BlockReason + ")"
					changed = true
				}
				if g.WritesResponse && !sum.WritesResponse {
					sum.WritesResponse = true
					changed = true
				}
				if g.ReleasesRef && !sum.ReleasesRef {
					sum.ReleasesRef = true
					changed = true
				}
				if g.LoopsWithoutExit && !sum.LoopsWithoutExit {
					sum.LoopsWithoutExit = true
					sum.LoopPos = call.Pos()
					changed = true
				}
			})
		}
	}
	return s
}

// direct computes one function's own facts: its literal body, callees
// resolved no further than the hand-written base table.
func (s *Summaries) direct(decl *ast.FuncDecl) *Summary {
	p := s.p
	sum := &Summary{}
	if loops := infiniteLoopsNoExit(decl.Body); len(loops) > 0 {
		sum.LoopsWithoutExit = true
		sum.LoopPos = loops[0]
	}
	eachDirectCall(decl.Body, func(call *ast.CallExpr) {
		if isRefsCounterOp(p, call, false) {
			sum.ReleasesRef = true
		}
		fn := p.callee(call)
		if fn != nil {
			if _, intra := s.decls[fn]; intra {
				return // propagation's edge, not a direct fact
			}
			if base, ok := baseFacts(fn); ok {
				mergeSummary(sum, base)
				return
			}
		}
		// An unresolved or unlisted callee handed the writer is a
		// response write: fmt.Fprintf(w, ...), json.NewEncoder(w), a
		// method on the writer through an interface — all paced by the
		// client draining the response.
		if callHandsWriter(p, call) {
			mergeSummary(sum, Summary{Blocks: true, BlockReason: "response write", WritesResponse: true})
		}
	})
	return sum
}

func mergeSummary(dst *Summary, src Summary) {
	if src.Blocks && !dst.Blocks {
		dst.Blocks = true
		dst.BlockReason = src.BlockReason
	}
	dst.WritesResponse = dst.WritesResponse || src.WritesResponse
	dst.ReleasesRef = dst.ReleasesRef || src.ReleasesRef
}

// eachDirectCall visits every call that runs as part of the function's
// own activation: function-literal bodies run when (and where) the
// literal is called, and a go statement's callee runs on another
// goroutine, so both subtrees are skipped.
func eachDirectCall(body *ast.BlockStmt, fn func(*ast.CallExpr)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			fn(n)
		}
		return true
	})
}

// blockingOSFuncs are package-level os functions that hit the filesystem.
var blockingOSFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"Remove": true, "RemoveAll": true, "Rename": true, "Mkdir": true,
	"MkdirAll": true, "ReadFile": true, "WriteFile": true, "ReadDir": true,
	"Stat": true, "Lstat": true, "Truncate": true, "Chmod": true,
}

// blockingFileMethods are *os.File methods that hit the descriptor.
var blockingFileMethods = map[string]bool{
	"Read": true, "ReadAt": true, "Write": true, "WriteAt": true,
	"Close": true, "Sync": true, "Seek": true, "Stat": true,
	"Truncate": true, "ReadFrom": true, "WriteTo": true,
}

// blockingIOFuncs are io helpers that drain or fill a stream.
var blockingIOFuncs = map[string]bool{
	"ReadAll": true, "Copy": true, "CopyN": true, "CopyBuffer": true,
	"ReadFull": true, "WriteString": true,
}

// baseFacts is the hand-written cross-package summary table: facts
// about functions outside the analyzed package that the gc export data
// cannot express. This is where "servedPlan.release drops a reference"
// and "http.Client.Do blocks on the request context" live.
func baseFacts(fn *types.Func) (Summary, bool) {
	name := fn.Name()
	if recv, typeN := recvNamed(fn); recv != "" {
		switch {
		case recv == "os" && typeN == "File" && blockingFileMethods[name]:
			return Summary{Blocks: true, BlockReason: "os.File." + name}, true
		case pathHasSuffix(recv, "internal/schedio") && typeN == "Mapping" && name == "Close":
			return Summary{Blocks: true, BlockReason: "Mapping.Close (munmap)"}, true
		case recv == "io" && (typeN == "Closer" || typeN == "ReadCloser" || typeN == "WriteCloser" || typeN == "ReadWriteCloser") && name == "Close":
			// The serving path's io.Closer values are file mappings: Close
			// is an munmap (or a descriptor close) behind an interface.
			return Summary{Blocks: true, BlockReason: "io.Closer.Close"}, true
		case recv == "net/http" && typeN == "ResponseWriter":
			return Summary{Blocks: true, BlockReason: "ResponseWriter." + name, WritesResponse: true}, true
		case recv == "net/http" && typeN == "Client" && name == "Do":
			return Summary{Blocks: true, BlockReason: "http.Client.Do (round-trip paced by the request context)"}, true
		case typeN == "servedPlan" && name == "release":
			// planserver's refcount drop, visible to fixture packages and
			// cross-package callers alike.
			return Summary{ReleasesRef: true}, true
		}
		return Summary{}, false
	}
	pkg := funcPkgPath(fn)
	switch {
	case pkg == "os" && blockingOSFuncs[name]:
		return Summary{Blocks: true, BlockReason: "os." + name}, true
	case pkg == "io" && blockingIOFuncs[name]:
		return Summary{Blocks: true, BlockReason: "io." + name}, true
	case pkg == "syscall":
		return Summary{Blocks: true, BlockReason: "syscall." + name}, true
	case pathHasSuffix(pkg, "internal/schedio") && name == "OpenMapping":
		return Summary{Blocks: true, BlockReason: "schedio.OpenMapping (mmap)"}, true
	case pkg == "net/http" && name == "Error":
		return Summary{Blocks: true, BlockReason: "http.Error", WritesResponse: true}, true
	}
	return Summary{}, false
}

// callHandsWriter reports whether the call receives an
// http.ResponseWriter — as an argument or as the method receiver.
func callHandsWriter(p *Package, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if p.isResponseWriter(arg) {
			return true
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && p.isResponseWriter(sel.X) {
		return true
	}
	return false
}

// isResponseWriter reports whether e's static type is net/http.ResponseWriter.
func (p *Package) isResponseWriter(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "ResponseWriter" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// isRefsCounterOp matches `<expr>.refs.Add(c)` on an atomic counter
// field named refs — acquire=true matches a positive constant (taking a
// reference), acquire=false a negative one (dropping it).
func isRefsCounterOp(p *Package, call *ast.CallExpr, acquire bool) bool {
	if len(call.Args) != 1 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Add" {
		return false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != "refs" {
		return false
	}
	if pkg, name := p.namedType(sel.X); pkg != "sync/atomic" || (name != "Int64" && name != "Int32") {
		return false
	}
	v, ok := p.constStatus(call.Args[0])
	if !ok {
		return false
	}
	if acquire {
		return v > 0
	}
	return v < 0
}

// infiniteLoopsNoExit returns the positions of every for-loop in body
// with no condition and no reachable exit — no return, no break
// targeting the loop, no goto. Function literals are separate functions
// and are not entered; a break nested inside an inner loop, switch, or
// select targets that construct, not the loop under test.
func infiniteLoopsNoExit(body *ast.BlockStmt) []token.Pos {
	var bad []token.Pos
	var scan func(st ast.Stmt, label string)
	scanList := func(list []ast.Stmt) {
		for _, st := range list {
			scan(st, "")
		}
	}
	scan = func(st ast.Stmt, label string) {
		switch s := st.(type) {
		case *ast.LabeledStmt:
			scan(s.Stmt, s.Label.Name)
		case *ast.ForStmt:
			if s.Cond == nil && !loopExits(s.Body.List, label) {
				bad = append(bad, s.Pos())
			}
			scanList(s.Body.List)
		case *ast.RangeStmt:
			scanList(s.Body.List)
		case *ast.IfStmt:
			scanList(s.Body.List)
			if s.Else != nil {
				scan(s.Else, "")
			}
		case *ast.BlockStmt:
			scanList(s.List)
		case *ast.SwitchStmt:
			scanClauses(s.Body, scanList)
		case *ast.TypeSwitchStmt:
			scanClauses(s.Body, scanList)
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					scanList(cc.Body)
				}
			}
		}
	}
	scanList(body.List)
	return bad
}

func scanClauses(body *ast.BlockStmt, scanList func([]ast.Stmt)) {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			scanList(cc.Body)
		}
	}
}

// loopExits reports whether a loop body can leave the loop: a return, a
// goto, an unlabeled break not captured by a nested breakable
// construct, or a labeled break naming the loop's own label.
func loopExits(body []ast.Stmt, label string) bool {
	exits := false
	var walk func(st ast.Stmt, nested bool)
	walkList := func(list []ast.Stmt, nested bool) {
		for _, st := range list {
			walk(st, nested)
		}
	}
	walk = func(st ast.Stmt, nested bool) {
		if exits {
			return
		}
		switch s := st.(type) {
		case *ast.ReturnStmt:
			exits = true
		case *ast.BranchStmt:
			switch s.Tok {
			case token.BREAK:
				if (s.Label == nil && !nested) || (s.Label != nil && label != "" && s.Label.Name == label) {
					exits = true
				}
			case token.GOTO:
				exits = true
			}
		case *ast.LabeledStmt:
			walk(s.Stmt, nested)
		case *ast.BlockStmt:
			walkList(s.List, nested)
		case *ast.IfStmt:
			walkList(s.Body.List, nested)
			if s.Else != nil {
				walk(s.Else, nested)
			}
		case *ast.ForStmt:
			walkList(s.Body.List, true)
		case *ast.RangeStmt:
			walkList(s.Body.List, true)
		case *ast.SwitchStmt:
			scanClauses(s.Body, func(list []ast.Stmt) { walkList(list, true) })
		case *ast.TypeSwitchStmt:
			scanClauses(s.Body, func(list []ast.Stmt) { walkList(list, true) })
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					walkList(cc.Body, true)
				}
			}
		}
	}
	walkList(body, false)
	return exits
}
