package lint_test

import (
	"testing"

	"sparsehypercube/internal/lint"
	"sparsehypercube/internal/lint/linttest"
)

// Each analyzer runs over a fixture package holding both violations
// (carrying // want annotations) and the sanctioned pattern the
// invariant points to (carrying none). Restricted analyzers load their
// fixtures under restricted package paths; the facade fixture checks
// that the same constructs pass under an unrestricted path.

func TestStreamDisciplineFixture(t *testing.T) {
	linttest.Run(t, lint.StreamDiscipline, "testdata/src/streamdiscipline/planserver", "internal/planserver")
}

func TestStreamDisciplineFacadeAllowed(t *testing.T) {
	linttest.Run(t, lint.StreamDiscipline, "testdata/src/streamdiscipline/facade", "facade")
}

func TestStreamDisciplineLinecommFixture(t *testing.T) {
	// File-scoped restriction: csr.go is a stream-validator file and
	// carries wants; json.go holds the same constructs sanctioned.
	linttest.Run(t, lint.StreamDiscipline, "testdata/src/streamdiscipline/linecomm", "internal/linecomm")
}

func TestBoundedAllocFixture(t *testing.T) {
	linttest.Run(t, lint.BoundedAlloc, "testdata/src/boundedalloc/decoder", "decoder")
}

func TestMapCloseFixture(t *testing.T) {
	linttest.Run(t, lint.MapClose, "testdata/src/mapclose/user", "user")
}

func TestLockHeldFixture(t *testing.T) {
	linttest.Run(t, lint.LockHeld, "testdata/src/lockheld/planserver", "internal/planserver")
}

func TestLockHeldDistverifyFixture(t *testing.T) {
	linttest.Run(t, lint.LockHeld, "testdata/src/lockheld/distverify", "internal/distverify")
}

func TestLockHeldOutsidePlanserver(t *testing.T) {
	// The same files under an unrestricted path must report nothing:
	// lockheld polices the serving path, not the whole module.
	linttest.RunNone(t, lint.LockHeld, "testdata/src/lockheld/planserver", "other")
	linttest.RunNone(t, lint.LockHeld, "testdata/src/lockheld/distverify", "other")
}

func TestErrEnvelopeFixture(t *testing.T) {
	linttest.Run(t, lint.ErrEnvelope, "testdata/src/errenvelope/planserver", "internal/planserver")
}

func TestErrEnvelopeDistverifyFixture(t *testing.T) {
	linttest.Run(t, lint.ErrEnvelope, "testdata/src/errenvelope/distverify", "internal/distverify")
}

func TestRefBalanceFixture(t *testing.T) {
	linttest.Run(t, lint.RefBalance, "testdata/src/refbalance/planserver", "internal/planserver")
}

func TestCtxDeadlineFixture(t *testing.T) {
	linttest.Run(t, lint.CtxDeadline, "testdata/src/ctxdeadline/distverify", "internal/distverify")
}

func TestGoroutineExitFixture(t *testing.T) {
	linttest.Run(t, lint.GoroutineExit, "testdata/src/goroutineexit/planserver", "internal/planserver")
}

func TestMetricConsistencyFixture(t *testing.T) {
	linttest.Run(t, lint.MetricConsistency, "testdata/src/metricconsistency/planserver", "internal/planserver")
}

func TestInterproceduralOutsideServingScope(t *testing.T) {
	// The same violation fixtures under an unrestricted path must report
	// nothing: all four interprocedural analyzers police the serving
	// path, not the whole module.
	linttest.RunNone(t, lint.RefBalance, "testdata/src/refbalance/planserver", "other")
	linttest.RunNone(t, lint.CtxDeadline, "testdata/src/ctxdeadline/distverify", "other")
	linttest.RunNone(t, lint.GoroutineExit, "testdata/src/goroutineexit/planserver", "other")
	linttest.RunNone(t, lint.MetricConsistency, "testdata/src/metricconsistency/planserver", "other")
}
