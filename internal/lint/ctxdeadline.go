package lint

import (
	"go/ast"
	"go/types"
)

// CtxDeadline polices the fleet's outbound HTTP: a coordinator request
// to a worker that can hang forever wedges a dispatch slot, so every
// network call in planserver/distverify must be bounded by a context
// deadline, and the deadline's cancel must run on every path (a leaked
// cancel pins the context's timer and parent for the process lifetime).
// Concretely:
//
//   - http.NewRequestWithContext must not receive context.Background()
//     or context.TODO() (inline or via a local variable), nor a context
//     derived with context.WithCancel — neither carries a deadline.
//     Contexts derived locally with WithTimeout/WithDeadline pass; a
//     caller-supplied context parameter is assumed to carry the
//     caller's deadline and is not flagged.
//   - every local `ctx, cancel := context.WithTimeout/WithDeadline/
//     WithCancel(...)` must call (or defer) cancel on all paths —
//     returning cancel or storing it into a field transfers that duty.
//     Assigning the cancel to _ discards it and is flagged outright.
//   - requests built with plain http.NewRequest must not reach
//     Client.Do (no context at all), and the context-free conveniences
//     (http.Get, Client.Post, ...) are flagged on sight.
var CtxDeadline = &Analyzer{
	Name: "ctxdeadline",
	Doc:  "require outbound HTTP to carry a deadline context and its cancel to run on all paths",
	Run:  runCtxDeadline,
}

// bareClientCalls are the context-free request conveniences: there is
// no way to attach a deadline to them.
var bareClientCalls = map[string]bool{
	"Get": true, "Post": true, "PostForm": true, "Head": true,
}

func runCtxDeadline(pass *Pass) {
	p := pass.Pkg
	if !inServingScope(p.PkgPath) {
		return
	}
	sums := p.summaries()
	p.eachFuncBody(func(decl *ast.FuncDecl) {
		checkCtxDeadline(pass, sums, decl.Body)
	})
}

func checkCtxDeadline(pass *Pass, sums *Summaries, body *ast.BlockStmt) {
	p := pass.Pkg
	// Pass 1: context and request provenance, function-wide (closures
	// included — they capture the same variables).
	deadlineCtx := map[types.Object]bool{} // from WithTimeout/WithDeadline
	cancelOnly := map[types.Object]bool{}  // from WithCancel
	bareCtx := map[types.Object]bool{}     // from Background()/TODO()
	plainReq := map[types.Object]bool{}    // from http.NewRequest
	type ctxAcquire struct {
		assign *ast.AssignStmt
		call   *ast.CallExpr
		fnName string
		cancel types.Object
	}
	var acquires []ctxAcquire
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := p.callee(call)
		switch {
		case isFunc(fn, "context", "WithTimeout") || isFunc(fn, "context", "WithDeadline") || isFunc(fn, "context", "WithCancel"):
			if len(assign.Lhs) != 2 {
				return true
			}
			ctxObj := p.objectOf(assign.Lhs[0])
			if fn.Name() == "WithCancel" {
				if ctxObj != nil {
					cancelOnly[ctxObj] = true
				}
			} else if ctxObj != nil {
				deadlineCtx[ctxObj] = true
			}
			cancelObj := p.objectOf(assign.Lhs[1])
			if id, isIdent := assign.Lhs[1].(*ast.Ident); cancelObj == nil || (isIdent && id.Name == "_") {
				// `ctx, _ := context.WithTimeout(...)`: nothing can ever
				// stop the timer or release the parent. The blank
				// identifier still carries a types.Var, so match by name.
				pass.Reportf(call.Pos(), "context.%s's cancel function is discarded: assign it and defer cancel() (docs/LINTING.md#ctxdeadline)", fn.Name())
				return true
			}
			acquires = append(acquires, ctxAcquire{assign, call, fn.Name(), cancelObj})
		case isFunc(fn, "context", "Background") || isFunc(fn, "context", "TODO"):
			if len(assign.Lhs) == 1 {
				if obj := p.objectOf(assign.Lhs[0]); obj != nil {
					bareCtx[obj] = true
				}
			}
		case isFunc(fn, "net/http", "NewRequest"):
			if obj := p.objectOf(assign.Lhs[0]); obj != nil {
				plainReq[obj] = true
			}
		}
		return true
	})

	// Pass 2: network call sites.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := p.callee(call)
		switch {
		case isFunc(fn, "net/http", "NewRequestWithContext") && len(call.Args) > 0:
			checkRequestCtx(pass, call, call.Args[0], deadlineCtx, cancelOnly, bareCtx)
		case isMethod(fn, "net/http", "Client", "Do") && len(call.Args) == 1:
			if obj := p.objectOf(call.Args[0]); obj != nil && plainReq[obj] {
				pass.Reportf(call.Pos(), "request built with http.NewRequest carries no context: build it with http.NewRequestWithContext and a deadline (docs/LINTING.md#ctxdeadline)")
			}
		case fn != nil && bareClientCalls[fn.Name()] &&
			(isMethod(fn, "net/http", "Client", fn.Name()) || isFunc(fn, "net/http", fn.Name())):
			pass.Reportf(call.Pos(), "http.%s sends without a request context: use http.NewRequestWithContext with a deadline and Client.Do (docs/LINTING.md#ctxdeadline)", fn.Name())
		}
		return true
	})

	// Pass 3: every recorded cancel must settle on all paths.
	for _, acq := range acquires {
		frames := stmtPath(body, acq.assign)
		if frames == nil {
			continue
		}
		w := &ownershipWalk{
			pass: pass, p: p, handle: acq.cancel,
			settle: "cancel call", anchor: "ctxdeadline",
			asCall: true, sums: sums,
			guards:   condGuards(p, frames),
			siblings: map[types.Object]bool{},
		}
		if st := w.walkAfter(frames); !st.done() {
			pass.Reportf(acq.call.Pos(), "context.%s's cancel %q is never called on the fall-through path: defer it right after acquiring (docs/LINTING.md#ctxdeadline)", acq.fnName, acq.cancel.Name())
		}
	}
}

// checkRequestCtx judges the context argument handed to
// http.NewRequestWithContext.
func checkRequestCtx(pass *Pass, call *ast.CallExpr, arg ast.Expr, deadlineCtx, cancelOnly, bareCtx map[types.Object]bool) {
	p := pass.Pkg
	if inline, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
		fn := p.callee(inline)
		if isFunc(fn, "context", "Background") || isFunc(fn, "context", "TODO") {
			pass.Reportf(call.Pos(), "context.%s() flows into a network request without a deadline: derive one with context.WithTimeout (docs/LINTING.md#ctxdeadline)", fn.Name())
		}
		return
	}
	obj := p.objectOf(arg)
	if obj == nil {
		return
	}
	switch {
	case deadlineCtx[obj]:
		// carries a locally-derived deadline
	case bareCtx[obj]:
		pass.Reportf(call.Pos(), "context.Background()/TODO() flows into a network request without a deadline: derive one with context.WithTimeout (docs/LINTING.md#ctxdeadline)")
	case cancelOnly[obj]:
		pass.Reportf(call.Pos(), "a cancel-only context (context.WithCancel) reaches this network request without a deadline: use context.WithTimeout so a dead peer is abandoned (docs/LINTING.md#ctxdeadline)")
	}
	// Anything else — typically the function's own ctx parameter — is
	// assumed to carry the caller's deadline.
}
