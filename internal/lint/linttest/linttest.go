// Package linttest runs lint analyzers over fixture packages and
// checks their diagnostics against // want annotations — the
// analysistest idiom, reimplemented over internal/lint's loader so the
// fixtures type-check against the real module (they import the real
// sparsehypercube packages) without any framework dependency.
//
// A fixture is a directory of Go files under testdata. A line expecting
// a diagnostic carries a trailing comment:
//
//	m, _ := schedio.OpenMapping(f) // want `never reaches Close`
//
// where the backquoted text is a regexp that must match the message of
// a diagnostic reported on that line. Every diagnostic must be wanted
// and every want must be matched; sanctioned-pattern lines simply carry
// no annotation.
package linttest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"sparsehypercube/internal/lint"
)

// sharedLoader caches export data and type-checked imports across every
// fixture in the test binary.
var sharedLoader = lint.NewLoader(".")

// Run loads the fixture package in dir under pkgPath, applies the
// analyzer, and compares diagnostics against the fixture's // want
// annotations.
func Run(t *testing.T, a *lint.Analyzer, dir, pkgPath string) {
	t.Helper()
	pkg, err := sharedLoader.LoadDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})

	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatal(err)
	}
	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if !matched[i] && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

// RunNone asserts the analyzer reports nothing for the fixture,
// ignoring its // want annotations — for loading a violation fixture
// under a package path outside the analyzer's scope.
func RunNone(t *testing.T, a *lint.Analyzer, dir, pkgPath string) {
	t.Helper()
	pkg, err := sharedLoader.LoadDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	for _, d := range lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a}) {
		t.Errorf("unexpected diagnostic outside analyzer scope: %s", d)
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// wantRe extracts the pattern from a // want `...` or // want "..." comment.
var wantRe = regexp.MustCompile("// want (?:`([^`]+)`|\"([^\"]+)\")")

func collectWants(pkg *lint.Package) ([]want, error) {
	var wants []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.Contains(c.Text, "// want ") {
					continue
				}
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat := m[1]
				if pat == "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					pos := pkg.Fset.Position(c.Pos())
					return nil, fmt.Errorf("%s: bad want pattern %q: %v", pos, pat, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants, nil
}
