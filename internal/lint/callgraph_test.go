package lint

import "testing"

// TestSummaries asserts the summary layer's facts over a synthetic
// package: direct facts from a function's own body, fixpoint
// propagation over intra-package calls, mutual recursion, and the
// goroutine/function-literal exclusions.
func TestSummaries(t *testing.T) {
	pkg, err := NewLoader(".").LoadDir("testdata/src/summary/chain", "chain")
	if err != nil {
		t.Fatal(err)
	}
	sums := pkg.summaries()
	byName := map[string]*Summary{}
	for fn, sum := range sums.sums {
		byName[fn.Name()] = sum
	}
	cases := []struct {
		fn     string
		blocks bool
		reason string // asserted only when non-empty and deterministic
		writes bool
		rel    bool
		loops  bool
	}{
		{fn: "unlink", blocks: true, reason: "os.Remove"},
		{fn: "sweep", blocks: true, reason: "call into unlink (os.Remove)"},
		{fn: "respond", blocks: true, reason: "response write", writes: true},
		{fn: "reply", blocks: true, writes: true},
		{fn: "note"},
		{fn: "release", rel: true},
		{fn: "releaseAll", rel: true},
		{fn: "spinForever", loops: true},
		{fn: "spinWrapper", loops: true},
		{fn: "ping", blocks: true},
		{fn: "pong", blocks: true},
		{fn: "spawner"},
		{fn: "pure"},
	}
	for _, c := range cases {
		sum := byName[c.fn]
		if sum == nil {
			t.Fatalf("no summary for %s", c.fn)
		}
		if sum.Blocks != c.blocks {
			t.Errorf("%s: Blocks = %v, want %v (reason %q)", c.fn, sum.Blocks, c.blocks, sum.BlockReason)
		}
		if c.reason != "" && sum.BlockReason != c.reason {
			t.Errorf("%s: BlockReason = %q, want %q", c.fn, sum.BlockReason, c.reason)
		}
		if sum.WritesResponse != c.writes {
			t.Errorf("%s: WritesResponse = %v, want %v", c.fn, sum.WritesResponse, c.writes)
		}
		if sum.ReleasesRef != c.rel {
			t.Errorf("%s: ReleasesRef = %v, want %v", c.fn, sum.ReleasesRef, c.rel)
		}
		if sum.LoopsWithoutExit != c.loops {
			t.Errorf("%s: LoopsWithoutExit = %v, want %v", c.fn, sum.LoopsWithoutExit, c.loops)
		}
		if sum.LoopsWithoutExit && !sum.LoopPos.IsValid() {
			t.Errorf("%s: LoopsWithoutExit with no position", c.fn)
		}
	}
	if len(byName) != len(cases) {
		t.Errorf("summary count = %d, want %d", len(byName), len(cases))
	}
}

// TestBaseFactsCrossPackage pins the hand-written table entries the
// analyzers lean on hardest: the facts export data cannot carry.
func TestBaseFactsCrossPackage(t *testing.T) {
	// Resolved through a real package so the *types.Func objects are the
	// genuine articles, not mocks.
	pkg, err := NewLoader(".").LoadDir("testdata/src/summary/chain", "chain")
	if err != nil {
		t.Fatal(err)
	}
	sums := pkg.summaries()
	// unlink's summary came from baseFacts(os.Remove); respond's from
	// the writer-argument rule. Both asserted above — here check the
	// releasesRef bridge used by refbalance's settle rule.
	for fn := range sums.decls {
		if fn.Name() == "releaseAll" && !sums.releasesRef(fn) {
			t.Errorf("releasesRef(releaseAll) = false, want true")
		}
		if fn.Name() == "pure" && sums.releasesRef(fn) {
			t.Errorf("releasesRef(pure) = true, want false")
		}
	}
}
