package lint

import (
	"go/ast"
	"go/types"
)

// callee resolves the function or method a call invokes, or nil for
// calls through function values, conversions, and built-ins.
func (p *Package) callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// funcPkgPath returns the import path of the package a function belongs
// to ("" for builtins and error.Error).
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isFunc reports whether fn is the package-level function name in a
// package whose path is pkg or ends in "/"+pkg.
func isFunc(fn *types.Func, pkg, name string) bool {
	return fn != nil && fn.Name() == name &&
		fn.Type().(*types.Signature).Recv() == nil &&
		pathHasSuffix(funcPkgPath(fn), pkg)
}

// recvNamed returns the defining package path and type name of a
// method's receiver (dereferenced), or ("", "") for non-methods.
func recvNamed(fn *types.Func) (pkgPath, typeName string) {
	if fn == nil {
		return "", ""
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", ""
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() != nil {
		pkgPath = obj.Pkg().Path()
	}
	return pkgPath, obj.Name()
}

// isMethod reports whether fn is the named method on the named type of
// a package matched by path suffix. An empty pkg matches any package —
// used for repo types exercised from fixture packages.
func isMethod(fn *types.Func, pkg, typeName, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	rp, rt := recvNamed(fn)
	if rt != typeName {
		return false
	}
	return pkg == "" || pathHasSuffix(rp, pkg)
}

// usesObject reports whether obj is referenced anywhere under node.
func (p *Package) usesObject(node ast.Node, obj types.Object) bool {
	if node == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// objectOf resolves an identifier expression to its object (through
// parens), or nil.
func (p *Package) objectOf(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// namedType returns the defining package path and name of an
// expression's type (pointers dereferenced), or ("", "").
func (p *Package) namedType(e ast.Expr) (pkgPath, typeName string) {
	tv, ok := p.Info.Types[e]
	if !ok {
		return "", ""
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() != nil {
		pkgPath = obj.Pkg().Path()
	}
	return pkgPath, obj.Name()
}

// isConstExpr reports whether e is a compile-time constant (a literal
// or a named constant — the shape of a cap like maxRoundCalls).
func (p *Package) isConstExpr(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}

// eachFuncBody visits every function and method body in the package.
func (p *Package) eachFuncBody(fn func(decl *ast.FuncDecl)) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}
