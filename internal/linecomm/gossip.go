package linecomm

import (
	"fmt"

	"sparsehypercube/internal/bitvec"
	"sparsehypercube/internal/intmath"
)

// This file models k-line gossiping — the all-to-all analogue of the
// paper's broadcast problem (§5). Every vertex starts with its own token;
// a call between two vertices exchanges all tokens both ways (the
// telephone convention); calls placed in the same round must be
// edge-disjoint, of length at most k, and each vertex may be an endpoint
// of at most one call per round (pass-through switching remains free, as
// in the line model).
//
// ValidateGossip is the serial reference validator: it materialises a
// full token-set matrix (one bit row per vertex) and applies exchanges
// round by round. ValidateGossipStream (gossipstream.go) is the streamed,
// sharded form crosschecked against it; internal/gossip re-exports both
// next to the gossip schemes.

// MaxGossipSimulateOrder caps the serial validator's full token-set
// simulation (an order x order bit matrix). The streamed validator shards
// the matrix and reaches larger instances; see MaxGossipSimulateCells.
const MaxGossipSimulateOrder = 1 << 14

// GossipResult reports gossip validation. internal/gossip aliases it as
// gossip.Result.
type GossipResult struct {
	Violations []Violation
	// Complete: every vertex knows every token at the end.
	Complete bool
	// MinKnown is the smallest token count over vertices at the end.
	MinKnown int
	// Rounds is the schedule length.
	Rounds int
	// MinimumTime: complete in exactly ceil(log2 N) rounds.
	MinimumTime bool
	// MaxCallLength is the longest call seen among those with in-range,
	// non-degenerate paths (calls with other structural defects, such as
	// a missing edge, still count — their length is well defined).
	MaxCallLength int
	// Simulated reports whether token propagation was actually simulated;
	// false when the instance exceeded the simulation cap (in which case a
	// SimulationCapExceeded violation is present and Complete/MinKnown are
	// meaningless zeros).
	Simulated bool
}

// Valid reports whether no violations were found.
func (r *GossipResult) Valid() bool { return len(r.Violations) == 0 }

// Err mirrors Result.Err.
func (r *GossipResult) Err() error {
	if r.Valid() {
		return nil
	}
	return fmt.Errorf("gossip: %d violations, first: %s", len(r.Violations), r.Violations[0])
}

// GossipMinimumRounds returns the gossip lower bound ceil(log2 N): each
// round at most doubles the spread of any single token.
func GossipMinimumRounds(order uint64) int { return intmath.CeilLog2(order) }

// Per-call stages of the gossip structural checks, mirroring the
// early-continue points both gossip validators share.
const (
	// gossipSkip: empty/short path or out-of-range vertex; checks aborted
	// before the length bound was even evaluated.
	gossipSkip uint8 = iota
	// gossipBad: repeated vertex or missing edge; the length bound was
	// checked, but the call takes no part in cross-call checks or token
	// exchanges.
	gossipBad
	// gossipFull: structurally sound; all cross-call checks apply and the
	// endpoints exchange tokens.
	gossipFull
)

// checkGossipCall runs the per-call structural section shared by the
// serial and streaming gossip validators: path shape, vertex range,
// repeated vertices, edge existence and the length bound, in exactly that
// order. Cross-call checks (busy endpoints, edge reuse) are the caller's
// job and apply only to gossipFull calls.
func checkGossipCall(net Network, k int, order uint64, ri, ci int, call Call, out []Violation) (uint8, []Violation) {
	if len(call.Path) < 2 {
		return gossipSkip, append(out, Violation{ri, ci, PathInvalid,
			fmt.Sprintf("path has %d vertices", len(call.Path))})
	}
	bad := false
	for _, v := range call.Path {
		if v >= order {
			out = append(out, Violation{ri, ci, VertexOutOfRange,
				fmt.Sprintf("vertex %d outside [0,%d)", v, order)})
			bad = true
		}
	}
	if bad {
		return gossipSkip, out
	}
	out, bad = appendRepeatViolations(out, ri, ci, call.Path)
	for i := 1; i < len(call.Path); i++ {
		if !net.HasEdge(call.Path[i-1], call.Path[i]) {
			out = append(out, Violation{ri, ci, PathInvalid,
				fmt.Sprintf("no edge {%d,%d}", call.Path[i-1], call.Path[i])})
			bad = true
		}
	}
	if call.Length() > k {
		out = append(out, Violation{ri, ci, PathTooLong,
			fmt.Sprintf("length %d > k = %d", call.Length(), k)})
	}
	if bad {
		return gossipBad, out
	}
	return gossipFull, out
}

// ValidateGossip checks a schedule under the k-line gossip model on net
// and simulates token propagation with a full per-vertex token-set
// matrix. Schedule.Source is ignored (gossip has no distinguished
// originator). Orders beyond MaxGossipSimulateOrder report a
// SimulationCapExceeded violation; ValidateGossipStream shards the
// simulation and reaches far larger instances.
func ValidateGossip(net Network, k int, s *Schedule) *GossipResult {
	res := &GossipResult{Rounds: len(s.Rounds)}
	order := net.Order()
	if order > MaxGossipSimulateOrder {
		res.Violations = append(res.Violations, Violation{
			Round: -1, Call: -1, Kind: SimulationCapExceeded,
			Msg: fmt.Sprintf("order %d exceeds serial simulation cap %d (ValidateGossipStream shards up to %d vertex-token cells)",
				order, MaxGossipSimulateOrder, MaxGossipSimulateCells),
		})
		return res
	}
	n := int(order)
	know := make([]*bitvec.Set, n)
	for v := 0; v < n; v++ {
		know[v] = bitvec.New(n)
		know[v].Set(v)
	}
	// Per-round state is allocated once and cleared between rounds, so a
	// valid schedule validates at O(order) total allocations (the token
	// matrix), independent of round and call counts.
	var (
		usedEdge = make(map[edgeKey]bool)
		busy     = make(map[uint64]int)
		merges   []uint64 // flat (from, to) pairs of the current round
	)
	for ri, round := range s.Rounds {
		clear(usedEdge)
		clear(busy)
		merges = merges[:0]
		for ci, call := range round {
			var stage uint8
			stage, res.Violations = checkGossipCall(net, k, order, ri, ci, call, res.Violations)
			if stage == gossipSkip {
				continue
			}
			if l := call.Length(); l > res.MaxCallLength {
				res.MaxCallLength = l
			}
			if stage != gossipFull {
				continue
			}
			from, to := call.From(), call.To()
			for _, endpoint := range [2]uint64{from, to} {
				if prev, dup := busy[endpoint]; dup {
					res.Violations = append(res.Violations, Violation{ri, ci, CallerDuplicate,
						fmt.Sprintf("vertex %d already in call %d this round", endpoint, prev)})
				} else {
					busy[endpoint] = ci
				}
			}
			for i := 1; i < len(call.Path); i++ {
				e := mkEdge(call.Path[i-1], call.Path[i])
				if usedEdge[e] {
					res.Violations = append(res.Violations, Violation{ri, ci, EdgeConflict,
						fmt.Sprintf("edge {%d,%d} reused", e.u, e.v)})
				}
				usedEdge[e] = true
			}
			merges = append(merges, from, to)
		}
		// Apply the round's exchanges: both endpoints end up with the
		// union of their token sets. In a violation-free round the pairs
		// are vertex-disjoint, so application order does not matter (the
		// synchronous-round semantics); with busy-vertex violations the
		// exchanges chain in call order, which is what the streamed
		// validator reproduces.
		for p := 0; p < len(merges); p += 2 {
			a, b := know[merges[p]], know[merges[p+1]]
			a.UnionWith(b)
			b.CopyFrom(a)
		}
	}
	res.Simulated = true
	res.MinKnown = n
	res.Complete = true
	for v := 0; v < n; v++ {
		c := know[v].Count()
		if c < res.MinKnown {
			res.MinKnown = c
		}
		if c != n {
			res.Complete = false
		}
	}
	res.MinimumTime = res.Complete && len(s.Rounds) == GossipMinimumRounds(order)
	return res
}
