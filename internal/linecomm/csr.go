package linecomm

import (
	"sparsehypercube/internal/bitvec"
)

// This file is the CSR engine of the streaming validators: the general-
// graph counterpart of the bitvecState/gossipBitvecState fast paths.
// Where the dimensioned engine derives an edge slot from the hypercube
// address structure (vertex*n + flipped bit), the CSR engine asks the
// network for one (SlottedNetwork.EdgeSlot, backed by the graph's CSR
// arrays) and indexes every per-round disjointness set by that dense
// id: flat bitvec storage for receivers and callers, small per-slot
// counters for edges and receivers so generalised capacities
// (Options.EdgeCapacity/ReceiverCapacity > 1) ride the same flat
// storage instead of falling back to hash maps. Touched slots are
// recorded and cleared between rounds, so the whole engine allocates
// once per validation run and nothing per round.
//
// mapState stays as the reference engine — it is what the differential
// suite crosschecks csrState against, and the fallback for networks
// that carry no slot numbering or exceed the size caps.

// maxCSRSlots caps the vertex and edge-slot universes of the CSR
// engine. Counters are 4 bytes per slot (the bit-set engine's universes
// are 1 bit), so the cap is maxStreamBits/32: the same 256 MiB
// worst-case footprint per array, admitting graphs up to 2^26 vertices
// and 2^26 edges — the million-vertex regime with room to spare.
const maxCSRSlots = maxStreamBits / 32

// slottedFor reports whether net can drive the CSR engine: it must
// carry a slot numbering and fit the size caps.
func slottedFor(net Network, order uint64) (SlottedNetwork, bool) {
	sn, ok := net.(SlottedNetwork)
	if !ok {
		return nil, false
	}
	if order > maxCSRSlots || sn.NumEdgeSlots() > maxCSRSlots {
		return nil, false
	}
	return sn, true
}

// csrState is the slot-indexed round state for arbitrary graphs: the
// disjointness engine of ValidateStream on any SlottedNetwork,
// generalised capacities included. Under the default capacity-1 model
// edge and receiver uses are used/dup bit-set pairs (two bits per slot,
// cache-resident even for million-edge graphs; the dup shadow
// reproduces mapState's report-once-at-capacity+1 contract), and under
// generalised capacities they are per-slot counters with the same
// contract. Callers are a bit set with the report-once recovery scan
// the bitvec engine uses.
type csrState struct {
	net   SlottedNetwork
	opts  Options
	count uint64

	informed *bitvec.Set // order bits

	// Capacity-1 storage (nil when the capacity is generalised).
	edgeUsed, edgeDup *bitvec.Set // NumEdgeSlots bits each
	recvUsed, recvDup *bitvec.Set // order bits each
	// Generalised-capacity storage (nil under capacity 1).
	edgeCnt []int32 // NumEdgeSlots counters
	recvCnt []int32 // order counters

	callerUsed *bitvec.Set // order bits

	round          Round
	claimed        []int // call indices that registered a caller, in order
	touchedEdges   []int32
	touchedRecvs   []int32
	touchedCallers []int32
	newly          []uint64
}

func newCSRState(sn SlottedNetwork, order, source uint64, opts Options) *csrState {
	st := &csrState{
		net:        sn,
		opts:       opts,
		count:      1,
		informed:   bitvec.New(int(order)),
		callerUsed: bitvec.New(int(order)),
	}
	if opts.EdgeCapacity == 1 {
		st.edgeUsed = bitvec.New(sn.NumEdgeSlots())
		st.edgeDup = bitvec.New(sn.NumEdgeSlots())
	} else {
		st.edgeCnt = make([]int32, sn.NumEdgeSlots())
	}
	if opts.ReceiverCapacity == 1 {
		st.recvUsed = bitvec.New(int(order))
		st.recvDup = bitvec.New(int(order))
	} else {
		st.recvCnt = make([]int32, int(order))
	}
	st.informed.Set(int(source))
	return st
}

func (c *csrState) isInformed(v uint64) bool { return c.informed.Get(int(v)) }

func (c *csrState) seedInformed(vs []uint64) {
	for _, v := range vs {
		if !c.informed.TestAndSet(int(v)) {
			c.count++
		}
	}
}

func (c *csrState) beginRound(r Round) { c.round = r }

func (c *csrState) callerClaim(v uint64, ci int) (int, bool) {
	if !c.callerUsed.TestAndSet(int(v)) {
		c.touchedCallers = append(c.touchedCallers, int32(v))
		c.claimed = append(c.claimed, ci)
		return 0, false
	}
	// Duplicate: recover the first claiming call's index by scanning the
	// registered claims (rare — only on an actual violation).
	for _, idx := range c.claimed {
		if c.round[idx].Path[0] == v {
			return idx, true
		}
	}
	return 0, true // unreachable: a set caller bit implies a claim
}

// slottedNet and edgeUseSlot opt csrState into the validator's
// slot-indexed fast path: the fill phase resolves each hop's slot via
// EdgeSlot (which doubles as the edge check) and the merge phase feeds
// it to edgeUseSlot, so no hop is searched twice.
func (c *csrState) slottedNet() SlottedNetwork { return c.net }

func (c *csrState) edgeUseSlot(slot int) bool {
	if c.edgeUsed != nil {
		if !c.edgeUsed.TestAndSet(slot) {
			c.touchedEdges = append(c.touchedEdges, int32(slot))
			return false
		}
		return !c.edgeDup.TestAndSet(slot)
	}
	c.edgeCnt[slot]++
	if c.edgeCnt[slot] == 1 {
		c.touchedEdges = append(c.touchedEdges, int32(slot))
	}
	return int(c.edgeCnt[slot]) == c.opts.EdgeCapacity+1
}

func (c *csrState) edgeUse(u, v uint64) bool {
	// Interface completeness: the validator prefers edgeUseSlot, but any
	// caller without a resolved slot (only stageFull hops reach here, so
	// EdgeSlot succeeds by the SlottedNetwork contract) still works.
	slot, ok := c.net.EdgeSlot(u, v)
	if !ok {
		return false
	}
	return c.edgeUseSlot(slot)
}

func (c *csrState) recvUse(v uint64) bool {
	if c.recvUsed != nil {
		if !c.recvUsed.TestAndSet(int(v)) {
			c.touchedRecvs = append(c.touchedRecvs, int32(v))
			return false
		}
		return !c.recvDup.TestAndSet(int(v))
	}
	c.recvCnt[v]++
	if c.recvCnt[v] == 1 {
		c.touchedRecvs = append(c.touchedRecvs, int32(v))
	}
	return int(c.recvCnt[v]) == c.opts.ReceiverCapacity+1
}

func (c *csrState) inform(v uint64) { c.newly = append(c.newly, v) }

func (c *csrState) endRound() uint64 {
	for _, v := range c.newly {
		if !c.informed.TestAndSet(int(v)) {
			c.count++
		}
	}
	if c.edgeUsed != nil {
		for _, s := range c.touchedEdges {
			c.edgeUsed.Clear(int(s))
			c.edgeDup.Clear(int(s))
		}
	} else {
		for _, s := range c.touchedEdges {
			c.edgeCnt[s] = 0
		}
	}
	if c.recvUsed != nil {
		for _, s := range c.touchedRecvs {
			c.recvUsed.Clear(int(s))
			c.recvDup.Clear(int(s))
		}
	} else {
		for _, s := range c.touchedRecvs {
			c.recvCnt[s] = 0
		}
	}
	for _, s := range c.touchedCallers {
		c.callerUsed.Clear(int(s))
	}
	c.newly = c.newly[:0]
	c.touchedEdges = c.touchedEdges[:0]
	c.touchedRecvs = c.touchedRecvs[:0]
	c.touchedCallers = c.touchedCallers[:0]
	c.claimed = c.claimed[:0]
	c.round = nil
	return c.count
}

func (c *csrState) informedCount() uint64 { return c.count }

// gossipCsrState is the slot-indexed telephone-model round state: the
// general-graph analogue of gossipBitvecState. Gossip reports every
// edge reuse (not just the first), so a plain bit per slot suffices;
// endpoint occupancy is a bit per vertex with the same first-claim
// recovery scan.
type gossipCsrState struct {
	net      SlottedNetwork
	edgeUsed *bitvec.Set // NumEdgeSlots bits
	busyUsed *bitvec.Set // order bits

	round        Round
	claimed      []int // calls that registered at least one endpoint, ascending
	touchedEdges []int
	touchedBusy  []int
}

func newGossipCSRState(sn SlottedNetwork, order uint64) *gossipCsrState {
	return &gossipCsrState{
		net:      sn,
		edgeUsed: bitvec.New(sn.NumEdgeSlots()),
		busyUsed: bitvec.New(int(order)),
	}
}

func (g *gossipCsrState) beginRound(r Round) { g.round = r }

func (g *gossipCsrState) busyClaim(v uint64, ci int) (int, bool) {
	if !g.busyUsed.TestAndSet(int(v)) {
		g.touchedBusy = append(g.touchedBusy, int(v))
		if len(g.claimed) == 0 || g.claimed[len(g.claimed)-1] != ci {
			g.claimed = append(g.claimed, ci)
		}
		return 0, false
	}
	// Duplicate: recover the first occupying call by scanning the calls
	// that registered endpoints, in order (rare — only on a violation).
	for _, idx := range g.claimed {
		if c := g.round[idx]; c.From() == v || c.To() == v {
			return idx, true
		}
	}
	return 0, true // unreachable: a set busy bit implies a registered claim
}

func (g *gossipCsrState) edgeUse(u, v uint64) bool {
	slot, ok := g.net.EdgeSlot(u, v)
	if !ok {
		return false
	}
	if !g.edgeUsed.TestAndSet(slot) {
		g.touchedEdges = append(g.touchedEdges, slot)
		return false
	}
	return true
}

func (g *gossipCsrState) endRound() {
	for _, s := range g.touchedEdges {
		g.edgeUsed.Clear(s)
	}
	for _, s := range g.touchedBusy {
		g.busyUsed.Clear(s)
	}
	g.touchedEdges = g.touchedEdges[:0]
	g.touchedBusy = g.touchedBusy[:0]
	g.claimed = g.claimed[:0]
	g.round = nil
}
