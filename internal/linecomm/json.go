package linecomm

import (
	"encoding/json"
	"fmt"
	"io"
)

// scheduleJSON is the stable on-disk representation of a Schedule.
type scheduleJSON struct {
	Source uint64       `json:"source"`
	Rounds [][][]uint64 `json:"rounds"` // rounds -> calls -> path
}

// WriteJSON serialises the schedule. The format is rounds of call paths,
// so schedules can be archived, diffed, and replayed across runs. It is
// the human-readable sibling of the compact streamed binary format in
// internal/schedio (which is what the public Plan.WriteTo speaks).
func WriteJSON(w io.Writer, s *Schedule) error {
	out := scheduleJSON{Source: s.Source, Rounds: make([][][]uint64, len(s.Rounds))}
	for i, round := range s.Rounds {
		out.Rounds[i] = make([][]uint64, len(round))
		for j, call := range round {
			out.Rounds[i][j] = call.Path
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadJSON deserialises a schedule written by WriteJSON, rejecting
// structurally broken inputs (empty or single-vertex paths).
func ReadJSON(r io.Reader) (*Schedule, error) {
	var in scheduleJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("linecomm: decoding schedule: %w", err)
	}
	s := &Schedule{Source: in.Source, Rounds: make([]Round, len(in.Rounds))}
	for i, round := range in.Rounds {
		s.Rounds[i] = make(Round, len(round))
		for j, path := range round {
			if len(path) < 2 {
				return nil, fmt.Errorf("linecomm: round %d call %d: path has %d vertices", i+1, j, len(path))
			}
			s.Rounds[i][j] = Call{Path: path}
		}
	}
	return s, nil
}

// roundBatchJSON is the service envelope for streaming rounds into an
// open verification session: a batch of consecutive rounds, each a list
// of call paths — the same shape as scheduleJSON's rounds field, minus
// the source (the session carries it).
type roundBatchJSON struct {
	Rounds [][][]uint64 `json:"rounds"`
}

// ReadRoundBatch deserialises one round batch, applying the same
// structural validation as ReadJSON: every call path must have at least
// two vertices. An empty batch is valid (a keep-alive).
func ReadRoundBatch(r io.Reader) ([]Round, error) {
	var in roundBatchJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("linecomm: decoding round batch: %w", err)
	}
	out := make([]Round, len(in.Rounds))
	for i, round := range in.Rounds {
		out[i] = make(Round, len(round))
		for j, path := range round {
			if len(path) < 2 {
				return nil, fmt.Errorf("linecomm: batch round %d call %d: path has %d vertices", i, j, len(path))
			}
			out[i][j] = Call{Path: path}
		}
	}
	return out, nil
}

// WriteRoundBatch serialises rounds as a service round batch, the
// client-side sibling of ReadRoundBatch.
func WriteRoundBatch(w io.Writer, rounds []Round) error {
	out := roundBatchJSON{Rounds: make([][][]uint64, len(rounds))}
	for i, round := range rounds {
		out.Rounds[i] = make([][]uint64, len(round))
		for j, call := range round {
			out.Rounds[i][j] = call.Path
		}
	}
	return json.NewEncoder(w).Encode(out)
}
