package linecomm

import (
	"bytes"
	"strings"
	"testing"

	"sparsehypercube/internal/topo"
)

// Two calls sharing an edge are illegal at capacity 1 but legal at 2 —
// the dilated-link variant of the paper's §5.
func TestEdgeCapacityRelaxation(t *testing.T) {
	c4 := GraphNetwork{topo.Cycle(4)}
	s := &Schedule{Source: 0, Rounds: []Round{
		{{Path: []uint64{0, 1, 2}}},
		{{Path: []uint64{0, 3, 2, 1}}, {Path: []uint64{2, 3}}}, // share edge {2,3}
	}}
	strict := ValidateOpts(c4, 3, s, DefaultOptions())
	if strict.Valid() {
		t.Fatal("capacity-1 validation should reject the shared edge")
	}
	relaxed := ValidateOpts(c4, 3, s, Options{EdgeCapacity: 2, ReceiverCapacity: 1})
	if !relaxed.Valid() {
		t.Fatalf("capacity-2 validation should accept: %v", relaxed.Err())
	}
	if !relaxed.Complete || !relaxed.MinimumTime {
		t.Fatal("relaxed schedule should be complete and minimal")
	}
}

// Multi-port reception: on C_4, vertices 0 and 2 both call vertex 1 over
// its two distinct edges — illegal at receiver capacity 1, legal at 2
// (though pointless for broadcast).
func TestReceiverCapacityRelaxation(t *testing.T) {
	c4 := GraphNetwork{topo.Cycle(4)}
	s := &Schedule{Source: 0, Rounds: []Round{
		{{Path: []uint64{0, 1, 2}}},
		{{Path: []uint64{0, 1}}, {Path: []uint64{2, 1}}},
	}}
	strict := Validate(c4, 2, s)
	if strict.Valid() {
		t.Fatal("duplicate receiver should fail at capacity 1")
	}
	relaxed := ValidateOpts(c4, 2, s, Options{
		EdgeCapacity: 1, ReceiverCapacity: 2,
	})
	if !relaxed.Valid() {
		t.Fatalf("receiver capacity 2 should accept: %v", relaxed.Err())
	}
}

func TestAllowInformedReceiver(t *testing.T) {
	star := GraphNetwork{topo.Star(4)}
	s := &Schedule{Source: 0, Rounds: []Round{
		{{Path: []uint64{0, 1}}},
		{{Path: []uint64{0, 1}}},
	}}
	if Validate(star, 2, s).Valid() {
		t.Fatal("re-informing should be flagged by default")
	}
	res := ValidateOpts(star, 2, s, Options{EdgeCapacity: 1, ReceiverCapacity: 1, AllowInformedReceiver: true})
	if !res.Valid() {
		t.Fatalf("AllowInformedReceiver should accept: %v", res.Err())
	}
}

func TestBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero capacity")
		}
	}()
	ValidateOpts(GraphNetwork{topo.Star(4)}, 2, &Schedule{}, Options{})
}

func TestMinEdgeCapacity(t *testing.T) {
	s := &Schedule{Source: 0, Rounds: []Round{
		{{Path: []uint64{0, 1, 2}}},
		{{Path: []uint64{0, 3, 2, 1}}, {Path: []uint64{2, 3}}},
	}}
	if got := MinEdgeCapacity(s); got != 2 {
		t.Fatalf("MinEdgeCapacity = %d, want 2 (edge {2,3} shared)", got)
	}
	disjoint := &Schedule{Source: 0, Rounds: []Round{
		{{Path: []uint64{0, 1}}},
		{{Path: []uint64{0, 2}}, {Path: []uint64{1, 0, 3}}},
	}}
	if got := MinEdgeCapacity(disjoint); got != 1 {
		t.Fatalf("MinEdgeCapacity = %d, want 1", got)
	}
	if got := MinEdgeCapacity(&Schedule{}); got != 0 {
		t.Fatalf("MinEdgeCapacity(empty) = %d", got)
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	orig := starSchedule()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Source != orig.Source || len(back.Rounds) != len(orig.Rounds) {
		t.Fatal("round trip changed shape")
	}
	for i := range orig.Rounds {
		if len(back.Rounds[i]) != len(orig.Rounds[i]) {
			t.Fatal("round trip changed round size")
		}
		for j := range orig.Rounds[i] {
			a, b := orig.Rounds[i][j].Path, back.Rounds[i][j].Path
			if len(a) != len(b) {
				t.Fatal("round trip changed path")
			}
			for x := range a {
				if a[x] != b[x] {
					t.Fatal("round trip changed path content")
				}
			}
		}
	}
	// The deserialised schedule still validates.
	res := Validate(starNet(), 2, back)
	if !res.Valid() || !res.MinimumTime {
		t.Fatalf("deserialised schedule invalid: %v", res.Err())
	}
}

func TestReadJSONRejectsBrokenPaths(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"source":0,"rounds":[[[0]]]}`)); err == nil {
		t.Fatal("expected error for single-vertex path")
	}
	if _, err := ReadJSON(strings.NewReader(`not json`)); err == nil {
		t.Fatal("expected decode error")
	}
}
