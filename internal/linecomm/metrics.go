package linecomm

import (
	"fmt"
	"sort"
	"strings"
)

// EdgeLoad aggregates how often each edge is occupied across the whole
// schedule. Within a valid round every edge is used at most once, so the
// load measures reuse across rounds — the congestion dimension the paper's
// §5 flags for future work.
type EdgeLoad struct {
	U, V uint64
	Load int
}

// EdgeLoads returns per-edge total occupancy, sorted by decreasing load
// then by endpoints.
func EdgeLoads(s *Schedule) []EdgeLoad {
	loads := make(map[edgeKey]int)
	for _, round := range s.Rounds {
		for _, call := range round {
			for i := 1; i < len(call.Path); i++ {
				loads[mkEdge(call.Path[i-1], call.Path[i])]++
			}
		}
	}
	out := make([]EdgeLoad, 0, len(loads))
	for e, l := range loads {
		out = append(out, EdgeLoad{e.u, e.v, l})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Load != out[j].Load {
			return out[i].Load > out[j].Load
		}
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// CongestionStats summarises edge usage of a schedule.
type CongestionStats struct {
	EdgesUsed     int     // distinct edges occupied at least once
	MaxEdgeLoad   int     // busiest edge's total occupancy
	TotalEdgeTime int     // sum of loads = sum of call lengths
	MeanEdgeLoad  float64 // TotalEdgeTime / EdgesUsed
}

// Congestion computes CongestionStats for s.
func Congestion(s *Schedule) CongestionStats {
	loads := EdgeLoads(s)
	st := CongestionStats{EdgesUsed: len(loads)}
	for _, l := range loads {
		st.TotalEdgeTime += l.Load
		if l.Load > st.MaxEdgeLoad {
			st.MaxEdgeLoad = l.Load
		}
	}
	if st.EdgesUsed > 0 {
		st.MeanEdgeLoad = float64(st.TotalEdgeTime) / float64(st.EdgesUsed)
	}
	return st
}

// PathLengthHistogram returns call-length -> count over the schedule.
func PathLengthHistogram(s *Schedule) map[int]int {
	h := make(map[int]int)
	for _, round := range s.Rounds {
		for _, call := range round {
			h[call.Length()]++
		}
	}
	return h
}

// Format renders the schedule with vertices as width-n bit strings, one
// round per block — the shape of the paper's Example 4 walkthrough.
func (s *Schedule) Format(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "broadcast from %s in %d rounds\n", bitString(s.Source, n), len(s.Rounds))
	for ri, round := range s.Rounds {
		fmt.Fprintf(&b, "round %d (%d calls):\n", ri+1, len(round))
		for _, call := range round {
			parts := make([]string, len(call.Path))
			for i, v := range call.Path {
				parts[i] = bitString(v, n)
			}
			fmt.Fprintf(&b, "  %s (length %d)\n", strings.Join(parts, " -> "), call.Length())
		}
	}
	return b.String()
}

func bitString(v uint64, n int) string {
	buf := make([]byte, n)
	for i := 0; i < n; i++ {
		if v&(1<<uint(n-1-i)) != 0 {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}
