package linecomm

import (
	"bytes"
	"testing"

	"sparsehypercube/internal/topo"
)

// FuzzValidate feeds arbitrary byte-derived schedules to the validator:
// whatever the input, it must classify without panicking, and a schedule
// it calls minimum-time must really inform everyone.
func FuzzValidate(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, uint8(2))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 9, 9}, uint8(1))
	f.Add([]byte{255, 254, 253}, uint8(3))
	net := GraphNetwork{G: topo.Hypercube(4)}
	f.Fuzz(func(t *testing.T, data []byte, kRaw uint8) {
		k := int(kRaw)%4 + 1
		s := scheduleFromBytes(data)
		res := Validate(net, k, s)
		if res.MinimumTime && res.Informed != 16 {
			t.Fatalf("minimum-time claimed with %d informed", res.Informed)
		}
		if res.Valid() != (len(res.Violations) == 0) {
			t.Fatal("Valid() inconsistent with Violations")
		}
		// The streaming engines must classify identically, whatever the
		// input: map engine via the stripped wrapper, CSR engine via the
		// bare GraphNetwork, bit-set engine via the dimensioned wrapper.
		for _, streamNet := range []Network{plainNet{net}, net, dimNet{net, 4}} {
			sres := ValidateStream(streamNet, k, s.Source, s.Stream())
			if sres.Valid() != res.Valid() || sres.Informed != res.Informed ||
				len(sres.Violations) != len(res.Violations) {
				t.Fatalf("stream/serial divergence: serial %+v stream %+v", res, sres)
			}
		}
	})
}

// scheduleFromBytes decodes bytes into a schedule on a 16-vertex network:
// byte 0 = source, then alternating round lengths and path data.
func scheduleFromBytes(data []byte) *Schedule {
	if len(data) == 0 {
		return &Schedule{}
	}
	s := &Schedule{Source: uint64(data[0] % 16)}
	i := 1
	for i < len(data) {
		nCalls := int(data[i]%4) + 1
		i++
		var round Round
		for c := 0; c < nCalls && i < len(data); c++ {
			pathLen := int(data[i]%4) + 1
			i++
			var path []uint64
			for p := 0; p <= pathLen && i < len(data); p++ {
				path = append(path, uint64(data[i]%17)) // may exceed range: good
				i++
			}
			round = append(round, Call{Path: path})
		}
		s.Rounds = append(s.Rounds, round)
		if len(s.Rounds) > 8 {
			break
		}
	}
	return s
}

// FuzzScheduleJSON: ReadJSON must never panic and must round-trip
// whatever it accepts.
func FuzzScheduleJSON(f *testing.F) {
	f.Add([]byte(`{"source":0,"rounds":[[[0,1]]]}`))
	f.Add([]byte(`{"source":999}`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, s); err != nil {
			t.Fatalf("accepted schedule failed to serialise: %v", err)
		}
		s2, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if s2.Source != s.Source || len(s2.Rounds) != len(s.Rounds) {
			t.Fatal("round trip changed schedule")
		}
	})
}
