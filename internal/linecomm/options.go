package linecomm

import "fmt"

// Options generalises the validator along the two dimensions the paper's
// §5 marks as future work: edges that carry several calls at once
// (dilated/fat links) and vertices that accept several calls at once
// (multi-port reception). The classic k-line model of Definition 1 is
// EdgeCapacity = 1, ReceiverCapacity = 1.
type Options struct {
	// EdgeCapacity is the number of simultaneous calls an edge carries.
	EdgeCapacity int
	// ReceiverCapacity is the number of simultaneous calls a vertex can
	// receive.
	ReceiverCapacity int
	// AllowInformedReceiver suppresses the ReceiverInformed finding
	// (legal in the model, wasteful in minimum-time schemes).
	AllowInformedReceiver bool
}

// DefaultOptions returns Definition 1's model.
func DefaultOptions() Options {
	return Options{EdgeCapacity: 1, ReceiverCapacity: 1}
}

// ValidateOpts checks s against the generalised model. Validate is
// equivalent to ValidateOpts with DefaultOptions.
func ValidateOpts(net Network, k int, s *Schedule, opts Options) *Result {
	if opts.EdgeCapacity < 1 || opts.ReceiverCapacity < 1 {
		panic("linecomm: capacities must be >= 1")
	}
	res := &Result{}
	order := net.Order()
	if s.Source >= order {
		res.Violations = append(res.Violations, Violation{
			Round: -1, Call: -1, Kind: VertexOutOfRange,
			Msg: fmt.Sprintf("source %d outside [0,%d)", s.Source, order),
		})
		return res
	}
	informed := make(map[uint64]bool, 64)
	informed[s.Source] = true

	for ri, round := range s.Rounds {
		edgeUse := make(map[edgeKey]int, len(round)*2)
		recvUse := make(map[uint64]int, len(round))
		callers := make(map[uint64]int, len(round))
		var newly []uint64

		for ci, call := range round {
			bad := false
			if len(call.Path) < 2 {
				res.Violations = append(res.Violations, Violation{ri, ci, PathInvalid,
					fmt.Sprintf("path has %d vertices", len(call.Path))})
				continue
			}
			for _, v := range call.Path {
				if v >= order {
					res.Violations = append(res.Violations, Violation{ri, ci, VertexOutOfRange,
						fmt.Sprintf("vertex %d outside [0,%d)", v, order)})
					bad = true
				}
			}
			if bad {
				continue
			}
			seen := make(map[uint64]bool, len(call.Path))
			for _, v := range call.Path {
				if seen[v] {
					res.Violations = append(res.Violations, Violation{ri, ci, PathInvalid,
						fmt.Sprintf("vertex %d repeated on path", v)})
					bad = true
				}
				seen[v] = true
			}
			for i := 1; i < len(call.Path); i++ {
				if !net.HasEdge(call.Path[i-1], call.Path[i]) {
					res.Violations = append(res.Violations, Violation{ri, ci, PathInvalid,
						fmt.Sprintf("no edge {%d,%d}", call.Path[i-1], call.Path[i])})
					bad = true
				}
			}
			if call.Length() > k {
				res.Violations = append(res.Violations, Violation{ri, ci, PathTooLong,
					fmt.Sprintf("length %d > k = %d", call.Length(), k)})
			}
			if call.Length() > res.MaxCallLength {
				res.MaxCallLength = call.Length()
			}
			if !informed[call.From()] {
				res.Violations = append(res.Violations, Violation{ri, ci, CallerUninformed,
					fmt.Sprintf("caller %d not informed", call.From())})
			}
			if prev, dup := callers[call.From()]; dup {
				res.Violations = append(res.Violations, Violation{ri, ci, CallerDuplicate,
					fmt.Sprintf("caller %d already placed call %d", call.From(), prev)})
			} else {
				callers[call.From()] = ci
			}
			if bad {
				continue
			}
			for i := 1; i < len(call.Path); i++ {
				e := mkEdge(call.Path[i-1], call.Path[i])
				edgeUse[e]++
				if edgeUse[e] == opts.EdgeCapacity+1 {
					res.Violations = append(res.Violations, Violation{ri, ci, EdgeConflict,
						fmt.Sprintf("edge {%d,%d} used %d times, capacity %d",
							e.u, e.v, edgeUse[e], opts.EdgeCapacity)})
				}
			}
			to := call.To()
			recvUse[to]++
			if recvUse[to] == opts.ReceiverCapacity+1 {
				res.Violations = append(res.Violations, Violation{ri, ci, ReceiverConflict,
					fmt.Sprintf("receiver %d targeted %d times, capacity %d",
						to, recvUse[to], opts.ReceiverCapacity)})
			}
			if informed[to] && !opts.AllowInformedReceiver {
				res.Violations = append(res.Violations, Violation{ri, ci, ReceiverInformed,
					fmt.Sprintf("receiver %d already informed", to)})
			}
			newly = append(newly, to)
		}
		for _, v := range newly {
			informed[v] = true
		}
		res.InformedPerRound = append(res.InformedPerRound, uint64(len(informed)))
	}
	res.Informed = uint64(len(informed))
	res.Complete = res.Informed == order
	res.MinimumTime = res.Complete && len(s.Rounds) == MinimumRounds(order)
	return res
}

// MinEdgeCapacity returns the smallest edge capacity under which the
// schedule has no edge conflicts (its per-round peak edge multiplicity),
// quantifying how much link dilation a schedule would need.
func MinEdgeCapacity(s *Schedule) int {
	max := 0
	for _, round := range s.Rounds {
		use := make(map[edgeKey]int)
		for _, call := range round {
			for i := 1; i < len(call.Path); i++ {
				e := mkEdge(call.Path[i-1], call.Path[i])
				use[e]++
				if use[e] > max {
					max = use[e]
				}
			}
		}
	}
	return max
}
