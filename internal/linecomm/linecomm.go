// Package linecomm models the paper's k-line communication (Definition 1):
// communication proceeds in synchronous rounds; in each round an informed
// vertex may place at most one call along a path of at most k edges; calls
// placed in the same round must be pairwise edge-disjoint and must have
// pairwise distinct receivers. The package provides schedule data types, a
// strict validator (the machine-checkable form of Theorems 4 and 6), a
// simulator, and congestion metrics for the paper's §5 discussion.
package linecomm

import (
	"fmt"
	"iter"
	"strings"

	"sparsehypercube/internal/graph"
	"sparsehypercube/internal/intmath"
)

// Call is one circuit-switched call: a simple path from the caller
// Path[0] to the receiver Path[len-1] occupying every edge along it.
type Call struct {
	Path []uint64
}

// From returns the calling vertex, or 0 for a call with an empty path.
// An empty path is never valid — Validate reports it as PathInvalid — but
// the accessor must not panic on the zero value. Use Endpoints to
// distinguish vertex 0 from a missing path.
func (c Call) From() uint64 {
	if len(c.Path) == 0 {
		return 0
	}
	return c.Path[0]
}

// To returns the receiving vertex, or 0 for a call with an empty path.
func (c Call) To() uint64 {
	if len(c.Path) == 0 {
		return 0
	}
	return c.Path[len(c.Path)-1]
}

// Endpoints returns the caller and receiver; ok is false when the path is
// empty and both endpoints are meaningless.
func (c Call) Endpoints() (from, to uint64, ok bool) {
	if len(c.Path) == 0 {
		return 0, 0, false
	}
	return c.Path[0], c.Path[len(c.Path)-1], true
}

// Length returns the number of edges occupied (0 for an empty path).
func (c Call) Length() int {
	if len(c.Path) == 0 {
		return 0
	}
	return len(c.Path) - 1
}

// Round is the set of calls placed in one time unit.
type Round []Call

// CloneRound deep-copies a round into freshly allocated storage (one
// backing array for all paths). Use it to retain a round obtained from a
// streaming iterator, whose yielded storage is reused between rounds.
func CloneRound(r Round) Round {
	total := 0
	for _, c := range r {
		total += len(c.Path)
	}
	buf := make([]uint64, 0, total)
	out := make(Round, len(r))
	for i, c := range r {
		buf = append(buf, c.Path...)
		out[i] = Call{Path: buf[len(buf)-len(c.Path) : len(buf) : len(buf)]}
	}
	return out
}

// Schedule is a broadcast schedule from Source.
type Schedule struct {
	Source uint64
	Rounds []Round
}

// Stream returns the schedule's rounds as an iterator, the form consumed
// by ValidateStream. Yielded rounds alias the schedule's storage.
func (s *Schedule) Stream() iter.Seq[Round] {
	return func(yield func(Round) bool) {
		for _, r := range s.Rounds {
			if !yield(r) {
				return
			}
		}
	}
}

// StreamBackward returns the schedule's rounds in reverse order with
// every call path reversed. A valid broadcast streamed backward funnels
// each vertex's token to the source along the call that informed it —
// the gather half of gather-scatter gossip. The yielded round and its
// paths reuse one buffer between iterations; use CloneRound to retain.
func (s *Schedule) StreamBackward() iter.Seq[Round] {
	return func(yield func(Round) bool) {
		var (
			buf   Round
			arena []uint64
		)
		for ri := len(s.Rounds) - 1; ri >= 0; ri-- {
			round := s.Rounds[ri]
			if cap(buf) < len(round) {
				buf = make(Round, len(round))
			}
			buf = buf[:len(round)]
			total := 0
			for _, c := range round {
				total += len(c.Path)
			}
			// Pre-size so append never reallocates mid-round: earlier
			// calls' paths alias the arena.
			if cap(arena) < total {
				arena = make([]uint64, 0, total)
			}
			arena = arena[:0]
			for i, c := range round {
				lo := len(arena)
				for j := len(c.Path) - 1; j >= 0; j-- {
					arena = append(arena, c.Path[j])
				}
				buf[i] = Call{Path: arena[lo:len(arena):len(arena)]}
			}
			if !yield(buf) {
				return
			}
		}
	}
}

// TotalCalls returns the number of calls across all rounds.
func (s *Schedule) TotalCalls() int {
	n := 0
	for _, r := range s.Rounds {
		n += len(r)
	}
	return n
}

// MaxCallLength returns the longest call in the schedule (0 if empty).
func (s *Schedule) MaxCallLength() int {
	max := 0
	for _, r := range s.Rounds {
		for _, c := range r {
			if c.Length() > max {
				max = c.Length()
			}
		}
	}
	return max
}

// Network is the minimal graph interface the validator needs. It is
// satisfied both by materialised graphs (GraphNetwork) and by implicit
// constructions such as the sparse hypercube, whose edge predicate is
// computable without storing adjacency.
type Network interface {
	// Order returns the number of vertices; vertex ids are [0, Order).
	Order() uint64
	// HasEdge reports whether {u, v} is an edge.
	HasEdge(u, v uint64) bool
}

// SlottedNetwork is a Network whose edges carry a dense slot numbering:
// a bijection between edges and [0, NumEdgeSlots). Materialised CSR
// graphs provide it for free (graph.Graph's eoff arrays), and it is what
// upgrades an arbitrary network from the per-round map engine to the
// flat csrState engine — every disjointness constraint indexed by slot
// id instead of hashed edge keys. The contract binds EdgeSlot to
// HasEdge: EdgeSlot(u, v) must report ok exactly when HasEdge(u, v),
// and distinct edges must map to distinct slots.
type SlottedNetwork interface {
	Network
	// NumEdgeSlots returns the size of the slot universe (the number of
	// edges).
	NumEdgeSlots() int
	// EdgeSlot maps the edge {u, v}, in either endpoint order, to its
	// slot; ok is false for non-edges.
	EdgeSlot(u, v uint64) (slot int, ok bool)
}

// GraphNetwork adapts graph.Graph to Network (and SlottedNetwork: the
// CSR arrays carry the edge-slot numbering).
type GraphNetwork struct{ G *graph.Graph }

// Order implements Network.
func (g GraphNetwork) Order() uint64 { return uint64(g.G.NumVertices()) }

// HasEdge implements Network.
func (g GraphNetwork) HasEdge(u, v uint64) bool { return g.G.HasEdge(int(u), int(v)) }

// NumEdgeSlots implements SlottedNetwork.
func (g GraphNetwork) NumEdgeSlots() int { return g.G.NumEdgeSlots() }

// EdgeSlot implements SlottedNetwork.
func (g GraphNetwork) EdgeSlot(u, v uint64) (int, bool) {
	order := uint64(g.G.NumVertices())
	if u >= order || v >= order {
		return 0, false
	}
	return g.G.EdgeSlot(int(u), int(v))
}

// ViolationKind classifies validator findings.
type ViolationKind int

// Violation kinds, in rough order of severity.
const (
	// CallerUninformed: the caller did not hold the message yet.
	CallerUninformed ViolationKind = iota
	// CallerDuplicate: a vertex placed more than one call in a round.
	CallerDuplicate
	// PathInvalid: empty path, repeated vertex, or a hop with no edge.
	PathInvalid
	// PathTooLong: the call exceeds the length bound k.
	PathTooLong
	// EdgeConflict: two calls in the same round share an edge.
	EdgeConflict
	// ReceiverConflict: two calls in the same round share a receiver.
	ReceiverConflict
	// ReceiverInformed: the receiver already held the message (legal in
	// the model but never useful in a minimum-time scheme, so flagged).
	ReceiverInformed
	// VertexOutOfRange: a path mentions a vertex outside [0, Order).
	VertexOutOfRange
	// SimulationCapExceeded: the instance is too large for the validator's
	// knowledge simulation (gossip token tracking); the schedule was not
	// judged invalid, it could not be fully checked.
	SimulationCapExceeded
)

func (k ViolationKind) String() string {
	switch k {
	case CallerUninformed:
		return "caller-uninformed"
	case CallerDuplicate:
		return "caller-duplicate"
	case PathInvalid:
		return "path-invalid"
	case PathTooLong:
		return "path-too-long"
	case EdgeConflict:
		return "edge-conflict"
	case ReceiverConflict:
		return "receiver-conflict"
	case ReceiverInformed:
		return "receiver-informed"
	case VertexOutOfRange:
		return "vertex-out-of-range"
	case SimulationCapExceeded:
		return "simulation-cap-exceeded"
	default:
		return fmt.Sprintf("violation(%d)", int(k))
	}
}

// violationKindNames inverts ViolationKind.String for the wire: the
// distributed range-verify envelope carries kinds by name, and a
// coordinator must reconstruct the exact ViolationKind (and so the
// exact Violation.String) from a worker's response.
var violationKindNames = map[string]ViolationKind{
	"caller-uninformed":       CallerUninformed,
	"caller-duplicate":        CallerDuplicate,
	"path-invalid":            PathInvalid,
	"path-too-long":           PathTooLong,
	"edge-conflict":           EdgeConflict,
	"receiver-conflict":       ReceiverConflict,
	"receiver-informed":       ReceiverInformed,
	"vertex-out-of-range":     VertexOutOfRange,
	"simulation-cap-exceeded": SimulationCapExceeded,
}

// ParseViolationKind inverts ViolationKind.String. Unknown names report
// ok false — a response carrying one must be rejected, not guessed at.
func ParseViolationKind(s string) (ViolationKind, bool) {
	k, ok := violationKindNames[s]
	return k, ok
}

// Violation is one validator finding.
type Violation struct {
	Round int // 0-based round index
	Call  int // index within the round, -1 when not call-specific
	Kind  ViolationKind
	Msg   string
}

func (v Violation) String() string {
	return fmt.Sprintf("round %d call %d: %s: %s", v.Round+1, v.Call, v.Kind, v.Msg)
}

// Result summarises a validation run.
type Result struct {
	Violations       []Violation
	InformedPerRound []uint64 // cumulative count after each round
	Informed         uint64   // final count
	Complete         bool     // every vertex informed
	MinimumTime      bool     // Complete in exactly ceil(log2 N) rounds
	MaxCallLength    int
}

// Valid reports whether no violations were found.
func (r *Result) Valid() bool { return len(r.Violations) == 0 }

// Err returns nil when valid, otherwise an error describing the first few
// violations.
func (r *Result) Err() error {
	if r.Valid() {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d violations:", len(r.Violations))
	for i, v := range r.Violations {
		if i == 5 {
			fmt.Fprintf(&b, " ... (%d more)", len(r.Violations)-5)
			break
		}
		fmt.Fprintf(&b, " [%s]", v)
	}
	return fmt.Errorf("linecomm: %s", b.String())
}

// edgeKey canonicalises an undirected edge.
type edgeKey struct{ u, v uint64 }

func mkEdge(a, b uint64) edgeKey {
	if a > b {
		a, b = b, a
	}
	return edgeKey{a, b}
}

// Validate checks s against the classic k-line model (Definition 1) on
// net and reports every violation together with completion statistics.
// It does not stop at the first problem, so tests can assert on specific
// kinds. See ValidateOpts for the generalised model.
func Validate(net Network, k int, s *Schedule) *Result {
	return ValidateOpts(net, k, s, DefaultOptions())
}

// MinimumRounds returns the information-theoretic broadcast lower bound
// ceil(log2 N) for an N-vertex network.
func MinimumRounds(order uint64) int { return intmath.CeilLog2(order) }
