package linecomm

// This file is the range half of the streaming validator: the pieces
// that let one schedule be validated as W contiguous round ranges by W
// independent workers and merged back into the exact Result the serial
// ValidateStream produces.
//
// The informed set is the only state that crosses a round boundary, and
// its evolution is purely structural: a call informs its receiver
// exactly when the call itself is well formed (two or more vertices,
// all in range, no repeats, every hop an edge) — whether the caller was
// informed, the call too long, or a disjointness constraint violated
// never changes that. So a parallel verification runs in two passes:
//
//  1. CollectInformedStream scans each range and returns the receivers
//     its rounds inform — no seed needed, ranges are independent;
//  2. prefix-union those deltas to get the informed set at each range
//     boundary, then ValidateStreamSeeded runs the full validator on
//     each range seeded with its boundary set;
//
// and MergeRangeResults concatenates the per-range Results in order.
// Violations, counts, and messages come out identical to one serial
// pass because every per-round decision sees exactly the state the
// serial validator would have seen.

import (
	"fmt"
	"iter"
)

// CollectInformedStream scans a round stream and returns the receivers
// informed by it: the last path vertex of every structurally well-formed
// call, in call order, duplicates preserved. This is the seed-building
// pass of parallel range verification — the returned slice, unioned
// with the informed set at the stream's start, is the informed set at
// its end, independent of what that starting set was.
func CollectInformedStream(net Network, rounds iter.Seq[Round]) []uint64 {
	order := net.Order()
	var out []uint64
	for round := range rounds {
		for _, c := range round {
			if callInforms(net, order, c) {
				out = append(out, c.Path[len(c.Path)-1])
			}
		}
	}
	return out
}

// TeeInformed wraps a round stream so the receivers informed by its
// structurally well-formed calls are appended to *out as the stream is
// consumed — CollectInformedStream folded into another consumer's pass
// over the same rounds. The parallel verifier uses it to run range 0's
// full validation (whose seed is always empty) during the structural
// pass, while still producing the informed delta that seeds range 1.
// out receives exactly what CollectInformedStream would return for the
// rounds consumed so far; it is complete only once the wrapped stream
// has fully drained.
func TeeInformed(net Network, rounds iter.Seq[Round], out *[]uint64) iter.Seq[Round] {
	order := net.Order()
	return func(yield func(Round) bool) {
		for round := range rounds {
			for _, c := range round {
				if callInforms(net, order, c) {
					*out = append(*out, c.Path[len(c.Path)-1])
				}
			}
			if !yield(round) {
				return
			}
		}
	}
}

// callInforms reports whether a call reaches its receiver under the
// model: the exact condition for the streaming validator's full stage
// (checkCall returning stageFull), which is the only stage that informs.
func callInforms(net Network, order uint64, c Call) bool {
	if len(c.Path) < 2 {
		return false
	}
	for _, u := range c.Path {
		if u >= order {
			return false
		}
	}
	if hasRepeatedVertex(c.Path) {
		return false
	}
	for i := 1; i < len(c.Path); i++ {
		if !net.HasEdge(c.Path[i-1], c.Path[i]) {
			return false
		}
	}
	return true
}

// hasRepeatedVertex is the boolean form of appendRepeatViolations: a
// quadratic scan for the short paths real schedules have, a map beyond.
func hasRepeatedVertex(path []uint64) bool {
	if len(path) <= 32 {
		for i, u := range path {
			for _, w := range path[:i] {
				if w == u {
					return true
				}
			}
		}
		return false
	}
	seen := make(map[uint64]bool, len(path))
	for _, u := range path {
		if seen[u] {
			return true
		}
		seen[u] = true
	}
	return false
}

// ValidateStreamSeeded validates rounds as the contiguous slice of a
// larger streamed schedule that starts at round index startRound, where
// seed lists the vertices (beyond source) informed by the earlier
// rounds — as produced by CollectInformedStream over them. Violations
// carry absolute round indices and InformedPerRound absolute cumulative
// counts, so the per-range Results of a partition stitch together with
// MergeRangeResults into exactly the serial ValidateStream Result.
//
// Complete and MinimumTime are whole-schedule judgements and are left
// false here; MergeRangeResults computes them. Informed is the count at
// the end of the range (seed included), even when the range is empty.
//
// fillShards bounds the fill-phase goroutines of this one validator
// (<= 0 means GOMAXPROCS, the serial entry points' behaviour). A
// parallel caller already running one validator per range passes its
// per-range share, so W ranges never pile W×GOMAXPROCS CPU-bound
// goroutines onto GOMAXPROCS cores.
func ValidateStreamSeeded(net Network, k int, source uint64, seed []uint64, startRound int, rounds iter.Seq[Round], opts Options, fillShards int) *Result {
	if opts.EdgeCapacity < 1 || opts.ReceiverCapacity < 1 {
		panic("linecomm: capacities must be >= 1")
	}
	res := &Result{}
	order := net.Order()
	if source >= order {
		res.Violations = append(res.Violations, Violation{
			Round: -1, Call: -1, Kind: VertexOutOfRange,
			Msg: fmt.Sprintf("source %d outside [0,%d)", source, order),
		})
		return res
	}
	st := newRoundState(net, order, source, opts)
	st.seedInformed(seed)
	v := &streamValidator{net: net, k: k, order: order, opts: opts, st: st, res: res, fillShards: fillShards}
	ri := startRound
	for round := range rounds {
		v.validateRound(ri, round)
		ri++
	}
	res.Informed = st.informedCount()
	return res
}

// MergeRangeResults stitches the per-range Results of ValidateStreamSeeded
// — contiguous ranges covering the whole schedule, in order, at least
// one — into the Result serial ValidateStream returns on the full
// stream.
func MergeRangeResults(order uint64, parts []*Result) *Result {
	out := &Result{}
	for _, p := range parts {
		out.Violations = append(out.Violations, p.Violations...)
		out.InformedPerRound = append(out.InformedPerRound, p.InformedPerRound...)
		if p.MaxCallLength > out.MaxCallLength {
			out.MaxCallLength = p.MaxCallLength
		}
		out.Informed = p.Informed
	}
	out.Complete = order > 0 && out.Informed == order
	out.MinimumTime = out.Complete && len(out.InformedPerRound) == MinimumRounds(order)
	return out
}
